package d2m

import (
	"fmt"
	"strings"
)

// This file holds the request-parsing and validation helpers shared by
// every front end (cmd/d2msim, cmd/d2mserver via internal/service,
// library callers): one code path decides what a valid kind, topology,
// placement or Options is.

// KindNames returns the accepted configuration names, in presentation
// order. The list is derived from the mechanism registry, so a newly
// registered mechanism appears here (and everywhere downstream — CLI,
// capabilities document, sweeps) without further wiring.
func KindNames() []string {
	kinds := AllKinds()
	out := make([]string, 0, len(kinds))
	for _, k := range kinds {
		out = append(out, k.String())
	}
	return out
}

// ParseKind parses a configuration name. Matching is case-insensitive
// and dashes are optional, so "d2m-ns-r", "D2M-NS-R" and "d2mnsr" all
// name the same kind.
func ParseKind(s string) (Kind, error) {
	var k Kind
	if err := k.UnmarshalText([]byte(s)); err != nil {
		return 0, fmt.Errorf("d2m: unknown kind %q (want %s)",
			s, strings.Join(KindNames(), ", "))
	}
	return k, nil
}

// Topologies returns the accepted Options.Topology strings. The empty
// string selects the first entry.
func Topologies() []string { return []string{"crossbar", "ring", "mesh", "torus"} }

// Placements returns the accepted Options.Placement strings. The empty
// string selects the first entry.
func Placements() []string { return []string{"pressure", "local", "spread"} }

// WithDefaults returns the options with zero fields replaced by the
// paper's defaults: 8 nodes, 100k warmup, 400k measured accesses,
// MDScale 1. Two Options describe the same simulation exactly when
// their WithDefaults forms are equal — the service layer uses this as
// the canonical form for content-addressed result caching.
func (o Options) WithDefaults() Options { return o.withDefaults() }

// Validate reports whether the options describe a runnable simulation:
// node count in range, a supported MDScale, and known topology and
// placement strings. Zero fields are defaulted before checking, so the
// zero Options is valid.
func (o Options) Validate() error {
	o = o.withDefaults()
	if o.Nodes < 1 || o.Nodes > 8 {
		return fmt.Errorf("d2m: Nodes = %d out of range 1..8", o.Nodes)
	}
	if o.Warmup < 0 {
		return fmt.Errorf("d2m: Warmup = %d is negative", o.Warmup)
	}
	if o.Measure < 1 {
		return fmt.Errorf("d2m: Measure = %d, want at least 1", o.Measure)
	}
	if o.MDScale != 1 && o.MDScale != 2 && o.MDScale != 4 {
		return fmt.Errorf("d2m: MDScale = %d, want 1, 2 or 4", o.MDScale)
	}
	if _, err := o.placement(); err != nil {
		return err
	}
	if _, err := o.topology(); err != nil {
		return err
	}
	return nil
}
