package d2m

// Lane-group exactness: RunGroup's vector path must be byte-identical
// to the scalar Run for every lane, across every kind, topology and
// option shape, for every lane count the scheduler can form — 1 (the
// scalar fallback), 2, a full group, and a group whose windows don't
// divide each other. Mid-group cancellation of one lane must leave the
// surviving lanes byte-identical too. As with snapshots, exactness is
// asserted at the marshalled-Result level.

import (
	"context"
	"errors"
	"testing"
)

// groupOf builds a lane group over one warm identity whose lanes vary
// only in the measurement window and link bandwidth.
func groupOf(kind Kind, bench string, base Options, windows []int, bands []float64) []GroupLane {
	lanes := make([]GroupLane, len(windows))
	for i, m := range windows {
		opt := base
		opt.Measure = m
		if bands != nil {
			opt.LinkBandwidth = bands[i]
		}
		lanes[i] = GroupLane{Spec: RunSpec{Kind: kind, Benchmark: bench, Options: opt}}
	}
	return lanes
}

func assertLanesMatchScalar(t *testing.T, ctx context.Context, lanes []GroupLane) {
	t.Helper()
	outs, err := RunGroup(ctx, lanes)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != len(lanes) {
		t.Fatalf("RunGroup returned %d outcomes for %d lanes", len(outs), len(lanes))
	}
	for i, out := range outs {
		if out.Err != nil {
			t.Fatalf("lane %d: %v", i, out.Err)
		}
		scalar, err := Run(ctx, lanes[i].Spec)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResult(t, "lane", scalar.Result, out.Output.Result)
	}
}

// TestLaneDifferentialMatrix is the vector/scalar differential over
// kinds x topologies x options for the scheduler's lane-count shapes:
// 1, 2, K equal windows, and K windows that don't divide each other.
func TestLaneDifferentialMatrix(t *testing.T) {
	ctx := context.Background()
	shapes := []struct {
		name    string
		windows []int
		bands   []float64
	}{
		{"one", []int{5000}, nil},
		{"two", []int{4000, 6000}, []float64{0, 0.002}},
		{"equal4", []int{5000, 5000, 5000, 5000}, []float64{0, 0.001, 0.002, 0.004}},
		{"ragged4", []int{3000, 4500, 4500, 7000}, []float64{0.002, 0, 0.003, 0}},
	}
	for _, kind := range allKinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			for _, sh := range shapes {
				base := Options{Nodes: 2, Warmup: 2000, Seed: 11}
				assertLanesMatchScalar(t, ctx, groupOf(kind, "tpc-c", base, sh.windows, sh.bands))
			}
		})
	}
	// Topology / placement / optimization coverage on one D2M kind and
	// one baseline kind (topologies apply to both; placement and the
	// bypass/prefetch toggles only shape the D2M kinds).
	t.Run("options", func(t *testing.T) {
		t.Parallel()
		variants := []Options{
			{Nodes: 4, Warmup: 2000, Topology: "ring"},
			{Nodes: 4, Warmup: 2000, Topology: "mesh", Placement: "local"},
			{Nodes: 4, Warmup: 2000, Topology: "torus", Placement: "spread", Seed: 3},
			{Nodes: 2, Warmup: 2000, Bypass: true, Prefetch: true, MDScale: 2},
		}
		for _, base := range variants {
			assertLanesMatchScalar(t, ctx, groupOf(D2MNSR, "radix", base, []int{3000, 5000, 8000}, []float64{0, 0.002, 0}))
		}
		assertLanesMatchScalar(t, ctx, groupOf(Base3L, "radix",
			Options{Nodes: 4, Warmup: 2000, Topology: "torus"}, []int{3000, 5000, 8000}, nil))
	})
}

// TestLaneGroupWarmCache checks RunGroup participates in warm-state
// reuse exactly like Run: a cold group deposits the shared snapshot, a
// second group restores it, and both match the scalar path.
func TestLaneGroupWarmCache(t *testing.T) {
	ctx := context.Background()
	wc := newMapWarmCache()
	base := Options{Nodes: 2, Warmup: 4000, Seed: 5}
	mkLanes := func() []GroupLane {
		lanes := groupOf(D2MNSR, "tpc-c", base, []int{3000, 6000}, []float64{0, 0.002})
		for i := range lanes {
			lanes[i].Spec.Warm = wc
		}
		return lanes
	}
	cold, err := RunGroup(ctx, mkLanes())
	if err != nil {
		t.Fatal(err)
	}
	warm, err := RunGroup(ctx, mkLanes())
	if err != nil {
		t.Fatal(err)
	}
	if wc.misses != 1 || wc.hits != 1 {
		t.Fatalf("warm cache saw %d hits / %d misses, want 1 / 1", wc.hits, wc.misses)
	}
	for i := range cold {
		scalar, err := Run(ctx, RunSpec{Kind: D2MNSR, Benchmark: "tpc-c", Options: mkLanes()[i].Spec.Options})
		if err != nil {
			t.Fatal(err)
		}
		assertSameResult(t, "cold group", scalar.Result, cold[i].Output.Result)
		assertSameResult(t, "warm group", scalar.Result, warm[i].Output.Result)
	}
}

// TestLaneGroupCancelOneLane cancels one lane before the group runs:
// the cancelled lane reports its context error and every surviving
// lane stays byte-identical to its scalar run — a lane demotion must
// not perturb the shared trajectory.
func TestLaneGroupCancelOneLane(t *testing.T) {
	ctx := context.Background()
	lanes := groupOf(D2MNSR, "tpc-c", Options{Nodes: 2, Warmup: 2000, Seed: 9},
		[]int{3000, 9000, 6000}, []float64{0, 0, 0.002})
	dead, cancel := context.WithCancel(ctx)
	cancel()
	lanes[1].Ctx = dead // the longest lane: the walk must also stop early

	outs, err := RunGroup(ctx, lanes)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(outs[1].Err, context.Canceled) {
		t.Fatalf("cancelled lane err = %v, want context.Canceled", outs[1].Err)
	}
	for _, i := range []int{0, 2} {
		if outs[i].Err != nil {
			t.Fatalf("surviving lane %d: %v", i, outs[i].Err)
		}
		scalar, err := Run(ctx, lanes[i].Spec)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResult(t, "surviving lane", scalar.Result, outs[i].Output.Result)
	}
}

// TestLaneGroupRejectsMixedKeys: lanes with different warm identities
// (or replicated specs) must be rejected before any work happens.
func TestLaneGroupRejectsMixedKeys(t *testing.T) {
	ctx := context.Background()
	lanes := []GroupLane{
		{Spec: RunSpec{Kind: D2MNSR, Benchmark: "tpc-c", Options: Options{Nodes: 2, Warmup: 2000, Measure: 3000}}},
		{Spec: RunSpec{Kind: D2MNSR, Benchmark: "tpc-c", Options: Options{Nodes: 4, Warmup: 2000, Measure: 3000}}},
	}
	if _, err := RunGroup(ctx, lanes); err == nil {
		t.Fatal("RunGroup accepted lanes with different warm identities")
	}
	rep := []GroupLane{
		{Spec: RunSpec{Kind: D2MNSR, Benchmark: "tpc-c", Replicates: 3, Options: Options{Nodes: 2, Warmup: 2000, Measure: 3000}}},
	}
	if _, err := RunGroup(ctx, rep); err == nil {
		t.Fatal("RunGroup accepted a replicated spec")
	}
	if _, ok := LaneKey(rep[0].Spec); ok {
		t.Fatal("LaneKey called a replicated spec eligible")
	}
}
