package d2m

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"runtime"
	"sync"

	"d2m/internal/baseline"
	"d2m/internal/core"
	"d2m/internal/energy"
	"d2m/internal/noc"
	"d2m/internal/sim"
	"d2m/internal/trace"
	"d2m/internal/workloads"
)

// Kind identifies one of the five evaluated system configurations
// (Figure 4 plus the D2M variants of §V-A).
type Kind int

const (
	// Base2L is the two-level baseline: L1s + shared inclusive LLC +
	// full-map directory (ARM A57-like, perfect L1 way prediction).
	Base2L Kind = iota
	// Base3L adds a 256kB private L2 per core.
	Base3L
	// D2MFS is the split hierarchy with a far-side LLC.
	D2MFS
	// D2MNS moves the LLC slices to the near side of the interconnect
	// with the simple pressure-based allocation policy (§IV-B).
	D2MNS
	// D2MNSR adds the replication heuristics and dynamic indexing
	// (§IV-C, §IV-D).
	D2MNSR
	// D2MHybrid is the §III-A interoperability variant: D2M-NS-R's
	// backend behind unmodified cores with conventional TLBs and tagged
	// L1 caches ("achieving most of the reported D2M advantages").
	D2MHybrid
	// D2MAdaptive is D2M-NS-R with adaptive way repartitioning: each
	// node shares a fixed way budget between its L1-D and MD1-D, and an
	// epoch-boundary policy moves ways toward whichever side missed
	// more during the elapsed interval.
	D2MAdaptive
	// D2MLevelPred is D2M-NS-R with a per-region level predictor that
	// launches a speculative data probe of the predicted serving level
	// in parallel with the metadata walk.
	D2MLevelPred
)

// Kinds returns the paper's five configurations in its presentation
// order (Figure 4 plus §V-A). The variants beyond the paper's
// comparison set — the hybrid and the adaptive mechanisms — are in
// AllKinds.
func Kinds() []Kind { return []Kind{Base2L, Base3L, D2MFS, D2MNS, D2MNSR} }

// AllKinds returns every registered configuration in presentation
// order. The list is derived from the mechanism registry, so a newly
// registered mechanism appears here — and everywhere this feeds (kind
// parsing, capabilities, sweeps) — without further wiring.
func AllKinds() []Kind {
	mechs := core.Mechanisms()
	out := make([]Kind, 0, len(mechs))
	for _, m := range mechs {
		out = append(out, Kind(m.Order))
	}
	return out
}

func (k Kind) String() string {
	if m, ok := core.MechanismByOrder(int(k)); ok {
		return m.Name
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// IsD2M reports whether the kind is a split-hierarchy configuration.
func (k Kind) IsD2M() bool {
	m, ok := core.MechanismByOrder(int(k))
	return ok && m.D2M
}

// MarshalText renders the kind by name, so JSON output (d2msim -json,
// experiments -json) says "D2M-NS-R" rather than 4 — including when the
// kind is a map key.
func (k Kind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// UnmarshalText parses a kind name (case-insensitive, dashes optional).
func (k *Kind) UnmarshalText(text []byte) error {
	m, ok := core.MechanismByName(string(text))
	if !ok {
		return fmt.Errorf("d2m: unknown kind %q", text)
	}
	*k = Kind(m.Order)
	return nil
}

// Options control a simulation run. The zero value selects the paper's
// setup: 8 nodes, a 100k-access warmup and a 400k-access measurement
// window, MD structures at 1x scale.
type Options struct {
	// Nodes is the core count (1..8).
	Nodes int
	// Warmup is the number of untimed cache-warming accesses.
	Warmup int
	// Measure is the number of measured accesses.
	Measure int
	// Seed offsets the workload seeds, for replicated experiments.
	Seed uint64
	// MDScale scales the MD1/MD2/MD3 entry counts (1, 2 or 4; the
	// scaling study of §V-D footnote 5). Zero means 1.
	MDScale int
	// Bypass enables the cache-bypass optimization on the D2M kinds
	// (the §I optimization list; see core.Config.CacheBypass).
	Bypass bool
	// Prefetch enables the metadata-guided next-line prefetcher on the
	// D2M kinds (a §IV-D extension; see core.Config.Prefetch).
	Prefetch bool
	// Topology selects the interconnect: "crossbar" (default), "ring",
	// "mesh" or "torus". The crossbar is what the calibrated results
	// use; the others make hop distance placement-dependent, growing
	// the near-side locality advantage.
	Topology string
	// Placement selects the NS-LLC victim-slice policy on the near-side
	// D2M kinds: "pressure" (default, the paper's §IV-B heuristic),
	// "local" (always the own slice), or "spread" (uniform across
	// slices, approximating address interleaving). The endpoints bound
	// the §IV-B design space for ablations.
	Placement string
	// LinkBandwidth models a bandwidth-constrained interconnect: each
	// of the machine's links moves this many flits per cycle, and a run
	// whose flit-hop volume exceeds the link capacity over its runtime
	// is stretched to fit. Zero keeps the paper's infinite-bandwidth
	// evaluation ("To avoid mixing the performance effects of traffic
	// reduction and latency reduction, we have simulated a system with
	// infinite bandwidth", §V-D — the constrained mode reproduces the
	// remark that the traffic cut alone "could potentially result in a
	// 2x speedup").
	LinkBandwidth float64
}

// placement resolves the Options.Placement string.
func (o Options) placement() (core.PlacementPolicy, error) {
	switch o.Placement {
	case "", "pressure":
		return core.PlacePressure, nil
	case "local":
		return core.PlaceLocal, nil
	case "spread":
		return core.PlaceSpread, nil
	default:
		return 0, fmt.Errorf("d2m: unknown placement %q (want pressure, local or spread)", o.Placement)
	}
}

// gridDims picks the mesh/torus shape for a node count.
func gridDims(nodes int) (w, h int) {
	if nodes >= 4 && nodes%2 == 0 {
		return nodes / 2, 2
	}
	return nodes, 1
}

// topology resolves the Options.Topology string.
func (o Options) topology() (noc.Topology, error) {
	switch o.Topology {
	case "", "crossbar":
		return noc.Crossbar{}, nil
	case "ring":
		return noc.Ring{Nodes: o.Nodes}, nil
	case "mesh":
		w, h := gridDims(o.Nodes)
		return noc.Mesh{W: w, H: h}, nil
	case "torus":
		w, h := gridDims(o.Nodes)
		return noc.Torus{W: w, H: h}, nil
	default:
		return nil, fmt.Errorf("d2m: unknown topology %q (want crossbar, ring, mesh or torus)", o.Topology)
	}
}

func (o Options) withDefaults() Options {
	if o.Nodes == 0 {
		o.Nodes = 8
	}
	if o.Warmup == 0 {
		o.Warmup = 100_000
	}
	if o.Measure == 0 {
		o.Measure = 400_000
	}
	if o.MDScale == 0 {
		o.MDScale = 1
	}
	return o
}

// PKMO holds the appendix's protocol event frequencies, in events per
// kilo memory operation.
type PKMO struct {
	ALLC, AMem, ANode float64 // case A by master location
	B                 float64
	C                 float64
	D1, D2, D3, D4    float64
	E, F              float64
}

// A returns the total read-miss-with-metadata-hit rate.
func (p PKMO) A() float64 { return p.ALLC + p.AMem + p.ANode }

// D returns the total metadata-miss rate.
func (p PKMO) D() float64 { return p.D1 + p.D2 + p.D3 + p.D4 }

// Result is the outcome of running one benchmark on one configuration.
type Result struct {
	Kind      Kind
	Benchmark string
	Suite     string

	// Timing.
	Cycles uint64
	// NodeCycles are the per-node clocks behind Cycles (their max);
	// RunMix uses them to attribute time to co-scheduled programs.
	NodeCycles     []uint64
	Instructions   uint64
	Accesses       uint64
	AvgMissLatency float64
	// Miss-latency distribution (cycles at the 50th/95th/99th
	// percentile): the tail the averages hide — D2M's deterministic
	// location lookup cuts the tail harder than the mean.
	MissLatP50, MissLatP95, MissLatP99 uint64

	// Traffic (Figure 5).
	Messages     uint64
	D2MMessages  uint64
	Bytes        uint64
	DataBytes    uint64
	MsgsPerKI    float64
	D2MMsgsPerKI float64
	// Hops is the hop-weighted traffic (link crossings); on ring/mesh
	// topologies it separates near from far messages, the "fewer
	// network hops" effect the paper attributes to D2M.
	Hops uint64

	// Energy (Figure 6).
	EnergyPJ float64
	EDP      float64

	// Cache behaviour (Table IV).
	MissRatioI, MissRatioD float64
	LateHitI, LateHitD     float64
	// NearHitI/NearHitD: for D2M-NS kinds, the fraction of LLC hits
	// served by the local slice; for Base-3L, the L2 hit ratio (the
	// "(L2 hits)" cell of Table IV); zero for Base-2L and D2M-FS.
	NearHitI, NearHitD float64

	// Coherence (Table V).
	InvRecv         uint64
	PrivateMissFrac float64
	DirectMissFrac  float64

	// Metadata/directory pressure (§V-B) and protocol events.
	MD3Lookups uint64
	DirLookups uint64
	// MD1HitFrac is the fraction of accesses whose active metadata was
	// found in the first-level MD (§II-A reports 98.8% combined
	// coverage for D2D).
	MD1HitFrac float64
	// MD2Accesses and L2TagAccesses support the §V-B structure-pressure
	// comparison ("MD2 is accessed 58% as often as the L2-tags in
	// Base-3L").
	MD2Accesses   uint64
	L2TagAccesses uint64
	// BypassedReads counts reads served without L1 allocation when
	// Options.Bypass is set.
	BypassedReads uint64
	// PrefetchIssued and PrefetchUseful report the metadata-guided
	// prefetcher when Options.Prefetch is set. Note: prefetch fetches
	// are accounted in the LLC/DRAM/event counters like demand fetches.
	PrefetchIssued, PrefetchUseful uint64
	// EnergyByOp is the dynamic-energy breakdown in pJ, keyed by
	// operation class (l1-tag, l1-data, md1, dram, noc-flit, ...).
	EnergyByOp map[string]float64
	// LockCollisionRate is the fraction of blocking region transactions
	// that would have stalled on a hashed lock bit held by an unrelated
	// region (appendix: negligible with 1K bits).
	LockCollisionRate float64
	// Repartitions counts the epoch-boundary way moves between L1-D and
	// MD1-D on the adaptive kind (D2M-Adaptive).
	Repartitions uint64
	// Level-predictor accounting (D2M-LevelPred): speculative parallel
	// probes launched, how many matched the serving level, how many
	// probed the wrong level, and the critical-path cycles hidden.
	PredSpeculations, PredHits, PredMispredicts uint64
	PredCyclesSaved                             uint64
	// BandwidthBound reports that Options.LinkBandwidth stretched the
	// runtime (the interconnect, not latency, limited the run).
	BandwidthBound bool
	Events         PKMO

	DRAMReads, DRAMWrites uint64
}

// mechOptions projects the run options onto the mechanism-neutral
// construction options of the registry. Placement and topology were
// validated by Options.Validate before any run reaches here.
func mechOptions(opt Options) core.MechOptions {
	pl, _ := opt.placement()
	topo, _ := opt.topology()
	return core.MechOptions{
		Nodes:     opt.Nodes,
		Seed:      opt.Seed,
		MDScale:   opt.MDScale,
		Bypass:    opt.Bypass,
		Prefetch:  opt.Prefetch,
		Placement: pl,
		Topology:  topo,
	}
}

// mechFor resolves a kind's registry entry.
func mechFor(kind Kind) (*core.Mechanism, error) {
	m, ok := core.MechanismByOrder(int(kind))
	if !ok {
		return nil, fmt.Errorf("d2m: kind %v has no registered mechanism", kind)
	}
	return m, nil
}

// baselineConfig builds the baseline configuration for a kind. The run
// path constructs through the mechanism registry; this remains for the
// storage model and tests (the registry-equivalence test pins the two
// together).
func baselineConfig(kind Kind, opt Options) baseline.Config {
	cfg := baseline.Base2L()
	if kind == Base3L {
		cfg = baseline.Base3L()
	}
	cfg.Nodes = opt.Nodes
	cfg.Topology, _ = opt.topology()
	return cfg
}

// coreConfig builds the D2M configuration for a kind. Like
// baselineConfig it is off the run path: the storage model and the
// calibration experiments read geometries from it, and the
// registry-equivalence test asserts it matches what the registry
// constructs, field for field.
func coreConfig(kind Kind, opt Options) core.Config {
	cfg := core.DefaultConfig()
	cfg.Nodes = opt.Nodes
	cfg.Seed = opt.Seed + 1
	cfg.MD2Pruning = true
	switch kind {
	case D2MFS:
	case D2MNS:
		cfg.NearSide = true
	case D2MNSR:
		cfg.NearSide = true
		cfg.Replication = true
		cfg.DynamicIndexing = true
	case D2MHybrid:
		cfg.NearSide = true
		cfg.Replication = true
		cfg.DynamicIndexing = true
		cfg.TraditionalL1 = true
	case D2MAdaptive:
		cfg.NearSide = true
		cfg.Replication = true
		cfg.DynamicIndexing = true
		cfg.AdaptiveWays = true
		cfg.EpochLen = core.DefaultEpochLen
	case D2MLevelPred:
		cfg.NearSide = true
		cfg.Replication = true
		cfg.DynamicIndexing = true
		cfg.LevelPred = true
		cfg.PredEntries = core.DefaultPredEntries
	default:
		panic(fmt.Sprintf("d2m: coreConfig on %v", kind))
	}
	cfg.CacheBypass = opt.Bypass
	cfg.Prefetch = opt.Prefetch
	cfg.Placement, _ = opt.placement()
	cfg.Topology, _ = opt.topology()
	cfg.MD1Sets *= opt.MDScale
	cfg.MD2Sets *= opt.MDScale
	cfg.MD3Sets *= opt.MDScale
	return cfg
}

// RunSpec describes one simulation for Run: the configuration kind,
// the workload, the run options, and the execution knobs that used to
// be separate entry points (replication and warm-state reuse).
type RunSpec struct {
	Kind      Kind
	Benchmark string
	Options   Options
	// Replicates, when >= 2, runs the spec that many times with
	// decorrelated seeds (Options.Seed+1 ..) and fills
	// RunOutput.Replicated next to the mean-projected Result. 0 and 1
	// both mean a single run; negative is an error.
	Replicates int
	// Warm, when non-nil, lets runs sharing a warm identity (WarmKey)
	// restore the post-warmup machine state instead of re-simulating
	// the warmup. Nil always warms from scratch.
	Warm WarmCache
}

// RunOutput is Run's result. Result holds the single-run metrics — or,
// for a replicated spec, the mean projection of the aggregate (see
// Replicated.MeanResult); Replicated is set only when spec.Replicates
// was >= 2.
type RunOutput struct {
	Result     Result
	Replicated *Replicated
	// Engine names the execution path that produced Result: EngineScalar
	// for Run, EngineVector for a RunGroup lane. The two are
	// byte-identical by contract; the field exists so services can report
	// which path served a job.
	Engine string
}

// Run simulates one RunSpec and returns the extracted metrics. It is
// the package's single entry point: cancellation comes from ctx (the
// simulation stops at the next engine checkpoint when ctx is done),
// replication and warm-state reuse from the spec. The former
// RunContext / RunContextWarm / ReplicateContext / ReplicateContextWarm
// entry points were deprecated in v1.3 and removed in v1.4.
func Run(ctx context.Context, spec RunSpec) (RunOutput, error) {
	if spec.Replicates < 0 {
		return RunOutput{}, fmt.Errorf("d2m: Run with Replicates = %d", spec.Replicates)
	}
	if spec.Replicates >= 2 {
		agg, err := replicateContext(ctx, spec.Kind, spec.Benchmark, spec.Options, spec.Replicates, spec.Warm)
		if err != nil {
			return RunOutput{}, err
		}
		return RunOutput{Result: agg.MeanResult(), Replicated: &agg, Engine: EngineScalar}, nil
	}
	res, err := runSingle(ctx, spec.Kind, spec.Benchmark, spec.Options, spec.Warm)
	if err != nil {
		return RunOutput{}, err
	}
	return RunOutput{Result: res, Engine: EngineScalar}, nil
}

// measure runs the stream on the kind's machine and fills the result.
func (r *Result) measure(kind Kind, opt Options, src trace.Stream) {
	r.measureContext(context.Background(), kind, opt, src)
}

// measureContext runs the stream on the kind's machine and fills the
// result, abandoning the run when ctx is done. The machine is
// constructed, driven and released through the mechanism registry, so
// every registered kind takes the same path.
func (r *Result) measureContext(ctx context.Context, kind Kind, opt Options, src trace.Stream) error {
	mech, err := mechFor(kind)
	if err != nil {
		return err
	}
	inst := mech.New(mechOptions(opt))
	defer inst.Release() // recycle the hierarchy's arrays for the next run
	engine := sim.NewEngine(inst, opt.Nodes)
	rep, err := engine.RunContext(ctx, src, opt.Warmup, opt.Measure)
	if err != nil {
		return err
	}
	r.fillCommon(rep)
	flitHops, err := r.fillFromInstance(inst, rep, mech)
	if err != nil {
		return err
	}
	r.applyBandwidth(opt, flitHops)
	return nil
}

// fillFromInstance extracts the mechanism-family metrics from the
// instance's concrete system and returns the flit-hop count for the
// bandwidth model.
func (r *Result) fillFromInstance(inst core.MechInstance, rep sim.Report, mech *core.Mechanism) (uint64, error) {
	switch s := inst.Underlying().(type) {
	case *baseline.System:
		r.fillBaseline(s, rep)
		return s.Meter().Count(energy.OpNoCFlit), nil
	case *core.System:
		r.fillCore(s, rep, mech)
		return s.Meter().Count(energy.OpNoCFlit), nil
	default:
		return 0, fmt.Errorf("d2m: mechanism %s exposes unknown system type %T", mech.Name, s)
	}
}

// applyBandwidth stretches the runtime when the interconnect cannot
// carry the run's flit-hop volume in the computed cycles: the aggregate
// fabric capacity is one link per node plus the hub link, each moving
// LinkBandwidth flits per cycle.
func (r *Result) applyBandwidth(opt Options, flitHops uint64) {
	if opt.LinkBandwidth <= 0 || r.Cycles == 0 {
		return
	}
	links := float64(opt.Nodes + 1)
	bwCycles := float64(flitHops) / (links * opt.LinkBandwidth)
	if bwCycles > float64(r.Cycles) {
		r.BandwidthBound = true
		// The whole machine is held back together: every node's clock
		// stretches by the same factor (the fabric is shared).
		scale := bwCycles / float64(r.Cycles)
		for i, c := range r.NodeCycles {
			r.NodeCycles[i] = uint64(float64(c) * scale)
		}
		r.Cycles = uint64(bwCycles)
	}
}

// specStreams builds the workload streams, applying the run seed.
func specStreams(sp *workloads.Spec, opt Options) []trace.Stream {
	if opt.Seed == 0 {
		return sp.Streams(opt.Nodes)
	}
	copySpec := *sp
	copySpec.Seed ^= opt.Seed * 0x9e3779b97f4a7c15
	return copySpec.Streams(opt.Nodes)
}

func (r *Result) fillCommon(rep sim.Report) {
	r.Cycles = rep.Cycles
	r.NodeCycles = rep.NodeCycles
	r.Instructions = rep.Instructions
	r.Accesses = rep.Accesses
	r.MissLatP50 = rep.MissLatencyPercentile(0.50)
	r.MissLatP95 = rep.MissLatencyPercentile(0.95)
	r.MissLatP99 = rep.MissLatencyPercentile(0.99)
	r.LateHitI = rep.LateHitRatioI()
	r.LateHitD = rep.LateHitRatioD()
}

func perKI(count, instructions uint64) float64 {
	if instructions == 0 {
		return 0
	}
	return float64(count) / float64(instructions) * 1000
}

func (r *Result) fillBaseline(s *baseline.System, rep sim.Report) {
	st := s.Stats()
	fab := s.Fabric()
	r.Messages = fab.Messages()
	r.Bytes = fab.Bytes()
	r.DataBytes = fab.DataBytes()
	r.MsgsPerKI = perKI(fab.Messages(), rep.Instructions)
	r.Hops = fab.Hops()
	r.EnergyPJ = s.Meter().TotalPJ(rep.Cycles)
	r.EDP = s.Meter().EDP(rep.Cycles)
	r.EnergyByOp = s.Meter().BreakdownPJ()
	r.MissRatioI = st.MissRatioI()
	r.MissRatioD = st.MissRatioD()
	if s.Config().L2Sets > 0 {
		l2 := st.L2HitRatio()
		r.NearHitI, r.NearHitD = l2, l2
	}
	r.AvgMissLatency = st.AvgMissLatency()
	r.InvRecv = st.InvRecv + st.BackInv
	r.DirLookups = st.DirLookups
	r.L2TagAccesses = s.Meter().Count(energy.OpL2Tag)
	r.DRAMReads = st.DRAMReads
	r.DRAMWrites = st.DRAMWrites
}

func (r *Result) fillCore(s *core.System, rep sim.Report, mech *core.Mechanism) {
	st := s.Stats()
	fab := s.Fabric()
	r.Messages = fab.Messages()
	r.D2MMessages = fab.D2MMessages()
	r.Bytes = fab.Bytes()
	r.DataBytes = fab.DataBytes()
	r.MsgsPerKI = perKI(fab.Messages(), rep.Instructions)
	r.D2MMsgsPerKI = perKI(fab.D2MMessages(), rep.Instructions)
	r.Hops = fab.Hops()
	r.EnergyPJ = s.Meter().TotalPJ(rep.Cycles)
	r.EDP = s.Meter().EDP(rep.Cycles)
	r.EnergyByOp = s.Meter().BreakdownPJ()
	r.MissRatioI = st.MissRatioI()
	r.MissRatioD = st.MissRatioD()
	if mech.ReportNearHit {
		r.NearHitI = st.NearSideHitRatioI()
		r.NearHitD = st.NearSideHitRatioD()
	}
	r.AvgMissLatency = st.AvgMissLatency()
	r.InvRecv = st.InvRecv
	r.PrivateMissFrac = st.PrivateMissFraction()
	r.DirectMissFrac = st.DirectMissFraction()
	r.MD3Lookups = st.MD3Lookups
	r.BypassedReads = st.BypassedReads
	r.PrefetchIssued = st.PrefetchIssued
	r.PrefetchUseful = st.PrefetchUseful
	r.LockCollisionRate = st.LockCollisionRate()
	r.Repartitions = st.Repartitions
	r.PredSpeculations = st.PredSpeculations
	r.PredHits = st.PredHits
	r.PredMispredicts = st.PredMispredicts
	r.PredCyclesSaved = st.PredCyclesSaved
	r.MD2Accesses = s.Meter().Count(energy.OpMD2)
	if st.Accesses > 0 {
		r.MD1HitFrac = float64(st.MD1Hits) / float64(st.Accesses)
	}
	r.DRAMReads = st.DRAMReads
	r.DRAMWrites = st.DRAMWrites
	pk := func(c uint64) float64 { return st.PKMO(c) }
	r.Events = PKMO{
		ALLC: pk(st.EvALLC), AMem: pk(st.EvAMem), ANode: pk(st.EvANode),
		B: pk(st.EvB), C: pk(st.EvC),
		D1: pk(st.EvD1), D2: pk(st.EvD2), D3: pk(st.EvD3), D4: pk(st.EvD4),
		E: pk(st.EvE), F: pk(st.EvF),
	}
}

// Benchmarks returns every available benchmark name.
func Benchmarks() []string { return workloads.Names() }

// Suites returns the five suite names.
func Suites() []string { return workloads.Suites() }

// SuiteVector is the strided/vector extras suite: synthetic SIMD
// streaming kernels outside the paper's five-suite catalog (not in
// Suites() or Benchmarks()), resolvable by name like any benchmark and
// advertised separately in the service's capabilities.
const SuiteVector = workloads.SuiteVector

// SuiteOf returns the suite of a benchmark: the catalog suite, or
// SuiteTrace for a stored-trace reference ("trace:<id>").
func SuiteOf(bench string) (string, bool) {
	if id, ok := traceName(bench); ok {
		if _, ok := TraceByID(id); ok {
			return SuiteTrace, true
		}
		return "", false
	}
	sp, ok := workloads.ByName(bench)
	if !ok {
		return "", false
	}
	return sp.Suite, true
}

// BenchmarksOf returns the benchmarks of one suite, in catalog order.
func BenchmarksOf(suite string) []string {
	var out []string
	for _, sp := range workloads.BySuite(suite) {
		out = append(out, sp.Name)
	}
	return out
}

// RecordTrace generates a benchmark's access stream (interleaved across
// nodes) and writes it as a v2 binary trace file (varint-delta records,
// CRC-protected footer), usable with RunTrace, ImportTrace or external
// tools.
func RecordTrace(bench string, nodes, accesses int, w io.Writer) (int, error) {
	sp, ok := workloads.ByName(bench)
	if !ok {
		return 0, fmt.Errorf("d2m: unknown benchmark %q", bench)
	}
	if nodes < 1 || nodes > 8 {
		return 0, fmt.Errorf("d2m: nodes = %d out of range 1..8", nodes)
	}
	if accesses < 1 {
		return 0, fmt.Errorf("d2m: accesses = %d", accesses)
	}
	fw, err := trace.NewFileWriter(w)
	if err != nil {
		return 0, err
	}
	iv := trace.NewInterleaver(sp.Streams(nodes))
	for i := 0; i < accesses; i++ {
		if err := fw.Append(iv.Next()); err != nil {
			return i, err
		}
	}
	return accesses, fw.Close()
}

// RunTrace replays a recorded trace against a configuration. The trace
// loops if shorter than warmup+measure. Suite-level metrics that depend
// on the catalog (Suite) are blank.
func RunTrace(kind Kind, r io.Reader, opt Options) (Result, error) {
	opt = opt.withDefaults()
	rd, err := trace.ReadTrace(r)
	if err != nil {
		return Result{}, err
	}
	rd.Loop = true
	if max := rd.MaxNode(); max >= opt.Nodes {
		return Result{}, fmt.Errorf("d2m: trace uses node %d but Nodes = %d", max, opt.Nodes)
	}
	if err := opt.Validate(); err != nil {
		return Result{}, err
	}
	res := Result{Kind: kind, Benchmark: "trace"}
	res.measure(kind, opt, rd)
	return res, nil
}

// Replicated runs one benchmark on one configuration n times with
// decorrelated workload seeds and returns the per-metric mean and
// standard deviation, for experiments that want error bars on top of
// the deterministic single-seed runs.
type Replicated struct {
	Kind      Kind
	Benchmark string
	N         int
	// Mean and Std hold, in order: cycles, msgs/KI, EDP, L1-D miss
	// ratio, average miss latency.
	CyclesMean, CyclesStd   float64
	MsgsPerKIMean, MsgsStd  float64
	EDPMean, EDPStd         float64
	MissDMean, MissDStd     float64
	MissLatMean, MissLatStd float64
	PrivateMean, PrivateStd float64
}

// MeanResult projects the aggregate onto the single-run Result shape,
// so replicated runs flow through the same caches, stores, and sweep
// plumbing as single runs. Count-style fields that have no meaningful
// mean stay zero.
func (r Replicated) MeanResult() Result {
	suite, _ := SuiteOf(r.Benchmark)
	return Result{
		Kind:            r.Kind,
		Benchmark:       r.Benchmark,
		Suite:           suite,
		Cycles:          uint64(r.CyclesMean),
		MsgsPerKI:       r.MsgsPerKIMean,
		EDP:             r.EDPMean,
		MissRatioD:      r.MissDMean,
		AvgMissLatency:  r.MissLatMean,
		PrivateMissFrac: r.PrivateMean,
	}
}

// replicateContext is the replication engine behind Run: the n seeded
// runs are independent simulations, so they execute concurrently on a
// bounded worker set (ExperimentWorkers, defaulting to GOMAXPROCS);
// samples are gathered by seed index and aggregated in that fixed
// order, so the result is byte-identical to running the seeds serially.
// When a run fails, the remaining runs are cancelled and the error of
// the lowest-indexed failed seed is returned (a context error only if
// no seed failed on its own). wc, when non-nil, lets each seeded run
// reuse a warm-state snapshot for its own (seed-specific) warm
// identity.
func replicateContext(ctx context.Context, kind Kind, bench string, opt Options, n int, wc WarmCache) (Replicated, error) {
	if n < 1 {
		return Replicated{}, fmt.Errorf("d2m: Replicate with n = %d", n)
	}
	workers := ExperimentWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	samples := make([]repSample, n)
	errs := make([]error, n)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				o := opt
				o.Seed = opt.Seed + uint64(i) + 1
				r, err := runSingle(runCtx, kind, bench, o, wc)
				if err != nil {
					errs[i] = err
					cancel() // a failed seed fails the aggregate; stop the rest
					continue
				}
				samples[i] = repSample{
					float64(r.Cycles), r.MsgsPerKI, r.EDP, r.MissRatioD, r.AvgMissLatency, r.PrivateMissFrac,
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()

	// Prefer a seed's own error over the context-cancellation errors the
	// siblings observed, lowest index first, so the reported error does
	// not depend on scheduling.
	var ctxErr error
	for i, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if ctxErr == nil {
				ctxErr = errs[i]
			}
			continue
		}
		return Replicated{}, err
	}
	if ctxErr != nil {
		return Replicated{}, ctxErr
	}
	return aggregate(kind, bench, samples), nil
}

// repSample holds the metrics of one replicated run that enter the
// aggregate: cycles, msgs/KI, EDP, L1-D miss ratio, average miss
// latency, private-miss fraction.
type repSample struct{ cyc, msg, edp, missd, lat, priv float64 }

// aggregate folds per-seed samples (in seed order) into the mean/std
// summary.
func aggregate(kind Kind, bench string, samples []repSample) Replicated {
	n := len(samples)
	mean := func(get func(repSample) float64) float64 {
		sum := 0.0
		for _, s := range samples {
			sum += get(s)
		}
		return sum / float64(n)
	}
	std := func(get func(repSample) float64, m float64) float64 {
		if n < 2 {
			return 0
		}
		sum := 0.0
		for _, s := range samples {
			d := get(s) - m
			sum += d * d
		}
		return math.Sqrt(sum / float64(n-1))
	}
	out := Replicated{Kind: kind, Benchmark: bench, N: n}
	out.CyclesMean = mean(func(s repSample) float64 { return s.cyc })
	out.CyclesStd = std(func(s repSample) float64 { return s.cyc }, out.CyclesMean)
	out.MsgsPerKIMean = mean(func(s repSample) float64 { return s.msg })
	out.MsgsStd = std(func(s repSample) float64 { return s.msg }, out.MsgsPerKIMean)
	out.EDPMean = mean(func(s repSample) float64 { return s.edp })
	out.EDPStd = std(func(s repSample) float64 { return s.edp }, out.EDPMean)
	out.MissDMean = mean(func(s repSample) float64 { return s.missd })
	out.MissDStd = std(func(s repSample) float64 { return s.missd }, out.MissDMean)
	out.MissLatMean = mean(func(s repSample) float64 { return s.lat })
	out.MissLatStd = std(func(s repSample) float64 { return s.lat }, out.MissLatMean)
	out.PrivateMean = mean(func(s repSample) float64 { return s.priv })
	out.PrivateStd = std(func(s repSample) float64 { return s.priv }, out.PrivateMean)
	return out
}
