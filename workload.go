package d2m

import (
	"encoding/json"
	"fmt"

	"d2m/internal/trace"
	"d2m/internal/workloads"
)

// WorkloadSpec is a user-defined synthetic workload, the public mirror of
// the internal generator parameters. It can be written by hand, loaded
// from JSON (ParseWorkload), and run on any configuration (RunCustom).
// See internal/workloads for the meaning of each knob; the catalog's 45
// paper benchmarks are instances of the same model.
type WorkloadSpec struct {
	// Name labels results.
	Name string `json:"name"`
	// Seed makes runs reproducible; 0 picks a fixed default.
	Seed uint64 `json:"seed"`

	// Instruction stream.
	CodeBytes    int     `json:"code_bytes"`
	HotCodeBytes int     `json:"hot_code_bytes"`
	HotJumpFrac  float64 `json:"hot_jump_frac"`
	RejumpFrac   float64 `json:"rejump_frac"`
	JumpProb     float64 `json:"jump_prob"`
	SharedCode   bool    `json:"shared_code"`

	// Data stream.
	DataFrac   float64 `json:"data_frac"`
	WriteFrac  float64 `json:"write_frac"`
	RepeatFrac float64 `json:"repeat_frac"`

	HotDataBytes    int     `json:"hot_data_bytes"`
	HotDataFrac     float64 `json:"hot_data_frac"`
	WarmBytes       int     `json:"warm_bytes"`
	WarmFrac        float64 `json:"warm_frac"`
	WarmStrideLines int     `json:"warm_stride_lines"`
	PrivateWS       int     `json:"private_ws"`

	SharedFrac      float64 `json:"shared_frac"`
	SharedHotBytes  int     `json:"shared_hot_bytes"`
	SharedHotFrac   float64 `json:"shared_hot_frac"`
	SharedWS        int     `json:"shared_ws"`
	SharedWriteFrac float64 `json:"shared_write_frac"`

	StreamFrac  float64 `json:"stream_frac"`
	StreamBytes int     `json:"stream_bytes"`
	StrideLines int     `json:"stride_lines"`
	StreamReuse int     `json:"stream_reuse"`
	// VectorLines models vector/SIMD streaming: each stream touch reads
	// this many consecutive lines before the walk advances by
	// StrideLines. 0 and 1 both mean single-line touches.
	VectorLines int `json:"vector_lines"`

	MigratoryLines int     `json:"migratory_lines"`
	MigratoryFrac  float64 `json:"migratory_frac"`
}

// Validate reports whether the spec is runnable.
func (w WorkloadSpec) Validate() error {
	frac := func(name string, v float64) error {
		if v < 0 || v > 1 {
			return fmt.Errorf("d2m: workload %q: %s = %v out of [0,1]", w.Name, name, v)
		}
		return nil
	}
	for name, v := range map[string]float64{
		"hot_jump_frac": w.HotJumpFrac, "rejump_frac": w.RejumpFrac,
		"jump_prob": w.JumpProb, "data_frac": w.DataFrac,
		"write_frac": w.WriteFrac, "repeat_frac": w.RepeatFrac,
		"hot_data_frac": w.HotDataFrac, "warm_frac": w.WarmFrac,
		"shared_frac": w.SharedFrac, "shared_hot_frac": w.SharedHotFrac,
		"shared_write_frac": w.SharedWriteFrac, "stream_frac": w.StreamFrac,
		"migratory_frac": w.MigratoryFrac,
	} {
		if err := frac(name, v); err != nil {
			return err
		}
	}
	for name, v := range map[string]int{
		"code_bytes": w.CodeBytes, "hot_code_bytes": w.HotCodeBytes,
		"hot_data_bytes": w.HotDataBytes, "warm_bytes": w.WarmBytes,
		"private_ws": w.PrivateWS, "shared_hot_bytes": w.SharedHotBytes,
		"shared_ws": w.SharedWS, "stream_bytes": w.StreamBytes,
		"warm_stride_lines": w.WarmStrideLines, "stride_lines": w.StrideLines,
		"stream_reuse": w.StreamReuse, "vector_lines": w.VectorLines,
		"migratory_lines": w.MigratoryLines,
	} {
		if v < 0 {
			return fmt.Errorf("d2m: workload %q: %s = %d negative", w.Name, name, v)
		}
	}
	if w.CodeBytes == 0 || w.HotCodeBytes == 0 {
		return fmt.Errorf("d2m: workload %q: code footprints must be positive", w.Name)
	}
	if w.HotDataBytes == 0 || w.PrivateWS == 0 {
		return fmt.Errorf("d2m: workload %q: private data pools must be positive", w.Name)
	}
	return nil
}

// ParseWorkload loads a WorkloadSpec from JSON and validates it.
func ParseWorkload(data []byte) (WorkloadSpec, error) {
	var w WorkloadSpec
	if err := json.Unmarshal(data, &w); err != nil {
		return WorkloadSpec{}, fmt.Errorf("d2m: parsing workload: %w", err)
	}
	if err := w.Validate(); err != nil {
		return WorkloadSpec{}, err
	}
	return w, nil
}

// toInternal converts to the generator's spec.
func (w WorkloadSpec) toInternal() *workloads.Spec {
	name := w.Name
	if name == "" {
		name = "custom"
	}
	seed := w.Seed
	if seed == 0 {
		seed = 0x5ee0
	}
	return &workloads.Spec{
		Name: name, Suite: "Custom", Seed: seed,
		CodeBytes: w.CodeBytes, HotCodeBytes: w.HotCodeBytes,
		HotJumpFrac: w.HotJumpFrac, RejumpFrac: w.RejumpFrac,
		JumpProb: w.JumpProb, SharedCode: w.SharedCode,
		DataFrac: w.DataFrac, WriteFrac: w.WriteFrac, RepeatFrac: w.RepeatFrac,
		HotDataBytes: w.HotDataBytes, HotDataFrac: w.HotDataFrac,
		WarmBytes: w.WarmBytes, WarmFrac: w.WarmFrac,
		WarmStrideLines: w.WarmStrideLines, PrivateWS: w.PrivateWS,
		SharedFrac: w.SharedFrac, SharedHotBytes: w.SharedHotBytes,
		SharedHotFrac: w.SharedHotFrac, SharedWS: w.SharedWS,
		SharedWriteFrac: w.SharedWriteFrac,
		StreamFrac:      w.StreamFrac, StreamBytes: w.StreamBytes,
		StrideLines: w.StrideLines, StreamReuse: w.StreamReuse,
		VectorLines:    w.VectorLines,
		MigratoryLines: w.MigratoryLines, MigratoryFrac: w.MigratoryFrac,
	}
}

// RunCustom simulates a user-defined workload on a configuration.
func RunCustom(kind Kind, w WorkloadSpec, opt Options) (Result, error) {
	if err := w.Validate(); err != nil {
		return Result{}, err
	}
	opt = opt.withDefaults()
	if opt.Nodes < 1 || opt.Nodes > 8 {
		return Result{}, fmt.Errorf("d2m: Nodes = %d out of range 1..8", opt.Nodes)
	}
	if opt.MDScale != 1 && opt.MDScale != 2 && opt.MDScale != 4 {
		return Result{}, fmt.Errorf("d2m: MDScale = %d, want 1, 2 or 4", opt.MDScale)
	}
	sp := w.toInternal()
	if opt.Seed != 0 {
		sp.Seed ^= opt.Seed * 0x9e3779b97f4a7c15
	}
	iv := trace.NewInterleaver(sp.Streams(opt.Nodes))
	res := Result{Kind: kind, Benchmark: sp.Name, Suite: sp.Suite}
	res.measure(kind, opt, iv)
	return res, nil
}
