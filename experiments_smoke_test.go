package d2m

import (
	"strings"
	"testing"
)

// TestExperimentDriversSmoke runs every table/figure driver end to end
// with tiny measurement windows: not for shape assertions (d2m_test.go
// does that at calibrated sizes) but to guard the drivers and renderers
// themselves — row counts, labels, no panics across the full catalog.
func TestExperimentDriversSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full-catalog sweep")
	}
	opt := Options{Warmup: 10_000, Measure: 20_000}
	nBench := len(allBenchNames())
	if nBench != 45 {
		t.Fatalf("catalog has %d benchmarks, want 45", nBench)
	}

	f5 := Figure5(opt)
	if len(f5) != nBench {
		t.Fatalf("Figure5: %d rows", len(f5))
	}
	if out := RenderFigure5(f5); !strings.Contains(out, "tpc-c") {
		t.Error("RenderFigure5 missing tpc-c")
	}
	if red := Figure5Reduction(f5); red <= 0 || red >= 1 {
		t.Errorf("Figure5Reduction = %v, want a real reduction even at tiny windows", red)
	}

	f6 := Figure6(opt)
	if len(f6) != nBench {
		t.Fatalf("Figure6: %d rows", len(f6))
	}
	if out := RenderFigure6(f6); !strings.Contains(out, "EDP") {
		t.Error("RenderFigure6 malformed")
	}
	_ = Figure6Reduction(f6, D2MNSR, Base2L)

	f7 := Figure7(opt)
	if len(f7) != nBench {
		t.Fatalf("Figure7: %d rows", len(f7))
	}
	if out := RenderFigure7(f7); !strings.Contains(out, "speedup") && !strings.Contains(out, "Speedup") {
		t.Error("RenderFigure7 malformed")
	}
	_ = Figure7Average(f7, D2MNSR)

	t4 := TableIV(opt)
	if len(t4) != len(Suites()) {
		t.Fatalf("TableIV: %d rows, want one per suite", len(t4))
	}
	if out := RenderTableIV(t4); !strings.Contains(out, "Database") {
		t.Error("RenderTableIV missing Database suite")
	}

	t5 := TableV(opt)
	if len(t5) != len(Suites()) {
		t.Fatalf("TableV: %d rows", len(t5))
	}
	if out := RenderTableV(t5); !strings.Contains(out, "private") && !strings.Contains(out, "Private") {
		t.Error("RenderTableV malformed")
	}

	pk := AppendixPKMO(opt)
	if pk.Events.A() <= 0 {
		t.Error("AppendixPKMO: zero case-A rate")
	}
	if out := RenderPKMO(pk); !strings.Contains(out, "paper") {
		t.Error("RenderPKMO missing the paper column")
	}

	pr := SRAMPressure(opt)
	if out := RenderPressure(pr); !strings.Contains(out, "MD3") {
		t.Error("RenderPressure missing MD3")
	}

	ns := NodeScaling(opt, []string{"tpc-c"})
	if len(ns) == 0 {
		t.Fatal("NodeScaling: no rows")
	}
	if out := RenderNodeScaling(ns); !strings.Contains(out, "nodes") {
		t.Error("RenderNodeScaling malformed")
	}

	tp := TopologySweep(opt, []string{"tpc-c"})
	if len(tp) == 0 {
		t.Fatal("TopologySweep: no rows")
	}
	if out := RenderTopology(tp); !strings.Contains(out, "mesh") {
		t.Error("RenderTopology missing mesh")
	}

	for name, out := range map[string]string{
		"RenderTableI":   RenderTableI(),
		"RenderTableII":  RenderTableII(),
		"RenderTableIII": RenderTableIII(opt),
	} {
		if len(out) < 100 {
			t.Errorf("%s suspiciously short: %q", name, out)
		}
	}
}
