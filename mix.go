package d2m

import (
	"fmt"

	"d2m/internal/mem"
	"d2m/internal/trace"
	"d2m/internal/workloads"
)

// This file implements a multiprogram interference study, an extension
// the paper's §IV-B motivates: near-side slices give each node its own
// LLC capacity, so a cache-hungry neighbour steals far less from a
// co-scheduled program than it does in a shared monolithic LLC.

// asidStride separates co-scheduled programs' address spaces (every
// workload base is far below 2^36).
const asidStride mem.Addr = 1 << 36

// MixResult reports one co-scheduling experiment: each program's
// machine cycles when run alone on half the machine versus mixed with
// the other program on the whole machine, at identical per-node access
// counts. Slowdown = mixed/solo; isolation is better when it is closer
// to 1.
type MixResult struct {
	Kind           Kind
	BenchA, BenchB string
	SoloA, SoloB   uint64 // cycles, each program alone on half the nodes
	MixedA, MixedB uint64 // cycles of each program's nodes in the mixed run
	SlowdownA      float64
	SlowdownB      float64
	// MixedBound reports whether the mixed run was bandwidth-bound —
	// the interference channel at simulated footprints.
	MixedBound bool
}

// RunMix co-schedules two benchmarks, each on half the machine's nodes
// (program A on the lower half, B on the upper), in disjoint address
// spaces — the multiprogrammed-server scenario. Options.Nodes must be
// even; Measure is the total access count across both programs.
func RunMix(kind Kind, benchA, benchB string, opt Options) (MixResult, error) {
	opt = opt.withDefaults()
	if opt.Nodes < 2 || opt.Nodes > 8 || opt.Nodes%2 != 0 {
		return MixResult{}, fmt.Errorf("d2m: RunMix needs an even node count in 2..8, got %d", opt.Nodes)
	}
	spA, ok := workloads.ByName(benchA)
	if !ok {
		return MixResult{}, fmt.Errorf("d2m: unknown benchmark %q (see Benchmarks())", benchA)
	}
	spB, ok := workloads.ByName(benchB)
	if !ok {
		return MixResult{}, fmt.Errorf("d2m: unknown benchmark %q (see Benchmarks())", benchB)
	}
	if _, err := opt.placement(); err != nil {
		return MixResult{}, err
	}
	if _, err := opt.topology(); err != nil {
		return MixResult{}, err
	}
	half := opt.Nodes / 2

	// Solo baselines: each program alone on ITS half of the SAME
	// machine (the other nodes idle), with the same per-node access
	// budget as in the mixed run — so capacity and link count are
	// identical across the comparison and only the neighbour changes.
	streamOpt := opt
	streamOpt.Nodes = half
	soloOpt := opt
	soloOpt.Warmup = opt.Warmup / 2
	soloOpt.Measure = opt.Measure / 2
	soloA := Result{}
	soloA.measure(kind, soloOpt, trace.NewInterleaver(specStreams(spA, streamOpt)))
	soloB := Result{}
	soloB.measure(kind, soloOpt, trace.NewInterleaver(specStreams(spB, streamOpt)))

	// Mixed run: program B's streams are remapped to the upper nodes
	// and offset into a disjoint address space.
	streams := make([]trace.Stream, opt.Nodes)
	copy(streams, specStreams(spA, streamOpt))
	for i, s := range specStreams(spB, streamOpt) {
		s := s
		streams[half+i] = trace.StreamFunc(func() mem.Access {
			a := s.Next()
			a.Node += half
			a.Addr += asidStride
			return a
		})
	}
	mixed := Result{}
	mixed.measure(kind, opt, trace.NewInterleaver(streams))

	res := MixResult{
		Kind: kind, BenchA: spA.Name, BenchB: spB.Name,
		SoloA: soloA.Cycles, SoloB: soloB.Cycles,
		MixedBound: mixed.BandwidthBound,
	}
	for n, c := range mixed.NodeCycles {
		if n < half && c > res.MixedA {
			res.MixedA = c
		}
		if n >= half && c > res.MixedB {
			res.MixedB = c
		}
	}
	if res.SoloA > 0 {
		res.SlowdownA = float64(res.MixedA) / float64(res.SoloA)
	}
	if res.SoloB > 0 {
		res.SlowdownB = float64(res.MixedB) / float64(res.SoloB)
	}
	return res, nil
}

// MixRow is one program pairing across configurations.
type MixRow struct {
	BenchA, BenchB string
	// Slowdowns of the cache-sensitive program (A) per configuration.
	SlowdownA map[Kind]float64
	SlowdownB map[Kind]float64
}

// MixStudy runs the interference study: cache-sensitive programs paired
// with a traffic-heavy neighbour, across the baseline and D2M kinds.
// Interference flows through the shared fabric, so the study runs
// bandwidth-constrained (LinkBandwidth defaults to 0.1 flits/cycle/link
// if unset — at simulated footprints the LLC capacity channel is quiet,
// and infinite bandwidth would hide the contention entirely). Expected
// shape: D2M's traffic cut is isolation — the victim's slowdown under
// an aggressor is smaller than on the baseline.
func MixStudy(opt Options, pairs [][2]string) []MixRow {
	if opt.LinkBandwidth <= 0 {
		opt.LinkBandwidth = 0.1
	}
	if pairs == nil {
		pairs = [][2]string{
			{"tpc-c", "streamcluster"},
			{"mix1", "canneal"},
			{"facesim", "lu_ncb"},
		}
	}
	kinds := []Kind{Base2L, D2MFS, D2MNSR}
	rows := make([]MixRow, len(pairs))
	for i, p := range pairs {
		row := MixRow{BenchA: p[0], BenchB: p[1], SlowdownA: map[Kind]float64{}, SlowdownB: map[Kind]float64{}}
		for _, k := range kinds {
			r, err := RunMix(k, p[0], p[1], opt)
			if err != nil {
				panic(err) // pairs come from the catalog; this is a bug
			}
			row.SlowdownA[k] = r.SlowdownA
			row.SlowdownB[k] = r.SlowdownB
		}
		rows[i] = row
	}
	return rows
}

// RenderMix formats the interference study.
func RenderMix(rows []MixRow) string {
	var b []byte
	b = append(b, "Multiprogram interference (§IV-B extension): slowdown vs solo on half the machine\n"...)
	b = append(b, fmt.Sprintf("%-24s %12s %12s %12s\n", "pair (victim+aggressor)", "Base-2L", "D2M-FS", "D2M-NS-R")...)
	for _, r := range rows {
		b = append(b, fmt.Sprintf("%-24s %11.2fx %11.2fx %11.2fx\n",
			r.BenchA+"+"+r.BenchB, r.SlowdownA[Base2L], r.SlowdownA[D2MFS], r.SlowdownA[D2MNSR])...)
	}
	return string(b)
}
