package d2m_test

import (
	"context"
	"fmt"

	"d2m"
)

// Running one benchmark on one configuration: the primary entry point.
func ExampleRun() {
	out, err := d2m.Run(context.Background(), d2m.RunSpec{
		Kind:      d2m.D2MNSR,
		Benchmark: "fft",
		Options:   d2m.Options{Warmup: 50_000, Measure: 100_000},
	})
	if err != nil {
		panic(err)
	}
	res := out.Result
	fmt.Println(res.Benchmark, res.Suite, res.Kind.String())
	fmt.Println(res.Accesses)
	// Output:
	// fft HPC D2M-NS-R
	// 100000
}

// Defining and validating a workload programmatically.
func ExampleWorkloadSpec_Validate() {
	w := d2m.WorkloadSpec{Name: "broken"} // no footprints
	fmt.Println(w.Validate() != nil)
	// Output: true
}

// Loading a workload from JSON configuration.
func ExampleParseWorkload() {
	_, err := d2m.ParseWorkload([]byte(`{"name":"x"}`))
	fmt.Println(err != nil) // footprints missing
	// Output: true
}

// The five evaluated configurations, in the paper's order.
func ExampleKinds() {
	for _, k := range d2m.Kinds() {
		fmt.Println(k)
	}
	// Output:
	// Base-2L
	// Base-3L
	// D2M-FS
	// D2M-NS
	// D2M-NS-R
}

// The benchmark catalog is organized by the paper's five suites.
func ExampleBenchmarksOf() {
	fmt.Println(d2m.BenchmarksOf("Database"))
	fmt.Println(len(d2m.BenchmarksOf("Parallel")))
	// Output:
	// [tpc-c]
	// 13
}

// Running an algorithmic kernel: a deterministic trace from real index
// arithmetic rather than a statistical model.
func ExampleRunKernel() {
	res, err := d2m.RunKernel(d2m.D2MNSR, "stencil", d2m.Options{Warmup: 50_000, Measure: 100_000})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Benchmark, res.Suite)
	fmt.Println(res.Accesses)
	// Output:
	// stencil Kernel
	// 100000
}

// SRAM budgets are exact arithmetic over the configured geometries — no
// simulation involved.
func ExampleStorage() {
	rep, err := d2m.Storage(d2m.Base2L, d2m.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.0f kB data\n", float64(rep.DataBits())/8192)
	// Output: 8704 kB data
}

// Characterizing a workload without simulating any cache hierarchy.
func ExampleAnalyzeBenchmark() {
	an, err := d2m.AnalyzeBenchmark("tpc-c", 8, 100_000)
	if err != nil {
		panic(err)
	}
	fmt.Println(an.Accesses, an.Nodes)
	// Output: 100000 8
}

// Kind names round-trip through text for JSON and CLI flags.
func ExampleKind_MarshalText() {
	text, _ := d2m.D2MNSR.MarshalText()
	var k d2m.Kind
	_ = k.UnmarshalText([]byte("base-3l"))
	fmt.Println(string(text), k)
	// Output: D2M-NS-R Base-3L
}
