package d2m

import (
	"context"
	"fmt"

	"d2m/internal/sim"
)

// The vector engine: RunGroup executes a lane group — K RunSpecs that
// share a warm identity (WarmKey) — as ONE simulation instead of K.
// Same warm identity means same kind, geometry, workload, seed and
// warmup; the specs may differ only in the measurement-side parameters
// (Measure, LinkBandwidth). Because the machine and the access stream
// are deterministic, every lane's scalar run would walk the exact same
// trajectory — each is a prefix of the longest — so the group shares
// one machine, one stream and one warmup, and each lane's Result is
// sampled at its own measurement boundary (sim.MeasureLanes).
// LinkBandwidth, a pure post-processing stretch, is applied per lane
// from the flit-hop count at that lane's boundary. The results are
// byte-identical to the scalar path's, enforced by the lane
// differential tests; the scalar path remains the fallback for
// singleton and odd-shaped work.

// Engine names for RunOutput.Engine and the service's engine hints.
const (
	// EngineScalar is the one-run-at-a-time path (Run).
	EngineScalar = "scalar"
	// EngineVector is the lockstep lane-group path (RunGroup).
	EngineVector = "vector"
)

// GroupLane is one member of a RunGroup: a spec plus an optional
// per-lane context. A lane whose Ctx is cancelled is demoted — its slot
// reports the context's error — without aborting the group; a nil Ctx
// means the lane only stops with the whole group.
type GroupLane struct {
	Spec RunSpec
	Ctx  context.Context
}

// LaneOutcome is one lane's result: exactly one of Output or Err is
// meaningful (Err nil means Output is valid).
type LaneOutcome struct {
	Output RunOutput
	Err    error
}

// LaneKey returns the grouping key under which a spec may join a lane
// group, and whether it is eligible at all. Specs with the same key are
// guaranteed to produce byte-identical results whether run through Run
// or together through RunGroup. Replicated specs are ineligible (each
// replicate is its own simulation with its own seed).
func LaneKey(spec RunSpec) (string, bool) {
	if spec.Replicates >= 2 {
		return "", false
	}
	return WarmKey(spec.Kind, spec.Benchmark, spec.Options), true
}

// RunGroup simulates a lane group in lockstep and returns one outcome
// per lane, in lane order. Every lane must share the same LaneKey;
// mixed groups are rejected outright (no partial results). A
// single-lane group falls back to the scalar Run. ctx cancels the whole
// group; each lane's GroupLane.Ctx cancels just that lane. Warm-state
// reuse works as in Run: the group restores a snapshot for its shared
// warm identity when one exists, and deposits one otherwise.
func RunGroup(ctx context.Context, lanes []GroupLane) ([]LaneOutcome, error) {
	if len(lanes) == 0 {
		return nil, nil
	}
	key0, ok := LaneKey(lanes[0].Spec)
	if !ok {
		return nil, fmt.Errorf("d2m: RunGroup lane 0 is not lane-eligible (Replicates = %d)", lanes[0].Spec.Replicates)
	}
	for i, ln := range lanes[1:] {
		k, ok := LaneKey(ln.Spec)
		if !ok {
			return nil, fmt.Errorf("d2m: RunGroup lane %d is not lane-eligible (Replicates = %d)", i+1, ln.Spec.Replicates)
		}
		if k != key0 {
			return nil, fmt.Errorf("d2m: RunGroup lanes 0 and %d have different lane keys (%q vs %q)", i+1, key0, k)
		}
	}

	laneCtx := func(i int) context.Context {
		if lanes[i].Ctx != nil {
			return lanes[i].Ctx
		}
		return ctx
	}

	if len(lanes) == 1 {
		out, err := Run(laneCtx(0), lanes[0].Spec)
		return []LaneOutcome{{Output: out, Err: err}}, err
	}

	spec0 := lanes[0].Spec
	opt0 := spec0.Options.withDefaults()
	benchName, benchSuite, mk, err := benchStream(spec0.Benchmark, opt0)
	if err != nil {
		return nil, err
	}
	if err := opt0.Validate(); err != nil {
		return nil, err
	}
	var wc WarmCache
	for _, ln := range lanes {
		if ln.Spec.Warm != nil {
			wc = ln.Spec.Warm
			break
		}
	}

	measures := make([]int, len(lanes))
	for i, ln := range lanes {
		measures[i] = ln.Spec.Options.withDefaults().Measure
	}

	outs := make([]LaneOutcome, len(lanes))
	captured := make([]bool, len(lanes))
	active := func(i int) bool { return laneCtx(i).Err() == nil }
	key := warmKey(spec0.Kind, "bench:"+benchName, opt0)

	// Mirror runWarm's registry template with MeasureLanes in place of
	// Measure: the sink extracts each lane's Result from the shared
	// machine at that lane's boundary, reading the flit-hop meter there
	// so the per-lane bandwidth stretch sees exactly the traffic a
	// scalar run of that lane would have generated.
	mech, err := mechFor(spec0.Kind)
	if err != nil {
		return nil, err
	}
	inst := mech.New(mechOptions(opt0))
	defer inst.Release()
	engine := sim.NewEngine(inst, opt0.Nodes)
	var snap *WarmSnapshot
	if wc != nil {
		snap = wc.GetWarm(key)
	}
	src, err := warmedStream(ctx, engine, snap, mk, opt0.Warmup)
	if err != nil {
		return nil, err
	}
	if snap != nil {
		inst.Restore(snap.state)
	} else if wc != nil && wantWarm(wc, key) {
		ws := &WarmSnapshot{key: key, warmup: opt0.Warmup, state: inst.Snapshot()}
		ws.finish(src)
		wc.PutWarm(ws)
	}
	var sinkErr error
	sink := func(lane int, rep sim.Report) {
		r := Result{Kind: spec0.Kind, Benchmark: benchName, Suite: benchSuite}
		r.fillCommon(rep)
		flitHops, err := r.fillFromInstance(inst, rep, mech)
		if err != nil {
			sinkErr = err
			return
		}
		r.applyBandwidth(lanes[lane].Spec.Options.withDefaults(), flitHops)
		outs[lane] = LaneOutcome{Output: RunOutput{Result: r, Engine: EngineVector}}
		captured[lane] = true
	}
	groupErr := engine.MeasureLanes(ctx, src, measures, active, sink)
	if groupErr == nil {
		groupErr = sinkErr
	}
	if groupErr != nil {
		return nil, groupErr
	}
	for i := range outs {
		if !captured[i] {
			err := laneCtx(i).Err()
			if err == nil {
				err = context.Canceled
			}
			outs[i] = LaneOutcome{Err: err}
		}
	}
	return outs, nil
}
