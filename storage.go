package d2m

import (
	"fmt"
	"math/bits"
	"strings"
)

// This file reproduces the paper's §V-B storage argument: the metadata
// hierarchy (MD1/MD2/MD3, replacement pointers, per-slot state) must
// cost no more SRAM than the structures it removes (per-level tag
// arrays, TLBs in the access path, and the full-map directory). The
// accounting is exact bit arithmetic over the configured geometries —
// nothing is simulated — so the numbers are a property of Table III,
// independent of workload.

// Bit-accounting constants (48-bit virtual and physical addresses, the
// evaluated machine's 4kB pages, 64B lines, 1kB regions).
const (
	physBits   = 48
	lineBits   = 512 // 64B line
	liBits     = 6   // Table I
	linesPerRg = 16
	frameBits  = physBits - 12 // physical frame number
	vpnBits    = physBits - 12 // virtual page number
)

// StorageItem is one SRAM structure's bit cost.
type StorageItem struct {
	Structure string // e.g. "L1 tags (I+D, 8 nodes)"
	TotalBits uint64
	Data      bool // true for payload arrays, false for overhead (tags, metadata, directory, TLBs)
}

// StorageReport is one configuration's SRAM budget.
type StorageReport struct {
	Kind  Kind
	Items []StorageItem
}

// DataBits sums the payload arrays (cached bytes).
func (r StorageReport) DataBits() uint64 {
	var n uint64
	for _, it := range r.Items {
		if it.Data {
			n += it.TotalBits
		}
	}
	return n
}

// OverheadBits sums everything that is not cached data: tag arrays,
// TLBs, directory state, metadata stores, per-slot pointers.
func (r StorageReport) OverheadBits() uint64 {
	var n uint64
	for _, it := range r.Items {
		if !it.Data {
			n += it.TotalBits
		}
	}
	return n
}

// TotalBits sums the whole budget.
func (r StorageReport) TotalBits() uint64 { return r.DataBits() + r.OverheadBits() }

// OverheadFrac is overhead as a fraction of data capacity.
func (r StorageReport) OverheadFrac() float64 {
	return float64(r.OverheadBits()) / float64(r.DataBits())
}

func log2(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n)) - 1
}

// tagBits returns the address-tag width for a physically indexed cache
// of the given sets, with 64B lines.
func tagBits(sets int) int { return physBits - 6 - log2(sets) }

// regionTagBits returns the tag width for a region-granular (1kB)
// metadata store.
func regionTagBits(sets int, virtual bool) int {
	b := physBits - 10 - log2(sets)
	if virtual {
		// Virtual region tags carry an ASID to avoid flushes.
		b += 8
	}
	return b
}

// lruBits is the per-slot recency cost of an LRU stack over `ways`.
func lruBits(ways int) int { return log2(ways) }

// Storage computes the SRAM budget of one configuration under the
// given Options (Nodes and MDScale are honoured; the rest is ignored).
func Storage(kind Kind, opt Options) (StorageReport, error) {
	opt = opt.withDefaults()
	if opt.Nodes < 1 || opt.Nodes > 8 {
		return StorageReport{}, fmt.Errorf("d2m: Nodes = %d out of range 1..8", opt.Nodes)
	}
	if opt.MDScale != 1 && opt.MDScale != 2 && opt.MDScale != 4 {
		return StorageReport{}, fmt.Errorf("d2m: MDScale = %d, want 1, 2 or 4", opt.MDScale)
	}
	rep := StorageReport{Kind: kind}
	add := func(name string, count int, bitsEach int, data bool) {
		rep.Items = append(rep.Items, StorageItem{
			Structure: name,
			TotalBits: uint64(count) * uint64(bitsEach),
			Data:      data,
		})
	}

	switch kind {
	case Base2L, Base3L:
		c := baselineConfig(kind, opt)
		n := c.Nodes
		// Conventional caches: data + tag array (tag, MESI state, LRU).
		l1Slots := c.L1Sets * c.L1Ways
		add("L1 data (I+D)", 2*n*l1Slots, lineBits, true)
		add("L1 tags (I+D)", 2*n*l1Slots, tagBits(c.L1Sets)+2+lruBits(c.L1Ways), false)
		if c.L2Sets > 0 {
			l2Slots := c.L2Sets * c.L2Ways
			add("L2 data", n*l2Slots, lineBits, true)
			add("L2 tags", n*l2Slots, tagBits(c.L2Sets)+2+lruBits(c.L2Ways), false)
		}
		llcSlots := c.LLCSets * c.LLCWays
		add("LLC data", llcSlots, lineBits, true)
		add("LLC tags", llcSlots, tagBits(c.LLCSets)+2+lruBits(c.LLCWays), false)
		// Full-map directory embedded with the LLC tags: presence bits,
		// owner, state per LLC line.
		add("directory (full-map)", llcSlots, n+log2(n)+1+2, false)
		// TLBs sit on the access-critical path: L1 TLB per node per
		// stream, a shared per-node L2 TLB.
		tlbEntry := (vpnBits - log2(c.TLBSets)) + frameBits + 8
		add("L1 TLBs (I+D)", 2*n*c.TLBSets*c.TLBWays, tlbEntry, false)
		tlb2Entry := (vpnBits - log2(c.TLB2Sets)) + frameBits + 8
		add("L2 TLBs", n*c.TLB2Sets*c.TLB2Ways, tlb2Entry, false)

	default:
		c := coreConfig(kind, opt)
		n := c.Nodes
		// Tag-less data arrays: payload plus per-slot back-metadata
		// (replacement pointer, master/dirty/excl state, recency).
		slotMeta := liBits + 3
		l1Slots := c.L1Sets * c.L1Ways
		add("L1 data (I+D)", 2*n*l1Slots, lineBits, true)
		add("L1 slot state (RP+flags)", 2*n*l1Slots, slotMeta+lruBits(c.L1Ways), false)
		if c.L2Sets > 0 {
			l2Slots := c.L2Sets * c.L2Ways
			add("L2 data", n*l2Slots, lineBits, true)
			add("L2 slot state", n*l2Slots, slotMeta+lruBits(c.L2Ways), false)
		}
		if c.NearSide {
			sl := c.SliceSets * c.SliceWays
			add("NS-LLC data", n*sl, lineBits, true)
			add("NS-LLC slot state", n*sl, slotMeta+lruBits(c.SliceWays), false)
		} else {
			llc := c.LLCSets * c.LLCWays
			add("LLC data", llc, lineBits, true)
			add("LLC slot state", llc, slotMeta+lruBits(c.LLCWays), false)
		}
		// The metadata hierarchy. MD1 is virtually tagged (one I, one D
		// per node); MD2 physical per node; MD3 global with PB bits.
		mdPayload := linesPerRg*liBits + 1 + 2 // 16 LIs, P bit, active/stream state
		if c.DynamicIndexing {
			mdPayload += 8 // per-region scramble
		}
		if !c.TraditionalL1 {
			md1 := c.MD1Sets * c.MD1Ways
			add("MD1 (I+D, virtual)", 2*n*md1,
				regionTagBits(c.MD1Sets, true)+mdPayload+lruBits(c.MD1Ways), false)
		}
		md2 := c.MD2Sets * c.MD2Ways
		add("MD2", n*md2, regionTagBits(c.MD2Sets, false)+mdPayload+lruBits(c.MD2Ways), false)
		md3 := c.MD3Sets * c.MD3Ways
		md3Payload := linesPerRg*liBits + n // LIs + presence bits
		if c.DynamicIndexing {
			md3Payload += 8
		}
		add("MD3", md3, regionTagBits(c.MD3Sets, false)+md3Payload+lruBits(c.MD3Ways), false)
		add("MD3 lock bits", c.LockBits, 1, false)
		// The TLB2 consulted on MD1 misses (translation moved off the
		// common path, not removed).
		add("L2 TLBs", n*128*8, (vpnBits-log2(128))+frameBits+8, false)
		if c.TraditionalL1 {
			// §III-A hybrid: conventional front-end retained.
			add("L1 tags (I+D)", 2*n*l1Slots, tagBits(c.L1Sets)+2+lruBits(c.L1Ways), false)
			tlbEntry := (vpnBits - log2(8)) + frameBits + 8
			add("L1 TLBs (I+D)", 2*n*8*8, tlbEntry, false)
		}
	}
	return rep, nil
}

// StorageComparison computes the budget for every registered
// configuration, including the §III-A hybrid and the adaptive kinds.
func StorageComparison(opt Options) []StorageReport {
	kinds := AllKinds()
	out := make([]StorageReport, 0, len(kinds))
	for _, k := range kinds {
		r, err := Storage(k, opt)
		if err != nil {
			panic(err) // kinds are the fixed set; this is a bug
		}
		out = append(out, r)
	}
	return out
}

// RenderStorage formats the budgets side by side, overhead itemized.
func RenderStorage(reports []StorageReport) string {
	var b strings.Builder
	b.WriteString("SRAM budgets (§V-B): payload vs everything the access path needs around it\n")
	fmt.Fprintf(&b, "%-28s %12s %12s %9s\n", "configuration / structure", "data kB", "overhead kB", "ovh/data")
	for _, r := range reports {
		fmt.Fprintf(&b, "%-28s %12.0f %12.0f %8.1f%%\n",
			r.Kind.String(), float64(r.DataBits())/8192, float64(r.OverheadBits())/8192,
			r.OverheadFrac()*100)
		for _, it := range r.Items {
			if it.Data {
				continue
			}
			fmt.Fprintf(&b, "    %-24s %12s %12.0f\n", it.Structure, "", float64(it.TotalBits)/8192)
		}
	}
	return b.String()
}
