package d2m

// Trace-benchmark exactness: a stored trace referenced as "trace:<id>"
// must behave exactly like any catalog benchmark — same Run/RunGroup
// paths, same warm-snapshot byte-identity — and the block-pipelined
// engine must be indistinguishable from scalar Next-draining delivery
// for every kind, topology and source family.

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"d2m/internal/mem"
	"d2m/internal/trace"
	"d2m/internal/workloads"
)

// setTraceLib points the process-wide trace library at a fresh temp
// directory for the duration of one test. Trace tests must not run in
// parallel with each other (the library is process-wide).
func setTraceLib(t *testing.T) {
	t.Helper()
	if err := SetTraceDir(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { SetTraceDir("") })
}

// recordBench returns a v2-encoded trace of a catalog benchmark.
func recordBench(t *testing.T, bench string, nodes, accesses int) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := RecordTrace(bench, nodes, accesses, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestTraceBenchmarkRun(t *testing.T) {
	setTraceLib(t)
	ctx := context.Background()
	enc := recordBench(t, "tpc-c", 2, 20_000)
	info, err := ImportTrace(bytes.NewReader(enc), "tpc-c-capture")
	if err != nil {
		t.Fatal(err)
	}
	bench := TracePrefix + info.ID

	if suite, ok := SuiteOf(bench); !ok || suite != SuiteTrace {
		t.Errorf("SuiteOf(%q) = %q, %v", bench, suite, ok)
	}
	if _, ok := SuiteOf(TracePrefix + "0000000000000000"); ok {
		t.Error("SuiteOf of unknown trace id succeeded")
	}

	opt := Options{Nodes: 2, Warmup: 3000, Measure: 6000}
	res, err := runOne(ctx, D2MNSR, bench, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Benchmark != bench || res.Suite != SuiteTrace {
		t.Errorf("Result labels = %q / %q", res.Benchmark, res.Suite)
	}
	// Replays are deterministic.
	again, err := runOne(ctx, D2MNSR, bench, opt)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "trace replay", res, again)

	// The stored-trace path (chunked FileReader) and the legacy RunTrace
	// path (in-memory Reader) replay the same bytes: identical metrics.
	direct, err := RunTrace(D2MNSR, bytes.NewReader(enc), opt)
	if err != nil {
		t.Fatal(err)
	}
	direct.Benchmark, direct.Suite = res.Benchmark, res.Suite
	assertSameResult(t, "FileReader-vs-Reader", direct, res)

	// A trace wider than the machine is rejected.
	if _, err := runOne(ctx, D2MNSR, bench, Options{Nodes: 1, Warmup: 1000, Measure: 1000}); err == nil {
		t.Error("2-node trace ran on a 1-node machine")
	}
	// Unknown ids are unknown benchmarks.
	if _, err := runOne(ctx, D2MNSR, TracePrefix+"0000000000000000", opt); err == nil {
		t.Error("unknown trace id ran")
	}

	if got := ListTraces(); len(got) != 1 || got[0].ID != info.ID {
		t.Errorf("ListTraces = %+v", got)
	}
	if _, ok := TracePath(info.ID); !ok {
		t.Error("TracePath of stored trace failed")
	}
}

func TestTraceRunWithoutLibrary(t *testing.T) {
	if err := SetTraceDir(""); err != nil {
		t.Fatal(err)
	}
	if _, err := runOne(context.Background(), D2MNSR, TracePrefix+"0000000000000000",
		Options{Nodes: 2, Warmup: 1000, Measure: 1000}); err == nil {
		t.Error("trace benchmark ran without a trace library")
	}
	if _, err := ImportTrace(strings.NewReader("x"), ""); err == nil {
		t.Error("ImportTrace succeeded without a trace library")
	}
	if got := ListTraces(); got != nil {
		t.Errorf("ListTraces without a library = %+v", got)
	}
}

// TestTraceWarmSnapshotExactness is the snapshot matrix for a trace
// benchmark: cold-through-cache and snapshot-restored runs must be
// byte-identical to a fresh run, for every kind — the FileReader clone
// frozen mid-trace must resume exactly.
func TestTraceWarmSnapshotExactness(t *testing.T) {
	setTraceLib(t)
	ctx := context.Background()
	info, err := ImportTrace(bytes.NewReader(recordBench(t, "radix", 2, 15_000)), "")
	if err != nil {
		t.Fatal(err)
	}
	bench := TracePrefix + info.ID
	// Warmup larger than the trace forces a Loop wrap before the
	// snapshot boundary.
	opt := Options{Nodes: 2, Warmup: 20_000, Measure: 8000, Seed: 7}

	for _, kind := range allKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			fresh, err := runOne(ctx, kind, bench, opt)
			if err != nil {
				t.Fatal(err)
			}
			wc := newMapWarmCache()
			first, err := runOneWarm(ctx, kind, bench, opt, wc)
			if err != nil {
				t.Fatal(err)
			}
			second, err := runOneWarm(ctx, kind, bench, opt, wc)
			if err != nil {
				t.Fatal(err)
			}
			if wc.hits != 1 || wc.misses != 1 {
				t.Fatalf("warm cache saw %d hits / %d misses, want 1 / 1", wc.hits, wc.misses)
			}
			assertSameResult(t, "cold-through-cache", fresh, first)
			assertSameResult(t, "snapshot-restored", fresh, second)
		})
	}
}

// TestTraceRunGroup checks trace benchmarks ride the vector engine:
// every lane of a group over a stored trace matches its scalar run.
func TestTraceRunGroup(t *testing.T) {
	setTraceLib(t)
	ctx := context.Background()
	info, err := ImportTrace(bytes.NewReader(recordBench(t, "tpc-c", 2, 12_000)), "")
	if err != nil {
		t.Fatal(err)
	}
	bench := TracePrefix + info.ID
	base := Options{Nodes: 2, Warmup: 2000, Seed: 3}
	assertLanesMatchScalar(t, ctx, groupOf(D2MNSR, bench, base, []int{3000, 5000, 8000}, []float64{0, 0.002, 0}))
}

// nextOnly hides a stream's Fill method, forcing the engine onto its
// buffered Next refill path.
type nextOnly struct{ s trace.Stream }

func (n nextOnly) Next() mem.Access { return n.s.Next() }

// TestBlockScalarDifferentialMatrix is the tentpole's exactness
// guarantee: block delivery (Fill) and scalar delivery (Next) are
// indistinguishable in the marshalled Result, across kinds, topologies
// and source families (generated benchmarks from different suites, the
// vector extras, and recorded-trace replay).
func TestBlockScalarDifferentialMatrix(t *testing.T) {
	sources := []string{"tpc-c", "radix", "barnes", "vec-stride16"}
	topos := []string{"", "ring", "mesh", "torus"}

	var traceEnc []byte // lazily recorded once
	mkStream := func(src string, opt Options) trace.Stream {
		if src == "trace" {
			if traceEnc == nil {
				traceEnc = recordBench(t, "tpc-c", opt.Nodes, 10_000)
			}
			rd, err := trace.ReadTrace(bytes.NewReader(traceEnc))
			if err != nil {
				t.Fatal(err)
			}
			rd.Loop = true
			return rd
		}
		sp, ok := workloads.ByName(src)
		if !ok {
			t.Fatalf("unknown benchmark %s", src)
		}
		return trace.NewInterleaver(specStreams(sp, opt))
	}

	for _, kind := range allKinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			for i, src := range append(sources, "trace") {
				opt := Options{Nodes: 2, Warmup: 2000, Measure: 5000, Topology: topos[i%len(topos)]}.withDefaults()
				block := Result{Kind: kind, Benchmark: src}
				block.measure(kind, opt, mkStream(src, opt))
				scalar := Result{Kind: kind, Benchmark: src}
				scalar.measure(kind, opt, nextOnly{mkStream(src, opt)})
				bj, _ := json.Marshal(block)
				sj, _ := json.Marshal(scalar)
				if string(bj) != string(sj) {
					t.Errorf("%s/%s/topology=%q: block and scalar delivery differ:\n block  %s\n scalar %s",
						kind, src, opt.Topology, bj, sj)
				}
			}
		})
	}
}

// TestVectorSuite covers the strided/vector extras: outside the paper's
// pinned catalog, resolvable by name, and the VectorLines knob is both
// observable and exactly neutral at 0 vs 1.
func TestVectorSuite(t *testing.T) {
	for _, s := range Suites() {
		if s == SuiteVector {
			t.Fatalf("Suites() includes %s; the extras suite must not dilute the paper's five", SuiteVector)
		}
	}
	names := BenchmarksOf(SuiteVector)
	if len(names) == 0 {
		t.Fatal("no Vector extras benchmarks")
	}
	for _, b := range Benchmarks() {
		if strings.HasPrefix(b, "vec-") {
			t.Fatalf("Benchmarks() includes extras entry %s", b)
		}
	}
	ctx := context.Background()
	opt := Options{Nodes: 2, Warmup: 3000, Measure: 6000}
	results := map[string]Result{}
	for _, name := range names {
		if suite, ok := SuiteOf(name); !ok || suite != SuiteVector {
			t.Errorf("SuiteOf(%q) = %q, %v", name, suite, ok)
		}
		res, err := runOne(ctx, D2MNSR, name, opt)
		if err != nil {
			t.Fatal(err)
		}
		results[name] = res
	}
	// Different vector shapes are different workloads.
	if dense, scatter := results["vec-dense"], results["vec-scatter"]; dense.Cycles == scatter.Cycles {
		t.Errorf("vec-dense and vec-scatter produced identical cycle counts (%v)", dense.Cycles)
	}

	// VectorLines 0 and 1 both mean single-line touches: byte-identical.
	w := WorkloadSpec{
		Name: "v", CodeBytes: 64 << 10, HotCodeBytes: 8 << 10,
		HotDataBytes: 32 << 10, PrivateWS: 1 << 20,
		DataFrac: 0.5, StreamFrac: 0.5, StreamBytes: 1 << 20, StrideLines: 4,
	}
	w0, w1 := w, w
	w0.VectorLines = 0
	w1.VectorLines = 1
	r0, err := RunCustom(D2MNSR, w0, opt)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := RunCustom(D2MNSR, w1, opt)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "VectorLines 0 vs 1", r0, r1)
	// And 8 is a different stream.
	w8 := w
	w8.VectorLines = 8
	r8, err := RunCustom(D2MNSR, w8, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r8.Cycles == r0.Cycles {
		t.Errorf("VectorLines = 8 produced identical cycles to 1 (%v)", r8.Cycles)
	}
}
