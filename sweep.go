package d2m

import (
	"encoding/json"
	"fmt"

	"d2m/internal/stats"
)

// This file holds the parameter-grid machinery shared by the sweep
// front ends: cmd/experiments expands and runs grids locally (or
// submits them to a server), and internal/service executes them behind
// POST /v1/sweeps. One code path decides what a grid means, how it
// expands into cells, and how completed cells aggregate into the
// paper's Figure 4-6 shape (per-kind speedup, msgs/KI, EDP).

// DefaultSweepCells is the hard ceiling on the number of cells one
// sweep may expand into, protecting servers from accidental
// combinatorial explosions. SweepSpec.MaxCells can only lower it.
const DefaultSweepCells = 4096

// SweepSpec describes a parameter-grid study: the cross product of the
// axis lists, sharing the scalar fields. An empty axis contributes a
// single default element (seed 0, default topology, ...), so the
// minimal spec is just kinds x benchmarks — exactly the paper's
// Figure 5-7 grid. The JSON field names are the POST /v1/sweeps wire
// format.
type SweepSpec struct {
	// Kinds and Benchmarks are the two mandatory axes.
	Kinds      []string `json:"kinds"`
	Benchmarks []string `json:"benchmarks"`

	// Optional axes. Empty means one cell at the default value.
	Seeds          []uint64  `json:"seeds,omitempty"`
	Topologies     []string  `json:"topologies,omitempty"`
	Placements     []string  `json:"placements,omitempty"`
	MDScales       []int     `json:"md_scales,omitempty"`
	LinkBandwidths []float64 `json:"link_bandwidths,omitempty"`

	// Scalars shared by every cell; zero values take the paper's
	// defaults (Options.WithDefaults).
	Nodes    int  `json:"nodes,omitempty"`
	Warmup   int  `json:"warmup,omitempty"`
	Measure  int  `json:"measure,omitempty"`
	Bypass   bool `json:"bypass,omitempty"`
	Prefetch bool `json:"prefetch,omitempty"`

	// MaxCells rejects the spec when the expansion would exceed it.
	// Zero means DefaultSweepCells; larger values are clamped to it.
	MaxCells int `json:"max_cells,omitempty"`
}

// SweepCell is one expanded grid point: a single runnable simulation.
type SweepCell struct {
	Kind      Kind    `json:"kind"`
	Benchmark string  `json:"benchmark"`
	Options   Options `json:"options"`
}

// cellCap resolves the spec's effective cell ceiling.
func (s SweepSpec) cellCap() int {
	if s.MaxCells > 0 && s.MaxCells < DefaultSweepCells {
		return s.MaxCells
	}
	return DefaultSweepCells
}

// axis lengths, with empty optional axes counting as one default cell.
func axisLen(n int) int {
	if n == 0 {
		return 1
	}
	return n
}

// CellCount returns the number of cells the spec expands into, before
// any cap is applied.
func (s SweepSpec) CellCount() int {
	return len(s.Kinds) * len(s.Benchmarks) * axisLen(len(s.Seeds)) *
		axisLen(len(s.Topologies)) * axisLen(len(s.Placements)) *
		axisLen(len(s.MDScales)) * axisLen(len(s.LinkBandwidths))
}

// Expand validates the spec and returns its cells in deterministic
// order: kinds outermost, then benchmarks, seeds, topologies,
// placements, MD scales, link bandwidths. Every cell's Options are in
// canonical (defaulted, validated) form, so two specs that expand to
// the same grid produce identical cells — the service keys its result
// cache on exactly this form.
func (s SweepSpec) Expand() ([]SweepCell, error) {
	if len(s.Kinds) == 0 {
		return nil, fmt.Errorf("d2m: sweep needs at least one kind")
	}
	if len(s.Benchmarks) == 0 {
		return nil, fmt.Errorf("d2m: sweep needs at least one benchmark")
	}
	if n, limit := s.CellCount(), s.cellCap(); n > limit {
		return nil, fmt.Errorf("d2m: sweep expands to %d cells, over the cap of %d", n, limit)
	}
	kinds := make([]Kind, len(s.Kinds))
	for i, name := range s.Kinds {
		k, err := ParseKind(name)
		if err != nil {
			return nil, err
		}
		kinds[i] = k
	}
	for _, b := range s.Benchmarks {
		if _, ok := SuiteOf(b); !ok {
			return nil, fmt.Errorf("d2m: unknown benchmark %q", b)
		}
	}
	seeds := s.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{0}
	}
	topos := s.Topologies
	if len(topos) == 0 {
		topos = []string{""}
	}
	places := s.Placements
	if len(places) == 0 {
		places = []string{""}
	}
	scales := s.MDScales
	if len(scales) == 0 {
		scales = []int{0}
	}
	bands := s.LinkBandwidths
	if len(bands) == 0 {
		bands = []float64{0}
	}

	cells := make([]SweepCell, 0, s.CellCount())
	for _, k := range kinds {
		for _, bench := range s.Benchmarks {
			for _, seed := range seeds {
				for _, topo := range topos {
					for _, place := range places {
						for _, scale := range scales {
							for _, bw := range bands {
								opt := Options{
									Nodes:         s.Nodes,
									Warmup:        s.Warmup,
									Measure:       s.Measure,
									Seed:          seed,
									MDScale:       scale,
									Bypass:        s.Bypass,
									Prefetch:      s.Prefetch,
									Topology:      topo,
									Placement:     place,
									LinkBandwidth: bw,
								}.WithDefaults()
								if err := opt.Validate(); err != nil {
									return nil, err
								}
								cells = append(cells, SweepCell{Kind: k, Benchmark: bench, Options: opt})
							}
						}
					}
				}
			}
		}
	}
	return cells, nil
}

// SweepKindSummary is one kind's row in a sweep's aggregate: the
// Figure 4-6 shape of the paper's evaluation.
type SweepKindSummary struct {
	Kind  string `json:"kind"`
	Cells int    `json:"cells"`
	// SpeedupPct is the geometric-mean speedup (percent) over the
	// baseline kind, across the cells whose non-kind coordinates have a
	// completed baseline counterpart (Figure 7's aggregation). The
	// baseline's own row is 0 by construction.
	SpeedupPct float64 `json:"speedup_pct"`
	// MsgsPerKI is the arithmetic mean of messages per
	// kilo-instruction across the kind's completed cells (Figure 5).
	MsgsPerKI float64 `json:"msgs_per_ki"`
	// EDP is the arithmetic mean energy-delay product across the
	// kind's completed cells (Figure 6).
	EDP float64 `json:"edp"`
}

// coordKey identifies a cell's non-kind grid coordinates, pairing each
// cell with the baseline cell it is compared against.
func coordKey(c SweepCell) string {
	b, _ := json.Marshal(struct {
		Bench string
		Opt   Options
	}{c.Benchmark, c.Options.WithDefaults()})
	return string(b)
}

// SummarizeSweep aggregates completed cell results (results[i] may be
// nil for failed or unfinished cells) into per-kind rows, ordered by
// first appearance in cells. Speedups compare each cell against the
// baseline-kind cell sharing its other coordinates.
func SummarizeSweep(baseline Kind, cells []SweepCell, results []*Result) []SweepKindSummary {
	baseCycles := make(map[string]float64)
	for i, c := range cells {
		if c.Kind == baseline && i < len(results) && results[i] != nil && results[i].Cycles > 0 {
			baseCycles[coordKey(c)] = float64(results[i].Cycles)
		}
	}
	type agg struct {
		n       int
		msgs    float64
		edp     float64
		speedup []float64
	}
	byKind := make(map[Kind]*agg)
	var order []Kind
	for i, c := range cells {
		a, ok := byKind[c.Kind]
		if !ok {
			a = &agg{}
			byKind[c.Kind] = a
			order = append(order, c.Kind)
		}
		if i >= len(results) || results[i] == nil {
			continue
		}
		r := results[i]
		a.n++
		a.msgs += r.MsgsPerKI
		a.edp += r.EDP
		if base, ok := baseCycles[coordKey(c)]; ok && r.Cycles > 0 {
			a.speedup = append(a.speedup, base/float64(r.Cycles))
		}
	}
	out := make([]SweepKindSummary, 0, len(order))
	for _, k := range order {
		a := byKind[k]
		row := SweepKindSummary{Kind: k.String(), Cells: a.n}
		if a.n > 0 {
			row.MsgsPerKI = a.msgs / float64(a.n)
			row.EDP = a.edp / float64(a.n)
		}
		if len(a.speedup) > 0 {
			row.SpeedupPct = (stats.Geomean(a.speedup) - 1) * 100
		}
		out = append(out, row)
	}
	return out
}
