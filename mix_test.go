package d2m

import (
	"strings"
	"testing"
)

func TestRunMixErrors(t *testing.T) {
	if _, err := RunMix(Base2L, "tpc-c", "nope", fastOpt); err == nil {
		t.Error("unknown bench B accepted")
	}
	if _, err := RunMix(Base2L, "nope", "tpc-c", fastOpt); err == nil {
		t.Error("unknown bench A accepted")
	}
	odd := fastOpt
	odd.Nodes = 5
	if _, err := RunMix(Base2L, "tpc-c", "fft", odd); err == nil {
		t.Error("odd node count accepted")
	}
	bad := fastOpt
	bad.Topology = "hypercube"
	if _, err := RunMix(Base2L, "tpc-c", "fft", bad); err == nil {
		t.Error("bad topology accepted")
	}
}

func TestRunMixDeterministicAndLabeled(t *testing.T) {
	opt := Options{Warmup: 60_000, Measure: 120_000}
	a, err := RunMix(D2MNSR, "fft", "canneal", opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMix(D2MNSR, "fft", "canneal", opt)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("mix runs not deterministic:\n%+v\n%+v", a, b)
	}
	if a.BenchA != "fft" || a.BenchB != "canneal" || a.Kind != D2MNSR {
		t.Fatalf("labels wrong: %+v", a)
	}
	if a.SoloA == 0 || a.MixedA == 0 || a.SoloB == 0 || a.MixedB == 0 {
		t.Fatalf("degenerate cycles: %+v", a)
	}
}

// Co-scheduled programs live in disjoint address spaces: without the
// bandwidth constraint, the mixed run must not perturb either program's
// per-node time beyond the engine's round-robin jitter (no sharing, no
// capacity pressure at these footprints). A large deviation would mean
// the address offsetting is broken (false sharing between programs).
func TestRunMixAddressIsolation(t *testing.T) {
	opt := Options{Warmup: 100_000, Measure: 200_000} // infinite bandwidth
	r, err := RunMix(D2MNSR, "fft", "fft", opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, slow := range []float64{r.SlowdownA, r.SlowdownB} {
		if slow < 0.95 || slow > 1.05 {
			t.Fatalf("slowdown %v under infinite bandwidth; programs are not isolated: %+v", slow, r)
		}
	}
}

// The §IV-B isolation claim, measured: under a traffic-heavy neighbour
// on a bandwidth-constrained fabric, the victim slows on Base-2L and
// does not slow more on D2M-NS-R (its traffic cut is its isolation).
func TestMixIsolationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run interference study")
	}
	opt := Options{Warmup: 200_000, Measure: 600_000}
	rows := MixStudy(opt, [][2]string{{"tpc-c", "streamcluster"}, {"facesim", "lu_ncb"}})
	for _, r := range rows {
		if r.SlowdownA[D2MNSR] > r.SlowdownA[Base2L]+0.02 {
			t.Errorf("%s+%s: D2M-NS-R victim slowdown %.2f > Base-2L %.2f",
				r.BenchA, r.BenchB, r.SlowdownA[D2MNSR], r.SlowdownA[Base2L])
		}
		if r.SlowdownA[D2MNSR] > 1.05 {
			t.Errorf("%s+%s: D2M-NS-R victim slowdown %.2f; traffic cut should isolate",
				r.BenchA, r.BenchB, r.SlowdownA[D2MNSR])
		}
	}
	out := RenderMix(rows)
	if !strings.Contains(out, "tpc-c+streamcluster") || !strings.Contains(out, "D2M-NS-R") {
		t.Error("RenderMix output malformed")
	}
}
