package d2m

// Warm-state snapshot exactness: restoring a snapshot must be
// indistinguishable from simulating the warmup, for every kind and for
// both workload families (calibrated benchmarks, whose streams are
// cloned into the snapshot, and algorithmic kernels, whose streams are
// replayed). "Indistinguishable" is tested at the strongest level
// available — the marshalled Result bytes.

import (
	"context"
	"encoding/json"
	"sync"
	"testing"
)

// mapWarmCache is the trivial WarmCache used by tests: an unbounded
// map with hit/miss counters.
type mapWarmCache struct {
	mu     sync.Mutex
	m      map[string]*WarmSnapshot
	hits   int
	misses int
}

func newMapWarmCache() *mapWarmCache {
	return &mapWarmCache{m: map[string]*WarmSnapshot{}}
}

func (c *mapWarmCache) GetWarm(key string) *WarmSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	ws := c.m[key]
	if ws == nil {
		c.misses++
	} else {
		c.hits++
	}
	return ws
}

func (c *mapWarmCache) PutWarm(snap *WarmSnapshot) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[snap.Key()] = snap
}

// allKinds is the full registered kind set: every differential and
// exactness matrix in the test suite iterates this, so a kind
// registered without joining these matrices fails the registry-coverage
// test rather than silently skipping verification.
func allKinds() []Kind { return AllKinds() }

// runOne / runOneWarm / replicateN adapt the Run entry point to the
// (kind, bench, opt) shape these tests predate; the deprecated
// RunContext-family wrappers they used were removed in v1.4.
func runOne(ctx context.Context, kind Kind, bench string, opt Options) (Result, error) {
	out, err := Run(ctx, RunSpec{Kind: kind, Benchmark: bench, Options: opt})
	return out.Result, err
}

func runOneWarm(ctx context.Context, kind Kind, bench string, opt Options, wc WarmCache) (Result, error) {
	out, err := Run(ctx, RunSpec{Kind: kind, Benchmark: bench, Options: opt, Warm: wc})
	return out.Result, err
}

func replicateN(ctx context.Context, kind Kind, bench string, opt Options, n int, wc WarmCache) (Replicated, error) {
	out, err := Run(ctx, RunSpec{Kind: kind, Benchmark: bench, Options: opt, Replicates: n, Warm: wc})
	if err != nil {
		return Replicated{}, err
	}
	return *out.Replicated, nil
}

// TestSnapshotExactnessMatrix runs every kind on a calibrated
// benchmark and on an algorithmic kernel, three ways: fresh (no warm
// cache), cold-through-cache (miss, deposits the snapshot), and
// restored (hit). All three must produce byte-identical Results.
func TestSnapshotExactnessMatrix(t *testing.T) {
	ctx := context.Background()
	opt := Options{Nodes: 2, Warmup: 3000, Measure: 6000, Seed: 7}

	for _, kind := range allKinds() {
		kind := kind
		t.Run(kind.String()+"/tpc-c", func(t *testing.T) {
			t.Parallel()
			fresh, err := runOne(ctx, kind, "tpc-c", opt)
			if err != nil {
				t.Fatal(err)
			}
			wc := newMapWarmCache()
			first, err := runOneWarm(ctx, kind, "tpc-c", opt, wc)
			if err != nil {
				t.Fatal(err)
			}
			second, err := runOneWarm(ctx, kind, "tpc-c", opt, wc)
			if err != nil {
				t.Fatal(err)
			}
			if wc.hits != 1 || wc.misses != 1 {
				t.Fatalf("warm cache saw %d hits / %d misses, want 1 / 1", wc.hits, wc.misses)
			}
			assertSameResult(t, "cold-through-cache", fresh, first)
			assertSameResult(t, "snapshot-restored", fresh, second)
		})
		t.Run(kind.String()+"/matmul", func(t *testing.T) {
			t.Parallel()
			kopt := Options{Nodes: 2, Warmup: 3000, Measure: 6000}
			fresh, err := RunKernel(kind, "matmul", kopt)
			if err != nil {
				t.Fatal(err)
			}
			wc := newMapWarmCache()
			first, err := RunKernelContextWarm(ctx, kind, "matmul", kopt, wc)
			if err != nil {
				t.Fatal(err)
			}
			second, err := RunKernelContextWarm(ctx, kind, "matmul", kopt, wc)
			if err != nil {
				t.Fatal(err)
			}
			if wc.hits != 1 || wc.misses != 1 {
				t.Fatalf("warm cache saw %d hits / %d misses, want 1 / 1", wc.hits, wc.misses)
			}
			assertSameResult(t, "cold-through-cache", fresh, first)
			assertSameResult(t, "snapshot-restored", fresh, second)
		})
	}
}

func assertSameResult(t *testing.T, label string, want, got Result) {
	t.Helper()
	wj, _ := json.Marshal(want)
	gj, _ := json.Marshal(got)
	if string(wj) != string(gj) {
		t.Errorf("%s result differs from fresh run:\n fresh    %s\n restored %s", label, wj, gj)
	}
}

// TestSnapshotSharedAcrossMeasureParams checks the warm key excludes
// measurement-side parameters: runs differing only in Measure and
// LinkBandwidth share one snapshot, and each restored run still
// byte-matches its own fresh equivalent.
func TestSnapshotSharedAcrossMeasureParams(t *testing.T) {
	ctx := context.Background()
	wc := newMapWarmCache()
	base := Options{Nodes: 2, Warmup: 4000, Measure: 4000}

	variants := []Options{
		base,
		{Nodes: 2, Warmup: 4000, Measure: 8000},
		{Nodes: 2, Warmup: 4000, Measure: 4000, LinkBandwidth: 0.05},
	}
	for i, opt := range variants {
		fresh, err := runOne(ctx, D2MNSR, "tpc-c", opt)
		if err != nil {
			t.Fatal(err)
		}
		warm, err := runOneWarm(ctx, D2MNSR, "tpc-c", opt, wc)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResult(t, "variant", fresh, warm)
		if i == 0 && wc.misses != 1 {
			t.Fatalf("first run: %d misses, want 1", wc.misses)
		}
	}
	if wc.hits != len(variants)-1 || wc.misses != 1 {
		t.Errorf("cache saw %d hits / %d misses, want %d / 1 (variants must share one warmup)",
			wc.hits, wc.misses, len(variants)-1)
	}
}

// TestReplicateWarmDeterministic checks a warm-cached replicated run
// equals the plain one byte-for-byte — on a cold cache (populating)
// and again on the warm cache (every seed restored).
func TestReplicateWarmDeterministic(t *testing.T) {
	ctx := context.Background()
	opt := Options{Nodes: 2, Warmup: 2000, Measure: 4000}
	const n = 4

	plain, err := replicateN(ctx, D2MNSR, "tpc-c", opt, n, nil)
	if err != nil {
		t.Fatal(err)
	}
	wc := newMapWarmCache()
	for round := 0; round < 2; round++ {
		warm, err := replicateN(ctx, D2MNSR, "tpc-c", opt, n, wc)
		if err != nil {
			t.Fatal(err)
		}
		pj, _ := json.Marshal(plain)
		wj, _ := json.Marshal(warm)
		if string(pj) != string(wj) {
			t.Errorf("round %d: warm replicate differs:\n plain %s\n warm  %s", round, pj, wj)
		}
	}
	if wc.misses != n || wc.hits != n {
		t.Errorf("cache saw %d hits / %d misses, want %d / %d (each seed warms once)",
			wc.hits, wc.misses, n, n)
	}
}
