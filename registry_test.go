package d2m

// Registry exactness: the mechanism-registry run path must be
// indistinguishable from the pre-registry per-kind construction. Two
// pins hold this: the configuration a registered constructor builds
// equals the legacy coreConfig/baselineConfig field for field, and a
// run driven through the registry produces byte-identical Results to
// the legacy inline path (reconstructed here exactly as measureContext
// wrote it before the refactor).

import (
	"context"
	"encoding/json"
	"os"
	"reflect"
	"strings"
	"testing"

	"d2m/internal/baseline"
	"d2m/internal/core"
	"d2m/internal/energy"
	"d2m/internal/sim"
)

// TestRegistryConfigEquivalence pins the registry constructors to the
// legacy config builders: for every kind and a non-default option set,
// the system built by the registry carries exactly the configuration
// coreConfig/baselineConfig would have built.
func TestRegistryConfigEquivalence(t *testing.T) {
	opts := []Options{
		{Nodes: 4, Warmup: 1000, Measure: 2000},
		{Nodes: 8, Warmup: 1000, Measure: 2000, Seed: 9, MDScale: 2,
			Bypass: true, Prefetch: true, Topology: "mesh", Placement: "spread"},
	}
	for _, kind := range allKinds() {
		for oi, opt := range opts {
			opt = opt.withDefaults()
			mech, err := mechFor(kind)
			if err != nil {
				t.Fatalf("%v: %v", kind, err)
			}
			inst := mech.New(mechOptions(opt))
			switch s := inst.Underlying().(type) {
			case *baseline.System:
				want := baselineConfig(kind, opt)
				if got := s.Config(); !reflect.DeepEqual(got, want) {
					t.Errorf("%v opts[%d]: registry config %+v != baselineConfig %+v", kind, oi, got, want)
				}
			case *core.System:
				want := coreConfig(kind, opt)
				if got := s.Config(); !reflect.DeepEqual(got, want) {
					t.Errorf("%v opts[%d]: registry config %+v != coreConfig %+v", kind, oi, got, want)
				}
			default:
				t.Fatalf("%v: unknown system type %T", kind, s)
			}
			inst.Release()
		}
	}
}

// legacyMeasure reconstructs the pre-registry measureContext for the
// six pre-refactor kinds: per-kind construction through the legacy
// config builders, the Wrap* adapters, and the old
// kind==D2MNS||kind==D2MNSR near-hit gate. It exists only as the
// reference half of the differential below.
func legacyMeasure(t *testing.T, kind Kind, opt Options, bench string) Result {
	t.Helper()
	_, _, mk, err := benchStream(bench, opt)
	if err != nil {
		t.Fatal(err)
	}
	r := Result{Kind: kind, Benchmark: bench}
	var flitHops uint64
	switch kind {
	case Base2L, Base3L:
		s := baseline.NewSystem(baselineConfig(kind, opt), false)
		defer s.Release()
		engine := sim.NewEngine(sim.WrapBaseline(s), opt.Nodes)
		rep, err := engine.RunContext(context.Background(), mk(), opt.Warmup, opt.Measure)
		if err != nil {
			t.Fatal(err)
		}
		r.fillCommon(rep)
		r.fillBaseline(s, rep)
		flitHops = s.Meter().Count(energy.OpNoCFlit)
	default:
		s := core.NewSystem(coreConfig(kind, opt))
		defer s.Release()
		engine := sim.NewEngine(sim.WrapCore(s), opt.Nodes)
		rep, err := engine.RunContext(context.Background(), mk(), opt.Warmup, opt.Measure)
		if err != nil {
			t.Fatal(err)
		}
		r.fillCommon(rep)
		mech, _ := mechFor(kind)
		r.fillCore(s, rep, mech)
		flitHops = s.Meter().Count(energy.OpNoCFlit)
	}
	r.applyBandwidth(opt, flitHops)
	return r
}

// TestRegistryRunEquivalence is the byte-identity differential: for
// every pre-refactor kind, a run through the mechanism registry equals
// the legacy inline-construction run exactly. (The adaptive kinds have
// no legacy path to compare against; their epoch behaviour is pinned
// by the core-package tests and the snapshot exactness matrix.)
func TestRegistryRunEquivalence(t *testing.T) {
	opt := Options{Nodes: 2, Warmup: 2000, Measure: 5000, Seed: 3}.withDefaults()
	for _, kind := range []Kind{Base2L, Base3L, D2MFS, D2MNS, D2MNSR, D2MHybrid} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			legacy := legacyMeasure(t, kind, opt, "tpc-c")
			via, err := runOne(context.Background(), kind, "tpc-c", opt)
			if err != nil {
				t.Fatal(err)
			}
			// runOne resolves the suite; align the reference before the
			// byte comparison.
			legacy.Suite = via.Suite
			lj, _ := json.Marshal(legacy)
			vj, _ := json.Marshal(via)
			if string(lj) != string(vj) {
				t.Errorf("registry run differs from legacy path:\n legacy   %s\n registry %s", lj, vj)
			}
		})
	}
}

// TestRegistryCoverage checks the registry, the root Kind enum and the
// advertised name list can never drift: orders are dense and match the
// Kind constants, every entry round-trips through String/ParseKind,
// and the test matrices' allKinds() covers every registered mechanism.
func TestRegistryCoverage(t *testing.T) {
	mechs := core.Mechanisms()
	if len(mechs) == 0 {
		t.Fatal("empty mechanism registry")
	}
	for i, m := range mechs {
		if m.Order != i {
			t.Errorf("registry order not dense: entry %d (%s) has Order %d", i, m.Name, m.Order)
		}
		if m.Baseline == m.D2M {
			t.Errorf("%s: Baseline=%v D2M=%v, want exactly one family", m.Name, m.Baseline, m.D2M)
		}
		k := Kind(m.Order)
		if k.String() != m.Name {
			t.Errorf("Kind(%d).String() = %q, registry name %q", m.Order, k.String(), m.Name)
		}
		parsed, err := ParseKind(m.Name)
		if err != nil || parsed != k {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", m.Name, parsed, err, k)
		}
	}
	if got, want := len(allKinds()), len(mechs); got != want {
		t.Errorf("allKinds() covers %d kinds, registry has %d", got, want)
	}
	named := map[Kind]bool{Base2L: true, Base3L: true, D2MFS: true, D2MNS: true,
		D2MNSR: true, D2MHybrid: true, D2MAdaptive: true, D2MLevelPred: true}
	for _, k := range allKinds() {
		if !named[k] {
			t.Errorf("registered kind %v (order %d) has no root Kind constant", k, int(k))
		}
	}
	if len(named) != len(mechs) {
		t.Errorf("%d root Kind constants, %d registered mechanisms", len(named), len(mechs))
	}
}

// TestDocsKindCoverage keeps docs/api.md from drifting behind the
// registry: the API documentation must name every advertised kind.
func TestDocsKindCoverage(t *testing.T) {
	doc, err := os.ReadFile("docs/api.md")
	if err != nil {
		t.Fatal(err)
	}
	text := string(doc)
	for _, name := range KindNames() {
		if !strings.Contains(text, name) {
			t.Errorf("docs/api.md does not mention kind %q", name)
		}
	}
}
