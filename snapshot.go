package d2m

import (
	"context"
	"fmt"

	"d2m/internal/core"
	"d2m/internal/sim"
	"d2m/internal/trace"
)

// Warm-state snapshots amortize warmup across runs: every simulation
// spends Options.Warmup accesses bringing the hierarchy to a steady
// state before measurement begins, and runs that share the warm
// identity (same kind, geometry, workload, seed and warmup length)
// recompute the exact same prefix. A WarmSnapshot freezes the machine
// and the workload stream at the warmup/measurement boundary; a later
// run with the same key restores both and runs only its measurement
// window. Exactness is a hard contract, enforced by tests: a restored
// run's Result is byte-identical to a fresh run's, because the restore
// reproduces the machine state, the stream position and the RNG
// sequence exactly, and both paths perform the same statistics reset
// at the same boundary.

// WarmCache stores warm-state snapshots between runs. Implementations
// must be safe for concurrent use; the service provides a byte-budget
// LRU, and tests use trivial map caches. Get returns nil on a miss.
type WarmCache interface {
	GetWarm(key string) *WarmSnapshot
	PutWarm(snap *WarmSnapshot)
}

// warmGater is the optional third WarmCache method: after a miss, the
// run asks WantWarm whether capturing a snapshot is worth its cost (a
// deep copy of every table in the hierarchy — milliseconds and
// megabytes). Caches that don't implement it get a snapshot on every
// miss; the service's cache says yes only for keys it has seen miss
// before, so one-off jobs never pay for a snapshot nobody will reuse.
type warmGater interface {
	WantWarm(key string) bool
}

// wantWarm resolves the optional capture gate.
func wantWarm(wc WarmCache, key string) bool {
	if g, ok := wc.(warmGater); ok {
		return g.WantWarm(key)
	}
	return true
}

// WarmSnapshot is the frozen warmup/measurement boundary of one run:
// the machine state (whatever MechSnapshot the run's mechanism
// produces) plus the workload stream at its post-warmup position.
// Snapshots are immutable after capture and safe for concurrent
// restores.
type WarmSnapshot struct {
	key    string
	warmup int

	state core.MechSnapshot

	// src is the post-warmup stream, cloned at capture time while the
	// capturing run went on consuming the original — an interleaver
	// over generator streams, or a trace.Cloner such as the file reader
	// replaying a stored trace. Nil when the workload's streams cannot
	// be cloned (closure-driven kernel emitters); restores then rebuild
	// the stream and replay the warmup draws, which is deterministic
	// and still far cheaper than simulating them.
	src trace.Stream

	bytes int64
}

// Key returns the snapshot's warm identity (see WarmKey).
func (ws *WarmSnapshot) Key() string { return ws.key }

// SizeBytes returns the snapshot's approximate in-memory footprint.
func (ws *WarmSnapshot) SizeBytes() int64 { return ws.bytes }

// streamOverheadBytes is the per-snapshot allowance for the cloned
// workload streams, which are cursor structs a few hundred bytes each —
// noise next to the megabytes of table state, but accounted for so the
// byte budget never reads zero for a degenerate snapshot.
const streamOverheadBytes = 4096

// WarmKey returns the warm identity of a benchmark run: the string key
// under which runs share a warmup prefix. It covers everything that
// shapes the machine and stream state at the warmup boundary — kind,
// node count, warmup length, seed, metadata scale, the optimization
// toggles, topology and placement — and deliberately excludes the
// measurement-side parameters (Measure, LinkBandwidth), which is what
// lets sweep cells and repeated jobs that vary only those share one
// warmup. Topology and placement are canonicalized so "" and their
// explicit defaults share a key.
func WarmKey(kind Kind, bench string, opt Options) string {
	return warmKey(kind, "bench:"+bench, opt)
}

// KernelWarmKey is WarmKey for algorithmic kernel runs.
func KernelWarmKey(kind Kind, kernel string, opt Options) string {
	return warmKey(kind, "kernel:"+kernel, opt)
}

func warmKey(kind Kind, scope string, opt Options) string {
	opt = opt.withDefaults()
	topo := opt.Topology
	if topo == "" {
		topo = "crossbar"
	}
	place := opt.Placement
	if place == "" {
		place = "pressure"
	}
	return fmt.Sprintf("%s|%s|n%d|w%d|s%d|md%d|b%t|p%t|%s|%s",
		scope, kind, opt.Nodes, opt.Warmup, opt.Seed, opt.MDScale,
		opt.Bypass, opt.Prefetch, topo, place)
}

// runSingle is the single-run engine behind Run: when wc holds a
// snapshot for the run's warm identity, the warmup phase is replaced by
// a state restore; when it does not, the run executes normally and
// deposits a snapshot for its successors. A nil wc always warms from
// scratch.
func runSingle(ctx context.Context, kind Kind, bench string, opt Options, wc WarmCache) (Result, error) {
	opt = opt.withDefaults()
	name, suite, mk, err := benchStream(bench, opt)
	if err != nil {
		return Result{}, err
	}
	if err := opt.Validate(); err != nil {
		return Result{}, err
	}
	res := Result{Kind: kind, Benchmark: name, Suite: suite}
	if err := res.runWarm(ctx, kind, opt, warmKey(kind, "bench:"+name, opt), mk, wc); err != nil {
		return Result{}, err
	}
	return res, nil
}

// runWarm runs the simulation with warm-state reuse through wc;
// mkStream rebuilds the access stream from position zero. With a nil
// cache it is exactly measureContext on a fresh stream. The machine
// comes from the mechanism registry; restore and capture go through
// the MechInstance snapshot hooks, so every registered kind — baseline
// or D2M — shares this one path.
func (r *Result) runWarm(ctx context.Context, kind Kind, opt Options, key string, mkStream func() trace.Stream, wc WarmCache) error {
	if wc == nil {
		return r.measureContext(ctx, kind, opt, mkStream())
	}
	mech, err := mechFor(kind)
	if err != nil {
		return err
	}
	snap := wc.GetWarm(key)

	inst := mech.New(mechOptions(opt))
	defer inst.Release()
	engine := sim.NewEngine(inst, opt.Nodes)
	src, err := warmedStream(ctx, engine, snap, mkStream, opt.Warmup)
	if err != nil {
		return err
	}
	if snap != nil {
		inst.Restore(snap.state)
	} else if wantWarm(wc, key) {
		ws := &WarmSnapshot{key: key, warmup: opt.Warmup, state: inst.Snapshot()}
		ws.finish(src)
		wc.PutWarm(ws)
	}
	rep, err := engine.Measure(ctx, src, opt.Measure)
	if err != nil {
		return err
	}
	r.fillCommon(rep)
	flitHops, err := r.fillFromInstance(inst, rep, mech)
	if err != nil {
		return err
	}
	r.applyBandwidth(opt, flitHops)
	return nil
}

// warmedStream produces the stream positioned at the warmup boundary.
// On a miss (snap == nil) it builds a fresh stream and simulates the
// warmup through the engine, mutating the machine — the normal path.
// On a hit it does not touch the machine: it duplicates the snapshot's
// stored stream, or, when the streams were not cloneable, rebuilds the
// stream and replays (without simulating) the warmup draws.
func warmedStream(ctx context.Context, engine *sim.Engine, snap *WarmSnapshot, mkStream func() trace.Stream, warmup int) (trace.Stream, error) {
	if snap == nil {
		src := mkStream()
		if err := engine.Warmup(ctx, src, warmup); err != nil {
			return nil, err
		}
		return src, nil
	}
	if snap.src != nil {
		switch s := snap.src.(type) {
		case *trace.Interleaver:
			cp, ok := s.Clone()
			if !ok {
				panic("d2m: stored warm stream lost cloneability")
			}
			return cp, nil
		case trace.Cloner:
			return s.Clone(), nil
		}
		panic("d2m: stored warm stream lost cloneability")
	}
	src := mkStream()
	for i := 0; i < snap.warmup; i++ {
		if i%4096 == 0 && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		src.Next()
	}
	return src, nil
}

// finish records the post-warmup stream position (cloning it when the
// streams support cloning) and totals the snapshot's byte footprint.
func (ws *WarmSnapshot) finish(src trace.Stream) {
	switch s := src.(type) {
	case *trace.Interleaver:
		// Interleaver's Clone reports cloneability separately, so it is
		// matched before the generic Cloner interface.
		if cp, ok := s.Clone(); ok {
			ws.src = cp
		}
	case trace.Cloner:
		ws.src = s.Clone()
	}
	ws.bytes = streamOverheadBytes
	if ws.state != nil {
		ws.bytes += ws.state.SizeBytes()
	}
}
