package service

import (
	"context"
	"d2m/internal/api"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"d2m"
)

// deleteJob issues DELETE /v1/jobs/{id} and decodes whichever of the
// two body shapes came back.
func deleteJob(t *testing.T, ts *httptest.Server, id string) (int, api.JobStatus, api.ErrorBody) {
	t.Helper()
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE /v1/jobs/%s: %v", id, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var st api.JobStatus
	var eb api.ErrorBody
	if resp.StatusCode < 400 {
		if err := json.Unmarshal(raw, &st); err != nil {
			t.Fatalf("decode %q: %v", raw, err)
		}
	} else if err := json.Unmarshal(raw, &eb); err != nil {
		t.Fatalf("decode %q: %v", raw, err)
	}
	return resp.StatusCode, st, eb
}

// TestJobCancelQueued cancels a job while it waits in the queue: it
// settles canceled without ever occupying a worker, reports its class
// and queue position while queued, and a second DELETE is a conflict.
func TestJobCancelQueued(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	started := make(chan struct{}, 4)
	_, ts := newTestServer(t, Config{Workers: 1,
		Runner: func(ctx context.Context, kind d2m.Kind, bench string, opt d2m.Options) (d2m.Result, error) {
			started <- struct{}{}
			select {
			case <-gate:
			case <-ctx.Done():
			}
			return stubResult(kind, bench, opt), nil
		},
	})

	// Occupy the worker, then queue two more jobs behind it.
	if code, _, _ := postRun(t, ts, `{"kind":"base-2l","benchmark":"tpc-c","seed":1,"async":true}`); code != http.StatusAccepted {
		t.Fatalf("blocker = %d, want 202", code)
	}
	<-started
	var queued [2]api.JobStatus
	for i := range queued {
		code, st, _ := postRun(t, ts,
			fmt.Sprintf(`{"kind":"base-2l","benchmark":"tpc-c","seed":%d,"async":true}`, i+2))
		if code != http.StatusAccepted {
			t.Fatalf("queued[%d] = %d, want 202", i, code)
		}
		queued[i] = st
	}
	if queued[0].State != api.JobQueued || queued[0].Priority != "interactive" {
		t.Errorf("queued job status = %+v, want queued/interactive", queued[0])
	}
	if queued[0].QueuePosition != 1 || queued[1].QueuePosition != 2 {
		t.Errorf("queue positions = %d, %d, want 1, 2",
			queued[0].QueuePosition, queued[1].QueuePosition)
	}

	code, st, _ := deleteJob(t, ts, queued[0].ID)
	if code != http.StatusOK || st.State != api.JobCanceled {
		t.Fatalf("DELETE queued = %d %+v, want 200 canceled", code, st)
	}
	// The job behind it moves up.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + queued[1].ID)
	if err != nil {
		t.Fatal(err)
	}
	var moved api.JobStatus
	json.NewDecoder(resp.Body).Decode(&moved)
	resp.Body.Close()
	if moved.State != api.JobQueued || moved.QueuePosition != 1 {
		t.Errorf("survivor = %+v, want queued at position 1", moved)
	}

	// Cancelling a settled job conflicts, with the terminal state named.
	code, _, eb := deleteJob(t, ts, queued[0].ID)
	if code != http.StatusConflict || eb.Error.Code != api.ErrConflict {
		t.Errorf("second DELETE = %d %+v, want 409 conflict", code, eb)
	}
	// Unknown ids are 404.
	if code, _, eb := deleteJob(t, ts, "j99999999"); code != http.StatusNotFound || eb.Error.Code != api.ErrNotFound {
		t.Errorf("unknown DELETE = %d %+v, want 404 not_found", code, eb)
	}
}

// TestJobCancelRunning cancels a job mid-simulation: its context is
// cancelled, the simulation aborts, and the job settles canceled.
func TestJobCancelRunning(t *testing.T) {
	started := make(chan struct{}, 1)
	_, ts := newTestServer(t, Config{Workers: 1,
		Runner: func(ctx context.Context, kind d2m.Kind, bench string, opt d2m.Options) (d2m.Result, error) {
			started <- struct{}{}
			<-ctx.Done()
			return d2m.Result{}, ctx.Err()
		},
	})
	code, st, _ := postRun(t, ts, `{"kind":"base-2l","benchmark":"tpc-c","async":true}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", code)
	}
	<-started

	code, got, _ := deleteJob(t, ts, st.ID)
	if code != http.StatusOK {
		t.Fatalf("DELETE running = %d, want 200", code)
	}
	if got.State != api.JobRunning && got.State != api.JobCanceled {
		t.Fatalf("state right after cancel = %s", got.State)
	}
	// The job settles canceled once the simulation notices.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		var cur api.JobStatus
		json.NewDecoder(resp.Body).Decode(&cur)
		resp.Body.Close()
		if cur.State == api.JobCanceled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s after cancel", cur.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
