package service

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"os"
	"sync"
	"time"

	"d2m/internal/api"
)

// Multi-tenant admission (API v1.6). When Config.Tenants is set, every
// job-submitting endpoint requires an X-API-Key header naming a known
// tenant; each tenant carries a token-bucket rate limit enforced here,
// in front of the shared pipeline, and a queue share enforced inside
// the scheduler's deficit-round-robin dequeue. The two layers answer
// different questions — the bucket bounds how fast a tenant may submit
// (429 rate_limited, per tenant, before anything is queued), the share
// bounds how much of a contended worker pool its backlog may hold —
// and together they make one hostile tenant's flood invisible to the
// others. Without Config.Tenants the service is single-tenant and the
// whole layer is inert: no header required, no limits, exact pre-v1.6
// behavior.

// TenantSpec declares one tenant in the -tenants config file (a JSON
// array of these).
type TenantSpec struct {
	// Name labels the tenant in errors, metrics, and the scheduler's
	// fair queueing. Required, unique.
	Name string `json:"name"`
	// Key is the X-API-Key credential. Required, unique.
	Key string `json:"key"`
	// Rate is the sustained admission rate in submissions per second
	// (a batch costs its run count, a sweep its cell count). Zero or
	// negative means unlimited.
	Rate float64 `json:"rate,omitempty"`
	// Burst is the bucket depth: how many submissions may land at once
	// after an idle spell. Zero means max(1, ceil(Rate)). Ignored when
	// Rate is unlimited.
	Burst int `json:"burst,omitempty"`
	// Share is the tenant's weight in the scheduler's deficit round
	// robin: per contended round it drains Share jobs for every one of
	// a share-1 tenant. Omitted means 1. An explicit 0 declares a
	// zero-share tenant: its key authenticates but every submission is
	// rejected rate_limited — a kill switch that keeps the tenant's
	// reads working.
	Share *int `json:"share,omitempty"`
}

// tenant is the runtime state behind one spec: the token bucket.
type tenant struct {
	spec  TenantSpec
	share int

	mu     sync.Mutex
	tokens float64
	last   time.Time
}

// take charges n submissions against the bucket. It returns ok, or the
// wait until enough tokens accrue.
func (t *tenant) take(n int, now time.Time) (bool, time.Duration) {
	if t.spec.Rate <= 0 {
		return true, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	burst := float64(t.spec.Burst)
	t.tokens += now.Sub(t.last).Seconds() * t.spec.Rate
	t.last = now
	if t.tokens > burst {
		t.tokens = burst
	}
	if t.tokens >= float64(n) {
		t.tokens -= float64(n)
		return true, 0
	}
	short := float64(n) - t.tokens
	return false, time.Duration(short / t.spec.Rate * float64(time.Second))
}

// tenantRegistry resolves API keys to tenants. Immutable after New.
type tenantRegistry struct {
	byKey  map[string]*tenant
	byName map[string]*tenant
}

// newTenantRegistry validates the specs and builds the runtime state.
func newTenantRegistry(specs []TenantSpec) (*tenantRegistry, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	reg := &tenantRegistry{
		byKey:  make(map[string]*tenant, len(specs)),
		byName: make(map[string]*tenant, len(specs)),
	}
	for i, spec := range specs {
		if spec.Name == "" {
			return nil, fmt.Errorf("tenants[%d]: name is required", i)
		}
		if spec.Key == "" {
			return nil, fmt.Errorf("tenants[%d] (%s): key is required", i, spec.Name)
		}
		if _, dup := reg.byName[spec.Name]; dup {
			return nil, fmt.Errorf("tenants[%d]: duplicate name %q", i, spec.Name)
		}
		if _, dup := reg.byKey[spec.Key]; dup {
			return nil, fmt.Errorf("tenants[%d] (%s): key already assigned", i, spec.Name)
		}
		share := 1
		if spec.Share != nil {
			if *spec.Share < 0 {
				return nil, fmt.Errorf("tenants[%d] (%s): share %d is negative", i, spec.Name, *spec.Share)
			}
			share = *spec.Share
		}
		if spec.Rate > 0 && spec.Burst <= 0 {
			spec.Burst = int(math.Ceil(spec.Rate))
			if spec.Burst < 1 {
				spec.Burst = 1
			}
		}
		t := &tenant{spec: spec, share: share, last: time.Now()}
		t.tokens = float64(spec.Burst) // start full: a fresh tenant has its burst
		reg.byKey[spec.Key] = t
		reg.byName[spec.Name] = t
	}
	return reg, nil
}

// LoadTenants reads a -tenants config file: a JSON array of TenantSpec.
func LoadTenants(path string) ([]TenantSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var specs []TenantSpec
	if err := json.Unmarshal(data, &specs); err != nil {
		return nil, fmt.Errorf("tenants file %s: %v", path, err)
	}
	if _, err := newTenantRegistry(specs); err != nil {
		return nil, fmt.Errorf("tenants file %s: %v", path, err)
	}
	return specs, nil
}

// tenantShare is the scheduler's TenantShare hook. The default tenant
// ("" — single-tenant mode, or internal work) weighs 1.
func (s *Server) tenantShare(name string) int {
	if s.tenants == nil {
		return 1
	}
	if t, ok := s.tenants.byName[name]; ok {
		return t.share
	}
	return 1
}

// authTenant resolves the request's tenant. With no registry every
// request is the default tenant (""). With one, a missing or unknown
// X-API-Key is a 401 written here; the caller returns on !ok.
func (s *Server) authTenant(w http.ResponseWriter, r *http.Request) (string, bool) {
	if s.tenants == nil {
		return "", true
	}
	key := r.Header.Get("X-API-Key")
	if key == "" {
		api.WriteErr(w, api.Errorf(api.ErrUnauthorized, "missing X-API-Key header"))
		return "", false
	}
	t, ok := s.tenants.byKey[key]
	if !ok {
		api.WriteErr(w, api.Errorf(api.ErrUnauthorized, "unknown API key"))
		return "", false
	}
	return t.spec.Name, true
}

// admitTenant is authTenant plus the token-bucket charge for n
// submissions: the write-path gate. A zero-share tenant or an empty
// bucket is a 429 rate_limited carrying the machine-readable
// retry_after_ms / tenant / limit fields — distinct from the global
// overloaded rejection of a full queue.
func (s *Server) admitTenant(w http.ResponseWriter, r *http.Request, n int) (string, bool) {
	name, ok := s.authTenant(w, r)
	if !ok {
		return "", false
	}
	if s.tenants == nil {
		return name, true
	}
	t := s.tenants.byName[name]
	if t.share == 0 {
		s.metrics.TenantRateLimited(name, n)
		api.WriteErr(w, &api.Error{
			Code:    api.ErrRateLimited,
			Message: fmt.Sprintf("tenant %q has zero queue share: submissions are disabled", name),
			Tenant:  name,
		})
		return "", false
	}
	if ok, wait := t.take(n, time.Now()); !ok {
		s.metrics.TenantRateLimited(name, n)
		ms := wait.Milliseconds()
		if ms < 1 {
			ms = 1
		}
		api.WriteErr(w, &api.Error{
			Code: api.ErrRateLimited,
			Message: fmt.Sprintf("tenant %q exceeded its admission rate (%g/s)",
				name, t.spec.Rate),
			RetryAfterMS: ms,
			Tenant:       name,
			Limit:        t.spec.Rate,
		})
		return "", false
	}
	s.metrics.TenantAdmitted(name, n)
	return name, true
}

// tenancyCaps renders the capabilities advert: enabled plus, when the
// caller presented a valid key, its own limits.
func (s *Server) tenancyCaps(r *http.Request) *api.TenancyCaps {
	if s.tenants == nil {
		return nil
	}
	caps := &api.TenancyCaps{Enabled: true}
	if t, ok := s.tenants.byKey[r.Header.Get("X-API-Key")]; ok {
		caps.Tenant = t.spec.Name
		caps.Rate = t.spec.Rate
		caps.Burst = t.spec.Burst
		caps.Share = t.share
	}
	return caps
}
