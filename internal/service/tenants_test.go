package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"d2m/internal/api"
)

// Multi-tenant admission tests (API v1.6): API-key auth, the
// per-tenant token bucket, the zero-share kill switch, and the
// capability advert.

func intp(n int) *int { return &n }

// tenantConfig is the three-tenant fixture most tests share.
func tenantConfig() []TenantSpec {
	return []TenantSpec{
		{Name: "alice", Key: "key-a", Rate: 5, Burst: 4, Share: intp(4)},
		{Name: "bob", Key: "key-b"}, // unlimited rate, default share 1
		{Name: "muted", Key: "key-m", Share: intp(0)},
	}
}

// doJSON issues a request with an optional API key and decodes the
// error envelope when the status is an error.
func doJSON(t *testing.T, method, url, key, body string) (int, []byte, http.Header) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	if key != "" {
		req.Header.Set("X-API-Key", key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, raw, resp.Header
}

func errEnvelope(t *testing.T, raw []byte) api.ErrorInfo {
	t.Helper()
	var eb api.ErrorBody
	if err := json.Unmarshal(raw, &eb); err != nil {
		t.Fatalf("decode error envelope %q: %v", raw, err)
	}
	return eb.Error
}

const tinyRun = `{"kind":"d2m-ns-r","benchmark":"tpc-c","nodes":2,"warmup":200,"measure":500}`

func TestTenantAuthRequired(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, Tenants: tenantConfig()})

	// No key: 401 on every job endpoint, submit or read.
	for _, probe := range []struct{ method, path, body string }{
		{"POST", "/v1/run", tinyRun},
		{"POST", "/v1/batch", `{"runs":[` + tinyRun + `]}`},
		{"POST", "/v1/sweeps", `{"kinds":["d2m-ns-r"],"benchmarks":["tpc-c"],"nodes":2,"warmup":200,"measure":500}`},
		{"GET", "/v1/jobs", ""},
		{"GET", "/v1/jobs/j00000001", ""},
		{"GET", "/v1/sweeps", ""},
		{"GET", "/v1/sweeps/s00000001", ""},
		{"DELETE", "/v1/jobs/j00000001", ""},
		{"DELETE", "/v1/sweeps/s00000001", ""},
	} {
		code, raw, _ := doJSON(t, probe.method, ts.URL+probe.path, "", probe.body)
		if code != http.StatusUnauthorized {
			t.Errorf("%s %s without key = %d, want 401", probe.method, probe.path, code)
			continue
		}
		if ei := errEnvelope(t, raw); ei.Code != api.ErrUnauthorized {
			t.Errorf("%s %s error code = %q, want %q", probe.method, probe.path, ei.Code, api.ErrUnauthorized)
		}
	}

	// Unknown key: also 401.
	code, raw, _ := doJSON(t, "POST", ts.URL+"/v1/run", "no-such-key", tinyRun)
	if code != http.StatusUnauthorized {
		t.Fatalf("unknown key = %d, want 401", code)
	}
	if ei := errEnvelope(t, raw); ei.Code != api.ErrUnauthorized {
		t.Fatalf("unknown key error code = %q", ei.Code)
	}

	// A valid key runs normally.
	code, raw, _ = doJSON(t, "POST", ts.URL+"/v1/run", "key-b", tinyRun)
	if code != http.StatusOK {
		t.Fatalf("valid key = %d (%s), want 200", code, raw)
	}

	// Health, readiness, capabilities, and metrics stay open: probes
	// and dashboards carry no tenant identity.
	for _, path := range []string{"/healthz", "/readyz", "/v1/capabilities", "/metrics"} {
		if code, _, _ := doJSON(t, "GET", ts.URL+path, "", ""); code != http.StatusOK {
			t.Errorf("GET %s without key = %d, want 200", path, code)
		}
	}
}

func TestTenantTokenBucket(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, Tenants: tenantConfig()})

	// alice has burst 4: four immediate async submissions pass, the
	// fifth is 429 rate_limited with the machine-readable envelope.
	async := strings.TrimSuffix(tinyRun, "}") + `,"async":true,"seed":%d}`
	for i := 0; i < 4; i++ {
		code, raw, _ := doJSON(t, "POST", ts.URL+"/v1/run", "key-a", fmt.Sprintf(async, i+1))
		if code != http.StatusAccepted {
			t.Fatalf("burst submission %d = %d (%s), want 202", i, code, raw)
		}
	}
	code, raw, hdr := doJSON(t, "POST", ts.URL+"/v1/run", "key-a", fmt.Sprintf(async, 99))
	if code != http.StatusTooManyRequests {
		t.Fatalf("burst exhaustion = %d (%s), want 429", code, raw)
	}
	ei := errEnvelope(t, raw)
	if ei.Code != api.ErrRateLimited {
		t.Errorf("code = %q, want %q (distinct from %q)", ei.Code, api.ErrRateLimited, api.ErrOverloaded)
	}
	if ei.Tenant != "alice" {
		t.Errorf("tenant = %q, want alice", ei.Tenant)
	}
	if ei.Limit != 5 {
		t.Errorf("limit = %g, want 5", ei.Limit)
	}
	if ei.RetryAfterMS < 1 {
		t.Errorf("retry_after_ms = %d, want >= 1", ei.RetryAfterMS)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("Retry-After header missing on rate_limited 429")
	}

	// bob is unlimited and unaffected by alice's empty bucket.
	if code, raw, _ := doJSON(t, "POST", ts.URL+"/v1/run", "key-b", tinyRun); code != http.StatusOK {
		t.Fatalf("bob after alice's 429 = %d (%s), want 200", code, raw)
	}

	// At 5/s the bucket refills a token every 200ms and alice recovers.
	deadline := time.Now().Add(2 * time.Second)
	for {
		code, _, _ := doJSON(t, "POST", ts.URL+"/v1/run", "key-a", fmt.Sprintf(async, 100))
		if code == http.StatusAccepted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("alice's bucket never refilled")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestTenantBatchAndSweepChargePerSubmission(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, Tenants: []TenantSpec{
		{Name: "alice", Key: "key-a", Rate: 0.001, Burst: 4},
	}})

	// A 5-run batch costs 5 tokens against a burst of 4: rejected
	// whole, nothing admitted, and the bucket is not charged (the next
	// 4-cell sweep still fits).
	runs := make([]string, 5)
	for i := range runs {
		runs[i] = strings.TrimSuffix(tinyRun, "}") + fmt.Sprintf(`,"seed":%d}`, i+1)
	}
	code, raw, _ := doJSON(t, "POST", ts.URL+"/v1/batch", "key-a",
		`{"runs":[`+strings.Join(runs, ",")+`]}`)
	if code != http.StatusTooManyRequests {
		t.Fatalf("5-run batch on burst 4 = %d (%s), want 429", code, raw)
	}
	if ei := errEnvelope(t, raw); ei.Code != api.ErrRateLimited {
		t.Fatalf("batch rejection code = %q, want rate_limited", ei.Code)
	}

	// A 4-cell sweep costs exactly the burst and is accepted.
	code, raw, _ = doJSON(t, "POST", ts.URL+"/v1/sweeps", "key-a",
		`{"kinds":["d2m-ns-r"],"benchmarks":["tpc-c"],"nodes":2,"warmup":200,"measure":500,
		  "link_bandwidths":[0.001,0.002,0.003,0.004]}`)
	if code != http.StatusAccepted {
		t.Fatalf("4-cell sweep = %d (%s), want 202", code, raw)
	}

	// The bucket is now empty (refill is negligible at 0.001/s): even
	// one run is rejected.
	code, raw, _ = doJSON(t, "POST", ts.URL+"/v1/run", "key-a", tinyRun)
	if code != http.StatusTooManyRequests {
		t.Fatalf("run after sweep drained bucket = %d (%s), want 429", code, raw)
	}
}

func TestZeroShareTenant(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, Tenants: tenantConfig()})

	// Seed a job as bob so the muted tenant has something to read.
	code, raw, _ := doJSON(t, "POST", ts.URL+"/v1/run", "key-b",
		strings.TrimSuffix(tinyRun, "}")+`,"async":true}`)
	if code != http.StatusAccepted {
		t.Fatalf("seed job = %d (%s)", code, raw)
	}
	var js api.JobStatus
	if err := json.Unmarshal(raw, &js); err != nil {
		t.Fatal(err)
	}

	// Every submission is 429 rate_limited — no retry hint, this is
	// not a transient state.
	code, raw, hdr := doJSON(t, "POST", ts.URL+"/v1/run", "key-m", tinyRun)
	if code != http.StatusTooManyRequests {
		t.Fatalf("zero-share submission = %d (%s), want 429", code, raw)
	}
	ei := errEnvelope(t, raw)
	if ei.Code != api.ErrRateLimited || ei.Tenant != "muted" {
		t.Errorf("envelope = %+v, want rate_limited for muted", ei)
	}
	if ei.RetryAfterMS != 0 || hdr.Get("Retry-After") != "" {
		t.Error("zero-share rejection should carry no retry hint")
	}

	// Reads keep working: the kill switch disables submission only.
	if code, _, _ := doJSON(t, "GET", ts.URL+"/v1/jobs/"+js.ID, "key-m", ""); code != http.StatusOK {
		t.Errorf("zero-share read = %d, want 200", code)
	}

	// And the scheduler never saw a muted submission to weigh.
	if got := s.tenantShare("muted"); got != 0 {
		t.Errorf("tenantShare(muted) = %d, want 0", got)
	}
}

func TestTenancyCapabilities(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, Tenants: tenantConfig()})

	var caps api.Capabilities
	_, raw, _ := doJSON(t, "GET", ts.URL+"/v1/capabilities", "key-a", "")
	if err := json.Unmarshal(raw, &caps); err != nil {
		t.Fatal(err)
	}
	if !caps.SSE || !caps.SweepsList {
		t.Errorf("caps advertise sse=%v sweeps_list=%v, want both true", caps.SSE, caps.SweepsList)
	}
	if caps.Tenancy == nil || !caps.Tenancy.Enabled {
		t.Fatalf("tenancy caps = %+v, want enabled", caps.Tenancy)
	}
	if caps.Tenancy.Tenant != "alice" || caps.Tenancy.Rate != 5 ||
		caps.Tenancy.Burst != 4 || caps.Tenancy.Share != 4 {
		t.Errorf("alice's own limits = %+v", caps.Tenancy)
	}

	// Without a key the advert shows enabled but no identity.
	_, raw, _ = doJSON(t, "GET", ts.URL+"/v1/capabilities", "", "")
	caps = api.Capabilities{}
	if err := json.Unmarshal(raw, &caps); err != nil {
		t.Fatal(err)
	}
	if caps.Tenancy == nil || !caps.Tenancy.Enabled || caps.Tenancy.Tenant != "" {
		t.Errorf("anonymous tenancy caps = %+v", caps.Tenancy)
	}

	// A single-tenant server advertises no tenancy at all.
	_, ts2 := newTestServer(t, Config{Workers: 1})
	_, raw, _ = doJSON(t, "GET", ts2.URL+"/v1/capabilities", "", "")
	caps = api.Capabilities{}
	if err := json.Unmarshal(raw, &caps); err != nil {
		t.Fatal(err)
	}
	if caps.Tenancy != nil {
		t.Errorf("single-tenant tenancy caps = %+v, want absent", caps.Tenancy)
	}
}

func TestLoadTenantsValidation(t *testing.T) {
	for _, tc := range []struct {
		name  string
		specs []TenantSpec
		want  string
	}{
		{"missing name", []TenantSpec{{Key: "k"}}, "name is required"},
		{"missing key", []TenantSpec{{Name: "a"}}, "key is required"},
		{"dup name", []TenantSpec{{Name: "a", Key: "k1"}, {Name: "a", Key: "k2"}}, "duplicate name"},
		{"dup key", []TenantSpec{{Name: "a", Key: "k"}, {Name: "b", Key: "k"}}, "key already assigned"},
		{"negative share", []TenantSpec{{Name: "a", Key: "k", Share: intp(-1)}}, "negative"},
	} {
		if _, err := newTenantRegistry(tc.specs); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}

	// Burst defaults to ceil(rate), floored at 1.
	reg, err := newTenantRegistry([]TenantSpec{
		{Name: "a", Key: "ka", Rate: 2.5},
		{Name: "b", Key: "kb", Rate: 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.byName["a"].spec.Burst; got != 3 {
		t.Errorf("burst for rate 2.5 = %d, want 3", got)
	}
	if got := reg.byName["b"].spec.Burst; got != 1 {
		t.Errorf("burst for rate 0.1 = %d, want 1", got)
	}
}

func TestSweepsListPagination(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	// Three one-cell sweeps, settled in order.
	var ids []string
	for i := 0; i < 3; i++ {
		code, st := postSweep(t, ts, fmt.Sprintf(
			`{"kinds":["d2m-ns-r"],"benchmarks":["tpc-c"],"nodes":2,"warmup":200,"measure":500,"seeds":[%d]}`, i+1))
		if code != http.StatusAccepted {
			t.Fatalf("sweep %d = %d", i, code)
		}
		waitSweep(t, ts, st.ID, 30*time.Second)
		ids = append(ids, st.ID)
	}

	get := func(query string) SweepList {
		t.Helper()
		code, raw, _ := doJSON(t, "GET", ts.URL+"/v1/sweeps"+query, "", "")
		if code != http.StatusOK {
			t.Fatalf("GET /v1/sweeps%s = %d (%s)", query, code, raw)
		}
		var list SweepList
		if err := json.Unmarshal(raw, &list); err != nil {
			t.Fatal(err)
		}
		return list
	}

	// Newest first, no cursor on a complete page.
	list := get("")
	if len(list.Sweeps) != 3 || list.NextCursor != "" {
		t.Fatalf("full list = %d sweeps, cursor %q", len(list.Sweeps), list.NextCursor)
	}
	for i, st := range list.Sweeps {
		if want := ids[len(ids)-1-i]; st.ID != want {
			t.Errorf("list[%d] = %s, want %s", i, st.ID, want)
		}
		if st.Summary != nil || st.Cells != nil {
			t.Errorf("list[%d] carries summary/cells; the list view is a digest", i)
		}
	}

	// Pagination: limit 2 pages then cursor walks the rest.
	page := get("?limit=2")
	if len(page.Sweeps) != 2 || page.NextCursor != ids[1] {
		t.Fatalf("page 1 = %d sweeps, cursor %q (want %q)", len(page.Sweeps), page.NextCursor, ids[1])
	}
	rest := get("?limit=2&cursor=" + page.NextCursor)
	if len(rest.Sweeps) != 1 || rest.Sweeps[0].ID != ids[0] || rest.NextCursor != "" {
		t.Fatalf("page 2 = %+v", rest)
	}

	// State filter.
	if done := get("?state=done"); len(done.Sweeps) != 3 {
		t.Errorf("state=done = %d sweeps, want 3", len(done.Sweeps))
	}
	if running := get("?state=running"); len(running.Sweeps) != 0 {
		t.Errorf("state=running = %d sweeps, want 0", len(running.Sweeps))
	}
	if code, _, _ := doJSON(t, "GET", ts.URL+"/v1/sweeps?state=bogus", "", ""); code != http.StatusBadRequest {
		t.Errorf("state=bogus = %d, want 400", code)
	}
}
