package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"d2m"
)

// POST /v1/batch admits up to MaxBatchRuns simulations as one unit and
// streams their results back in request order. Each run flows through
// the same machinery as POST /v1/run — result cache, single-flight
// coalescing, bounded queue — with two batch-only behaviors on top:
// admission is all-or-nothing (either every uncached run gets a queue
// slot or the batch is rejected 429 with nothing enqueued), and runs
// sharing a warm identity (d2m.WarmKey) are chained onto one worker so
// each follower restores the snapshot its leader just deposited.

// BatchRequest is the body of POST /v1/batch. Runs are independent
// RunRequests; the async field is rejected here, since the batch
// response itself is the collection mechanism.
type BatchRequest struct {
	Runs []RunRequest `json:"runs"`
}

// MaxBatchRuns bounds the runs per batch: enough for a full
// kind x benchmark sweep with replicates, small enough that one POST
// cannot swallow the whole queue several times over.
const MaxBatchRuns = 256

// batchBody is the POST /v1/batch response: one JobStatus per run, in
// request order.
type batchBody struct {
	Results []JobStatus `json:"results"`
}

// maxBatchBodyBytes sizes the request-body cap: MaxBatchRuns requests
// at a few hundred bytes each fit comfortably.
const maxBatchBodyBytes = 4 << 20

// batchSlot is one run's position in the response: either settled at
// admission (cache hit) or waiting on a job.
type batchSlot struct {
	st JobStatus // valid when j is nil
	j  *job
}

// batchEncoders pools the per-result encoding buffers: a batch of 256
// results would otherwise allocate a fresh buffer per element per
// request.
var batchEncoders = sync.Pool{
	New: func() interface{} { return new(bytes.Buffer) },
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, apiErrorf(ErrInvalidRequest, "bad request body: %v", err))
		return
	}
	if len(req.Runs) == 0 {
		writeError(w, apiErrorf(ErrInvalidRequest, "batch has no runs"))
		return
	}
	if len(req.Runs) > MaxBatchRuns {
		writeError(w, apiErrorf(ErrInvalidRequest,
			"batch has %d runs, limit is %d", len(req.Runs), MaxBatchRuns))
		return
	}

	// Validate every run before admitting any: a batch either enters
	// the queue whole or not at all.
	type pendingRun struct {
		idx   int
		req   RunRequest
		kind  d2m.Kind
		bench string
		opt   d2m.Options
		reps  int
		key   string
		warm  string
	}
	slots := make([]batchSlot, len(req.Runs))
	var pending []pendingRun
	for i, rr := range req.Runs {
		if rr.Async {
			writeError(w, apiErrorf(ErrInvalidRequest,
				"runs[%d]: async is not supported in batches; use POST /v1/run", i))
			return
		}
		kind, bench, opt, reps, err := rr.normalize()
		if err != nil {
			ae := err.(*apiError)
			writeError(w, apiErrorf(ae.Code, "runs[%d]: %s", i, ae.Message))
			return
		}
		key := cacheKey(kind, bench, opt, reps)
		if res, rep, ok := s.cache.get(key); ok {
			s.metrics.CacheHits.Add(1)
			slots[i] = batchSlot{st: JobStatus{
				State: JobDone, Kind: kind.String(), Benchmark: bench,
				Cached: true, Result: &res, Replicated: rep,
			}}
			continue
		}
		s.metrics.CacheMisses.Add(1)
		pending = append(pending, pendingRun{
			idx: i, req: rr, kind: kind, bench: bench, opt: opt, reps: reps,
			key: key, warm: d2m.WarmKey(kind, bench, opt),
		})
	}

	// Admission: resolve every pending run to a job under one lock
	// acquisition. Runs coalesce onto identical in-flight jobs (from
	// earlier requests or earlier in this batch); the rest become new
	// jobs, grouped by warm key — the first job of a group is enqueued
	// and carries the others as its chain.
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeError(w, errDraining)
		return
	}
	var (
		created []*job              // all new jobs, enqueued or chained
		leaders []*job              // new jobs that take a queue slot
		byBatch = map[string]*job{} // within-batch coalescing by cache key
		byWarm  = map[string]*job{} // chain grouping by warm key
	)
	for _, p := range pending {
		if j, ok := s.inflight[p.key]; ok {
			s.metrics.Coalesced.Add(1)
			j.waiters++
			slots[p.idx] = batchSlot{j: j}
			continue
		}
		if j, ok := byBatch[p.key]; ok {
			s.metrics.Coalesced.Add(1)
			j.waiters++
			slots[p.idx] = batchSlot{j: j}
			continue
		}
		j := &job{
			id:      fmt.Sprintf("j%08d", s.nextID.Add(1)),
			key:     p.key,
			kind:    p.kind,
			bench:   p.bench,
			opt:     p.opt,
			reps:    p.reps,
			done:    make(chan struct{}),
			state:   JobQueued,
			created: time.Now(),
			waiters: 1,
		}
		timeout := s.cfg.DefaultTimeout
		if p.req.TimeoutMS > 0 {
			timeout = time.Duration(p.req.TimeoutMS) * time.Millisecond
		}
		if timeout > 0 {
			j.ctx, j.cancel = context.WithTimeout(s.baseCtx, timeout)
		} else {
			j.ctx, j.cancel = context.WithCancel(s.baseCtx)
		}
		byBatch[p.key] = j
		created = append(created, j)
		if leader, ok := byWarm[p.warm]; ok {
			leader.chain = append(leader.chain, j)
		} else {
			byWarm[p.warm] = j
			leaders = append(leaders, j)
		}
		slots[p.idx] = batchSlot{j: j}
	}

	// All-or-nothing capacity check. Queue sends happen only under
	// s.mu, and workers only drain, so room verified here cannot
	// disappear before the sends below.
	if len(s.queue)+len(leaders) > cap(s.queue) {
		for _, j := range created {
			j.cancel()
		}
		s.mu.Unlock()
		s.metrics.JobsRejected.Add(uint64(len(created)))
		w.Header().Set("Retry-After", fmt.Sprintf("%d", s.retryAfterSeconds()))
		writeError(w, errQueueFull)
		return
	}
	for _, j := range created {
		s.jobs[j.id] = j
		s.inflight[j.key] = j
		s.metrics.JobsAccepted.Add(1)
		s.metrics.Queued.Add(1)
	}
	// Chained groups are known to share a warmup: tell the snapshot
	// cache before any leader can run, so the leader captures on its
	// first (and only) miss.
	if s.snapshots != nil {
		for warm, j := range byWarm {
			if len(j.chain) > 0 {
				s.snapshots.noteShared(warm)
			}
		}
	}
	for _, j := range leaders {
		s.queue <- j
	}
	s.mu.Unlock()
	s.metrics.BatchesAccepted.Add(1)
	s.metrics.BatchRuns.Add(uint64(len(req.Runs)))

	// Collect in request order. On client disconnect, release the hold
	// on every job not yet collected — the last interested waiter
	// cancels it.
	for i := range slots {
		if slots[i].j == nil {
			continue
		}
		select {
		case <-slots[i].j.done:
		case <-r.Context().Done():
			for k := i; k < len(slots); k++ {
				if slots[k].j != nil {
					s.dropWaiter(slots[k].j)
				}
			}
			return
		}
	}

	// Stream the results: elements are encoded one at a time through
	// pooled buffers, so a large batch never materializes twice.
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, `{"results":[`)
	for i := range slots {
		if i > 0 {
			io.WriteString(w, ",")
		}
		st := slots[i].st
		if slots[i].j != nil {
			st = s.status(slots[i].j, false)
		}
		buf := batchEncoders.Get().(*bytes.Buffer)
		buf.Reset()
		if err := json.NewEncoder(buf).Encode(st); err == nil {
			w.Write(bytes.TrimRight(buf.Bytes(), "\n"))
		}
		batchEncoders.Put(buf)
	}
	io.WriteString(w, "]}\n")
}
