package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"sync"

	"d2m"
	"d2m/internal/api"
	"d2m/internal/service/sched"
)

// POST /v1/batch admits up to MaxBatchRuns simulations as one unit and
// streams their results back in request order. Each run flows through
// the same admission pipeline as POST /v1/run — result cache,
// single-flight coalescing, bounded queue — via sched.SubmitGroup,
// which adds the two batch behaviors: admission is all-or-nothing
// (either every uncached run gets a queue slot or the batch is
// rejected 429 with nothing enqueued), and runs sharing a warm
// identity (d2m.WarmKey) are chained onto one worker so each follower
// restores the snapshot its leader just deposited.

// BatchRequest is the body of POST /v1/batch; see api.BatchRequest.
// Runs are independent RunRequests; the async field is rejected here,
// since the batch response itself is the collection mechanism.
type BatchRequest = api.BatchRequest

// MaxBatchRuns bounds the runs per batch: enough for a full
// kind x benchmark sweep with replicates, small enough that one POST
// cannot swallow the whole queue several times over.
const MaxBatchRuns = 256

// batchBody is the POST /v1/batch response: one api.JobStatus per run, in
// request order.
type batchBody struct {
	Results []api.JobStatus `json:"results"`
}

// maxBatchBodyBytes sizes the request-body cap: MaxBatchRuns requests
// at a few hundred bytes each fit comfortably.
const maxBatchBodyBytes = 4 << 20

// batchEncoders pools the per-result encoding buffers: a batch of 256
// results would otherwise allocate a fresh buffer per element per
// request.
var batchEncoders = sync.Pool{
	New: func() interface{} { return new(bytes.Buffer) },
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		api.WriteErr(w, api.Errorf(api.ErrInvalidRequest, "bad request body: %v", err))
		return
	}
	if len(req.Runs) == 0 {
		api.WriteErr(w, api.Errorf(api.ErrInvalidRequest, "batch has no runs"))
		return
	}
	if len(req.Runs) > MaxBatchRuns {
		api.WriteErr(w, api.Errorf(api.ErrInvalidRequest,
			"batch has %d runs, limit is %d", len(req.Runs), MaxBatchRuns))
		return
	}

	// Validate every run before admitting any: a batch either enters
	// the queue whole or not at all. The canonical identities ride
	// along for rendering cached slots. The tenant bucket is charged
	// one token per run, after validation — an invalid batch costs
	// nothing.
	subs := make([]sched.Submission, len(req.Runs))
	kinds := make([]d2m.Kind, len(req.Runs))
	benches := make([]string, len(req.Runs))
	for i, rr := range req.Runs {
		if rr.Async {
			api.WriteErr(w, api.Errorf(api.ErrInvalidRequest,
				"runs[%d]: async is not supported in batches; use POST /v1/run", i))
			return
		}
		kind, bench, opt, reps, engine, err := rr.Normalize()
		if err != nil {
			ae := err.(*api.Error)
			api.WriteErr(w, api.Errorf(ae.Code, "runs[%d]: %s", i, ae.Message))
			return
		}
		subs[i] = submission(kind, bench, opt, reps, engine, rr.TimeoutMS, false, "")
		kinds[i], benches[i] = kind, bench
	}
	tenant, ok := s.admitTenant(w, r, len(req.Runs))
	if !ok {
		return
	}
	for i := range subs {
		subs[i].Tenant = tenant
	}

	adms, err := s.sched.SubmitGroup(subs)
	if err != nil {
		var qfe *sched.QueueFullError
		switch {
		case errors.As(err, &qfe):
			s.metrics.JobsRejected.Add(uint64(qfe.Jobs))
			api.WriteErr(w, s.queueFullError(sched.Interactive, tenant))
		case errors.Is(err, sched.ErrDraining):
			api.WriteErr(w, errDraining)
		default:
			api.WriteErr(w, err)
		}
		return
	}
	s.metrics.BatchesAccepted.Add(1)
	s.metrics.BatchRuns.Add(uint64(len(req.Runs)))

	// Collect in request order. On client disconnect, release the hold
	// on every job not yet collected — each slot took its own waiter
	// reference at admission, so releasing per slot is exact even when
	// several slots coalesced onto one job.
	for i := range adms {
		if adms[i].Cached {
			continue
		}
		select {
		case <-adms[i].Job.Done():
		case <-r.Context().Done():
			for k := i; k < len(adms); k++ {
				if !adms[k].Cached {
					s.sched.Release(adms[k].Job)
				}
			}
			return
		}
	}

	// Stream the results: elements are encoded one at a time through
	// pooled buffers, so a large batch never materializes twice.
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, `{"results":[`)
	for i := range adms {
		if i > 0 {
			io.WriteString(w, ",")
		}
		var st api.JobStatus
		if adms[i].Cached {
			st = cachedStatus(kinds[i], benches[i], adms[i])
		} else {
			st = jobStatus(adms[i].Job.Info())
		}
		buf := batchEncoders.Get().(*bytes.Buffer)
		buf.Reset()
		if err := json.NewEncoder(buf).Encode(st); err == nil {
			w.Write(bytes.TrimRight(buf.Bytes(), "\n"))
		}
		batchEncoders.Put(buf)
	}
	io.WriteString(w, "]}\n")
}
