package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"d2m/internal/api"
)

// Live result streaming tests (API v1.6): the SSE views of
// GET /v1/jobs/{id} and GET /v1/sweeps/{id}, including Last-Event-ID
// resume and the byte-identity of streamed cells with the polling
// view.

// sseEvent is one parsed frame.
type sseEvent struct {
	id    int
	event string
	data  []byte
}

// openSSE opens an event-stream GET; lastID < 1 omits Last-Event-ID.
func openSSE(t *testing.T, url string, lastID int) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	if lastID >= 1 {
		req.Header.Set("Last-Event-ID", strconv.Itoa(lastID))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("SSE GET %s = %d (%s)", url, resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE Content-Type = %q", ct)
	}
	return resp
}

// readEvents parses frames until max events, a terminal event name, or
// EOF.
func readEvents(t *testing.T, body io.Reader, max int, terminal string) []sseEvent {
	t.Helper()
	var (
		out []sseEvent
		ev  sseEvent
	)
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if ev.event != "" || len(ev.data) > 0 {
				out = append(out, ev)
				if len(out) >= max || ev.event == terminal {
					return out
				}
			}
			ev = sseEvent{}
		case strings.HasPrefix(line, "id: "):
			n, err := strconv.Atoi(line[len("id: "):])
			if err != nil {
				t.Fatalf("bad SSE id line %q", line)
			}
			ev.id = n
		case strings.HasPrefix(line, "event: "):
			ev.event = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			ev.data = []byte(line[len("data: "):])
		default:
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
	return out
}

func TestJobSSE(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	code, js, _ := postRun(t, ts, strings.TrimSuffix(tinyRun, "}")+`,"async":true}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}

	resp := openSSE(t, ts.URL+"/v1/jobs/"+js.ID, 0)
	defer resp.Body.Close()
	events := readEvents(t, resp.Body, 4, "")
	// The stream ends at the terminal event; how many intermediate
	// states it caught depends on timing, but ids must be strictly
	// increasing, every event is a "state", and the last is id 3, done.
	if len(events) == 0 {
		t.Fatal("no events")
	}
	prev := 0
	for _, ev := range events {
		if ev.event != "state" {
			t.Errorf("event name = %q, want state", ev.event)
		}
		if ev.id <= prev {
			t.Errorf("event ids not increasing: %d after %d", ev.id, prev)
		}
		prev = ev.id
	}
	last := events[len(events)-1]
	if last.id != 3 {
		t.Errorf("terminal event id = %d, want 3", last.id)
	}
	var st api.JobStatus
	if err := json.Unmarshal(last.data, &st); err != nil {
		t.Fatal(err)
	}
	if st.State != api.JobDone || st.ID != js.ID || st.Result == nil {
		t.Errorf("terminal state = %s id=%s result?=%v", st.State, st.ID, st.Result != nil)
	}

	// Resuming past the terminal event replays only the terminal frame.
	resp = openSSE(t, ts.URL+"/v1/jobs/"+js.ID, 2)
	defer resp.Body.Close()
	events = readEvents(t, resp.Body, 4, "")
	if len(events) != 1 || events[0].id != 3 {
		t.Fatalf("resume from id 2 = %+v, want the single terminal event", events)
	}

	// The streamed terminal status agrees with the polling view.
	var polled api.JobStatus
	_, raw, _ := doJSON(t, "GET", ts.URL+"/v1/jobs/"+js.ID, "", "")
	if err := json.Unmarshal(raw, &polled); err != nil {
		t.Fatal(err)
	}
	streamed, _ := json.Marshal(st)
	repolled, _ := json.Marshal(polled)
	if !bytes.Equal(streamed, repolled) {
		t.Errorf("streamed terminal status diverges from polling:\n%s\n%s", streamed, repolled)
	}
}

// TestSweepSSEReconnect drives one sweep through two SSE connections —
// dropping the first mid-stream and resuming with Last-Event-ID — and
// asserts the union of cell events covers every cell exactly once with
// payloads byte-identical to the ?cells=1 polling view.
func TestSweepSSEReconnect(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	code, st := postSweep(t, ts,
		`{"kinds":["d2m-ns-r"],"benchmarks":["tpc-c"],"nodes":2,"warmup":200,"measure":500,
		  "seeds":[1,2,3],"link_bandwidths":[0.001,0.002]}`)
	if code != http.StatusAccepted {
		t.Fatalf("sweep = %d", code)
	}
	total := st.Total
	if total != 6 {
		t.Fatalf("total = %d, want 6", total)
	}

	type cellEvent struct {
		Index int             `json:"index"`
		Cell  json.RawMessage `json:"cell"`
	}
	cells := map[int]json.RawMessage{}
	record := func(ev sseEvent) {
		var ce cellEvent
		if err := json.Unmarshal(ev.data, &ce); err != nil {
			t.Fatalf("bad cell event %s: %v", ev.data, err)
		}
		if _, dup := cells[ce.Index]; dup {
			t.Fatalf("cell %d streamed twice", ce.Index)
		}
		cells[ce.Index] = ce.Cell
	}

	// First connection: take two cell events, then drop the stream.
	resp := openSSE(t, ts.URL+"/v1/sweeps/"+st.ID, 0)
	first := readEvents(t, resp.Body, 2, "sweep")
	resp.Body.Close()
	lastID := 0
	for _, ev := range first {
		if ev.event != "cell" {
			t.Fatalf("early terminal %q after %d events", ev.event, lastID)
		}
		record(ev)
		lastID = ev.id
	}

	// Resume where the first connection left off; run to the terminal
	// sweep event.
	resp = openSSE(t, ts.URL+"/v1/sweeps/"+st.ID, lastID)
	rest := readEvents(t, resp.Body, total+2, "sweep")
	resp.Body.Close()
	for _, ev := range rest {
		if ev.id <= lastID {
			t.Errorf("resumed event id %d <= Last-Event-ID %d", ev.id, lastID)
		}
		lastID = ev.id
		if ev.event == "cell" {
			record(ev)
			continue
		}
		if ev.event != "sweep" || ev.id != total+1 {
			t.Fatalf("terminal event = %q id %d, want sweep id %d", ev.event, ev.id, total+1)
		}
		var final SweepStatus
		if err := json.Unmarshal(ev.data, &final); err != nil {
			t.Fatal(err)
		}
		if final.State != SweepDone || final.Done != total || final.Summary == nil {
			t.Errorf("terminal sweep = %s done=%d summary?=%v",
				final.State, final.Done, final.Summary != nil)
		}
	}
	if len(cells) != total {
		t.Fatalf("streamed %d distinct cells, want %d", len(cells), total)
	}

	// Byte-identity with polling: every streamed cell payload equals
	// the re-marshaled ?cells=1 entry for its index.
	var polled SweepStatus
	_, raw, _ := doJSON(t, "GET", ts.URL+"/v1/sweeps/"+st.ID+"?cells=1", "", "")
	if err := json.Unmarshal(raw, &polled); err != nil {
		t.Fatal(err)
	}
	if len(polled.Cells) != total {
		t.Fatalf("polled %d cells", len(polled.Cells))
	}
	for i, cell := range polled.Cells {
		want, _ := json.Marshal(cell)
		if !bytes.Equal(cells[i], want) {
			t.Errorf("cell %d streamed %s, polled %s", i, cells[i], want)
		}
	}
}

// TestSweepSSEResumeBeyondLog clamps an over-large Last-Event-ID: the
// client skips straight to the terminal event instead of erroring.
func TestSweepSSEResumeBeyondLog(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	code, st := postSweep(t, ts,
		`{"kinds":["d2m-ns-r"],"benchmarks":["tpc-c"],"nodes":2,"warmup":200,"measure":500,"seeds":[7]}`)
	if code != http.StatusAccepted {
		t.Fatalf("sweep = %d", code)
	}
	waitSweep(t, ts, st.ID, 30*time.Second)

	resp := openSSE(t, ts.URL+"/v1/sweeps/"+st.ID, 100)
	defer resp.Body.Close()
	events := readEvents(t, resp.Body, 3, "sweep")
	if len(events) != 1 || events[0].event != "sweep" {
		t.Fatalf("resume beyond log = %+v, want the single terminal event", events)
	}
}

// TestJobSSEFallback: a plain GET (no Accept header) still returns the
// JSON document, so SSE support never breaks pre-v1.6 clients.
func TestJobSSEFallback(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	code, js, _ := postRun(t, ts, tinyRun)
	if code != http.StatusOK {
		t.Fatalf("run = %d", code)
	}
	code, raw, hdr := doJSON(t, "GET", ts.URL+"/v1/jobs/"+js.ID, "", "")
	if code != http.StatusOK || !strings.HasPrefix(hdr.Get("Content-Type"), "application/json") {
		t.Fatalf("plain GET = %d %s", code, hdr.Get("Content-Type"))
	}
	var st api.JobStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if st.ID != js.ID {
		t.Errorf("polled id = %s", st.ID)
	}
}
