package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"d2m"
)

// Config sizes the service. The zero value is usable: every field has
// a production-sane default.
type Config struct {
	// Workers is the worker-pool size (concurrent simulations).
	// Zero means runtime.GOMAXPROCS(0).
	Workers int
	// QueueDepth bounds the explicit job queue. A POST that finds the
	// queue full is rejected with 429 + Retry-After rather than
	// accepted into an unbounded backlog. Zero means 64.
	QueueDepth int
	// CacheEntries is the result-cache LRU capacity. Zero means 1024.
	CacheEntries int
	// DefaultTimeout is the per-job deadline (queue wait + run) applied
	// when a request does not set timeout_ms. Zero means no deadline.
	DefaultTimeout time.Duration
	// MaxJobs bounds the settled-job history kept for
	// GET /v1/jobs/{id}. Zero means 4096.
	MaxJobs int
	// Runner executes one simulation. Nil means d2m.RunContext; tests
	// substitute stubs to control timing and observe cancellation.
	Runner func(ctx context.Context, kind d2m.Kind, bench string, opt d2m.Options) (d2m.Result, error)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 1024
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 4096
	}
	if c.Runner == nil {
		c.Runner = d2m.RunContext
	}
	return c
}

// Server is the simulation service: HTTP handlers over a bounded
// worker pool, a content-addressed result cache, and single-flight
// coalescing of identical in-flight requests.
type Server struct {
	cfg     Config
	runner  func(context.Context, d2m.Kind, string, d2m.Options) (d2m.Result, error)
	metrics *Metrics
	cache   *resultCache
	queue   chan *job
	wg      sync.WaitGroup
	mux     *http.ServeMux
	nextID  atomic.Uint64

	baseCtx    context.Context // parent of every job context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	draining bool
	jobs     map[string]*job // by id, settled history bounded by MaxJobs
	inflight map[string]*job // by cache key: queued or running
	retired  []string        // settled job ids, oldest first
}

// New starts a server's worker pool and returns it. Callers serve
// s.Handler() and, on termination, call Shutdown.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		runner:   cfg.Runner,
		metrics:  &Metrics{},
		cache:    newResultCache(cfg.CacheEntries),
		queue:    make(chan *job, cfg.QueueDepth),
		jobs:     make(map[string]*job),
		inflight: make(map[string]*job),
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/run", s.handleRun)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/benchmarks", s.handleBenchmarks)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics exposes the service counters (tests and expvar publication).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Shutdown drains the service: admission stops (new POSTs get 503),
// queued and running jobs are allowed to finish, and the worker pool
// exits. If ctx expires first, every outstanding job context is
// cancelled — simulations abort at their next engine checkpoint — and
// Shutdown waits for the workers before returning ctx.Err().
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	if !already {
		close(s.queue)
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.baseCancel()
		<-done
		return ctx.Err()
	}
}

// ---------------------------------------------------------------------------
// Admission: cache lookup, coalescing, enqueue, backpressure.

// admit resolves a validated request to a job, coalescing onto an
// identical in-flight job when one exists. The bool reports whether
// the job was newly created; err is set on backpressure or drain.
func (s *Server) admit(req RunRequest, kind d2m.Kind, bench string, opt d2m.Options, key string) (*job, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, false, errDraining
	}
	if j, ok := s.inflight[key]; ok {
		s.metrics.Coalesced.Add(1)
		j.waiters++
		if req.Async {
			j.detached = true
		}
		return j, false, nil
	}

	j := &job{
		id:      fmt.Sprintf("j%08d", s.nextID.Add(1)),
		key:     key,
		kind:    kind,
		bench:   bench,
		opt:     opt,
		done:    make(chan struct{}),
		state:   JobQueued,
		created: time.Now(),
		waiters: 1,
	}
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > 0 {
		j.ctx, j.cancel = context.WithTimeout(s.baseCtx, timeout)
	} else {
		j.ctx, j.cancel = context.WithCancel(s.baseCtx)
	}
	j.detached = req.Async

	select {
	case s.queue <- j:
	default:
		j.cancel()
		s.metrics.JobsRejected.Add(1)
		return nil, false, errQueueFull
	}
	s.jobs[j.id] = j
	s.inflight[key] = j
	s.metrics.JobsAccepted.Add(1)
	s.metrics.Queued.Add(1)
	return j, true, nil
}

var (
	errDraining  = fmt.Errorf("server is draining")
	errQueueFull = fmt.Errorf("job queue is full")
)

// dropWaiter detaches one waiting client from a job. When the last
// waiter of a non-async job disconnects before the job settles, the
// job's context is cancelled so the simulation stops burning CPU.
func (s *Server) dropWaiter(j *job) {
	s.mu.Lock()
	j.waiters--
	abandon := j.waiters <= 0 && !j.detached &&
		(j.state == JobQueued || j.state == JobRunning)
	s.mu.Unlock()
	if abandon {
		j.cancel()
	}
}

// status snapshots a job's JSON view.
func (s *Server) status(j *job, cached bool) JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := JobStatus{
		ID:        j.id,
		State:     j.state,
		Kind:      j.kind.String(),
		Benchmark: j.bench,
		Cached:    cached,
	}
	if !j.started.IsZero() {
		st.QueueWaitMS = float64(j.started.Sub(j.created)) / float64(time.Millisecond)
		if !j.finished.IsZero() {
			st.RunMS = float64(j.finished.Sub(j.started)) / float64(time.Millisecond)
		}
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if j.state == JobDone {
		res := j.result
		st.Result = &res
	}
	return st
}

// ---------------------------------------------------------------------------
// HTTP handlers.

const maxBodyBytes = 1 << 20

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
		return
	}
	kind, bench, opt, err := req.normalize()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	key := cacheKey(kind, bench, opt)

	if res, ok := s.cache.get(key); ok {
		s.metrics.CacheHits.Add(1)
		writeJSON(w, http.StatusOK, JobStatus{
			State: JobDone, Kind: kind.String(), Benchmark: bench,
			Cached: true, Result: &res,
		})
		return
	}
	s.metrics.CacheMisses.Add(1)

	j, _, err := s.admit(req, kind, bench, opt, key)
	switch err {
	case nil:
	case errQueueFull:
		w.Header().Set("Retry-After", fmt.Sprintf("%d", s.retryAfterSeconds()))
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
		return
	case errDraining:
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
		return
	default:
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}

	if req.Async {
		writeJSON(w, http.StatusAccepted, s.status(j, false))
		return
	}

	select {
	case <-j.done:
		st := s.status(j, false)
		writeJSON(w, statusCode(st.State), st)
	case <-r.Context().Done():
		// The client went away; free our hold on the job (cancelling
		// it if we were the last interested party). Nobody is left to
		// read the response.
		s.dropWaiter(j)
	}
}

// statusCode maps a settled job state to its HTTP status.
func statusCode(st JobState) int {
	switch st {
	case JobDone:
		return http.StatusOK
	case JobCanceled:
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

// retryAfterSeconds estimates how long a rejected client should back
// off: the queue backlog divided by the pool width, at least a second.
func (s *Server) retryAfterSeconds() int {
	backlog := int(s.metrics.Queued.Load())
	secs := 1 + backlog/s.cfg.Workers
	if secs < 1 {
		secs = 1
	}
	return secs
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job id"})
		return
	}
	writeJSON(w, http.StatusOK, s.status(j, false))
}

// benchmarksBody is the GET /v1/benchmarks response: everything a
// client needs to compose a valid RunRequest.
type benchmarksBody struct {
	Suites     map[string][]string `json:"suites"`
	Kinds      []string            `json:"kinds"`
	Topologies []string            `json:"topologies"`
	Placements []string            `json:"placements"`
}

func (s *Server) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	body := benchmarksBody{
		Suites:     make(map[string][]string),
		Kinds:      d2m.KindNames(),
		Topologies: d2m.Topologies(),
		Placements: d2m.Placements(),
	}
	for _, suite := range d2m.Suites() {
		body.Suites[suite] = d2m.BenchmarksOf(suite)
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	body := map[string]interface{}{
		"status":  "ok",
		"queued":  s.metrics.Queued.Load(),
		"running": s.metrics.Running.Load(),
		"cached":  s.cache.len(),
	}
	code := http.StatusOK
	if draining {
		body["status"] = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WritePrometheus(w)
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
