package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"d2m"
)

// Config sizes the service. The zero value is usable: every field has
// a production-sane default.
type Config struct {
	// Workers is the worker-pool size (concurrent simulations).
	// Zero means runtime.GOMAXPROCS(0).
	Workers int
	// QueueDepth bounds the explicit job queue. A POST that finds the
	// queue full is rejected with 429 + Retry-After rather than
	// accepted into an unbounded backlog. Zero means 64.
	QueueDepth int
	// CacheEntries is the result-cache LRU capacity. Zero means 1024.
	CacheEntries int
	// DefaultTimeout is the per-job deadline (queue wait + run) applied
	// when a request does not set timeout_ms. Zero means no deadline.
	DefaultTimeout time.Duration
	// MaxJobs bounds the settled-job history kept for
	// GET /v1/jobs/{id}. Zero means 4096.
	MaxJobs int
	// MaxSweeps bounds the sweep history kept for
	// GET /v1/sweeps/{id}. Zero means 256.
	MaxSweeps int
	// StorePath, when non-empty, names the append-only JSONL result
	// journal: completed simulations are appended as they finish and
	// replayed into the result cache at startup, so results survive
	// restarts and resubmitted sweeps resume instead of recomputing.
	StorePath string
	// SnapshotMemBytes budgets the warm-state snapshot cache: runs
	// sharing a warm identity (d2m.WarmKey) restore the post-warmup
	// machine state instead of re-simulating the warmup. Zero means
	// 256 MiB; negative disables snapshot reuse entirely.
	SnapshotMemBytes int64
	// Runner executes one simulation. Nil means d2m.RunContextWarm
	// against the server's snapshot cache; tests substitute stubs to
	// control timing and observe cancellation.
	Runner func(ctx context.Context, kind d2m.Kind, bench string, opt d2m.Options) (d2m.Result, error)
	// Replicator executes a replicated simulation (replicates >= 2 in
	// the request). Nil means d2m.ReplicateContextWarm, which fans the
	// seeds out across a bounded worker set.
	Replicator func(ctx context.Context, kind d2m.Kind, bench string, opt d2m.Options, n int) (d2m.Replicated, error)
}

// defaultSnapshotMemBytes is the warm-snapshot budget when
// Config.SnapshotMemBytes is zero.
const defaultSnapshotMemBytes = 256 << 20

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 1024
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 4096
	}
	if c.MaxSweeps <= 0 {
		c.MaxSweeps = 256
	}
	if c.SnapshotMemBytes == 0 {
		c.SnapshotMemBytes = defaultSnapshotMemBytes
	}
	// Runner and Replicator default inside New: the defaults close over
	// the server's snapshot cache, which does not exist yet here.
	return c
}

// Server is the simulation service: HTTP handlers over a bounded
// worker pool, a content-addressed result cache, and single-flight
// coalescing of identical in-flight requests.
type Server struct {
	cfg         Config
	runner      func(context.Context, d2m.Kind, string, d2m.Options) (d2m.Result, error)
	replicator  func(context.Context, d2m.Kind, string, d2m.Options, int) (d2m.Replicated, error)
	metrics     *Metrics
	cache       *resultCache
	snapshots   *snapshotCache // nil when SnapshotMemBytes < 0
	store       *resultStore   // nil without Config.StorePath
	queue       chan *job
	wg          sync.WaitGroup
	mux         *http.ServeMux
	nextID      atomic.Uint64
	nextSweepID atomic.Uint64
	// slotFree pulses when a worker dequeues a job, waking sweep
	// feeders parked on a full queue.
	slotFree chan struct{}

	baseCtx    context.Context // parent of every job context
	baseCancel context.CancelFunc

	mu           sync.Mutex
	draining     bool
	jobs         map[string]*job // by id, settled history bounded by MaxJobs
	inflight     map[string]*job // by cache key: queued or running
	retired      []string        // settled job ids, oldest first
	sweeps       map[string]*sweep
	sweepRetired []string // settled sweep ids, oldest first
}

// New opens the result store (when configured), starts the server's
// worker pool, and returns it. Callers serve s.Handler() and, on
// termination, call Shutdown.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:        cfg,
		runner:     cfg.Runner,
		replicator: cfg.Replicator,
		metrics:    &Metrics{},
		cache:      newResultCache(cfg.CacheEntries),
		queue:      make(chan *job, cfg.QueueDepth),
		slotFree:   make(chan struct{}, 1),
		jobs:       make(map[string]*job),
		inflight:   make(map[string]*job),
		sweeps:     make(map[string]*sweep),
	}
	if cfg.SnapshotMemBytes > 0 {
		s.snapshots = newSnapshotCache(cfg.SnapshotMemBytes, s.metrics)
	}
	if s.runner == nil {
		s.runner = func(ctx context.Context, kind d2m.Kind, bench string, opt d2m.Options) (d2m.Result, error) {
			return d2m.RunContextWarm(ctx, kind, bench, opt, s.warmCache())
		}
	}
	if s.replicator == nil {
		s.replicator = func(ctx context.Context, kind d2m.Kind, bench string, opt d2m.Options, n int) (d2m.Replicated, error) {
			return d2m.ReplicateContextWarm(ctx, kind, bench, opt, n, s.warmCache())
		}
	}
	if cfg.StorePath != "" {
		store, recs, err := openResultStore(cfg.StorePath)
		if err != nil {
			return nil, err
		}
		s.store = store
		for _, rec := range recs {
			s.cache.put(rec.Key, rec.Result, rec.Replicated)
		}
		s.metrics.StoreLoaded.Add(uint64(len(recs)))
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/run", s.handleRun)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("POST /v1/sweeps", s.handleSweepCreate)
	s.mux.HandleFunc("GET /v1/sweeps/{id}", s.handleSweepGet)
	s.mux.HandleFunc("DELETE /v1/sweeps/{id}", s.handleSweepDelete)
	s.mux.HandleFunc("GET /v1/capabilities", s.handleCapabilities)
	// The GET /v1/benchmarks alias was carried for one release (API
	// v1.1) and removed in v1.2; a targeted 404 beats a generic one.
	s.mux.HandleFunc("GET /v1/benchmarks", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, apiErrorf(ErrNotFound,
			"GET /v1/benchmarks was removed in API v1.2; use GET /v1/capabilities"))
	})
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics exposes the service counters (tests and expvar publication).
func (s *Server) Metrics() *Metrics { return s.metrics }

// warmCache returns the snapshot cache as a d2m.WarmCache, or an
// explicit nil interface when snapshot reuse is disabled — handing the
// typed nil *snapshotCache to d2m would defeat its wc == nil check.
func (s *Server) warmCache() d2m.WarmCache {
	if s.snapshots == nil {
		return nil
	}
	return s.snapshots
}

// Shutdown drains the service: admission stops (new POSTs get 503),
// queued and running jobs are allowed to finish, and the worker pool
// exits. If ctx expires first, every outstanding job context is
// cancelled — simulations abort at their next engine checkpoint — and
// Shutdown waits for the workers before returning ctx.Err().
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	if !already {
		close(s.queue)
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		s.baseCancel()
		<-done
		err = ctx.Err()
	}
	// Workers have exited, so nothing appends to the store anymore.
	if s.store != nil {
		s.store.close()
	}
	return err
}

// ---------------------------------------------------------------------------
// Admission: cache lookup, coalescing, enqueue, backpressure.

// admit resolves a validated request to a job, coalescing onto an
// identical in-flight job when one exists. The bool reports whether
// the job was newly created; err is set on backpressure or drain.
func (s *Server) admit(req RunRequest, kind d2m.Kind, bench string, opt d2m.Options, reps int, key string) (*job, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, false, errDraining
	}
	if j, ok := s.inflight[key]; ok {
		s.metrics.Coalesced.Add(1)
		j.waiters++
		if req.Async {
			j.detached = true
		}
		return j, false, nil
	}

	j := &job{
		id:      fmt.Sprintf("j%08d", s.nextID.Add(1)),
		key:     key,
		kind:    kind,
		bench:   bench,
		opt:     opt,
		reps:    reps,
		done:    make(chan struct{}),
		state:   JobQueued,
		created: time.Now(),
		waiters: 1,
	}
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > 0 {
		j.ctx, j.cancel = context.WithTimeout(s.baseCtx, timeout)
	} else {
		j.ctx, j.cancel = context.WithCancel(s.baseCtx)
	}
	j.detached = req.Async

	// Rejection is not counted here: a sweep feeder parks and retries
	// on a full queue, while handleRun turns it into a counted 429.
	select {
	case s.queue <- j:
	default:
		j.cancel()
		return nil, false, errQueueFull
	}
	s.jobs[j.id] = j
	s.inflight[key] = j
	s.metrics.JobsAccepted.Add(1)
	s.metrics.Queued.Add(1)
	return j, true, nil
}

var (
	errDraining  = &apiError{Code: ErrDraining, Message: "server is draining"}
	errQueueFull = &apiError{Code: ErrOverloaded, Message: "job queue is full"}
)

// dropWaiter detaches one waiting client from a job. When the last
// waiter of a non-async job disconnects before the job settles, the
// job's context is cancelled so the simulation stops burning CPU.
func (s *Server) dropWaiter(j *job) {
	s.mu.Lock()
	j.waiters--
	abandon := j.waiters <= 0 && !j.detached &&
		(j.state == JobQueued || j.state == JobRunning)
	s.mu.Unlock()
	if abandon {
		j.cancel()
	}
}

// status snapshots a job's JSON view.
func (s *Server) status(j *job, cached bool) JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.statusLocked(j, cached)
}

// statusLocked is status for callers already holding s.mu.
func (s *Server) statusLocked(j *job, cached bool) JobStatus {
	st := JobStatus{
		ID:        j.id,
		State:     j.state,
		Kind:      j.kind.String(),
		Benchmark: j.bench,
		Cached:    cached,
	}
	if !j.started.IsZero() {
		st.QueueWaitMS = float64(j.started.Sub(j.created)) / float64(time.Millisecond)
		if !j.finished.IsZero() {
			st.RunMS = float64(j.finished.Sub(j.started)) / float64(time.Millisecond)
		}
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if j.state == JobDone {
		res := j.result
		st.Result = &res
		st.Replicated = j.replicated
	}
	return st
}

// ---------------------------------------------------------------------------
// HTTP handlers.

const maxBodyBytes = 1 << 20

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, apiErrorf(ErrInvalidRequest, "bad request body: %v", err))
		return
	}
	kind, bench, opt, reps, err := req.normalize()
	if err != nil {
		writeError(w, err)
		return
	}
	key := cacheKey(kind, bench, opt, reps)

	if res, rep, ok := s.cache.get(key); ok {
		s.metrics.CacheHits.Add(1)
		writeJSON(w, http.StatusOK, JobStatus{
			State: JobDone, Kind: kind.String(), Benchmark: bench,
			Cached: true, Result: &res, Replicated: rep,
		})
		return
	}
	s.metrics.CacheMisses.Add(1)

	j, _, err := s.admit(req, kind, bench, opt, reps, key)
	if err != nil {
		if err == errQueueFull {
			s.metrics.JobsRejected.Add(1)
			w.Header().Set("Retry-After", fmt.Sprintf("%d", s.retryAfterSeconds()))
		}
		writeError(w, err)
		return
	}

	if req.Async {
		writeJSON(w, http.StatusAccepted, s.status(j, false))
		return
	}

	select {
	case <-j.done:
		st := s.status(j, false)
		writeJSON(w, statusCode(st.State), st)
	case <-r.Context().Done():
		// The client went away; free our hold on the job (cancelling
		// it if we were the last interested party). Nobody is left to
		// read the response.
		s.dropWaiter(j)
	}
}

// statusCode maps a settled job state to its HTTP status.
func statusCode(st JobState) int {
	switch st {
	case JobDone:
		return http.StatusOK
	case JobCanceled:
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

// retryAfterSeconds estimates how long a rejected client should back
// off: the queue backlog divided by the pool width, at least a second.
func (s *Server) retryAfterSeconds() int {
	backlog := int(s.metrics.Queued.Load())
	secs := 1 + backlog/s.cfg.Workers
	if secs < 1 {
		secs = 1
	}
	return secs
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		writeError(w, apiErrorf(ErrNotFound, "unknown job id %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, s.status(j, false))
}

// jobListBody is the GET /v1/jobs response page.
type jobListBody struct {
	Jobs []JobStatus `json:"jobs"`
	// NextCursor, when set, fetches the next (older) page via
	// ?cursor=.
	NextCursor string `json:"next_cursor,omitempty"`
}

// handleJobs lists known jobs (live and settled history) newest first,
// with an optional state filter and limit/cursor pagination. Results
// are omitted from list entries; fetch a job by id for its payload.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	limit := 50
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeError(w, apiErrorf(ErrInvalidRequest, "bad limit %q", v))
			return
		}
		if n > 500 {
			n = 500
		}
		limit = n
	}
	filter := JobState(q.Get("state"))
	switch filter {
	case "", JobQueued, JobRunning, JobDone, JobFailed, JobCanceled:
	default:
		writeError(w, apiErrorf(ErrInvalidRequest,
			"bad state %q (want queued, running, done, failed or canceled)", filter))
		return
	}
	cursor := q.Get("cursor")

	s.mu.Lock()
	ids := make([]string, 0, len(s.jobs))
	for id := range s.jobs {
		// Job ids are zero-padded and monotonic, so lexical order is
		// creation order; the cursor is the last id of the prior page.
		if cursor == "" || id < cursor {
			ids = append(ids, id)
		}
	}
	sort.Sort(sort.Reverse(sort.StringSlice(ids)))
	body := jobListBody{Jobs: []JobStatus{}}
	for _, id := range ids {
		j := s.jobs[id]
		if filter != "" && j.state != filter {
			continue
		}
		if len(body.Jobs) == limit {
			body.NextCursor = body.Jobs[limit-1].ID
			break
		}
		st := s.statusLocked(j, false)
		st.Result = nil // listings stay small; GET /v1/jobs/{id} has the payload
		body.Jobs = append(body.Jobs, st)
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, body)
}

// capabilitiesBody is the GET /v1/capabilities response: everything a
// client needs to compose a valid RunRequest or SweepRequest, in one
// payload. The /v1/benchmarks compatibility alias that served the same
// body was removed in API v1.2.
type capabilitiesBody struct {
	APIRevision   string              `json:"api_revision"`
	Suites        map[string][]string `json:"suites"`
	Kinds         []string            `json:"kinds"`
	Topologies    []string            `json:"topologies"`
	Placements    []string            `json:"placements"`
	Kernels       []KernelCap         `json:"kernels"`
	MaxReplicates int                 `json:"max_replicates"`
}

// KernelCap describes one synthetic kernel workload.
type KernelCap struct {
	Name        string `json:"name"`
	Description string `json:"description"`
}

// apiRevision is the documented revision of the v1 surface; bumped
// when a field or endpoint is added or retired (see docs/api.md).
const apiRevision = "v1.2"

func (s *Server) handleCapabilities(w http.ResponseWriter, r *http.Request) {
	body := capabilitiesBody{
		APIRevision:   apiRevision,
		Suites:        make(map[string][]string),
		Kinds:         d2m.KindNames(),
		Topologies:    d2m.Topologies(),
		Placements:    d2m.Placements(),
		Kernels:       []KernelCap{},
		MaxReplicates: MaxReplicates,
	}
	for _, suite := range d2m.Suites() {
		body.Suites[suite] = d2m.BenchmarksOf(suite)
	}
	for _, k := range d2m.Kernels() {
		body.Kernels = append(body.Kernels, KernelCap{Name: k.Name, Description: k.Description})
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	body := map[string]interface{}{
		"status":  "ok",
		"queued":  s.metrics.Queued.Load(),
		"running": s.metrics.Running.Load(),
		"cached":  s.cache.len(),
	}
	code := http.StatusOK
	if draining {
		body["status"] = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WritePrometheus(w)
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
