// Package service implements the d2mserver simulation service: the
// HTTP/JSON transport over the root d2m package. Execution — the job
// ledger, priority-class queues with per-tenant fair queueing and
// backpressure, the worker pool with warm-affinity chaining and lane
// grouping, and the admission pipeline (result-cache lookup,
// single-flight coalescing, all-or-nothing enqueue) — lives in
// internal/service/sched; this package contributes request validation,
// tenant authentication and token-bucket admission, the result cache
// and JSONL journal, the warm-snapshot store, the sweep orchestrator,
// SSE result streaming, and Prometheus-style metrics. The wire types
// live in internal/api (shared with the cluster gateway).
// cmd/d2mserver is the thin binary around it.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"d2m"
	"d2m/internal/api"
	"d2m/internal/service/sched"
)

// Config sizes the service. The zero value is usable: every field has
// a production-sane default.
type Config struct {
	// Workers is the worker-pool size (concurrent simulations).
	// Zero means runtime.GOMAXPROCS(0).
	Workers int
	// QueueDepth bounds each priority class's job queue separately (one
	// interactive queue for /v1/run and /v1/batch, one bulk queue for
	// sweep cells). A POST that finds its class full is rejected with
	// 429 + Retry-After rather than accepted into an unbounded backlog.
	// Zero means 64.
	QueueDepth int
	// CacheEntries is the result-cache LRU capacity. Zero means 1024.
	CacheEntries int
	// DefaultTimeout is the per-job deadline (queue wait + run) applied
	// when a request does not set timeout_ms. Zero means no deadline.
	DefaultTimeout time.Duration
	// MaxJobs bounds the settled-job history kept for
	// GET /v1/jobs/{id}. Zero means 4096.
	MaxJobs int
	// MaxSweeps bounds the sweep history kept for
	// GET /v1/sweeps/{id}. Zero means 256.
	MaxSweeps int
	// StorePath, when non-empty, names the append-only JSONL result
	// journal: completed simulations are appended as they finish and
	// replayed into the result cache at startup, so results survive
	// restarts and resubmitted sweeps resume instead of recomputing.
	StorePath string
	// SnapshotMemBytes budgets the warm-state snapshot cache: runs
	// sharing a warm identity (d2m.WarmKey) restore the post-warmup
	// machine state instead of re-simulating the warmup. Zero means
	// 256 MiB; negative disables snapshot reuse entirely.
	SnapshotMemBytes int64
	// ShardName, when non-empty, labels every Prometheus series this
	// server emits with shard="..." so a cluster's scrapes stay
	// attributable per process. Empty (the single-process default)
	// renders unlabeled series, unchanged from earlier revisions.
	ShardName string
	// MaxLanes caps the vector engine's lane groups: queued jobs that
	// share a warm identity are executed as one lockstep simulation of
	// up to this many lanes. Zero means the scheduler's default (16);
	// 1 disables vector execution. Ignored when Runner is set (stub
	// runners run every job scalar).
	MaxLanes int
	// Tenants, when non-empty, turns on multi-tenant admission: every
	// /v1 job and sweep endpoint requires an X-API-Key naming one of
	// these tenants, each with its own token-bucket rate limit and
	// scheduler queue share (see TenantSpec and cmd/d2mserver's
	// -tenants flag). Empty means single-tenant: no header required,
	// no limits.
	Tenants []TenantSpec
	// TraceDir, when non-empty, enables trace ingestion: uploaded access
	// traces are stored (content-addressed, validated) under this
	// directory and become "trace:<id>" benchmarks. The library is
	// installed process-wide via d2m.SetTraceDir — one directory per
	// process; the last server constructed with a TraceDir wins.
	TraceDir string
	// Runner executes one simulation. Nil means d2m.Run against the
	// server's snapshot cache; tests substitute stubs to control timing
	// and observe cancellation.
	Runner func(ctx context.Context, kind d2m.Kind, bench string, opt d2m.Options) (d2m.Result, error)
	// Replicator executes a replicated simulation (replicates >= 2 in
	// the request). Nil means d2m.Run with RunSpec.Replicates, which
	// fans the seeds out across a bounded worker set.
	Replicator func(ctx context.Context, kind d2m.Kind, bench string, opt d2m.Options, n int) (d2m.Replicated, error)
}

// defaultSnapshotMemBytes is the warm-snapshot budget when
// Config.SnapshotMemBytes is zero.
const defaultSnapshotMemBytes = 256 << 20

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 1024
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 4096
	}
	if c.MaxSweeps <= 0 {
		c.MaxSweeps = 256
	}
	if c.SnapshotMemBytes == 0 {
		c.SnapshotMemBytes = defaultSnapshotMemBytes
	}
	// Runner and Replicator default inside New: the defaults close over
	// the server's snapshot cache, which does not exist yet here.
	return c
}

// Server is the HTTP transport of the simulation service: handlers
// that marshal requests into sched.Submissions and results back out.
// The execution engine — job ledger, priority queues, worker pool,
// admission pipeline — lives in the embedded sched.Scheduler; the
// server contributes the result cache, the journal, the warm-snapshot
// cache, and the sweep orchestrator on top.
type Server struct {
	cfg         Config
	runner      func(context.Context, d2m.Kind, string, d2m.Options) (d2m.Result, error)
	replicator  func(context.Context, d2m.Kind, string, d2m.Options, int) (d2m.Replicated, error)
	sched       *sched.Scheduler
	metrics     *Metrics
	cache       *resultCache
	snapshots   *snapshotCache // nil when SnapshotMemBytes < 0
	store       *resultStore   // nil without Config.StorePath
	mux         *http.ServeMux
	tenants     *tenantRegistry // nil in single-tenant mode
	nextSweepID atomic.Uint64
	ready       chan struct{} // closed once journal replay has landed

	baseCtx    context.Context // parent of every sweep context
	baseCancel context.CancelFunc

	mu           sync.Mutex
	sweeps       map[string]*sweep
	sweepRetired []string // settled sweep ids, oldest first
}

// serverSink adapts the result cache and journal to sched.ResultSink:
// Lookup settles submissions at admission, Settle publishes each
// successful job before its waiters wake, so a restart straight after
// a response never loses the result it served.
type serverSink struct{ s *Server }

func (k serverSink) Lookup(key string) (d2m.Result, *d2m.Replicated, bool) {
	return k.s.cache.get(key)
}

func (k serverSink) Settle(key string, res d2m.Result, rep *d2m.Replicated) {
	k.s.cache.put(key, res, rep)
	if k.s.store == nil {
		return
	}
	if err := k.s.store.append(StoreRecord{
		Key: key, Kind: res.Kind.String(), Benchmark: res.Benchmark,
		Result: res, Replicated: rep,
	}); err != nil {
		k.s.metrics.StoreErrors.Add(1)
	} else {
		k.s.metrics.StoreAppended.Add(1)
	}
}

// New opens the result store (when configured), starts the scheduler's
// worker pool, and returns the server. Callers serve s.Handler() and,
// on termination, call Shutdown.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:        cfg,
		runner:     cfg.Runner,
		replicator: cfg.Replicator,
		metrics:    &Metrics{Shard: cfg.ShardName},
		cache:      newResultCache(cfg.CacheEntries),
		sweeps:     make(map[string]*sweep),
		ready:      make(chan struct{}),
	}
	if cfg.SnapshotMemBytes > 0 {
		s.snapshots = newSnapshotCache(cfg.SnapshotMemBytes, s.metrics)
	}
	reg, err := newTenantRegistry(cfg.Tenants)
	if err != nil {
		return nil, err
	}
	s.tenants = reg
	if cfg.TraceDir != "" {
		if err := d2m.SetTraceDir(cfg.TraceDir); err != nil {
			return nil, err
		}
	}
	if s.runner == nil {
		s.runner = func(ctx context.Context, kind d2m.Kind, bench string, opt d2m.Options) (d2m.Result, error) {
			out, err := d2m.Run(ctx, d2m.RunSpec{
				Kind: kind, Benchmark: bench, Options: opt, Warm: s.warmCache(),
			})
			return out.Result, err
		}
	}
	if s.replicator == nil {
		s.replicator = func(ctx context.Context, kind d2m.Kind, bench string, opt d2m.Options, n int) (d2m.Replicated, error) {
			out, err := d2m.Run(ctx, d2m.RunSpec{
				Kind: kind, Benchmark: bench, Options: opt, Replicates: n, Warm: s.warmCache(),
			})
			if err != nil {
				return d2m.Replicated{}, err
			}
			return *out.Replicated, nil
		}
	}
	if cfg.StorePath != "" {
		// Open for append synchronously — an unwritable path fails New —
		// but replay in the background so a large journal does not delay
		// startup; /readyz reports 503 until the cache is authoritative.
		store, err := openResultStore(cfg.StorePath)
		if err != nil {
			return nil, err
		}
		s.store = store
		go func() {
			defer close(s.ready)
			recs, err := ReplayJournal(cfg.StorePath)
			if err != nil {
				s.metrics.StoreErrors.Add(1)
				return
			}
			for _, rec := range recs {
				s.cache.put(rec.Key, rec.Result, rec.Replicated)
			}
			s.metrics.StoreLoaded.Add(uint64(len(recs)))
		}()
	} else {
		close(s.ready)
	}

	// The scheduler owns execution; the server hands it the run
	// function (through the Runner/Replicator seams), the result sink,
	// the warm-snapshot hook, and the metrics observer.
	var warm sched.WarmCache
	if s.snapshots != nil {
		warm = s.snapshots
	}
	schedCfg := sched.Config{
		Workers:        cfg.Workers,
		QueueDepth:     cfg.QueueDepth,
		DefaultTimeout: cfg.DefaultTimeout,
		MaxJobs:        cfg.MaxJobs,
		MaxLanes:       cfg.MaxLanes,
		TenantShare:    s.tenantShare,
		Run: func(ctx context.Context, spec d2m.RunSpec) (d2m.RunOutput, error) {
			if spec.Replicates >= 2 {
				agg, err := s.replicator(ctx, spec.Kind, spec.Benchmark, spec.Options, spec.Replicates)
				if err != nil {
					return d2m.RunOutput{}, err
				}
				return d2m.RunOutput{Result: agg.MeanResult(), Replicated: &agg}, nil
			}
			res, err := s.runner(ctx, spec.Kind, spec.Benchmark, spec.Options)
			return d2m.RunOutput{Result: res}, err
		},
		Results:  serverSink{s},
		Warm:     warm,
		Observer: s.metrics,
	}
	if cfg.Runner == nil {
		// The vector path only exists over the real engine: a custom
		// Runner (test stubs controlling timing) keeps every job scalar.
		schedCfg.RunGroup = s.runGroup
	}
	sc, err := sched.New(schedCfg)
	if err != nil {
		return nil, err
	}
	s.sched = sc

	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/run", s.handleRun)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	s.mux.HandleFunc("POST /v1/sweeps", s.handleSweepCreate)
	s.mux.HandleFunc("GET /v1/sweeps", s.handleSweeps)
	s.mux.HandleFunc("GET /v1/sweeps/{id}", s.handleSweepGet)
	s.mux.HandleFunc("DELETE /v1/sweeps/{id}", s.handleSweepDelete)
	s.mux.HandleFunc("POST /v1/traces", s.handleTraceUpload)
	s.mux.HandleFunc("GET /v1/traces", s.handleTraceList)
	s.mux.HandleFunc("GET /v1/traces/{id}", s.handleTraceGet)
	s.mux.HandleFunc("GET /v1/traces/{id}/raw", s.handleTraceRaw)
	s.mux.HandleFunc("GET /v1/capabilities", s.handleCapabilities)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("POST /admin/drain", s.handleDrain)
	s.mux.HandleFunc("POST /admin/undrain", s.handleUndrain)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s, nil
}

// Ready returns a channel closed once the server's result cache is
// authoritative: immediately when no store is configured, otherwise
// when the background journal replay has landed. /readyz reports 503
// until then.
func (s *Server) Ready() <-chan struct{} { return s.ready }

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics exposes the service counters (tests and expvar publication).
func (s *Server) Metrics() *Metrics { return s.metrics }

// warmCache returns the snapshot cache as a d2m.WarmCache, or an
// explicit nil interface when snapshot reuse is disabled — handing the
// typed nil *snapshotCache to d2m would defeat its wc == nil check.
func (s *Server) warmCache() d2m.WarmCache {
	if s.snapshots == nil {
		return nil
	}
	return s.snapshots
}

// runGroup is the scheduler's vector-execution hook: it threads the
// server's snapshot cache into every lane (the group shares one warm
// identity, so the whole group restores or deposits one snapshot) and
// delegates to the root lockstep engine.
func (s *Server) runGroup(ctx context.Context, lanes []d2m.GroupLane) ([]d2m.LaneOutcome, error) {
	wc := s.warmCache()
	for i := range lanes {
		lanes[i].Spec.Warm = wc
	}
	return d2m.RunGroup(ctx, lanes)
}

// engines lists the execution paths this server can use.
func (s *Server) engines() []string {
	if s.sched.MaxLanes() > 1 {
		return []string{d2m.EngineScalar, d2m.EngineVector}
	}
	return []string{d2m.EngineScalar}
}

// Shutdown drains the service: admission stops (new POSTs get 503),
// queued and running jobs are allowed to finish, and the worker pool
// exits. If ctx expires first, every outstanding job and sweep context
// is cancelled — simulations abort at their next engine checkpoint —
// and Shutdown waits for the workers before returning ctx.Err().
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.sched.Shutdown(ctx)
	if err != nil {
		s.baseCancel() // abort outstanding sweeps too
	}
	// Workers have exited, so nothing appends to the store anymore.
	if s.store != nil {
		s.store.close()
	}
	return err
}

// ---------------------------------------------------------------------------
// Admission plumbing shared by the handlers.

var errDraining = &api.Error{Code: api.ErrDraining, Message: "server is draining"}

// submission maps a validated request onto the scheduler's admission
// type. All transport-submitted runs (single and batch) are
// interactive; sweep cells enter as bulk through the sweep feeder.
func submission(kind d2m.Kind, bench string, opt d2m.Options, reps int, engine string, timeoutMS int64, detached bool, tenant string) sched.Submission {
	return sched.Submission{
		Kind:       kind,
		Benchmark:  bench,
		Options:    opt,
		Replicates: reps,
		Engine:     engine,
		Priority:   sched.Interactive,
		Timeout:    time.Duration(timeoutMS) * time.Millisecond,
		Detached:   detached,
		Tenant:     tenant,
	}
}

// queueFullError builds the 429 overloaded envelope for a full class
// queue: retry_after_ms carries the scheduler's backoff estimate (the
// Retry-After header is derived from it), and tenant names the limited
// party under multi-tenancy — the per-tenant queue bound means the
// rejection is tenant-local, not global.
func (s *Server) queueFullError(p sched.Priority, tenant string) *api.Error {
	return &api.Error{
		Code:         api.ErrOverloaded,
		Message:      "job queue is full",
		RetryAfterMS: s.sched.RetryAfter(p).Milliseconds(),
		Tenant:       tenant,
	}
}

// cachedStatus renders an admission settled from the result cache.
func cachedStatus(kind d2m.Kind, bench string, adm sched.Admission) api.JobStatus {
	res := adm.Result
	return api.JobStatus{
		State: api.JobDone, Kind: kind.String(), Benchmark: bench,
		Cached: true, Result: &res, Replicated: adm.Replicated,
	}
}

// jobStatus renders a scheduler job snapshot as the wire api.JobStatus.
func jobStatus(in sched.Info) api.JobStatus {
	st := api.JobStatus{
		ID:        in.ID,
		State:     api.JobState(in.State),
		Kind:      in.Kind.String(),
		Benchmark: in.Benchmark,
		Priority:  in.Priority.String(),
		Engine:    in.Engine,
	}
	if in.QueuePos > 0 {
		st.QueuePosition = in.QueuePos
	}
	if !in.Started.IsZero() {
		st.QueueWaitMS = float64(in.Started.Sub(in.Created)) / float64(time.Millisecond)
		if !in.Finished.IsZero() {
			st.RunMS = float64(in.Finished.Sub(in.Started)) / float64(time.Millisecond)
		}
	}
	if in.Err != nil {
		st.Error = in.Err.Error()
	}
	if st.State == api.JobDone {
		st.Result = in.Result
		st.Replicated = in.Replicated
	}
	return st
}

// writeAdmissionError maps a scheduler admission error onto the wire:
// 503 for drain, counted 429 (retry_after_ms in the envelope, header
// derived) for a full class queue. rejected is the number of jobs the
// rejection rolled back (1 for a single run; the created-job count for
// a batch).
func (s *Server) writeAdmissionError(w http.ResponseWriter, err error, p sched.Priority, rejected int, tenant string) {
	switch {
	case errors.Is(err, sched.ErrDraining):
		api.WriteErr(w, errDraining)
	case errors.Is(err, sched.ErrQueueFull):
		s.metrics.JobsRejected.Add(uint64(rejected))
		api.WriteErr(w, s.queueFullError(p, tenant))
	default:
		api.WriteErr(w, err)
	}
}

// ---------------------------------------------------------------------------
// HTTP handlers.

const maxBodyBytes = 1 << 20

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req api.RunRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		api.WriteErr(w, api.Errorf(api.ErrInvalidRequest, "bad request body: %v", err))
		return
	}
	kind, bench, opt, reps, engine, err := req.Normalize()
	if err != nil {
		api.WriteErr(w, err)
		return
	}
	tenant, ok := s.admitTenant(w, r, 1)
	if !ok {
		return
	}

	adm, err := s.sched.Submit(submission(kind, bench, opt, reps, engine, req.TimeoutMS, req.Async, tenant))
	if err != nil {
		s.writeAdmissionError(w, err, sched.Interactive, 1, tenant)
		return
	}
	if adm.Cached {
		writeJSON(w, http.StatusOK, cachedStatus(kind, bench, adm))
		return
	}
	j := adm.Job

	if req.Async {
		writeJSON(w, http.StatusAccepted, jobStatus(j.Info()))
		return
	}

	select {
	case <-j.Done():
		st := jobStatus(j.Info())
		writeJSON(w, statusCode(st.State), st)
	case <-r.Context().Done():
		// The client went away; free our hold on the job (cancelling
		// it if we were the last interested party). Nobody is left to
		// read the response.
		s.sched.Release(j)
	}
}

// statusCode maps a settled job state to its HTTP status.
func statusCode(st api.JobState) int {
	switch st {
	case api.JobDone:
		return http.StatusOK
	case api.JobCanceled:
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.authTenant(w, r); !ok {
		return
	}
	j, ok := s.sched.Lookup(r.PathValue("id"))
	if !ok {
		api.WriteErr(w, api.Errorf(api.ErrNotFound, "unknown job id %q", r.PathValue("id")))
		return
	}
	if api.AcceptsSSE(r) {
		s.streamJob(w, r, j)
		return
	}
	writeJSON(w, http.StatusOK, jobStatus(j.Info()))
}

// handleJobCancel is DELETE /v1/jobs/{id}: a queued job settles
// canceled immediately (and never occupies a worker); a running job's
// context is cancelled so the simulation aborts at its next engine
// checkpoint. Cancelling a settled job is a 409 conflict carrying the
// terminal state.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.authTenant(w, r); !ok {
		return
	}
	id := r.PathValue("id")
	j, err := s.sched.Cancel(id)
	switch {
	case errors.Is(err, sched.ErrUnknownJob):
		api.WriteErr(w, api.Errorf(api.ErrNotFound, "unknown job id %q", id))
	case errors.Is(err, sched.ErrSettled):
		api.WriteErr(w, api.Errorf(api.ErrConflict,
			"job %q already settled (%s)", id, j.Info().State))
	case err != nil:
		api.WriteErr(w, err)
	default:
		writeJSON(w, http.StatusOK, jobStatus(j.Info()))
	}
}

// jobListBody is the GET /v1/jobs response page.
type jobListBody struct {
	Jobs []api.JobStatus `json:"jobs"`
	// NextCursor, when set, fetches the next (older) page via
	// ?cursor=.
	NextCursor string `json:"next_cursor,omitempty"`
}

// handleJobs lists known jobs (live and settled history) newest first,
// with an optional state filter and limit/cursor pagination. Results
// are omitted from list entries; fetch a job by id for its payload.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.authTenant(w, r); !ok {
		return
	}
	q := r.URL.Query()
	limit := 50
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			api.WriteErr(w, api.Errorf(api.ErrInvalidRequest, "bad limit %q", v))
			return
		}
		if n > 500 {
			n = 500
		}
		limit = n
	}
	filter := api.JobState(q.Get("state"))
	switch filter {
	case "", api.JobQueued, api.JobRunning, api.JobDone, api.JobFailed, api.JobCanceled:
	default:
		api.WriteErr(w, api.Errorf(api.ErrInvalidRequest,
			"bad state %q (want queued, running, done, failed or canceled)", filter))
		return
	}
	cursor := q.Get("cursor")

	// Jobs() is ascending by id; ids are zero-padded and monotonic, so
	// walking it backwards is newest first and the cursor is the last
	// id of the prior page.
	infos := s.sched.Jobs()
	sort.Slice(infos, func(a, b int) bool { return infos[a].ID < infos[b].ID })
	body := jobListBody{Jobs: []api.JobStatus{}}
	for i := len(infos) - 1; i >= 0; i-- {
		in := infos[i]
		if cursor != "" && in.ID >= cursor {
			continue
		}
		if filter != "" && api.JobState(in.State) != filter {
			continue
		}
		if len(body.Jobs) == limit {
			body.NextCursor = body.Jobs[limit-1].ID
			break
		}
		st := jobStatus(in)
		st.Result = nil // listings stay small; GET /v1/jobs/{id} has the payload
		body.Jobs = append(body.Jobs, st)
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleCapabilities(w http.ResponseWriter, r *http.Request) {
	body := api.Capabilities{
		APIRevision:   api.Revision,
		Engines:       s.engines(),
		MaxLanes:      s.sched.MaxLanes(),
		Suites:        make(map[string][]string),
		Kinds:         api.KindNames(),
		Topologies:    d2m.Topologies(),
		Placements:    d2m.Placements(),
		Kernels:       []api.KernelCap{},
		MaxReplicates: api.MaxReplicates,
		SSE:           true,
		SweepsList:    true,
		Tenancy:       s.tenancyCaps(r),
		Traces:        d2m.TraceDirSet(),
	}
	for _, suite := range d2m.Suites() {
		body.Suites[suite] = d2m.BenchmarksOf(suite)
	}
	// The Vector extras suite rides along outside the paper's five-suite
	// catalog: advertised here so clients can discover the vec-* names.
	body.Suites[d2m.SuiteVector] = d2m.BenchmarksOf(d2m.SuiteVector)
	for _, k := range d2m.Kernels() {
		body.Kernels = append(body.Kernels, api.KernelCap{Name: k.Name, Description: k.Description})
	}
	writeJSON(w, http.StatusOK, body)
}

// handleHealthz is pure liveness: it answers 200 as long as the
// process serves HTTP, even while draining (the status field says so).
// Routability — "should this process receive new work?" — moved to
// /readyz in API v1.4; before that, /healthz answered 503 while
// draining and conflated the two.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.sched.Draining() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"status":  status,
		"queued":  s.metrics.Queued.Load(),
		"running": s.metrics.Running.Load(),
		"cached":  s.cache.len(),
	})
}

// handleReadyz is readiness: 503 while the journal replay is still
// populating the cache or while admission is draining, 200 otherwise.
// The cluster gateway's prober keys its hash ring on exactly this.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	select {
	case <-s.ready:
	default:
		writeJSON(w, http.StatusServiceUnavailable,
			map[string]interface{}{"status": "replaying"})
		return
	}
	if s.sched.Draining() {
		writeJSON(w, http.StatusServiceUnavailable,
			map[string]interface{}{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"status": "ok"})
}

// handleDrain (POST /admin/drain) closes admission reversibly: new
// submissions get 503 draining while queued and running jobs keep
// flowing, and /readyz flips to 503 so the gateway remaps this shard's
// hash range. POST /admin/undrain reopens admission — unless the
// server is shutting down, which is final.
func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	s.sched.SetDraining(true)
	writeJSON(w, http.StatusOK, map[string]interface{}{"draining": true})
}

func (s *Server) handleUndrain(w http.ResponseWriter, r *http.Request) {
	s.sched.SetDraining(false)
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"draining": s.sched.Draining(), // still true if shutdown won
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WritePrometheus(w)
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
