package sched

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"d2m"
)

// tsub builds a distinct submission owned by a tenant.
func tsub(seed uint64, p Priority, tenant string) Submission {
	s := sub(seed, p)
	s.Tenant = tenant
	return s
}

// drain pops every queued leader of the class in dequeue order,
// returning the tenant sequence. Exercises classQueue directly — no
// workers, no HTTP.
func drainOrder(cq *classQueue, shareOf func(string) int) []string {
	var order []string
	for {
		j := cq.pop(shareOf)
		if j == nil {
			return order
		}
		order = append(order, j.spec.Tenant)
	}
}

func queuedJob(tenant string) *Job {
	return &Job{spec: Submission{Tenant: tenant}, state: StateQueued}
}

func TestDRRSharesProportional(t *testing.T) {
	// Tenant a (share 4) and tenant b (share 1), both deeply backlogged:
	// each contended round must serve four of a per one of b.
	var cq classQueue
	for i := 0; i < 8; i++ {
		cq.push(queuedJob("a"))
	}
	for i := 0; i < 2; i++ {
		cq.push(queuedJob("b"))
	}
	shares := map[string]int{"a": 4, "b": 1}
	got := drainOrder(&cq, func(n string) int { return shares[n] })
	want := []string{"a", "a", "a", "a", "b", "a", "a", "a", "a", "b"}
	if len(got) != len(want) {
		t.Fatalf("drained %d jobs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dequeue order %v, want %v", got, want)
		}
	}
}

func TestDRREqualSharesInterleave(t *testing.T) {
	// Equal shares must round-robin one job per tenant per round, no
	// matter how lopsided the backlogs are.
	var cq classQueue
	for i := 0; i < 6; i++ {
		cq.push(queuedJob("hog"))
	}
	cq.push(queuedJob("small"))
	cq.push(queuedJob("small"))
	got := drainOrder(&cq, nil)
	want := []string{"hog", "small", "hog", "small", "hog", "hog", "hog", "hog"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dequeue order %v, want %v", got, want)
		}
	}
}

func TestDRRZeroShareFloorsAtOne(t *testing.T) {
	// A tenant whose share resolves below 1 still drains — fairness
	// never becomes starvation; zero-share tenants are cut off at
	// admission, not in the queue.
	var cq classQueue
	cq.push(queuedJob("z"))
	cq.push(queuedJob("a"))
	got := drainOrder(&cq, func(string) int { return 0 })
	if len(got) != 2 {
		t.Fatalf("drained %v, want both jobs", got)
	}
}

func TestDRRSingleTenantIsFIFO(t *testing.T) {
	// One tenant (the default "") must behave exactly like the
	// pre-tenancy FIFO: strict submission order.
	var cq classQueue
	jobs := make([]*Job, 5)
	for i := range jobs {
		jobs[i] = queuedJob("")
		cq.push(jobs[i])
	}
	for i, want := range jobs {
		if got := cq.pop(nil); got != want {
			t.Fatalf("pop %d returned %p, want %p (FIFO order broken)", i, got, want)
		}
	}
	if !cq.empty() {
		t.Fatal("queue not empty after draining")
	}
}

func TestDRRRemoveAndReplace(t *testing.T) {
	var cq classQueue
	a1, a2, b1 := queuedJob("a"), queuedJob("a"), queuedJob("b")
	cq.push(a1)
	cq.push(a2)
	cq.push(b1)
	if cq.position(a2) != 2 || cq.position(b1) != 1 {
		t.Fatalf("positions a2=%d b1=%d, want 2,1 (tenant-local)", cq.position(a2), cq.position(b1))
	}
	nl := queuedJob("a")
	if !cq.replace(a1, nl) {
		t.Fatal("replace(a1, nl) failed")
	}
	if !cq.remove(a2) {
		t.Fatal("remove(a2) failed")
	}
	if cq.remove(a2) {
		t.Fatal("second remove(a2) succeeded")
	}
	got := drainOrder(&cq, nil)
	if len(got) != 2 {
		t.Fatalf("drained %v, want nl and b1 only", got)
	}
	if cq.position(b1) != 0 {
		t.Fatal("popped job still reports a queue position")
	}
}

// TestDRRSchedulerFairUnderHostileTenant is the end-to-end fairness
// check inside sched: a hostile tenant floods the bulk class, yet a
// small tenant's bulk jobs run within its fair share of the contended
// window rather than behind the whole hostile backlog. The single
// worker makes the service order deterministic: it is recorded at run
// time, where the dequeue order is still visible.
func TestDRRSchedulerFairUnderHostileTenant(t *testing.T) {
	release := make(chan struct{})
	var mu sync.Mutex
	var served []string
	s := newTestSched(t, Config{
		Workers:    1,
		QueueDepth: 128,
		TenantShare: func(tenant string) int {
			if tenant == "small" {
				return 2
			}
			return 1
		},
	}, func(ctx context.Context, spec d2m.RunSpec) (d2m.RunOutput, error) {
		<-release
		if spec.Options.Seed >= 100 { // skip the gatekeeper
			mu.Lock()
			if spec.Options.Seed >= 500 {
				served = append(served, "small")
			} else {
				served = append(served, "hostile")
			}
			mu.Unlock()
		}
		return d2m.RunOutput{Result: d2m.Result{Cycles: spec.Options.Seed}}, nil
	})

	// First job occupies the single worker so everything below queues.
	gatekeeper, err := s.Submit(tsub(1, Bulk, "hostile"))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-gatekeeper.Job.Started():
	case <-time.After(5 * time.Second):
		t.Fatal("gatekeeper never claimed")
	}
	const hostileN, smallN = 40, 4
	var last *Job
	for i := 0; i < hostileN; i++ {
		adm, err := s.Submit(tsub(uint64(100+i), Bulk, "hostile"))
		if err != nil {
			t.Fatal(err)
		}
		last = adm.Job
	}
	smalls := make([]*Job, 0, smallN)
	for i := 0; i < smallN; i++ {
		adm, err := s.Submit(tsub(uint64(500+i), Bulk, "small"))
		if err != nil {
			t.Fatal(err)
		}
		smalls = append(smalls, adm.Job)
	}
	close(release)
	for _, j := range append(smalls, last) {
		select {
		case <-j.Done():
		case <-time.After(10 * time.Second):
			t.Fatal("timed out waiting for jobs to settle")
		}
	}

	// With share 2 vs 1 the small tenant's 4 jobs are served within the
	// first three contended rounds (positions 1,2,4,5 of the trace);
	// assert the generous bound that none waits behind more than 8
	// hostile jobs of the 40 queued ahead of it.
	mu.Lock()
	defer mu.Unlock()
	smallDone := 0
	for i, tenant := range served {
		if tenant == "small" {
			smallDone++
			if i >= 12 {
				t.Fatalf("small tenant's job #%d served at position %d of %v", smallDone, i, served)
			}
		}
	}
	if smallDone != smallN {
		t.Fatalf("small tenant ran %d jobs, want %d (served %v)", smallDone, smallN, served)
	}
}

// TestPerTenantQueueDepth: one tenant filling its allotment must not
// consume another tenant's admission capacity.
func TestPerTenantQueueDepth(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	s := newTestSched(t, Config{Workers: 1, QueueDepth: 4},
		func(ctx context.Context, spec d2m.RunSpec) (d2m.RunOutput, error) {
			<-release
			return d2m.RunOutput{}, nil
		})
	// Occupy the worker, then fill tenant hog's interactive allotment.
	adm, err := s.Submit(tsub(1, Interactive, "hog"))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-adm.Job.Started():
	case <-time.After(5 * time.Second):
		t.Fatal("worker never claimed the gatekeeper job")
	}
	for i := 0; i < 4; i++ {
		if _, err := s.Submit(tsub(uint64(10+i), Interactive, "hog")); err != nil {
			t.Fatalf("filling hog's allotment: %v", err)
		}
	}
	if _, err := s.Submit(tsub(20, Interactive, "hog")); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("hog's overflow admission: err = %v, want ErrQueueFull", err)
	}
	// Another tenant still has its full allotment.
	for i := 0; i < 4; i++ {
		if _, err := s.Submit(tsub(uint64(30+i), Interactive, "guest")); err != nil {
			t.Fatalf("guest admission %d rejected despite hog backlog: %v", i, err)
		}
	}
	if _, err := s.Submit(tsub(40, Interactive, "guest")); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("guest's overflow admission: err = %v, want ErrQueueFull", err)
	}
}

// TestJobStartedChannel: Started closes on claim, never for a job
// cancelled while queued.
func TestJobStartedChannel(t *testing.T) {
	release := make(chan struct{})
	s := newTestSched(t, Config{Workers: 1},
		func(ctx context.Context, spec d2m.RunSpec) (d2m.RunOutput, error) {
			<-release
			return d2m.RunOutput{}, nil
		})
	first, err := s.Submit(sub(1, Interactive))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-first.Job.Started():
	case <-time.After(5 * time.Second):
		t.Fatal("Started never closed for a claimed job")
	}
	queued, err := s.Submit(sub(2, Interactive))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Cancel(queued.Job.ID()); err != nil {
		t.Fatal(err)
	}
	<-queued.Job.Done()
	select {
	case <-queued.Job.Started():
		t.Fatal("Started closed for a job cancelled in the queue")
	default:
	}
	close(release)
}
