package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"d2m"
)

// newTestSched builds a scheduler around run and tears it down with the
// test. A nil run means "return a result keyed to the seed instantly".
func newTestSched(t *testing.T, cfg Config, run func(ctx context.Context, spec d2m.RunSpec) (d2m.RunOutput, error)) *Scheduler {
	t.Helper()
	if run == nil {
		run = func(ctx context.Context, spec d2m.RunSpec) (d2m.RunOutput, error) {
			return d2m.RunOutput{Result: d2m.Result{Cycles: spec.Options.Seed}}, nil
		}
	}
	cfg.Run = run
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s
}

// sub builds a distinct submission: seed separates cache keys.
func sub(seed uint64, p Priority) Submission {
	return Submission{
		Kind: d2m.Base2L, Benchmark: "tpc-c",
		Options:  d2m.Options{Seed: seed},
		Priority: p,
	}
}

func TestSubmitRunsJob(t *testing.T) {
	s := newTestSched(t, Config{Workers: 2}, nil)
	adm, err := s.Submit(sub(7, Interactive))
	if err != nil {
		t.Fatal(err)
	}
	if adm.Cached || !adm.New || adm.Job == nil {
		t.Fatalf("admission = %+v, want fresh job", adm)
	}
	<-adm.Job.Done()
	in := adm.Job.Info()
	if in.State != StateDone || in.Result == nil || in.Result.Cycles != 7 {
		t.Fatalf("info = %+v, want done with result 7", in)
	}
	if in.Priority != Interactive || in.QueuePos != 0 {
		t.Errorf("priority/pos = %v/%d, want interactive/0", in.Priority, in.QueuePos)
	}
}

func TestSubmitValidates(t *testing.T) {
	s := newTestSched(t, Config{Workers: 1}, nil)
	for _, bad := range []Submission{
		{Kind: d2m.Base2L}, // no benchmark
		{Kind: d2m.Base2L, Benchmark: "tpc-c", Replicates: -1},        // negative reps
		{Kind: d2m.Base2L, Benchmark: "tpc-c", Priority: Priority(9)}, // unknown class
	} {
		if _, err := s.Submit(bad); err == nil {
			t.Errorf("Submit(%+v) accepted, want validation error", bad)
		}
	}
}

// memSink is an in-memory ResultSink.
type memSink struct {
	mu sync.Mutex
	m  map[string]d2m.Result
}

func (k *memSink) Lookup(key string) (d2m.Result, *d2m.Replicated, bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	res, ok := k.m[key]
	return res, nil, ok
}

func (k *memSink) Settle(key string, res d2m.Result, rep *d2m.Replicated) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.m == nil {
		k.m = make(map[string]d2m.Result)
	}
	k.m[key] = res
}

func TestResultSinkSettlesAndServes(t *testing.T) {
	sink := &memSink{}
	s := newTestSched(t, Config{Workers: 1, Results: sink}, nil)
	first, err := s.Submit(sub(3, Interactive))
	if err != nil {
		t.Fatal(err)
	}
	<-first.Job.Done()
	// The settled result must now short-circuit admission.
	second, err := s.Submit(sub(3, Interactive))
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached || second.Job != nil || second.Result.Cycles != 3 {
		t.Fatalf("second admission = %+v, want cached result 3", second)
	}
}

func TestCoalescing(t *testing.T) {
	gate := make(chan struct{})
	var runs atomic.Int64
	s := newTestSched(t, Config{Workers: 2}, func(ctx context.Context, spec d2m.RunSpec) (d2m.RunOutput, error) {
		runs.Add(1)
		<-gate
		return d2m.RunOutput{Result: d2m.Result{Cycles: 1}}, nil
	})
	a, err := s.Submit(sub(1, Interactive))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Submit(sub(1, Interactive))
	if err != nil {
		t.Fatal(err)
	}
	if b.New || b.Job != a.Job {
		t.Fatalf("identical submission not coalesced: %+v vs %+v", a, b)
	}
	close(gate)
	<-a.Job.Done()
	if n := runs.Load(); n != 1 {
		t.Errorf("runs = %d, want 1 (coalesced)", n)
	}
}

func TestQueueFullAllOrNothing(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	started := make(chan struct{}, 8)
	s := newTestSched(t, Config{Workers: 1, QueueDepth: 2}, func(ctx context.Context, spec d2m.RunSpec) (d2m.RunOutput, error) {
		started <- struct{}{}
		<-gate
		return d2m.RunOutput{}, nil
	})
	// Occupy the worker, then fill the interactive queue.
	if _, err := s.Submit(sub(1, Interactive)); err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := s.Submit(sub(2, Interactive)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(sub(3, Interactive)); err != nil {
		t.Fatal(err)
	}

	// A single over-capacity submission is rejected with nothing kept.
	if _, err := s.Submit(sub(4, Interactive)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Submit on full queue = %v, want ErrQueueFull", err)
	}
	// A group that would half-fit must also leave no trace: submission 2
	// would coalesce, 5 and 6 would be fresh and cannot both fit.
	_, err := s.SubmitGroup([]Submission{
		sub(2, Interactive), sub(5, Interactive), sub(6, Interactive),
	})
	var qfe *QueueFullError
	if !errors.As(err, &qfe) || qfe.Jobs != 2 {
		t.Fatalf("group admission = %v, want QueueFullError{Jobs: 2}", err)
	}
	s.mu.Lock()
	queued := s.queuedN[Interactive]
	ledger := len(s.jobs)
	s.mu.Unlock()
	if queued != 2 || ledger != 3 {
		t.Errorf("after rollback: queued = %d, ledger = %d, want 2 queued / 3 jobs", queued, ledger)
	}

	// The bulk class has its own capacity: a full interactive queue must
	// not reject bulk work.
	if _, err := s.Submit(sub(7, Bulk)); err != nil {
		t.Errorf("bulk submit with full interactive queue = %v, want nil", err)
	}
}

func TestWeightedPriorityDequeue(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	var mu sync.Mutex
	var order []Priority
	s := newTestSched(t, Config{Workers: 1, InteractiveWeight: 4}, func(ctx context.Context, spec d2m.RunSpec) (d2m.RunOutput, error) {
		if spec.Options.Seed == 0 { // the gate job
			started <- struct{}{}
			<-gate
			return d2m.RunOutput{}, nil
		}
		mu.Lock()
		if spec.Options.Warmup == 1 {
			order = append(order, Bulk)
		} else {
			order = append(order, Interactive)
		}
		mu.Unlock()
		return d2m.RunOutput{}, nil
	})

	// Park the only worker, then queue 1 bulk job ahead of 5
	// interactive ones.
	if _, err := s.Submit(sub(0, Interactive)); err != nil {
		t.Fatal(err)
	}
	<-started
	bulk := sub(100, Bulk)
	bulk.Options.Warmup = 1 // marks the bulk job for the recorder
	if _, err := s.Submit(bulk); err != nil {
		t.Fatal(err)
	}
	last := (*Job)(nil)
	for i := uint64(1); i <= 5; i++ {
		adm, err := s.Submit(sub(i, Interactive))
		if err != nil {
			t.Fatal(err)
		}
		last = adm.Job
	}
	close(gate)
	<-last.Done()
	s.Shutdown(context.Background()) // drain the trailing bulk job

	mu.Lock()
	defer mu.Unlock()
	if len(order) != 6 {
		t.Fatalf("ran %d jobs, want 6 (%v)", len(order), order)
	}
	// Weight 4 means four interactive dequeues, then the bulk job,
	// then the last interactive one — despite the bulk job being first
	// in FIFO terms.
	want := []Priority{Interactive, Interactive, Interactive, Interactive, Bulk, Interactive}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dequeue order = %v, want %v", order, want)
		}
	}
}

// noteRecorder counts NoteShared announcements.
type noteRecorder struct {
	mu    sync.Mutex
	notes []string
}

func (n *noteRecorder) NoteShared(key string) {
	n.mu.Lock()
	n.notes = append(n.notes, key)
	n.mu.Unlock()
}

func TestGroupAffinityChaining(t *testing.T) {
	var active, maxActive atomic.Int64
	notes := &noteRecorder{}
	s := newTestSched(t, Config{Workers: 4, Warm: notes}, func(ctx context.Context, spec d2m.RunSpec) (d2m.RunOutput, error) {
		n := active.Add(1)
		for {
			old := maxActive.Load()
			if n <= old || maxActive.CompareAndSwap(old, n) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		active.Add(-1)
		return d2m.RunOutput{}, nil
	})

	// Three runs sharing a warm identity (same kind/bench/options except
	// Measure, which is outside the warm key) admitted as one group must
	// chain onto one worker despite four being idle.
	mk := func(measure int) Submission {
		return Submission{
			Kind: d2m.Base2L, Benchmark: "tpc-c",
			Options: d2m.Options{Seed: 9, Measure: measure},
		}
	}
	adms, err := s.SubmitGroup([]Submission{mk(2000), mk(4000), mk(6000)})
	if err != nil {
		t.Fatal(err)
	}
	for _, adm := range adms {
		<-adm.Job.Done()
	}
	if got := maxActive.Load(); got != 1 {
		t.Errorf("max concurrent runs = %d, want 1 (chained)", got)
	}
	notes.mu.Lock()
	defer notes.mu.Unlock()
	if len(notes.notes) != 2 {
		t.Errorf("NoteShared calls = %d, want 2 (one per follower)", len(notes.notes))
	}
}

func TestCancelQueued(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	started := make(chan struct{}, 1)
	s := newTestSched(t, Config{Workers: 1}, func(ctx context.Context, spec d2m.RunSpec) (d2m.RunOutput, error) {
		started <- struct{}{}
		<-gate
		return d2m.RunOutput{}, nil
	})
	if _, err := s.Submit(sub(1, Interactive)); err != nil {
		t.Fatal(err)
	}
	<-started
	adm, err := s.Submit(sub(2, Interactive))
	if err != nil {
		t.Fatal(err)
	}
	j, err := s.Cancel(adm.Job.ID())
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-j.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled queued job never settled")
	}
	if in := j.Info(); in.State != StateCanceled {
		t.Fatalf("state = %s, want canceled", in.State)
	}
	// Cancelling again reports the settled state; unknown ids miss.
	if _, err := s.Cancel(j.ID()); !errors.Is(err, ErrSettled) {
		t.Errorf("second cancel = %v, want ErrSettled", err)
	}
	if _, err := s.Cancel("j99999999"); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("unknown cancel = %v, want ErrUnknownJob", err)
	}
}

func TestCancelRunning(t *testing.T) {
	started := make(chan struct{}, 1)
	s := newTestSched(t, Config{Workers: 1}, func(ctx context.Context, spec d2m.RunSpec) (d2m.RunOutput, error) {
		started <- struct{}{}
		<-ctx.Done()
		return d2m.RunOutput{}, ctx.Err()
	})
	adm, err := s.Submit(sub(1, Interactive))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := s.Cancel(adm.Job.ID()); err != nil {
		t.Fatal(err)
	}
	select {
	case <-adm.Job.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled running job never settled")
	}
	if in := adm.Job.Info(); in.State != StateCanceled {
		t.Fatalf("state = %s, want canceled", in.State)
	}
}

func TestCancelQueuedLeaderPromotesChain(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	s := newTestSched(t, Config{Workers: 1}, func(ctx context.Context, spec d2m.RunSpec) (d2m.RunOutput, error) {
		if spec.Options.Seed == 0 {
			started <- struct{}{}
			<-gate
		}
		return d2m.RunOutput{}, nil
	})
	if _, err := s.Submit(sub(0, Interactive)); err != nil {
		t.Fatal(err)
	}
	<-started
	// A chained group sits in the queue; cancelling its leader must
	// promote the first follower so the rest still run.
	mk := func(measure int) Submission {
		return Submission{
			Kind: d2m.Base2L, Benchmark: "tpc-c",
			Options: d2m.Options{Seed: 5, Measure: measure},
		}
	}
	adms, err := s.SubmitGroup([]Submission{mk(2000), mk(4000), mk(6000)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Cancel(adms[0].Job.ID()); err != nil {
		t.Fatal(err)
	}
	close(gate)
	for i, adm := range adms[1:] {
		select {
		case <-adm.Job.Done():
		case <-time.After(5 * time.Second):
			t.Fatalf("follower %d never settled after leader cancel", i+1)
		}
		if in := adm.Job.Info(); in.State != StateDone {
			t.Errorf("follower %d state = %s, want done", i+1, in.State)
		}
	}
	if in := adms[0].Job.Info(); in.State != StateCanceled {
		t.Errorf("cancelled leader state = %s, want canceled", in.State)
	}
}

func TestReleaseAbandonsLastWaiter(t *testing.T) {
	started := make(chan struct{}, 1)
	s := newTestSched(t, Config{Workers: 1}, func(ctx context.Context, spec d2m.RunSpec) (d2m.RunOutput, error) {
		started <- struct{}{}
		<-ctx.Done()
		return d2m.RunOutput{}, ctx.Err()
	})
	adm, err := s.Submit(sub(1, Interactive))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	s.Release(adm.Job)
	select {
	case <-adm.Job.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("abandoned job never settled")
	}
	if in := adm.Job.Info(); in.State != StateCanceled {
		t.Fatalf("state = %s, want canceled", in.State)
	}
}

func TestShutdownDrains(t *testing.T) {
	var runs atomic.Int64
	s := newTestSched(t, Config{Workers: 2}, func(ctx context.Context, spec d2m.RunSpec) (d2m.RunOutput, error) {
		runs.Add(1)
		time.Sleep(time.Millisecond)
		return d2m.RunOutput{}, nil
	})
	for i := uint64(1); i <= 8; i++ {
		if _, err := s.Submit(sub(i, Interactive)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if n := runs.Load(); n != 8 {
		t.Errorf("runs after drain = %d, want 8 (queued jobs finish)", n)
	}
	if _, err := s.Submit(sub(99, Interactive)); !errors.Is(err, ErrDraining) {
		t.Errorf("post-shutdown submit = %v, want ErrDraining", err)
	}
}

func TestRetryAfterTracksServiceRate(t *testing.T) {
	s := newTestSched(t, Config{Workers: 2}, func(ctx context.Context, spec d2m.RunSpec) (d2m.RunOutput, error) {
		return d2m.RunOutput{}, nil
	})
	// Before any observation: optimistic floor.
	if got := s.RetryAfter(Interactive); got != time.Second {
		t.Errorf("cold RetryAfter = %v, want 1s", got)
	}
	adm, err := s.Submit(sub(1, Interactive))
	if err != nil {
		t.Fatal(err)
	}
	<-adm.Job.Done()
	// Fast observed service keeps the estimate clamped at the floor.
	if got := s.RetryAfter(Bulk); got != time.Second {
		t.Errorf("warm RetryAfter = %v, want 1s (sub-second EWMA clamps)", got)
	}
	// A slow EWMA scales with the backlog the class would sit behind.
	s.mu.Lock()
	s.runEWMA, s.runCount = 10, 1
	s.queuedN[Interactive] = 4
	s.mu.Unlock()
	if got := s.RetryAfter(Interactive); got != 25*time.Second {
		t.Errorf("backlogged RetryAfter = %v, want 25s (10s x 5 jobs / 2 workers)", got)
	}
	s.mu.Lock()
	s.queuedN[Interactive] = 0
	s.mu.Unlock()
}

// TestBulkDoesNotStarveInteractive floods the bulk class with a
// 500-cell sweep-shaped workload and checks that interactive requests
// submitted throughout still settle with bounded latency. Run with
// -race in CI.
func TestBulkDoesNotStarveInteractive(t *testing.T) {
	s := newTestSched(t, Config{Workers: 4, QueueDepth: 64}, func(ctx context.Context, spec d2m.RunSpec) (d2m.RunOutput, error) {
		time.Sleep(500 * time.Microsecond)
		return d2m.RunOutput{}, nil
	})

	const cells = 500
	feederDone := make(chan error, 1)
	go func() {
		for i := 0; i < cells; i++ {
			adm, err := s.SubmitWait(context.Background(), sub(uint64(1000+i), Bulk))
			if err != nil {
				feederDone <- fmt.Errorf("cell %d: %w", i, err)
				return
			}
			s.Release(adm.Job) // detachment not needed; jobs run regardless
		}
		feederDone <- nil
	}()

	// Interactive probes while the bulk flood is in full swing: each
	// must complete promptly even though hundreds of bulk cells are
	// waiting.
	const probes = 20
	var worst time.Duration
	for i := 0; i < probes; i++ {
		start := time.Now()
		adm, err := s.Submit(sub(uint64(i+1), Interactive))
		if err != nil {
			t.Fatalf("probe %d rejected: %v", i, err)
		}
		select {
		case <-adm.Job.Done():
		case <-time.After(10 * time.Second):
			t.Fatalf("probe %d starved behind bulk work", i)
		}
		if d := time.Since(start); d > worst {
			worst = d
		}
		time.Sleep(time.Millisecond)
	}
	if err := <-feederDone; err != nil {
		t.Fatal(err)
	}
	// The bound is generous (race-detector runs are slow) but far below
	// the ~unbounded wait FIFO behind 500 cells would produce.
	if worst > 5*time.Second {
		t.Errorf("worst interactive latency = %v under bulk flood", worst)
	}
}

// TestReleaseAbandonedKeyReuse pins the inflight-slot guard: a job
// abandoned while running must not clobber the inflight entry of the
// fresh job that replaced it for the same cache key.
func TestReleaseAbandonedKeyReuse(t *testing.T) {
	started := make(chan struct{}, 4)
	s := newTestSched(t, Config{Workers: 2}, func(ctx context.Context, spec d2m.RunSpec) (d2m.RunOutput, error) {
		started <- struct{}{}
		<-ctx.Done()
		return d2m.RunOutput{}, ctx.Err()
	})
	first, err := s.Submit(sub(1, Interactive))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	s.Release(first.Job) // abandon: context cancels, job will settle

	// Resubmitting the same identity must get a fresh job (no coalescing
	// onto the dying one), and the dying job's settle must not evict the
	// fresh job's inflight slot.
	second, err := s.Submit(sub(1, Interactive))
	if err != nil {
		t.Fatal(err)
	}
	if !second.New || second.Job == first.Job {
		t.Fatalf("resubmit after abandon coalesced onto the dying job")
	}
	<-first.Job.Done()
	<-started // the fresh job is running now
	third, err := s.Submit(sub(1, Interactive))
	if err != nil {
		t.Fatal(err)
	}
	if third.New || third.Job != second.Job {
		t.Errorf("third submit did not coalesce onto the live job (inflight slot lost)")
	}
	s.Cancel(second.Job.ID())
	<-second.Job.Done()
}
