package sched

import (
	"context"
	"errors"
	"sort"
	"time"

	"d2m"
)

// Submit runs one submission through the admission pipeline: validate,
// result-cache lookup, in-flight coalescing, enqueue. On ErrQueueFull
// nothing was admitted; callers that would rather wait for a slot than
// surface the rejection use SubmitWait.
func (s *Scheduler) Submit(sub Submission) (Admission, error) {
	adms, err := s.SubmitGroup([]Submission{sub})
	if err != nil {
		if errors.Is(err, ErrQueueFull) {
			return Admission{}, ErrQueueFull
		}
		return Admission{}, err
	}
	return adms[0], nil
}

// SubmitWait is Submit for feeders that should park rather than fail
// when the class queue is full: on ErrQueueFull it waits for a slot
// pulse (or a short poll tick, or ctx cancellation) and retries. Sweep
// cells flow through here so an overloaded queue applies backpressure
// to the sweep instead of dropping cells.
func (s *Scheduler) SubmitWait(ctx context.Context, sub Submission) (Admission, error) {
	for {
		adm, err := s.Submit(sub)
		if err == nil {
			return adm, nil
		}
		if !errors.Is(err, ErrQueueFull) {
			return Admission{}, err
		}
		t := time.NewTimer(10 * time.Millisecond)
		select {
		case <-s.slotFree:
			t.Stop()
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return Admission{}, ctx.Err()
		}
	}
}

// SubmitGroupWait is SubmitGroup with the SubmitWait parking loop: on
// ErrQueueFull it waits for a slot pulse (or a short poll tick, or ctx
// cancellation) and retries the whole group. Sweep feeders submit
// same-warm-identity cell chunks through here, so the chunk arrives as
// one leader-plus-chain unit a worker can gather into a lane group.
func (s *Scheduler) SubmitGroupWait(ctx context.Context, subs []Submission) ([]Admission, error) {
	for {
		adms, err := s.SubmitGroup(subs)
		if err == nil {
			return adms, nil
		}
		if !errors.Is(err, ErrQueueFull) {
			return nil, err
		}
		t := time.NewTimer(10 * time.Millisecond)
		select {
		case <-s.slotFree:
			t.Stop()
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return nil, ctx.Err()
		}
	}
}

// SubmitGroup admits a set of submissions atomically: either every
// submission is settled from the cache, coalesced, or enqueued, or —
// if any class queue cannot hold the new jobs — none is, and the
// returned *QueueFullError counts the jobs that were rolled back.
// Batches flow through here so a 429 never leaves a half-admitted
// batch behind.
//
// Within one group, submissions sharing a warm identity (and class)
// are chained: the first becomes the chain leader, the rest become
// affinity followers that a worker runs back-to-back after the leader,
// each restoring the snapshot the leader deposited.
func (s *Scheduler) SubmitGroup(subs []Submission) ([]Admission, error) {
	if len(subs) == 0 {
		return nil, nil
	}
	for i := range subs {
		if err := subs[i].validate(); err != nil {
			return nil, err
		}
	}

	adms := make([]Admission, len(subs))
	keys := make([]string, len(subs))
	pending := make([]int, 0, len(subs))
	for i := range subs {
		keys[i] = subs[i].key()
		if res, rep, ok := s.sink.Lookup(keys[i]); ok {
			s.obs.CacheHit()
			adms[i] = Admission{Cached: true, Result: res, Replicated: rep}
			continue
		}
		pending = append(pending, i)
	}
	if len(pending) == 0 {
		return adms, nil
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, ErrDraining
	}

	// First pass: coalesce or create, without touching the ledger or
	// queues, so a capacity rejection can roll everything back.
	type coalesce struct {
		j            *Job
		prevDetached bool
		promote      bool // interactive arrival on a queued bulk leader
	}
	var (
		coalesced []coalesce
		created   []*Job
		need      [NumPriorities]map[string]int
		byKey     = make(map[string]*Job)
	)
	for _, i := range pending {
		sub, key := subs[i], keys[i]
		target := s.inflight[key]
		if target != nil && target.ctx.Err() != nil {
			// Abandoned but not yet settled: don't coalesce onto a job
			// that is about to settle canceled.
			target = nil
		}
		if target == nil {
			target = byKey[key]
		}
		if target != nil {
			coalesced = append(coalesced, coalesce{
				j:            target,
				prevDetached: target.detached,
				promote: sub.Priority == Interactive &&
					target.spec.Priority == Bulk,
			})
			target.waiters++
			if sub.Detached {
				target.detached = true
			}
			adms[i] = Admission{Job: target}
			continue
		}
		j := s.newJobLocked(sub, key)
		byKey[key] = j
		created = append(created, j)
		if need[sub.Priority] == nil {
			need[sub.Priority] = make(map[string]int)
		}
		need[sub.Priority][sub.Tenant]++
		adms[i] = Admission{Job: j, New: true}
	}

	// QueueDepth bounds each (class, tenant) pair separately: a tenant
	// whose allotment is full is rejected without consuming any other
	// tenant's admission capacity.
	for p := Interactive; p < NumPriorities; p++ {
		for tenant, n := range need[p] {
			if s.queuedT[p][tenant]+n > s.cfg.QueueDepth {
				for _, c := range coalesced {
					c.j.waiters--
					c.j.detached = c.prevDetached
				}
				for _, j := range created {
					j.cancel()
				}
				s.mu.Unlock()
				return nil, &QueueFullError{Jobs: len(created)}
			}
		}
	}

	// Commit: register the new jobs, chain same-warm-identity jobs of
	// the same class behind one leader, and promote queued bulk leaders
	// an interactive submission just coalesced onto.
	byWarm := make(map[string]*Job)
	for _, j := range created {
		s.jobs[j.id] = j
		s.inflight[j.key] = j
		p := j.spec.Priority
		s.queuedN[p]++
		s.queuedT[p][j.spec.Tenant]++
		wk := d2m.WarmKey(j.spec.Kind, j.spec.Benchmark, j.spec.Options)
		if lead := byWarm[wk]; lead != nil && lead.spec.Priority == p &&
			lead.spec.Tenant == j.spec.Tenant {
			j.leader = lead
			lead.chain = append(lead.chain, j)
			if s.warm != nil {
				s.warm.NoteShared(wk)
			}
		} else {
			byWarm[wk] = j
			s.queues[p].push(j)
		}
		s.obs.JobAccepted()
		s.obs.QueuedDelta(1)
	}
	for _, c := range coalesced {
		s.obs.JobCoalesced()
		if c.promote {
			s.promoteLocked(c.j)
		}
	}
	for range pending {
		s.obs.CacheMiss()
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	return adms, nil
}

// promoteLocked lifts a queued bulk chain leader (and its chain) into
// the interactive class: an interactive request that coalesced onto
// bulk work should not inherit bulk queueing delay. Best-effort — a
// job that is running, chained, already popped, or would overflow the
// interactive queue stays where it is. Callers hold s.mu.
func (s *Scheduler) promoteLocked(j *Job) {
	if j.state != StateQueued || j.spec.Priority != Bulk || j.leader != nil {
		return
	}
	if s.queues[Bulk].position(j) == 0 {
		return
	}
	moved := 1 + len(j.chain)
	tenant := j.spec.Tenant
	if s.queuedT[Interactive][tenant]+moved > s.cfg.QueueDepth {
		return
	}
	s.queues[Bulk].remove(j)
	s.queuedN[Bulk] -= moved
	s.queuedN[Interactive] += moved
	if n := s.queuedT[Bulk][tenant] - moved; n > 0 {
		s.queuedT[Bulk][tenant] = n
	} else {
		delete(s.queuedT[Bulk], tenant)
	}
	s.queuedT[Interactive][tenant] += moved
	j.spec.Priority = Interactive
	for _, c := range j.chain {
		c.spec.Priority = Interactive
	}
	s.queues[Interactive].push(j)
	s.pulseSlotFree()
}

// Cancel settles a queued job immediately or signals a running one to
// abort at its next engine checkpoint. It returns ErrUnknownJob for
// ids absent from the ledger and ErrSettled (with the job, so callers
// can report its state) for jobs that already finished.
func (s *Scheduler) Cancel(id string) (*Job, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return nil, ErrUnknownJob
	}
	switch {
	case j.state.settled():
		s.mu.Unlock()
		return j, ErrSettled
	case j.state == StateRunning:
		s.mu.Unlock()
		j.cancel()
		return j, nil
	}

	// Queued: take it out of the queue structures and settle it here,
	// so it never occupies a worker. A chain leader hands leadership to
	// its first follower in place; a follower just settles (the worker
	// walking the chain skips settled jobs); a leader already popped by
	// a worker needs no queue surgery (runJob will skip it).
	if j.leader == nil {
		if len(j.chain) > 0 {
			nl := j.chain[0]
			if s.queues[j.spec.Priority].replace(j, nl) {
				nl.leader = nil
				nl.chain = append(nl.chain, j.chain[1:]...)
				for _, c := range nl.chain {
					c.leader = nl
				}
				j.chain = nil
			}
		} else {
			s.queues[j.spec.Priority].remove(j)
		}
	}
	j.cancel()
	if s.inflight[j.key] == j {
		delete(s.inflight, j.key)
	}
	j.state = StateCanceled
	j.err = context.Canceled
	j.finished = time.Now()
	s.retireLocked(j)
	s.dequeuedLocked(j)
	s.pulseSlotFree()
	s.obs.QueuedDelta(-1)
	s.obs.JobSettled(StateCanceled)
	s.mu.Unlock()
	close(j.done)
	return j, nil
}

// Release drops one waiter's interest in a job (client disconnect or
// response written). When the last waiter of a non-detached job leaves
// before it settles, the job is abandoned: its context is cancelled so
// it aborts (or, if still queued, settles canceled without occupying a
// worker).
func (s *Scheduler) Release(j *Job) {
	s.mu.Lock()
	j.waiters--
	abandon := j.waiters <= 0 && !j.detached && !j.state.settled()
	s.mu.Unlock()
	if abandon {
		j.cancel()
	}
}

// Lookup returns the ledger's job for id.
func (s *Scheduler) Lookup(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs snapshots every job still in the ledger, ordered by id.
func (s *Scheduler) Jobs() []Info {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Info, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, s.infoLocked(j))
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// infoLocked snapshots one job. Callers hold s.mu.
func (s *Scheduler) infoLocked(j *Job) Info {
	in := Info{
		ID:        j.id,
		State:     j.state,
		Priority:  j.spec.Priority,
		Kind:      j.spec.Kind,
		Benchmark: j.spec.Benchmark,
		Engine:    j.engine,
		Created:   j.created,
		Started:   j.started,
		Finished:  j.finished,
		Err:       j.err,
	}
	if j.state == StateQueued {
		lead := j
		if j.leader != nil {
			lead = j.leader
		}
		in.QueuePos = s.queues[lead.spec.Priority].position(lead)
	}
	if j.state == StateDone {
		r := j.result
		in.Result = &r
		in.Replicated = j.replicated
	}
	return in
}
