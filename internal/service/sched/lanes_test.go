package sched

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"d2m"
)

// laneRecorder is a RunGroup hook that records each group's lane
// measures and answers with per-lane results keyed to the measure.
type laneRecorder struct {
	mu     sync.Mutex
	groups [][]int
	err    error           // group error to return, if any
	laneEr map[int]error   // per-lane error by measure
	block  <-chan struct{} // when non-nil, wait before returning
}

func (lr *laneRecorder) run(ctx context.Context, lanes []d2m.GroupLane) ([]d2m.LaneOutcome, error) {
	ms := make([]int, len(lanes))
	outs := make([]d2m.LaneOutcome, len(lanes))
	for i, ln := range lanes {
		ms[i] = ln.Spec.Options.Measure
		if err := lr.laneEr[ms[i]]; err != nil {
			outs[i] = d2m.LaneOutcome{Err: err}
			continue
		}
		outs[i] = d2m.LaneOutcome{Output: d2m.RunOutput{
			Result: d2m.Result{Cycles: uint64(ln.Spec.Options.Measure)},
			Engine: d2m.EngineVector,
		}}
	}
	lr.mu.Lock()
	lr.groups = append(lr.groups, ms)
	lr.mu.Unlock()
	if lr.block != nil {
		<-lr.block
	}
	return outs, lr.err
}

func (lr *laneRecorder) snapshot() [][]int {
	lr.mu.Lock()
	defer lr.mu.Unlock()
	out := make([][]int, len(lr.groups))
	copy(out, lr.groups)
	return out
}

// laneSub builds a lane-eligible submission: one warm identity (same
// seed), distinct cache keys (distinct measures).
func laneSub(measure int, p Priority) Submission {
	return Submission{
		Kind: d2m.Base2L, Benchmark: "tpc-c",
		Options:  d2m.Options{Seed: 1, Measure: measure},
		Priority: p,
	}
}

// blockerRun returns a Run hook that blocks on release for the
// "blocker" benchmark (signalling started once) and settles everything
// else instantly, so tests can hold the single worker while queueing.
func blockerRun(started chan<- struct{}, release <-chan struct{}) func(context.Context, d2m.RunSpec) (d2m.RunOutput, error) {
	var once sync.Once
	return func(ctx context.Context, spec d2m.RunSpec) (d2m.RunOutput, error) {
		if spec.Benchmark == "blocker" {
			once.Do(func() { close(started) })
			<-release
		}
		return d2m.RunOutput{Result: d2m.Result{Cycles: spec.Options.Seed}}, nil
	}
}

func blocker() Submission {
	return Submission{Kind: d2m.Base2L, Benchmark: "blocker", Priority: Interactive}
}

// TestLaneGroupFromChain: a group-admitted warm chain executes as one
// lane group — one RunGroup call carrying every member, every job done
// with the vector engine and its own result.
func TestLaneGroupFromChain(t *testing.T) {
	lr := &laneRecorder{}
	started, release := make(chan struct{}), make(chan struct{})
	s := newTestSched(t, Config{Workers: 1, RunGroup: lr.run}, blockerRun(started, release))

	bl, err := s.Submit(blocker())
	if err != nil {
		t.Fatal(err)
	}
	<-started

	adms, err := s.SubmitGroup([]Submission{
		laneSub(100, Interactive), laneSub(200, Interactive), laneSub(300, Interactive),
	})
	if err != nil {
		t.Fatal(err)
	}
	close(release)
	<-bl.Job.Done()
	for i, adm := range adms {
		<-adm.Job.Done()
		in := adm.Job.Info()
		if in.State != StateDone {
			t.Fatalf("lane %d state = %s (%v)", i, in.State, in.Err)
		}
		if in.Engine != d2m.EngineVector {
			t.Errorf("lane %d engine = %q, want vector", i, in.Engine)
		}
		want := uint64((i + 1) * 100)
		if in.Result == nil || in.Result.Cycles != want {
			t.Errorf("lane %d result = %+v, want cycles %d", i, in.Result, want)
		}
	}
	groups := lr.snapshot()
	if len(groups) != 1 || len(groups[0]) != 3 {
		t.Fatalf("groups = %v, want one group of 3", groups)
	}
}

// TestLaneGroupStealsQueuedLeaders: independently submitted jobs that
// share a lane key but arrived as separate leaders are stolen out of
// the queue into one group.
func TestLaneGroupStealsQueuedLeaders(t *testing.T) {
	lr := &laneRecorder{}
	started, release := make(chan struct{}), make(chan struct{})
	s := newTestSched(t, Config{Workers: 1, RunGroup: lr.run}, blockerRun(started, release))

	bl, _ := s.Submit(blocker())
	<-started
	a, err := s.Submit(laneSub(100, Interactive))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Submit(laneSub(200, Bulk)) // other class: stealing spans classes
	if err != nil {
		t.Fatal(err)
	}
	close(release)
	<-bl.Job.Done()
	<-a.Job.Done()
	<-b.Job.Done()
	groups := lr.snapshot()
	if len(groups) != 1 || len(groups[0]) != 2 {
		t.Fatalf("groups = %v, want one group of 2", groups)
	}
	if a.Job.Info().Engine != d2m.EngineVector || b.Job.Info().Engine != d2m.EngineVector {
		t.Errorf("engines = %q/%q, want vector/vector",
			a.Job.Info().Engine, b.Job.Info().Engine)
	}
}

// TestLaneGroupCancelWhileQueued: cancelling one member before the
// group runs drops that lane; the rest still group.
func TestLaneGroupCancelWhileQueued(t *testing.T) {
	lr := &laneRecorder{}
	started, release := make(chan struct{}), make(chan struct{})
	s := newTestSched(t, Config{Workers: 1, RunGroup: lr.run}, blockerRun(started, release))

	bl, _ := s.Submit(blocker())
	<-started
	adms, err := s.SubmitGroup([]Submission{
		laneSub(100, Interactive), laneSub(200, Interactive), laneSub(300, Interactive),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Cancel(adms[1].Job.ID()); err != nil {
		t.Fatal(err)
	}
	close(release)
	<-bl.Job.Done()
	for _, adm := range adms {
		<-adm.Job.Done()
	}
	if st := adms[1].Job.Info().State; st != StateCanceled {
		t.Errorf("cancelled lane state = %s, want canceled", st)
	}
	groups := lr.snapshot()
	if len(groups) != 1 || len(groups[0]) != 2 {
		t.Fatalf("groups = %v, want one group of 2 (cancelled lane dropped)", groups)
	}
	for i := range []int{0, 2} {
		if st := adms[i*2].Job.Info().State; st != StateDone {
			t.Errorf("surviving lane state = %s, want done", st)
		}
	}
}

// TestLaneGroupScalarHintOptsOut: Engine "scalar" keeps jobs out of
// lane groups even when they share a warm identity.
func TestLaneGroupScalarHintOptsOut(t *testing.T) {
	lr := &laneRecorder{}
	started, release := make(chan struct{}), make(chan struct{})
	s := newTestSched(t, Config{Workers: 1, RunGroup: lr.run}, blockerRun(started, release))

	bl, _ := s.Submit(blocker())
	<-started
	subs := []Submission{laneSub(100, Interactive), laneSub(200, Interactive)}
	for i := range subs {
		subs[i].Engine = d2m.EngineScalar
	}
	adms, err := s.SubmitGroup(subs)
	if err != nil {
		t.Fatal(err)
	}
	close(release)
	<-bl.Job.Done()
	for _, adm := range adms {
		<-adm.Job.Done()
		if eng := adm.Job.Info().Engine; eng != d2m.EngineScalar {
			t.Errorf("engine = %q, want scalar", eng)
		}
	}
	if groups := lr.snapshot(); len(groups) != 0 {
		t.Fatalf("groups = %v, want none (scalar hint)", groups)
	}
}

// TestLaneGroupMaxLanes: a chain longer than MaxLanes splits — the
// overflow runs scalar on the same worker, after the group.
func TestLaneGroupMaxLanes(t *testing.T) {
	lr := &laneRecorder{}
	started, release := make(chan struct{}), make(chan struct{})
	s := newTestSched(t, Config{Workers: 1, MaxLanes: 2, RunGroup: lr.run},
		blockerRun(started, release))

	bl, _ := s.Submit(blocker())
	<-started
	adms, err := s.SubmitGroup([]Submission{
		laneSub(100, Interactive), laneSub(200, Interactive),
		laneSub(300, Interactive), laneSub(400, Interactive),
	})
	if err != nil {
		t.Fatal(err)
	}
	close(release)
	<-bl.Job.Done()
	for _, adm := range adms {
		<-adm.Job.Done()
		if st := adm.Job.Info().State; st != StateDone {
			t.Fatalf("state = %s, want done", st)
		}
	}
	groups := lr.snapshot()
	if len(groups) != 1 || len(groups[0]) != 2 {
		t.Fatalf("groups = %v, want one group of 2 (MaxLanes cap)", groups)
	}
	for _, i := range []int{2, 3} {
		if eng := adms[i].Job.Info().Engine; eng != d2m.EngineScalar {
			t.Errorf("overflow lane %d engine = %q, want scalar", i, eng)
		}
	}
}

// TestLaneGroupErrors: a group error fails every lane; a per-lane
// error fails only its lane.
func TestLaneGroupErrors(t *testing.T) {
	t.Run("group", func(t *testing.T) {
		lr := &laneRecorder{err: errors.New("engine exploded")}
		started, release := make(chan struct{}), make(chan struct{})
		s := newTestSched(t, Config{Workers: 1, RunGroup: lr.run}, blockerRun(started, release))
		bl, _ := s.Submit(blocker())
		<-started
		adms, err := s.SubmitGroup([]Submission{laneSub(100, Interactive), laneSub(200, Interactive)})
		if err != nil {
			t.Fatal(err)
		}
		close(release)
		<-bl.Job.Done()
		for i, adm := range adms {
			<-adm.Job.Done()
			if st := adm.Job.Info().State; st != StateFailed {
				t.Errorf("lane %d state = %s, want failed", i, st)
			}
		}
	})
	t.Run("lane", func(t *testing.T) {
		lr := &laneRecorder{laneEr: map[int]error{200: errors.New("lane boom")}}
		started, release := make(chan struct{}), make(chan struct{})
		s := newTestSched(t, Config{Workers: 1, RunGroup: lr.run}, blockerRun(started, release))
		bl, _ := s.Submit(blocker())
		<-started
		adms, err := s.SubmitGroup([]Submission{laneSub(100, Interactive), laneSub(200, Interactive)})
		if err != nil {
			t.Fatal(err)
		}
		close(release)
		<-bl.Job.Done()
		<-adms[0].Job.Done()
		<-adms[1].Job.Done()
		if st := adms[0].Job.Info().State; st != StateDone {
			t.Errorf("healthy lane state = %s, want done", st)
		}
		if st := adms[1].Job.Info().State; st != StateFailed {
			t.Errorf("failing lane state = %s, want failed", st)
		}
	})
}

// TestSubmitEngineValidation: unknown engine hints are rejected at
// admission; replicated submissions never acquire a lane key.
func TestSubmitEngineValidation(t *testing.T) {
	lr := &laneRecorder{}
	s := newTestSched(t, Config{Workers: 1, RunGroup: lr.run}, nil)
	bad := laneSub(100, Interactive)
	bad.Engine = "turbo"
	if _, err := s.Submit(bad); err == nil {
		t.Error("Submit with engine \"turbo\" accepted, want validation error")
	}
	reps := laneSub(100, Interactive)
	reps.Engine = d2m.EngineVector
	reps.Replicates = 4
	adm, err := s.Submit(reps)
	if err != nil {
		t.Fatal(err)
	}
	<-adm.Job.Done()
	if groups := lr.snapshot(); len(groups) != 0 {
		t.Errorf("replicated submission grouped: %v", groups)
	}
}

// TestSubmitGroupWaitParks: a full queue parks the group feeder until
// a worker frees slots, rather than failing.
func TestSubmitGroupWaitParks(t *testing.T) {
	started, release := make(chan struct{}), make(chan struct{})
	s := newTestSched(t, Config{Workers: 1, QueueDepth: 1}, blockerRun(started, release))

	if _, err := s.Submit(blocker()); err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := s.Submit(laneSub(100, Interactive)); err != nil {
		t.Fatal(err)
	}
	// Queue is now full; the group must park, then land once released.
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		adms, err := s.SubmitGroupWait(ctx, []Submission{laneSub(200, Interactive)})
		if err == nil {
			<-adms[0].Job.Done()
		}
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("SubmitGroupWait returned before a slot freed (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("SubmitGroupWait: %v", err)
	}
}
