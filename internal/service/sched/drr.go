package sched

// Weighted fair queueing across tenants (API v1.6). Each priority
// class's queue is no longer one FIFO but a classQueue: per-tenant
// FIFOs served deficit-round-robin. On each visit a tenant's deficit
// grows by its share (quantum) and every dequeued job costs one
// credit, so over any contended window tenants drain in proportion to
// their configured shares — a hostile tenant's backlog delays only its
// own jobs. The class-level policy is unchanged: the 4:1
// interactive/bulk weighting picks the class, then the class's DRR
// picks the tenant. A single-tenant scheduler degenerates to the exact
// pre-v1.6 FIFO order.

// tenantFIFO is one tenant's queued chain leaders within a class,
// FIFO, plus its DRR credit.
type tenantFIFO struct {
	name    string
	jobs    []*Job
	deficit int
}

// classQueue is one priority class's queue: the per-tenant FIFOs with
// waiting work, in round-robin ring order, and the DRR cursor.
// All methods are called with Scheduler.mu held.
type classQueue struct {
	active []*tenantFIFO
	cursor int
}

func (cq *classQueue) empty() bool { return len(cq.active) == 0 }

// fifo finds the tenant's FIFO among the active set.
func (cq *classQueue) fifo(tenant string) *tenantFIFO {
	for _, t := range cq.active {
		if t.name == tenant {
			return t
		}
	}
	return nil
}

// push appends a leader to its tenant's FIFO, activating the tenant —
// it joins the ring with zero credit, so it is served after every
// already-waiting tenant gets its current round's grant.
func (cq *classQueue) push(j *Job) {
	t := cq.fifo(j.spec.Tenant)
	if t == nil {
		t = &tenantFIFO{name: j.spec.Tenant}
		cq.active = append(cq.active, t)
	}
	t.jobs = append(t.jobs, j)
}

// pop dequeues the next leader under deficit round robin: the cursor
// tenant spends credit one job at a time; when its credit (or its
// queue) runs out it receives next round's quantum — shareOf, floored
// at 1 — and the cursor moves on. A tenant emptied mid-round leaves
// the ring and forfeits its residual credit, so idle tenants cannot
// bank priority.
func (cq *classQueue) pop(shareOf func(string) int) *Job {
	n := len(cq.active)
	if n == 0 {
		return nil
	}
	// Two passes bound the scan: the first grants every broke tenant a
	// quantum >= 1, the second therefore finds a serveable one.
	for tries := 0; tries < 2*n+1; tries++ {
		if cq.cursor >= len(cq.active) {
			cq.cursor = 0
		}
		t := cq.active[cq.cursor]
		if t.deficit < 1 {
			q := 1
			if shareOf != nil {
				if s := shareOf(t.name); s > 1 {
					q = s
				}
			}
			t.deficit += q
			cq.cursor++
			continue
		}
		t.deficit--
		j := t.jobs[0]
		t.jobs[0] = nil
		t.jobs = t.jobs[1:]
		if len(t.jobs) == 0 {
			cq.removeFIFO(cq.cursor)
		}
		return j
	}
	return nil
}

// removeFIFO drops the i-th tenant from the ring, keeping the cursor
// pointed at the same next tenant.
func (cq *classQueue) removeFIFO(i int) {
	cq.active = append(cq.active[:i], cq.active[i+1:]...)
	if i < cq.cursor {
		cq.cursor--
	}
	if cq.cursor >= len(cq.active) {
		cq.cursor = 0
	}
}

// remove takes one queued leader out (Cancel's queue surgery).
func (cq *classQueue) remove(j *Job) bool {
	for ti, t := range cq.active {
		if t.name != j.spec.Tenant {
			continue
		}
		for i, q := range t.jobs {
			if q != j {
				continue
			}
			copy(t.jobs[i:], t.jobs[i+1:])
			t.jobs[len(t.jobs)-1] = nil
			t.jobs = t.jobs[:len(t.jobs)-1]
			if len(t.jobs) == 0 {
				cq.removeFIFO(ti)
			}
			return true
		}
		return false
	}
	return false
}

// replace swaps a queued leader for its promoted successor in place,
// preserving the tenant's FIFO position (chain members share their
// leader's tenant).
func (cq *classQueue) replace(old, nl *Job) bool {
	t := cq.fifo(old.spec.Tenant)
	if t == nil {
		return false
	}
	for i, q := range t.jobs {
		if q == old {
			t.jobs[i] = nl
			return true
		}
	}
	return false
}

// position returns a queued leader's 1-based place within its tenant's
// FIFO — the jobs of the same tenant and class ahead of it — or 0 when
// it is not queued here. Under fair queueing this, not the interleaved
// class order, is the client-meaningful queue depth.
func (cq *classQueue) position(j *Job) int {
	t := cq.fifo(j.spec.Tenant)
	if t == nil {
		return 0
	}
	for i, q := range t.jobs {
		if q == j {
			return i + 1
		}
	}
	return 0
}

// steal removes up to max queued leaders matching pred, scanning
// tenants in ring order (lane-group gathering). Emptied tenants leave
// the ring.
func (cq *classQueue) steal(max int, pred func(*Job) bool) []*Job {
	if max <= 0 {
		return nil
	}
	var out []*Job
	for ti := 0; ti < len(cq.active); {
		t := cq.active[ti]
		kept := t.jobs[:0]
		for _, cand := range t.jobs {
			if len(out) < max && pred(cand) {
				out = append(out, cand)
			} else {
				kept = append(kept, cand)
			}
		}
		for i := len(kept); i < len(t.jobs); i++ {
			t.jobs[i] = nil
		}
		t.jobs = kept
		if len(t.jobs) == 0 {
			cq.removeFIFO(ti)
			continue // ring shifted left; revisit index ti
		}
		ti++
	}
	return out
}
