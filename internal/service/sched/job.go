// Package sched is the transport-independent execution engine of the
// d2m simulation service: a Scheduler owning the job ledger, a
// multi-level queue with priority classes and weighted dequeue, a
// worker pool with warm-identity affinity chaining, and one admission
// pipeline (validate, result-cache lookup, in-flight coalescing,
// all-or-nothing enqueue) that single runs, batches, and sweep cells
// all flow through. The HTTP layer (internal/service) shrinks to
// marshalling plus calls into this package; caches, stores, and
// metrics stay behind the small ResultSink / WarmCache / Observer
// interfaces, so the scheduler is unit-testable without HTTP.
package sched

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"d2m"
)

// Priority is a submission's scheduling class. Lower values are served
// preferentially: the dequeue loop picks InteractiveWeight interactive
// jobs for every bulk job when both classes are waiting, and each class
// has its own queue capacity, so a large sweep can neither starve nor
// crowd out interactive requests.
type Priority int

const (
	// Interactive is the class of latency-sensitive submissions
	// (POST /v1/run, POST /v1/batch).
	Interactive Priority = iota
	// Bulk is the class of throughput work (sweep cells): it uses idle
	// capacity and a bounded share of contended capacity.
	Bulk
	// NumPriorities bounds the class enum; also the number of queues.
	NumPriorities
)

func (p Priority) String() string {
	switch p {
	case Interactive:
		return "interactive"
	case Bulk:
		return "bulk"
	default:
		return fmt.Sprintf("Priority(%d)", int(p))
	}
}

// State is a job's position in its lifecycle.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// settled reports whether the state is terminal.
func (st State) settled() bool {
	return st == StateDone || st == StateFailed || st == StateCanceled
}

// Submission describes one unit of work entering the admission
// pipeline. The simulation identity (Kind, Benchmark, Options,
// Replicates) determines the cache key; the remaining fields are
// handling knobs that do not affect it.
type Submission struct {
	Kind       d2m.Kind
	Benchmark  string
	Options    d2m.Options
	Replicates int // canonical replicate count; 0 = single run

	// Priority selects the scheduling class. The zero value is
	// Interactive.
	Priority Priority
	// Tenant names the traffic source for fair queueing: within each
	// class, tenants drain deficit-round-robin in proportion to their
	// Config.TenantShare, and each tenant gets its own QueueDepth
	// allotment. The zero value is the default tenant — a scheduler fed
	// only by it behaves exactly like the pre-tenancy FIFO. Tenant is a
	// handling knob: it never enters the cache key, so identical work
	// from different tenants still coalesces.
	Tenant string
	// Timeout caps the job's total lifetime (queue wait + run). Zero
	// takes the scheduler's default; negative means no deadline.
	Timeout time.Duration
	// Detached marks a job that outlives its submitting request (async
	// submissions): it is never cancelled by its waiters disconnecting.
	Detached bool
	// Engine is the execution-path hint: "" (auto — the scheduler may
	// group the job into a vector lane group), d2m.EngineScalar (opt
	// out of grouping), or d2m.EngineVector (grouping preferred; still
	// runs scalar when no group forms). Scalar and vector results are
	// byte-identical by contract, so the hint never changes the cache
	// key.
	Engine string
}

// validate rejects submissions the scheduler cannot represent. The
// transport layer performs the user-facing validation (benchmark
// catalog, option ranges) before building a Submission.
func (sub Submission) validate() error {
	if sub.Benchmark == "" {
		return errors.New("sched: submission has no benchmark")
	}
	if sub.Replicates < 0 {
		return fmt.Errorf("sched: replicates = %d is negative", sub.Replicates)
	}
	if sub.Priority < 0 || sub.Priority >= NumPriorities {
		return fmt.Errorf("sched: unknown priority %d", sub.Priority)
	}
	switch sub.Engine {
	case "", d2m.EngineScalar, d2m.EngineVector:
	default:
		return fmt.Errorf("sched: unknown engine %q", sub.Engine)
	}
	return nil
}

// CacheKey returns the submission's content address: the hash of the
// canonical (kind, benchmark, defaulted options, replicates) tuple.
// Submissions that differ only in presentation or handling knobs share
// a key and therefore share one simulation. Reps is tagged omitempty so
// single-run keys are byte-identical to the pre-replicate revision and
// persisted result stores stay valid.
func CacheKey(kind d2m.Kind, bench string, opt d2m.Options, reps int) string {
	h := sha256.New()
	json.NewEncoder(h).Encode(struct {
		Kind  string
		Bench string
		Opt   d2m.Options
		Reps  int `json:"reps,omitempty"`
	}{kind.String(), bench, opt.WithDefaults(), reps})
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// key returns the submission's cache key.
func (sub Submission) key() string {
	return CacheKey(sub.Kind, sub.Benchmark, sub.Options, sub.Replicates)
}

// Job is the scheduler's record of one admitted simulation. Fields
// below the marker are guarded by Scheduler.mu until done closes,
// after which they are immutable.
type Job struct {
	s      *Scheduler
	id     string
	key    string
	spec   Submission
	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}
	// runCh closes when a worker claims the job (queued → running). A
	// job settled straight from the queue (cancel, deadline) never
	// closes it, so observers must select on Done as well.
	runCh chan struct{}
	// leader points at the chain head when this job was admitted as an
	// affinity follower; chain holds the followers of a leader. A
	// worker that dequeues a leader runs the chain in order on the same
	// goroutine, so every follower restores the warm-state snapshot the
	// leader just deposited. Mutated only under Scheduler.mu (leader
	// promotion when a queued leader is cancelled).
	leader *Job
	chain  []*Job
	// laneKey is the job's lane-group identity (its warm key) when it
	// is eligible for vector execution — single run, engine hint not
	// "scalar" — and "" otherwise. A worker that dequeues a leader
	// gathers queued jobs with the same laneKey into one lockstep
	// RunGroup call. Immutable after creation.
	laneKey string

	// guarded by Scheduler.mu until done closes.
	state State
	// engine records the execution path that produced the result
	// ("scalar" or "vector"); set when the job settles done.
	engine     string
	result     d2m.Result
	replicated *d2m.Replicated
	err        error
	waiters    int
	detached   bool
	created    time.Time
	started    time.Time
	finished   time.Time
}

// ID returns the job's ledger id.
func (j *Job) ID() string { return j.id }

// Key returns the job's cache key.
func (j *Job) Key() string { return j.key }

// Done returns the channel closed when the job settles.
func (j *Job) Done() <-chan struct{} { return j.done }

// Started returns the channel closed when a worker claims the job.
// Jobs settled without ever running (cancelled or expired while
// queued) never close it; select on Done alongside it.
func (j *Job) Started() <-chan struct{} { return j.runCh }

// Info snapshots the job's observable state.
func (j *Job) Info() Info {
	j.s.mu.Lock()
	defer j.s.mu.Unlock()
	return j.s.infoLocked(j)
}

// Info is a point-in-time view of a job, safe to use without holding
// any scheduler lock.
type Info struct {
	ID       string
	State    State
	Priority Priority
	// QueuePos is the job's 1-based position among its own tenant's
	// queued leaders of its class (affinity followers share their
	// leader's position); zero once the job leaves the queue. Under
	// fair queueing the tenant-local depth, not the interleaved class
	// order, is the client-meaningful number.
	QueuePos  int
	Kind      d2m.Kind
	Benchmark string
	// Engine is the execution path that produced the result ("scalar"
	// or "vector"); set once the job is done.
	Engine   string
	Created  time.Time
	Started  time.Time
	Finished time.Time
	Err      error
	// Result and Replicated are set only for StateDone.
	Result     *d2m.Result
	Replicated *d2m.Replicated
}

// Admission is the outcome of submitting one Submission: exactly one
// of Cached (result served without queueing) or Job (queued, coalesced
// or fresh) describes it.
type Admission struct {
	// Job is the admitted job; nil when Cached.
	Job *Job
	// New reports that Job was created by this submission rather than
	// coalesced onto an identical in-flight one.
	New bool
	// Cached reports that the submission was settled from the result
	// sink at admission; Result/Replicated then carry the payload.
	Cached     bool
	Result     d2m.Result
	Replicated *d2m.Replicated
}

// ResultSink is the scheduler's view of the result cache (and journal):
// Lookup may settle a submission at admission, Settle publishes a
// successful job's result before its waiters wake.
type ResultSink interface {
	Lookup(key string) (d2m.Result, *d2m.Replicated, bool)
	Settle(key string, res d2m.Result, rep *d2m.Replicated)
}

// WarmCache is the scheduler's hook into the warm-snapshot store:
// NoteShared announces that several admitted jobs share warmKey, so the
// first run already captures a snapshot for its chain followers.
type WarmCache interface {
	NoteShared(warmKey string)
}

// Observer receives the scheduler's accounting events; the service
// maps them onto its Prometheus metrics. Implementations must be safe
// for concurrent use.
type Observer interface {
	JobAccepted()
	JobCoalesced()
	CacheHit()
	CacheMiss()
	JobSettled(st State)
	QueuedDelta(d int64)
	RunningDelta(d int64)
	ObserveQueueWait(p Priority, seconds float64)
	ObserveRun(seconds float64)
}

// Errors returned by the admission and cancellation surface.
var (
	// ErrQueueFull rejects an admission that would overflow a class
	// queue. Group admissions return a *QueueFullError wrapping it.
	ErrQueueFull = errors.New("sched: job queue is full")
	// ErrDraining rejects admissions after Shutdown began.
	ErrDraining = errors.New("sched: scheduler is draining")
	// ErrSettled reports a Cancel on an already-settled job.
	ErrSettled = errors.New("sched: job already settled")
	// ErrUnknownJob reports a Cancel on an id absent from the ledger.
	ErrUnknownJob = errors.New("sched: unknown job")
)

// QueueFullError is the group-admission form of ErrQueueFull: Jobs
// counts the submissions that would have become new jobs before the
// all-or-nothing rollback discarded them (coalesced and cached
// submissions excluded). errors.Is(err, ErrQueueFull) matches it.
type QueueFullError struct{ Jobs int }

func (e *QueueFullError) Error() string { return ErrQueueFull.Error() }

// Is makes errors.Is(e, ErrQueueFull) true.
func (e *QueueFullError) Is(target error) bool { return target == ErrQueueFull }

// nopObserver and nopSink stand in for absent hooks.
type nopObserver struct{}

func (nopObserver) JobAccepted()                       {}
func (nopObserver) JobCoalesced()                      {}
func (nopObserver) CacheHit()                          {}
func (nopObserver) CacheMiss()                         {}
func (nopObserver) JobSettled(State)                   {}
func (nopObserver) QueuedDelta(int64)                  {}
func (nopObserver) RunningDelta(int64)                 {}
func (nopObserver) ObserveQueueWait(Priority, float64) {}
func (nopObserver) ObserveRun(float64)                 {}

type nopSink struct{}

func (nopSink) Lookup(string) (d2m.Result, *d2m.Replicated, bool) {
	return d2m.Result{}, nil, false
}
func (nopSink) Settle(string, d2m.Result, *d2m.Replicated) {}
