package sched

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"d2m"
)

// Config sizes the scheduler. The zero value of every field but Run is
// usable: each has a production-sane default.
type Config struct {
	// Workers is the worker-pool size (concurrent simulations).
	// Zero means runtime.GOMAXPROCS(0).
	Workers int
	// QueueDepth bounds each priority class's queue separately, so bulk
	// backlog can never consume the interactive class's admission
	// capacity. Zero means 64.
	QueueDepth int
	// DefaultTimeout is the per-job deadline (queue wait + run) applied
	// when a submission does not set its own. Zero means no deadline.
	DefaultTimeout time.Duration
	// MaxJobs bounds the settled-job history kept in the ledger.
	// Zero means 4096.
	MaxJobs int
	// InteractiveWeight is the dequeue ratio when both classes have
	// waiting jobs: this many interactive jobs are served per bulk job.
	// Zero means 4.
	InteractiveWeight int
	// TenantShare maps a Submission.Tenant to its deficit-round-robin
	// quantum within each class: per contended round, a tenant drains
	// TenantShare jobs for every one job of a share-1 tenant. Nil (or
	// returns below 1) means every tenant weighs 1. The class-level
	// InteractiveWeight policy is unaffected.
	TenantShare func(tenant string) int
	// Run executes one simulation; it is the only required field. The
	// scheduler passes the submission's identity through a d2m.RunSpec
	// (Replicates included) and stores the output on the job.
	Run func(ctx context.Context, spec d2m.RunSpec) (d2m.RunOutput, error)
	// RunGroup, when non-nil, executes a lane group — queued jobs
	// sharing a lane key (warm identity) — as one lockstep simulation,
	// returning one outcome per lane in order. Nil disables vector
	// execution: every job runs through Run.
	RunGroup func(ctx context.Context, lanes []d2m.GroupLane) ([]d2m.LaneOutcome, error)
	// MaxLanes caps the lane-group size workers assemble. Zero means
	// 16; values below 2 disable grouping. Ignored when RunGroup is
	// nil.
	MaxLanes int
	// Results, when non-nil, is consulted at admission (Lookup) and on
	// success (Settle): the service wires its result cache and JSONL
	// journal here.
	Results ResultSink
	// Warm, when non-nil, learns which warm identities group admission
	// chained together, so the snapshot cache captures on the chain
	// leader's first run.
	Warm WarmCache
	// Observer, when non-nil, receives accounting events.
	Observer Observer
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 4096
	}
	if c.InteractiveWeight <= 0 {
		c.InteractiveWeight = 4
	}
	if c.MaxLanes == 0 {
		c.MaxLanes = 16
	}
	if c.Results == nil {
		c.Results = nopSink{}
	}
	if c.Observer == nil {
		c.Observer = nopObserver{}
	}
	return c
}

// Scheduler owns the job ledger, the multi-level queue, and the worker
// pool. All methods are safe for concurrent use.
type Scheduler struct {
	cfg    Config
	obs    Observer
	sink   ResultSink
	warm   WarmCache
	wg     sync.WaitGroup
	nextID atomic.Uint64

	baseCtx    context.Context // parent of every job context
	baseCancel context.CancelFunc

	// slotFree pulses when a queue slot frees up (a worker dequeued a
	// leader, or a queued leader was cancelled), waking one SubmitWait
	// feeder parked on a full queue. Best-effort; feeders also poll.
	slotFree chan struct{}

	mu   sync.Mutex
	cond *sync.Cond // signalled on enqueue and drain
	// draining gates admission only: new submissions get ErrDraining
	// while queued and running jobs keep flowing through the workers.
	// It is reversible (SetDraining) — the cluster gateway drains a
	// shard out of its hash ring, lets in-flight work finish, and may
	// bring the shard back. stopping additionally tells workers to exit
	// once the queues empty; it is set only by Shutdown and is final.
	draining bool
	stopping bool
	// queues hold chain leaders only, per class, fair-queued across
	// tenants; queuedN counts every queued job including chain
	// followers, and queuedT splits that count by tenant — QueueDepth
	// bounds each tenant's share of a class separately, so one tenant's
	// backlog cannot consume another's admission capacity.
	queues  [NumPriorities]classQueue
	queuedN [NumPriorities]int
	queuedT [NumPriorities]map[string]int
	// rr counts interactive dequeues since the last bulk one, for the
	// weighted pick.
	rr       int
	jobs     map[string]*Job // by id; settled history bounded by MaxJobs
	inflight map[string]*Job // by cache key: queued or running
	retired  []string        // settled job ids, oldest first
	// runEWMA tracks recent per-job service seconds (runCount samples),
	// feeding RetryAfter.
	runEWMA  float64
	runCount uint64
}

// New starts a scheduler and its worker pool. Callers must Shutdown it.
func New(cfg Config) (*Scheduler, error) {
	cfg = cfg.withDefaults()
	if cfg.Run == nil {
		return nil, errors.New("sched: Config.Run is required")
	}
	s := &Scheduler{
		cfg:      cfg,
		obs:      cfg.Observer,
		sink:     cfg.Results,
		warm:     cfg.Warm,
		slotFree: make(chan struct{}, 1),
		jobs:     make(map[string]*Job),
		inflight: make(map[string]*Job),
	}
	for p := range s.queuedT {
		s.queuedT[p] = make(map[string]int)
	}
	s.cond = sync.NewCond(&s.mu)
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Workers returns the worker-pool width.
func (s *Scheduler) Workers() int { return s.cfg.Workers }

// MaxLanes returns the largest lane group a worker will assemble: 1
// when vector execution is disabled (no RunGroup hook, or MaxLanes
// configured below 2).
func (s *Scheduler) MaxLanes() int {
	if s.cfg.RunGroup == nil || s.cfg.MaxLanes < 2 {
		return 1
	}
	return s.cfg.MaxLanes
}

// Draining reports whether admission is closed — by SetDraining or by
// Shutdown.
func (s *Scheduler) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// SetDraining opens or closes admission without touching the worker
// pool: while draining, Submit and SubmitGroup return ErrDraining but
// queued and running jobs keep executing to completion. This is the
// cluster drain hook — a shard taken out of the gateway's hash ring
// finishes its in-flight work and can be undrained later. SetDraining
// (false) after Shutdown began is a no-op: shutdown drain is final.
func (s *Scheduler) SetDraining(d bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopping {
		return
	}
	s.draining = d
}

// Shutdown drains the scheduler: admission stops (ErrDraining), queued
// and running jobs are allowed to finish, and the worker pool exits.
// If ctx expires first, every outstanding job context is cancelled —
// simulations abort at their next engine checkpoint — and Shutdown
// waits for the workers before returning ctx.Err(). Safe to call more
// than once.
func (s *Scheduler) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.stopping = true
	s.cond.Broadcast()
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.baseCancel()
		<-done
		return ctx.Err()
	}
}

// RetryAfter estimates how long a rejected class-p client should back
// off: the backlog the new job would sit behind (every queued job in
// classes served at or ahead of p) times the recently observed service
// seconds per job, spread across the pool. Before any job has run, it
// falls back to assuming one second per backlog entry per worker.
// Clamped to [1s, 10m].
func (s *Scheduler) RetryAfter(p Priority) time.Duration {
	s.mu.Lock()
	backlog := 0
	for q := Interactive; q <= p && q < NumPriorities; q++ {
		backlog += s.queuedN[q]
	}
	ewma, samples := s.runEWMA, s.runCount
	s.mu.Unlock()
	workers := float64(s.cfg.Workers)
	var secs float64
	if samples == 0 {
		secs = 1 + float64(backlog)/workers
	} else {
		secs = ewma * float64(backlog+1) / workers
	}
	if secs < 1 {
		secs = 1
	}
	if secs > 600 {
		secs = 600
	}
	return time.Duration(secs * float64(time.Second))
}

// ---------------------------------------------------------------------------
// Worker pool.

// worker drains the queues until Shutdown empties them. A dequeued
// leader may carry a chain of affinity followers; the worker first
// gathers the leader, its lane-eligible chain members, and any queued
// same-lane-key leaders into one lockstep lane group (vector
// execution), then runs whatever did not fit — ineligible chain
// members, overflow — back-to-back the scalar way, each follower
// restoring the snapshot the group just deposited while it is hottest.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		j, ok := s.dequeue()
		if !ok {
			return
		}
		lanes, rest := s.gatherLanes(j)
		if len(lanes) >= 2 {
			s.runLaneGroup(lanes)
		} else {
			s.runJob(j)
		}
		for _, c := range rest {
			s.runJob(c)
		}
	}
}

// gatherLanes assembles the lane group around a just-dequeued leader:
// the leader itself, its chain members with the same lane key, and
// queued leaders (of either class) with the same lane key and no chain
// of their own, stolen out of the queues up to MaxLanes. It returns
// the group (nil when grouping is off or nothing joined) and the jobs
// the worker must still run scalar — the leader's remaining chain. A
// stolen job stays StateQueued until the group claims it, so Cancel
// settles it exactly as it settles a chain follower.
func (s *Scheduler) gatherLanes(j *Job) (lanes, rest []*Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// The chain is read under the lock: a cancelled queued leader may
	// have promoted a follower, and cancelled followers are skipped
	// inside runJob.
	rest = append([]*Job(nil), j.chain...)
	if s.cfg.RunGroup == nil || s.cfg.MaxLanes < 2 ||
		j.laneKey == "" || j.state != StateQueued {
		return nil, rest
	}
	lanes = append(lanes, j)
	rest = rest[:0]
	for _, c := range j.chain {
		if len(lanes) < s.cfg.MaxLanes && c.laneKey == j.laneKey &&
			c.state == StateQueued && c.ctx.Err() == nil {
			lanes = append(lanes, c)
		} else {
			rest = append(rest, c)
		}
	}
	stole := false
	for p := Interactive; p < NumPriorities; p++ {
		if len(lanes) >= s.cfg.MaxLanes {
			break
		}
		got := s.queues[p].steal(s.cfg.MaxLanes-len(lanes), func(cand *Job) bool {
			return cand.laneKey == j.laneKey && len(cand.chain) == 0 &&
				cand.state == StateQueued && cand.ctx.Err() == nil
		})
		if len(got) > 0 {
			lanes = append(lanes, got...)
			stole = true
		}
	}
	if stole {
		s.pulseSlotFree()
	}
	if len(lanes) < 2 {
		// Nothing joined: rest still holds the full chain.
		return nil, rest
	}
	return lanes, rest
}

// runLaneGroup claims each gathered job and executes the claimed ones
// as one lockstep RunGroup call. Jobs settled while queued (cancelled,
// expired) drop out at claim time exactly as they would on the scalar
// path; a group reduced to one job falls back to scalar execution. The
// group context is the scheduler's base context — per-lane cancellation
// flows through each job's own context, which the vector engine polls
// to demote a lane without aborting the group.
func (s *Scheduler) runLaneGroup(group []*Job) {
	claimed := make([]*Job, 0, len(group))
	for _, j := range group {
		if s.claim(j) {
			claimed = append(claimed, j)
		}
	}
	switch len(claimed) {
	case 0:
		return
	case 1:
		s.execute(claimed[0])
		return
	}
	lanes := make([]d2m.GroupLane, len(claimed))
	for i, j := range claimed {
		lanes[i] = d2m.GroupLane{
			Spec: d2m.RunSpec{
				Kind:       j.spec.Kind,
				Benchmark:  j.spec.Benchmark,
				Options:    j.spec.Options,
				Replicates: j.spec.Replicates,
			},
			Ctx: j.ctx,
		}
	}
	s.obs.RunningDelta(int64(len(claimed)))
	if lg, ok := s.obs.(interface{ LaneGroup(size int) }); ok {
		lg.LaneGroup(len(claimed))
	}
	start := time.Now()
	outs, gerr := s.cfg.RunGroup(s.baseCtx, lanes)
	dur := time.Since(start)
	s.obs.RunningDelta(-int64(len(claimed)))
	s.obs.ObserveRun(dur.Seconds())
	if gerr == nil && len(outs) != len(claimed) {
		gerr = fmt.Errorf("sched: lane group returned %d outcomes for %d lanes", len(outs), len(claimed))
	}
	// Each lane's accounted service time is its share of the group run:
	// that is what the lane actually cost the pool, and what keeps the
	// RetryAfter EWMA meaning "seconds per job".
	per := dur / time.Duration(len(claimed))
	for i, j := range claimed {
		switch {
		case gerr != nil:
			s.finish(j, d2m.RunOutput{}, gerr, 0)
		case outs[i].Err != nil:
			s.finish(j, d2m.RunOutput{}, outs[i].Err, 0)
		default:
			out := outs[i].Output
			if out.Engine == "" {
				out.Engine = d2m.EngineVector
			}
			s.finish(j, out, nil, per)
		}
	}
}

// dequeue blocks until a leader is available (returning it) or the
// scheduler is draining with empty queues (returning false).
func (s *Scheduler) dequeue() (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if j := s.pickLocked(); j != nil {
			s.pulseSlotFree()
			return j, true
		}
		if s.stopping {
			return nil, false
		}
		s.cond.Wait()
	}
}

// pickLocked pops the next leader: the weighted-priority policy picks
// the class — when both are waiting, InteractiveWeight interactive
// leaders are served per bulk leader — then the class's deficit round
// robin picks the tenant, so neither a class nor a tenant can starve
// the others.
func (s *Scheduler) pickLocked() *Job {
	hasI := !s.queues[Interactive].empty()
	hasB := !s.queues[Bulk].empty()
	var p Priority
	switch {
	case hasI && hasB:
		if s.rr >= s.cfg.InteractiveWeight {
			p, s.rr = Bulk, 0
		} else {
			p = Interactive
			s.rr++
		}
	case hasI:
		p = Interactive
	case hasB:
		p = Bulk
	default:
		return nil
	}
	return s.queues[p].pop(s.cfg.TenantShare)
}

// pulseSlotFree wakes one feeder parked on a full queue. Callers hold
// s.mu; the send is non-blocking.
func (s *Scheduler) pulseSlotFree() {
	select {
	case s.slotFree <- struct{}{}:
	default:
	}
}

// runJob executes one dequeued job (leader or chain follower) the
// scalar way. A job settled while queued — cancelled explicitly, or
// its deadline passed, or its waiters all disconnected — never
// occupies a worker.
func (s *Scheduler) runJob(j *Job) {
	if s.claim(j) {
		s.execute(j)
	}
}

// claim transitions a dequeued (or lane-gathered) job from queued to
// running, performing the queue-exit accounting. It returns false when
// the job needs no execution: already settled by Cancel, or its
// context died in the queue (the job is then settled here).
func (s *Scheduler) claim(j *Job) bool {
	s.mu.Lock()
	if j.state != StateQueued {
		// Cancel settled it while it sat in the queue (or in a chain);
		// all accounting happened there.
		s.mu.Unlock()
		return false
	}
	if err := j.ctx.Err(); err != nil {
		s.dequeuedLocked(j)
		s.mu.Unlock()
		s.obs.QueuedDelta(-1)
		s.obs.ObserveQueueWait(j.spec.Priority, time.Since(j.created).Seconds())
		s.finish(j, d2m.RunOutput{}, err, 0)
		return false
	}
	s.dequeuedLocked(j)
	j.state = StateRunning
	j.started = time.Now()
	close(j.runCh)
	s.mu.Unlock()
	s.obs.QueuedDelta(-1)
	s.obs.ObserveQueueWait(j.spec.Priority, j.started.Sub(j.created).Seconds())
	return true
}

// execute runs one claimed job through the scalar Run hook and settles
// it.
func (s *Scheduler) execute(j *Job) {
	s.obs.RunningDelta(1)
	start := time.Now()
	out, err := s.cfg.Run(j.ctx, d2m.RunSpec{
		Kind:       j.spec.Kind,
		Benchmark:  j.spec.Benchmark,
		Options:    j.spec.Options,
		Replicates: j.spec.Replicates,
	})
	dur := time.Since(start)
	s.obs.RunningDelta(-1)
	s.obs.ObserveRun(dur.Seconds())
	if err == nil && out.Engine == "" {
		out.Engine = d2m.EngineScalar
	}
	s.finish(j, out, err, dur)
}

// dequeuedLocked maintains the per-class and per-tenant queued-job
// counts as a job leaves the queue for a worker.
func (s *Scheduler) dequeuedLocked(j *Job) {
	p := j.spec.Priority
	s.queuedN[p]--
	if n := s.queuedT[p][j.spec.Tenant] - 1; n > 0 {
		s.queuedT[p][j.spec.Tenant] = n
	} else {
		delete(s.queuedT[p], j.spec.Tenant)
	}
}

// finish settles a job exactly once: records the outcome, releases the
// in-flight slot so the next identical submission starts fresh,
// publishes a successful result to the sink, and wakes every waiter.
// The sink is fed before done closes, so a restart straight after a
// response never loses the result it served.
func (s *Scheduler) finish(j *Job, out d2m.RunOutput, err error, dur time.Duration) {
	s.mu.Lock()
	// Guarded: an abandoned job's key slot may already belong to a newer
	// job (admission skips coalescing onto cancelled contexts).
	if s.inflight[j.key] == j {
		delete(s.inflight, j.key)
	}
	j.finished = time.Now()
	switch {
	case err == nil:
		j.state = StateDone
		j.result = out.Result
		j.replicated = out.Replicated
		j.engine = out.Engine
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.state = StateCanceled
		j.err = err
	default:
		j.state = StateFailed
		j.err = err
	}
	if dur > 0 {
		s.noteRunLocked(dur)
	}
	s.retireLocked(j)
	st := j.state
	s.mu.Unlock()
	s.obs.JobSettled(st)
	if st == StateDone {
		s.sink.Settle(j.key, j.result, j.replicated)
	}
	j.cancel() // release the deadline timer
	close(j.done)
}

// noteRunLocked folds one observed service time into the EWMA behind
// RetryAfter. Callers hold s.mu.
func (s *Scheduler) noteRunLocked(dur time.Duration) {
	sec := dur.Seconds()
	if s.runCount == 0 {
		s.runEWMA = sec
	} else {
		const alpha = 0.2
		s.runEWMA = alpha*sec + (1-alpha)*s.runEWMA
	}
	s.runCount++
}

// retireLocked bounds the settled-job history: beyond cfg.MaxJobs
// settled jobs, the oldest records vanish from the ledger. Callers
// hold s.mu.
func (s *Scheduler) retireLocked(j *Job) {
	s.retired = append(s.retired, j.id)
	for len(s.retired) > s.cfg.MaxJobs {
		delete(s.jobs, s.retired[0])
		s.retired = s.retired[1:]
	}
}

// newJobLocked builds a fresh queued job for a submission. Callers
// hold s.mu and are responsible for ledger/queue insertion.
func (s *Scheduler) newJobLocked(sub Submission, key string) *Job {
	j := &Job{
		s:        s,
		id:       fmt.Sprintf("j%08d", s.nextID.Add(1)),
		key:      key,
		spec:     sub,
		done:     make(chan struct{}),
		runCh:    make(chan struct{}),
		state:    StateQueued,
		created:  time.Now(),
		waiters:  1,
		detached: sub.Detached,
	}
	if sub.Replicates < 2 && sub.Engine != d2m.EngineScalar {
		j.laneKey = d2m.WarmKey(sub.Kind, sub.Benchmark, sub.Options)
	}
	timeout := sub.Timeout
	if timeout == 0 {
		timeout = s.cfg.DefaultTimeout
	}
	if timeout > 0 {
		j.ctx, j.cancel = context.WithTimeout(s.baseCtx, timeout)
	} else {
		j.ctx, j.cancel = context.WithCancel(s.baseCtx)
	}
	return j
}
