package sched

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"d2m"
)

// Config sizes the scheduler. The zero value of every field but Run is
// usable: each has a production-sane default.
type Config struct {
	// Workers is the worker-pool size (concurrent simulations).
	// Zero means runtime.GOMAXPROCS(0).
	Workers int
	// QueueDepth bounds each priority class's queue separately, so bulk
	// backlog can never consume the interactive class's admission
	// capacity. Zero means 64.
	QueueDepth int
	// DefaultTimeout is the per-job deadline (queue wait + run) applied
	// when a submission does not set its own. Zero means no deadline.
	DefaultTimeout time.Duration
	// MaxJobs bounds the settled-job history kept in the ledger.
	// Zero means 4096.
	MaxJobs int
	// InteractiveWeight is the dequeue ratio when both classes have
	// waiting jobs: this many interactive jobs are served per bulk job.
	// Zero means 4.
	InteractiveWeight int
	// Run executes one simulation; it is the only required field. The
	// scheduler passes the submission's identity through a d2m.RunSpec
	// (Replicates included) and stores the output on the job.
	Run func(ctx context.Context, spec d2m.RunSpec) (d2m.RunOutput, error)
	// Results, when non-nil, is consulted at admission (Lookup) and on
	// success (Settle): the service wires its result cache and JSONL
	// journal here.
	Results ResultSink
	// Warm, when non-nil, learns which warm identities group admission
	// chained together, so the snapshot cache captures on the chain
	// leader's first run.
	Warm WarmCache
	// Observer, when non-nil, receives accounting events.
	Observer Observer
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 4096
	}
	if c.InteractiveWeight <= 0 {
		c.InteractiveWeight = 4
	}
	if c.Results == nil {
		c.Results = nopSink{}
	}
	if c.Observer == nil {
		c.Observer = nopObserver{}
	}
	return c
}

// Scheduler owns the job ledger, the multi-level queue, and the worker
// pool. All methods are safe for concurrent use.
type Scheduler struct {
	cfg    Config
	obs    Observer
	sink   ResultSink
	warm   WarmCache
	wg     sync.WaitGroup
	nextID atomic.Uint64

	baseCtx    context.Context // parent of every job context
	baseCancel context.CancelFunc

	// slotFree pulses when a queue slot frees up (a worker dequeued a
	// leader, or a queued leader was cancelled), waking one SubmitWait
	// feeder parked on a full queue. Best-effort; feeders also poll.
	slotFree chan struct{}

	mu   sync.Mutex
	cond *sync.Cond // signalled on enqueue and drain
	// draining gates admission only: new submissions get ErrDraining
	// while queued and running jobs keep flowing through the workers.
	// It is reversible (SetDraining) — the cluster gateway drains a
	// shard out of its hash ring, lets in-flight work finish, and may
	// bring the shard back. stopping additionally tells workers to exit
	// once the queues empty; it is set only by Shutdown and is final.
	draining bool
	stopping bool
	// queues hold chain leaders only, per class; queuedN counts every
	// queued job including chain followers.
	queues  [NumPriorities][]*Job
	queuedN [NumPriorities]int
	// rr counts interactive dequeues since the last bulk one, for the
	// weighted pick.
	rr       int
	jobs     map[string]*Job // by id; settled history bounded by MaxJobs
	inflight map[string]*Job // by cache key: queued or running
	retired  []string        // settled job ids, oldest first
	// runEWMA tracks recent per-job service seconds (runCount samples),
	// feeding RetryAfter.
	runEWMA  float64
	runCount uint64
}

// New starts a scheduler and its worker pool. Callers must Shutdown it.
func New(cfg Config) (*Scheduler, error) {
	cfg = cfg.withDefaults()
	if cfg.Run == nil {
		return nil, errors.New("sched: Config.Run is required")
	}
	s := &Scheduler{
		cfg:      cfg,
		obs:      cfg.Observer,
		sink:     cfg.Results,
		warm:     cfg.Warm,
		slotFree: make(chan struct{}, 1),
		jobs:     make(map[string]*Job),
		inflight: make(map[string]*Job),
	}
	s.cond = sync.NewCond(&s.mu)
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Workers returns the worker-pool width.
func (s *Scheduler) Workers() int { return s.cfg.Workers }

// Draining reports whether admission is closed — by SetDraining or by
// Shutdown.
func (s *Scheduler) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// SetDraining opens or closes admission without touching the worker
// pool: while draining, Submit and SubmitGroup return ErrDraining but
// queued and running jobs keep executing to completion. This is the
// cluster drain hook — a shard taken out of the gateway's hash ring
// finishes its in-flight work and can be undrained later. SetDraining
// (false) after Shutdown began is a no-op: shutdown drain is final.
func (s *Scheduler) SetDraining(d bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopping {
		return
	}
	s.draining = d
}

// Shutdown drains the scheduler: admission stops (ErrDraining), queued
// and running jobs are allowed to finish, and the worker pool exits.
// If ctx expires first, every outstanding job context is cancelled —
// simulations abort at their next engine checkpoint — and Shutdown
// waits for the workers before returning ctx.Err(). Safe to call more
// than once.
func (s *Scheduler) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.stopping = true
	s.cond.Broadcast()
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.baseCancel()
		<-done
		return ctx.Err()
	}
}

// RetryAfter estimates how long a rejected class-p client should back
// off: the backlog the new job would sit behind (every queued job in
// classes served at or ahead of p) times the recently observed service
// seconds per job, spread across the pool. Before any job has run, it
// falls back to assuming one second per backlog entry per worker.
// Clamped to [1s, 10m].
func (s *Scheduler) RetryAfter(p Priority) time.Duration {
	s.mu.Lock()
	backlog := 0
	for q := Interactive; q <= p && q < NumPriorities; q++ {
		backlog += s.queuedN[q]
	}
	ewma, samples := s.runEWMA, s.runCount
	s.mu.Unlock()
	workers := float64(s.cfg.Workers)
	var secs float64
	if samples == 0 {
		secs = 1 + float64(backlog)/workers
	} else {
		secs = ewma * float64(backlog+1) / workers
	}
	if secs < 1 {
		secs = 1
	}
	if secs > 600 {
		secs = 600
	}
	return time.Duration(secs * float64(time.Second))
}

// ---------------------------------------------------------------------------
// Worker pool.

// worker drains the queues until Shutdown empties them. A dequeued
// leader may carry a chain of affinity followers; the worker runs them
// back-to-back so each follower restores the snapshot the leader just
// deposited while it is hottest.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		j, ok := s.dequeue()
		if !ok {
			return
		}
		s.runJob(j)
		// The chain is read under the lock: a cancelled queued leader
		// may have promoted a follower, and cancelled followers are
		// skipped inside runJob.
		s.mu.Lock()
		chain := append([]*Job(nil), j.chain...)
		s.mu.Unlock()
		for _, c := range chain {
			s.runJob(c)
		}
	}
}

// dequeue blocks until a leader is available (returning it) or the
// scheduler is draining with empty queues (returning false).
func (s *Scheduler) dequeue() (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if j := s.pickLocked(); j != nil {
			s.pulseSlotFree()
			return j, true
		}
		if s.stopping {
			return nil, false
		}
		s.cond.Wait()
	}
}

// pickLocked pops the next leader under the weighted-priority policy:
// when both classes are waiting, InteractiveWeight interactive leaders
// are served per bulk leader, so bulk work cannot starve interactive
// jobs and interactive bursts cannot starve bulk work either.
func (s *Scheduler) pickLocked() *Job {
	hasI := len(s.queues[Interactive]) > 0
	hasB := len(s.queues[Bulk]) > 0
	var p Priority
	switch {
	case hasI && hasB:
		if s.rr >= s.cfg.InteractiveWeight {
			p, s.rr = Bulk, 0
		} else {
			p = Interactive
			s.rr++
		}
	case hasI:
		p = Interactive
	case hasB:
		p = Bulk
	default:
		return nil
	}
	q := s.queues[p]
	j := q[0]
	q[0] = nil
	s.queues[p] = q[1:]
	return j
}

// pulseSlotFree wakes one feeder parked on a full queue. Callers hold
// s.mu; the send is non-blocking.
func (s *Scheduler) pulseSlotFree() {
	select {
	case s.slotFree <- struct{}{}:
	default:
	}
}

// runJob executes one dequeued job (leader or chain follower). A job
// settled while queued — cancelled explicitly, or its deadline passed,
// or its waiters all disconnected — never occupies a worker.
func (s *Scheduler) runJob(j *Job) {
	s.mu.Lock()
	if j.state != StateQueued {
		// Cancel settled it while it sat in the queue (or in a chain);
		// all accounting happened there.
		s.mu.Unlock()
		return
	}
	if err := j.ctx.Err(); err != nil {
		s.dequeuedLocked(j)
		s.mu.Unlock()
		s.obs.QueuedDelta(-1)
		s.obs.ObserveQueueWait(j.spec.Priority, time.Since(j.created).Seconds())
		s.finish(j, d2m.RunOutput{}, err, 0)
		return
	}
	s.dequeuedLocked(j)
	j.state = StateRunning
	j.started = time.Now()
	s.mu.Unlock()
	s.obs.QueuedDelta(-1)
	s.obs.ObserveQueueWait(j.spec.Priority, j.started.Sub(j.created).Seconds())

	s.obs.RunningDelta(1)
	start := time.Now()
	out, err := s.cfg.Run(j.ctx, d2m.RunSpec{
		Kind:       j.spec.Kind,
		Benchmark:  j.spec.Benchmark,
		Options:    j.spec.Options,
		Replicates: j.spec.Replicates,
	})
	dur := time.Since(start)
	s.obs.RunningDelta(-1)
	s.obs.ObserveRun(dur.Seconds())
	s.finish(j, out, err, dur)
}

// dequeuedLocked maintains the per-class queued-job count as a job
// leaves the queue for a worker.
func (s *Scheduler) dequeuedLocked(j *Job) {
	s.queuedN[j.spec.Priority]--
}

// finish settles a job exactly once: records the outcome, releases the
// in-flight slot so the next identical submission starts fresh,
// publishes a successful result to the sink, and wakes every waiter.
// The sink is fed before done closes, so a restart straight after a
// response never loses the result it served.
func (s *Scheduler) finish(j *Job, out d2m.RunOutput, err error, dur time.Duration) {
	s.mu.Lock()
	// Guarded: an abandoned job's key slot may already belong to a newer
	// job (admission skips coalescing onto cancelled contexts).
	if s.inflight[j.key] == j {
		delete(s.inflight, j.key)
	}
	j.finished = time.Now()
	switch {
	case err == nil:
		j.state = StateDone
		j.result = out.Result
		j.replicated = out.Replicated
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.state = StateCanceled
		j.err = err
	default:
		j.state = StateFailed
		j.err = err
	}
	if dur > 0 {
		s.noteRunLocked(dur)
	}
	s.retireLocked(j)
	st := j.state
	s.mu.Unlock()
	s.obs.JobSettled(st)
	if st == StateDone {
		s.sink.Settle(j.key, j.result, j.replicated)
	}
	j.cancel() // release the deadline timer
	close(j.done)
}

// noteRunLocked folds one observed service time into the EWMA behind
// RetryAfter. Callers hold s.mu.
func (s *Scheduler) noteRunLocked(dur time.Duration) {
	sec := dur.Seconds()
	if s.runCount == 0 {
		s.runEWMA = sec
	} else {
		const alpha = 0.2
		s.runEWMA = alpha*sec + (1-alpha)*s.runEWMA
	}
	s.runCount++
}

// retireLocked bounds the settled-job history: beyond cfg.MaxJobs
// settled jobs, the oldest records vanish from the ledger. Callers
// hold s.mu.
func (s *Scheduler) retireLocked(j *Job) {
	s.retired = append(s.retired, j.id)
	for len(s.retired) > s.cfg.MaxJobs {
		delete(s.jobs, s.retired[0])
		s.retired = s.retired[1:]
	}
}

// newJobLocked builds a fresh queued job for a submission. Callers
// hold s.mu and are responsible for ledger/queue insertion.
func (s *Scheduler) newJobLocked(sub Submission, key string) *Job {
	j := &Job{
		s:        s,
		id:       fmt.Sprintf("j%08d", s.nextID.Add(1)),
		key:      key,
		spec:     sub,
		done:     make(chan struct{}),
		state:    StateQueued,
		created:  time.Now(),
		waiters:  1,
		detached: sub.Detached,
	}
	timeout := sub.Timeout
	if timeout == 0 {
		timeout = s.cfg.DefaultTimeout
	}
	if timeout > 0 {
		j.ctx, j.cancel = context.WithTimeout(s.baseCtx, timeout)
	} else {
		j.ctx, j.cancel = context.WithCancel(s.baseCtx)
	}
	return j
}
