package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"d2m"
	"d2m/internal/api"
)

// newTestServer builds a service with the given config and an HTTP
// front end; both are torn down with the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ts
}

// postRun posts a request body to /v1/run and decodes the response.
func postRun(t *testing.T, ts *httptest.Server, body string) (int, api.JobStatus, http.Header) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/run: %v", err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var st api.JobStatus
	// Error responses carry the error envelope, not a api.JobStatus; tests
	// that care about the envelope decode it themselves.
	if resp.StatusCode < 400 || resp.StatusCode == http.StatusGatewayTimeout ||
		resp.StatusCode == http.StatusInternalServerError {
		if err := json.Unmarshal(raw, &st); err != nil {
			t.Fatalf("decode %q: %v", raw, err)
		}
	}
	return resp.StatusCode, st, resp.Header
}

// stubResult is what stub runners return: distinguishable per request.
func stubResult(kind d2m.Kind, bench string, opt d2m.Options) d2m.Result {
	return d2m.Result{Kind: kind, Benchmark: bench, Cycles: 1000 + opt.Seed}
}

// TestEndToEndMatchesRun posts a real simulation and checks the JSON
// result is byte-identical to what the library (and therefore
// d2msim -json) produces for the same parameters.
func TestEndToEndMatchesRun(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	body := `{"kind":"d2m-ns-r","benchmark":"tpc-c","nodes":2,"warmup":2000,"measure":8000,"seed":7}`
	code, st, _ := postRun(t, ts, body)
	if code != http.StatusOK {
		t.Fatalf("POST = %d, want 200 (%+v)", code, st)
	}
	if st.State != api.JobDone || st.Result == nil {
		t.Fatalf("state = %s, result nil = %v", st.State, st.Result == nil)
	}

	want, err := d2m.Run(context.Background(), d2m.RunSpec{
		Kind: d2m.D2MNSR, Benchmark: "tpc-c",
		Options: d2m.Options{Nodes: 2, Warmup: 2000, Measure: 8000, Seed: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := json.Marshal(st.Result)
	wantJSON, _ := json.Marshal(want.Result)
	if !bytes.Equal(got, wantJSON) {
		t.Errorf("server result differs from d2m.Run:\n got %s\nwant %s", got, wantJSON)
	}
}

// TestCacheHit checks a repeated identical request is served from the
// cache without a second simulation, and that spelling differences
// (kind case/dashes, explicit defaults) do not defeat the content
// address.
func TestCacheHit(t *testing.T) {
	var runs atomic.Int64
	s, ts := newTestServer(t, Config{
		Workers: 1,
		Runner: func(ctx context.Context, kind d2m.Kind, bench string, opt d2m.Options) (d2m.Result, error) {
			runs.Add(1)
			return stubResult(kind, bench, opt), nil
		},
	})
	first := `{"kind":"d2m-fs","benchmark":"canneal","nodes":4}`
	code, st, _ := postRun(t, ts, first)
	if code != http.StatusOK || st.Cached {
		t.Fatalf("first post: code %d cached %v", code, st.Cached)
	}
	// Same simulation, different spelling: kind case, explicit default.
	second := `{"kind":"D2MFS","benchmark":"canneal","nodes":4,"md_scale":1}`
	code, st, _ = postRun(t, ts, second)
	if code != http.StatusOK {
		t.Fatalf("second post: code %d", code)
	}
	if !st.Cached {
		t.Error("second identical request was not served from cache")
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("runner invoked %d times, want 1", got)
	}
	if got := s.Metrics().CacheHits.Load(); got != 1 {
		t.Errorf("cache hits = %d, want 1", got)
	}
}

// TestReplicatedRun checks the replicates field routes a job through
// the Replicator, attaches the aggregate next to the mean-projected
// Result, distinguishes the cache identity from the single-run job,
// and is served — aggregate included — from the cache on repeat.
func TestReplicatedRun(t *testing.T) {
	var runs, reps atomic.Int64
	s, ts := newTestServer(t, Config{
		Workers: 1,
		Runner: func(ctx context.Context, kind d2m.Kind, bench string, opt d2m.Options) (d2m.Result, error) {
			runs.Add(1)
			return stubResult(kind, bench, opt), nil
		},
		Replicator: func(ctx context.Context, kind d2m.Kind, bench string, opt d2m.Options, n int) (d2m.Replicated, error) {
			reps.Add(1)
			return d2m.Replicated{
				Kind: kind, Benchmark: bench, N: n,
				CyclesMean: 1500, CyclesStd: 25,
			}, nil
		},
	})
	body := `{"kind":"d2m-ns","benchmark":"tpc-c","nodes":2,"replicates":4}`
	code, st, _ := postRun(t, ts, body)
	if code != http.StatusOK || st.State != api.JobDone {
		t.Fatalf("POST = %d state %s", code, st.State)
	}
	if st.Replicated == nil || st.Replicated.N != 4 {
		t.Fatalf("replicated aggregate missing or wrong: %+v", st.Replicated)
	}
	if st.Result == nil || st.Result.Cycles != 1500 {
		t.Fatalf("mean-projected result wrong: %+v", st.Result)
	}
	if got := reps.Load(); got != 1 {
		t.Errorf("replicator invoked %d times, want 1", got)
	}
	if got := runs.Load(); got != 0 {
		t.Errorf("runner invoked %d times for a replicated job, want 0", got)
	}

	// Repeat: a cache hit that still carries the aggregate.
	code, st, _ = postRun(t, ts, body)
	if code != http.StatusOK || !st.Cached {
		t.Fatalf("repeat: code %d cached %v", code, st.Cached)
	}
	if st.Replicated == nil || st.Replicated.N != 4 {
		t.Errorf("cached response lost the aggregate: %+v", st.Replicated)
	}
	if got := reps.Load(); got != 1 {
		t.Errorf("replicator invoked %d times after cache hit, want 1", got)
	}

	// replicates:1 means a single run with a distinct cache identity.
	code, st, _ = postRun(t, ts, `{"kind":"d2m-ns","benchmark":"tpc-c","nodes":2,"replicates":1}`)
	if code != http.StatusOK || st.Cached {
		t.Fatalf("single-run request: code %d cached %v", code, st.Cached)
	}
	if st.Replicated != nil {
		t.Errorf("single run carries an aggregate: %+v", st.Replicated)
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("runner invoked %d times, want 1", got)
	}
	if got := s.Metrics().JobsDone.Load(); got != 2 {
		t.Errorf("jobs done = %d, want 2", got)
	}
}

// TestCoalescing fires many concurrent identical requests while the
// simulation is held, then checks exactly one simulation ran and every
// client got the result.
func TestCoalescing(t *testing.T) {
	const clients = 8
	var runs atomic.Int64
	release := make(chan struct{})
	s, ts := newTestServer(t, Config{
		Workers: 2,
		Runner: func(ctx context.Context, kind d2m.Kind, bench string, opt d2m.Options) (d2m.Result, error) {
			runs.Add(1)
			<-release
			return stubResult(kind, bench, opt), nil
		},
	})
	body := `{"kind":"d2m-ns","benchmark":"tpc-c","nodes":2}`
	var wg sync.WaitGroup
	codes := make([]int, clients)
	results := make([]api.JobStatus, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], results[i], _ = postRun(t, ts, body)
		}(i)
	}
	// Every request has passed the cache check once CacheMisses hits
	// the client count; only then is the single simulation released.
	deadline := time.Now().Add(5 * time.Second)
	for s.Metrics().CacheMisses.Load() < clients {
		if time.Now().After(deadline) {
			t.Fatal("timed out waiting for requests to reach admission")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	for i := 0; i < clients; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("client %d: code %d (%+v)", i, codes[i], results[i])
		}
		if results[i].Result == nil || results[i].Result.Cycles != 1000 {
			t.Fatalf("client %d: bad result %+v", i, results[i].Result)
		}
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("runner invoked %d times for %d identical requests, want 1", got, clients)
	}
	if got := s.Metrics().Coalesced.Load(); got != clients-1 {
		t.Errorf("coalesced = %d, want %d", got, clients-1)
	}
}

// TestBackpressure checks the bounded queue rejects overflow with 429
// and a Retry-After hint.
func TestBackpressure(t *testing.T) {
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	s, ts := newTestServer(t, Config{
		Workers:    1,
		QueueDepth: 1,
		Runner: func(ctx context.Context, kind d2m.Kind, bench string, opt d2m.Options) (d2m.Result, error) {
			started <- struct{}{}
			<-release
			return stubResult(kind, bench, opt), nil
		},
	})
	defer close(release)

	// Distinct seeds keep the three requests from coalescing.
	post := func(seed int) (int, http.Header) {
		code, _, hdr := postRun(t, ts, fmt.Sprintf(
			`{"kind":"base-2l","benchmark":"tpc-c","seed":%d,"async":true}`, seed))
		return code, hdr
	}
	if code, _ := post(1); code != http.StatusAccepted {
		t.Fatalf("job 1: code %d, want 202", code)
	}
	<-started // job 1 occupies the only worker
	if code, _ := post(2); code != http.StatusAccepted {
		t.Fatalf("job 2: code %d, want 202", code)
	}
	code, hdr := post(3) // queue slot taken by job 2
	if code != http.StatusTooManyRequests {
		t.Fatalf("job 3: code %d, want 429", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After header")
	}
	if got := s.Metrics().JobsRejected.Load(); got != 1 {
		t.Errorf("rejected = %d, want 1", got)
	}
}

// TestDeadlineCancelFreesWorker posts a job with a 1ms deadline whose
// runner only ends on cancellation, then checks the job reports
// canceled and the (single) worker is free to run the next job.
func TestDeadlineCancelFreesWorker(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Workers: 1,
		Runner: func(ctx context.Context, kind d2m.Kind, bench string, opt d2m.Options) (d2m.Result, error) {
			if opt.Seed == 1 { // the doomed job: runs until its deadline fires
				<-ctx.Done()
				return d2m.Result{}, ctx.Err()
			}
			return stubResult(kind, bench, opt), nil
		},
	})
	code, st, _ := postRun(t, ts, `{"kind":"base-3l","benchmark":"tpc-c","seed":1,"timeout_ms":1}`)
	if code != http.StatusGatewayTimeout || st.State != api.JobCanceled {
		t.Fatalf("doomed job: code %d state %s, want 504/canceled", code, st.State)
	}
	if got := s.Metrics().JobsCanceled.Load(); got != 1 {
		t.Errorf("canceled = %d, want 1", got)
	}
	// The worker must be free again: a normal job completes.
	code, st, _ = postRun(t, ts, `{"kind":"base-3l","benchmark":"tpc-c","seed":2}`)
	if code != http.StatusOK || st.State != api.JobDone {
		t.Fatalf("follow-up job: code %d state %s, want 200/done", code, st.State)
	}
}

// TestClientDisconnectCancels checks that when the only waiting client
// goes away, the job's context is cancelled and the simulation stops.
func TestClientDisconnectCancels(t *testing.T) {
	started := make(chan struct{})
	s, ts := newTestServer(t, Config{
		Workers: 1,
		Runner: func(ctx context.Context, kind d2m.Kind, bench string, opt d2m.Options) (d2m.Result, error) {
			close(started)
			<-ctx.Done()
			return d2m.Result{}, ctx.Err()
		},
	})
	reqCtx, cancelReq := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(reqCtx, "POST", ts.URL+"/v1/run",
		strings.NewReader(`{"kind":"d2m-ns-r","benchmark":"tpc-c"}`))
	errc := make(chan error, 1)
	go func() {
		_, err := ts.Client().Do(req)
		errc <- err
	}()
	<-started   // the simulation is running
	cancelReq() // the client hangs up
	if err := <-errc; err == nil {
		t.Error("expected the aborted request to error")
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Metrics().JobsCanceled.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("job was not cancelled after its only client disconnected")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestGracefulShutdown drains a busy server and checks every admitted
// job finished and post-drain requests are refused.
func TestGracefulShutdown(t *testing.T) {
	const jobs = 4
	s, ts := newTestServer(t, Config{
		Workers: 2,
		Runner: func(ctx context.Context, kind d2m.Kind, bench string, opt d2m.Options) (d2m.Result, error) {
			time.Sleep(20 * time.Millisecond)
			return stubResult(kind, bench, opt), nil
		},
	})
	for i := 0; i < jobs; i++ {
		code, _, _ := postRun(t, ts, fmt.Sprintf(
			`{"kind":"d2m-fs","benchmark":"tpc-c","seed":%d,"async":true}`, i+1))
		if code != http.StatusAccepted {
			t.Fatalf("job %d: code %d", i, code)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if got := s.Metrics().JobsDone.Load(); got != jobs {
		t.Errorf("after drain, done = %d, want %d", got, jobs)
	}
	code, _, _ := postRun(t, ts, `{"kind":"d2m-fs","benchmark":"tpc-c","seed":99}`)
	if code != http.StatusServiceUnavailable {
		t.Errorf("post-drain POST = %d, want 503", code)
	}
}

// TestShutdownDeadline checks an expired drain budget cancels the
// outstanding jobs rather than hanging.
func TestShutdownDeadline(t *testing.T) {
	started := make(chan struct{})
	s, ts := newTestServer(t, Config{
		Workers: 1,
		Runner: func(ctx context.Context, kind d2m.Kind, bench string, opt d2m.Options) (d2m.Result, error) {
			close(started)
			<-ctx.Done()
			return d2m.Result{}, ctx.Err()
		},
	})
	code, _, _ := postRun(t, ts, `{"kind":"d2m-ns","benchmark":"tpc-c","async":true}`)
	if code != http.StatusAccepted {
		t.Fatalf("post: code %d", code)
	}
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Shutdown = %v, want DeadlineExceeded", err)
	}
	if got := s.Metrics().JobsCanceled.Load(); got != 1 {
		t.Errorf("canceled = %d, want 1", got)
	}
}

// TestAsyncJobLifecycle submits async and polls GET /v1/jobs/{id}.
func TestAsyncJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers: 1,
		Runner: func(ctx context.Context, kind d2m.Kind, bench string, opt d2m.Options) (d2m.Result, error) {
			return stubResult(kind, bench, opt), nil
		},
	})
	code, st, _ := postRun(t, ts, `{"kind":"d2m-hybrid","benchmark":"tpc-c","async":true}`)
	if code != http.StatusAccepted || st.ID == "" {
		t.Fatalf("async post: code %d id %q", code, st.ID)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		var cur api.JobStatus
		json.NewDecoder(resp.Body).Decode(&cur)
		resp.Body.Close()
		if cur.State == api.JobDone {
			if cur.Result == nil {
				t.Fatal("done job has no result")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %s", cur.State)
		}
		time.Sleep(time.Millisecond)
	}
	if resp, _ := http.Get(ts.URL + "/v1/jobs/nonesuch"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job id: code %d, want 404", resp.StatusCode)
	}
}

// TestRequestValidation checks malformed requests are rejected with
// 400 through the shared d2m parse helpers.
func TestRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1,
		Runner: func(ctx context.Context, kind d2m.Kind, bench string, opt d2m.Options) (d2m.Result, error) {
			t.Error("runner invoked for an invalid request")
			return d2m.Result{}, nil
		},
	})
	cases := []struct {
		name, body string
		code       api.ErrCode
	}{
		{"malformed json", `{"kind":`, api.ErrInvalidRequest},
		{"unknown field", `{"kind":"d2m-fs","benchmark":"tpc-c","bogus":1}`, api.ErrInvalidRequest},
		{"unknown kind", `{"kind":"d2m-xl","benchmark":"tpc-c"}`, api.ErrInvalidRequest},
		{"unknown benchmark", `{"kind":"d2m-fs","benchmark":"nonesuch"}`, api.ErrUnknownBenchmark},
		{"unknown topology", `{"kind":"d2m-fs","benchmark":"tpc-c","topology":"hypercube"}`, api.ErrInvalidRequest},
		{"unknown placement", `{"kind":"d2m-ns","benchmark":"tpc-c","placement":"random"}`, api.ErrInvalidRequest},
		{"nodes out of range", `{"kind":"d2m-fs","benchmark":"tpc-c","nodes":9}`, api.ErrInvalidRequest},
		{"removed mdscale alias", `{"kind":"d2m-fs","benchmark":"tpc-c","mdscale":3}`, api.ErrInvalidRequest},
		{"bad md_scale", `{"kind":"d2m-fs","benchmark":"tpc-c","md_scale":3}`, api.ErrInvalidRequest},
		{"mdscale next to md_scale", `{"kind":"d2m-fs","benchmark":"tpc-c","md_scale":2,"mdscale":4}`, api.ErrInvalidRequest},
		{"negative measure", `{"kind":"d2m-fs","benchmark":"tpc-c","measure":-5}`, api.ErrInvalidRequest},
		{"negative replicates", `{"kind":"d2m-fs","benchmark":"tpc-c","replicates":-1}`, api.ErrInvalidRequest},
		{"excessive replicates", `{"kind":"d2m-fs","benchmark":"tpc-c","replicates":65}`, api.ErrInvalidRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("code %d, want 400", resp.StatusCode)
			}
			var eb api.ErrorBody
			if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
				t.Fatal(err)
			}
			if eb.Error.Code != tc.code {
				t.Errorf("error code %q, want %q", eb.Error.Code, tc.code)
			}
			if eb.Error.Message == "" {
				t.Error("400 response has no error message")
			}
		})
	}
}

// TestErrorEnvelopeStatuses checks the non-400 error codes map to
// their statuses through the shared envelope.
func TestErrorEnvelopeStatuses(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/v1/jobs/nonesuch")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("code %d, want 404", resp.StatusCode)
	}
	var eb api.ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if eb.Error.Code != api.ErrNotFound {
		t.Errorf("error code %q, want %q", eb.Error.Code, api.ErrNotFound)
	}
}

// TestRunRequestNewFields checks link_bandwidth reaches the simulation
// options and md_scale is accepted as the canonical MDScale spelling.
func TestRunRequestNewFields(t *testing.T) {
	var got d2m.Options
	_, ts := newTestServer(t, Config{Workers: 1,
		Runner: func(ctx context.Context, kind d2m.Kind, bench string, opt d2m.Options) (d2m.Result, error) {
			got = opt
			return stubResult(kind, bench, opt), nil
		},
	})
	code, _, _ := postRun(t, ts,
		`{"kind":"d2m-ns-r","benchmark":"tpc-c","md_scale":2,"link_bandwidth":0.5}`)
	if code != http.StatusOK {
		t.Fatalf("POST = %d, want 200", code)
	}
	if got.MDScale != 2 {
		t.Errorf("MDScale = %d, want 2", got.MDScale)
	}
	if got.LinkBandwidth != 0.5 {
		t.Errorf("LinkBandwidth = %v, want 0.5", got.LinkBandwidth)
	}
	// The retired "mdscale" spelling is rejected with a pointer at the
	// canonical field, not silently accepted or a generic decode error.
	resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(
		`{"kind":"d2m-ns-r","benchmark":"tpc-c","mdscale":2,"link_bandwidth":0.5}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("legacy-spelling request = %d, want 400", resp.StatusCode)
	}
	var eb api.ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if eb.Error.Code != api.ErrInvalidRequest || !strings.Contains(eb.Error.Message, "md_scale") {
		t.Errorf("legacy-spelling error = %+v, want invalid_request naming md_scale", eb.Error)
	}
}

// TestJobsList exercises GET /v1/jobs: newest first, state filter,
// limit/cursor pagination, and result omission.
func TestJobsList(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1,
		Runner: func(ctx context.Context, kind d2m.Kind, bench string, opt d2m.Options) (d2m.Result, error) {
			if opt.Seed == 3 {
				return d2m.Result{}, fmt.Errorf("boom")
			}
			return stubResult(kind, bench, opt), nil
		},
	})
	for seed := 1; seed <= 3; seed++ {
		code, _, _ := postRun(t, ts, fmt.Sprintf(
			`{"kind":"base-2l","benchmark":"tpc-c","seed":%d}`, seed))
		want := http.StatusOK
		if seed == 3 {
			want = http.StatusInternalServerError
		}
		if code != want {
			t.Fatalf("seed %d: code %d, want %d", seed, code, want)
		}
	}
	getList := func(query string) jobListBody {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/jobs" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /v1/jobs%s = %d", query, resp.StatusCode)
		}
		var body jobListBody
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return body
	}

	all := getList("")
	if len(all.Jobs) != 3 || all.NextCursor != "" {
		t.Fatalf("full list: %d jobs, cursor %q", len(all.Jobs), all.NextCursor)
	}
	for i := 1; i < len(all.Jobs); i++ {
		if all.Jobs[i-1].ID <= all.Jobs[i].ID {
			t.Errorf("list not newest first: %q before %q", all.Jobs[i-1].ID, all.Jobs[i].ID)
		}
	}
	for _, j := range all.Jobs {
		if j.Result != nil {
			t.Errorf("list entry %s carries a result payload", j.ID)
		}
	}

	page1 := getList("?limit=2")
	if len(page1.Jobs) != 2 || page1.NextCursor == "" {
		t.Fatalf("page 1: %d jobs, cursor %q", len(page1.Jobs), page1.NextCursor)
	}
	page2 := getList("?limit=2&cursor=" + page1.NextCursor)
	if len(page2.Jobs) != 1 || page2.NextCursor != "" {
		t.Fatalf("page 2: %d jobs, cursor %q", len(page2.Jobs), page2.NextCursor)
	}
	if page2.Jobs[0].ID >= page1.Jobs[1].ID {
		t.Errorf("page 2 job %q not older than page 1 tail %q", page2.Jobs[0].ID, page1.Jobs[1].ID)
	}

	failed := getList("?state=failed")
	if len(failed.Jobs) != 1 || failed.Jobs[0].State != api.JobFailed {
		t.Fatalf("failed filter: %+v", failed.Jobs)
	}

	for _, bad := range []string{"?state=bogus", "?limit=0", "?limit=x"} {
		resp, err := http.Get(ts.URL + "/v1/jobs" + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET /v1/jobs%s = %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestCapabilitiesEndpoint checks the catalogue response on the
// canonical path, and that the /v1/benchmarks alias — deprecated in
// v1.2, stub dropped in v1.6 — is now an ordinary unrouted 404.
func TestCapabilitiesEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	resp, err := http.Get(ts.URL + "/v1/benchmarks")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /v1/benchmarks = %d, want plain 404 (stub removed in v1.6)", resp.StatusCode)
	}

	for _, path := range []string{"/v1/capabilities"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var body api.Capabilities
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if body.APIRevision != api.Revision {
			t.Errorf("%s: api_revision %q, want %q", path, body.APIRevision, api.Revision)
		}
		if body.APIRevision != "v1.8" {
			t.Errorf("%s: api_revision %q, want v1.8", path, body.APIRevision)
		}
		wantEngines := []string{d2m.EngineScalar, d2m.EngineVector}
		if !reflect.DeepEqual(body.Engines, wantEngines) {
			t.Errorf("%s: engines %v, want %v", path, body.Engines, wantEngines)
		}
		if body.MaxLanes < 2 {
			t.Errorf("%s: max_lanes = %d, want >= 2", path, body.MaxLanes)
		}
		// The catalog's paper suites plus the Vector extras suite
		// advertised only through capabilities (API v1.7).
		if len(body.Suites) != len(d2m.Suites())+1 {
			t.Errorf("%s: suites = %d, want %d", path, len(body.Suites), len(d2m.Suites())+1)
		}
		if len(body.Suites[d2m.SuiteVector]) == 0 {
			t.Errorf("%s: capabilities missing Vector extras suite", path)
		}
		// The advertised kinds must match the registry-derived list
		// exactly — this is the wire-side guard against kind-list drift.
		if !reflect.DeepEqual(body.Kinds, api.KindNames()) {
			t.Errorf("%s: kinds %v, want registry list %v", path, body.Kinds, api.KindNames())
		}
		for _, want := range []string{"D2M-NS-R", "D2M-Adaptive", "D2M-LevelPred"} {
			found := false
			for _, k := range body.Kinds {
				if k == want {
					found = true
				}
			}
			if !found {
				t.Errorf("%s: kinds %v missing %s", path, body.Kinds, want)
			}
		}
		if len(body.Topologies) == 0 || len(body.Placements) == 0 {
			t.Errorf("%s: empty topology/placement lists", path)
		}
		if len(body.Kernels) == 0 {
			t.Errorf("%s: empty kernel list", path)
		}
		if body.MaxReplicates != api.MaxReplicates {
			t.Errorf("%s: max_replicates = %d, want %d", path, body.MaxReplicates, api.MaxReplicates)
		}
	}
}

// TestMetricsAndHealthz exercises the observability endpoints.
func TestMetricsAndHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1,
		Runner: func(ctx context.Context, kind d2m.Kind, bench string, opt d2m.Options) (d2m.Result, error) {
			return stubResult(kind, bench, opt), nil
		},
	})
	if code, _, _ := postRun(t, ts, `{"kind":"base-2l","benchmark":"tpc-c"}`); code != http.StatusOK {
		t.Fatalf("post: %d", code)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(raw)
	for _, want := range []string{
		"d2m_jobs_done_total 1",
		"d2m_cache_misses_total 1",
		"d2m_run_seconds_bucket{le=\"+Inf\"} 1",
		"d2m_queue_wait_seconds_count{class=\"interactive\"} 1",
		"d2m_queue_wait_seconds_count{class=\"bulk\"} 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d, want 200", resp.StatusCode)
	}
}

// TestResultCacheLRU checks the bound and eviction order of the cache.
func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(2)
	c.put("a", d2m.Result{Cycles: 1}, nil)
	c.put("b", d2m.Result{Cycles: 2}, nil)
	if _, _, ok := c.get("a"); !ok { // refresh a; b is now LRU
		t.Fatal("a missing")
	}
	c.put("c", d2m.Result{Cycles: 3}, nil)
	if _, _, ok := c.get("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, _, ok := c.get("a"); !ok {
		t.Error("a should have survived (recently used)")
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
}

// TestCacheKeyCanonical checks the content address ignores spelling
// and handling knobs but distinguishes simulation parameters.
func TestCacheKeyCanonical(t *testing.T) {
	base := d2m.Options{Nodes: 4}.WithDefaults()
	k1 := cacheKey(d2m.D2MNSR, "tpc-c", d2m.Options{Nodes: 4}, 0)
	k2 := cacheKey(d2m.D2MNSR, "tpc-c", base, 0)
	if k1 != k2 {
		t.Error("defaulted and explicit options hash differently")
	}
	if cacheKey(d2m.D2MNSR, "tpc-c", base, 0) == cacheKey(d2m.D2MNS, "tpc-c", base, 0) {
		t.Error("different kinds share a key")
	}
	seeded := base
	seeded.Seed = 1
	if cacheKey(d2m.D2MNSR, "tpc-c", base, 0) == cacheKey(d2m.D2MNSR, "tpc-c", seeded, 0) {
		t.Error("different seeds share a key")
	}
	if cacheKey(d2m.D2MNSR, "tpc-c", base, 0) == cacheKey(d2m.D2MNSR, "tpc-c", base, 8) {
		t.Error("replicated and single-run jobs share a key")
	}
}
