package service

import (
	"context"
	"encoding/json"
	"sync"
	"testing"

	"d2m"
)

// warmRun adapts d2m.Run to the (kind, bench, opt, cache) shape these
// tests use; a nil cache runs without warm-state reuse.
func warmRun(ctx context.Context, kind d2m.Kind, bench string, opt d2m.Options, wc d2m.WarmCache) (d2m.Result, error) {
	out, err := d2m.Run(ctx, d2m.RunSpec{Kind: kind, Benchmark: bench, Options: opt, Warm: wc})
	return out.Result, err
}

// TestSnapshotCacheConcurrent hammers the snapshot LRU from concurrent
// workers under a budget small enough to force evictions: goroutines
// race to populate, restore, and evict snapshots across four warm
// identities, and every produced result must still byte-match a fresh
// run. Run with -race, this is the data-race check on the cache and on
// concurrent restores from one shared snapshot.
func TestSnapshotCacheConcurrent(t *testing.T) {
	ctx := context.Background()
	const seeds = 4
	mkOpt := func(seed uint64) d2m.Options {
		return d2m.Options{Nodes: 2, Warmup: 1500, Measure: 1500, Seed: seed}
	}

	// Fresh reference results, and the size of one snapshot (measured
	// through a throwaway cache) to size the real budget at two
	// entries — four identities over two slots guarantees evictions.
	fresh := make([]string, seeds)
	for seed := uint64(0); seed < seeds; seed++ {
		res, err := warmRun(ctx, d2m.D2MNSR, "tpc-c", mkOpt(seed), nil)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := json.Marshal(res)
		fresh[seed] = string(raw)
	}
	// The gated cache captures on a key's second miss, so probe twice.
	probe := newSnapshotCache(1<<40, &Metrics{})
	for i := 0; i < 2; i++ {
		if _, err := warmRun(ctx, d2m.D2MNSR, "tpc-c", mkOpt(0), probe); err != nil {
			t.Fatal(err)
		}
	}
	snapSize := probe.metrics.SnapshotBytes.Load()
	if snapSize <= 0 {
		t.Fatalf("probe snapshot size = %d", snapSize)
	}

	m := &Metrics{}
	sc := newSnapshotCache(2*snapSize+snapSize/2, m)
	var wg sync.WaitGroup
	const workers, rounds = 8, 6
	errs := make(chan error, workers*rounds)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				seed := uint64((g + i) % seeds)
				res, err := warmRun(ctx, d2m.D2MNSR, "tpc-c", mkOpt(seed), sc)
				if err != nil {
					errs <- err
					return
				}
				raw, _ := json.Marshal(res)
				if string(raw) != fresh[seed] {
					t.Errorf("seed %d: warm result differs from fresh run", seed)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if got := m.SnapshotHits.Load() + m.SnapshotMisses.Load(); got != workers*rounds {
		t.Errorf("hits+misses = %d, want %d", got, workers*rounds)
	}
	if m.SnapshotEvictions.Load() == 0 {
		t.Error("no evictions under a two-entry budget with four identities")
	}

	// The cache's internal accounting must balance: tracked bytes
	// within budget and equal to the sum over resident entries.
	sc.mu.Lock()
	var sum int64
	for el := sc.order.Front(); el != nil; el = el.Next() {
		sum += el.Value.(*d2m.WarmSnapshot).SizeBytes()
	}
	bytes, budget, entries := sc.bytes, sc.budget, sc.order.Len()
	sc.mu.Unlock()
	if bytes != sum {
		t.Errorf("tracked bytes %d != sum of entries %d", bytes, sum)
	}
	if bytes > budget {
		t.Errorf("tracked bytes %d exceed budget %d", bytes, budget)
	}
	if got := m.SnapshotEntries.Load(); got != int64(entries) {
		t.Errorf("entries gauge %d != resident entries %d", got, entries)
	}
}

// TestSnapshotCacheOversize checks a snapshot larger than the whole
// budget is rejected without evicting anything.
func TestSnapshotCacheOversize(t *testing.T) {
	ctx := context.Background()
	big := newSnapshotCache(1<<40, &Metrics{})
	opt := d2m.Options{Nodes: 2, Warmup: 1000, Measure: 1000}
	for i := 0; i < 2; i++ {
		if _, err := warmRun(ctx, d2m.Base2L, "tpc-c", opt, big); err != nil {
			t.Fatal(err)
		}
	}
	size := big.metrics.SnapshotBytes.Load()

	m := &Metrics{}
	sc := newSnapshotCache(size-1, m)
	for i := 0; i < 2; i++ {
		if _, err := warmRun(ctx, d2m.Base2L, "tpc-c", opt, sc); err != nil {
			t.Fatal(err)
		}
	}
	if got := sc.order.Len(); got != 0 {
		t.Errorf("oversize snapshot was stored (%d entries)", got)
	}
	if got := m.SnapshotEvictions.Load(); got != 0 {
		t.Errorf("oversize snapshot evicted %d entries", got)
	}
}

// TestServerSnapshotDisabled checks SnapshotMemBytes < 0 turns
// snapshot reuse off without handing d2m a typed-nil WarmCache.
func TestServerSnapshotDisabled(t *testing.T) {
	s, err := New(Config{Workers: 1, SnapshotMemBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	if s.snapshots != nil {
		t.Error("snapshot cache built despite negative budget")
	}
	if wc := s.warmCache(); wc != nil {
		t.Errorf("warmCache() = %#v, want untyped nil", wc)
	}
}
