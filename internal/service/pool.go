package service

import (
	"context"
	"errors"
	"time"

	"d2m"
)

// This file is the worker-pool half of the server: a fixed number of
// worker goroutines drain the bounded job queue, run each job under its
// own context, and settle it exactly once. Admission (and therefore
// backpressure) lives in server.go; the pool only consumes.

// worker drains the queue until it is closed by Shutdown. A dequeued
// job may carry a chain of followers sharing its warm identity; the
// worker runs them back-to-back so the followers restore the snapshot
// the leader deposited while it is hottest.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
		for _, c := range j.chain {
			s.runJob(c)
		}
	}
}

// runJob executes one dequeued job. A job whose deadline already
// passed while queued (or whose waiters all disconnected) is settled
// as canceled without starting the simulation, so a dead job never
// occupies a worker.
func (s *Server) runJob(j *job) {
	s.metrics.Queued.Add(-1)
	// A queue slot just freed: wake one sweep feeder parked on a full
	// queue (best-effort; feeders also poll).
	select {
	case s.slotFree <- struct{}{}:
	default:
	}
	s.metrics.QueueWait.Observe(time.Since(j.created).Seconds())
	if err := j.ctx.Err(); err != nil {
		s.finish(j, d2m.Result{}, nil, err)
		return
	}
	s.mu.Lock()
	j.state = JobRunning
	j.started = time.Now()
	s.mu.Unlock()

	s.metrics.Running.Add(1)
	start := time.Now()
	var (
		res d2m.Result
		rep *d2m.Replicated
		err error
	)
	if j.reps >= 2 {
		var agg d2m.Replicated
		agg, err = s.replicator(j.ctx, j.kind, j.bench, j.opt, j.reps)
		if err == nil {
			rep = &agg
			res = meanResult(agg)
		}
	} else {
		res, err = s.runner(j.ctx, j.kind, j.bench, j.opt)
	}
	s.metrics.Running.Add(-1)
	s.metrics.RunLatency.Observe(time.Since(start).Seconds())
	s.finish(j, res, rep, err)
}

// meanResult projects a replicate aggregate onto the single-run Result
// shape, so replicated jobs flow through the same cache, store, and
// sweep plumbing as single runs. Count-style fields that have no
// meaningful mean stay zero.
func meanResult(agg d2m.Replicated) d2m.Result {
	suite, _ := d2m.SuiteOf(agg.Benchmark)
	return d2m.Result{
		Kind:            agg.Kind,
		Benchmark:       agg.Benchmark,
		Suite:           suite,
		Cycles:          uint64(agg.CyclesMean),
		MsgsPerKI:       agg.MsgsPerKIMean,
		EDP:             agg.EDPMean,
		MissRatioD:      agg.MissDMean,
		AvgMissLatency:  agg.MissLatMean,
		PrivateMissFrac: agg.PrivateMean,
	}
}

// finish settles a job: records the outcome, publishes a successful
// result to the cache, releases the in-flight slot so the next
// identical request starts fresh, and wakes every waiter.
func (s *Server) finish(j *job, res d2m.Result, rep *d2m.Replicated, err error) {
	s.mu.Lock()
	delete(s.inflight, j.key)
	j.finished = time.Now()
	switch {
	case err == nil:
		j.state = JobDone
		j.result = res
		j.replicated = rep
		s.cache.put(j.key, res, rep)
		s.metrics.JobsDone.Add(1)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.state = JobCanceled
		j.err = err
		s.metrics.JobsCanceled.Add(1)
	default:
		j.state = JobFailed
		j.err = err
		s.metrics.JobsFailed.Add(1)
	}
	s.retireLocked(j)
	s.mu.Unlock()
	// Journal successful results before waking waiters, so a restart
	// straight after a response never loses the result it served.
	if j.state == JobDone && s.store != nil {
		if aerr := s.store.append(storeRecord{
			Key: j.key, Kind: j.kind.String(), Benchmark: j.bench,
			Result: res, Replicated: rep,
		}); aerr != nil {
			s.metrics.StoreErrors.Add(1)
		} else {
			s.metrics.StoreAppended.Add(1)
		}
	}
	j.cancel() // release the deadline timer
	close(j.done)
}

// retireLocked bounds the finished-job history: beyond cfg.MaxJobs
// settled jobs, the oldest records vanish from GET /v1/jobs/{id}.
// Callers hold s.mu.
func (s *Server) retireLocked(j *job) {
	s.retired = append(s.retired, j.id)
	for len(s.retired) > s.cfg.MaxJobs {
		delete(s.jobs, s.retired[0])
		s.retired = s.retired[1:]
	}
}
