package service

import (
	"bytes"
	"context"
	"d2m/internal/api"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"d2m"
)

// postSweep posts a body to /v1/sweeps and decodes the status (error
// responses are left to the caller's envelope decoding).
func postSweep(t *testing.T, ts *httptest.Server, body string) (int, SweepStatus) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/sweeps: %v", err)
	}
	defer resp.Body.Close()
	var st SweepStatus
	if resp.StatusCode < 400 {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decode sweep status: %v", err)
		}
	}
	return resp.StatusCode, st
}

// getSweep fetches GET /v1/sweeps/{id}.
func getSweep(t *testing.T, ts *httptest.Server, id string) SweepStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/sweeps/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/sweeps/%s = %d", id, resp.StatusCode)
	}
	var st SweepStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitSweep polls until the sweep leaves the running state.
func waitSweep(t *testing.T, ts *httptest.Server, id string, timeout time.Duration) SweepStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st := getSweep(t, ts, id)
		if st.State != SweepRunning {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep %s still running after %s: %+v", id, timeout, st)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestSweepEndToEndMatchesPerRun runs a real 2-kinds x 3-benchmarks
// grid through POST /v1/sweeps and checks (a) every cell landed in the
// shared result cache, so the equivalent per-cell POST /v1/run is a
// cache hit, and (b) the sweep's aggregate is byte-identical to
// d2m.SummarizeSweep over those per-cell results.
func TestSweepEndToEndMatchesPerRun(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 4})
	body := `{"kinds":["base-2l","d2m-ns-r"],"benchmarks":["tpc-c","canneal","facesim"],` +
		`"nodes":2,"warmup":2000,"measure":8000}`
	code, st := postSweep(t, ts, body)
	if code != http.StatusAccepted || st.ID == "" {
		t.Fatalf("POST /v1/sweeps = %d id %q", code, st.ID)
	}
	if st.Total != 6 {
		t.Fatalf("total = %d, want 6", st.Total)
	}
	final := waitSweep(t, ts, st.ID, 60*time.Second)
	if final.State != SweepDone || final.Done != 6 || final.Failed != 0 {
		t.Fatalf("final sweep: %+v", final)
	}
	if final.Summary == nil || final.Summary.Baseline != "Base-2L" {
		t.Fatalf("summary: %+v", final.Summary)
	}
	if got := s.Metrics().JobsDone.Load(); got != 6 {
		t.Errorf("jobs done = %d, want 6 (each cell simulated exactly once)", got)
	}

	// Replay the same grid cell by cell through POST /v1/run: every cell
	// must be a cache hit (same content address, same simulation).
	spec := d2m.SweepSpec{
		Kinds: []string{"base-2l", "d2m-ns-r"}, Benchmarks: []string{"tpc-c", "canneal", "facesim"},
		Nodes: 2, Warmup: 2000, Measure: 8000,
	}
	cells, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	results := make([]*d2m.Result, len(cells))
	for i, cell := range cells {
		req := api.RunRequest{
			Kind: cell.Kind.String(), Benchmark: cell.Benchmark,
			Nodes: cell.Options.Nodes, Warmup: cell.Options.Warmup, Measure: cell.Options.Measure,
			Seed: cell.Options.Seed, MDScale: cell.Options.MDScale,
			Bypass: cell.Options.Bypass, Prefetch: cell.Options.Prefetch,
			Topology: cell.Options.Topology, Placement: cell.Options.Placement,
			LinkBandwidth: cell.Options.LinkBandwidth,
		}
		b, _ := json.Marshal(req)
		code, jst, _ := postRun(t, ts, string(b))
		if code != http.StatusOK || !jst.Cached || jst.Result == nil {
			t.Fatalf("cell %d (%s/%s): code %d cached %v", i, req.Kind, req.Benchmark, code, jst.Cached)
		}
		results[i] = jst.Result
	}

	want := d2m.SummarizeSweep(d2m.Base2L, cells, results)
	gotJSON, _ := json.Marshal(final.Summary.Kinds)
	wantJSON, _ := json.Marshal(want)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Errorf("sweep summary differs from per-cell aggregation:\n got %s\nwant %s", gotJSON, wantJSON)
	}
	for _, row := range final.Summary.Kinds {
		if row.Cells != 3 {
			t.Errorf("kind %s: %d cells, want 3", row.Kind, row.Cells)
		}
		if row.Kind == "Base-2L" && row.SpeedupPct != 0 {
			t.Errorf("baseline speedup = %v, want 0", row.SpeedupPct)
		}
	}
}

// TestSweepReplicates checks a sweep with replicates routes every cell
// through the Replicator, and that its cells share cache identity with
// equivalently replicated POST /v1/run requests, not with single runs.
func TestSweepReplicates(t *testing.T) {
	var runs, reps atomic.Int64
	_, ts := newTestServer(t, Config{
		Workers: 2,
		Runner: func(ctx context.Context, kind d2m.Kind, bench string, opt d2m.Options) (d2m.Result, error) {
			runs.Add(1)
			return stubResult(kind, bench, opt), nil
		},
		Replicator: func(ctx context.Context, kind d2m.Kind, bench string, opt d2m.Options, n int) (d2m.Replicated, error) {
			reps.Add(1)
			return d2m.Replicated{Kind: kind, Benchmark: bench, N: n, CyclesMean: 2000}, nil
		},
	})
	body := `{"kinds":["base-2l","d2m-ns"],"benchmarks":["tpc-c"],"nodes":2,"replicates":3}`
	code, st := postSweep(t, ts, body)
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/sweeps = %d", code)
	}
	st = waitSweep(t, ts, st.ID, 5*time.Second)
	if st.State != SweepDone || st.Done != 2 || st.Failed != 0 {
		t.Fatalf("sweep settled %+v", st)
	}
	if got := reps.Load(); got != 2 {
		t.Errorf("replicator invoked %d times, want 2", got)
	}
	if got := runs.Load(); got != 0 {
		t.Errorf("runner invoked %d times for a replicated sweep, want 0", got)
	}
	// The matching replicated run is a cache hit with its aggregate...
	code, run, _ := postRun(t, ts, `{"kind":"d2m-ns","benchmark":"tpc-c","nodes":2,"replicates":3}`)
	if code != http.StatusOK || !run.Cached || run.Replicated == nil || run.Replicated.N != 3 {
		t.Errorf("replicated run after sweep: code %d cached %v replicated %+v",
			code, run.Cached, run.Replicated)
	}
	// ...while the single-run spelling is a distinct simulation.
	code, run, _ = postRun(t, ts, `{"kind":"d2m-ns","benchmark":"tpc-c","nodes":2}`)
	if code != http.StatusOK || run.Cached {
		t.Errorf("single run after sweep: code %d cached %v, want a fresh job", code, run.Cached)
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("runner invoked %d times, want 1", got)
	}
}

// TestSweepCancellationFreesWorkers deletes a sweep whose cells block
// until cancelled, then checks the pool's only worker is free again
// and the sweep settled as canceled.
func TestSweepCancellationFreesWorkers(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Workers: 1,
		Runner: func(ctx context.Context, kind d2m.Kind, bench string, opt d2m.Options) (d2m.Result, error) {
			if kind == d2m.Base2L { // sweep cells: run until cancelled
				<-ctx.Done()
				return d2m.Result{}, ctx.Err()
			}
			return stubResult(kind, bench, opt), nil
		},
	})
	code, st := postSweep(t, ts,
		`{"kinds":["base-2l"],"benchmarks":["tpc-c","canneal","facesim"]}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/sweeps = %d", code)
	}
	// Wait for the first cell to occupy the worker.
	deadline := time.Now().Add(5 * time.Second)
	for s.Metrics().Running.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("no cell reached the worker")
		}
		time.Sleep(time.Millisecond)
	}

	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/sweeps/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE = %d", resp.StatusCode)
	}

	final := waitSweep(t, ts, st.ID, 5*time.Second)
	if final.State != SweepCanceled || final.Canceled == 0 || final.Done != 0 {
		t.Fatalf("after DELETE: %+v", final)
	}
	if got := s.Metrics().SweepsCanceled.Load(); got != 1 {
		t.Errorf("sweeps canceled = %d, want 1", got)
	}

	// The worker must be free: an ordinary run (different kind, so the
	// stub returns immediately) completes.
	code2, jst, _ := postRun(t, ts, `{"kind":"d2m-fs","benchmark":"tpc-c"}`)
	if code2 != http.StatusOK || jst.State != api.JobDone {
		t.Fatalf("follow-up run after cancel: code %d state %s", code2, jst.State)
	}

	// Deleting a settled sweep is a no-op that returns its status.
	req, _ = http.NewRequest("DELETE", ts.URL+"/v1/sweeps/"+st.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var again SweepStatus
	json.NewDecoder(resp.Body).Decode(&again)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || again.State != SweepCanceled {
		t.Errorf("second DELETE: code %d state %s", resp.StatusCode, again.State)
	}
}

// TestSweepOverloadQueues runs a sweep several times larger than the
// queue on a one-worker pool: the feeder must park and drip cells in
// as slots free, completing the sweep without a single rejection.
func TestSweepOverloadQueues(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Workers: 1, QueueDepth: 1,
		Runner: func(ctx context.Context, kind d2m.Kind, bench string, opt d2m.Options) (d2m.Result, error) {
			time.Sleep(time.Millisecond)
			return stubResult(kind, bench, opt), nil
		},
	})
	code, st := postSweep(t, ts,
		`{"kinds":["base-2l","d2m-ns"],"benchmarks":["tpc-c","canneal","facesim"]}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/sweeps = %d", code)
	}
	final := waitSweep(t, ts, st.ID, 30*time.Second)
	if final.State != SweepDone || final.Done != 6 || final.Failed != 0 {
		t.Fatalf("final: %+v", final)
	}
	if got := s.Metrics().JobsRejected.Load(); got != 0 {
		t.Errorf("rejected = %d, want 0 (sweeps queue, they don't error)", got)
	}
}

// TestSweepRestartResume kills a server mid-sweep and restarts it with
// the same store path: the completed cells must be served from the
// replayed store (visible in /metrics) and only the unfinished ones
// simulated again.
func TestSweepRestartResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	sweepBody := `{"kinds":["base-2l","d2m-ns-r"],"benchmarks":["tpc-c","canneal","facesim"]}`

	// Phase 1: tpc-c and canneal cells finish instantly; facesim cells
	// block until the shutdown deadline cancels them.
	s1, err := New(Config{
		Workers: 2, StorePath: path,
		Runner: func(ctx context.Context, kind d2m.Kind, bench string, opt d2m.Options) (d2m.Result, error) {
			if bench == "facesim" {
				<-ctx.Done()
				return d2m.Result{}, ctx.Err()
			}
			return stubResult(kind, bench, opt), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	code, _ := postSweep(t, ts1, sweepBody)
	if code != http.StatusAccepted {
		t.Fatalf("phase 1 POST /v1/sweeps = %d", code)
	}
	deadline := time.Now().Add(10 * time.Second)
	for s1.Metrics().StoreAppended.Load() != 4 {
		if time.Now().After(deadline) {
			t.Fatalf("phase 1: %d cells persisted, want 4", s1.Metrics().StoreAppended.Load())
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	s1.Shutdown(ctx) // deadline expires: the two blocked facesim cells are cancelled
	cancel()
	ts1.Close()

	// Phase 2: same store path, unblocked runner. The resubmitted sweep
	// must resume: four cells cached from the store, two simulated.
	var runs atomic.Int64
	s2, err := New(Config{
		Workers: 2, StorePath: path,
		Runner: func(ctx context.Context, kind d2m.Kind, bench string, opt d2m.Options) (d2m.Result, error) {
			runs.Add(1)
			if bench == "facesim" {
				return stubResult(kind, bench, opt), nil
			}
			t.Errorf("persisted cell %s/%s was simulated again", kind, bench)
			return stubResult(kind, bench, opt), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(func() {
		ts2.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s2.Shutdown(ctx)
	})
	select {
	case <-s2.Ready(): // journal replay is asynchronous since v1.4
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	if got := s2.Metrics().StoreLoaded.Load(); got != 4 {
		t.Fatalf("store loaded = %d, want 4", got)
	}
	code, st := postSweep(t, ts2, sweepBody)
	if code != http.StatusAccepted {
		t.Fatalf("phase 2 POST /v1/sweeps = %d", code)
	}
	final := waitSweep(t, ts2, st.ID, 10*time.Second)
	if final.State != SweepDone || final.Done != 6 || final.Cached != 4 {
		t.Fatalf("resumed sweep: %+v", final)
	}
	if got := runs.Load(); got != 2 {
		t.Errorf("phase 2 simulations = %d, want 2 (only the unfinished cells)", got)
	}
	if final.Summary == nil || len(final.Summary.Kinds) != 2 {
		t.Fatalf("resumed summary: %+v", final.Summary)
	}

	// The acceptance check reads the cell-run counters off /metrics.
	resp, err := http.Get(ts2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw := new(bytes.Buffer)
	raw.ReadFrom(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"d2m_store_loaded_total 4",
		"d2m_sweep_cells_cached_total 4",
		"d2m_jobs_done_total 2",
	} {
		if !strings.Contains(raw.String(), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestSweepValidation checks the request-level error envelope on
// POST /v1/sweeps and 404s for unknown sweep ids.
func TestSweepValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1,
		Runner: func(ctx context.Context, kind d2m.Kind, bench string, opt d2m.Options) (d2m.Result, error) {
			t.Error("runner invoked for an invalid sweep")
			return d2m.Result{}, nil
		},
	})
	cases := []struct {
		name, body string
		code       api.ErrCode
	}{
		{"no kinds", `{"kinds":[],"benchmarks":["tpc-c"]}`, api.ErrInvalidRequest},
		{"no benchmarks", `{"kinds":["base-2l"],"benchmarks":[]}`, api.ErrInvalidRequest},
		{"unknown kind", `{"kinds":["d2m-xl"],"benchmarks":["tpc-c"]}`, api.ErrInvalidRequest},
		{"unknown benchmark", `{"kinds":["base-2l"],"benchmarks":["nonesuch"]}`, api.ErrUnknownBenchmark},
		{"unknown field", `{"kinds":["base-2l"],"benchmarks":["tpc-c"],"bogus":1}`, api.ErrInvalidRequest},
		{"baseline outside kinds", `{"kinds":["d2m-ns"],"benchmarks":["tpc-c"],"baseline":"base-2l"}`, api.ErrInvalidRequest},
		{"over cell cap", `{"kinds":["base-2l","d2m-ns"],"benchmarks":["tpc-c"],"seeds":[1,2,3],"max_cells":4}`, api.ErrInvalidRequest},
		{"bad option axis", `{"kinds":["base-2l"],"benchmarks":["tpc-c"],"md_scales":[3]}`, api.ErrInvalidRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("code %d, want 400", resp.StatusCode)
			}
			var eb api.ErrorBody
			if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
				t.Fatal(err)
			}
			if eb.Error.Code != tc.code {
				t.Errorf("error code %q, want %q", eb.Error.Code, tc.code)
			}
		})
	}

	for _, method := range []string{"GET", "DELETE"} {
		req, _ := http.NewRequest(method, ts.URL+"/v1/sweeps/nonesuch", nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var eb api.ErrorBody
		json.NewDecoder(resp.Body).Decode(&eb)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound || eb.Error.Code != api.ErrNotFound {
			t.Errorf("%s unknown sweep: code %d envelope %q", method, resp.StatusCode, eb.Error.Code)
		}
	}
}

// TestSweepSharesCacheWithRuns pre-runs one cell through POST /v1/run
// and checks the sweep picks it up from the cache instead of
// simulating it again.
func TestSweepSharesCacheWithRuns(t *testing.T) {
	var runs atomic.Int64
	s, ts := newTestServer(t, Config{Workers: 1,
		Runner: func(ctx context.Context, kind d2m.Kind, bench string, opt d2m.Options) (d2m.Result, error) {
			runs.Add(1)
			return stubResult(kind, bench, opt), nil
		},
	})
	if code, _, _ := postRun(t, ts, `{"kind":"base-2l","benchmark":"tpc-c"}`); code != http.StatusOK {
		t.Fatalf("warm-up run failed: %d", code)
	}
	code, st := postSweep(t, ts, `{"kinds":["base-2l"],"benchmarks":["tpc-c","canneal"]}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/sweeps = %d", code)
	}
	final := waitSweep(t, ts, st.ID, 10*time.Second)
	if final.State != SweepDone || final.Done != 2 || final.Cached != 1 {
		t.Fatalf("final: %+v", final)
	}
	if got := runs.Load(); got != 2 { // warm-up + the one uncached cell
		t.Errorf("runner invoked %d times, want 2", got)
	}
	if got := s.Metrics().SweepCellsCached.Load(); got != 1 {
		t.Errorf("cached cells = %d, want 1", got)
	}
}

// TestSweepDrainingRefused checks POST /v1/sweeps during a drain gets
// the draining envelope, like POST /v1/run.
func TestSweepDrainingRefused(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json",
		strings.NewReader(`{"kinds":["base-2l"],"benchmarks":["tpc-c"]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var eb api.ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable || eb.Error.Code != api.ErrDraining {
		t.Errorf("draining sweep POST: code %d envelope %q", resp.StatusCode, eb.Error.Code)
	}
}

// TestSweepETAProgress checks the in-flight status report: done counts
// climb and an ETA appears once a cell latency has been observed.
func TestSweepETAProgress(t *testing.T) {
	release := make(chan struct{})
	var gate atomic.Int64
	_, ts := newTestServer(t, Config{Workers: 1,
		Runner: func(ctx context.Context, kind d2m.Kind, bench string, opt d2m.Options) (d2m.Result, error) {
			if gate.Add(1) > 2 { // hold the third cell so the sweep stays running
				select {
				case <-release:
				case <-ctx.Done():
				}
			}
			return stubResult(kind, bench, opt), nil
		},
	})
	defer close(release)
	code, st := postSweep(t, ts,
		`{"kinds":["base-2l"],"benchmarks":["tpc-c","canneal","facesim"]}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/sweeps = %d", code)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		cur := getSweep(t, ts, st.ID)
		if cur.State == SweepRunning && cur.Done == 2 {
			if cur.ETAMS <= 0 {
				t.Errorf("running sweep with %d done cells has no ETA: %+v", cur.Done, cur)
			}
			if cur.ElapsedMS <= 0 {
				t.Errorf("running sweep has no elapsed time: %+v", cur)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep never reached 2 done cells while running: %+v", cur)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSweepSpecTimeout checks timeout_ms applies per cell: a sweep of
// never-finishing cells settles with every cell canceled.
func TestSweepSpecTimeout(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2,
		Runner: func(ctx context.Context, kind d2m.Kind, bench string, opt d2m.Options) (d2m.Result, error) {
			<-ctx.Done()
			return d2m.Result{}, ctx.Err()
		},
	})
	code, st := postSweep(t, ts,
		`{"kinds":["base-2l"],"benchmarks":["tpc-c","canneal"],"timeout_ms":5}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/sweeps = %d", code)
	}
	final := waitSweep(t, ts, st.ID, 10*time.Second)
	// Cells timed out individually; the sweep itself ran to completion.
	if final.State != SweepDone || final.Done != 0 || final.Canceled != 2 {
		t.Fatalf("final: %+v", final)
	}
}
