package service

import (
	"net/http"

	"d2m/internal/api"
	"d2m/internal/service/sched"
)

// Live result streaming (API v1.6). GET /v1/jobs/{id} and
// GET /v1/sweeps/{id} answer an Accept: text/event-stream request with
// a push stream instead of a poll snapshot. Event ids are dense and
// deterministic per resource — a job emits at most queued(1),
// running(2), terminal(3); a sweep emits one "cell" event per settled
// cell in settle order (ids 1..N) and a final "sweep" event (id N+1)
// — so a client that reconnects with Last-Event-ID resumes exactly
// where the broken stream stopped, and the union of events any client
// sees is independent of when it connected. Every data line is
// json.Marshal of the same value the polling path returns, which is
// what lets the cluster gateway relay shard streams byte-for-byte.

// streamJob pushes a job's state transitions. The channels behind the
// waits are the scheduler's own lifecycle signals: Started closes when
// a worker claims the job, Done when it settles (jobs canceled while
// queued settle without ever starting, hence every wait watches both).
func (s *Server) streamJob(w http.ResponseWriter, r *http.Request, j *sched.Job) {
	out, ok := api.NewSSEWriter(w)
	if !ok {
		writeJSON(w, http.StatusOK, jobStatus(j.Info()))
		return
	}
	last := api.LastEventID(r)
	if last < 1 {
		// Event 1: the queued snapshot — skipped when the job is
		// already past it.
		select {
		case <-j.Started():
		case <-j.Done():
		default:
			if err := out.Event(1, "state", jobStatus(j.Info())); err != nil {
				return
			}
		}
	}
	if last < 2 {
		select {
		case <-j.Done():
		case <-j.Started():
			select {
			case <-j.Done():
			default:
				if err := out.Event(2, "state", jobStatus(j.Info())); err != nil {
					return
				}
			}
		case <-r.Context().Done():
			return
		}
	}
	select {
	case <-j.Done():
	case <-r.Context().Done():
		return
	}
	out.Event(3, "state", jobStatus(j.Info()))
}

// SweepCellEvent is the data payload of a sweep stream's "cell" event:
// which grid point settled, and its state rendered exactly as the
// ?cells=1 slot would be. Exported so the cluster gateway emits the
// identical shape when it replays a fleet sweep's merged event log.
type SweepCellEvent struct {
	Index int             `json:"index"`
	Cell  SweepCellStatus `json:"cell"`
}

// streamSweep replays the sweep's event log from the client's cursor
// and then follows the live tail. The log (sweep.events) is
// append-only and the broadcast channel is swapped under the same
// lock, so the snapshot-then-wait loop can never miss an append.
func (s *Server) streamSweep(w http.ResponseWriter, r *http.Request, sw *sweep) {
	out, ok := api.NewSSEWriter(w)
	if !ok {
		writeJSON(w, http.StatusOK, sw.status(s.cfg.Workers))
		return
	}
	last := api.LastEventID(r)
	for {
		sw.mu.Lock()
		n := len(sw.events)
		settled := sw.state != SweepRunning
		ch := sw.eventsCh
		if last > n {
			last = n // stale cursor from some other sweep's stream
		}
		pending := append([]int(nil), sw.events[last:n]...)
		sw.mu.Unlock()

		for _, i := range pending {
			last++
			ev := SweepCellEvent{Index: i, Cell: sw.cellStatus(i)}
			if err := out.Event(last, "cell", ev); err != nil {
				return
			}
		}
		if settled {
			// Terminal event: the full status, summary included.
			out.Event(n+1, "sweep", sw.status(s.cfg.Workers))
			return
		}
		select {
		case <-ch:
		case <-sw.doneCh:
		case <-r.Context().Done():
			return
		}
	}
}
