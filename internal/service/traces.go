package service

import (
	"net/http"
	"strings"

	"d2m"
	"d2m/internal/api"
)

// Trace ingestion endpoints (API v1.7). Uploaded access traces join the
// process-wide trace library (d2m.SetTraceDir, installed from
// Config.TraceDir at New) and become runnable benchmarks named
// "trace:<id>" on every job and sweep endpoint. Ids are content-derived
// (SHA-256 prefix), so uploads are idempotent and replicas ingesting
// the same file agree on the name — the property the cluster gateway's
// upload fan-out relies on.

// maxTraceBodyBytes bounds one trace upload. Traces are bulk data, not
// control-plane requests, so the limit is far above maxBodyBytes; the
// ingest path spools to disk, so a large upload costs memory only in
// stream-copy buffers.
const maxTraceBodyBytes = 1 << 30

// handleTraceUpload is POST /v1/traces: ingest a binary (v1/v2) trace,
// or a textual one when the request says Content-Type: text/csv. The
// optional ?name= labels the trace. Responds 200 with the TraceInfo
// (including re-uploads, which are idempotent no-ops).
func (s *Server) handleTraceUpload(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.admitTenant(w, r, 1); !ok {
		return
	}
	if !d2m.TraceDirSet() {
		api.WriteErr(w, api.Errorf(api.ErrInvalidRequest,
			"trace ingestion is disabled on this server (no -trace-dir)"))
		return
	}
	body := http.MaxBytesReader(w, r.Body, maxTraceBodyBytes)
	name := r.URL.Query().Get("name")
	var (
		info d2m.TraceInfo
		err  error
	)
	if ct := r.Header.Get("Content-Type"); strings.HasPrefix(ct, "text/csv") {
		info, err = d2m.ImportTraceCSV(body, name)
	} else {
		info, err = d2m.ImportTrace(body, name)
	}
	if err != nil {
		s.metrics.TracesRejected.Add(1)
		api.WriteErr(w, api.Errorf(api.ErrInvalidRequest, "%v", err))
		return
	}
	s.metrics.TracesUploaded.Add(1)
	writeJSON(w, http.StatusOK, info)
}

// handleTraceList is GET /v1/traces.
func (s *Server) handleTraceList(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.authTenant(w, r); !ok {
		return
	}
	traces := d2m.ListTraces()
	if traces == nil {
		traces = []d2m.TraceInfo{}
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"traces": traces})
}

// handleTraceGet is GET /v1/traces/{id}.
func (s *Server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.authTenant(w, r); !ok {
		return
	}
	info, ok := d2m.TraceByID(r.PathValue("id"))
	if !ok {
		api.WriteErr(w, api.Errorf(api.ErrNotFound, "unknown trace %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// handleTraceRaw is GET /v1/traces/{id}/raw: the stored binary file,
// byte-exact — what the gateway relays and external tools download.
func (s *Server) handleTraceRaw(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.authTenant(w, r); !ok {
		return
	}
	path, ok := d2m.TracePath(r.PathValue("id"))
	if !ok {
		api.WriteErr(w, api.Errorf(api.ErrNotFound, "unknown trace %q", r.PathValue("id")))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	http.ServeFile(w, r, path)
}
