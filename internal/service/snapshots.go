package service

import (
	"container/list"
	"sync"

	"d2m"
)

// snapshotCache is the server's d2m.WarmCache: a byte-budget LRU of
// warm-state snapshots keyed by warm identity (d2m.WarmKey). Unlike
// the result cache, whose entries are a few hundred bytes each and
// bounded by count, a snapshot carries the full post-warmup table
// state of a hierarchy — hundreds of kilobytes to a few megabytes —
// so the bound here is a byte budget: inserts evict from the cold end
// until the total fits, and a snapshot larger than the whole budget
// is rejected outright rather than flushing everything else.
type snapshotCache struct {
	mu      sync.Mutex
	budget  int64
	bytes   int64
	order   *list.List // front = most recently used; values are *d2m.WarmSnapshot
	byKey   map[string]*list.Element
	missed  map[string]int // warm keys that have missed, and how often
	metrics *Metrics
}

func newSnapshotCache(budget int64, m *Metrics) *snapshotCache {
	return &snapshotCache{
		budget:  budget,
		order:   list.New(),
		byKey:   make(map[string]*list.Element),
		missed:  make(map[string]int),
		metrics: m,
	}
}

// missedKeysCap bounds the miss-tracking map; far above any realistic
// working set, and the map is cleared (losing only capture heuristics,
// never correctness) when a key-churning client fills it.
const missedKeysCap = 65536

// WantWarm is the capture gate (see the root package's WarmCache):
// capturing a snapshot costs a deep copy of the whole hierarchy, so it
// is only worth paying when the warm key is actually shared. A key
// qualifies once it has missed before — the second identical-warmup
// run captures, the third restores — or immediately when group
// admission announced sharing through NoteShared.
func (c *snapshotCache) WantWarm(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.byKey[key]; ok {
		return false // already stored; the next run will hit
	}
	if len(c.missed) >= missedKeysCap {
		c.missed = make(map[string]int)
	}
	c.missed[key]++
	return c.missed[key] >= 2
}

// NoteShared records out-of-band knowledge that key is about to be
// reused (group admission chained several runs sharing it), so the
// first run already captures. It implements sched.WarmCache.
func (c *snapshotCache) NoteShared(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.missed) >= missedKeysCap {
		c.missed = make(map[string]int)
	}
	c.missed[key]++
}

// GetWarm returns the snapshot for key (refreshing its recency) or nil.
func (c *snapshotCache) GetWarm(key string) *d2m.WarmSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.metrics.SnapshotMisses.Add(1)
		return nil
	}
	c.metrics.SnapshotHits.Add(1)
	c.order.MoveToFront(el)
	return el.Value.(*d2m.WarmSnapshot)
}

// PutWarm stores a snapshot, evicting least-recently-used entries
// until the byte budget holds. Snapshots are immutable, so an entry
// already present under the same key is simply refreshed.
func (c *snapshotCache) PutWarm(snap *d2m.WarmSnapshot) {
	size := snap.SizeBytes()
	if size > c.budget {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[snap.Key()]; ok {
		c.order.MoveToFront(el)
		return
	}
	c.byKey[snap.Key()] = c.order.PushFront(snap)
	c.bytes += size
	for c.bytes > c.budget {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		old := oldest.Value.(*d2m.WarmSnapshot)
		delete(c.byKey, old.Key())
		c.bytes -= old.SizeBytes()
		c.metrics.SnapshotEvictions.Add(1)
	}
	c.metrics.SnapshotBytes.Store(c.bytes)
	c.metrics.SnapshotEntries.Store(int64(c.order.Len()))
}
