package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

// benchNumbers collects the jobs/sec measured by
// BenchmarkServiceThroughput; TestMain writes them to the file named
// by D2M_BENCH_OUT (the repo's BENCH_service.json) so later PRs can
// track service-throughput regressions:
//
//	D2M_BENCH_OUT=BENCH_service.json go test -run '^$' -bench BenchmarkServiceThroughput ./internal/service
var benchNumbers = struct {
	sync.Mutex
	m map[string]float64
}{m: map[string]float64{}}

func TestMain(m *testing.M) {
	code := m.Run()
	if out := os.Getenv("D2M_BENCH_OUT"); out != "" && len(benchNumbers.m) > 0 {
		payload := map[string]interface{}{
			"benchmark":    "BenchmarkServiceThroughput",
			"workload":     benchWorkload,
			"jobs_per_sec": benchNumbers.m,
		}
		data, _ := json.MarshalIndent(payload, "", "  ")
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			code = 1
		}
	}
	os.Exit(code)
}

// benchWorkload is the small simulation the throughput benchmark
// serves: real engine, real benchmark, sized so a cold job is tens of
// milliseconds.
const benchWorkload = `{"kind":"d2m-ns-r","benchmark":"tpc-c","nodes":2,"warmup":2000,"measure":8000}`

// BenchmarkServiceThroughput measures end-to-end jobs/sec through the
// HTTP stack on a small real simulation, cold (every job a distinct
// seed, so every job simulates) and cached (one hot request repeated).
func BenchmarkServiceThroughput(b *testing.B) {
	for _, mode := range []string{"cold", "cached"} {
		b.Run(mode, func(b *testing.B) {
			s, err := New(Config{})
			if err != nil {
				b.Fatal(err)
			}
			ts := httptest.NewServer(s.Handler())
			defer func() {
				ts.Close()
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				defer cancel()
				s.Shutdown(ctx)
			}()
			post := func(i int) {
				body := benchWorkload
				if mode == "cold" {
					body = strings.TrimSuffix(body, "}") + fmt.Sprintf(`,"seed":%d}`, i+1)
				}
				resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
				if err != nil {
					b.Fatal(err)
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					b.Fatalf("POST = %d", resp.StatusCode)
				}
			}
			post(-1) // warm the pool (and, for cached mode, the cache; seed 0)
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				post(i)
			}
			elapsed := time.Since(start)
			jobsPerSec := float64(b.N) / elapsed.Seconds()
			b.ReportMetric(jobsPerSec, "jobs/s")
			benchNumbers.Lock()
			benchNumbers.m[mode] = jobsPerSec
			benchNumbers.Unlock()
		})
	}

	// cold_snapshot: every job is a cache miss (distinct link_bandwidth,
	// therefore a distinct cache key) but shares one warm identity, so
	// after the first job the server restores the post-warmup state
	// instead of simulating the warmup-heavy prefix. This is the
	// replicate/sweep-cell shape the snapshot cache exists for.
	b.Run("cold_snapshot", func(b *testing.B) {
		s, err := New(Config{})
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		defer func() {
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			s.Shutdown(ctx)
		}()
		post := func(i int) {
			body := fmt.Sprintf(snapshotBenchWorkload, 0.001+float64(i+2)*1e-9)
			resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("POST = %d", resp.StatusCode)
			}
		}
		post(-1) // deposit the warm snapshot
		b.ResetTimer()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			post(i)
		}
		elapsed := time.Since(start)
		jobsPerSec := float64(b.N) / elapsed.Seconds()
		b.ReportMetric(jobsPerSec, "jobs/s")
		benchNumbers.Lock()
		benchNumbers.m["cold_snapshot"] = jobsPerSec
		benchNumbers.Unlock()
	})

	// cold_nosnapshot: the cold_snapshot workload with snapshot reuse
	// disabled — the denominator of the snapshot speedup, kept in the
	// journal so the gain is readable from the numbers alone.
	b.Run("cold_nosnapshot", func(b *testing.B) {
		s, err := New(Config{SnapshotMemBytes: -1})
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		defer func() {
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			s.Shutdown(ctx)
		}()
		post := func(i int) {
			body := fmt.Sprintf(snapshotBenchWorkload, 0.001+float64(i+2)*1e-9)
			resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("POST = %d", resp.StatusCode)
			}
		}
		post(-1)
		b.ResetTimer()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			post(i)
		}
		elapsed := time.Since(start)
		jobsPerSec := float64(b.N) / elapsed.Seconds()
		b.ReportMetric(jobsPerSec, "jobs/s")
		benchNumbers.Lock()
		benchNumbers.m["cold_nosnapshot"] = jobsPerSec
		benchNumbers.Unlock()
	})

	// sweep_cold / sweep_cold_scalar: a measure-heavy 16-cell sweep along
	// a link-bandwidth axis (one warm identity per sweep, a fresh seed
	// per iteration so nothing is cached). The vector engine coalesces
	// the whole axis into one lane group — one simulation serves all 8
	// cells — while the scalar series pays one measurement phase per
	// cell; their ratio is the lane-group speedup the journal tracks.
	for _, eng := range []string{"", "scalar"} {
		name := "sweep_cold"
		if eng != "" {
			name += "_" + eng
		}
		b.Run(name, func(b *testing.B) {
			s, err := New(Config{})
			if err != nil {
				b.Fatal(err)
			}
			ts := httptest.NewServer(s.Handler())
			defer func() {
				ts.Close()
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				defer cancel()
				s.Shutdown(ctx)
			}()
			const cells = 16 // the default lane width, so one group serves the whole axis
			runSweep := func(seed int) {
				var lbs strings.Builder
				for i := 0; i < cells; i++ {
					if i > 0 {
						lbs.WriteString(",")
					}
					fmt.Fprintf(&lbs, "%.9f", 0.001+float64(i+2)*1e-9)
				}
				body := fmt.Sprintf(`{"kinds":["d2m-ns-r"],"benchmarks":["tpc-c"],
					"nodes":2,"warmup":2000,"measure":16000,"seeds":[%d],
					"link_bandwidths":[%s],"engine":%q}`, seed, lbs.String(), eng)
				resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(body))
				if err != nil {
					b.Fatal(err)
				}
				var st SweepStatus
				if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
					b.Fatal(err)
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusAccepted {
					b.Fatalf("POST /v1/sweeps = %d", resp.StatusCode)
				}
				deadline := time.Now().Add(2 * time.Minute)
				for {
					resp, err := http.Get(ts.URL + "/v1/sweeps/" + st.ID)
					if err != nil {
						b.Fatal(err)
					}
					if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
						b.Fatal(err)
					}
					resp.Body.Close()
					if st.State != SweepRunning {
						break
					}
					if time.Now().After(deadline) {
						b.Fatalf("sweep %s did not finish", st.ID)
					}
					time.Sleep(2 * time.Millisecond)
				}
				if st.State != SweepDone || st.Failed != 0 {
					b.Fatalf("sweep = %s (failed %d)", st.State, st.Failed)
				}
			}
			runSweep(1_000_000) // warm the pool outside the timed region
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				runSweep(i + 1)
			}
			elapsed := time.Since(start)
			cellsPerSec := float64(b.N*cells) / elapsed.Seconds()
			b.ReportMetric(cellsPerSec, "cells/s")
			benchNumbers.Lock()
			benchNumbers.m[name] = cellsPerSec
			benchNumbers.Unlock()
		})
	}

	// batch_cached: the hot request repeated through POST /v1/batch in
	// groups of 64, against the per-request "cached" series above —
	// what batching saves in HTTP and encoding overhead per result.
	b.Run("batch_cached", func(b *testing.B) {
		s, err := New(Config{})
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		defer func() {
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			s.Shutdown(ctx)
		}()
		// Populate the cache once.
		resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(benchWorkload))
		if err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		const group = 64
		var batch strings.Builder
		batch.WriteString(`{"runs":[`)
		for i := 0; i < group; i++ {
			if i > 0 {
				batch.WriteString(",")
			}
			batch.WriteString(benchWorkload)
		}
		batch.WriteString(`]}`)
		body := batch.String()
		b.ResetTimer()
		start := time.Now()
		for done := 0; done < b.N; done += group {
			resp, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("POST /v1/batch = %d", resp.StatusCode)
			}
		}
		elapsed := time.Since(start)
		runs := ((b.N + group - 1) / group) * group
		runsPerSec := float64(runs) / elapsed.Seconds()
		b.ReportMetric(runsPerSec, "runs/s")
		benchNumbers.Lock()
		benchNumbers.m["batch_cached"] = runsPerSec
		benchNumbers.Unlock()
	})
}

// snapshotBenchWorkload is the warmup-heavy simulation behind the
// cold_snapshot series: the warmup dominates the measurement window,
// and the varying link_bandwidth (a measurement-side parameter outside
// the warm identity) makes every job a distinct cache entry.
const snapshotBenchWorkload = `{"kind":"d2m-ns-r","benchmark":"tpc-c","nodes":2,"warmup":20000,"measure":4000,"link_bandwidth":%.9f}`
