package service

import (
	"fmt"
	"net/http"
)

// This file is the v1 error surface: every handler reports failures
// through the same envelope
//
//	{"error": {"code": "...", "message": "..."}}
//
// The pre-envelope top-level "message" duplicate was carried for one
// release and removed in API v1.1. Codes map one-to-one to HTTP
// statuses so clients can switch on either.

// ErrCode is a machine-readable error category.
type ErrCode string

const (
	ErrInvalidRequest   ErrCode = "invalid_request"   // 400: malformed body or parameters
	ErrUnknownBenchmark ErrCode = "unknown_benchmark" // 400: benchmark not in the catalog
	ErrNotFound         ErrCode = "not_found"         // 404: unknown job or sweep id
	ErrConflict         ErrCode = "conflict"          // 409: job already settled
	ErrOverloaded       ErrCode = "overloaded"        // 429: job queue full, retry later
	ErrDraining         ErrCode = "draining"          // 503: server shutting down
	ErrInternal         ErrCode = "internal"          // 500: unexpected failure
)

// httpStatus maps a code to its status line.
func (c ErrCode) httpStatus() int {
	switch c {
	case ErrInvalidRequest, ErrUnknownBenchmark:
		return http.StatusBadRequest
	case ErrNotFound:
		return http.StatusNotFound
	case ErrConflict:
		return http.StatusConflict
	case ErrOverloaded:
		return http.StatusTooManyRequests
	case ErrDraining:
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// apiError is an error with a wire code; handlers surface any other
// error type as ErrInternal.
type apiError struct {
	Code    ErrCode
	Message string
}

func (e *apiError) Error() string { return e.Message }

func apiErrorf(code ErrCode, format string, args ...interface{}) *apiError {
	return &apiError{Code: code, Message: fmt.Sprintf(format, args...)}
}

// ErrorInfo is the structured half of the envelope.
type ErrorInfo struct {
	Code    ErrCode `json:"code"`
	Message string  `json:"message"`
}

// ErrorBody is the JSON error envelope. Exported so the cluster
// gateway can decode a shard's error responses and re-emit them.
type ErrorBody struct {
	Error ErrorInfo `json:"error"`
}

// writeError renders err through the envelope at its mapped status.
func writeError(w http.ResponseWriter, err error) {
	ae, ok := err.(*apiError)
	if !ok {
		ae = &apiError{Code: ErrInternal, Message: err.Error()}
	}
	writeJSON(w, ae.Code.httpStatus(), ErrorBody{
		Error: ErrorInfo{Code: ae.Code, Message: ae.Message},
	})
}

// WriteError renders an error envelope with the given code at its
// mapped HTTP status. Exported for the cluster gateway, which speaks
// the same wire format as the shards it fronts.
func WriteError(w http.ResponseWriter, code ErrCode, format string, args ...interface{}) {
	writeError(w, apiErrorf(code, format, args...))
}

// WriteJSON renders v as indented JSON at the given status; the
// exported face of the internal helper, for the cluster gateway.
func WriteJSON(w http.ResponseWriter, code int, v interface{}) {
	writeJSON(w, code, v)
}

// HTTPStatus maps an error code to its HTTP status line.
func (c ErrCode) HTTPStatus() int { return c.httpStatus() }

// ErrorCode extracts the wire code from an error produced by this
// package's validation helpers (Normalize, ExpandSweep); any other
// error reads as ErrInternal. Exported for the cluster gateway, which
// validates requests with the same helpers before forwarding.
func ErrorCode(err error) ErrCode {
	if ae, ok := err.(*apiError); ok {
		return ae.Code
	}
	return ErrInternal
}
