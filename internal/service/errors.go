package service

import (
	"net/http"

	"d2m/internal/api"
)

// The v1 error surface — the {"error": {"code", "message"}} envelope
// and its code-to-status mapping — is defined once in internal/api and
// shared with the cluster gateway. These aliases keep this package's
// exported names (and its internal shorthand) stable.

// ErrCode is a machine-readable error category; see api.ErrCode.
type ErrCode = api.ErrCode

const (
	ErrInvalidRequest   = api.ErrInvalidRequest
	ErrUnknownBenchmark = api.ErrUnknownBenchmark
	ErrNotFound         = api.ErrNotFound
	ErrConflict         = api.ErrConflict
	ErrOverloaded       = api.ErrOverloaded
	ErrDraining         = api.ErrDraining
	ErrInternal         = api.ErrInternal
)

// apiError is the coded error the handlers throw; see api.Error.
type apiError = api.Error

// apiErrorf builds a coded error from a format string.
func apiErrorf(code ErrCode, format string, args ...interface{}) *apiError {
	return api.Errorf(code, format, args...)
}

// ErrorInfo is the structured half of the envelope; see api.ErrorInfo.
type ErrorInfo = api.ErrorInfo

// ErrorBody is the JSON error envelope; see api.ErrorBody.
type ErrorBody = api.ErrorBody

// writeError renders err through the envelope at its mapped status.
func writeError(w http.ResponseWriter, err error) {
	api.WriteErr(w, err)
}

// WriteError renders an error envelope with the given code at its
// mapped HTTP status.
func WriteError(w http.ResponseWriter, code ErrCode, format string, args ...interface{}) {
	api.WriteError(w, code, format, args...)
}

// WriteJSON renders v as indented JSON at the given status.
func WriteJSON(w http.ResponseWriter, code int, v interface{}) {
	api.WriteJSON(w, code, v)
}

// ErrorCode extracts the wire code from an error produced by the
// validation helpers (Normalize, ExpandSweep); any other error reads
// as ErrInternal.
func ErrorCode(err error) ErrCode {
	return api.ErrorCode(err)
}
