package service

import (
	"container/list"
	"sync"

	"d2m"
)

// resultCache is a bounded LRU of completed simulation results, keyed
// by the content address of the request (cacheKey). A Result is a few
// hundred bytes of counters, so even the default capacity is cheap;
// the bound exists so a seed-sweeping client cannot grow the server
// without limit.
type resultCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used; values are *cacheEntry
	byKey map[string]*list.Element
}

type cacheEntry struct {
	key string
	res d2m.Result
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:   capacity,
		order: list.New(),
		byKey: make(map[string]*list.Element, capacity),
	}
}

// get returns the cached result for key and refreshes its recency.
func (c *resultCache) get(key string) (d2m.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return d2m.Result{}, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// put stores a result, evicting the least recently used entry when the
// cache is full.
func (c *resultCache) put(key string, res d2m.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	c.byKey[key] = c.order.PushFront(&cacheEntry{key: key, res: res})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
	}
}

// len reports the number of cached results.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
