package service

import (
	"container/list"
	"sync"

	"d2m"
	"d2m/internal/service/sched"
)

// cacheKey is the content address of a simulation: the hash of the
// canonical (kind, benchmark, defaulted Options, replicates) tuple,
// computed by the scheduler (sched.CacheKey) so the transport, the
// sweep orchestrator, and tests all agree with the admission pipeline.
func cacheKey(kind d2m.Kind, bench string, opt d2m.Options, reps int) string {
	return sched.CacheKey(kind, bench, opt, reps)
}

// resultCache is a bounded LRU of completed simulation results, keyed
// by the content address of the request (cacheKey). A Result is a few
// hundred bytes of counters, so even the default capacity is cheap;
// the bound exists so a seed-sweeping client cannot grow the server
// without limit.
type resultCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used; values are *cacheEntry
	byKey map[string]*list.Element
}

type cacheEntry struct {
	key string
	res d2m.Result
	rep *d2m.Replicated // non-nil for replicated jobs
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:   capacity,
		order: list.New(),
		byKey: make(map[string]*list.Element, capacity),
	}
}

// get returns the cached result for key (plus the replicate aggregate
// for replicated jobs) and refreshes its recency.
func (c *resultCache) get(key string) (d2m.Result, *d2m.Replicated, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return d2m.Result{}, nil, false
	}
	c.order.MoveToFront(el)
	ent := el.Value.(*cacheEntry)
	return ent.res, ent.rep, true
}

// put stores a result, evicting the least recently used entry when the
// cache is full. rep is nil for single-run jobs.
func (c *resultCache) put(key string, res d2m.Result, rep *d2m.Replicated) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		ent := el.Value.(*cacheEntry)
		ent.res, ent.rep = res, rep
		c.order.MoveToFront(el)
		return
	}
	c.byKey[key] = c.order.PushFront(&cacheEntry{key: key, res: res, rep: rep})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
	}
}

// len reports the number of cached results.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
