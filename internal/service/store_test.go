package service

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"d2m"
)

// TestStoreRoundTrip appends records, closes the journal, and checks a
// reopen replays them in order.
func TestStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	recs, err := ReplayJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh store replayed %d records", len(recs))
	}
	st, err := openResultStore(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		err := st.append(StoreRecord{
			Key: string(rune('a' + i)), Kind: "Base-2L", Benchmark: "tpc-c",
			Result: d2m.Result{Cycles: uint64(i + 1)},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := st.close(); err != nil {
		t.Fatal(err)
	}
	if err := st.append(StoreRecord{Key: "x"}); err != os.ErrClosed {
		t.Errorf("append after close = %v, want ErrClosed", err)
	}

	recs, err = ReplayJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("replayed %d records, want 3", len(recs))
	}
	for i, rec := range recs {
		if rec.Key != string(rune('a'+i)) || rec.Result.Cycles != uint64(i+1) {
			t.Errorf("record %d = %+v", i, rec)
		}
	}
}

// TestStoreTornTail checks a crash mid-append (a truncated final line)
// costs only that line: the replay stops at the last intact record and
// the journal stays usable.
func TestStoreTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	intact := `{"key":"k1","kind":"Base-2L","benchmark":"tpc-c","result":{}}` + "\n" +
		`{"key":"k2","kind":"D2M-NS","benchmark":"canneal","result":{}}` + "\n"
	torn := intact + `{"key":"k3","kind":"D2M-` // crash mid-write
	if err := os.WriteFile(path, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := ReplayJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Key != "k1" || recs[1].Key != "k2" {
		t.Fatalf("torn-tail replay = %+v, want the 2 intact records", recs)
	}
	// The journal stays usable for appends after the torn tail.
	st, err := openResultStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.close()
}

// TestStoreBlankAndKeylessLines checks blank lines are skipped but a
// keyless record (corruption that still parses) ends the replay.
func TestStoreBlankAndKeylessLines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	data := `{"key":"k1","kind":"Base-2L","benchmark":"tpc-c","result":{}}` + "\n\n" +
		`{"key":"k2","kind":"D2M-NS","benchmark":"canneal","result":{}}` + "\n" +
		`{"kind":"no-key","benchmark":"fft","result":{}}` + "\n" +
		`{"key":"k4","kind":"D2M-FS","benchmark":"fft","result":{}}` + "\n"
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := ReplayJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[1].Key != "k2" {
		t.Fatalf("replay = %+v, want k1 and k2 only", recs)
	}
}

// TestStoreBadPath checks New surfaces an unusable store path as an
// error instead of silently running without persistence.
func TestStoreBadPath(t *testing.T) {
	if _, err := New(Config{StorePath: filepath.Join(t.TempDir(), "no", "such", "dir", "s.jsonl")}); err == nil {
		t.Fatal("New accepted an unwritable store path")
	}
}

// TestRunResultsPersistAcrossRestart checks plain POST /v1/run results
// are journaled and served from the cache by a restarted server.
func TestRunResultsPersistAcrossRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	body := `{"kind":"d2m-ns-r","benchmark":"tpc-c","seed":7}`

	s1, err := New(Config{Workers: 1, StorePath: path,
		Runner: func(ctx context.Context, kind d2m.Kind, bench string, opt d2m.Options) (d2m.Result, error) {
			return stubResult(kind, bench, opt), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	code, st, _ := postRun(t, ts1, body)
	if code != http.StatusOK || st.Result == nil {
		t.Fatalf("phase 1 run: code %d", code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	cancel()
	ts1.Close()

	s2, err := New(Config{Workers: 1, StorePath: path,
		Runner: func(ctx context.Context, kind d2m.Kind, bench string, opt d2m.Options) (d2m.Result, error) {
			t.Error("restarted server re-ran a persisted simulation")
			return d2m.Result{}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(func() {
		ts2.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s2.Shutdown(ctx)
	})
	select {
	case <-s2.Ready(): // journal replay is asynchronous since v1.4
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	if got := s2.Metrics().StoreLoaded.Load(); got != 1 {
		t.Fatalf("store loaded = %d, want 1", got)
	}
	code, st, _ = postRun(t, ts2, body)
	if code != http.StatusOK || !st.Cached || st.Result == nil {
		t.Fatalf("phase 2 run: code %d cached %v", code, st.Cached)
	}
	if st.Result.Cycles != 1007 { // stubResult: 1000 + seed
		t.Errorf("restored result cycles = %d, want 1007", st.Result.Cycles)
	}
}
