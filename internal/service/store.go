package service

import (
	"bufio"
	"encoding/json"
	"os"
	"sync"

	"d2m"
)

// resultStore is the persistence layer under the result cache: an
// append-only JSONL journal of completed simulations, one record per
// line, keyed by the canonical cache key. The server appends each
// successful result as it settles and replays the whole journal into
// the LRU at startup, so completed cells of a sweep survive a restart
// and a resubmitted sweep resumes instead of recomputing. Duplicate
// keys are harmless (the last line wins on replay), and a torn final
// line — a crash mid-append — stops the replay at the last intact
// record rather than failing it.
//
// In cluster mode each shard owns one journal and the gateway merges
// every shard's journal into its own cache on replay (ReplayJournal is
// exported for that path), so a fleet restart resumes from the union
// of what any shard completed.
type resultStore struct {
	mu   sync.Mutex
	path string
	f    *os.File
}

// StoreRecord is one journal line. Replicated is present only for
// replicated jobs; older journals without the field replay cleanly.
// Exported so the cluster gateway can merge shard journals.
type StoreRecord struct {
	Key        string          `json:"key"`
	Kind       string          `json:"kind"`
	Benchmark  string          `json:"benchmark"`
	Result     d2m.Result      `json:"result"`
	Replicated *d2m.Replicated `json:"replicated,omitempty"`
}

// openResultStore opens (creating if absent) the journal at path for
// appending. Replay is a separate step (ReplayJournal) so the server
// can fail fast on an unwritable path while loading records in the
// background.
func openResultStore(path string) (*resultStore, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &resultStore{path: path, f: f}, nil
}

// ReplayJournal reads every intact record of the JSONL journal at
// path, oldest first; a missing file is an empty journal, and the
// first malformed line ends the replay (it can only be the torn tail
// of a crashed append).
func ReplayJournal(path string) ([]StoreRecord, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var recs []StoreRecord
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec StoreRecord
		if err := json.Unmarshal(line, &rec); err != nil || rec.Key == "" {
			break
		}
		recs = append(recs, rec)
	}
	return recs, sc.Err()
}

// append journals one completed simulation.
func (st *resultStore) append(rec StoreRecord) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.f == nil {
		return os.ErrClosed
	}
	_, err = st.f.Write(b)
	return err
}

// close flushes and closes the journal; later appends fail cleanly.
func (st *resultStore) close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.f == nil {
		return nil
	}
	err := st.f.Close()
	st.f = nil
	return err
}
