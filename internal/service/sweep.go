package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"d2m"
	"d2m/internal/api"
	"d2m/internal/service/sched"
)

// This file is the sweep orchestrator: POST /v1/sweeps expands a
// parameter grid (d2m.SweepSpec) into cells and pushes them through
// the same admission path as POST /v1/run — result-cache lookup,
// single-flight coalescing, bounded queue — so overlapping sweeps and
// repeat runs share simulations. A full queue parks the feeder until a
// worker frees a slot (sweeps degrade by waiting, never by erroring),
// DELETE cancels every outstanding cell through the job-context
// plumbing, and with a configured result store a resubmitted sweep
// resumes from persisted cells instead of recomputing them.

// SweepRequest is the body of POST /v1/sweeps: the grid axes of
// d2m.SweepSpec (flattened) plus service-level handling knobs.
type SweepRequest struct {
	d2m.SweepSpec
	// Cells, when non-empty, is an explicit cell list that replaces the
	// grid expansion: the sweep runs exactly these cells in order, and
	// the grid axes (kinds, benchmarks, ...) must be absent. The cluster
	// gateway uses this to hand each shard the warm-identity-local slice
	// of a fleet-wide sweep; cells arrive in canonical (defaulted)
	// Options form and are re-validated here.
	Cells []d2m.SweepCell `json:"cells,omitempty"`
	// Baseline names the kind speedups are computed against. Empty
	// picks Base-2L when it is one of the sweep's kinds, else the
	// first kind.
	Baseline string `json:"baseline,omitempty"`
	// TimeoutMS caps each cell's lifetime (queue wait + run) in
	// milliseconds. Zero takes the server's default deadline.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Replicates, when >= 2, runs every cell that many times with
	// decorrelated seeds; each cell's Result is then the mean
	// projection of its aggregate. Same bounds as the run endpoint.
	Replicates int `json:"replicates,omitempty"`
	// Engine is the execution-path hint applied to every cell: "" or
	// "auto" (the feeder chunks same-warm-identity cells into vector
	// lane groups when the engine supports them), "scalar" (every cell
	// runs alone), or "vector". Results are byte-identical either way.
	Engine string `json:"engine,omitempty"`
}

// SweepState is a sweep's position in its lifecycle.
type SweepState string

const (
	SweepRunning  SweepState = "running"
	SweepDone     SweepState = "done"
	SweepCanceled SweepState = "canceled"
)

// SweepSummary is the completed sweep's aggregate: per-kind speedup vs
// the baseline, msgs/KI and EDP — the shape of the paper's
// Figures 4-6.
type SweepSummary struct {
	Baseline string                 `json:"baseline"`
	Kinds    []d2m.SweepKindSummary `json:"kinds"`
}

// SweepStatus is the JSON view of a sweep (POST and GET /v1/sweeps
// responses).
type SweepStatus struct {
	ID    string     `json:"id"`
	State SweepState `json:"state"`
	Total int        `json:"total"`
	// Done counts completed cells; Cached is the subset served from
	// the result cache (or the persistent store) without simulating.
	Done      int     `json:"done"`
	Cached    int     `json:"cached"`
	Failed    int     `json:"failed"`
	Canceled  int     `json:"canceled,omitempty"`
	ElapsedMS float64 `json:"elapsed_ms"`
	// ETAMS estimates the remaining wall time from the mean observed
	// cell latency and the worker-pool width; zero until the first
	// non-cached cell completes.
	ETAMS   float64       `json:"eta_ms,omitempty"`
	Summary *SweepSummary `json:"summary,omitempty"`
	// Cells is the per-cell view, present only with ?cells=1 on GET:
	// one entry per grid point in expansion order. The gateway merges
	// shard sub-sweeps from exactly this.
	Cells []SweepCellStatus `json:"cells,omitempty"`
}

// SweepCellStatus is one grid point's settled (or pending) state in
// the ?cells=1 view of GET /v1/sweeps/{id}.
type SweepCellStatus struct {
	State  api.JobState `json:"state"`
	Cached bool         `json:"cached,omitempty"`
	Result *d2m.Result  `json:"result,omitempty"`
	Error  string       `json:"error,omitempty"`
}

// cellOutcome is one grid point's settled state.
type cellOutcome struct {
	state  api.JobState
	cached bool
	result *d2m.Result
	err    error
	runSec float64 // simulation seconds (non-cached cells)
}

// sweep is the server's internal record of one accepted sweep.
type sweep struct {
	id       string
	tenant   string // admitting tenant; "" in single-tenant mode
	baseline d2m.Kind
	timeout  int64
	reps     int    // canonical replicate count per cell; 0 = single run
	engine   string // normalized engine hint; "" = auto
	cells    []d2m.SweepCell

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	doneCh chan struct{}

	mu       sync.Mutex
	state    SweepState
	outcome  []cellOutcome
	done     int
	cached   int
	failed   int
	canceled int
	runSecs  float64
	runCells int
	created  time.Time
	finished time.Time
	summary  *SweepSummary
	// events records cell indexes in settle order: the SSE event log.
	// Event id k (1-based) is cell events[k-1], so a reconnecting
	// client's Last-Event-ID maps straight to a replay offset. eventsCh
	// is closed and replaced on every append — a broadcast that wakes
	// all streamers without holding references to them.
	events   []int
	eventsCh chan struct{}
}

// settleCell records one cell's outcome exactly once.
func (sw *sweep) settleCell(i int, out cellOutcome, m *Metrics) {
	sw.mu.Lock()
	sw.outcome[i] = out
	switch out.state {
	case api.JobDone:
		sw.done++
		m.SweepCellsDone.Add(1)
		if out.cached {
			sw.cached++
			m.SweepCellsCached.Add(1)
		} else {
			sw.runSecs += out.runSec
			sw.runCells++
		}
	case api.JobCanceled:
		sw.canceled++
		m.SweepCellsCanceled.Add(1)
	default:
		sw.failed++
		m.SweepCellsFailed.Add(1)
	}
	sw.events = append(sw.events, i)
	close(sw.eventsCh)
	sw.eventsCh = make(chan struct{})
	sw.mu.Unlock()
}

// status snapshots the sweep's JSON view.
func (sw *sweep) status(workers int) SweepStatus {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	st := SweepStatus{
		ID: sw.id, State: sw.state, Total: len(sw.cells),
		Done: sw.done, Cached: sw.cached, Failed: sw.failed, Canceled: sw.canceled,
		Summary: sw.summary,
	}
	end := time.Now()
	if !sw.finished.IsZero() {
		end = sw.finished
	}
	st.ElapsedMS = float64(end.Sub(sw.created)) / float64(time.Millisecond)
	if sw.state == SweepRunning && sw.runCells > 0 {
		remaining := len(sw.cells) - sw.done - sw.failed - sw.canceled
		if workers < 1 {
			workers = 1
		}
		avg := sw.runSecs / float64(sw.runCells)
		st.ETAMS = avg * float64(remaining) / float64(workers) * 1000
	}
	return st
}

// ---------------------------------------------------------------------------
// HTTP handlers.

// ExpandSweep resolves a sweep request to its validated cell list,
// baseline kind, canonical replicate count, and normalized engine hint
// — the exact validation path POST /v1/sweeps runs before accepting.
// Exported for the cluster gateway, which expands a fleet sweep once
// and hands each shard its warm-identity-local slice via the Cells
// field.
func ExpandSweep(req SweepRequest) ([]d2m.SweepCell, d2m.Kind, int, string, error) {
	// Unknown benchmarks carry their own code, matching POST /v1/run.
	for _, b := range req.Benchmarks {
		if _, ok := d2m.SuiteOf(b); !ok {
			return nil, 0, 0, "", api.Errorf(api.ErrUnknownBenchmark,
				"d2m: unknown benchmark %q (see GET /v1/capabilities)", b)
		}
	}
	cells, err := sweepCells(req)
	if err != nil {
		return nil, 0, 0, "", err
	}
	baseline, err := resolveBaseline(req.Baseline, cells)
	if err != nil {
		return nil, 0, 0, "", err
	}
	reps, err := api.NormalizeReplicates(req.Replicates)
	if err != nil {
		return nil, 0, 0, "", err
	}
	engine, err := api.NormalizeEngine(req.Engine)
	if err != nil {
		return nil, 0, 0, "", err
	}
	return cells, baseline, reps, engine, nil
}

func (s *Server) handleSweepCreate(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		api.WriteErr(w, api.Errorf(api.ErrInvalidRequest, "bad request body: %v", err))
		return
	}
	cells, baseline, reps, engine, err := ExpandSweep(req)
	if err != nil {
		api.WriteErr(w, err)
		return
	}
	// The bucket is charged one token per cell, after validation: a
	// sweep is a bulk submission of its whole grid.
	tenant, ok := s.admitTenant(w, r, len(cells))
	if !ok {
		return
	}

	sw := &sweep{
		id:       fmt.Sprintf("s%08d", s.nextSweepID.Add(1)),
		tenant:   tenant,
		baseline: baseline,
		timeout:  req.TimeoutMS,
		reps:     reps,
		engine:   engine,
		cells:    cells,
		outcome:  make([]cellOutcome, len(cells)),
		doneCh:   make(chan struct{}),
		eventsCh: make(chan struct{}),
		state:    SweepRunning,
		created:  time.Now(),
	}
	sw.ctx, sw.cancel = context.WithCancel(s.baseCtx)

	if s.sched.Draining() {
		sw.cancel()
		api.WriteErr(w, errDraining)
		return
	}
	s.mu.Lock()
	s.sweeps[sw.id] = sw
	s.mu.Unlock()
	s.metrics.SweepsAccepted.Add(1)
	s.metrics.SweepsActive.Add(1)
	go s.runSweep(sw)
	writeJSON(w, http.StatusAccepted, sw.status(s.cfg.Workers))
}

// sweepCells resolves a request's cell list: the grid expansion in the
// normal case, or the explicit Cells list (validated cell by cell)
// when present — the two forms are mutually exclusive.
func sweepCells(req SweepRequest) ([]d2m.SweepCell, error) {
	if len(req.Cells) == 0 {
		cells, err := req.SweepSpec.Expand()
		if err != nil {
			return nil, api.Errorf(api.ErrInvalidRequest, "%v", err)
		}
		return cells, nil
	}
	if len(req.Kinds) > 0 || len(req.Benchmarks) > 0 {
		return nil, api.Errorf(api.ErrInvalidRequest,
			"cells and grid axes (kinds, benchmarks) are mutually exclusive")
	}
	if len(req.Cells) > d2m.DefaultSweepCells {
		return nil, api.Errorf(api.ErrInvalidRequest,
			"sweep lists %d cells, over the cap of %d", len(req.Cells), d2m.DefaultSweepCells)
	}
	cells := make([]d2m.SweepCell, len(req.Cells))
	for i, c := range req.Cells {
		if _, err := d2m.ParseKind(c.Kind.String()); err != nil {
			return nil, api.Errorf(api.ErrInvalidRequest, "cells[%d]: %v", i, err)
		}
		if _, ok := d2m.SuiteOf(c.Benchmark); !ok {
			return nil, api.Errorf(api.ErrUnknownBenchmark,
				"cells[%d]: d2m: unknown benchmark %q (see GET /v1/capabilities)", i, c.Benchmark)
		}
		c.Options = c.Options.WithDefaults()
		if err := c.Options.Validate(); err != nil {
			return nil, api.Errorf(api.ErrInvalidRequest, "cells[%d]: %v", i, err)
		}
		cells[i] = c
	}
	return cells, nil
}

// resolveBaseline picks and validates the speedup baseline: it must be
// one of the sweep's own kinds, so every summary row has a comparison
// population. Deriving candidates from the expanded cells (rather than
// the Kinds axis) makes the same rule cover explicit-cell sweeps.
func resolveBaseline(name string, cells []d2m.SweepCell) (d2m.Kind, error) {
	if name == "" {
		base := cells[0].Kind
		for _, c := range cells {
			if c.Kind == d2m.Base2L {
				return d2m.Base2L, nil
			}
		}
		return base, nil
	}
	base, err := d2m.ParseKind(name)
	if err != nil {
		return 0, api.Errorf(api.ErrInvalidRequest, "%v", err)
	}
	for _, c := range cells {
		if c.Kind == base {
			return base, nil
		}
	}
	return 0, api.Errorf(api.ErrInvalidRequest,
		"baseline %q is not one of the sweep's kinds", name)
}

func (s *Server) lookupSweep(w http.ResponseWriter, r *http.Request) *sweep {
	s.mu.Lock()
	sw, ok := s.sweeps[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		api.WriteErr(w, api.Errorf(api.ErrNotFound, "unknown sweep id %q", r.PathValue("id")))
		return nil
	}
	return sw
}

func (s *Server) handleSweepGet(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.authTenant(w, r); !ok {
		return
	}
	sw := s.lookupSweep(w, r)
	if sw == nil {
		return
	}
	if api.AcceptsSSE(r) {
		s.streamSweep(w, r, sw)
		return
	}
	st := sw.status(s.cfg.Workers)
	if r.URL.Query().Get("cells") == "1" {
		st.Cells = sw.cellStatuses()
	}
	writeJSON(w, http.StatusOK, st)
}

// cellStatuses snapshots the per-cell view in expansion order. A cell
// not yet settled reads as queued — the sweep does not track the
// queued/running transition per cell, and the distinction does not
// matter to the merge consumers.
func (sw *sweep) cellStatuses() []SweepCellStatus {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	out := make([]SweepCellStatus, len(sw.outcome))
	for i := range sw.outcome {
		out[i] = sw.cellStatusLocked(i)
	}
	return out
}

// cellStatus snapshots one cell — the payload of an SSE "cell" event,
// rendered identically to its slot in the ?cells=1 view.
func (sw *sweep) cellStatus(i int) SweepCellStatus {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.cellStatusLocked(i)
}

func (sw *sweep) cellStatusLocked(i int) SweepCellStatus {
	oc := sw.outcome[i]
	cs := SweepCellStatus{State: oc.state, Cached: oc.cached, Result: oc.result}
	if cs.State == "" {
		cs.State = api.JobQueued
	}
	if oc.err != nil {
		cs.Error = oc.err.Error()
	}
	return cs
}

// SweepList is the GET /v1/sweeps response: a newest-first page of
// sweep statuses (without the per-cell view or summary) plus the
// cursor for the next page, empty when this page is the last.
type SweepList struct {
	Sweeps     []SweepStatus `json:"sweeps"`
	NextCursor string        `json:"next_cursor,omitempty"`
}

// handleSweeps lists known sweeps newest first, with ?state= filtering
// and cursor pagination. Sweep ids are zero-padded monotonic counters,
// so lexicographic order is creation order and the cursor is simply
// the last id of the previous page: the next page starts strictly
// below it. Retired sweeps fall out of the listing with the lookup
// table.
func (s *Server) handleSweeps(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.authTenant(w, r); !ok {
		return
	}
	q := r.URL.Query()
	var filter SweepState
	switch st := q.Get("state"); st {
	case "":
	case string(SweepRunning), string(SweepDone), string(SweepCanceled):
		filter = SweepState(st)
	default:
		api.WriteErr(w, api.Errorf(api.ErrInvalidRequest,
			"unknown state %q: want running, done, or canceled", st))
		return
	}
	limit := 50
	if raw := q.Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 {
			api.WriteErr(w, api.Errorf(api.ErrInvalidRequest, "bad limit %q", raw))
			return
		}
		limit = n
		if limit > 500 {
			limit = 500
		}
	}
	cursor := q.Get("cursor")

	s.mu.Lock()
	ids := make([]string, 0, len(s.sweeps))
	for id := range s.sweeps {
		ids = append(ids, id)
	}
	s.mu.Unlock()
	sort.Sort(sort.Reverse(sort.StringSlice(ids)))

	list := SweepList{Sweeps: []SweepStatus{}}
	for _, id := range ids {
		if cursor != "" && id >= cursor {
			continue
		}
		s.mu.Lock()
		sw, ok := s.sweeps[id]
		s.mu.Unlock()
		if !ok {
			continue // retired between snapshot and render
		}
		st := sw.status(s.cfg.Workers)
		if filter != "" && st.State != filter {
			continue
		}
		st.Summary = nil // the list view is a digest; GET the id for detail
		if len(list.Sweeps) == limit {
			list.NextCursor = list.Sweeps[limit-1].ID
			break
		}
		list.Sweeps = append(list.Sweeps, st)
	}
	writeJSON(w, http.StatusOK, list)
}

// handleSweepDelete cancels a sweep: the feeder stops, every
// outstanding cell's job context is released (cancelling simulations
// whose only waiter was this sweep), and the sweep settles as
// canceled. Deleting a settled sweep is a no-op returning its status.
func (s *Server) handleSweepDelete(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.authTenant(w, r); !ok {
		return
	}
	sw := s.lookupSweep(w, r)
	if sw == nil {
		return
	}
	sw.cancel()
	writeJSON(w, http.StatusOK, sw.status(s.cfg.Workers))
}

// ---------------------------------------------------------------------------
// Execution.

// runSweep feeds every cell through the shared admission pipeline in
// the bulk class and, once all have settled, aggregates the summary.
// Consecutive cells sharing a warm identity (typically the innermost
// link-bandwidth axis of the grid) are submitted together through
// SubmitGroupWait, so they arrive as one leader-plus-chain unit a
// worker can gather into a lockstep lane group. The parking loop on a
// full bulk queue means a sweep larger than the queue degrades by
// waiting, never by failing, and the bulk class's bounded dequeue
// share keeps a large sweep from starving interactive requests.
func (s *Server) runSweep(sw *sweep) {
	maxChunk := s.sched.MaxLanes()
	if maxChunk > s.cfg.QueueDepth {
		maxChunk = s.cfg.QueueDepth
	}
	if sw.reps >= 2 || sw.engine == d2m.EngineScalar {
		// Replicated cells are lane-ineligible; a scalar hint opts the
		// whole sweep out of grouping.
		maxChunk = 1
	}
	for i := 0; i < len(sw.cells); {
		if sw.ctx.Err() != nil {
			sw.settleCell(i, cellOutcome{state: api.JobCanceled, err: sw.ctx.Err()}, s.metrics)
			i++
			continue
		}
		end := i + 1
		if maxChunk > 1 {
			key := d2m.WarmKey(sw.cells[i].Kind, sw.cells[i].Benchmark, sw.cells[i].Options)
			for end < len(sw.cells) && end-i < maxChunk &&
				d2m.WarmKey(sw.cells[end].Kind, sw.cells[end].Benchmark, sw.cells[end].Options) == key {
				end++
			}
		}
		subs := make([]sched.Submission, end-i)
		for k := range subs {
			cell := sw.cells[i+k]
			subs[k] = sched.Submission{
				Kind:       cell.Kind,
				Benchmark:  cell.Benchmark,
				Options:    cell.Options,
				Replicates: sw.reps,
				Engine:     sw.engine,
				Priority:   sched.Bulk,
				Tenant:     sw.tenant,
				Timeout:    time.Duration(sw.timeout) * time.Millisecond,
			}
		}
		adms, err := s.sched.SubmitGroupWait(sw.ctx, subs)
		if err != nil {
			// Draining (or canceled mid-wait): abandon the remainder.
			sw.cancel()
			for k := i; k < end; k++ {
				sw.settleCell(k, cellOutcome{state: api.JobCanceled, err: err}, s.metrics)
			}
			i = end
			continue
		}
		for k := range adms {
			if adms[k].Cached {
				r := adms[k].Result
				sw.settleCell(i+k, cellOutcome{state: api.JobDone, cached: true, result: &r}, s.metrics)
				continue
			}
			sw.wg.Add(1)
			go s.collectCell(sw, i+k, adms[k].Job)
		}
		i = end
	}
	sw.wg.Wait()
	s.finalizeSweep(sw)
}

// collectCell waits for one admitted cell to settle (or for the sweep
// to be canceled, in which case it releases its hold on the job).
func (s *Server) collectCell(sw *sweep, i int, j *sched.Job) {
	defer sw.wg.Done()
	select {
	case <-j.Done():
		in := j.Info()
		out := cellOutcome{state: api.JobState(in.State)}
		switch out.state {
		case api.JobDone:
			out.result = in.Result
			out.runSec = in.Finished.Sub(in.Started).Seconds()
		default:
			out.err = in.Err
		}
		sw.settleCell(i, out, s.metrics)
	case <-sw.ctx.Done():
		s.sched.Release(j)
		sw.settleCell(i, cellOutcome{state: api.JobCanceled, err: sw.ctx.Err()}, s.metrics)
	}
}

// finalizeSweep aggregates the completed cells and settles the sweep.
func (s *Server) finalizeSweep(sw *sweep) {
	results := make([]*d2m.Result, len(sw.cells))
	sw.mu.Lock()
	for i := range sw.outcome {
		results[i] = sw.outcome[i].result
	}
	sw.mu.Unlock()
	summary := &SweepSummary{
		Baseline: sw.baseline.String(),
		Kinds:    d2m.SummarizeSweep(sw.baseline, sw.cells, results),
	}

	sw.mu.Lock()
	sw.summary = summary
	sw.finished = time.Now()
	if sw.ctx.Err() != nil {
		sw.state = SweepCanceled
	} else {
		sw.state = SweepDone
	}
	settled := sw.state
	sw.mu.Unlock()
	sw.cancel()
	close(sw.doneCh)

	if settled == SweepCanceled {
		s.metrics.SweepsCanceled.Add(1)
	} else {
		s.metrics.SweepsDone.Add(1)
	}
	s.metrics.SweepsActive.Add(-1)
	s.retireSweep(sw)
}

// retireSweep bounds the sweep history: beyond cfg.MaxSweeps settled
// sweeps, the oldest vanish from GET /v1/sweeps/{id}.
func (s *Server) retireSweep(sw *sweep) {
	s.mu.Lock()
	s.sweepRetired = append(s.sweepRetired, sw.id)
	for len(s.sweepRetired) > s.cfg.MaxSweeps {
		delete(s.sweeps, s.sweepRetired[0])
		s.sweepRetired = s.sweepRetired[1:]
	}
	s.mu.Unlock()
}
