// Package service implements the d2mserver simulation service: the
// HTTP/JSON transport over the root d2m package. Execution — the job
// ledger, priority-class queues with backpressure, the worker pool with
// warm-affinity chaining, and the admission pipeline (result-cache
// lookup, single-flight coalescing, all-or-nothing enqueue) — lives in
// internal/service/sched; this package contributes request validation,
// the result cache and JSONL journal, the warm-snapshot store, the
// sweep orchestrator, and Prometheus-style metrics. cmd/d2mserver is
// the thin binary around it.
package service

import (
	"d2m"
	"d2m/internal/service/sched"
)

// RunRequest is the body of POST /v1/run. The simulation fields mirror
// d2m.Options; zero values take the paper's defaults. TimeoutMS and
// Async control job handling and do not affect the cache identity.
type RunRequest struct {
	Kind      string `json:"kind"`
	Benchmark string `json:"benchmark"`
	Nodes     int    `json:"nodes,omitempty"`
	Warmup    int    `json:"warmup,omitempty"`
	Measure   int    `json:"measure,omitempty"`
	Seed      uint64 `json:"seed,omitempty"`
	// MDScale is the canonical "md_scale" field. LegacyMDScale catches
	// the retired "mdscale" spelling: its compat window (one release,
	// API v1.0) has ended, and any use is rejected with a targeted
	// error pointing at md_scale rather than a generic unknown-field
	// decode failure.
	MDScale       int     `json:"md_scale,omitempty"`
	LegacyMDScale int     `json:"mdscale,omitempty"`
	Bypass        bool    `json:"bypass,omitempty"`
	Prefetch      bool    `json:"prefetch,omitempty"`
	Topology      string  `json:"topology,omitempty"`
	Placement     string  `json:"placement,omitempty"`
	LinkBandwidth float64 `json:"link_bandwidth,omitempty"`
	// Replicates, when >= 2, runs the simulation that many times with
	// decorrelated seeds (seed+1 .. seed+n) and returns the mean/std
	// aggregate next to a mean-projected Result. Capped at
	// MaxReplicates; 0 and 1 both mean a single run.
	Replicates int `json:"replicates,omitempty"`

	// TimeoutMS caps this job's total lifetime (queue wait + run) in
	// milliseconds. Zero takes the server's default deadline.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Async makes POST /v1/run return 202 with the job id immediately;
	// the result is collected via GET /v1/jobs/{id}.
	Async bool `json:"async,omitempty"`
}

// MaxReplicates bounds replicates per request: above this, error bars
// have long converged and the job is a denial-of-service risk.
const MaxReplicates = 64

// Normalize validates the request through the root package's shared
// parse helpers and returns the canonical simulation identity
// (including the canonical replicate count: 0 for a single run, 2..
// MaxReplicates for a replicated one). Errors are apiErrors, so
// handlers map them straight onto the envelope. Exported for the
// cluster gateway, which normalizes each request to derive its
// warm-identity shard key without re-implementing validation.
func (r RunRequest) Normalize() (d2m.Kind, string, d2m.Options, int, error) {
	fail := func(err error) (d2m.Kind, string, d2m.Options, int, error) {
		return 0, "", d2m.Options{}, 0, err
	}
	kind, err := d2m.ParseKind(r.Kind)
	if err != nil {
		return fail(apiErrorf(ErrInvalidRequest, "%v", err))
	}
	if _, ok := d2m.SuiteOf(r.Benchmark); !ok {
		return fail(apiErrorf(ErrUnknownBenchmark,
			"d2m: unknown benchmark %q (see GET /v1/capabilities)", r.Benchmark))
	}
	if r.LegacyMDScale != 0 {
		return fail(apiErrorf(ErrInvalidRequest,
			`the "mdscale" field was removed in API v1.1; use "md_scale"`))
	}
	reps, err := normalizeReplicates(r.Replicates)
	if err != nil {
		return fail(err)
	}
	opt := d2m.Options{
		Nodes:         r.Nodes,
		Warmup:        r.Warmup,
		Measure:       r.Measure,
		Seed:          r.Seed,
		MDScale:       r.MDScale,
		Bypass:        r.Bypass,
		Prefetch:      r.Prefetch,
		Topology:      r.Topology,
		Placement:     r.Placement,
		LinkBandwidth: r.LinkBandwidth,
	}.WithDefaults()
	if err := opt.Validate(); err != nil {
		return fail(apiErrorf(ErrInvalidRequest, "%v", err))
	}
	return kind, r.Benchmark, opt, reps, nil
}

// normalizeReplicates canonicalizes a requested replicate count: 0 and
// 1 both mean a single run (0), anything above MaxReplicates or below
// zero is rejected.
func normalizeReplicates(n int) (int, error) {
	switch {
	case n < 0:
		return 0, apiErrorf(ErrInvalidRequest, "replicates = %d is negative", n)
	case n > MaxReplicates:
		return 0, apiErrorf(ErrInvalidRequest,
			"replicates = %d exceeds the limit of %d", n, MaxReplicates)
	case n < 2:
		return 0, nil
	default:
		return n, nil
	}
}

// cacheKey is the content address of a simulation: the hash of the
// canonical (kind, benchmark, defaulted Options, replicates) tuple,
// computed by the scheduler (sched.CacheKey) so the transport, the
// sweep orchestrator, and tests all agree with the admission pipeline.
func cacheKey(kind d2m.Kind, bench string, opt d2m.Options, reps int) string {
	return sched.CacheKey(kind, bench, opt, reps)
}

// JobState is a job's position in its lifecycle; the wire spelling is
// the scheduler's.
type JobState = sched.State

const (
	JobQueued   = sched.StateQueued
	JobRunning  = sched.StateRunning
	JobDone     = sched.StateDone
	JobFailed   = sched.StateFailed
	JobCanceled = sched.StateCanceled
)

// JobStatus is the JSON view of a job (GET /v1/jobs/{id} and the
// synchronous POST /v1/run response).
type JobStatus struct {
	ID        string   `json:"id"`
	State     JobState `json:"state"`
	Kind      string   `json:"kind"`
	Benchmark string   `json:"benchmark"`
	// Cached is set on POST responses served from the result cache
	// without touching the queue.
	Cached bool `json:"cached,omitempty"`
	// Priority is the job's scheduling class: "interactive" for runs
	// and batches, "bulk" for sweep cells.
	Priority string `json:"priority,omitempty"`
	// QueuePosition is the job's 1-based place in its class queue while
	// it is queued; omitted once it starts.
	QueuePosition int         `json:"queue_position,omitempty"`
	QueueWaitMS   float64     `json:"queue_wait_ms,omitempty"`
	RunMS         float64     `json:"run_ms,omitempty"`
	Error         string      `json:"error,omitempty"`
	Result        *d2m.Result `json:"result,omitempty"`
	// Replicated carries the mean/std aggregate of a job submitted
	// with replicates >= 2; Result then holds the mean projection of
	// the aggregated metrics.
	Replicated *d2m.Replicated `json:"replicated,omitempty"`
}
