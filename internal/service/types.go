// Package service implements the d2mserver simulation service: the
// HTTP/JSON transport over the root d2m package. Execution — the job
// ledger, priority-class queues with backpressure, the worker pool with
// warm-affinity chaining and lane grouping, and the admission pipeline
// (result-cache lookup, single-flight coalescing, all-or-nothing
// enqueue) — lives in internal/service/sched; this package contributes
// request validation, the result cache and JSONL journal, the
// warm-snapshot store, the sweep orchestrator, and Prometheus-style
// metrics. The wire types themselves live in internal/api (shared with
// the cluster gateway); the aliases below keep this package's exported
// surface stable. cmd/d2mserver is the thin binary around it.
package service

import (
	"d2m"
	"d2m/internal/api"
	"d2m/internal/service/sched"
)

// RunRequest is the body of POST /v1/run; see api.RunRequest.
type RunRequest = api.RunRequest

// MaxReplicates bounds replicates per request; see api.MaxReplicates.
const MaxReplicates = api.MaxReplicates

// cacheKey is the content address of a simulation: the hash of the
// canonical (kind, benchmark, defaulted Options, replicates) tuple,
// computed by the scheduler (sched.CacheKey) so the transport, the
// sweep orchestrator, and tests all agree with the admission pipeline.
func cacheKey(kind d2m.Kind, bench string, opt d2m.Options, reps int) string {
	return sched.CacheKey(kind, bench, opt, reps)
}

// JobState is a job's position in its lifecycle; see api.JobState.
// The wire spellings match the scheduler's sched.State one-to-one.
type JobState = api.JobState

const (
	JobQueued   = api.JobQueued
	JobRunning  = api.JobRunning
	JobDone     = api.JobDone
	JobFailed   = api.JobFailed
	JobCanceled = api.JobCanceled
)

// JobStatus is the JSON view of a job; see api.JobStatus.
type JobStatus = api.JobStatus

// KernelCap describes one synthetic kernel workload; see api.KernelCap.
type KernelCap = api.KernelCap
