package service

import (
	"context"
	"d2m/internal/api"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"d2m"
)

// postBatch posts a body to /v1/batch and decodes the response (batch
// envelope on success, error envelope otherwise).
func postBatch(t *testing.T, ts *httptest.Server, body string) (int, batchBody, api.ErrorBody) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/batch: %v", err)
	}
	defer resp.Body.Close()
	var ok batchBody
	var bad api.ErrorBody
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&ok); err != nil {
			t.Fatalf("decode batch response: %v", err)
		}
	} else {
		if err := json.NewDecoder(resp.Body).Decode(&bad); err != nil {
			t.Fatalf("decode error response: %v", err)
		}
	}
	return resp.StatusCode, ok, bad
}

// TestBatchMixedCachedAndFresh posts a batch mixing a result-cache hit,
// two identical fresh runs (which must coalesce into one simulation),
// and a distinct fresh run — and checks the response preserves request
// order and runs each unique simulation once.
func TestBatchMixedCachedAndFresh(t *testing.T) {
	var runs atomic.Int64
	s, ts := newTestServer(t, Config{
		Workers: 2,
		Runner: func(ctx context.Context, kind d2m.Kind, bench string, opt d2m.Options) (d2m.Result, error) {
			runs.Add(1)
			return stubResult(kind, bench, opt), nil
		},
	})

	// Seed the result cache with one simulation.
	if code, _, _ := postRun(t, ts, `{"kind":"base-2l","benchmark":"tpc-c","nodes":2}`); code != http.StatusOK {
		t.Fatalf("warm-up post: %d", code)
	}

	body := `{"runs":[
		{"kind":"base-2l","benchmark":"tpc-c","nodes":2},
		{"kind":"d2m-fs","benchmark":"canneal","nodes":2},
		{"kind":"d2m-fs","benchmark":"canneal","nodes":2},
		{"kind":"d2m-ns","benchmark":"tpc-c","nodes":2}
	]}`
	code, ok, _ := postBatch(t, ts, body)
	if code != http.StatusOK {
		t.Fatalf("POST /v1/batch = %d", code)
	}
	if len(ok.Results) != 4 {
		t.Fatalf("results = %d, want 4", len(ok.Results))
	}
	wantBench := []string{"tpc-c", "canneal", "canneal", "tpc-c"}
	for i, st := range ok.Results {
		if st.Benchmark != wantBench[i] {
			t.Errorf("results[%d].benchmark = %q, want %q (order must match the request)", i, st.Benchmark, wantBench[i])
		}
		if st.State != api.JobDone || st.Result == nil {
			t.Errorf("results[%d]: state %s, result nil = %v", i, st.State, st.Result == nil)
		}
	}
	if !ok.Results[0].Cached {
		t.Error("results[0] was pre-cached but not marked cached")
	}
	if got := runs.Load(); got != 3 {
		t.Errorf("runner invoked %d times, want 3 (warm-up + two unique batch runs)", got)
	}
	if got := s.Metrics().Coalesced.Load(); got != 1 {
		t.Errorf("coalesced = %d, want 1 (duplicate within the batch)", got)
	}
	if got := s.Metrics().BatchesAccepted.Load(); got != 1 {
		t.Errorf("batches accepted = %d, want 1", got)
	}
	if got := s.Metrics().BatchRuns.Load(); got != 4 {
		t.Errorf("batch runs = %d, want 4", got)
	}
}

// TestBatchValidation covers the request-level rejections: empty and
// oversized batches, async runs, and invalid run parameters (which
// must identify the offending index).
func TestBatchValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	cases := []struct {
		name, body, wantFragment string
		wantCode                 int
	}{
		{"empty", `{"runs":[]}`, "no runs", http.StatusBadRequest},
		{"async", `{"runs":[{"kind":"base-2l","benchmark":"tpc-c","async":true}]}`,
			"runs[0]", http.StatusBadRequest},
		{"bad kind", `{"runs":[{"kind":"base-2l","benchmark":"tpc-c"},{"kind":"nope","benchmark":"tpc-c"}]}`,
			"runs[1]", http.StatusBadRequest},
		{"bad benchmark", `{"runs":[{"kind":"base-2l","benchmark":"nope"}]}`,
			"/v1/capabilities", http.StatusBadRequest},
	}
	for _, tc := range cases {
		code, _, bad := postBatch(t, ts, tc.body)
		if code != tc.wantCode {
			t.Errorf("%s: code = %d, want %d", tc.name, code, tc.wantCode)
		}
		if !strings.Contains(bad.Error.Message, tc.wantFragment) {
			t.Errorf("%s: error %q missing %q", tc.name, bad.Error.Message, tc.wantFragment)
		}
	}

	var sb strings.Builder
	sb.WriteString(`{"runs":[`)
	for i := 0; i <= MaxBatchRuns; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, `{"kind":"base-2l","benchmark":"tpc-c","seed":%d}`, i)
	}
	sb.WriteString(`]}`)
	code, _, bad := postBatch(t, ts, sb.String())
	if code != http.StatusBadRequest || !strings.Contains(bad.Error.Message, "limit") {
		t.Errorf("oversized batch: %d %q, want 400 mentioning the limit", code, bad.Error.Message)
	}
}

// TestBatchAllOrNothing fills the queue and checks a batch that does
// not fit whole is rejected without admitting any of its runs.
func TestBatchAllOrNothing(t *testing.T) {
	block := make(chan struct{})
	s, ts := newTestServer(t, Config{
		Workers: 1, QueueDepth: 1,
		Runner: func(ctx context.Context, kind d2m.Kind, bench string, opt d2m.Options) (d2m.Result, error) {
			<-block
			return stubResult(kind, bench, opt), nil
		},
	})
	defer close(block)

	// Occupy the worker and the single queue slot. A filler can race
	// the worker's claim and bounce 429 off the momentarily-full
	// one-slot queue, so keep feeding fresh seeds until both are held.
	seed := 0
	launch := func() {
		body := fmt.Sprintf(`{"kind":"base-2l","benchmark":"tpc-c","seed":%d}`, seed)
		seed++
		go func() {
			resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	launch()
	launch()
	deadline := time.Now().Add(5 * time.Second)
	for s.Metrics().Queued.Load() < 1 || s.Metrics().Running.Load() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(5 * time.Millisecond)
		if s.Metrics().Queued.Load() < 1 {
			launch()
		}
	}

	accepted := s.Metrics().JobsAccepted.Load()
	code, _, bad := postBatch(t, ts, `{"runs":[
		{"kind":"d2m-fs","benchmark":"tpc-c","seed":100},
		{"kind":"d2m-fs","benchmark":"tpc-c","seed":101}
	]}`)
	if code != http.StatusTooManyRequests || bad.Error.Code != api.ErrOverloaded {
		t.Fatalf("batch over full queue = %d/%q, want 429/overloaded", code, bad.Error.Code)
	}
	if got := s.Metrics().JobsAccepted.Load(); got != accepted {
		t.Errorf("rejected batch admitted jobs: accepted %d -> %d (must be all-or-nothing)", accepted, got)
	}
}

// TestBatchWarmAffinity checks runs sharing a warm identity are
// chained onto one worker: with more workers than jobs, the three
// same-warm-key runs must still execute strictly sequentially.
func TestBatchWarmAffinity(t *testing.T) {
	var active, maxActive atomic.Int64
	_, ts := newTestServer(t, Config{
		Workers: 4,
		Runner: func(ctx context.Context, kind d2m.Kind, bench string, opt d2m.Options) (d2m.Result, error) {
			cur := active.Add(1)
			for {
				prev := maxActive.Load()
				if cur <= prev || maxActive.CompareAndSwap(prev, cur) {
					break
				}
			}
			time.Sleep(20 * time.Millisecond)
			active.Add(-1)
			return stubResult(kind, bench, opt), nil
		},
	})

	// Same kind, benchmark, seed and warmup (one warm identity),
	// different measure lengths (three distinct cache keys).
	code, ok, _ := postBatch(t, ts, `{"runs":[
		{"kind":"d2m-ns-r","benchmark":"tpc-c","nodes":2,"measure":100000},
		{"kind":"d2m-ns-r","benchmark":"tpc-c","nodes":2,"measure":200000},
		{"kind":"d2m-ns-r","benchmark":"tpc-c","nodes":2,"measure":300000}
	]}`)
	if code != http.StatusOK || len(ok.Results) != 3 {
		t.Fatalf("batch = %d, %d results", code, len(ok.Results))
	}
	for i, st := range ok.Results {
		if st.State != api.JobDone {
			t.Errorf("results[%d].state = %s", i, st.State)
		}
	}
	if got := maxActive.Load(); got != 1 {
		t.Errorf("same-warm-key runs overlapped (max concurrency %d, want 1)", got)
	}
}

// TestBatchSnapshotReuse runs a real batch through the server:
// three simulations differing only in measurement length must share
// one warmup. Since API v1.5 the worker gathers the warm chain into a
// vector lane group, so the warmup is shared in-process — one
// snapshot miss, zero restores — and every result reports the vector
// engine.
func TestBatchSnapshotReuse(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	code, ok, _ := postBatch(t, ts, `{"runs":[
		{"kind":"d2m-ns-r","benchmark":"tpc-c","nodes":2,"warmup":4000,"measure":2000},
		{"kind":"d2m-ns-r","benchmark":"tpc-c","nodes":2,"warmup":4000,"measure":4000},
		{"kind":"d2m-ns-r","benchmark":"tpc-c","nodes":2,"warmup":4000,"measure":6000}
	]}`)
	if code != http.StatusOK || len(ok.Results) != 3 {
		t.Fatalf("batch = %d, %d results", code, len(ok.Results))
	}
	if hits, misses := s.Metrics().SnapshotHits.Load(), s.Metrics().SnapshotMisses.Load(); hits != 0 || misses != 1 {
		t.Errorf("snapshot hits/misses = %d/%d, want 0/1 (lane group shares the warmup in-process)", hits, misses)
	}
	for i, st := range ok.Results {
		if st.Engine != d2m.EngineVector {
			t.Errorf("results[%d].engine = %q, want %q", i, st.Engine, d2m.EngineVector)
		}
	}

	// The restored runs must match fresh library runs exactly.
	for i, measure := range []int{2000, 4000, 6000} {
		want, err := d2m.Run(context.Background(), d2m.RunSpec{
			Kind: d2m.D2MNSR, Benchmark: "tpc-c",
			Options: d2m.Options{Nodes: 2, Warmup: 4000, Measure: measure},
		})
		if err != nil {
			t.Fatal(err)
		}
		got, _ := json.Marshal(ok.Results[i].Result)
		wantJSON, _ := json.Marshal(want.Result)
		if string(got) != string(wantJSON) {
			t.Errorf("results[%d] differs from fresh run:\n got  %s\n want %s", i, got, wantJSON)
		}
	}
}
