package service

import (
	"context"
	"d2m/internal/api"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"d2m"
)

// runLibrary runs one simulation through the library and returns its
// marshalled Result for byte comparison.
func runLibrary(t *testing.T, spec d2m.RunSpec) []byte {
	t.Helper()
	out, err := d2m.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := json.Marshal(out.Result)
	return raw
}

// TestRunEngineHint: the v1.5 engine field is validated on /v1/run,
// the scalar hint is honored, and the status reports the engine used.
func TestRunEngineHint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	code, st, _ := postRun(t, ts,
		`{"kind":"d2m-ns-r","benchmark":"tpc-c","nodes":2,"warmup":2000,"measure":4000,"engine":"scalar"}`)
	if code != http.StatusOK || st.State != api.JobDone {
		t.Fatalf("scalar run = %d/%s", code, st.State)
	}
	if st.Engine != d2m.EngineScalar {
		t.Errorf("engine = %q, want scalar", st.Engine)
	}

	// "auto" normalizes to the default; a lone run still executes scalar.
	code, st, _ = postRun(t, ts,
		`{"kind":"d2m-ns-r","benchmark":"tpc-c","nodes":2,"warmup":2000,"measure":5000,"engine":"auto"}`)
	if code != http.StatusOK || st.State != api.JobDone {
		t.Fatalf("auto run = %d/%s", code, st.State)
	}
	if st.Engine != d2m.EngineScalar {
		t.Errorf("auto single-run engine = %q, want scalar", st.Engine)
	}
}

// TestEngineHintRejected: unknown engines answer invalid_request on
// every submission surface.
func TestEngineHintRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	post := func(path, body string) api.ErrorBody {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var eb api.ErrorBody
		if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
			t.Fatalf("%s: decode: %v", path, err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s = %d, want 400", path, resp.StatusCode)
		}
		return eb
	}

	eb := post("/v1/run",
		`{"kind":"d2m-ns-r","benchmark":"tpc-c","nodes":2,"measure":4000,"engine":"warp"}`)
	if eb.Error.Code != api.ErrInvalidRequest || !strings.Contains(eb.Error.Message, "warp") {
		t.Errorf("run envelope = %+v, want invalid_request naming the engine", eb.Error)
	}
	eb = post("/v1/batch",
		`{"runs":[{"kind":"d2m-ns-r","benchmark":"tpc-c","nodes":2,"measure":4000,"engine":"warp"}]}`)
	if eb.Error.Code != api.ErrInvalidRequest {
		t.Errorf("batch envelope = %+v, want invalid_request", eb.Error)
	}
	eb = post("/v1/sweeps",
		`{"kinds":["d2m-ns-r"],"benchmarks":["tpc-c"],"nodes":2,"engine":"warp"}`)
	if eb.Error.Code != api.ErrInvalidRequest {
		t.Errorf("sweep envelope = %+v, want invalid_request", eb.Error)
	}
}

// TestSweepVectorLaneGroups: a sweep over a link-bandwidth axis (one
// warm identity, many cells) flows through the lane-group feeder — the
// lane metrics move, and every cell's result matches a scalar run.
func TestSweepVectorLaneGroups(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})

	body := `{"kinds":["d2m-ns-r"],"benchmarks":["tpc-c"],"nodes":2,
		"warmup":2000,"measure":4000,
		"link_bandwidths":[0.9,1.0,1.1,1.2]}`
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st SweepStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/sweeps = %d", resp.StatusCode)
	}
	waitSweep(t, ts, st.ID, 30*time.Second)

	if groups := s.Metrics().LaneGroups.Load(); groups == 0 {
		t.Errorf("lane_groups = 0, want > 0 (sweep cells share one warm identity)")
	}
	if jobs := s.Metrics().LaneJobs.Load(); jobs < 4 {
		t.Errorf("lane_jobs = %d, want >= 4", jobs)
	}

	// Every cell must be byte-identical to its scalar library run.
	resp, err = http.Get(ts.URL + "/v1/sweeps/" + st.ID + "?cells=1")
	if err != nil {
		t.Fatal(err)
	}
	var full SweepStatus
	if err := json.NewDecoder(resp.Body).Decode(&full); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(full.Cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(full.Cells))
	}
	for i, lb := range []float64{0.9, 1.0, 1.1, 1.2} {
		want := runLibrary(t, d2m.RunSpec{
			Kind: d2m.D2MNSR, Benchmark: "tpc-c",
			Options: d2m.Options{Nodes: 2, Warmup: 2000, Measure: 4000, LinkBandwidth: lb},
		})
		got, _ := json.Marshal(full.Cells[i].Result)
		if string(got) != string(want) {
			t.Errorf("cell %d differs from scalar run:\n got  %s\n want %s", i, got, want)
		}
	}
}
