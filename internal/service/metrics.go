package service

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"d2m/internal/service/sched"
)

// Metrics holds the service's observable state: monotonically growing
// counters, point-in-time gauges, and fixed-bucket latency histograms.
// Everything is safe for concurrent use, and rendered in Prometheus
// text exposition format on GET /metrics (cmd/d2mserver additionally
// publishes the Snapshot through expvar).
type Metrics struct {
	// Shard, when non-empty, adds a shard="..." label to every rendered
	// series (Config.ShardName wires it), so one Prometheus scrape
	// config covers a whole cluster with attributable per-process
	// series. Set before the server starts; not synchronized.
	Shard string

	JobsAccepted atomic.Uint64 // admitted to the queue
	JobsDone     atomic.Uint64 // finished successfully
	JobsFailed   atomic.Uint64 // finished with a non-cancellation error
	JobsCanceled atomic.Uint64 // deadline, client disconnect, or drain abort
	JobsRejected atomic.Uint64 // 429: queue full
	CacheHits    atomic.Uint64 // served straight from the result cache
	CacheMisses  atomic.Uint64 // had to queue a simulation
	Coalesced    atomic.Uint64 // attached to an identical in-flight job

	SweepsAccepted     atomic.Uint64 // sweeps admitted via POST /v1/sweeps
	SweepsDone         atomic.Uint64 // sweeps that ran to completion
	SweepsCanceled     atomic.Uint64 // sweeps canceled (DELETE or drain)
	SweepCellsDone     atomic.Uint64 // cells completed, cached or run
	SweepCellsCached   atomic.Uint64 // cells served from the result cache
	SweepCellsFailed   atomic.Uint64 // cells whose simulation failed
	SweepCellsCanceled atomic.Uint64 // cells abandoned by cancellation

	StoreLoaded   atomic.Uint64 // journal records replayed at startup
	StoreAppended atomic.Uint64 // results journaled since startup
	StoreErrors   atomic.Uint64 // failed journal appends

	SnapshotHits      atomic.Uint64 // runs that restored a warm-state snapshot
	SnapshotMisses    atomic.Uint64 // runs that simulated their own warmup
	SnapshotEvictions atomic.Uint64 // snapshots evicted by the byte budget
	BatchesAccepted   atomic.Uint64 // POST /v1/batch requests admitted
	BatchRuns         atomic.Uint64 // individual runs submitted through batches

	LaneGroups atomic.Uint64 // vector lane groups executed
	LaneJobs   atomic.Uint64 // jobs that ran as lanes of a group

	TracesUploaded atomic.Uint64 // traces ingested via POST /v1/traces
	TracesRejected atomic.Uint64 // uploads rejected (torn, corrupt, malformed)

	Queued          atomic.Int64 // gauge: jobs waiting in the queue
	Running         atomic.Int64 // gauge: jobs occupying a worker
	SweepsActive    atomic.Int64 // gauge: sweeps not yet settled
	SnapshotBytes   atomic.Int64 // gauge: bytes held by the snapshot cache
	SnapshotEntries atomic.Int64 // gauge: snapshots held by the snapshot cache

	// QueueWait tracks seconds from admission to worker pickup, one
	// histogram per scheduling class (rendered with a class label), so
	// bulk backlog cannot mask interactive latency.
	QueueWait  [sched.NumPriorities]Histogram
	RunLatency Histogram // seconds of simulation time per job

	// tenantAdmitted / tenantLimited count submissions through the
	// token-bucket gate per tenant, rendered as tenant-labeled series.
	tenantMu       sync.Mutex
	tenantAdmitted map[string]uint64
	tenantLimited  map[string]uint64
}

// TenantAdmitted counts n submissions a tenant's bucket admitted.
func (m *Metrics) TenantAdmitted(tenant string, n int) {
	m.tenantMu.Lock()
	defer m.tenantMu.Unlock()
	if m.tenantAdmitted == nil {
		m.tenantAdmitted = make(map[string]uint64)
	}
	m.tenantAdmitted[tenant] += uint64(n)
}

// TenantRateLimited counts n submissions rejected 429 rate_limited.
func (m *Metrics) TenantRateLimited(tenant string, n int) {
	m.tenantMu.Lock()
	defer m.tenantMu.Unlock()
	if m.tenantLimited == nil {
		m.tenantLimited = make(map[string]uint64)
	}
	m.tenantLimited[tenant] += uint64(n)
}

// tenantCounts snapshots one tenant-counter map in sorted-name order.
func (m *Metrics) tenantCounts(src map[string]uint64) ([]string, []uint64) {
	m.tenantMu.Lock()
	defer m.tenantMu.Unlock()
	names := make([]string, 0, len(src))
	for name := range src {
		names = append(names, name)
	}
	sort.Strings(names)
	counts := make([]uint64, len(names))
	for i, name := range names {
		counts[i] = src[name]
	}
	return names, counts
}

// Metrics implements sched.Observer: the scheduler reports accounting
// events and the service maps them onto these counters, so the numbers
// on /metrics mean exactly what they did when the server owned the
// worker pool itself.
var _ sched.Observer = (*Metrics)(nil)

func (m *Metrics) JobAccepted()  { m.JobsAccepted.Add(1) }
func (m *Metrics) JobCoalesced() { m.Coalesced.Add(1) }
func (m *Metrics) CacheHit()     { m.CacheHits.Add(1) }
func (m *Metrics) CacheMiss()    { m.CacheMisses.Add(1) }

func (m *Metrics) JobSettled(st sched.State) {
	switch st {
	case sched.StateDone:
		m.JobsDone.Add(1)
	case sched.StateCanceled:
		m.JobsCanceled.Add(1)
	default:
		m.JobsFailed.Add(1)
	}
}

func (m *Metrics) QueuedDelta(d int64)  { m.Queued.Add(d) }
func (m *Metrics) RunningDelta(d int64) { m.Running.Add(d) }

func (m *Metrics) ObserveQueueWait(p sched.Priority, seconds float64) {
	m.QueueWait[p].Observe(seconds)
}

func (m *Metrics) ObserveRun(seconds float64) { m.RunLatency.Observe(seconds) }

// LaneGroup implements the scheduler's optional lane-group observer
// extension: one call per vector group of size lanes.
func (m *Metrics) LaneGroup(size int) {
	m.LaneGroups.Add(1)
	m.LaneJobs.Add(uint64(size))
}

// histBuckets are the upper bounds (seconds) of the latency histograms:
// sub-millisecond queue pickups through multi-minute simulations.
var histBuckets = []float64{
	0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300,
}

// Histogram is a fixed-bucket cumulative histogram in the Prometheus
// style: counts[i] covers observations <= histBuckets[i], with an
// implicit +Inf bucket equal to Count.
type Histogram struct {
	mu     sync.Mutex
	counts []uint64 // lazily sized to len(histBuckets)
	sum    float64
	count  uint64
}

// Observe records one value in seconds.
func (h *Histogram) Observe(seconds float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.counts == nil {
		h.counts = make([]uint64, len(histBuckets))
	}
	h.sum += seconds
	h.count++
	for i, ub := range histBuckets {
		if seconds <= ub {
			h.counts[i]++
		}
	}
}

// snapshot returns (cumulative bucket counts, sum, count).
func (h *Histogram) snapshot() ([]uint64, float64, uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]uint64, len(histBuckets))
	copy(out, h.counts)
	return out, h.sum, h.count
}

// Quantile returns an upper bound on the q-quantile (0 < q <= 1) of the
// observed values: the smallest bucket boundary covering that fraction,
// or +Inf when the tail escaped the last bucket.
func (h *Histogram) Quantile(q float64) float64 {
	counts, _, count := h.snapshot()
	if count == 0 {
		return 0
	}
	want := uint64(math.Ceil(q * float64(count)))
	for i, c := range counts {
		if c >= want {
			return histBuckets[i]
		}
	}
	return math.Inf(1)
}

// shardLabel renders the optional shard label ("" when unset), and
// braced wraps a label list for a scalar series.
func (m *Metrics) shardLabel() string {
	if m.Shard == "" {
		return ""
	}
	return fmt.Sprintf("shard=%q", m.Shard)
}

func braced(label string) string {
	if label == "" {
		return ""
	}
	return "{" + label + "}"
}

// joinLabels joins two label lists, either of which may be empty.
func joinLabels(a, b string) string {
	switch {
	case a == "":
		return b
	case b == "":
		return a
	default:
		return a + "," + b
	}
}

// WritePrometheus renders every metric in text exposition format.
func (m *Metrics) WritePrometheus(w io.Writer) {
	shard := braced(m.shardLabel())
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s%s %d\n", name, help, name, name, shard, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s%s %d\n", name, help, name, name, shard, v)
	}
	counter("d2m_jobs_accepted_total", "Jobs admitted to the queue.", m.JobsAccepted.Load())
	counter("d2m_jobs_done_total", "Jobs finished successfully.", m.JobsDone.Load())
	counter("d2m_jobs_failed_total", "Jobs finished with an error.", m.JobsFailed.Load())
	counter("d2m_jobs_canceled_total", "Jobs canceled by deadline, disconnect, or drain.", m.JobsCanceled.Load())
	counter("d2m_jobs_rejected_total", "Jobs rejected with 429 because the queue was full.", m.JobsRejected.Load())
	counter("d2m_cache_hits_total", "Requests served from the result cache.", m.CacheHits.Load())
	counter("d2m_cache_misses_total", "Requests that queued a simulation.", m.CacheMisses.Load())
	counter("d2m_coalesced_total", "Requests coalesced onto an identical in-flight job.", m.Coalesced.Load())
	counter("d2m_sweeps_accepted_total", "Sweeps admitted via POST /v1/sweeps.", m.SweepsAccepted.Load())
	counter("d2m_sweeps_done_total", "Sweeps that ran to completion.", m.SweepsDone.Load())
	counter("d2m_sweeps_canceled_total", "Sweeps canceled by DELETE or drain.", m.SweepsCanceled.Load())
	counter("d2m_sweep_cells_done_total", "Sweep cells completed, cached or run.", m.SweepCellsDone.Load())
	counter("d2m_sweep_cells_cached_total", "Sweep cells served from the result cache.", m.SweepCellsCached.Load())
	counter("d2m_sweep_cells_failed_total", "Sweep cells whose simulation failed.", m.SweepCellsFailed.Load())
	counter("d2m_sweep_cells_canceled_total", "Sweep cells abandoned by cancellation.", m.SweepCellsCanceled.Load())
	counter("d2m_store_loaded_total", "Result-store records replayed at startup.", m.StoreLoaded.Load())
	counter("d2m_store_appended_total", "Results journaled to the store since startup.", m.StoreAppended.Load())
	counter("d2m_store_errors_total", "Failed result-store appends.", m.StoreErrors.Load())
	counter("d2m_snapshot_hits_total", "Runs that restored a warm-state snapshot.", m.SnapshotHits.Load())
	counter("d2m_snapshot_misses_total", "Runs that simulated their own warmup.", m.SnapshotMisses.Load())
	counter("d2m_snapshot_evictions_total", "Snapshots evicted by the byte budget.", m.SnapshotEvictions.Load())
	counter("d2m_batches_accepted_total", "POST /v1/batch requests admitted.", m.BatchesAccepted.Load())
	counter("d2m_batch_runs_total", "Individual runs submitted through batches.", m.BatchRuns.Load())
	counter("d2m_lane_groups_total", "Vector lane groups executed.", m.LaneGroups.Load())
	counter("d2m_lane_jobs_total", "Jobs that ran as lanes of a vector group.", m.LaneJobs.Load())
	counter("d2m_traces_uploaded_total", "Traces ingested via POST /v1/traces.", m.TracesUploaded.Load())
	counter("d2m_traces_rejected_total", "Trace uploads rejected as torn, corrupt or malformed.", m.TracesRejected.Load())
	gauge("d2m_jobs_queued", "Jobs waiting in the queue.", m.Queued.Load())
	gauge("d2m_jobs_running", "Jobs occupying a worker.", m.Running.Load())
	gauge("d2m_sweeps_active", "Sweeps not yet settled.", m.SweepsActive.Load())
	gauge("d2m_snapshot_bytes", "Bytes held by the warm-snapshot cache.", m.SnapshotBytes.Load())
	gauge("d2m_snapshot_entries", "Snapshots held by the warm-snapshot cache.", m.SnapshotEntries.Load())
	for _, series := range []struct {
		name, help string
		src        map[string]uint64
	}{
		{"d2m_tenant_submissions_total", "Submissions admitted through a tenant's token bucket.", m.tenantAdmitted},
		{"d2m_tenant_rate_limited_total", "Submissions rejected 429 rate_limited, by tenant.", m.tenantLimited},
	} {
		names, counts := m.tenantCounts(series.src)
		if len(names) == 0 {
			continue
		}
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", series.name, series.help, series.name)
		for i, name := range names {
			fmt.Fprintf(w, "%s{%s} %d\n", series.name,
				joinLabels(m.shardLabel(), fmt.Sprintf("tenant=%q", name)), counts[i])
		}
	}
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n",
		"d2m_queue_wait_seconds", "Seconds from admission to worker pickup, by scheduling class.",
		"d2m_queue_wait_seconds")
	for p := sched.Interactive; p < sched.NumPriorities; p++ {
		m.writeHistogramSeries(w, "d2m_queue_wait_seconds",
			joinLabels(m.shardLabel(), fmt.Sprintf("class=%q", p.String())), &m.QueueWait[p])
	}
	m.writeHistogram(w, "d2m_run_seconds", "Seconds of simulation per job.", &m.RunLatency)
}

func (m *Metrics) writeHistogram(w io.Writer, name, help string, h *Histogram) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	m.writeHistogramSeries(w, name, m.shardLabel(), h)
}

// writeHistogramSeries renders one histogram series, optionally labeled
// (the label is joined with le inside the bucket braces).
func (m *Metrics) writeHistogramSeries(w io.Writer, name, label string, h *Histogram) {
	counts, sum, count := h.snapshot()
	sep := ""
	if label != "" {
		sep = label + ","
	}
	for i, ub := range histBuckets {
		fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", name, sep, trimFloat(ub), counts[i])
	}
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, sep, count)
	if label != "" {
		fmt.Fprintf(w, "%s_sum{%s} %g\n", name, label, sum)
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, label, count)
	} else {
		fmt.Fprintf(w, "%s_sum %g\n", name, sum)
		fmt.Fprintf(w, "%s_count %d\n", name, count)
	}
}

func trimFloat(f float64) string { return fmt.Sprintf("%g", f) }

// Snapshot returns the scalar metrics as a map, for expvar publication.
func (m *Metrics) Snapshot() map[string]interface{} {
	return map[string]interface{}{
		"jobs_accepted": m.JobsAccepted.Load(),
		"jobs_done":     m.JobsDone.Load(),
		"jobs_failed":   m.JobsFailed.Load(),
		"jobs_canceled": m.JobsCanceled.Load(),
		"jobs_rejected": m.JobsRejected.Load(),
		"cache_hits":    m.CacheHits.Load(),
		"cache_misses":  m.CacheMisses.Load(),
		"coalesced":     m.Coalesced.Load(),
		"jobs_queued":   m.Queued.Load(),
		"jobs_running":  m.Running.Load(),

		"sweeps_accepted":      m.SweepsAccepted.Load(),
		"sweeps_done":          m.SweepsDone.Load(),
		"sweeps_canceled":      m.SweepsCanceled.Load(),
		"sweeps_active":        m.SweepsActive.Load(),
		"sweep_cells_done":     m.SweepCellsDone.Load(),
		"sweep_cells_cached":   m.SweepCellsCached.Load(),
		"sweep_cells_failed":   m.SweepCellsFailed.Load(),
		"sweep_cells_canceled": m.SweepCellsCanceled.Load(),
		"store_loaded":         m.StoreLoaded.Load(),
		"store_appended":       m.StoreAppended.Load(),
		"store_errors":         m.StoreErrors.Load(),

		"snapshot_hits":      m.SnapshotHits.Load(),
		"snapshot_misses":    m.SnapshotMisses.Load(),
		"snapshot_evictions": m.SnapshotEvictions.Load(),
		"snapshot_bytes":     m.SnapshotBytes.Load(),
		"snapshot_entries":   m.SnapshotEntries.Load(),
		"batches_accepted":   m.BatchesAccepted.Load(),
		"batch_runs":         m.BatchRuns.Load(),
		"lane_groups":        m.LaneGroups.Load(),
		"lane_jobs":          m.LaneJobs.Load(),
		"traces_uploaded":    m.TracesUploaded.Load(),
		"traces_rejected":    m.TracesRejected.Load(),
	}
}
