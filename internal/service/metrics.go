package service

import (
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"
)

// Metrics holds the service's observable state: monotonically growing
// counters, point-in-time gauges, and fixed-bucket latency histograms.
// Everything is safe for concurrent use, and rendered in Prometheus
// text exposition format on GET /metrics (cmd/d2mserver additionally
// publishes the Snapshot through expvar).
type Metrics struct {
	JobsAccepted atomic.Uint64 // admitted to the queue
	JobsDone     atomic.Uint64 // finished successfully
	JobsFailed   atomic.Uint64 // finished with a non-cancellation error
	JobsCanceled atomic.Uint64 // deadline, client disconnect, or drain abort
	JobsRejected atomic.Uint64 // 429: queue full
	CacheHits    atomic.Uint64 // served straight from the result cache
	CacheMisses  atomic.Uint64 // had to queue a simulation
	Coalesced    atomic.Uint64 // attached to an identical in-flight job

	Queued  atomic.Int64 // gauge: jobs waiting in the queue
	Running atomic.Int64 // gauge: jobs occupying a worker

	QueueWait  Histogram // seconds from admission to worker pickup
	RunLatency Histogram // seconds of simulation time per job
}

// histBuckets are the upper bounds (seconds) of the latency histograms:
// sub-millisecond queue pickups through multi-minute simulations.
var histBuckets = []float64{
	0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300,
}

// Histogram is a fixed-bucket cumulative histogram in the Prometheus
// style: counts[i] covers observations <= histBuckets[i], with an
// implicit +Inf bucket equal to Count.
type Histogram struct {
	mu     sync.Mutex
	counts []uint64 // lazily sized to len(histBuckets)
	sum    float64
	count  uint64
}

// Observe records one value in seconds.
func (h *Histogram) Observe(seconds float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.counts == nil {
		h.counts = make([]uint64, len(histBuckets))
	}
	h.sum += seconds
	h.count++
	for i, ub := range histBuckets {
		if seconds <= ub {
			h.counts[i]++
		}
	}
}

// snapshot returns (cumulative bucket counts, sum, count).
func (h *Histogram) snapshot() ([]uint64, float64, uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]uint64, len(histBuckets))
	copy(out, h.counts)
	return out, h.sum, h.count
}

// Quantile returns an upper bound on the q-quantile (0 < q <= 1) of the
// observed values: the smallest bucket boundary covering that fraction,
// or +Inf when the tail escaped the last bucket.
func (h *Histogram) Quantile(q float64) float64 {
	counts, _, count := h.snapshot()
	if count == 0 {
		return 0
	}
	want := uint64(math.Ceil(q * float64(count)))
	for i, c := range counts {
		if c >= want {
			return histBuckets[i]
		}
	}
	return math.Inf(1)
}

// WritePrometheus renders every metric in text exposition format.
func (m *Metrics) WritePrometheus(w io.Writer) {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("d2m_jobs_accepted_total", "Jobs admitted to the queue.", m.JobsAccepted.Load())
	counter("d2m_jobs_done_total", "Jobs finished successfully.", m.JobsDone.Load())
	counter("d2m_jobs_failed_total", "Jobs finished with an error.", m.JobsFailed.Load())
	counter("d2m_jobs_canceled_total", "Jobs canceled by deadline, disconnect, or drain.", m.JobsCanceled.Load())
	counter("d2m_jobs_rejected_total", "Jobs rejected with 429 because the queue was full.", m.JobsRejected.Load())
	counter("d2m_cache_hits_total", "Requests served from the result cache.", m.CacheHits.Load())
	counter("d2m_cache_misses_total", "Requests that queued a simulation.", m.CacheMisses.Load())
	counter("d2m_coalesced_total", "Requests coalesced onto an identical in-flight job.", m.Coalesced.Load())
	gauge("d2m_jobs_queued", "Jobs waiting in the queue.", m.Queued.Load())
	gauge("d2m_jobs_running", "Jobs occupying a worker.", m.Running.Load())
	m.writeHistogram(w, "d2m_queue_wait_seconds", "Seconds from admission to worker pickup.", &m.QueueWait)
	m.writeHistogram(w, "d2m_run_seconds", "Seconds of simulation per job.", &m.RunLatency)
}

func (m *Metrics) writeHistogram(w io.Writer, name, help string, h *Histogram) {
	counts, sum, count := h.snapshot()
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	for i, ub := range histBuckets {
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, trimFloat(ub), counts[i])
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, count)
	fmt.Fprintf(w, "%s_sum %g\n", name, sum)
	fmt.Fprintf(w, "%s_count %d\n", name, count)
}

func trimFloat(f float64) string { return fmt.Sprintf("%g", f) }

// Snapshot returns the scalar metrics as a map, for expvar publication.
func (m *Metrics) Snapshot() map[string]interface{} {
	return map[string]interface{}{
		"jobs_accepted": m.JobsAccepted.Load(),
		"jobs_done":     m.JobsDone.Load(),
		"jobs_failed":   m.JobsFailed.Load(),
		"jobs_canceled": m.JobsCanceled.Load(),
		"jobs_rejected": m.JobsRejected.Load(),
		"cache_hits":    m.CacheHits.Load(),
		"cache_misses":  m.CacheMisses.Load(),
		"coalesced":     m.Coalesced.Load(),
		"jobs_queued":   m.Queued.Load(),
		"jobs_running":  m.Running.Load(),
	}
}
