package kernels

import (
	"fmt"

	"d2m/internal/mem"
	"d2m/internal/trace"
)

// Stencil is a 5-point Jacobi sweep over a W×H grid of 8-byte cells,
// ping-ponging between two planes. Rows are partitioned in contiguous
// bands per node; the band-boundary rows are read by two nodes each
// sweep — the classic halo-exchange sharing pattern (mostly-private
// regions with a thin shared fringe).
type Stencil struct {
	W, H int // grid width (contiguous dimension) and height
}

// Name implements Kernel.
func (Stencil) Name() string { return "stencil" }

// Description implements Kernel.
func (k Stencil) Description() string {
	return fmt.Sprintf("5-point Jacobi over a %dx%d grid, two planes, banded rows with halo sharing", k.W, k.H)
}

// Streams implements Kernel.
func (k Stencil) Streams(nodes int) []trace.Stream {
	check(k.W > 2 && k.H > 2, "stencil: grid %dx%d too small", k.W, k.H)
	out := make([]trace.Stream, nodes)
	for n := 0; n < nodes; n++ {
		out[n] = k.stream(n, nodes)
	}
	return out
}

func (k Stencil) stream(node, nodes int) trace.Stream {
	plane := mem.Addr(k.W) * mem.Addr(k.H) * 8
	base := mem.Addr(sharedBase) + 0x200_0000 // both planes shared (halo rows cross bands)
	at := func(p, i, j int) mem.Addr {
		return base + mem.Addr(p)*plane + (mem.Addr(i)*mem.Addr(k.W)+mem.Addr(j))*8
	}

	// Interior rows [1, H-1) split into bands.
	rows := k.H - 2
	per := (rows + nodes - 1) / nodes
	lo := 1 + node*per
	hi := lo + per
	if hi > k.H-1 {
		hi = k.H - 1
	}
	if lo >= hi {
		lo, hi = 1, 2
	}

	src, i, j := 0, lo, 1
	return newEmitter(node, 2, 8, func(e *emitter) {
		// One batch = a run of 8 cells of row i (amortizes the advance
		// logic; the accesses are the stencil's real ones either way).
		for c := 0; c < 8 && j < k.W-1; c, j = c+1, j+1 {
			e.load(at(src, i-1, j))
			e.load(at(src, i+1, j))
			e.load(at(src, i, j-1))
			e.load(at(src, i, j+1))
			e.load(at(src, i, j))
			e.store(at(1-src, i, j))
		}
		if j < k.W-1 {
			return
		}
		j = 1
		if i++; i < hi {
			return
		}
		i = lo
		src = 1 - src // swap planes: next sweep
	})
}
