package kernels

import (
	"fmt"

	"d2m/internal/mem"
	"d2m/internal/trace"
)

// MergeSort emits the access pattern of bottom-up merge sort over a
// private array of 8-byte keys: each pass reads two sequential runs and
// writes one sequential output, ping-ponging between two buffers. Pure
// streaming with zero temporal reuse inside a pass — the bandwidth
// workload cache bypassing targets.
type MergeSort struct {
	N int // keys per node (power of two)
}

// Name implements Kernel.
func (MergeSort) Name() string { return "mergesort" }

// Description implements Kernel.
func (k MergeSort) Description() string {
	return fmt.Sprintf("bottom-up merge sort of %d keys per node, ping-pong buffers", k.N)
}

// Streams implements Kernel.
func (k MergeSort) Streams(nodes int) []trace.Stream {
	check(k.N > 1 && k.N&(k.N-1) == 0, "mergesort: N=%d not a power of two", k.N)
	out := make([]trace.Stream, nodes)
	for n := 0; n < nodes; n++ {
		out[n] = k.stream(n)
	}
	return out
}

func (k MergeSort) stream(node int) trace.Stream {
	base := mem.Addr(dataBase) + mem.Addr(node)*nodeStride + 0x380_0000
	buf := [2]mem.Addr{base, base + mem.Addr(k.N)*8}

	// State: run width, output position, cursors into the two runs.
	width := 1
	src := 0
	out := 0
	aOff, bOff := 0, 0 // consumed counts within the current run pair
	return newEmitter(node, 7, 8, func(e *emitter) {
		// One batch merges up to 8 elements of the current run pair.
		runStart := out / (2 * width) * (2 * width)
		for c := 0; c < 8; c++ {
			// A deterministic pseudo-comparison drains the two runs in
			// interleaved order (real key order would need values; the
			// access PATTERN is what matters here).
			takeA := bOff >= width || (aOff < width && hashKey(uint64(out))&1 == 0)
			if takeA {
				e.load(buf[src] + mem.Addr(runStart+aOff)*8)
				aOff++
			} else {
				e.load(buf[src] + mem.Addr(runStart+width+bOff)*8)
				bOff++
			}
			e.store(buf[1-src] + mem.Addr(out)*8)
			out++
			if aOff+bOff == 2*width { // run pair exhausted
				aOff, bOff = 0, 0
				runStart = out / (2 * width) * (2 * width)
			}
			if out == k.N { // pass complete: double the width, swap
				out, aOff, bOff = 0, 0, 0
				src = 1 - src
				width *= 2
				if width >= k.N {
					width = 1 // array sorted: start over
				}
				return
			}
		}
	})
}
