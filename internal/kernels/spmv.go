package kernels

import (
	"fmt"

	"d2m/internal/mem"
	"d2m/internal/trace"
)

// SpMV is a sparse matrix-vector multiply y = A·x over a synthetic CSR
// matrix: row pointers and column indices stream sequentially, the
// source-vector reads scatter (gather accesses through the column
// indices), and the destination writes stream. Rows are partitioned
// across nodes; x is read-shared — the canonical HPC gather kernel.
type SpMV struct {
	Rows int // matrix rows (power of two)
	NNZ  int // nonzeros per row
}

// Name implements Kernel.
func (SpMV) Name() string { return "spmv" }

// Description implements Kernel.
func (k SpMV) Description() string {
	return fmt.Sprintf("CSR sparse matrix-vector multiply, %d rows x %d nnz/row, shared x", k.Rows, k.NNZ)
}

// Streams implements Kernel.
func (k SpMV) Streams(nodes int) []trace.Stream {
	check(k.Rows > 0 && k.Rows&(k.Rows-1) == 0, "spmv: Rows=%d not a power of two", k.Rows)
	check(k.NNZ > 0, "spmv: NNZ=%d", k.NNZ)
	out := make([]trace.Stream, nodes)
	for n := 0; n < nodes; n++ {
		out[n] = k.stream(n, nodes)
	}
	return out
}

func (k SpMV) stream(node, nodes int) trace.Stream {
	x := mem.Addr(sharedBase) + 0x600_0000 // shared source vector, 8B elements
	priv := mem.Addr(dataBase) + mem.Addr(node)*nodeStride + 0x300_0000
	rowptr := priv
	colidx := rowptr + mem.Addr(k.Rows+1)*8
	vals := colidx + mem.Addr(k.Rows*k.NNZ)*8
	y := vals + mem.Addr(k.Rows*k.NNZ)*8

	per := k.Rows / nodes
	lo := node * per

	i := 0
	return newEmitter(node, 6, 10, func(e *emitter) {
		row := lo + i
		e.load(rowptr + mem.Addr(row)*8)
		for d := 0; d < k.NNZ; d++ {
			nz := row*k.NNZ + d
			e.load(colidx + mem.Addr(nz)*8) // sequential
			e.load(vals + mem.Addr(nz)*8)   // sequential
			col := hashKey(uint64(row)<<20|uint64(d)) % uint64(k.Rows*nodes)
			e.load(x + mem.Addr(col)*8) // gather: scattered shared read
		}
		e.store(y + mem.Addr(row)*8) // streaming write
		if i++; i == per {
			i = 0
		}
	})
}
