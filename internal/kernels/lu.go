package kernels

import (
	"fmt"

	"d2m/internal/mem"
	"d2m/internal/trace"
)

// LU is a right-looking in-place LU factorization (no pivoting) of an
// N×N matrix stored with leading dimension LD elements. With LD a power
// of two (the default registers LD=4096, a 32kB row stride) every
// column walk hits the same cache set — the exact conflict pathology
// §IV-D's dynamic indexing targets, here produced by the algorithm's
// real index arithmetic rather than a synthetic stride. Rows are owned
// cyclically by node; the pivot row is read by everyone, so the matrix
// is genuinely shared.
type LU struct {
	N  int // matrix dimension
	LD int // leading dimension in elements (row stride = LD*8 bytes)
}

// Name implements Kernel.
func (LU) Name() string { return "lu-inplace" }

// Description implements Kernel.
func (k LU) Description() string {
	return fmt.Sprintf("in-place %dx%d LU factorization, leading dimension %d (%.0fkB row stride)",
		k.N, k.N, k.LD, float64(k.LD)*8/1024)
}

// Streams implements Kernel.
func (k LU) Streams(nodes int) []trace.Stream {
	check(k.N > 1 && k.LD >= k.N, "lu: need N>1 and LD>=N, got N=%d LD=%d", k.N, k.LD)
	out := make([]trace.Stream, nodes)
	for n := 0; n < nodes; n++ {
		out[n] = k.stream(n, nodes)
	}
	return out
}

func (k LU) stream(node, nodes int) trace.Stream {
	base := mem.Addr(sharedBase) + 0x100_0000 // one shared matrix
	at := func(i, j int) mem.Addr { return base + (mem.Addr(i)*mem.Addr(k.LD)+mem.Addr(j))*8 }

	// State: pivot column kp, eliminating row i (cyclically owned:
	// node handles rows where i % nodes == node).
	kp := 0
	i := firstRowAfter(kp, node, nodes)
	return newEmitter(node, 1, 10, func(e *emitter) {
		if i >= k.N {
			// This pivot step has no more owned rows: next pivot.
			kp++
			if kp >= k.N-1 {
				kp = 0 // factorization complete: restart
			}
			i = firstRowAfter(kp, node, nodes)
			return // no accesses this batch; Next() calls again
		}
		// a[i][kp] /= a[kp][kp]; then the rank-1 update of row i:
		// a[i][j] -= a[i][kp] * a[kp][j] for j > kp.
		e.load(at(kp, kp))
		e.load(at(i, kp))
		e.store(at(i, kp))
		for j := kp + 1; j < k.N; j++ {
			e.load(at(kp, j)) // pivot row: read-shared by every node
			e.load(at(i, j))
			e.store(at(i, j))
		}
		i += nodes
	})
}

// firstRowAfter returns the first row > kp owned by node under cyclic
// distribution.
func firstRowAfter(kp, node, nodes int) int {
	i := kp + 1
	for i%nodes != node {
		i++
	}
	return i
}
