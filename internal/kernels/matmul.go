package kernels

import (
	"fmt"

	"d2m/internal/mem"
	"d2m/internal/trace"
)

// MatMul is a blocked dense matrix multiplication C = A·B over N×N
// matrices of 8-byte elements, blocked in Block×Block tiles. Rows of A
// and C are partitioned across nodes (private data); B is read by every
// node (a read-shared region workload — the classification machinery's
// favourable case for replication).
type MatMul struct {
	N     int // matrix dimension
	Block int // tile edge
}

// Name implements Kernel.
func (MatMul) Name() string { return "matmul" }

// Description implements Kernel.
func (k MatMul) Description() string {
	return fmt.Sprintf("blocked %dx%d dense matrix multiply (tile %d), shared B", k.N, k.N, k.Block)
}

// Streams implements Kernel.
func (k MatMul) Streams(nodes int) []trace.Stream {
	check(k.N > 0 && k.Block > 0 && k.N%k.Block == 0, "matmul: N=%d not a multiple of Block=%d", k.N, k.Block)
	out := make([]trace.Stream, nodes)
	for n := 0; n < nodes; n++ {
		out[n] = k.stream(n, nodes)
	}
	return out
}

func (k MatMul) stream(node, nodes int) trace.Stream {
	n8 := mem.Addr(k.N) * 8
	a := mem.Addr(dataBase) + mem.Addr(node)*nodeStride
	c := a + mem.Addr(k.N)*n8
	b := mem.Addr(sharedBase) // one copy, read by everyone

	// Node `node` computes rows [lo, hi) of C — its private band of A
	// and C — using a bj/bk/i/kk blocked loop order over the band.
	per := (k.N + nodes - 1) / nodes
	lo := node * per
	hi := lo + per
	if hi > k.N {
		hi = k.N
	}
	if lo >= hi { // more nodes than rows: surplus nodes redo row 0
		lo, hi = 0, 1
	}
	nb := k.N / k.Block

	bj, bk, i, kk := 0, 0, lo, 0
	return newEmitter(node, 0, 12, func(e *emitter) {
		// One batch = the inner j-loop for a fixed (i, k): load A[i][k]
		// once, then stream tile bj of B's row k against C's row i.
		ak := bk*k.Block + kk
		e.load(a + mem.Addr(i)*n8 + mem.Addr(ak)*8) // A[i][k]
		for j := bj * k.Block; j < (bj+1)*k.Block; j++ {
			cij := c + mem.Addr(i)*n8 + mem.Addr(j)*8
			e.load(b + mem.Addr(ak)*n8 + mem.Addr(j)*8) // B[k][j]
			e.load(cij)                                 // C[i][j] +=
			e.store(cij)
		}

		if kk++; kk < k.Block {
			return
		}
		kk = 0
		if i++; i < hi {
			return
		}
		i = lo
		if bk++; bk < nb {
			return
		}
		bk = 0
		if bj++; bj == nb {
			bj = 0 // computation complete: restart
		}
	})
}
