package kernels

import (
	"fmt"

	"d2m/internal/mem"
	"d2m/internal/trace"
)

// BFS is a level-synchronous breadth-first search over a synthetic
// CSR graph: vertices are range-partitioned, the adjacency structure is
// read sequentially per vertex, but neighbor visits scatter across the
// whole shared `visited` array — the pointer-chasing, low-locality
// pattern the paper's cnn/graph workloads stand in for. Neighbor lists
// are generated from a deterministic hash, so the trace is reproducible
// without storing the graph.
type BFS struct {
	Vertices int // vertex count (power of two)
	Degree   int // out-degree per vertex
}

// Name implements Kernel.
func (BFS) Name() string { return "bfs" }

// Description implements Kernel.
func (k BFS) Description() string {
	return fmt.Sprintf("level-synchronous BFS, %d vertices, degree %d, shared visited array", k.Vertices, k.Degree)
}

// Streams implements Kernel.
func (k BFS) Streams(nodes int) []trace.Stream {
	check(k.Vertices > 0 && k.Vertices&(k.Vertices-1) == 0, "bfs: Vertices=%d not a power of two", k.Vertices)
	check(k.Degree > 0, "bfs: Degree=%d", k.Degree)
	out := make([]trace.Stream, nodes)
	for n := 0; n < nodes; n++ {
		out[n] = k.stream(n, nodes)
	}
	return out
}

func (k BFS) stream(node, nodes int) trace.Stream {
	rowptr := mem.Addr(sharedBase) + 0x400_0000                          // CSR row offsets, 8B each
	adj := rowptr + mem.Addr(k.Vertices+1)*8                             // CSR neighbor ids, 8B each
	visited := adj + mem.Addr(k.Vertices*k.Degree)*8                     // shared bitmap, 1B granule
	front := mem.Addr(dataBase) + mem.Addr(node)*nodeStride + 0x100_0000 // private frontier queues

	per := k.Vertices / nodes
	lo := node * per

	// The frontier of each level is approximated by walking the node's
	// vertex range in a hash-scrambled order (a real BFS frontier is an
	// unpredictable vertex subset; the scramble reproduces that without
	// storing frontiers). `level` reseeds the scramble per sweep.
	level := uint64(0)
	v := 0 // position within the node's range
	frontSeq := 0
	return newEmitter(node, 4, 16, func(e *emitter) {
		// Dequeue the vertex (sequential frontier read), fetch its row
		// extent, then scan its neighbors.
		u := lo + int(hashKey(uint64(v)+level<<20)%uint64(per))
		e.load(front + mem.Addr(frontSeq%per)*8)
		e.load(rowptr + mem.Addr(u)*8) // row start (end is on the same or next line)
		for d := 0; d < k.Degree; d++ {
			e.load(adj + mem.Addr(u*k.Degree+d)*8) // neighbor id: sequential
			w := hashKey(uint64(u)<<16|uint64(d)) % uint64(k.Vertices)
			e.load(visited + mem.Addr(w)) // scattered shared read
			if w&15 == 0 {                // ~1/16 newly discovered
				e.store(visited + mem.Addr(w))
				e.store(front + mem.Addr(frontSeq%per)*8) // enqueue
				frontSeq++
			}
		}
		if v++; v == per {
			v = 0
			level++ // next BFS level: new frontier scramble
		}
	})
}
