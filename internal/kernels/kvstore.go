package kernels

import (
	"fmt"

	"d2m/internal/mem"
	"d2m/internal/trace"
)

// KVStore is an in-memory key-value store serving a skewed GET/PUT mix:
// an open-addressed shared table of 64-byte slots, a hot set absorbing
// 90% of operations, and a per-node sequential append log for PUTs —
// the paper's database/server pattern (tpc-c, memcached) with the skew
// made explicit. The hot set is read-mostly shared (replication's
// target); PUTs to it force the shared-write protocol path.
type KVStore struct {
	Keys    int     // table slots (power of two)
	HotKeys int     // hot-set size (power of two)
	GetFrac float64 // fraction of operations that are GETs
}

// Name implements Kernel.
func (KVStore) Name() string { return "kvstore" }

// Description implements Kernel.
func (k KVStore) Description() string {
	return fmt.Sprintf("key-value store, %d slots, %d hot, %.0f%% GET, per-node append log",
		k.Keys, k.HotKeys, k.GetFrac*100)
}

// Streams implements Kernel.
func (k KVStore) Streams(nodes int) []trace.Stream {
	check(k.Keys > 0 && k.Keys&(k.Keys-1) == 0, "kvstore: Keys=%d not a power of two", k.Keys)
	check(k.HotKeys > 0 && k.HotKeys <= k.Keys, "kvstore: HotKeys=%d out of range", k.HotKeys)
	check(k.GetFrac >= 0 && k.GetFrac <= 1, "kvstore: GetFrac=%v", k.GetFrac)
	out := make([]trace.Stream, nodes)
	for n := 0; n < nodes; n++ {
		out[n] = k.stream(n, nodes)
	}
	return out
}

func (k KVStore) stream(node, nodes int) trace.Stream {
	table := mem.Addr(sharedBase) + 0x500_0000 // 64B slots, shared
	logBuf := mem.Addr(dataBase) + mem.Addr(node)*nodeStride + 0x200_0000
	const logSlots = 1 << 14 // 1MB circular append log per node

	// The operation mix is a deterministic pseudo-random sequence: the
	// store's behaviour is statistical by nature (unlike the loop-nest
	// kernels), but reproducible per (node, seed).
	rng := mem.NewRNG(0x6b76_0000 + uint64(node))
	logSeq := 0
	return newEmitter(node, 5, 20, func(e *emitter) {
		var key int
		if rng.Bool(0.9) {
			key = rng.Intn(k.HotKeys)
		} else {
			key = k.HotKeys + rng.Intn(k.Keys-k.HotKeys)
		}
		slot := table + mem.Addr(hashKey(uint64(key))%uint64(k.Keys))*64
		if rng.Bool(k.GetFrac) {
			e.load(slot)     // header + key compare
			e.load(slot + 8) // value
			return
		}
		// PUT: read-modify-write the slot, then append to the log.
		e.load(slot)
		e.store(slot)
		e.store(slot + 8)
		e.store(logBuf + mem.Addr(logSeq%logSlots)*64)
		logSeq++
	})
}
