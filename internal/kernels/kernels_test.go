package kernels

import (
	"testing"

	"d2m/internal/mem"
	"d2m/internal/trace"
)

// drain pulls n accesses from a stream.
func drain(t *testing.T, s trace.Stream, n int) []mem.Access {
	t.Helper()
	out := make([]mem.Access, n)
	for i := range out {
		out[i] = s.Next()
	}
	return out
}

func TestRegistry(t *testing.T) {
	if len(All()) != 8 {
		t.Fatalf("registered %d kernels, want 8", len(All()))
	}
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names not sorted: %v", names)
		}
	}
	for _, k := range All() {
		if k.Name() == "" || k.Description() == "" {
			t.Fatalf("kernel with empty name/description: %#v", k)
		}
		got, ok := ByName(k.Name())
		if !ok || got.Name() != k.Name() {
			t.Fatalf("ByName(%q) = %v, %v", k.Name(), got, ok)
		}
	}
	if _, ok := ByName("no-such-kernel"); ok {
		t.Fatal("ByName accepted an unknown name")
	}
}

// Every kernel must be deterministic, emit only accesses for its own
// node, interleave instruction fetches, and mix reads and writes.
func TestKernelStreamBasics(t *testing.T) {
	const nodes, n = 4, 20000
	for _, k := range All() {
		k := k
		t.Run(k.Name(), func(t *testing.T) {
			streams := k.Streams(nodes)
			if len(streams) != nodes {
				t.Fatalf("got %d streams, want %d", len(streams), nodes)
			}
			again := k.Streams(nodes)
			var fetches, loads, stores int
			for node, s := range streams {
				acc := drain(t, s, n)
				rep := drain(t, again[node], n)
				for i, a := range acc {
					if a != rep[i] {
						t.Fatalf("node %d access %d not deterministic: %v vs %v", node, i, a, rep[i])
					}
					if a.Node != node {
						t.Fatalf("node %d emitted access for node %d", node, a.Node)
					}
					switch a.Kind {
					case mem.IFetch:
						fetches++
					case mem.Load:
						loads++
					case mem.Store:
						stores++
					default:
						t.Fatalf("bad kind %v", a.Kind)
					}
				}
			}
			total := nodes * n
			if fetches < total/3 {
				t.Errorf("only %d/%d instruction fetches", fetches, total)
			}
			if loads == 0 || stores == 0 {
				t.Errorf("loads=%d stores=%d: want both nonzero", loads, stores)
			}
		})
	}
}

// Kernels loop: after enough accesses the stream must revisit early
// addresses (the computation restarts) rather than wandering off into
// unbounded address space.
func TestKernelStreamsLoop(t *testing.T) {
	for _, k := range All() {
		k := k
		t.Run(k.Name(), func(t *testing.T) {
			s := k.Streams(2)[0]
			seen := make(map[mem.LineAddr]int)
			revisits := 0
			for i := 0; i < 3_000_000 && revisits == 0; i++ {
				a := s.Next()
				if a.Kind != mem.Load {
					continue
				}
				if prev, ok := seen[a.Addr.Line()]; ok && i-prev > 1000 {
					revisits++
				}
				seen[a.Addr.Line()] = i
			}
			if revisits == 0 {
				t.Fatalf("no data-line revisit in 3M accesses (footprint %d lines): stream does not loop", len(seen))
			}
		})
	}
}

// Address ranges stay within each kernel's windows: code in the code
// segment, data in the private/shared segments, no overlap between the
// per-kernel shared windows.
func TestKernelAddressRanges(t *testing.T) {
	for _, k := range All() {
		k := k
		t.Run(k.Name(), func(t *testing.T) {
			for node, s := range k.Streams(3) {
				for i := 0; i < 30000; i++ {
					a := s.Next()
					switch {
					case a.Kind == mem.IFetch:
						if a.Addr < codeBase {
							t.Fatalf("node %d fetch outside code segment: %v", node, a)
						}
					case a.Addr >= codeBase:
						t.Fatalf("node %d data access inside code segment: %v", node, a)
					case a.Addr < dataBase:
						t.Fatalf("node %d data access below data segment: %v", node, a)
					}
				}
			}
		})
	}
}

// The LU kernel's reason to exist: successive accesses down a column
// are LD*8 bytes apart, so with LD=4096 they collide in any
// power-of-two-indexed cache — many distinct lines mapping to very few
// sets. Verify the real stream has that property.
func TestLUConflictPathology(t *testing.T) {
	k := LU{N: 64, LD: 4096}
	s := k.Streams(1)[0]
	const sets = 64 // a 64-set cache level
	setCount := make(map[uint64]int)
	lines := make(map[mem.LineAddr]bool)
	for i := 0; i < 200000; i++ {
		a := s.Next()
		if a.Kind == mem.IFetch {
			continue
		}
		lines[a.Addr.Line()] = true
		setCount[uint64(a.Addr.Line())%sets]++
	}
	// The matrix has N*N elements over N rows stride LD: column walks
	// touch N distinct lines that all share ROW-stride alignment. With
	// LD*8 = 32kB stride, line addresses differ by 512 lines = multiples
	// of 512, so at most 64/gcd collapse... count distinct sets used:
	used := 0
	for _, c := range setCount {
		if c > 0 {
			used++
		}
	}
	if used > sets/4 {
		t.Fatalf("LU stream spread over %d/%d sets; expected severe conflict concentration", used, sets)
	}
	if len(lines) < 200 {
		t.Fatalf("only %d distinct lines touched; pathology needs many lines in few sets", len(lines))
	}
}

// Scaling the node count partitions the work: with more nodes, each
// node's private footprint shrinks (matmul bands) while shared data is
// common to all.
func TestMatMulPartitioning(t *testing.T) {
	k := MatMul{N: 64, Block: 16}
	footprint := func(nodes int) int {
		s := k.Streams(nodes)[0]
		lines := make(map[mem.LineAddr]bool)
		for i := 0; i < 100000; i++ {
			a := s.Next()
			if a.Kind != mem.IFetch && a.Addr < sharedBase {
				lines[a.Addr.Line()] = true
			}
		}
		return len(lines)
	}
	one, four := footprint(1), footprint(4)
	if four >= one {
		t.Fatalf("private footprint did not shrink with partitioning: 1 node %d lines, 4 nodes %d", one, four)
	}
}

// Two nodes of the LU factorization both read the pivot row: the
// shared-address intersection must be nonempty (it is what makes the
// kernel exercise the coherence protocol).
func TestLUSharesPivotRow(t *testing.T) {
	k := LU{N: 32, LD: 64}
	streams := k.Streams(2)
	touched := make([]map[mem.LineAddr]bool, 2)
	for n, s := range streams {
		touched[n] = make(map[mem.LineAddr]bool)
		for i := 0; i < 50000; i++ {
			a := s.Next()
			if a.Kind == mem.Load {
				touched[n][a.Addr.Line()] = true
			}
		}
	}
	common := 0
	for l := range touched[0] {
		if touched[1][l] {
			common++
		}
	}
	if common == 0 {
		t.Fatal("LU nodes share no lines; pivot-row sharing is missing")
	}
}

// Stencil halo rows are shared between adjacent bands only: node 0 and
// node 3 of a 4-node run must not share data lines, while node 0 and
// node 1 must.
func TestStencilHaloSharing(t *testing.T) {
	k := Stencil{W: 256, H: 64}
	streams := k.Streams(4)
	touched := make([]map[mem.LineAddr]bool, 4)
	for n, s := range streams {
		touched[n] = make(map[mem.LineAddr]bool)
		for i := 0; i < 300000; i++ {
			a := s.Next()
			if a.Kind != mem.IFetch {
				touched[n][a.Addr.Line()] = true
			}
		}
	}
	overlap := func(a, b int) int {
		c := 0
		for l := range touched[a] {
			if touched[b][l] {
				c++
			}
		}
		return c
	}
	if overlap(0, 1) == 0 {
		t.Error("adjacent bands share no halo lines")
	}
	if o := overlap(0, 3); o != 0 {
		t.Errorf("distant bands share %d lines; bands should only overlap at halos", o)
	}
}

// The KV store mixes GETs and PUTs per GetFrac, and hot keys dominate.
func TestKVStoreMix(t *testing.T) {
	k := KVStore{Keys: 1 << 10, HotKeys: 1 << 5, GetFrac: 0.85}
	s := k.Streams(1)[0]
	var loads, stores int
	for i := 0; i < 100000; i++ {
		switch s.Next().Kind {
		case mem.Load:
			loads++
		case mem.Store:
			stores++
		}
	}
	// GETs are 2 loads; PUTs are 1 load + 3 stores. At 85% GET the
	// store fraction of data accesses is 0.15*3/(0.85*2+0.15*4) ≈ 0.19.
	frac := float64(stores) / float64(loads+stores)
	if frac < 0.1 || frac > 0.3 {
		t.Fatalf("store fraction %.2f, want ≈0.19", frac)
	}
}

// A probe of the hash join must read buckets written during build: the
// table addresses overlap between phases.
func TestHashJoinTableReuse(t *testing.T) {
	k := HashJoin{Buckets: 1 << 8, BuildTuples: 1 << 8, ProbeTuples: 1 << 8}
	s := k.Streams(1)[0]
	written := make(map[mem.LineAddr]bool)
	reread := 0
	for i := 0; i < 50000; i++ {
		a := s.Next()
		if a.Kind == mem.Store && a.Addr >= sharedBase {
			written[a.Addr.Line()] = true
		}
		if a.Kind == mem.Load && written[a.Addr.Line()] {
			reread++
		}
	}
	if reread == 0 {
		t.Fatal("probe phase never read build-phase writes")
	}
}

// BFS neighbor scans are sequential in the adjacency array but the
// visited-array reads scatter: distinct visited lines should be a large
// multiple of distinct adjacency regions per unit work.
func TestBFSScatter(t *testing.T) {
	k := BFS{Vertices: 1 << 12, Degree: 8}
	s := k.Streams(2)[1]
	lines := make(map[mem.LineAddr]bool)
	for i := 0; i < 100000; i++ {
		a := s.Next()
		if a.Kind != mem.IFetch {
			lines[a.Addr.Line()] = true
		}
	}
	if len(lines) < 2000 {
		t.Fatalf("BFS touched only %d lines; the scatter pattern is missing", len(lines))
	}
}

func TestParameterValidation(t *testing.T) {
	cases := []func(){
		func() { MatMul{N: 10, Block: 3}.Streams(1) },
		func() { LU{N: 8, LD: 4}.Streams(1) },
		func() { Stencil{W: 1, H: 1}.Streams(1) },
		func() { HashJoin{Buckets: 3, BuildTuples: 1, ProbeTuples: 1}.Streams(1) },
		func() { BFS{Vertices: 100, Degree: 4}.Streams(1) },
		func() { KVStore{Keys: 64, HotKeys: 128, GetFrac: 0.5}.Streams(1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: invalid parameters not rejected", i)
				}
			}()
			fn()
		}()
	}
}

// SpMV gathers through the shared x vector: two nodes' streams overlap
// on x lines but never on their private CSR arrays.
func TestSpMVGatherSharing(t *testing.T) {
	k := SpMV{Rows: 1 << 8, NNZ: 4}
	streams := k.Streams(2)
	shared := make([]map[mem.LineAddr]bool, 2)
	private := make([]map[mem.LineAddr]bool, 2)
	for n, s := range streams {
		shared[n], private[n] = map[mem.LineAddr]bool{}, map[mem.LineAddr]bool{}
		for i := 0; i < 50000; i++ {
			a := s.Next()
			if a.Kind == mem.IFetch {
				continue
			}
			if a.Addr >= sharedBase {
				shared[n][a.Addr.Line()] = true
			} else {
				private[n][a.Addr.Line()] = true
			}
		}
	}
	common := 0
	for l := range shared[0] {
		if shared[1][l] {
			common++
		}
	}
	if common == 0 {
		t.Error("gather vector not shared between nodes")
	}
	for l := range private[0] {
		if private[1][l] {
			t.Fatalf("private CSR arrays overlap at %v", l)
		}
	}
}

// A merge-sort pass reads each element once and writes it once: loads
// and stores balance exactly, and the footprint is the two buffers.
func TestMergeSortBalance(t *testing.T) {
	k := MergeSort{N: 1 << 10}
	s := k.Streams(1)[0]
	var loads, stores int
	lines := map[mem.LineAddr]bool{}
	for i := 0; i < 60000; i++ {
		a := s.Next()
		switch a.Kind {
		case mem.Load:
			loads++
			lines[a.Addr.Line()] = true
		case mem.Store:
			stores++
			lines[a.Addr.Line()] = true
		}
	}
	if loads != stores {
		t.Fatalf("loads %d != stores %d: merge must move each key exactly once", loads, stores)
	}
	// Two ping-pong buffers of N keys = 2*N/8 lines.
	want := 2 * k.N / 8
	if len(lines) != want {
		t.Fatalf("footprint %d lines, want %d (two buffers)", len(lines), want)
	}
}
