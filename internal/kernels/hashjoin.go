package kernels

import (
	"fmt"

	"d2m/internal/mem"
	"d2m/internal/trace"
)

// HashJoin is a two-phase hash join: each node builds its partition of
// the build relation into a shared chained hash table (random writes to
// a shared structure — write-shared regions, the protocol's hardest
// case), then probes with its partition of the probe relation
// (sequential reads of the probe side, random reads of the table,
// sequential writes of the output). The phases alternate forever,
// exercising the Private↔Shared reclassification transitions.
type HashJoin struct {
	Buckets     int // hash-table buckets (power of two)
	BuildTuples int // build-side tuples per node
	ProbeTuples int // probe-side tuples per node
}

// Name implements Kernel.
func (HashJoin) Name() string { return "hashjoin" }

// Description implements Kernel.
func (k HashJoin) Description() string {
	return fmt.Sprintf("chained hash join: %d shared buckets, %d build / %d probe tuples per node",
		k.Buckets, k.BuildTuples, k.ProbeTuples)
}

// Streams implements Kernel.
func (k HashJoin) Streams(nodes int) []trace.Stream {
	check(k.Buckets > 0 && k.Buckets&(k.Buckets-1) == 0, "hashjoin: Buckets=%d not a power of two", k.Buckets)
	check(k.BuildTuples > 0 && k.ProbeTuples > 0, "hashjoin: empty relations")
	out := make([]trace.Stream, nodes)
	for n := 0; n < nodes; n++ {
		out[n] = k.stream(n, nodes)
	}
	return out
}

// hashKey is the join's deterministic hash function (splitmix-style).
func hashKey(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}

func (k HashJoin) stream(node, nodes int) trace.Stream {
	table := mem.Addr(sharedBase) + 0x300_0000             // bucket heads, 8B each
	entries := table + mem.Addr(k.Buckets)*8               // chain entries, 24B each, shared
	priv := mem.Addr(dataBase) + mem.Addr(node)*nodeStride // relations + output
	build := priv
	probe := build + mem.Addr(k.BuildTuples)*32
	outBuf := probe + mem.Addr(k.ProbeTuples)*32

	building := true
	t := 0 // tuple cursor within the current phase
	entrySeq := node * k.BuildTuples
	outSeq := 0
	return newEmitter(node, 3, 14, func(e *emitter) {
		if building {
			// Read the tuple (two 8B fields of a 32B record), hash its
			// key, push a new chain entry at the bucket head.
			key := hashKey(uint64(node)<<32 | uint64(t))
			e.load(build + mem.Addr(t)*32)
			e.load(build + mem.Addr(t)*32 + 8)
			b := table + mem.Addr(key&uint64(k.Buckets-1))*8
			ent := entries + mem.Addr(entrySeq%(k.BuildTuples*nodes))*24
			e.load(b)    // old head
			e.store(ent) // entry.next = old head (same line as key/val)
			e.store(b)   // head = entry
			e.store(ent + 8)
			entrySeq++
			if t++; t == k.BuildTuples {
				t, building = 0, false
			}
			return
		}
		// Probe: read the probe tuple, walk the chain (1-2 entries with
		// a deterministic "match" pattern), append any match.
		key := hashKey(uint64(node)<<40 | uint64(t)*3)
		e.load(probe + mem.Addr(t)*32)
		b := table + mem.Addr(key&uint64(k.Buckets-1))*8
		e.load(b)
		hops := 1 + int(key>>60)&1
		for h := 0; h < hops; h++ {
			ent := entries + mem.Addr((key>>8+uint64(h))%uint64(k.BuildTuples*nodes))*24
			e.load(ent)
		}
		if key&7 == 0 { // ~1/8 selectivity
			e.store(outBuf + mem.Addr(outSeq%k.ProbeTuples)*16)
			outSeq++
		}
		if t++; t == k.ProbeTuples {
			t, building = 0, true
		}
	})
}
