// Package kernels provides deterministic algorithmic workloads: real
// computations (matrix factorization, joins, graph traversal, ...) whose
// memory access streams are derived from the algorithms' actual index
// arithmetic rather than from statistical models. They complement the
// calibrated generators in internal/workloads with a ground-truth axis:
// the LU kernel, for example, reproduces §IV-D's conflict pathology from
// first principles (an in-place factorization over a matrix with a
// power-of-two leading dimension).
//
// Each kernel yields per-node streams that partition the computation;
// streams restart the computation when it completes, so they are
// infinite as the simulation engine requires. Every kernel interleaves
// instruction fetches from a small hot loop body with its data accesses,
// so the L1-I behaves realistically.
package kernels

import (
	"fmt"
	"sort"

	"d2m/internal/mem"
	"d2m/internal/trace"
)

// Kernel describes one algorithmic workload.
type Kernel interface {
	// Name identifies the kernel.
	Name() string
	// Description says what the computation is.
	Description() string
	// Streams returns one access stream per node; node i executes the
	// i-th partition of the computation, looping forever.
	Streams(nodes int) []trace.Stream
}

// Address-space layout: each kernel gets code at codeBase and data in
// per-kernel windows; per-node private partitions are offset by
// nodeStride.
const (
	codeBase   = 0x7_0000_0000
	dataBase   = 0x1_0000_0000
	sharedBase = 0x6_0000_0000
	nodeStride = 0x0400_0000 // 64MB per node partition
)

// emitter is the common plumbing: a kernel's generate callback pushes
// one batch of data accesses via load/store, and the stream hands them
// out one at a time, interleaving an instruction fetch before each. The
// fetches walk the kernel's hot loop body cyclically.
type emitter struct {
	node     int
	code     mem.LineAddr
	codeLen  int // loop body length in lines
	pc       int
	pending  []mem.Access
	pos      int
	fetched  bool             // a fetch already preceded the pending access
	generate func(e *emitter) // refills pending with one batch
}

func newEmitter(node int, kernelID, codeLines int, gen func(*emitter)) *emitter {
	return &emitter{
		node:     node,
		code:     (mem.Addr(codeBase) + mem.Addr(kernelID)*0x10_0000).Line(),
		codeLen:  codeLines,
		generate: gen,
	}
}

// load/store/fetch build the batch.
func (e *emitter) load(a mem.Addr) {
	e.pending = append(e.pending, mem.Access{Node: e.node, Addr: a, Kind: mem.Load})
}
func (e *emitter) store(a mem.Addr) {
	e.pending = append(e.pending, mem.Access{Node: e.node, Addr: a, Kind: mem.Store})
}

// Next implements trace.Stream: it interleaves one instruction fetch
// before every data access, walking the loop body cyclically.
func (e *emitter) Next() mem.Access {
	if e.pos >= len(e.pending) {
		e.pending = e.pending[:0]
		e.pos = 0
		for len(e.pending) == 0 {
			e.generate(e)
		}
	}
	if !e.fetched {
		e.fetched = true
		f := mem.Access{Node: e.node, Addr: (e.code + mem.LineAddr(e.pc)).Addr(), Kind: mem.IFetch}
		e.pc = (e.pc + 1) % e.codeLen
		return f
	}
	e.fetched = false
	a := e.pending[e.pos]
	e.pos++
	return a
}

// registry of kernels.
var registry []Kernel

// All returns every kernel.
func All() []Kernel {
	out := make([]Kernel, len(registry))
	copy(out, registry)
	return out
}

// ByName returns the named kernel.
func ByName(name string) (Kernel, bool) {
	for _, k := range registry {
		if k.Name() == name {
			return k, true
		}
	}
	return nil, false
}

// Names returns the kernel names, sorted.
func Names() []string {
	var out []string
	for _, k := range registry {
		out = append(out, k.Name())
	}
	sort.Strings(out)
	return out
}

func register(k Kernel) { registry = append(registry, k) }

func init() {
	register(MatMul{N: 96, Block: 16})
	register(LU{N: 128, LD: 4096})
	register(Stencil{W: 256, H: 64})
	register(HashJoin{Buckets: 1 << 14, BuildTuples: 1 << 13, ProbeTuples: 1 << 14})
	register(BFS{Vertices: 1 << 14, Degree: 8})
	register(KVStore{Keys: 1 << 13, HotKeys: 1 << 7, GetFrac: 0.85})
	register(SpMV{Rows: 1 << 12, NNZ: 12})
	register(MergeSort{N: 1 << 15})
}

// check panics on an invalid kernel parameterization.
func check(ok bool, format string, args ...interface{}) {
	if !ok {
		panic("kernels: " + fmt.Sprintf(format, args...))
	}
}
