// Package timing centralizes the access latencies (in core clock cycles)
// of every structure in the simulated memory system. Values are
// representative of the paper's A57-class mobile processor at 22nm
// (Table III); as with energy, only the relative magnitudes drive the
// reproduced shapes.
package timing

// Structure access latencies in cycles.
const (
	// L1 is a first-level cache access (tag+data for the baselines with
	// perfect way prediction, metadata+data-way for D2M).
	L1 = 2
	// L2 is a 256kB second-level cache access (tags then data).
	L2 = 10
	// LLCTag is a last-level cache tag search.
	LLCTag = 8
	// LLCData is a last-level data array access for one way.
	LLCData = 14
	// TLB is a first-level TLB lookup (overlapped with L1 in the
	// baselines; charged on the miss path).
	TLB = 1
	// TLB2 is a second-level TLB lookup.
	TLB2 = 6
	// MD1 is an MD1 metadata lookup. It is pipelined with the L1 access
	// just as the TLB it replaces, so it adds a single cycle.
	MD1 = 1
	// MD2 is an MD2 metadata lookup.
	MD2 = 6
	// MD3 is a shared-metadata (MD3) lookup, comparable to a directory.
	MD3 = 16
	// Dir is a baseline directory lookup.
	Dir = 16
	// DRAM is a memory access.
	DRAM = 120
)
