package timing

import "testing"

// TestLatencyOrdering pins the structural relationships the reproduction
// depends on: each level is slower than the one above it, metadata
// lookups are cheap relative to the data they locate, and DRAM dominates.
func TestLatencyOrdering(t *testing.T) {
	if !(L1 < L2 && L2 < LLCTag+LLCData && LLCData < DRAM) {
		t.Error("cache level latencies not monotonically increasing")
	}
	if MD1 > TLB+1 {
		t.Error("MD1 must cost no more than the TLB lookup it replaces (§II-A)")
	}
	if MD2 > LLCTag+LLCData {
		t.Error("an MD2 lookup must be cheaper than an LLC access")
	}
	if MD3 != Dir {
		t.Error("MD3 and the baseline directory should cost the same (fair comparison)")
	}
	if DRAM < 5*(LLCTag+LLCData) {
		t.Error("DRAM must dominate on-chip latencies")
	}
}
