package core

import (
	"fmt"

	"d2m/internal/noc"
)

// Config describes a D2M system. The zero value is not usable; start from
// DefaultConfig.
type Config struct {
	// Nodes is the number of cores/nodes (1..8; the 6-bit LI encoding
	// caps NodeID at 3 bits).
	Nodes int

	// L1Sets and L1Ways give the geometry of each L1-I and L1-D.
	L1Sets, L1Ways int
	// L2Sets and L2Ways give the geometry of the per-node L2; zero sets
	// means no private L2 (the evaluated D2M configurations, Figure 4).
	L2Sets, L2Ways int
	// LLCSets and LLCWays give the far-side LLC geometry. Ignored when
	// NearSide is set.
	LLCSets, LLCWays int
	// NearSide moves the LLC to per-node slices (§IV-B).
	NearSide bool
	// SliceSets and SliceWays give each NS-LLC slice's geometry.
	SliceSets, SliceWays int

	// Metadata store geometries, in region entries.
	MD1Sets, MD1Ways int
	MD2Sets, MD2Ways int
	MD3Sets, MD3Ways int

	// Placement selects the NS-LLC victim-slice policy (§IV-B: "We
	// evaluated several different policies"). The zero value is the
	// paper's pressure-based policy; PlaceLocal and PlaceSpread are the
	// endpoints of the design space, for ablations.
	Placement PlacementPolicy
	// Replication enables the cooperative-caching heuristic of §IV-C:
	// instructions are always replicated into the local NS-LLC slice,
	// and data read from the MRU position of a remote slice is
	// replicated. Requires NearSide.
	Replication bool
	// DynamicIndexing assigns each region a random index scramble when
	// its MD3 entry is created (§IV-D).
	DynamicIndexing bool
	// MD2Pruning enables the pruning heuristic of §IV-A: an MD2 entry
	// is dropped when an invalidation arrives for a region with no
	// local copies and an inactive MD1 entry.
	MD2Pruning bool
	// LockBits is the number of hashed lock bits serializing region
	// transactions at MD3 (appendix: "1K lock bits result in a
	// negligible collision rate"). Zero selects the paper's 1024.
	LockBits int
	// TraditionalL1 models the paper's §III-A interoperability variant:
	// "unmodified cores with traditional TLBs and L1 caches, and
	// traditional coherence interfaces (e.g., ARM's ACE interface)
	// while achieving most of the reported D2M advantages". The L1s
	// stay tagged (every access pays a TLB lookup and an associative
	// tag search, as in the baselines) and the MD1 stores disappear —
	// the metadata hierarchy starts at MD2. Everything below the L1
	// (direct-to-master misses, near-side slices, replication) is
	// unchanged.
	TraditionalL1 bool
	// Prefetch enables the metadata-guided next-line prefetcher, one of
	// the extensions §IV-D says the region metadata makes easy ("can be
	// easily extended to record ... prefetch statistics"): on a read
	// miss, the next line of the region is fetched off the critical
	// path when its Location Information already names an LLC slot or
	// memory — no probing or tag checks needed to know where it is.
	Prefetch bool
	// CacheBypass enables the bypass optimization from the paper's §I
	// list: regions whose metadata shows streaming behaviour (lines
	// installed but barely re-touched) skip L1 allocation — data is
	// served to the core and placed (or left) at the LLC level, "while
	// retaining the benefits of inclusion for other data".
	CacheBypass bool

	// AdaptiveWays enables online capacity repartitioning between each
	// node's L1-D data store and its MD1-D metadata store (the
	// d2m-adaptive mechanism): both keep their full geometry, but only
	// an "active" prefix of ways is usable on each side, and the split
	// is re-balanced at every epoch boundary toward whichever side
	// missed more during the interval (in the spirit of Graphite's
	// evolveNaive I/D repartitioner). The active budget is
	// AdaptiveWayBudget ways total, each side within
	// [AdaptiveMinWays, AdaptiveMaxWays].
	AdaptiveWays bool
	// EpochLen is the repartitioning interval in accesses (zero selects
	// DefaultEpochLen). Only meaningful with AdaptiveWays.
	EpochLen int

	// LevelPred enables the per-region cache-level predictor (the
	// d2m-levelpred mechanism): each node predicts, per region, the
	// level that served the region's last access and issues a
	// speculative parallel data lookup next to the MD walk. A correct
	// prediction overlaps the metadata and data latencies (the shorter
	// of the two comes off the critical path); a wrong one pays the
	// wasted probe's energy but no extra latency. Deterministic LI makes
	// the speculation safe: the probe can never observe stale data,
	// because the LI walked in parallel still validates the location.
	LevelPred bool
	// PredEntries sizes each node's direct-mapped predictor table (a
	// power of two; zero selects DefaultPredEntries).
	PredEntries int

	// Topology selects the interconnect model (nil = crossbar, the
	// calibrated default). Near-side locality gains grow on ring/mesh
	// topologies, where distance varies with placement.
	Topology noc.Topology

	// Seed drives every stochastic policy decision.
	Seed uint64

	// CoherenceDebug threads a data-version oracle through every data
	// movement so tests can prove that each read observes the latest
	// write. It costs memory proportional to the footprint; leave it
	// off for benchmarking runs.
	CoherenceDebug bool
}

// DefaultConfig returns the paper's Table III configuration: eight nodes,
// 32kB 8-way L1s, no private L2, an 8MB LLC (far-side monolithic 32-way,
// or eight 1MB 4-way near-side slices), and 128/4k/16k-entry MD1/MD2/MD3.
func DefaultConfig() Config {
	return Config{
		Nodes:  8,
		L1Sets: 64, L1Ways: 8, // 32kB
		L2Sets: 0, L2Ways: 0,
		LLCSets: 4096, LLCWays: 32, // 8MB far-side
		SliceSets: 4096, SliceWays: 4, // 1MB per slice, 8MB total
		MD1Sets: 16, MD1Ways: 8, // 128 regions
		MD2Sets: 512, MD2Ways: 8, // 4k regions
		MD3Sets: 1024, MD3Ways: 16, // 16k regions
		LockBits: 1024,
		Seed:     1,
	}
}

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	switch {
	case c.Nodes < 1 || c.Nodes > 8:
		return fmt.Errorf("core: Nodes = %d, want 1..8 (3-bit NodeID)", c.Nodes)
	case c.L1Sets <= 0 || c.L1Ways <= 0 || c.L1Ways > 8:
		return fmt.Errorf("core: L1 geometry %dx%d invalid (3-bit way)", c.L1Sets, c.L1Ways)
	case c.L2Sets < 0 || (c.L2Sets > 0 && (c.L2Ways <= 0 || c.L2Ways > 8)):
		return fmt.Errorf("core: L2 geometry %dx%d invalid", c.L2Sets, c.L2Ways)
	case !c.NearSide && (c.LLCSets <= 0 || c.LLCWays <= 0 || c.LLCWays > 32):
		return fmt.Errorf("core: LLC geometry %dx%d invalid (5-bit way)", c.LLCSets, c.LLCWays)
	case c.NearSide && (c.SliceSets <= 0 || c.SliceWays <= 0 || c.SliceWays > 4):
		return fmt.Errorf("core: slice geometry %dx%d invalid (2-bit way)", c.SliceSets, c.SliceWays)
	case c.MD1Sets <= 0 || c.MD1Ways <= 0 || c.MD2Sets <= 0 || c.MD2Ways <= 0 || c.MD3Sets <= 0 || c.MD3Ways <= 0:
		return fmt.Errorf("core: metadata geometry invalid")
	case c.Replication && !c.NearSide:
		return fmt.Errorf("core: Replication requires NearSide")
	case c.LockBits < 0:
		return fmt.Errorf("core: LockBits = %d negative", c.LockBits)
	case c.AdaptiveWays && c.L1Ways < AdaptiveMaxWays:
		return fmt.Errorf("core: AdaptiveWays needs L1Ways >= %d, have %d", AdaptiveMaxWays, c.L1Ways)
	case c.AdaptiveWays && c.MD1Ways < AdaptiveMaxWays:
		return fmt.Errorf("core: AdaptiveWays needs MD1Ways >= %d, have %d", AdaptiveMaxWays, c.MD1Ways)
	case c.EpochLen < 0:
		return fmt.Errorf("core: EpochLen = %d negative", c.EpochLen)
	case c.PredEntries < 0 || (c.PredEntries > 0 && c.PredEntries&(c.PredEntries-1) != 0):
		return fmt.Errorf("core: PredEntries = %d, want a power of two", c.PredEntries)
	}
	return nil
}

// Adaptive way-repartitioning parameters (Config.AdaptiveWays): each
// node splits AdaptiveWayBudget active ways between its L1-D data store
// and its MD1-D metadata store, each side staying within
// [AdaptiveMinWays, AdaptiveMaxWays] of its 8-way geometry.
const (
	AdaptiveWayBudget = 12
	AdaptiveMinWays   = 4
	AdaptiveMaxWays   = 8
	// DefaultEpochLen is the repartitioning interval when
	// Config.EpochLen is zero.
	DefaultEpochLen = 8192
	// adaptiveMinActivity is the minimum interval miss count below
	// which an epoch leaves the split alone (too little signal). A node
	// sees EpochLen/Nodes accesses per epoch — about 1k at the default
	// geometry — so this floor asks for ~1.5% combined miss activity
	// before moving a way.
	adaptiveMinActivity = 16
)

// DefaultPredEntries is the per-node predictor table size when
// Config.PredEntries is zero.
const DefaultPredEntries = 512
