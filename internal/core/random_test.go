package core

import (
	"fmt"
	"testing"

	"d2m/internal/mem"
)

// randomWorkload drives a system with a seeded random access stream over
// a mixed private/shared footprint and audits the invariants
// periodically. With the tiny testConfig geometries this exercises every
// eviction and reclassification cascade thousands of times; the
// coherence oracle additionally proves every read observes the latest
// write.
func randomWorkload(t *testing.T, cfg Config, seed uint64, accesses, regions int, shareFrac, writeFrac, instrFrac float64) {
	t.Helper()
	s := NewSystem(cfg)
	rng := mem.NewRNG(seed)
	sharedCut := int(float64(regions) * shareFrac)
	for i := 0; i < accesses; i++ {
		node := rng.Intn(cfg.Nodes)
		var region int
		if rng.Bool(shareFrac) && sharedCut > 0 {
			region = rng.Intn(sharedCut) // shared pool, all nodes
		} else {
			// Private pool: disjoint per node.
			region = sharedCut + node + cfg.Nodes*rng.Intn((regions-sharedCut)/cfg.Nodes+1)
		}
		kind := mem.Load
		switch {
		case rng.Bool(instrFrac):
			kind = mem.IFetch
			region += 1 << 20 // code lives in its own regions
		case rng.Bool(writeFrac):
			kind = mem.Store
		}
		a := mem.Access{Node: node, Addr: mem.RegionAddr(region).Line(rng.Intn(mem.LinesPerRegion)).Addr(), Kind: kind}
		s.Access(a)
		if i%997 == 0 {
			if err := s.CheckInvariants(); err != nil {
				t.Fatalf("seed %d after %d accesses (%v): %v", seed, i, a, err)
			}
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("seed %d at end: %v", seed, err)
	}
	st := s.Stats()
	if st.Accesses != uint64(accesses) {
		t.Fatalf("accesses = %d, want %d", st.Accesses, accesses)
	}
	// Basic sanity on the counters.
	if st.L1IHits+st.L1IMisses+st.L1DHits+st.L1DMisses != uint64(accesses) {
		t.Error("hit/miss counters do not add up")
	}
	if st.MD1Hits+st.MD2Hits+st.MDMisses != uint64(accesses) {
		t.Error("metadata level counters do not add up")
	}
}

func TestRandomFarSide(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			randomWorkload(t, testConfig(false), seed, 20000, 48, 0.3, 0.3, 0.3)
		})
	}
}

func TestRandomNearSide(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			randomWorkload(t, testConfig(true), seed, 20000, 48, 0.3, 0.3, 0.3)
		})
	}
}

func TestRandomNearSideReplication(t *testing.T) {
	cfg := testConfig(true)
	cfg.Replication = true
	for seed := uint64(1); seed <= 4; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			randomWorkload(t, cfg, seed, 20000, 48, 0.4, 0.3, 0.3)
		})
	}
}

func TestRandomAllOptimizations(t *testing.T) {
	cfg := testConfig(true)
	cfg.Replication = true
	cfg.DynamicIndexing = true
	cfg.MD2Pruning = true
	for seed := uint64(1); seed <= 6; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			randomWorkload(t, cfg, seed, 25000, 64, 0.4, 0.35, 0.25)
		})
	}
}

func TestRandomWithL2(t *testing.T) {
	cfg := testConfig(false)
	cfg.L2Sets, cfg.L2Ways = 8, 4
	for seed := uint64(1); seed <= 4; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			randomWorkload(t, cfg, seed, 20000, 48, 0.3, 0.3, 0.3)
		})
	}
}

func TestRandomPruningHeavySharing(t *testing.T) {
	cfg := testConfig(false)
	cfg.MD2Pruning = true
	for seed := uint64(1); seed <= 4; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			randomWorkload(t, cfg, seed, 20000, 24, 0.8, 0.5, 0.1)
		})
	}
}

func TestRandomSingleNodeD2DMode(t *testing.T) {
	// One node: the system degenerates to D2D (private hierarchy only);
	// everything must classify private and no invalidations occur.
	cfg := testConfig(false)
	cfg.Nodes = 1
	s := NewSystem(cfg)
	rng := mem.NewRNG(3)
	for i := 0; i < 20000; i++ {
		kind := mem.Load
		if rng.Bool(0.3) {
			kind = mem.Store
		}
		s.Access(mem.Access{Node: 0, Addr: mem.RegionAddr(rng.Intn(40)).Line(rng.Intn(16)).Addr(), Kind: kind})
		if i%1499 == 0 {
			if err := s.CheckInvariants(); err != nil {
				t.Fatalf("after %d: %v", i, err)
			}
		}
	}
	st := s.Stats()
	if st.InvRecv != 0 || st.EvC != 0 || st.EvD2 != 0 || st.EvD3 != 0 || st.EvF != 0 {
		t.Errorf("single-node system ran coherence: inv=%d C=%d D2=%d D3=%d F=%d",
			st.InvRecv, st.EvC, st.EvD2, st.EvD3, st.EvF)
	}
	if st.SharedMisses != 0 {
		t.Errorf("single-node system recorded %d shared misses", st.SharedMisses)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomMigratorySharing(t *testing.T) {
	// Migratory pattern: nodes take turns writing the same small set of
	// lines — the worst case for master movement and NodeID chasing.
	cfg := testConfig(false)
	cfg.MD2Pruning = true
	s := NewSystem(cfg)
	rng := mem.NewRNG(11)
	for i := 0; i < 15000; i++ {
		node := (i / 10) % cfg.Nodes
		a := mem.RegionAddr(rng.Intn(4)).Line(rng.Intn(16)).Addr()
		kind := mem.Load
		if rng.Bool(0.5) {
			kind = mem.Store
		}
		s.Access(mem.Access{Node: node, Addr: a, Kind: kind})
		if i%991 == 0 {
			if err := s.CheckInvariants(); err != nil {
				t.Fatalf("after %d: %v", i, err)
			}
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if s.Stats().EvC == 0 || s.Stats().EvANode == 0 {
		t.Error("migratory pattern exercised no master movement")
	}
}

// TestRandomGeometries fuzzes the machine shape itself: random (power-
// of-two) geometries for every structure, random optimization flags, and
// a random access mix — all under the coherence oracle and the invariant
// auditor. This is the broadest net for cascade bugs that only appear at
// unusual aspect ratios (single-set tables, single-way caches, tiny
// MD3s that flush constantly).
func TestRandomGeometries(t *testing.T) {
	pow2 := func(r *mem.RNG, min, max int) int {
		v := min
		for v < max && r.Bool(0.5) {
			v *= 2
		}
		return v
	}
	for trial := 0; trial < 12; trial++ {
		rng := mem.NewRNG(uint64(trial) + 100)
		cfg := Config{
			Nodes:  1 + rng.Intn(8),
			L1Sets: pow2(rng, 2, 16), L1Ways: 1 + rng.Intn(4),
			MD1Sets: pow2(rng, 1, 4), MD1Ways: 1 + rng.Intn(4),
			MD2Sets: pow2(rng, 1, 8), MD2Ways: 2 + rng.Intn(4),
			MD3Sets: pow2(rng, 2, 16), MD3Ways: 2 + rng.Intn(6),
			LockBits:       pow2(rng, 2, 1024),
			CoherenceDebug: true,
			Seed:           uint64(trial),
		}
		if rng.Bool(0.5) {
			cfg.NearSide = true
			cfg.SliceSets = pow2(rng, 4, 32)
			cfg.SliceWays = 1 + rng.Intn(4)
			cfg.Replication = rng.Bool(0.5)
		} else {
			cfg.LLCSets = pow2(rng, 4, 64)
			cfg.LLCWays = 1 + rng.Intn(8)
		}
		if rng.Bool(0.4) {
			cfg.L2Sets = pow2(rng, 2, 16)
			cfg.L2Ways = 1 + rng.Intn(4)
		}
		cfg.MD2Pruning = rng.Bool(0.5)
		cfg.DynamicIndexing = rng.Bool(0.5)
		cfg.CacheBypass = rng.Bool(0.3)
		cfg.Prefetch = rng.Bool(0.3)
		cfg.TraditionalL1 = rng.Bool(0.3)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("trial %d: generated invalid config: %v", trial, err)
		}
		s := NewSystem(cfg)
		regions := 8 + rng.Intn(56)
		for i := 0; i < 12000; i++ {
			node := rng.Intn(cfg.Nodes)
			kind := mem.Load
			region := rng.Intn(regions)
			switch {
			case rng.Bool(0.25):
				kind = mem.IFetch
				region += 1 << 20
			case rng.Bool(0.35):
				kind = mem.Store
			}
			s.Access(mem.Access{Node: node, Addr: mem.RegionAddr(region).Line(rng.Intn(16)).Addr(), Kind: kind})
			if i%1499 == 0 {
				if err := s.CheckInvariants(); err != nil {
					t.Fatalf("trial %d (cfg %+v) after %d: %v", trial, cfg, i, err)
				}
			}
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("trial %d at end: %v", trial, err)
		}
	}
}
