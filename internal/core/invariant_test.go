package core

import (
	"strings"
	"testing"

	"d2m/internal/mem"
)

// The invariant auditor is the foundation the random test suite stands
// on; these meta-tests corrupt a healthy machine in controlled ways and
// verify the auditor flags each class of violation. An auditor that
// silently accepts corruption would make every green test meaningless.

// healthySystem builds a small machine with a spread of state: private
// and shared regions, L1/L2/LLC residency, replicas and masters.
func healthySystem(t *testing.T, nearSide bool) *System {
	t.Helper()
	cfg := testConfig(nearSide)
	cfg.L2Sets, cfg.L2Ways = 8, 2
	s := NewSystem(cfg)
	rng := mem.NewRNG(77)
	for i := 0; i < 5000; i++ {
		kind := mem.Load
		if rng.Bool(0.3) {
			kind = mem.Store
		}
		s.Access(mem.Access{Node: rng.Intn(cfg.Nodes), Addr: addrOf(rng.Intn(24), rng.Intn(16)), Kind: kind})
	}
	mustCheck(t, s)
	return s
}

// corrupt applies fn to the system and expects the auditor to complain
// with a message containing want.
func corrupt(t *testing.T, s *System, want string, fn func() bool) {
	t.Helper()
	if !fn() {
		t.Skip("no state of the required shape to corrupt")
	}
	err := s.CheckInvariants()
	if err == nil {
		t.Fatalf("auditor accepted corruption (wanted %q)", want)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("auditor said %q, wanted it to mention %q", err, want)
	}
}

func TestAuditorDetectsBrokenLI(t *testing.T) {
	s := healthySystem(t, false)
	corrupt(t, s, "determinism", func() bool {
		for _, n := range s.nodes {
			var done bool
			n.md2.ForEach(func(set, way int, key uint64) {
				if done {
					return
				}
				ent := n.md2Ent[n.md2.Index(set, way)]
				for idx := range ent.li {
					if ent.li[idx].Kind == LocL1 {
						// Point the LI at a (likely) wrong way.
						ent.li[idx].Way = (ent.li[idx].Way + 1) % s.cfg.L1Ways
						done = true
						return
					}
				}
			})
			if done {
				return true
			}
		}
		return false
	})
}

func TestAuditorDetectsClearedPB(t *testing.T) {
	s := healthySystem(t, false)
	corrupt(t, s, "PB bit clear", func() bool {
		for _, n := range s.nodes {
			var region mem.RegionAddr
			found := false
			n.md2.ForEach(func(set, way int, key uint64) {
				if !found {
					region = mem.RegionAddr(key)
					found = true
				}
			})
			if found {
				s.md3Probe(region).clearPB(n.id)
				return true
			}
		}
		return false
	})
}

func TestAuditorDetectsWrongPrivateBit(t *testing.T) {
	s := healthySystem(t, false)
	corrupt(t, s, "class", func() bool {
		for _, n := range s.nodes {
			var ent *nodeRegion
			n.md2.ForEach(func(set, way int, key uint64) {
				if ent == nil {
					ent = n.md2Ent[n.md2.Index(set, way)]
				}
			})
			if ent != nil {
				ent.private = !ent.private
				return true
			}
		}
		return false
	})
}

func TestAuditorDetectsDoubleDirty(t *testing.T) {
	s := healthySystem(t, false)
	corrupt(t, s, "dirty", func() bool {
		// Make a replica dirty: two dirty copies (or dirty non-master).
		for _, n := range s.nodes {
			found := false
			n.l1d.forEach(func(set, way int, sl *slot) {
				if !found && !sl.master {
					sl.dirty = true
					found = true
				}
			})
			if found {
				return true
			}
		}
		return false
	})
}

func TestAuditorDetectsBogusExcl(t *testing.T) {
	s := healthySystem(t, false)
	corrupt(t, s, "excl", func() bool {
		// Mark a replicated line's copy exclusive.
		for _, n := range s.nodes {
			found := false
			n.l1d.forEach(func(set, way int, sl *slot) {
				if found || sl.excl {
					return
				}
				// Only lines with >1 copies trip the excl audit; a
				// replica implies a master elsewhere.
				if !sl.master {
					sl.excl = true
					found = true
				}
			})
			if found {
				return true
			}
		}
		return false
	})
}

func TestAuditorDetectsOrphanDirtyMaster(t *testing.T) {
	s := healthySystem(t, false)
	corrupt(t, s, "orphan dirty master", func() bool {
		// Take a clean LLC master nothing dirty points at, sever every
		// reference, and dirty it: a lost update.
		var target *slot
		s.far.forEach(func(set, way int, sl *slot) {
			if target == nil && sl.master {
				target = sl
			}
		})
		if target == nil {
			return false
		}
		line := target.line
		r := line.Region()
		idx := line.Index()
		if d := s.md3Probe(r); d != nil && d.li[idx].Kind == LocLLC {
			d.li[idx] = Mem()
		}
		for _, n := range s.nodes {
			if ent := n.entry(r); ent != nil {
				if ent.li[idx].Kind == LocLLC {
					ent.li[idx] = Mem()
				} else if ent.li[idx].Local() {
					if _, _, lsl := n.localSlot(ent, idx); !lsl.master {
						lsl.rp = Mem()
					}
				}
			}
		}
		target.dirty = true
		return true
	})
}

func TestAuditorDetectsScrambleDivergence(t *testing.T) {
	cfg := testConfig(false)
	cfg.DynamicIndexing = true
	s := NewSystem(cfg)
	rng := mem.NewRNG(78)
	for i := 0; i < 3000; i++ {
		s.Access(mem.Access{Node: rng.Intn(cfg.Nodes), Addr: addrOf(rng.Intn(16), rng.Intn(16)), Kind: mem.Load})
	}
	mustCheck(t, s)
	corrupt(t, s, "scramble", func() bool {
		for _, n := range s.nodes {
			var ent *nodeRegion
			n.md2.ForEach(func(set, way int, key uint64) {
				if ent == nil {
					e := n.md2Ent[n.md2.Index(set, way)]
					// Pick an entry with no local lines so only the
					// scramble check trips (not determinism).
					if n.localLineCount(e) == 0 {
						ent = e
					}
				}
			})
			if ent != nil {
				ent.scramble ^= 0xdead
				return true
			}
		}
		return false
	})
}
