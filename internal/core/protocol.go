package core

import (
	"fmt"

	"d2m/internal/energy"
	"d2m/internal/mem"
	"d2m/internal/noc"
	"d2m/internal/timing"
)

// Result describes one access's outcome, consumed by the simulation
// engine's timing model.
type Result struct {
	// Latency is the access's critical-path latency in cycles,
	// excluding what the core pipeline hides for L1 hits.
	Latency uint64
	// L1Hit reports whether the line was present in the L1.
	L1Hit bool
	// Instr reports whether this was an instruction fetch.
	Instr bool
	// Write reports whether this was a store.
	Write bool
}

// Access performs one memory access against the split hierarchy,
// resolving it as a single atomic region transaction (the MD3 blocking
// mechanism guarantees one outstanding transaction per region, which is
// what makes this serialization faithful).
func (s *System) Access(a mem.Access) Result {
	if a.Node < 0 || a.Node >= s.cfg.Nodes {
		panic(fmt.Sprintf("core: access from node %d of %d", a.Node, s.cfg.Nodes))
	}
	s.tickEpoch()
	n := s.nodes[a.Node]
	line := a.Addr.Line()
	r := line.Region()
	idx := line.Index()

	s.st.Accesses++
	switch a.Kind {
	case mem.IFetch:
		s.st.Instr++
	case mem.Load:
		s.st.Reads++
	default:
		s.st.Writes++
	}

	t := &txn{}
	s.bypassServed = false
	instr := a.Kind.IsInstr()
	ent, lvl := s.lookupMD(n, instr, r, t)
	indirect := false
	if ent == nil {
		ent = s.mdMiss(n, instr, r, t)
		indirect = true
	}
	li := ent.li[idx]
	if lvl == mdHitMD1 {
		switch li.Kind {
		case LocL1:
			s.st.MD1CoverL1++
		case LocL2:
			s.st.MD1CoverL2++
		case LocLLC:
			s.st.MD1CoverLLC++
		case LocMem:
			s.st.MD1CoverMem++
		}
	}
	ent.noteTouch()
	if s.cfg.TraditionalL1 && lvl == mdHitMD2 && li.Kind != LocL1 {
		// Hybrid front-end (§III-A): the miss consults MD2 (with its
		// TLB2 translation) to obtain the direct-to-master location.
		s.meter.Do(energy.OpTLB2, 1)
		s.meter.Do(energy.OpMD2, 1)
		t.add(timing.TLB2 + timing.MD2)
	}

	// Level prediction (D2M-LevelPred): consult the predictor and mark
	// the metadata walk's latency; the speculation settles after the
	// dispatch below, when the serving level is known.
	mdLat := t.lat
	predIdx, predicted, predValid := 0, LocInvalid, false
	if n.pred != nil {
		predIdx = n.predSlot(r)
		if v := n.pred[predIdx]; v != 0 {
			predicted, predValid = LocKind(v-1), true
		}
	}

	var hit bool
	if a.Kind.IsWrite() {
		var ind bool
		hit, ind = s.write(n, ent, idx, line, t)
		indirect = indirect || ind
	} else {
		var ind bool
		hit, ind = s.read(n, ent, idx, line, li, instr, t)
		indirect = indirect || ind
	}
	if s.verMem != nil {
		s.oracleCheck(n, ent, idx, line, a.Kind.IsWrite())
	}
	if s.cfg.Prefetch && !hit && !a.Kind.IsWrite() && !s.bypassServed && !s.inPrefetch {
		s.prefetchNext(n, ent, idx, instr)
	}
	if s.cfg.AdaptiveWays && !instr {
		// Interval counters for the epoch repartitioning policy: a
		// data-stream MD1 miss signals metadata pressure, a data-stream
		// L1 miss signals data pressure.
		if lvl != mdHitMD1 {
			n.epochMDMisses++
		}
		if !hit {
			n.epochDataMisses++
		}
	}
	if n.pred != nil {
		s.levelPredResolve(n, predIdx, predicted, predValid, li, mdLat, t)
	}

	if hit {
		if instr {
			s.st.L1IHits++
		} else {
			s.st.L1DHits++
		}
	} else {
		if instr {
			s.st.L1IMisses++
		} else {
			s.st.L1DMisses++
		}
		s.st.MissCount++
		s.st.MissLatencySum += t.lat
		if ent.private {
			s.st.PrivateMisses++
		} else {
			s.st.SharedMisses++
		}
		if indirect {
			s.st.IndirectMisses++
		} else {
			s.st.DirectMisses++
		}
	}
	return Result{Latency: t.lat, L1Hit: hit, Instr: instr, Write: a.Kind.IsWrite()}
}

// oracleCheck runs under Config.CoherenceDebug after every access. Every
// access leaves the line in the L1, so the final slot is inspected: a
// write stamps a fresh global version; a read must observe the version of
// the latest write (or 0 for never-written lines) — the memory-consistency
// statement the protocol must uphold.
func (s *System) oracleCheck(n *node, ent *nodeRegion, idx int, line mem.LineAddr, write bool) {
	if s.bypassServed {
		// Bypassed read: the data went straight to the core; the staged
		// transfer version is what it observed.
		if want := s.verLatest[line]; s.xfer != want {
			panic(fmt.Sprintf("core: coherence violation on bypassed read: node %d saw version %d of %v, latest write is %d",
				n.id, s.xfer, line, want))
		}
		return
	}
	if ent.li[idx].Kind != LocL1 {
		panic(fmt.Sprintf("core: access to %v left LI at %v, want L1", line, ent.li[idx]))
	}
	_, _, sl := n.localSlot(ent, idx)
	if write {
		s.verSeq++
		sl.ver = s.verSeq
		s.verLatest[line] = s.verSeq
		return
	}
	if want := s.verLatest[line]; sl.ver != want {
		panic(fmt.Sprintf("core: coherence violation: node %d read version %d of %v, latest write is %d",
			n.id, sl.ver, line, want))
	}
}

// ensureStream makes region ent's L1-resident lines live in the L1 array
// matching the access stream, force-evicting them from the other array on
// a stream switch (regions are overwhelmingly single-stream; this keeps
// the single-LI-per-line invariant on the rare mixed region).
func (s *System) ensureStream(n *node, ent *nodeRegion, instr bool, t *txn) {
	if ent.instrStream == instr {
		return
	}
	for idx := range ent.li {
		if ent.li[idx].Kind == LocL1 {
			s.evictNodeLine(n, ent, idx, t)
		}
	}
	ent.instrStream = instr
}

// installL1 places line into node n's stream-matching L1 and points the
// region LI at it.
func (s *System) installL1(n *node, ent *nodeRegion, idx int, line mem.LineAddr, instr, master, dirty, excl bool, rp Location, t *txn) {
	s.ensureStream(n, ent, instr, t)
	st := n.l1d
	if instr {
		st = n.l1i
	}
	set := st.setFor(line, ent.scramble)
	way := s.freeWay(n, st, set, t)
	// The eviction cascade freeWay just ran may have reclaimed the LLC
	// slot a replica RP (captured before the cascade) points at. Degrade
	// the RP to the staged master location if one is known (it may hold
	// dirty data memory lacks), and to memory otherwise (a reclaimed
	// master always writes back first, so memory is then coherent).
	if checked := s.validateRP(line, ent.scramble, rp); checked != rp {
		rp = s.validateRP(line, ent.scramble, s.rpFallback)
	}
	s.rpFallback = Mem()
	s.meter.Do(st.op, 1)
	st.install(set, way, line, master, dirty, excl, rp).ver = s.xfer
	ent.noteInstall()
	ent.li[idx] = InL1(way)
}

// validateRP checks that a concrete LLC Replacement Pointer still names
// a slot holding line, degrading to memory when the slot was reclaimed
// by a concurrent eviction cascade.
func (s *System) validateRP(line mem.LineAddr, scramble uint64, rp Location) Location {
	if rp.Kind != LocLLC || rp.Way == WayUnresolved {
		return rp
	}
	st := s.llcStore(rp)
	sl := st.at(st.setFor(line, scramble), rp.Way)
	if !sl.valid || sl.line != line {
		return Mem()
	}
	return rp
}

// read services a load or instruction fetch given the node's region
// metadata and the line's LI (li must be ent.li[idx] as of the call —
// callers that already loaded it pass it through). It returns whether
// the L1 held the line and whether the access needed an MD3
// indirection.
func (s *System) read(n *node, ent *nodeRegion, idx int, line mem.LineAddr, li Location, instr bool, t *txn) (hit, indirect bool) {
	switch li.Kind {
	case LocL1:
		if ent.instrStream != instr {
			// Stream switch: refetch through the normal path (the
			// eviction may have moved the line, so reload the LI).
			s.ensureStream(n, ent, instr, t)
			return s.read(n, ent, idx, line, ent.li[idx], instr, t)
		}
		st, i, sl := n.localSlotI(ent, idx)
		st.tbl.TouchSlot(i)
		s.meter.Do(st.op, 1)
		t.add(st.lat)
		if sl.prefetched {
			sl.prefetched = false
			s.st.PrefetchUseful++
		}
		return true, false

	case LocL2:
		// Move the line up into the L1 (the node shuffles its own
		// levels without telling anyone, §III-A).
		st, set, sl := n.localSlot(ent, idx)
		s.meter.Do(st.op, 1)
		t.add(st.lat)
		cp := *sl
		st.drop(set, li.Way)
		s.st.L2Hits++
		s.xfer = cp.ver
		s.installL1(n, ent, idx, line, instr, cp.master, cp.dirty, cp.excl, cp.rp, t)
		return false, false

	case LocLLC:
		if s.shouldBypass(ent, instr) {
			s.bypassReadLLC(n, ent, idx, line, instr, li, t)
			s.st.EvALLC++
			return false, false
		}
		s.readFromLLC(n, ent, idx, line, instr, li, t)
		s.st.EvALLC++
		return false, false

	case LocNode:
		ind := s.readFromNode(n, ent, idx, line, instr, li.Node, t, 0)
		s.st.EvANode++
		return false, ind

	case LocMem:
		if s.shouldBypass(ent, instr) {
			s.bypassReadMem(n, ent, idx, line, instr, t)
			s.st.EvAMem++
			return false, false
		}
		s.readFromMem(n, ent, idx, line, instr, t)
		s.st.EvAMem++
		return false, false

	default:
		panic(fmt.Sprintf("core: read with LI %v", li))
	}
}

// readFromLLC performs a direct read of an LLC location the metadata
// guarantees valid, installs an L1 replica, and applies the replication
// heuristic for remote near-side hits.
func (s *System) readFromLLC(n *node, ent *nodeRegion, idx int, line mem.LineAddr, instr bool, li Location, t *txn) {
	st := s.llcStore(li)
	set := st.setFor(line, ent.scramble)
	sl := st.get(set, li.Way, line)
	local := s.llcIsLocal(li, n.id)
	s.meter.Do(st.op, 1)
	if local {
		t.add(st.lat)
	} else {
		t.add(s.sendLLC(n.id, li, noc.Ctrl, noc.Base)) // direct read request
		t.add(st.lat)
		t.add(s.sendLLC(n.id, li, noc.Data, noc.Base)) // data reply
	}
	st.touch(set, li.Way)
	s.st.LLCHits++
	switch {
	case instr && local:
		s.st.LLCLocalHitsI++
	case instr:
		s.st.LLCRemoteHitsI++
	case local:
		s.st.LLCLocalHitsD++
	default:
		s.st.LLCRemoteHitsD++
	}

	rp := li // the L1 replica's RP names the copy it was read from
	s.xfer = sl.ver
	// Stage the true master location as the RP degradation fallback.
	if sl.master {
		s.rpFallback = li
	} else {
		s.rpFallback = sl.rp
	}
	if !local && s.shouldReplicate(instr, st, set, li.Way) {
		// §IV-C: replicate into the local slice; the L1 replica then
		// chains to the local replica, which chains to the master.
		masterLoc := li
		if !sl.master {
			masterLoc = sl.rp
		}
		rp = s.llcInstallReplica(n.id, line, ent, masterLoc, sl.ver, t)
		s.st.Replications++
	}
	s.xfer = sl.ver
	s.installL1(n, ent, idx, line, instr, false, false, false, rp, t)
}

// prefetchNext brings the region's next line into the L1 off the
// critical path when the metadata already knows a concrete location for
// it (an LLC slot or memory). The traffic and energy are charged; no
// latency is, since the demand access has already completed.
func (s *System) prefetchNext(n *node, ent *nodeRegion, idx int, instr bool) {
	next := idx + 1
	if next >= mem.LinesPerRegion {
		return
	}
	li := ent.li[next]
	if li.Kind != LocLLC && li.Kind != LocMem {
		return
	}
	s.inPrefetch = true
	defer func() { s.inPrefetch = false }()
	line := ent.region.Line(next)
	pt := &txn{} // prefetch latency is off the critical path
	s.read(n, ent, next, line, li, instr, pt)
	s.st.PrefetchIssued++
	if ent.li[next].Kind == LocL1 {
		_, _, sl := n.localSlot(ent, next)
		sl.prefetched = true
	}
}

// shouldBypass decides whether a data read of a streaming region skips
// L1 allocation. Instructions and writes never bypass.
func (s *System) shouldBypass(ent *nodeRegion, instr bool) bool {
	return s.cfg.CacheBypass && !s.inPrefetch && !instr && ent.streaming()
}

// bypassReadLLC serves a read directly from an LLC location without
// allocating in the L1: the LI keeps naming the LLC slot, so a re-touch
// (rare, by the predictor) hits the LLC again.
func (s *System) bypassReadLLC(n *node, ent *nodeRegion, idx int, line mem.LineAddr, instr bool, li Location, t *txn) {
	st := s.llcStore(li)
	set := st.setFor(line, ent.scramble)
	sl := st.get(set, li.Way, line)
	local := s.llcIsLocal(li, n.id)
	s.meter.Do(st.op, 1)
	if local {
		t.add(st.lat)
	} else {
		t.add(s.sendLLC(n.id, li, noc.Ctrl, noc.Base))
		t.add(st.lat)
		t.add(s.sendLLC(n.id, li, noc.Data, noc.Base))
	}
	st.touch(set, li.Way)
	s.st.LLCHits++
	if local {
		s.st.LLCLocalHitsD++
	} else {
		s.st.LLCRemoteHitsD++
	}
	s.st.BypassedReads++
	s.xfer = sl.ver
	s.bypassServed = true
}

// bypassReadMem serves a read from memory and allocates the line at the
// LLC level only (classic install-at-LLC bypass): the core gets the
// data, the LI points at the new LLC slot, and the L1 stays unpolluted.
func (s *System) bypassReadMem(n *node, ent *nodeRegion, idx int, line mem.LineAddr, instr bool, t *txn) {
	t.add(s.sendHub(n.id, noc.Ctrl, noc.Base))
	s.meter.Do(energy.OpDRAM, 1)
	t.add(timing.DRAM)
	t.add(s.sendHub(n.id, noc.Data, noc.Base))
	s.st.DRAMReads++
	ver := uint64(0)
	if s.verMem != nil {
		ver = s.verMem[line]
	}
	// Install at the LLC level. For a near-side system the line lands in
	// the reader's slice (one NoC transfer from the memory controller);
	// the far-side monolith is co-located with it. fromNode is the
	// memory side, so pass an id that never matches a slice.
	slice := s.chooseSlice(n.id)
	loc := s.llcInstall(slice, line, ent.region, ent.scramble, true, false, Mem(), -1, ver, t)
	ent.li[idx] = loc
	if !ent.private {
		s.fab.SendEP(s.llcEP(loc), noc.Hub, noc.Ctrl, noc.D2MOnly)
		s.meter.Do(energy.OpMD3, 1)
		if d := s.md3Probe(ent.region); d != nil {
			d.li[idx] = loc
		}
	}
	s.st.BypassedReads++
	s.xfer = ver
	s.bypassServed = true
}

// llcInstallReplica installs a replica of line into node's own slice.
func (s *System) llcInstallReplica(nodeID int, line mem.LineAddr, ent *nodeRegion, masterLoc Location, ver uint64, t *txn) Location {
	st := s.slices[nodeID]
	set := st.setFor(line, ent.scramble)
	way := st.victimWay(set, func(v *slot) int {
		if !v.master {
			return 3
		}
		if !v.dirty {
			return 2
		}
		return 0
	})
	if st.at(set, way).valid {
		s.llcEvictSlot(st, nodeID, set, way, t)
		s.notePressure(nodeID)
	}
	s.meter.Do(st.op, 1)
	st.install(set, way, line, false, false, false, masterLoc).ver = ver
	return InSlice(nodeID, way)
}

// readFromMem fetches the line from memory. The reader becomes the
// master (E for private regions, F-like clean forwarder for shared
// regions, in which case MD3 is informed off the critical path so the
// shared metadata keeps naming a valid master).
func (s *System) readFromMem(n *node, ent *nodeRegion, idx int, line mem.LineAddr, instr bool, t *txn) {
	t.add(s.sendHub(n.id, noc.Ctrl, noc.Base))
	s.meter.Do(energy.OpDRAM, 1)
	t.add(timing.DRAM)
	t.add(s.sendHub(n.id, noc.Data, noc.Base))
	s.st.DRAMReads++
	if s.verMem != nil {
		s.xfer = s.verMem[line]
	}
	if ent.private {
		s.installL1(n, ent, idx, line, instr, true, false, true, s.allocRP(n.id), t)
		return
	}
	// Shared region: MD3 must keep naming a valid master. If MD3 already
	// tracks one (our Mem LI was stale — legal only while every copy is
	// clean, so the memory data just read is coherent), adopt it rather
	// than sever it; otherwise we become the clean master (F) and MD3
	// learns our NodeID, off the critical path.
	s.sendHub(n.id, noc.Ctrl, noc.D2MOnly)
	s.meter.Do(energy.OpMD3, 1)
	d := s.md3Probe(ent.region)
	if d != nil {
		switch cur := d.li[idx]; {
		case cur.Kind == LocLLC && cur.Way != WayUnresolved:
			rp := cur
			if s.cfg.Replication && instr && !s.llcIsLocal(cur, n.id) {
				rp = s.llcInstallReplica(n.id, line, ent, cur, s.xfer, t)
				s.st.Replications++
			}
			s.installL1(n, ent, idx, line, instr, false, false, false, rp, t)
			return
		case cur.Kind == LocNode && cur.Node != n.id:
			rp := cur
			if s.cfg.Replication && instr {
				rp = s.llcInstallReplica(n.id, line, ent, cur, s.xfer, t)
				s.st.Replications++
			}
			s.installL1(n, ent, idx, line, instr, false, false, false, rp, t)
			return
		default:
			d.li[idx] = InNode(n.id)
		}
	}
	s.installL1(n, ent, idx, line, instr, true, false, false, s.allocRP(n.id), t)
}

// readFromNode reads a line whose master is tracked in a remote node:
// the request goes directly to that node, whose own metadata locates the
// line (one MD2 — and possibly MD1 — lookup there). Stale pointers are
// chased (Redirect) and dead ones fall back to MD3 (Nack). depth is the
// shared budget of the mutual recursion with serveConcrete — see
// maxChase.
func (s *System) readFromNode(n *node, ent *nodeRegion, idx int, line mem.LineAddr, instr bool, target int, t *txn, depth int) (indirect bool) {
	r := ent.region
	for hop := 0; hop <= 2*s.cfg.Nodes; hop++ {
		if target == n.id {
			// A self-pointer is stale by construction; resolve via MD3.
			loc, ind := s.md3Resolve(n, r, idx, t)
			indirect = indirect || ind
			if loc.Kind == LocNode {
				target = loc.Node
				continue
			}
			s.serveConcrete(n, ent, idx, line, instr, loc, t, depth+1)
			return indirect
		}
		m := s.nodes[target]
		t.add(s.sendNodes(n.id, target, noc.Ctrl, noc.Base)) // direct read request
		s.meter.Do(energy.OpMD2, 1)
		t.add(timing.MD2)
		entM := m.entry(r)
		if entM == nil {
			// NACK: the tracking entry is gone; MD3 has fresher data.
			s.st.NackMD3++
			loc, _ := s.md3Resolve(n, r, idx, t)
			indirect = true
			if loc.Kind == LocNode {
				target = loc.Node
				continue
			}
			s.serveConcrete(n, ent, idx, line, instr, loc, t, depth+1)
			return indirect
		}
		if entM.active != activeMD2 {
			s.meter.Do(energy.OpMD1, 1)
			t.add(timing.MD1)
		}
		liM := entM.li[idx]
		switch liM.Kind {
		case LocL1, LocL2:
			st, set, sl := m.localSlot(entM, idx)
			s.meter.Do(st.op, 1)
			t.add(st.lat)
			st.touch(set, liM.Way)
			if sl.master {
				sl.excl = false // a sharer now exists
			}
			t.add(s.sendNodes(target, n.id, noc.Data, noc.Base))
			s.xfer = sl.ver
			rp := InNode(target)
			if s.cfg.Replication && instr {
				// §IV-C: instructions are always replicated into the
				// reader's own slice, whatever served them.
				rp = s.llcInstallReplica(n.id, line, ent, InNode(target), sl.ver, t)
				s.st.Replications++
			}
			s.installL1(n, ent, idx, line, instr, false, false, false, rp, t)
			return indirect
		case LocLLC, LocMem:
			// The master moved out of the node silently; redirect.
			s.st.Redirect++
			s.sendNodes(target, n.id, noc.Ctrl, noc.Base) // redirect reply
			s.serveConcrete(n, ent, idx, line, instr, liM, t, depth+1)
			return indirect
		case LocNode:
			s.st.Redirect++
			s.sendNodes(target, n.id, noc.Ctrl, noc.Base)
			target = liM.Node
		default:
			panic(fmt.Sprintf("core: remote node %d has LI %v for %v", target, liM, line))
		}
	}
	panic(fmt.Sprintf("core: unterminated master chase for %v", line))
}

// md3Resolve asks MD3 where the master of (r, idx) is.
func (s *System) md3Resolve(n *node, r mem.RegionAddr, idx int, t *txn) (Location, bool) {
	t.add(s.sendHub(n.id, noc.Ctrl, noc.Base))
	s.meter.Do(energy.OpMD3, 1)
	t.add(timing.MD3)
	s.st.MD3Lookups++
	d := s.md3Probe(r)
	if d == nil {
		return Mem(), true
	}
	loc := d.li[idx]
	if loc.Kind == LocInvalid || (loc.Kind == LocLLC && loc.Way == WayUnresolved) ||
		(loc.Kind == LocNode && loc.Node == n.id) {
		// No valid global knowledge (or a stale self-pointer): with no
		// dirty master anywhere, memory has the data.
		return Mem(), true
	}
	return loc, true
}

// maxChase bounds the mutual recursion between serveConcrete and
// readFromNode. Clean masters move silently (PROTOCOL.md deviation 2),
// so referral chains can go stale — and stale referrals can form a
// cycle: a node's LI naming a replica in its own slice whose RP names a
// node whose LI names the replica again. A cycle implies every link in
// it is clean-master drift (a write would have repointed every tracking
// LI at the writer and reclaimed every LLC copy of the line), so memory
// is guaranteed current and serves as the terminal authority.
func (s *System) maxChase() int { return 2*s.cfg.Nodes + 4 }

// serveConcrete completes a read from a concrete non-node location (LLC
// slot or memory) discovered by a redirect. depth is the shared chase
// budget (see maxChase).
func (s *System) serveConcrete(n *node, ent *nodeRegion, idx int, line mem.LineAddr, instr bool, loc Location, t *txn, depth int) {
	switch loc.Kind {
	case LocLLC:
		st := s.llcStore(loc)
		set := st.setFor(line, ent.scramble)
		sl := st.at(set, loc.Way)
		if !sl.valid || sl.line != line {
			// The redirect target raced away too (e.g. the LLC slot was
			// reclaimed); memory always has valid data for a line with
			// no dirty master.
			s.readFromMem(n, ent, idx, line, instr, t)
			return
		}
		if !sl.master {
			// The slot is another node's slice replica; pointing our
			// metadata at it would dangle when the owner drops it, so
			// chase its RP to the master instead.
			if depth > s.maxChase() {
				// A referral cycle of stale clean-master pointers:
				// memory is current (see maxChase) and ends the chase.
				s.st.ChaseBreaks++
				s.readFromMem(n, ent, idx, line, instr, t)
				return
			}
			next := sl.rp
			if next.Kind == LocNode {
				ent.li[idx] = next
				s.readFromNode(n, ent, idx, line, instr, next.Node, t, depth+1)
				return
			}
			s.serveConcrete(n, ent, idx, line, instr, next, t, depth+1)
			return
		}
		ent.li[idx] = loc
		s.readFromLLC(n, ent, idx, line, instr, loc, t)
	case LocMem:
		s.readFromMem(n, ent, idx, line, instr, t)
	default:
		panic(fmt.Sprintf("core: serveConcrete(%v)", loc))
	}
}

// write services a store. Private regions write with zero coherence
// (case B / silent upgrade); shared regions run the blocking ReadEx
// transaction of case C unless the line is already held exclusively.
func (s *System) write(n *node, ent *nodeRegion, idx int, line mem.LineAddr, t *txn) (hit, indirect bool) {
	s.ensureStream(n, ent, false, t)
	li := ent.li[idx]
	if ent.private {
		return s.writePrivate(n, ent, idx, line, li, t), false
	}

	if li.Kind == LocL1 {
		st, i, sl := n.localSlotI(ent, idx)
		if sl.master && sl.excl {
			// Silent write: exclusivity was established earlier.
			sl.dirty = true
			st.tbl.TouchSlot(i)
			s.meter.Do(st.op, 1)
			t.add(st.lat)
			return true, false
		}
		s.caseC(n, ent, idx, line, t)
		return true, true
	}
	s.caseC(n, ent, idx, line, t)
	return false, true
}

// writePrivate implements case B and the private silent upgrade: data is
// read from wherever the master is, the local L1 copy becomes the new
// dirty master, and any previous master copy is reclaimed — all without
// any coherence with other nodes or MD3.
func (s *System) writePrivate(n *node, ent *nodeRegion, idx int, line mem.LineAddr, li Location, t *txn) (hit bool) {
	switch li.Kind {
	case LocL1:
		st, i, sl := n.localSlotI(ent, idx)
		s.meter.Do(st.op, 1)
		t.add(st.lat)
		st.tbl.TouchSlot(i)
		if sl.master {
			sl.dirty = true
			sl.excl = true
			return true
		}
		// Silent upgrade of a replica: reclaim the old master.
		old := sl.rp
		sl.master, sl.dirty, sl.excl = true, true, true
		sl.rp = s.allocRP(n.id)
		s.reclaimPrivateMaster(n, ent, idx, line, old, t)
		return true

	case LocL2:
		st, set, sl := n.localSlot(ent, idx)
		s.meter.Do(st.op, 1)
		t.add(st.lat)
		cp := *sl
		st.drop(set, li.Way)
		ent.li[idx] = Mem() // in transit (see evictNodeLine)
		s.st.L2Hits++
		old := cp.rp
		rp := cp.rp
		if !cp.master {
			rp = s.allocRP(n.id)
		}
		s.xfer = cp.ver
		s.installL1(n, ent, idx, line, false, true, true, true, rp, t)
		if !cp.master {
			s.reclaimPrivateMaster(n, ent, idx, line, old, t)
		}
		return false

	case LocLLC:
		// Case B with the master in the LLC: direct read, then the L1
		// copy becomes master and the LLC slot is reclaimed.
		st := s.llcStore(li)
		set := st.setFor(line, ent.scramble)
		sl := st.get(set, li.Way, line)
		local := s.llcIsLocal(li, n.id)
		s.meter.Do(st.op, 1)
		if local {
			t.add(st.lat)
		} else {
			t.add(s.sendLLC(n.id, li, noc.Ctrl, noc.Base))
			t.add(st.lat)
			t.add(s.sendLLC(n.id, li, noc.Data, noc.Base))
		}
		s.st.LLCHits++
		if local {
			s.st.LLCLocalHitsD++
		} else {
			s.st.LLCRemoteHitsD++
		}
		wasMaster, old := sl.master, sl.rp
		s.xfer = sl.ver
		st.drop(set, li.Way)
		s.installL1(n, ent, idx, line, false, true, true, true, s.allocRP(n.id), t)
		if !wasMaster {
			// The slot was an own-slice replica; reclaim the master it
			// chained to.
			s.reclaimPrivateMaster(n, ent, idx, line, old, t)
		}
		s.st.EvB++
		return false

	case LocMem:
		t.add(s.sendHub(n.id, noc.Ctrl, noc.Base))
		s.meter.Do(energy.OpDRAM, 1)
		t.add(timing.DRAM)
		t.add(s.sendHub(n.id, noc.Data, noc.Base))
		s.st.DRAMReads++
		if s.verMem != nil {
			s.xfer = s.verMem[line]
		}
		s.installL1(n, ent, idx, line, false, true, true, true, s.allocRP(n.id), t)
		s.st.EvB++
		return false

	default:
		panic(fmt.Sprintf("core: private region %v has LI %v", ent.region, li))
	}
}

// reclaimPrivateMaster invalidates the stale master copy at old after a
// private-region write promoted the local copy ("This action makes the
// LI in MD3 invalid for private regions" — here it reclaims the data
// slot so it can be reused).
func (s *System) reclaimPrivateMaster(n *node, ent *nodeRegion, idx int, line mem.LineAddr, old Location, t *txn) {
	switch old.Kind {
	case LocMem:
		// Memory is never "reclaimed".
	case LocLLC:
		st := s.llcStore(old)
		set := st.setFor(line, ent.scramble)
		sl := st.at(set, old.Way)
		if sl.valid && sl.line == line {
			if !sl.master {
				// Chain: replica -> master; reclaim both.
				next := sl.rp
				st.drop(set, old.Way)
				s.meter.Do(st.op, 1)
				s.reclaimPrivateMaster(n, ent, idx, line, next, t)
				return
			}
			st.drop(set, old.Way)
			s.meter.Do(st.op, 1)
			s.sendLLC(n.id, old, noc.Ctrl, noc.Base) // invalidate (free if local)
		}
	case LocNode:
		panic(fmt.Sprintf("core: private region %v master chained to node %d", ent.region, old.Node))
	}
}

// reclaimLLCCopies drops every LLC slot holding line that is reachable
// from MD3 or any PB node's metadata, using the full eviction fix-up so
// every tracker is repointed consistently (to memory; the caseC caller
// then repoints them at the writer).
func (s *System) reclaimLLCCopies(d *dirRegion, r mem.RegionAddr, idx int, line mem.LineAddr, t *txn) {
	drop := func(loc Location) {
		if loc.Kind != LocLLC || loc.Way == WayUnresolved {
			return
		}
		st := s.llcStore(loc)
		set := st.setFor(line, d.scramble)
		sl := st.at(set, loc.Way)
		if sl.valid && sl.line == line {
			s.llcEvictSlot(st, loc.Node, set, loc.Way, t)
		}
	}
	// chase resolves a reference through an own-slice replica (dropping
	// the replica re-chains its owner) before dropping the master.
	chase := func(mid int, ent *nodeRegion, loc Location) {
		if rsl := s.ownSliceReplica(mid, ent, idx, loc); rsl != nil {
			next := rsl.rp
			drop(loc) // llcEvictSlot repoints the owner onto next
			drop(next)
			return
		}
		drop(loc)
	}
	drop(d.li[idx])
	for pb := d.pbSnapshot(); pb != 0; pb = pb.drop() {
		mid := pb.node()
		m := s.nodes[mid]
		ent := m.entry(r)
		if ent == nil {
			continue
		}
		li := ent.li[idx]
		switch {
		case li.Kind == LocLLC:
			chase(mid, ent, li)
		case li.Local():
			if _, _, sl := m.localSlot(ent, idx); !sl.master {
				chase(mid, ent, sl.rp)
			}
		}
	}
}

// caseC is the shared-region write transaction: block the region at MD3,
// read the master copy, invalidate every PB node's copy (they repoint
// their LIs at the writer), install the dirty exclusive master locally,
// update the MD3 LI, and unblock.
func (s *System) caseC(n *node, ent *nodeRegion, idx int, line mem.LineAddr, t *txn) {
	s.st.EvC++
	s.st.MD3Lookups++
	r := ent.region
	s.acquireRegionLock(r)
	t.add(s.sendHub(n.id, noc.Ctrl, noc.Base)) // ReadEx
	s.meter.Do(energy.OpMD3, 1)
	t.add(timing.MD3)
	d := s.md3Probe(r)
	if d == nil {
		panic(fmt.Sprintf("core: caseC on %v with no MD3 entry", r))
	}

	// 1. Reclaim every LLC copy of the line (with the full repoint
	// fix-up). A clean master that moved into the LLC silently may be
	// reachable only through some node's stale pointer or a replica's
	// RP; after this write all those pointers name the writer, so any
	// surviving LLC slot would be orphaned. Running this first also
	// funnels the data acquisition below through memory, which the
	// reclaim has made coherent.
	s.reclaimLLCCopies(d, ent.region, idx, line, t)

	// 2. Acquire the data from wherever the master (or a local copy) is.
	s.acquireForWrite(n, ent, idx, line, d, t)

	// 3. Record the new master in MD3.
	d.li[idx] = InNode(n.id)

	// 3. Invalidate the other PB nodes; they repoint to the writer.
	loc := InNode(n.id)
	var prunedBuf [16]*node
	pruned := prunedBuf[:0]
	for pb := d.pbSnapshot(); pb != 0; pb = pb.drop() {
		mid := pb.node()
		if mid == n.id {
			continue
		}
		m := s.nodes[mid]
		s.fab.SendEP(noc.Hub, noc.NodeEP(mid), noc.Ctrl, noc.Base) // Inv (multicast from MD3)
		s.meter.Do(energy.OpMD2, 1)
		s.st.InvRecv++
		entM := m.entry(r)
		if entM == nil {
			panic(fmt.Sprintf("core: PB node %d without entry for %v", mid, r))
		}
		had := false
		liM := entM.li[idx]
		switch {
		case liM.Local():
			lst, lset, lsl := m.localSlot(entM, idx)
			_ = lsl
			lst.drop(lset, liM.Way)
			s.meter.Do(lst.op, 1)
			had = true
		case liM.Kind == LocLLC && s.llcIsLocal(liM, mid):
			st := s.slices[mid]
			lset := st.setFor(line, entM.scramble)
			sl := st.at(lset, liM.Way)
			if sl.valid && sl.line == line && !sl.master {
				st.drop(lset, liM.Way)
				s.meter.Do(st.op, 1)
				had = true
			}
		}
		entM.li[idx] = loc
		if !had {
			s.st.FalseInvRecv++
		}
		s.sendNodes(mid, n.id, noc.Ctrl, noc.Base) // Ack to the writer
		if s.cfg.MD2Pruning && !m.hasLocalCopies(entM) && entM.active == activeMD2 {
			pruned = append(pruned, m)
		}
	}
	t.add(noc.TraversalCycles * 2)      // Inv/Ack round trip (overlapped)
	s.sendHub(n.id, noc.Ctrl, noc.Base) // Done/unblock

	// 5. Pruning (§IV-A): nodes that received an invalidation for a
	// region they no longer cache drop their metadata, possibly turning
	// the region private for the writer.
	for _, m := range pruned {
		if entM := m.entry(r); entM != nil {
			s.st.MD2Prunes++
			s.md2Spill(m, entM, t)
		}
	}
}

// acquireForWrite obtains the line's data for a caseC writer and installs
// it in the writer's L1 as a dirty exclusive master. It runs after
// reclaimLLCCopies, so every LLC copy of the line is already gone and
// any LI/RP that referenced one now says memory; node-held master data
// is collected here (the Inv fan-out that follows drops those copies).
func (s *System) acquireForWrite(n *node, ent *nodeRegion, idx int, line mem.LineAddr, d *dirRegion, t *txn) {
	li := ent.li[idx]
	rp := s.allocRP(n.id)
	switch li.Kind {
	case LocL1:
		// Upgrade in place.
		_, set, sl := n.localSlot(ent, idx)
		s.meter.Do(n.l1d.op, 1)
		t.add(n.l1d.lat)
		n.l1d.touch(set, li.Way)
		if !sl.master {
			sl.rp = rp
		}
		sl.master, sl.dirty, sl.excl = true, true, true
		return
	case LocL2:
		st, set, sl := n.localSlot(ent, idx)
		s.meter.Do(st.op, 1)
		t.add(st.lat)
		cp := *sl
		st.drop(set, li.Way)
		ent.li[idx] = Mem() // in transit (see evictNodeLine)
		s.st.L2Hits++
		if !cp.master {
			cp.rp = rp
		}
		s.xfer = cp.ver
		s.installL1(n, ent, idx, line, false, true, true, true, cp.rp, t)
		return
	default:
		// Fetch from the authoritative master per MD3 (DirectReadEx on
		// behalf of the writer): a node-held master serves its data
		// (its copy dies in the Inv fan-out); otherwise memory is
		// coherent, because the reclaim pass wrote back any dirty LLC
		// copy.
		master := d.li[idx]
		if s.verMem != nil {
			s.xfer = s.verMem[line]
		}
		if master.Kind == LocNode && master.Node != n.id {
			m := s.nodes[master.Node]
			t.add(s.sendNodes(n.id, master.Node, noc.Ctrl, noc.Base))
			s.meter.Do(energy.OpMD2, 1)
			t.add(timing.MD2)
			if entM := m.entry(ent.region); entM != nil && entM.li[idx].Local() {
				lst, _, lsl := m.localSlot(entM, idx)
				s.meter.Do(lst.op, 1)
				t.add(lst.lat)
				s.xfer = lsl.ver
			}
			t.add(s.sendNodes(master.Node, n.id, noc.Data, noc.Base))
		} else {
			s.chargeDRAMRead(n.id, t)
		}
		s.installL1(n, ent, idx, line, false, true, true, true, rp, t)
		return
	}
}

func (s *System) chargeDRAMRead(nodeID int, t *txn) {
	t.add(s.sendHub(nodeID, noc.Ctrl, noc.Base))
	s.meter.Do(energy.OpDRAM, 1)
	t.add(timing.DRAM)
	t.add(s.sendHub(nodeID, noc.Data, noc.Base))
	s.st.DRAMReads++
}

// mdMiss is case D: the node has no metadata for the region, so a
// blocking ReadMM goes to MD3, which classifies the transition
// (uncached/untracked/private/shared), gathers metadata — pulling it out
// of the single owner on a private-to-shared transition (D2) — and
// replies with the region entry.
func (s *System) mdMiss(n *node, instr bool, r mem.RegionAddr, t *txn) *nodeRegion {
	s.st.MDMisses++
	s.st.MD3Lookups++
	s.acquireRegionLock(r)
	t.add(s.sendHub(n.id, noc.Ctrl, noc.Base)) // ReadMM
	s.meter.Do(energy.OpMD3, 1)
	t.add(timing.MD3)

	d := s.md3Probe(r)
	private := false
	switch {
	case d == nil:
		// D4: uncached -> private.
		d = s.md3Alloc(r, t)
		d.setPB(n.id)
		private = true
		s.st.EvD4++
	default:
		s.md3Touch(r)
		switch d.class() {
		case Untracked:
			// D1: untracked -> private.
			d.setPB(n.id)
			private = true
			s.st.EvD1++
		case Private:
			// D2: private -> shared. The single owner exports its
			// metadata to MD3 (local locations become its NodeID) and
			// clears its P bit.
			owner := s.nodes[d.solePBNode()]
			s.st.EvD2++
			t.add(s.fab.SendEP(noc.Hub, noc.NodeEP(owner.id), noc.Ctrl, noc.D2MOnly)) // GetMD
			s.meter.Do(energy.OpMD2, 1)
			t.add(timing.MD2)
			entO := owner.entry(r)
			if entO == nil {
				panic(fmt.Sprintf("core: private region %v with absent owner entry", r))
			}
			entO.private = false
			for idx := range entO.li {
				li := entO.li[idx]
				switch {
				case li.Local():
					// The owner's exclusive masters downgrade (E -> F):
					// in a shared region, silent writes are no longer
					// legal and memory/forwarders stay coherent.
					if _, _, sl := owner.localSlot(entO, idx); sl.master {
						sl.excl = false
					}
					d.li[idx] = InNode(owner.id)
				case li.Kind == LocLLC && s.llcIsLocal(li, owner.id) && !s.slotIsMasterLLC(owner, entO, idx):
					// Own-slice replica: the region master is behind it.
					d.li[idx] = InNode(owner.id)
				default:
					d.li[idx] = li
				}
			}
			t.add(s.sendHub(owner.id, noc.MD, noc.D2MOnly)) // metadata to MD3
			d.setPB(n.id)
		case Shared:
			// D3: shared -> shared.
			d.setPB(n.id)
			s.st.EvD3++
		}
	}

	t.add(s.sendHub(n.id, noc.MD, noc.D2MOnly)) // metadata reply
	ent := newNodeRegion(r, private, d.scramble)
	ent.instrStream = instr
	// Install the entry (with all-memory LIs) before adopting the global
	// locations: installing may spill an MD2 victim, whose eviction
	// cascade can move masters around — including lines of this region —
	// and every repoint must see this node's entry (its PB bit is
	// already set). The fresh LIs are copied once the cascade settles.
	s.md2Install(n, ent, instr, t)
	if private {
		// The node owns the region: it adopts the global locations and
		// MD3's LIs become invalid (private regions are tracked only by
		// their owner).
		ent.li = d.li
		for idx := range d.li {
			d.li[idx] = Invalid()
		}
	} else {
		for idx := range d.li {
			li := d.li[idx]
			if li.Kind == LocInvalid {
				li = Mem()
			}
			ent.li[idx] = li
		}
	}
	return ent
}

// slotIsMasterLLC reports whether the own-slice LLC slot named by
// ent.li[idx] holds a master copy.
func (s *System) slotIsMasterLLC(m *node, ent *nodeRegion, idx int) bool {
	li := ent.li[idx]
	st := s.slices[li.Node]
	line := ent.region.Line(idx)
	set := st.setFor(line, ent.scramble)
	sl := st.at(set, li.Way)
	return sl.valid && sl.line == line && sl.master
}
