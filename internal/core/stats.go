package core

// Stats are the event counters a D2M system accumulates. Field groups map
// directly onto the paper's reported metrics: the appendix's per-kilo-
// memory-operation (PKMO) event frequencies, Table IV's hit ratios,
// Table V's invalidation and private-miss numbers, and Figure 5's traffic
// split (the latter lives in the noc.Fabric).
type Stats struct {
	// Access demographics.
	Accesses uint64
	Instr    uint64
	Reads    uint64
	Writes   uint64

	// L1 behaviour.
	L1IHits   uint64
	L1IMisses uint64
	L1DHits   uint64
	L1DMisses uint64
	L2Hits    uint64

	// Metadata hierarchy behaviour. The MD1Cover* counters split MD1
	// hits by where the access was then served (§II-A reports 99.7%,
	// 87.2% and 75.6% coverage of L1, L2 and memory hits for D2D).
	MD1CoverL1  uint64
	MD1CoverL2  uint64
	MD1CoverLLC uint64
	MD1CoverMem uint64
	MD1Hits     uint64 // access found active LI in the first-level MD
	MD2Hits     uint64 // MD1 missed, MD2 had the entry
	MDMisses    uint64 // region metadata had to come from MD3 (case D)
	MD2Spills   uint64 // MD2 entries evicted (metadata written back to MD3)
	MD2Prunes   uint64 // MD2 entries dropped by the pruning heuristic
	MD3Evicts   uint64 // MD3 entries evicted (global region flush)

	// Coherence protocol events (appendix cases). EvA* split by where
	// the master was found.
	EvALLC      uint64 // read miss, MD hit, master in LLC
	EvAMem      uint64 // read miss, MD hit, master in memory
	EvANode     uint64 // read miss, MD hit, master in a remote node
	EvB         uint64 // write miss, private region, MD hit
	EvC         uint64 // write miss/upgrade, shared region
	EvD1        uint64 // MD miss: untracked -> private
	EvD2        uint64 // MD miss: private -> shared
	EvD3        uint64 // MD miss: shared -> shared
	EvD4        uint64 // MD miss: uncached -> private
	EvE         uint64 // eviction of master, private region
	EvF         uint64 // eviction of dirty master, shared region
	Redirect    uint64 // remote-node read redirected (stale NodeID pointer)
	NackMD3     uint64 // remote-node read NACKed, fell back to MD3
	ChaseBreaks uint64 // stale-referral cycle broken by the memory fallback

	// Direct-vs-indirected accesses: a miss is "direct" when it is
	// satisfied without consulting MD3 (cases A and B; ~90% in the
	// paper).
	DirectMisses    uint64
	IndirectMisses  uint64
	MD3Lookups      uint64
	PrivateMisses   uint64 // misses whose region was classified private
	SharedMisses    uint64
	UntrackedMisses uint64 // misses whose metadata came fresh from MD3

	// Invalidations (Table V). False invalidations hit nodes that track
	// the region but never cached the line.
	InvRecv      uint64
	FalseInvRecv uint64

	// LLC behaviour.
	LLCHits        uint64 // reads served by any LLC slice or the far LLC
	LLCLocalHitsI  uint64 // served by the node's own NS slice, ifetch
	LLCLocalHitsD  uint64
	LLCRemoteHitsI uint64
	LLCRemoteHitsD uint64
	Replications   uint64 // lines replicated into a local slice (§IV-C)
	BypassedReads  uint64 // reads served without L1 allocation (bypass)
	PrefetchIssued uint64 // metadata-guided next-line prefetches issued
	PrefetchUseful uint64 // prefetched lines hit by a demand access
	DRAMReads      uint64
	DRAMWrites     uint64

	// Lock-bit contention (appendix): blocking region transactions
	// acquire a hashed lock bit; a collision means a transaction would
	// have stalled behind an unrelated region that hashes to the same
	// bit. The paper reports a negligible rate with 1K bits.
	LockAcquires   uint64
	LockCollisions uint64

	// Latency bookkeeping for the L1-miss-latency metric (§V-D).
	MissLatencySum uint64
	MissCount      uint64

	// Adaptive mechanisms. Repartitions counts epoch-boundary way moves
	// between the L1-D and MD1-D (D2M-Adaptive); the Pred* counters
	// account the level predictor's speculative parallel lookups
	// (D2M-LevelPred): how often one was launched, how often it matched
	// the serving level (hiding part of the MD walk), how often it
	// probed the wrong level (energy wasted, no latency penalty), and
	// the total critical-path cycles hidden.
	Repartitions     uint64
	PredSpeculations uint64
	PredHits         uint64
	PredMispredicts  uint64
	PredCyclesSaved  uint64
}

// LockCollisionRate returns collisions per acquired lock.
func (s *Stats) LockCollisionRate() float64 {
	return ratio(s.LockCollisions, s.LockAcquires)
}

// MissRatioI returns the L1-I miss ratio.
func (s *Stats) MissRatioI() float64 {
	return ratio(s.L1IMisses, s.L1IHits+s.L1IMisses)
}

// MissRatioD returns the L1-D miss ratio.
func (s *Stats) MissRatioD() float64 {
	return ratio(s.L1DMisses, s.L1DHits+s.L1DMisses)
}

// AvgMissLatency returns the average L1 miss latency in cycles.
func (s *Stats) AvgMissLatency() float64 {
	return ratio(s.MissLatencySum, s.MissCount)
}

// NearSideHitRatioI returns the fraction of LLC instruction hits served
// by the local slice.
func (s *Stats) NearSideHitRatioI() float64 {
	return ratio(s.LLCLocalHitsI, s.LLCLocalHitsI+s.LLCRemoteHitsI)
}

// NearSideHitRatioD returns the fraction of LLC data hits served by the
// local slice.
func (s *Stats) NearSideHitRatioD() float64 {
	return ratio(s.LLCLocalHitsD, s.LLCLocalHitsD+s.LLCRemoteHitsD)
}

// PrivateMissFraction returns the fraction of private-cache misses whose
// region was classified private (Table V; 68% average in the paper).
func (s *Stats) PrivateMissFraction() float64 {
	return ratio(s.PrivateMisses, s.PrivateMisses+s.SharedMisses)
}

// DirectMissFraction returns the fraction of misses handled without an
// MD3/directory indirection (~90% in the paper).
func (s *Stats) DirectMissFraction() float64 {
	return ratio(s.DirectMisses, s.DirectMisses+s.IndirectMisses)
}

// PKMO returns occurrences per kilo memory operation for a counter value.
func (s *Stats) PKMO(count uint64) float64 {
	return 1000 * ratio(count, s.Accesses)
}

func ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}
