package core

import (
	"testing"
	"testing/quick"
)

// TestLIEncodingTable pins the exact bit patterns of Table I.
func TestLIEncodingTable(t *testing.T) {
	cases := []struct {
		loc  Location
		ns   bool
		bits uint8
	}{
		{InNode(5), false, 0b000101},      // 000NNN
		{InL1(7), false, 0b001111},        // 001WWW
		{InL2(3), false, 0b010011},        // 010WWW
		{Mem(), false, 0b011000},          // 011SSS, MEM symbol
		{Invalid(), false, 0b011001},      // 011SSS, INVALID symbol
		{InLLC(31), false, 0b111111},      // 1WWWWW
		{InLLC(0), false, 0b100000},       // 1WWWWW
		{InSlice(6, 2), true, 0b1_110_10}, // 1NNNWW
		{InSlice(0, 0), true, 0b100000},   // 1NNNWW
	}
	for _, c := range cases {
		if got := EncodeLI(c.loc, c.ns); got != c.bits {
			t.Errorf("EncodeLI(%v, ns=%v) = %06b, want %06b", c.loc, c.ns, got, c.bits)
		}
		if got := DecodeLI(c.bits, c.ns); got != c.loc {
			t.Errorf("DecodeLI(%06b, ns=%v) = %v, want %v", c.bits, c.ns, got, c.loc)
		}
	}
}

// TestLISixBits verifies the encoding never exceeds six bits: the paper's
// entire point is that 6 bits of LI replace a ~30-bit address tag.
func TestLISixBits(t *testing.T) {
	for _, ns := range []bool{false, true} {
		for node := 0; node < 8; node++ {
			if EncodeLI(InNode(node), ns) >= 64 {
				t.Fatal("node encoding exceeds 6 bits")
			}
		}
		for way := 0; way < 8; way++ {
			if EncodeLI(InL1(way), ns) >= 64 || EncodeLI(InL2(way), ns) >= 64 {
				t.Fatal("L1/L2 encoding exceeds 6 bits")
			}
		}
	}
	for way := 0; way < 32; way++ {
		if EncodeLI(InLLC(way), false) >= 64 {
			t.Fatal("LLC encoding exceeds 6 bits")
		}
	}
}

// Property: decode(encode(x)) == x for every encodable location, in both
// far-side and near-side interpretations.
func TestLIRoundTrip(t *testing.T) {
	f := func(kindRaw, nodeRaw, wayRaw uint8, ns bool) bool {
		var loc Location
		switch kindRaw % 6 {
		case 0:
			loc = Mem()
		case 1:
			loc = Invalid()
		case 2:
			loc = InNode(int(nodeRaw % 8))
		case 3:
			loc = InL1(int(wayRaw % 8))
		case 4:
			loc = InL2(int(wayRaw % 8))
		case 5:
			if ns {
				loc = InSlice(int(nodeRaw%8), int(wayRaw%4))
			} else {
				loc = InLLC(int(wayRaw % 32))
			}
		}
		return DecodeLI(EncodeLI(loc, ns), ns) == loc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestLIEncodeUniqueness(t *testing.T) {
	// Every distinct far-side location must map to a distinct code.
	seen := map[uint8]Location{}
	add := func(l Location) {
		b := EncodeLI(l, false)
		if prev, dup := seen[b]; dup {
			t.Fatalf("code %06b maps both %v and %v", b, prev, l)
		}
		seen[b] = l
	}
	add(Mem())
	add(Invalid())
	for n := 0; n < 8; n++ {
		add(InNode(n))
	}
	for w := 0; w < 8; w++ {
		add(InL1(w))
		add(InL2(w))
	}
	for w := 0; w < 32; w++ {
		add(InLLC(w))
	}
	// 2 symbols + 8 nodes + 8 + 8 ways + 32 LLC ways = 58 codes <= 64.
	if len(seen) != 58 {
		t.Fatalf("expected 58 distinct codes, got %d", len(seen))
	}
}

func TestEncodePanicsOutOfRange(t *testing.T) {
	cases := []struct {
		loc Location
		ns  bool
	}{
		{InNode(8), false},
		{InL1(8), false},
		{InL2(-1), false},
		{InLLC(32), false},
		{InSlice(8, 0), true},
		{InSlice(0, 4), true},
		{Location{Kind: LocLLC, Way: WayUnresolved}, false},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("EncodeLI(%v) did not panic", c.loc)
				}
			}()
			EncodeLI(c.loc, c.ns)
		}()
	}
}

func TestDecodePanicsWideInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("DecodeLI(64) did not panic")
		}
	}()
	DecodeLI(64, false)
}

func TestLocationHelpers(t *testing.T) {
	if !InL1(0).Local() || !InL2(1).Local() {
		t.Error("L1/L2 should be Local")
	}
	if Mem().Local() || InNode(1).Local() || InLLC(0).Local() {
		t.Error("mem/node/llc should not be Local")
	}
	if InSlice(3, 1).String() != "llc.n3.w1" {
		t.Errorf("String = %q", InSlice(3, 1).String())
	}
	if Mem().String() != "mem" || Invalid().String() != "invalid" {
		t.Error("symbol String wrong")
	}
	if InNode(2).String() != "node2" || InL1(4).String() != "l1.w4" || InL2(5).String() != "l2.w5" {
		t.Error("location String wrong")
	}
}
