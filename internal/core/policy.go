package core

// NS-LLC placement (§IV-B) and replication (§IV-C) policies.
//
// Placement: each slice's "cache pressure" is the number of replacements
// it performed during the last 10k-access epoch. A node allocates victim
// space in its own slice when the local pressure is not higher than every
// other slice's; otherwise it still allocates locally 80% of the time and
// remotely (to the least-pressured slice) 20% of the time.
//
// Replication: instructions are always replicated into the reader's local
// slice; data is replicated when it is read from the MRU position of a
// remote slice.

// PlacementPolicy selects where a node allocates NS-LLC victim space.
type PlacementPolicy int

const (
	// PlacePressure is the paper's policy: allocate locally unless the
	// local slice is the most pressured, then 80% local / 20% to the
	// least-pressured remote slice.
	PlacePressure PlacementPolicy = iota
	// PlaceLocal always allocates in the node's own slice — maximum
	// locality, no load balancing.
	PlaceLocal
	// PlaceSpread allocates uniformly across all slices — maximum
	// balancing, no locality (what address interleaving approximates).
	PlaceSpread
)

func (p PlacementPolicy) String() string {
	switch p {
	case PlacePressure:
		return "pressure"
	case PlaceLocal:
		return "local"
	case PlaceSpread:
		return "spread"
	default:
		return "?"
	}
}

// tickEpoch advances the pressure epoch every pressureEpoch accesses.
func (s *System) tickEpoch() {
	if !s.cfg.NearSide {
		return
	}
	s.epochMark++
	if s.epochMark < pressureEpoch {
		return
	}
	s.epochMark = 0
	copy(s.pressurePrev, s.pressureCur)
	for i := range s.pressureCur {
		s.pressureCur[i] = 0
	}
}

// notePressure records one replacement in a slice.
func (s *System) notePressure(slice int) {
	if s.cfg.NearSide {
		s.pressureCur[slice]++
	}
}

// chooseSlice picks the LLC slice in which node n allocates a victim
// location for a future eviction, per the configured placement policy.
func (s *System) chooseSlice(n int) int {
	if !s.cfg.NearSide {
		return 0
	}
	switch s.cfg.Placement {
	case PlaceLocal:
		return n
	case PlaceSpread:
		// Address-blind balancing: every slice equally likely — what a
		// conventional address-interleaved LLC approximates.
		return s.rng.Intn(s.cfg.Nodes)
	}
	// PlacePressure, the paper's §IV-B policy.
	local := s.pressurePrev[n]
	minOther, minNode := ^uint64(0), -1
	for i, p := range s.pressurePrev {
		if i == n {
			continue
		}
		if p < minOther {
			minOther, minNode = p, i
		}
	}
	if minNode == -1 || local <= minOther {
		return n
	}
	if s.rng.Bool(0.8) {
		return n
	}
	return minNode
}

// allocRP returns the Replacement Pointer assigned to a master line
// installed in node n: a victim location in the LLC whose slice is chosen
// now and whose exact slot is resolved at eviction time (WayUnresolved).
func (s *System) allocRP(n int) Location {
	return Location{Kind: LocLLC, Node: s.chooseSlice(n), Way: WayUnresolved}
}

// shouldReplicate decides whether a line just read from a remote NS-LLC
// slice should be replicated into the reader's own slice.
func (s *System) shouldReplicate(instr bool, remote *dataStore, set, way int) bool {
	if !s.cfg.Replication {
		return false
	}
	if instr {
		return true
	}
	return remote.isMRU(set, way)
}
