package core

import "d2m/internal/energy"

// Adaptive way repartitioning (the D2M-Adaptive mechanism): each node
// shares a fixed way budget between its L1-D data store and its MD1-D
// metadata table, and an epoch-boundary policy moves one way at a time
// toward whichever side missed more during the elapsed interval. The
// policy mirrors the shared-cache evolve step of Graphite's OCache
// (grow the side under pressure, shrink the other), applied to the
// data-vs-metadata split that is unique to a tag-less hierarchy: a
// metadata-starved node trades L1-D capacity for MD1-D reach and vice
// versa.
//
// Repartitioning is a maintenance action off the critical path: the
// latency of drains is not charged to any access, but every coherence
// side effect (writebacks, MD updates) pays its energy as usual, so
// EDP comparisons against the static kinds stay honest.

// EpochLen returns the system's epoch interval in accesses; <= 0 means
// the sim engine never fires EpochTick. Only the adaptive configuration
// uses epochs today, but the hook is mechanism-neutral.
func (s *System) EpochLen() int {
	if !s.cfg.AdaptiveWays {
		return 0
	}
	if s.cfg.EpochLen > 0 {
		return s.cfg.EpochLen
	}
	return DefaultEpochLen
}

// EpochTick fires at each epoch boundary of the driving engine and
// reconsiders every node's way split.
func (s *System) EpochTick() {
	if !s.cfg.AdaptiveWays {
		return
	}
	for _, n := range s.nodes {
		s.repartitionNode(n)
	}
}

// repartitionNode applies the one-way evolve step: compare the
// interval's data-side and metadata-side miss counts and move a single
// way toward the needier side, bounded by [AdaptiveMinWays,
// AdaptiveMaxWays] per side. Quiet intervals (too few misses to signal
// anything) leave the split alone.
func (s *System) repartitionNode(n *node) {
	dm, mm := n.epochDataMisses, n.epochMDMisses
	n.epochDataMisses, n.epochMDMisses = 0, 0
	if dm+mm < adaptiveMinActivity {
		return
	}
	switch {
	case dm > mm && n.l1dActive < AdaptiveMaxWays && n.md1dActive > AdaptiveMinWays:
		// Data side under pressure: give it a way from MD1-D.
		n.md1dActive--
		s.shrinkMD1D(n)
		n.l1dActive++
		n.l1d.activeWays = n.l1dActive
		s.st.Repartitions++
	case mm > dm && n.md1dActive < AdaptiveMaxWays && n.l1dActive > AdaptiveMinWays:
		// Metadata side under pressure: give it a way from L1-D.
		n.l1dActive--
		n.l1d.activeWays = n.l1dActive
		s.shrinkL1D(n)
		n.md1dActive++
		s.st.Repartitions++
	}
}

// shrinkL1D drains the way that just left the L1-D's active prefix.
// Lines whose metadata points at the drained slot go through the full
// eviction cascade (master handoff, writeback, LI repointing); slots
// the metadata no longer claims are clean-master orphans left behind by
// earlier MD evictions and are coherent to drop silently.
func (s *System) shrinkL1D(n *node) {
	st := n.l1d
	w := n.l1dActive // first inactive way
	t := &txn{}      // maintenance transaction: latency off the critical path
	for set := 0; set < st.tbl.Sets(); set++ {
		sl := st.at(set, w)
		if !sl.valid {
			continue
		}
		line := sl.line
		ent := n.entry(line.Region())
		idx := line.Index()
		if ent != nil && !ent.instrStream && ent.li[idx].Kind == LocL1 && ent.li[idx].Way == w {
			s.evictNodeLine(n, ent, idx, t)
		} else {
			st.drop(set, w)
		}
	}
}

// shrinkMD1D drains the way that just left the MD1-D's active prefix:
// each entry demotes to MD2 (a local flag flip, charged as an MD2
// write), exactly like an ordinary MD1 victim spill.
func (s *System) shrinkMD1D(n *node) {
	md1 := n.md1d
	w := n.md1dActive // first inactive way (already decremented)
	for set := 0; set < md1.Sets(); set++ {
		if !md1.Valid(set, w) {
			continue
		}
		ent := n.md1dEnt[md1.Index(set, w)]
		n.md1Drop(ent)
		s.meter.Do(energy.OpMD2, 1)
	}
}

// md1ActiveWaysFor returns the install-time way bound for the stream's
// MD1: the data table is bounded by the adaptive split, the instruction
// table (and everything outside adaptive mode) uses its full
// associativity (0 = unbounded).
func (n *node) md1ActiveWaysFor(instr bool) int {
	if instr {
		return 0
	}
	return n.md1dActive
}
