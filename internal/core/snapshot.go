package core

import (
	"fmt"
	"unsafe"

	"d2m/internal/cache"
	"d2m/internal/mem"
)

// Warm-state snapshots (taken at the warmup/measurement boundary) let
// runs that share a warmed prefix skip re-simulating it. A Snapshot is
// a deep, self-contained copy of everything that survives
// ResetMeasurement: the metadata tables and their region entries, the
// tag-less data stores, the RNG position, and the protocol's
// cross-access state (placement pressure, lock window, staged transfer
// state). Statistics, traffic and dynamic-energy counters are NOT
// captured — both the fresh and the restored path zero them at the
// boundary, so their pre-boundary values are unobservable.
//
// Exactness contract: a system restored from a snapshot must be
// indistinguishable from the system the snapshot was taken of, so a
// measurement run on either produces byte-identical Results. The
// subtlety is the Tracking Pointer model: a node's MD1 and MD2 entry
// arrays alias the same *nodeRegion objects (flipping `active` moves
// the authoritative copy without duplicating LIs). Capture therefore
// records each distinct region object once, via an identity map, and
// restore rebuilds the same aliasing structure over fresh objects.

// storeSnap is the frozen state of one tag-less data store.
type storeSnap struct {
	tbl   *cache.Table
	slots []slot
}

// nodeSnap is the frozen state of one node: the three metadata tables
// plus their entry arrays, flattened through the identity map (idx
// slices hold -1 for empty slots, else an index into regions), and the
// private data stores.
type nodeSnap struct {
	md1i, md1d, md2          *cache.Table
	md1iIdx, md1dIdx, md2Idx []int32
	regions                  []nodeRegion
	l1i, l1d, l2             *storeSnap

	// Adaptive way split and its interval counters (D2M-Adaptive), and
	// the level-predictor table (D2M-LevelPred). All zero/nil outside
	// those configurations.
	l1dActive, md1dActive int
	epochDataMisses       uint64
	epochMDMisses         uint64
	pred                  []uint8
}

// Snapshot is a complete warm-state capture of a System. It is
// immutable after capture and safe for concurrent RestoreInto calls;
// its arrays are allocated outside the construction pools so a cached
// snapshot can never be recycled out from under a restore.
type Snapshot struct {
	cfg Config

	nodes  []nodeSnap
	far    *storeSnap
	slices []*storeSnap

	md3        *cache.Table
	md3Idx     []int32
	md3Regions []dirRegion

	rngState     uint64
	pressureCur  []uint64
	pressurePrev []uint64
	epochMark    uint64
	lockWindow   []mem.RegionAddr
	lockPos      int
	xfer         uint64
	rpFallback   Location

	bytes int64
}

const (
	slotSize    = int64(unsafe.Sizeof(slot{}))
	nodeRegSize = int64(unsafe.Sizeof(nodeRegion{}))
	dirRegSize  = int64(unsafe.Sizeof(dirRegion{}))
)

func (d *dataStore) snapshot() *storeSnap {
	ss := &storeSnap{
		tbl:   d.tbl.Clone(),
		slots: make([]slot, len(d.slots)),
	}
	copy(ss.slots, d.slots)
	return ss
}

func (d *dataStore) restore(ss *storeSnap) {
	d.tbl.CopyFrom(ss.tbl)
	copy(d.slots, ss.slots)
}

func (ss *storeSnap) sizeBytes() int64 {
	return ss.tbl.SizeBytes() + int64(len(ss.slots))*slotSize
}

// snapEntries flattens one metadata entry array: every distinct region
// object referenced from a valid table slot is appended to regions
// once (the identity map deduplicates the MD1/MD2 aliasing), and the
// returned index array records which object each slot pointed at.
func snapEntries(tbl *cache.Table, ent []*nodeRegion, index map[*nodeRegion]int32, regions *[]nodeRegion) []int32 {
	idx := make([]int32, len(ent))
	for i := range idx {
		idx[i] = -1
	}
	tbl.ForEach(func(set, way int, _ uint64) {
		i := tbl.Index(set, way)
		nr := ent[i]
		if nr == nil {
			return
		}
		id, ok := index[nr]
		if !ok {
			id = int32(len(*regions))
			*regions = append(*regions, *nr)
			index[nr] = id
		}
		idx[i] = id
	})
	return idx
}

// restoreEntries is snapEntries' inverse: ent slots are re-pointed at
// the freshly copied region objects (aliasing included, because slots
// that shared an object share an index).
func restoreEntries(ent []*nodeRegion, idx []int32, fresh []nodeRegion) {
	for i, id := range idx {
		if id < 0 {
			ent[i] = nil
		} else {
			ent[i] = &fresh[id]
		}
	}
}

// Snapshot captures the system's complete warm state. The system must
// be quiescent (between accesses) and must not run with the coherence
// oracle enabled — the oracle's version maps are debug-only state that
// snapshots deliberately do not carry.
func (s *System) Snapshot() *Snapshot {
	if s.cfg.CoherenceDebug {
		panic("core: Snapshot with CoherenceDebug enabled")
	}
	sn := &Snapshot{
		cfg:        s.cfg,
		rngState:   s.rng.State(),
		epochMark:  s.epochMark,
		lockWindow: make([]mem.RegionAddr, len(s.lockWindow)),
		lockPos:    s.lockPos,
		xfer:       s.xfer,
		rpFallback: s.rpFallback,
	}
	copy(sn.lockWindow, s.lockWindow)
	if s.pressureCur != nil {
		sn.pressureCur = make([]uint64, len(s.pressureCur))
		sn.pressurePrev = make([]uint64, len(s.pressurePrev))
		copy(sn.pressureCur, s.pressureCur)
		copy(sn.pressurePrev, s.pressurePrev)
	}

	sn.nodes = make([]nodeSnap, len(s.nodes))
	for i, n := range s.nodes {
		ns := &sn.nodes[i]
		index := make(map[*nodeRegion]int32)
		ns.md1i = n.md1i.Clone()
		ns.md1d = n.md1d.Clone()
		ns.md2 = n.md2.Clone()
		ns.md1iIdx = snapEntries(n.md1i, n.md1iEnt, index, &ns.regions)
		ns.md1dIdx = snapEntries(n.md1d, n.md1dEnt, index, &ns.regions)
		ns.md2Idx = snapEntries(n.md2, n.md2Ent, index, &ns.regions)
		ns.l1i = n.l1i.snapshot()
		ns.l1d = n.l1d.snapshot()
		if n.l2 != nil {
			ns.l2 = n.l2.snapshot()
		}
		ns.l1dActive, ns.md1dActive = n.l1dActive, n.md1dActive
		ns.epochDataMisses, ns.epochMDMisses = n.epochDataMisses, n.epochMDMisses
		if n.pred != nil {
			ns.pred = make([]uint8, len(n.pred))
			copy(ns.pred, n.pred)
		}
	}

	sn.md3 = s.md3.Clone()
	sn.md3Idx = make([]int32, len(s.md3Ent))
	for i := range sn.md3Idx {
		sn.md3Idx[i] = -1
	}
	s.md3.ForEach(func(set, way int, _ uint64) {
		i := s.md3.Index(set, way)
		if d := s.md3Ent[i]; d != nil {
			sn.md3Idx[i] = int32(len(sn.md3Regions))
			sn.md3Regions = append(sn.md3Regions, *d)
		}
	})

	if s.far != nil {
		sn.far = s.far.snapshot()
	}
	if s.slices != nil {
		sn.slices = make([]*storeSnap, len(s.slices))
		for i, sl := range s.slices {
			sn.slices[i] = sl.snapshot()
		}
	}

	sn.bytes = sn.computeSize()
	return sn
}

// RestoreInto overwrites dst (a freshly constructed System of the same
// configuration) with the snapshot's state. Multiple goroutines may
// restore from one snapshot concurrently.
func (sn *Snapshot) RestoreInto(dst *System) {
	if dst.cfg != sn.cfg {
		panic(fmt.Sprintf("core: snapshot restore config mismatch: %+v vs %+v", dst.cfg, sn.cfg))
	}
	dst.rng.SetState(sn.rngState)
	dst.epochMark = sn.epochMark
	copy(dst.lockWindow, sn.lockWindow)
	dst.lockPos = sn.lockPos
	dst.xfer = sn.xfer
	dst.rpFallback = sn.rpFallback
	if sn.pressureCur != nil {
		copy(dst.pressureCur, sn.pressureCur)
		copy(dst.pressurePrev, sn.pressurePrev)
	}

	for i, n := range dst.nodes {
		ns := &sn.nodes[i]
		fresh := make([]nodeRegion, len(ns.regions))
		copy(fresh, ns.regions)
		n.md1i.CopyFrom(ns.md1i)
		n.md1d.CopyFrom(ns.md1d)
		n.md2.CopyFrom(ns.md2)
		restoreEntries(n.md1iEnt, ns.md1iIdx, fresh)
		restoreEntries(n.md1dEnt, ns.md1dIdx, fresh)
		restoreEntries(n.md2Ent, ns.md2Idx, fresh)
		n.l1i.restore(ns.l1i)
		n.l1d.restore(ns.l1d)
		if n.l2 != nil {
			n.l2.restore(ns.l2)
		}
		n.l1dActive, n.md1dActive = ns.l1dActive, ns.md1dActive
		n.l1d.activeWays = ns.l1dActive // zero = all active (non-adaptive)
		n.epochDataMisses, n.epochMDMisses = ns.epochDataMisses, ns.epochMDMisses
		copy(n.pred, ns.pred)
	}

	dst.md3.CopyFrom(sn.md3)
	freshDir := make([]dirRegion, len(sn.md3Regions))
	copy(freshDir, sn.md3Regions)
	for i, id := range sn.md3Idx {
		if id < 0 {
			dst.md3Ent[i] = nil
		} else {
			dst.md3Ent[i] = &freshDir[id]
		}
	}

	if dst.far != nil {
		dst.far.restore(sn.far)
	}
	for i, sl := range dst.slices {
		sl.restore(sn.slices[i])
	}
}

// SizeBytes returns the snapshot's approximate in-memory footprint,
// the unit of the snapshot cache's byte budget.
func (sn *Snapshot) SizeBytes() int64 { return sn.bytes }

func (sn *Snapshot) computeSize() int64 {
	var b int64
	for i := range sn.nodes {
		ns := &sn.nodes[i]
		b += ns.md1i.SizeBytes() + ns.md1d.SizeBytes() + ns.md2.SizeBytes()
		b += int64(len(ns.md1iIdx)+len(ns.md1dIdx)+len(ns.md2Idx)) * 4
		b += int64(len(ns.regions)) * nodeRegSize
		b += ns.l1i.sizeBytes() + ns.l1d.sizeBytes()
		if ns.l2 != nil {
			b += ns.l2.sizeBytes()
		}
		b += int64(len(ns.pred))
	}
	b += sn.md3.SizeBytes() + int64(len(sn.md3Idx))*4 + int64(len(sn.md3Regions))*dirRegSize
	if sn.far != nil {
		b += sn.far.sizeBytes()
	}
	for _, sl := range sn.slices {
		b += sl.sizeBytes()
	}
	b += int64(len(sn.pressureCur)+len(sn.pressurePrev))*8 + int64(len(sn.lockWindow))*8
	return b
}
