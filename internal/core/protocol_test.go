package core

import (
	"testing"

	"d2m/internal/mem"
)

// testConfig returns a deliberately tiny geometry so that a few thousand
// accesses exercise every eviction cascade: MD1/MD2/MD3 spills, L1/LLC
// replacement, region flushes.
func testConfig(nearSide bool) Config {
	c := DefaultConfig()
	c.Nodes = 4
	c.L1Sets, c.L1Ways = 4, 2
	c.L2Sets, c.L2Ways = 0, 0
	c.LLCSets, c.LLCWays = 16, 4
	c.NearSide = nearSide
	c.SliceSets, c.SliceWays = 16, 2
	c.MD1Sets, c.MD1Ways = 2, 2
	c.MD2Sets, c.MD2Ways = 4, 4
	c.MD3Sets, c.MD3Ways = 8, 4
	c.CoherenceDebug = true
	return c
}

func mustCheck(t *testing.T, s *System) {
	t.Helper()
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("invariant violation: %v", err)
	}
}

func addrOf(region, lineIdx int) mem.Addr {
	return mem.RegionAddr(region).Line(lineIdx).Addr()
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Nodes = 0 },
		func(c *Config) { c.Nodes = 9 },
		func(c *Config) { c.L1Ways = 9 },
		func(c *Config) { c.LLCWays = 33 },
		func(c *Config) { c.NearSide = true; c.SliceWays = 5 },
		func(c *Config) { c.Replication = true }, // without NearSide
		func(c *Config) { c.MD3Sets = 0 },
	}
	for i, mutate := range bad {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestFirstAccessIsUncachedToPrivate(t *testing.T) {
	s := NewSystem(testConfig(false))
	res := s.Access(mem.Access{Node: 0, Addr: addrOf(1, 0), Kind: mem.Load})
	if res.L1Hit {
		t.Fatal("first access hit")
	}
	st := s.Stats()
	if st.EvD4 != 1 {
		t.Errorf("EvD4 = %d, want 1 (uncached -> private)", st.EvD4)
	}
	if st.DRAMReads != 1 {
		t.Errorf("DRAMReads = %d, want 1", st.DRAMReads)
	}
	if st.PrivateMisses != 1 || st.SharedMisses != 0 {
		t.Errorf("private/shared misses = %d/%d", st.PrivateMisses, st.SharedMisses)
	}
	mustCheck(t, s)

	// Second access to the same line: L1 hit, MD1 hit.
	res = s.Access(mem.Access{Node: 0, Addr: addrOf(1, 0), Kind: mem.Load})
	if !res.L1Hit {
		t.Fatal("second access missed")
	}
	if st.MD1Hits == 0 {
		t.Error("no MD1 hit recorded")
	}
	mustCheck(t, s)
}

func TestPrivateWriteNeedsNoCoherence(t *testing.T) {
	s := NewSystem(testConfig(false))
	s.Access(mem.Access{Node: 0, Addr: addrOf(1, 3), Kind: mem.Load})
	base := s.Fabric().Messages()
	s.Access(mem.Access{Node: 0, Addr: addrOf(1, 3), Kind: mem.Store})
	if got := s.Fabric().Messages(); got != base {
		t.Errorf("private write sent %d messages", got-base)
	}
	if s.Stats().InvRecv != 0 {
		t.Error("private write caused invalidations")
	}
	if s.Stats().EvC != 0 {
		t.Error("private write ran case C")
	}
	mustCheck(t, s)
}

func TestPrivateToSharedTransition(t *testing.T) {
	s := NewSystem(testConfig(false))
	a := addrOf(2, 5)
	s.Access(mem.Access{Node: 0, Addr: a, Kind: mem.Load})
	if s.Stats().EvD4 != 1 {
		t.Fatalf("setup: EvD4 = %d", s.Stats().EvD4)
	}
	// Node 1 touches the same region: D2 (private -> shared), and the
	// data is read directly from node 0 (the master), not memory.
	dram := s.Stats().DRAMReads
	s.Access(mem.Access{Node: 1, Addr: a, Kind: mem.Load})
	st := s.Stats()
	if st.EvD2 != 1 {
		t.Errorf("EvD2 = %d, want 1", st.EvD2)
	}
	if st.EvANode != 1 {
		t.Errorf("EvANode = %d, want 1 (read served by master node)", st.EvANode)
	}
	if st.DRAMReads != dram {
		t.Errorf("read went to DRAM instead of the master node")
	}
	// Both nodes' entries must now be non-private and MD3 must classify
	// the region shared.
	d := s.md3Probe(mem.RegionAddr(2))
	if d == nil || d.class() != Shared {
		t.Fatalf("region class = %v", d.class())
	}
	for _, n := range s.nodes[:2] {
		if ent := n.entry(mem.RegionAddr(2)); ent == nil || ent.private {
			t.Errorf("node %d entry private after sharing", n.id)
		}
	}
	mustCheck(t, s)
}

func TestSharedWriteInvalidatesAndRepoints(t *testing.T) {
	s := NewSystem(testConfig(false))
	a := addrOf(3, 7)
	s.Access(mem.Access{Node: 0, Addr: a, Kind: mem.Load})
	s.Access(mem.Access{Node: 1, Addr: a, Kind: mem.Load})
	mustCheck(t, s)

	// Node 1 writes: case C, node 0 receives a (true) invalidation.
	s.Access(mem.Access{Node: 1, Addr: a, Kind: mem.Store})
	st := s.Stats()
	if st.EvC != 1 {
		t.Errorf("EvC = %d, want 1", st.EvC)
	}
	if st.InvRecv != 1 || st.FalseInvRecv != 0 {
		t.Errorf("InvRecv/false = %d/%d, want 1/0", st.InvRecv, st.FalseInvRecv)
	}
	// Node 0's LI must now point at node 1.
	ent0 := s.nodes[0].entry(mem.RegionAddr(3))
	if ent0 == nil || ent0.li[7] != InNode(1) {
		t.Errorf("node 0 LI = %v, want node1", ent0.li[7])
	}
	mustCheck(t, s)

	// Node 0 re-reads: served directly by node 1's dirty master, and the
	// oracle verifies it observes the written version.
	dram := st.DRAMReads
	s.Access(mem.Access{Node: 0, Addr: a, Kind: mem.Load})
	if s.Stats().DRAMReads != dram {
		t.Error("re-read went to DRAM; must be served by the master node")
	}
	mustCheck(t, s)
}

func TestFalseInvalidation(t *testing.T) {
	s := NewSystem(testConfig(false))
	// Node 0 caches line 0 of the region; node 1 caches line 1. Node 1
	// then writes line 0: node 0 gets a true invalidation. Node 1 writes
	// line 1 afterwards — node 0 tracks the region (PB set) but never
	// cached line 1, so it receives a false invalidation.
	s.Access(mem.Access{Node: 0, Addr: addrOf(4, 0), Kind: mem.Load})
	s.Access(mem.Access{Node: 1, Addr: addrOf(4, 1), Kind: mem.Load})
	s.Access(mem.Access{Node: 1, Addr: addrOf(4, 0), Kind: mem.Store})
	st := s.Stats()
	if st.InvRecv != 1 || st.FalseInvRecv != 0 {
		t.Fatalf("after first write: InvRecv/false = %d/%d", st.InvRecv, st.FalseInvRecv)
	}
	s.Access(mem.Access{Node: 1, Addr: addrOf(4, 1), Kind: mem.Store})
	st = s.Stats()
	if st.FalseInvRecv != 1 {
		t.Errorf("FalseInvRecv = %d, want 1 (region-grained PB bits)", st.FalseInvRecv)
	}
	mustCheck(t, s)
}

func TestSecondWriteIsSilent(t *testing.T) {
	s := NewSystem(testConfig(false))
	a := addrOf(5, 2)
	s.Access(mem.Access{Node: 0, Addr: a, Kind: mem.Load})
	s.Access(mem.Access{Node: 1, Addr: a, Kind: mem.Load}) // region shared
	s.Access(mem.Access{Node: 1, Addr: a, Kind: mem.Store})
	evc := s.Stats().EvC
	s.Access(mem.Access{Node: 1, Addr: a, Kind: mem.Store})
	if s.Stats().EvC != evc {
		t.Error("second write to an exclusive master ran case C again")
	}
	mustCheck(t, s)
}

func TestEvictionMovesMasterToLLC(t *testing.T) {
	s := NewSystem(testConfig(false))
	// Fill one L1 set beyond capacity with private lines; the evicted
	// master must land in the LLC (its RP victim location) and the next
	// access must be an LLC direct hit, not DRAM.
	c := s.Config()
	stride := c.L1Sets * mem.LineBytes // same L1 set, different lines
	var addrs []mem.Addr
	for i := 0; i < c.L1Ways+1; i++ {
		a := mem.Addr(0x100000 + i*stride*16) // distinct regions
		addrs = append(addrs, a)
		s.Access(mem.Access{Node: 0, Addr: a, Kind: mem.Load})
	}
	mustCheck(t, s)
	dram := s.Stats().DRAMReads
	llc := s.Stats().LLCHits
	s.Access(mem.Access{Node: 0, Addr: addrs[0], Kind: mem.Load})
	st := s.Stats()
	if st.DRAMReads != dram {
		t.Errorf("re-access of evicted line went to DRAM")
	}
	if st.LLCHits != llc+1 {
		t.Errorf("LLCHits = %d, want %d (direct LLC hit via LI)", st.LLCHits, llc+1)
	}
	if st.EvE == 0 {
		t.Error("no private eviction (case E) recorded")
	}
	mustCheck(t, s)
}

func TestDirtyEvictionToMemPreservesData(t *testing.T) {
	// Tiny LLC pressure: dirty masters eventually wash through the LLC
	// to memory and must come back with the written version (oracle
	// panics otherwise).
	s := NewSystem(testConfig(false))
	rng := mem.NewRNG(7)
	for i := 0; i < 5000; i++ {
		a := addrOf(rng.Intn(64), rng.Intn(16))
		kind := mem.Load
		if rng.Bool(0.3) {
			kind = mem.Store
		}
		s.Access(mem.Access{Node: 0, Addr: a, Kind: kind})
	}
	if s.Stats().DRAMWrites == 0 {
		t.Error("no dirty writebacks despite heavy pressure")
	}
	mustCheck(t, s)
}

func TestNearSideLocalHit(t *testing.T) {
	c := testConfig(true)
	s := NewSystem(c)
	// Node 2 loads a private line, evicts it (the placement policy puts
	// the victim in its own slice when pressures are equal), re-reads it:
	// the hit must be local with no interconnect messages for the data.
	stride := c.L1Sets * mem.LineBytes
	var addrs []mem.Addr
	for i := 0; i < c.L1Ways+1; i++ {
		a := mem.Addr(0x200000 + i*stride*16)
		addrs = append(addrs, a)
		s.Access(mem.Access{Node: 2, Addr: a, Kind: mem.Load})
	}
	s.Access(mem.Access{Node: 2, Addr: addrs[0], Kind: mem.Load})
	st := s.Stats()
	if st.LLCLocalHitsD == 0 {
		t.Errorf("no local near-side hits (local=%d remote=%d)", st.LLCLocalHitsD, st.LLCRemoteHitsD)
	}
	mustCheck(t, s)
}

func TestReplicationServesInstructionLocally(t *testing.T) {
	c := testConfig(true)
	c.Replication = true
	s := NewSystem(c)
	a := addrOf(9, 1)
	// Node 0 fetches code, lets it age into its slice; node 1 then
	// fetches the same code twice: the first remote read replicates it,
	// the second is a local slice hit.
	stride := c.L1Sets * mem.LineBytes
	s.Access(mem.Access{Node: 0, Addr: a, Kind: mem.IFetch})
	for i := 1; i <= c.L1Ways; i++ {
		s.Access(mem.Access{Node: 0, Addr: a + mem.Addr(i*stride*16), Kind: mem.IFetch})
	}
	// Force the line out of node 1's L1 after its first read.
	s.Access(mem.Access{Node: 1, Addr: a, Kind: mem.IFetch})
	if s.Stats().Replications == 0 {
		t.Skip("line was not yet in a remote slice; placement put it elsewhere")
	}
	for i := 1; i <= c.L1Ways; i++ {
		s.Access(mem.Access{Node: 1, Addr: a + mem.Addr(i*stride*16) + 0x400000, Kind: mem.IFetch})
	}
	local := s.Stats().LLCLocalHitsI
	s.Access(mem.Access{Node: 1, Addr: a, Kind: mem.IFetch})
	if s.Stats().LLCLocalHitsI != local+1 {
		t.Errorf("replicated instruction not served locally (local=%d)", s.Stats().LLCLocalHitsI)
	}
	mustCheck(t, s)
}

func TestMD2PruningTurnsRegionPrivate(t *testing.T) {
	c := testConfig(false)
	c.MD2Pruning = true
	s := NewSystem(c)
	a := addrOf(11, 0)
	s.Access(mem.Access{Node: 0, Addr: a, Kind: mem.Load})
	s.Access(mem.Access{Node: 1, Addr: a, Kind: mem.Load})
	// Pruning requires the MD1 entry to be inactive (the paper's TP
	// condition): push node 0's entry for region 11 out of its MD1 by
	// touching conflicting regions (same MD1 set, different regions).
	for i := 1; i <= c.MD1Ways+1; i++ {
		s.Access(mem.Access{Node: 0, Addr: addrOf(11+2*c.MD1Sets*i, 0), Kind: mem.Load})
	}
	// Node 1 writes the line node 0 held; after the invalidation node 0
	// has no copies left in the region and prunes its entry, which
	// makes the region private for node 1 again.
	s.Access(mem.Access{Node: 1, Addr: a, Kind: mem.Store})
	st := s.Stats()
	if st.MD2Prunes == 0 {
		t.Fatalf("no pruning after invalidation emptied node 0")
	}
	ent1 := s.nodes[1].entry(mem.RegionAddr(11))
	if ent1 == nil || !ent1.private {
		t.Error("region not reclassified private after pruning")
	}
	if s.nodes[0].entry(mem.RegionAddr(11)) != nil {
		t.Error("node 0 entry survived pruning")
	}
	mustCheck(t, s)
}

func TestStreamSwitch(t *testing.T) {
	s := NewSystem(testConfig(false))
	a := addrOf(13, 4)
	s.Access(mem.Access{Node: 0, Addr: a, Kind: mem.IFetch})
	s.Access(mem.Access{Node: 0, Addr: a, Kind: mem.Load}) // same line as data
	s.Access(mem.Access{Node: 0, Addr: a, Kind: mem.Store})
	s.Access(mem.Access{Node: 0, Addr: a, Kind: mem.IFetch})
	mustCheck(t, s)
}

func TestDynamicIndexingScramblesSets(t *testing.T) {
	c := testConfig(false)
	c.DynamicIndexing = true
	s := NewSystem(c)
	// Power-of-two-strided regions that would all map to LLC set 0
	// without scrambling.
	sets := map[int]bool{}
	for i := 0; i < 8; i++ {
		r := mem.RegionAddr(i * c.LLCSets * 4)
		line := r.Line(0)
		d := s.md3Probe(r)
		if d == nil {
			tt := &txn{}
			d = s.md3Alloc(r, tt)
		}
		if !c.NearSide {
			sets[s.far.setFor(line, d.scramble)] = true
		}
	}
	if len(sets) < 3 {
		t.Errorf("scrambling left %d distinct sets for a malicious stride", len(sets))
	}
}

func TestAccessPanicsOnBadNode(t *testing.T) {
	s := NewSystem(testConfig(false))
	defer func() {
		if recover() == nil {
			t.Error("no panic for out-of-range node")
		}
	}()
	s.Access(mem.Access{Node: 12, Addr: 0, Kind: mem.Load})
}

// TestRegionClassificationTable pins Table II: the classification implied
// by the number of set presence bits.
func TestRegionClassificationTable(t *testing.T) {
	cases := []struct {
		pb   uint16
		want Class
	}{
		{0b0000, Untracked},
		{0b0001, Private},
		{0b1000, Private},
		{0b0011, Shared},
		{0b1111, Shared},
		{0b11111111, Shared},
	}
	for _, c := range cases {
		if got := ClassifyPB(c.pb); got != c.want {
			t.Errorf("ClassifyPB(%b) = %v, want %v", c.pb, got, c.want)
		}
	}
	// Strings used in reports.
	for c, s := range map[Class]string{Uncached: "uncached", Untracked: "untracked", Private: "private", Shared: "shared"} {
		if c.String() != s {
			t.Errorf("%d.String() = %q", c, c.String())
		}
	}
	if Class(9).String() != "class(9)" {
		t.Error("unknown class string")
	}
}

// TestClassifyPBQuick: classification is monotone in the popcount.
func TestClassifyPBQuick(t *testing.T) {
	for pb := uint16(0); pb < 1<<8; pb++ {
		n := popcount16(pb)
		want := Shared
		switch n {
		case 0:
			want = Untracked
		case 1:
			want = Private
		}
		if got := ClassifyPB(pb); got != want {
			t.Fatalf("ClassifyPB(%b) = %v, want %v", pb, got, want)
		}
	}
}

// TestPBHelpers covers the presence-bit manipulation used by MD3.
func TestPBHelpers(t *testing.T) {
	d := newDirRegion(5, 0)
	if d.class() != Untracked {
		t.Error("fresh region not untracked")
	}
	d.setPB(3)
	if !d.hasPB(3) || d.hasPB(2) {
		t.Error("setPB/hasPB wrong")
	}
	if d.class() != Private || d.solePBNode() != 3 {
		t.Error("single-PB region not private to 3")
	}
	d.setPB(6)
	if got := d.pbNodes(); len(got) != 2 || got[0] != 3 || got[1] != 6 {
		t.Errorf("pbNodes = %v", got)
	}
	d.clearPB(3)
	if d.hasPB(3) || d.class() != Private {
		t.Error("clearPB wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("solePBNode on shared region did not panic")
		}
	}()
	d.setPB(1)
	d.solePBNode()
}

// TestCacheBypassStreamingRegion drives a region with streaming behaviour
// (every line touched once) and verifies that, once the predictor warms
// up, reads stop allocating in the L1 — while a reused (hot) region keeps
// normal allocation.
func TestCacheBypassStreamingRegion(t *testing.T) {
	cfg := testConfig(false)
	cfg.CacheBypass = true
	s := NewSystem(cfg)

	// Streaming region: touch many distinct lines, once each, across
	// several regions to warm the per-region predictors.
	for r := 20; r < 24; r++ {
		for i := 0; i < mem.LinesPerRegion; i++ {
			s.Access(mem.Access{Node: 0, Addr: addrOf(r, i), Kind: mem.Load})
		}
	}
	if s.Stats().BypassedReads == 0 {
		t.Error("no bypassed reads on a streaming pattern")
	}
	mustCheck(t, s)

	// Hot region: repeated touches of the same lines must not bypass.
	before := s.Stats().BypassedReads
	for pass := 0; pass < 20; pass++ {
		for i := 0; i < 4; i++ {
			s.Access(mem.Access{Node: 1, Addr: addrOf(30, i), Kind: mem.Load})
		}
	}
	if s.Stats().BypassedReads != before {
		t.Error("hot region reads were bypassed")
	}
	mustCheck(t, s)
}

// TestCacheBypassCoherent verifies bypassed reads stay coherent when the
// line is written by another node (the oracle panics otherwise).
func TestCacheBypassCoherent(t *testing.T) {
	cfg := testConfig(false)
	cfg.CacheBypass = true
	s := NewSystem(cfg)
	rng := mem.NewRNG(21)
	for i := 0; i < 20000; i++ {
		node := rng.Intn(cfg.Nodes)
		kind := mem.Load
		if rng.Bool(0.25) {
			kind = mem.Store
		}
		s.Access(mem.Access{Node: node, Addr: mem.RegionAddr(rng.Intn(48)).Line(rng.Intn(16)).Addr(), Kind: kind})
		if i%997 == 0 {
			if err := s.CheckInvariants(); err != nil {
				t.Fatalf("after %d: %v", i, err)
			}
		}
	}
	mustCheck(t, s)
}

// TestCacheBypassNearSide exercises the bypass paths against near-side
// slices with every other optimization on.
func TestCacheBypassNearSide(t *testing.T) {
	cfg := testConfig(true)
	cfg.CacheBypass = true
	cfg.Replication = true
	cfg.DynamicIndexing = true
	cfg.MD2Pruning = true
	s := NewSystem(cfg)
	rng := mem.NewRNG(22)
	for i := 0; i < 25000; i++ {
		node := rng.Intn(cfg.Nodes)
		kind := mem.Load
		switch {
		case rng.Bool(0.3):
			kind = mem.IFetch
		case rng.Bool(0.3):
			kind = mem.Store
		}
		region := rng.Intn(64)
		if kind == mem.IFetch {
			region += 1 << 20
		}
		s.Access(mem.Access{Node: node, Addr: mem.RegionAddr(region).Line(rng.Intn(16)).Addr(), Kind: kind})
		if i%997 == 0 {
			if err := s.CheckInvariants(); err != nil {
				t.Fatalf("after %d: %v", i, err)
			}
		}
	}
	mustCheck(t, s)
}

// TestStatsHelpers covers the ratio accessors directly.
func TestStatsHelpers(t *testing.T) {
	st := Stats{
		L1IHits: 90, L1IMisses: 10,
		L1DHits: 80, L1DMisses: 20,
		MissLatencySum: 600, MissCount: 30,
		LLCLocalHitsI: 3, LLCRemoteHitsI: 1,
		LLCLocalHitsD: 1, LLCRemoteHitsD: 3,
		PrivateMisses: 6, SharedMisses: 4,
		DirectMisses: 9, IndirectMisses: 1,
		Accesses: 2000, EvC: 4,
		LockAcquires: 100, LockCollisions: 1,
	}
	if st.MissRatioI() != 0.1 || st.MissRatioD() != 0.2 {
		t.Error("miss ratios wrong")
	}
	if st.AvgMissLatency() != 20 {
		t.Error("avg miss latency wrong")
	}
	if st.NearSideHitRatioI() != 0.75 || st.NearSideHitRatioD() != 0.25 {
		t.Error("near-side ratios wrong")
	}
	if st.PrivateMissFraction() != 0.6 || st.DirectMissFraction() != 0.9 {
		t.Error("classification fractions wrong")
	}
	if st.PKMO(st.EvC) != 2 {
		t.Errorf("PKMO = %v", st.PKMO(st.EvC))
	}
	if st.LockCollisionRate() != 0.01 {
		t.Error("lock rate wrong")
	}
	var zero Stats
	if zero.MissRatioI() != 0 || zero.AvgMissLatency() != 0 || zero.PKMO(5) != 0 {
		t.Error("zero stats ratios not zero")
	}
}

// TestResetMeasurement: the warmup boundary must zero counters but keep
// cache contents (the next access hits).
func TestResetMeasurement(t *testing.T) {
	s := NewSystem(testConfig(false))
	a := addrOf(1, 0)
	s.Access(mem.Access{Node: 0, Addr: a, Kind: mem.Load})
	s.ResetMeasurement()
	if s.Stats().Accesses != 0 || s.Fabric().Messages() != 0 {
		t.Error("counters survived reset")
	}
	res := s.Access(mem.Access{Node: 0, Addr: a, Kind: mem.Load})
	if !res.L1Hit {
		t.Error("cache contents lost at the measurement boundary")
	}
	if s.Stats().Accesses != 1 {
		t.Error("post-reset accounting wrong")
	}
}
