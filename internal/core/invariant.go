package core

import (
	"fmt"

	"d2m/internal/mem"
)

// CheckInvariants audits the whole machine against the paper's
// correctness guarantees and this implementation's structural rules. It
// is O(total capacity) and intended for tests, which interleave it with
// random access streams.
//
// Audited properties:
//
//  1. Determinism (§II-B invariant 1): every local LI names a valid slot
//     holding exactly that line; every concrete LLC LI likewise.
//  2. Metadata inclusion (§III): every valid L1/L2 line is tracked by its
//     node's MD2 entry, whose LI points exactly at the slot; MD1 entries
//     appear in MD2; a node's MD2 entry implies an MD3 entry with the
//     node's PB bit set, and vice versa.
//  3. Private classification (§II-B invariant 2): a node's P bit is set
//     iff MD3 classifies the region private with that node as the sole
//     tracker, and private regions have all-invalid MD3 LIs.
//  4. Single-writer: at most one dirty copy of a line exists anywhere;
//     every dirty copy is a master; an excl copy is the only copy.
//  5. No orphans: every LLC master is reachable from MD3 or a tracking
//     node (otherwise a region flush could never find it); every LLC
//     replica is reachable from its owner's metadata.
//  6. Scramble coherence: every tracker of a region agrees with MD3's
//     scramble (dynamic indexing would otherwise compute divergent sets).
func (s *System) CheckInvariants() error {
	if err := s.checkMDStructure(); err != nil {
		return err
	}
	if err := s.checkNodeEntries(); err != nil {
		return err
	}
	orphans, err := s.checkDataStores()
	if err != nil {
		return err
	}
	if err := s.checkLineGlobals(orphans); err != nil {
		return err
	}
	if err := s.checkAdaptive(); err != nil {
		return err
	}
	return nil
}

// checkAdaptive audits the way-repartitioning state (Config.AdaptiveWays):
// each node's split must exhaust the budget within the per-side bounds,
// and the ways outside either active prefix must be fully drained — a
// line or metadata entry parked in an inactive way would be capacity the
// policy believes it reclaimed.
func (s *System) checkAdaptive() error {
	if !s.cfg.AdaptiveWays {
		return nil
	}
	for _, n := range s.nodes {
		if n.l1dActive+n.md1dActive != AdaptiveWayBudget {
			return fmt.Errorf("node %d: adaptive split %d+%d != budget %d", n.id, n.l1dActive, n.md1dActive, AdaptiveWayBudget)
		}
		for _, side := range []int{n.l1dActive, n.md1dActive} {
			if side < AdaptiveMinWays || side > AdaptiveMaxWays {
				return fmt.Errorf("node %d: adaptive side %d outside [%d,%d]", n.id, side, AdaptiveMinWays, AdaptiveMaxWays)
			}
		}
		if n.l1d.activeWays != n.l1dActive {
			return fmt.Errorf("node %d: L1-D activeWays %d != split %d", n.id, n.l1d.activeWays, n.l1dActive)
		}
		for set := 0; set < n.l1d.tbl.Sets(); set++ {
			for w := n.l1dActive; w < n.l1d.ways(); w++ {
				if sl := n.l1d.at(set, w); sl.valid {
					return fmt.Errorf("node %d: L1-D inactive way %d holds %v (active=%d)", n.id, w, sl.line, n.l1dActive)
				}
			}
		}
		for set := 0; set < n.md1d.Sets(); set++ {
			for w := n.md1dActive; w < n.md1d.Ways(); w++ {
				if n.md1d.Valid(set, w) {
					return fmt.Errorf("node %d: MD1-D inactive way %d valid in set %d (active=%d)", n.id, w, set, n.md1dActive)
				}
			}
		}
	}
	return nil
}

func (s *System) checkMDStructure() error {
	for _, n := range s.nodes {
		for _, instr := range []bool{true, false} {
			md1, pay := n.md1For(instr)
			var failure error
			md1.ForEach(func(set, way int, key uint64) {
				ent := pay[md1.Index(set, way)]
				if ent == nil {
					failure = fmt.Errorf("node %d: MD1 slot (%d,%d) valid with nil entry", n.id, set, way)
					return
				}
				if uint64(ent.region) != key {
					failure = fmt.Errorf("node %d: MD1 key %#x holds entry for %v", n.id, key, ent.region)
					return
				}
				wantActive := activeMD1D
				if instr {
					wantActive = activeMD1I
				}
				if ent.active != wantActive {
					failure = fmt.Errorf("node %d: entry %v in MD1(instr=%v) has active=%d", n.id, ent.region, instr, ent.active)
					return
				}
				// MD1 inclusion in MD2.
				if n.entry(ent.region) != ent {
					failure = fmt.Errorf("node %d: MD1 entry %v not present in MD2", n.id, ent.region)
				}
			})
			if failure != nil {
				return failure
			}
		}
	}
	return nil
}

func (s *System) checkNodeEntries() error {
	for _, n := range s.nodes {
		var failure error
		n.md2.ForEach(func(set, way int, key uint64) {
			if failure != nil {
				return
			}
			ent := n.md2Ent[n.md2.Index(set, way)]
			if ent == nil || uint64(ent.region) != key {
				failure = fmt.Errorf("node %d: MD2 slot (%d,%d) inconsistent", n.id, set, way)
				return
			}
			d := s.md3Probe(ent.region)
			if d == nil {
				failure = fmt.Errorf("node %d: entry %v has no MD3 entry (MD3 inclusion)", n.id, ent.region)
				return
			}
			if !d.hasPB(n.id) {
				failure = fmt.Errorf("node %d: entry %v but PB bit clear", n.id, ent.region)
				return
			}
			if ent.scramble != d.scramble {
				failure = fmt.Errorf("node %d: region %v scramble %#x != MD3 %#x", n.id, ent.region, ent.scramble, d.scramble)
				return
			}
			if ent.private != (d.class() == Private) {
				failure = fmt.Errorf("node %d: region %v P=%v but MD3 class %v (PB=%b)", n.id, ent.region, ent.private, d.class(), d.pb)
				return
			}
			for idx := range ent.li {
				li := ent.li[idx]
				line := ent.region.Line(idx)
				// Every stored LI must round-trip the 6-bit Table I
				// encoding: the implementation may never carry more
				// information than the hardware field holds.
				if li.Kind != LocInvalid {
					if got := DecodeLI(EncodeLI(li, s.cfg.NearSide), s.cfg.NearSide); got != li {
						failure = fmt.Errorf("node %d: LI %v does not survive the 6-bit encoding (-> %v)", n.id, li, got)
						return
					}
				}
				switch li.Kind {
				case LocInvalid:
					failure = fmt.Errorf("node %d: region %v line %d has invalid LI", n.id, ent.region, idx)
					return
				case LocL1, LocL2:
					st := n.storeForLocal(li, ent)
					sset := st.setFor(line, ent.scramble)
					sl := st.at(sset, li.Way)
					if !sl.valid || sl.line != line {
						failure = fmt.Errorf("node %d: determinism: LI %v for %v, slot holds %v valid=%v", n.id, li, line, sl.line, sl.valid)
						return
					}
				case LocLLC:
					if li.Way == WayUnresolved {
						failure = fmt.Errorf("node %d: unresolved LLC LI in entry %v", n.id, ent.region)
						return
					}
					st := s.llcStore(li)
					sset := st.setFor(line, ent.scramble)
					sl := st.at(sset, li.Way)
					if !sl.valid || sl.line != line {
						failure = fmt.Errorf("node %d: determinism: LLC LI %v for %v, slot holds %v valid=%v", n.id, li, line, sl.line, sl.valid)
						return
					}
				case LocNode:
					if li.Node < 0 || li.Node >= s.cfg.Nodes {
						failure = fmt.Errorf("node %d: LI names node %d", n.id, li.Node)
						return
					}
					if ent.private {
						failure = fmt.Errorf("node %d: private region %v has remote LI %v", n.id, ent.region, li)
						return
					}
				}
			}
		})
		if failure != nil {
			return failure
		}
	}
	// PB bit implies MD2 entry (reverse inclusion).
	var failure error
	s.md3.ForEach(func(set, way int, key uint64) {
		if failure != nil {
			return
		}
		d := s.md3Ent[s.md3.Index(set, way)]
		if d == nil || uint64(d.region) != key {
			failure = fmt.Errorf("MD3 slot (%d,%d) inconsistent", set, way)
			return
		}
		for _, mid := range d.pbNodes() {
			if mid >= s.cfg.Nodes {
				failure = fmt.Errorf("region %v: PB names node %d beyond %d nodes", d.region, mid, s.cfg.Nodes)
				return
			}
			if s.nodes[mid].entry(d.region) == nil {
				failure = fmt.Errorf("region %v: PB set for node %d without an MD2 entry", d.region, mid)
				return
			}
		}
		if d.class() == Private {
			for idx := range d.li {
				if d.li[idx].Kind != LocInvalid {
					failure = fmt.Errorf("private region %v has valid MD3 LI %v", d.region, d.li[idx])
					return
				}
			}
		}
		for idx := range d.li {
			li := d.li[idx]
			if li.Kind == LocLLC && li.Way == WayUnresolved {
				failure = fmt.Errorf("region %v: MD3 LI %d unresolved", d.region, idx)
				return
			}
			if got := DecodeLI(EncodeLI(li, s.cfg.NearSide), s.cfg.NearSide); got != li {
				failure = fmt.Errorf("region %v: MD3 LI %v does not survive the 6-bit encoding", d.region, li)
				return
			}
		}
	})
	return failure
}

// checkDataStores verifies the no-orphan property: every valid slot in
// every data store is reachable from metadata. It returns the set of
// tolerated orphans (unreachable clean LLC masters — benign duplicates
// that match memory and await replacement), which the line-global checks
// must not count as live copies.
func (s *System) checkDataStores() (map[*slot]bool, error) {
	orphans := map[*slot]bool{}
	for _, n := range s.nodes {
		stores := []*dataStore{n.l1i, n.l1d}
		if n.l2 != nil {
			stores = append(stores, n.l2)
		}
		for _, st := range stores {
			var failure error
			st.forEach(func(set, way int, sl *slot) {
				if failure != nil {
					return
				}
				ent := n.entry(sl.line.Region())
				if ent == nil {
					failure = fmt.Errorf("%s: line %v untracked by node", st.name, sl.line)
					return
				}
				li := ent.li[sl.line.Index()]
				if !li.Local() || li.Way != way || n.storeForLocal(li, ent) != st ||
					st.setFor(sl.line, ent.scramble) != set {
					failure = fmt.Errorf("%s: line %v at (%d,%d) but LI says %v", st.name, sl.line, set, way, li)
				}
			})
			if failure != nil {
				return nil, failure
			}
		}
	}

	llcs := s.slices
	if !s.cfg.NearSide {
		llcs = []*dataStore{s.far}
	}
	for sliceID, st := range llcs {
		var failure error
		st.forEach(func(set, way int, sl *slot) {
			if failure != nil {
				return
			}
			r := sl.line.Region()
			idx := sl.line.Index()
			loc := InLLC(way)
			if s.cfg.NearSide {
				loc = InSlice(sliceID, way)
			}
			d := s.md3Probe(r)
			if d == nil {
				if sl.master && !sl.dirty {
					// Orphaned clean master: benign duplicate, matches
					// memory, reclaimed by replacement.
					orphans[sl] = true
					return
				}
				failure = fmt.Errorf("%s: line %v (master=%v dirty=%v) with no MD3 entry", st.name, sl.line, sl.master, sl.dirty)
				return
			}
			if !sl.master {
				// Replica: owner is the slice node; must be reachable.
				owner := s.nodes[sliceID]
				ent := owner.entry(r)
				if ent == nil {
					failure = fmt.Errorf("%s: replica %v with no owner entry", st.name, sl.line)
					return
				}
				if ent.li[idx] == loc {
					return
				}
				if ent.li[idx].Local() {
					_, _, lsl := owner.localSlot(ent, idx)
					if !lsl.master && lsl.rp == loc {
						return
					}
				}
				failure = fmt.Errorf("%s: replica %v unreachable from owner %d (LI %v)", st.name, sl.line, sliceID, ent.li[idx])
				return
			}
			// Master: reachable from MD3 LI or from some PB node.
			if d.li[idx] == loc {
				return
			}
			for _, mid := range d.pbNodes() {
				m := s.nodes[mid]
				ent := m.entry(r)
				if ent == nil {
					continue
				}
				if ent.li[idx] == loc {
					return
				}
				if ent.li[idx].Local() {
					_, _, lsl := m.localSlot(ent, idx)
					if lsl.rp == loc {
						return
					}
					// Two-level chain: L1/L2 replica -> own-slice
					// replica -> this master.
					if rsl := s.ownSliceReplica(mid, ent, idx, lsl.rp); rsl != nil && rsl.rp == loc {
						return
					}
				}
				if rsl := s.ownSliceReplica(mid, ent, idx, ent.li[idx]); rsl != nil && rsl.rp == loc {
					return
				}
			}
			if !sl.dirty {
				// Clean orphan master: benign (see above).
				orphans[sl] = true
				return
			}
			failure = fmt.Errorf("%s: orphan dirty master %v at (%d,%d)", st.name, sl.line, set, way)
		})
		if failure != nil {
			return nil, failure
		}
	}
	return orphans, nil
}

// checkLineGlobals scans every copy of every line for the single-writer
// properties. Tolerated orphans are unreachable and therefore do not
// count as copies.
func (s *System) checkLineGlobals(orphans map[*slot]bool) error {
	type copyInfo struct {
		where  string
		dirty  bool
		master bool
		excl   bool
	}
	lines := make(map[mem.LineAddr][]copyInfo)
	collect := func(name string, st *dataStore) {
		st.forEach(func(set, way int, sl *slot) {
			if orphans[sl] {
				return
			}
			lines[sl.line] = append(lines[sl.line], copyInfo{name, sl.dirty, sl.master, sl.excl})
		})
	}
	for _, n := range s.nodes {
		collect(n.l1i.name, n.l1i)
		collect(n.l1d.name, n.l1d)
		if n.l2 != nil {
			collect(n.l2.name, n.l2)
		}
	}
	if s.cfg.NearSide {
		for _, st := range s.slices {
			collect(st.name, st)
		}
	} else {
		collect(s.far.name, s.far)
	}
	for line, copies := range lines {
		dirty := 0
		for _, c := range copies {
			if c.dirty {
				dirty++
				if !c.master {
					return fmt.Errorf("line %v: dirty non-master in %s", line, c.where)
				}
			}
			if c.excl && len(copies) > 1 {
				return fmt.Errorf("line %v: excl copy in %s but %d copies exist", line, c.where, len(copies))
			}
		}
		if dirty > 1 {
			return fmt.Errorf("line %v: %d dirty copies", line, dirty)
		}
	}
	return nil
}
