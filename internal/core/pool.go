package core

import "d2m/internal/cache"

// Array pools behind NewSystem/Release: a cold simulation builds and
// discards a whole hierarchy, and these arrays (data-store slots,
// metadata entry pointers, recency stamps) are nearly all of its
// allocated bytes. Recycling them keeps the service's cold-job GC load
// flat. Reuse is exact: pooled arrays come back zeroed, identical to
// fresh make()s.
var (
	slotArrays    cache.ArrayPool[slot]
	stampArrays   cache.ArrayPool[uint64]
	nodeRegArrays cache.ArrayPool[*nodeRegion]
	dirRegArrays  cache.ArrayPool[*dirRegion]
)

// PoolBalance returns outstanding pooled arrays (Gets minus Puts)
// across the package's construction pools. A process in which every
// System was Released reads zero; the leak tests assert it stays put
// across cancelled and failed runs.
func PoolBalance() int64 {
	return slotArrays.Balance() + stampArrays.Balance() +
		nodeRegArrays.Balance() + dirRegArrays.Balance()
}

// Release returns the system's large backing arrays (every data store,
// metadata table and entry array) to internal pools for reuse by a
// later NewSystem. The system must not be used afterwards; callers that
// own the system's whole lifecycle (run-and-extract paths) call this to
// take system construction off the cold-path allocation bill.
func (s *System) Release() {
	for _, n := range s.nodes {
		cache.PutTable(n.md1i)
		cache.PutTable(n.md1d)
		cache.PutTable(n.md2)
		nodeRegArrays.Put(n.md1iEnt)
		nodeRegArrays.Put(n.md1dEnt)
		nodeRegArrays.Put(n.md2Ent)
		n.l1i.release()
		n.l1d.release()
		if n.l2 != nil {
			n.l2.release()
		}
		n.md1i, n.md1d, n.md2 = nil, nil, nil
		n.md1iEnt, n.md1dEnt, n.md2Ent = nil, nil, nil
	}
	for _, sl := range s.slices {
		sl.release()
	}
	if s.far != nil {
		s.far.release()
		s.far = nil
	}
	cache.PutTable(s.md3)
	dirRegArrays.Put(s.md3Ent)
	s.nodes, s.slices, s.md3, s.md3Ent = nil, nil, nil, nil
}
