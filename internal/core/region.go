package core

import (
	"fmt"
	"math/bits"

	"d2m/internal/mem"
)

// regionKey mixes a region address for metadata-table set indexing.
// Program pools are typically placed at aligned bases (per-node windows,
// per-pool offsets) whose strides are multiples of any power-of-two set
// count, so raw low bits alias badly across nodes; metadata structures
// therefore use a hashed index, as real designs do.
func regionKey(r mem.RegionAddr) uint64 {
	x := uint64(r)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Class is the region classification derived from the MD3 Presence Bits
// (Table II). Private and untracked regions enable the dynamic-coherence
// optimizations of §IV-A.
type Class uint8

const (
	// Uncached: the region has no MD3 entry; no node and no LLC slot
	// holds any of its data.
	Uncached Class = iota
	// Untracked: an MD3 entry exists but no node has an MD2 entry
	// (#PB == 0). Data may live in the LLC; it can be evicted to memory
	// without any metadata coherence.
	Untracked
	// Private: exactly one node tracks the region (#PB == 1). That node
	// may read and write the region's data with no coherence at all.
	Private
	// Shared: more than one node tracks the region (#PB > 1).
	Shared
)

func (c Class) String() string {
	switch c {
	case Uncached:
		return "uncached"
	case Untracked:
		return "untracked"
	case Private:
		return "private"
	case Shared:
		return "shared"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// ClassifyPB returns the classification implied by a presence-bit mask,
// for a region that has an MD3 entry.
func ClassifyPB(pb uint16) Class {
	switch popcount16(pb) {
	case 0:
		return Untracked
	case 1:
		return Private
	default:
		return Shared
	}
}

func popcount16(v uint16) int {
	n := 0
	for v != 0 {
		v &= v - 1
		n++
	}
	return n
}

// activeStore says which metadata store currently holds a node region's
// active (authoritative) entry. Only one entry is active at a time across
// MD1-I, MD1-D and MD2 "to avoid having to update multiple LIs
// atomically" (§II-A); the MD2 Tracking Pointer of the paper is the
// hardware realization of this field.
type activeStore uint8

const (
	activeMD2 activeStore = iota
	activeMD1I
	activeMD1D
)

// nodeRegion is one node's metadata entry for a region: the paper's
// MD1/MD2 entry contents (virtual/physical tag are implicit in the map
// key; we store the LIs, the Private bit, and the dynamic-indexing
// scramble). The struct is shared between the node's MD1 and MD2 tables,
// which models the Tracking Pointer: evicting the MD1 entry "copies the
// LI information to MD2" by simply flipping active.
type nodeRegion struct {
	region   mem.RegionAddr
	li       [mem.LinesPerRegion]Location
	private  bool
	scramble uint64
	active   activeStore
	// instrStream records which L1 array (I or D) the region's
	// L1-resident lines live in; a region's lines occupy one stream's
	// array at a time (footnote 2: separate MD1-I/L1-I structures).
	instrStream bool
	// touches and installs drive the bypass predictor: a region whose
	// lines are installed but rarely re-touched is streaming. Another
	// example of "attaching properties to each region" (§IV-D).
	touches  uint32
	installs uint32
}

// bypassMinInstalls and bypassReuseFactor parameterize the streaming
// predictor: a region is streaming once at least bypassMinInstalls lines
// were installed and the average touches per installed line stayed under
// bypassReuseFactor.
const (
	bypassMinInstalls  = 8
	bypassReuseFactor  = 2
	bypassCounterLimit = 1 << 20 // saturation, avoids overflow
)

// streaming reports whether the region's behaviour predicts no reuse.
func (nr *nodeRegion) streaming() bool {
	return nr.installs >= bypassMinInstalls &&
		nr.touches < nr.installs*bypassReuseFactor
}

func (nr *nodeRegion) noteTouch() {
	if nr.touches < bypassCounterLimit {
		nr.touches++
	}
}

func (nr *nodeRegion) noteInstall() {
	if nr.installs < bypassCounterLimit {
		nr.installs++
	}
}

func newNodeRegion(r mem.RegionAddr, private bool, scramble uint64) *nodeRegion {
	nr := &nodeRegion{region: r, private: private, scramble: scramble, active: activeMD2}
	for i := range nr.li {
		nr.li[i] = Mem()
	}
	return nr
}

// dirRegion is the MD3 entry for a region: Presence Bits over the nodes,
// the master Location Information for each line (valid only while the
// region is not private), and the region's dynamic-indexing scramble,
// assigned when the entry is created (§IV-D).
type dirRegion struct {
	region   mem.RegionAddr
	pb       uint16
	li       [mem.LinesPerRegion]Location
	scramble uint64
}

func newDirRegion(r mem.RegionAddr, scramble uint64) *dirRegion {
	dr := &dirRegion{region: r, scramble: scramble}
	for i := range dr.li {
		dr.li[i] = Mem()
	}
	return dr
}

// class returns the region's classification.
func (d *dirRegion) class() Class { return ClassifyPB(d.pb) }

// setPB marks node present.
func (d *dirRegion) setPB(node int) { d.pb |= 1 << uint(node) }

// clearPB marks node absent.
func (d *dirRegion) clearPB(node int) { d.pb &^= 1 << uint(node) }

// hasPB reports whether node is present.
func (d *dirRegion) hasPB(node int) bool { return d.pb&(1<<uint(node)) != 0 }

// pbNodes returns the indices of the set presence bits. It allocates;
// protocol hot paths iterate a pbSnapshot instead.
func (d *dirRegion) pbNodes() []int {
	var out []int
	for n := 0; n < 16; n++ {
		if d.hasPB(n) {
			out = append(out, n)
		}
	}
	return out
}

// pbSnapshot captures the presence bits for allocation-free iteration:
//
//	for pb := d.pbSnapshot(); pb != 0; pb = pb.drop() {
//		mid := pb.node()
//	}
//
// Like pbNodes, the snapshot is taken once — transactions that clear
// presence bits mid-loop (eviction cascades) still see the membership
// as of the snapshot, in ascending node order.
type pbSnapshot uint16

func (d *dirRegion) pbSnapshot() pbSnapshot { return pbSnapshot(d.pb) }

// node returns the lowest node id in the snapshot.
func (p pbSnapshot) node() int { return bits.TrailingZeros16(uint16(p)) }

// drop removes the lowest node id from the snapshot.
func (p pbSnapshot) drop() pbSnapshot { return p & (p - 1) }

// solePBNode returns the only node with a set presence bit; it panics if
// the region is not private.
func (d *dirRegion) solePBNode() int {
	if popcount16(d.pb) != 1 {
		panic(fmt.Sprintf("core: solePBNode on region with %d PB nodes", popcount16(d.pb)))
	}
	return bits.TrailingZeros16(d.pb)
}
