package core

import (
	"testing"

	"d2m/internal/energy"
	"d2m/internal/mem"
)

// Targeted tests for the appendix's coherence cases and the paper's
// optimization mechanisms, complementing the random/property suite in
// random_test.go with precise single-flow checks.

// fillMD2 makes node `n` touch enough distinct regions to evict earlier
// MD2 entries by capacity (the spill path).
func fillMD2(s *System, n int, base, count int) {
	for i := 0; i < count; i++ {
		s.Access(mem.Access{Node: n, Addr: addrOf(base+i, 0), Kind: mem.Load})
	}
}

func TestCaseD1UntrackedToPrivate(t *testing.T) {
	cfg := testConfig(false)
	cfg.MD2Sets, cfg.MD2Ways = 1, 2 // single-set MD2: spills are certain
	s := NewSystem(cfg)
	a := addrOf(1, 2)
	// Node 0 loads the line, then floods its MD2 so region 1 spills:
	// its line moves per its RP and the region becomes untracked.
	s.Access(mem.Access{Node: 0, Addr: a, Kind: mem.Load})
	fillMD2(s, 0, 1000, cfg.MD2Sets*cfg.MD2Ways+4)
	if s.Stats().MD2Spills == 0 {
		t.Fatal("MD2 flood caused no spills")
	}
	if s.nodes[0].entry(mem.RegionAddr(1)) != nil {
		t.Fatal("region 1 survived a single-set flood")
	}
	d := s.md3Probe(mem.RegionAddr(1))
	if d == nil || d.class() != Untracked {
		t.Fatalf("region 1 class after spill: %v", d.class())
	}
	mustCheck(t, s)

	// Re-access: untracked -> private (case D1), and the line must be
	// found where the spill put it (LLC), not in DRAM.
	d1 := s.Stats().EvD1
	dram := s.Stats().DRAMReads
	s.Access(mem.Access{Node: 0, Addr: a, Kind: mem.Load})
	if s.Stats().EvD1 != d1+1 {
		t.Errorf("EvD1 = %d, want %d", s.Stats().EvD1, d1+1)
	}
	if s.Stats().DRAMReads != dram {
		t.Error("re-access went to DRAM; untracked metadata lost the LLC location")
	}
	mustCheck(t, s)
}

func TestCaseFSharedDirtyEviction(t *testing.T) {
	cfg := testConfig(false)
	s := NewSystem(cfg)
	a := addrOf(2, 3)
	// Make the region shared, then node 1 writes (dirty master in L1).
	s.Access(mem.Access{Node: 0, Addr: a, Kind: mem.Load})
	s.Access(mem.Access{Node: 1, Addr: a, Kind: mem.Load})
	s.Access(mem.Access{Node: 1, Addr: a, Kind: mem.Store})
	mustCheck(t, s)

	// Evict node 1's dirty master by filling its L1 set: case F must
	// repoint node 0's LI at the new master location.
	evf := s.Stats().EvF
	set := s.nodes[1].l1d.setFor(a.Line(), 0)
	for i := 1; i <= cfg.L1Ways; i++ {
		conflict := addrOf(2+16*i, 3) // same L1 set (region stride keeps set)
		if s.nodes[1].l1d.setFor(conflict.Line(), 0) != set {
			t.Fatalf("conflict address maps to a different set")
		}
		s.Access(mem.Access{Node: 1, Addr: conflict, Kind: mem.Load})
	}
	if s.Stats().EvF != evf+1 {
		t.Fatalf("EvF = %d, want %d (dirty shared master eviction)", s.Stats().EvF, evf+1)
	}
	ent0 := s.nodes[0].entry(mem.RegionAddr(2))
	if ent0 == nil || ent0.li[3].Kind != LocLLC {
		t.Errorf("node 0 LI after case F = %v, want an LLC location", ent0.li[3])
	}
	mustCheck(t, s)

	// Node 0 reads: direct LLC hit with the written version (oracle).
	dram := s.Stats().DRAMReads
	s.Access(mem.Access{Node: 0, Addr: a, Kind: mem.Load})
	if s.Stats().DRAMReads != dram {
		t.Error("read of case-F-moved master went to DRAM")
	}
	mustCheck(t, s)
}

func TestRedirectAfterSilentCleanEviction(t *testing.T) {
	cfg := testConfig(false)
	s := NewSystem(cfg)
	a := addrOf(3, 1)
	// Node 0 takes a clean master from memory (shared region so node 1
	// ends up pointing at node 0).
	s.Access(mem.Access{Node: 0, Addr: a, Kind: mem.Load})
	s.Access(mem.Access{Node: 1, Addr: a, Kind: mem.Load})
	ent1 := s.nodes[1].entry(mem.RegionAddr(3))
	// Force node 1's replica out (silent, LI := RP), leaving its LI
	// pointing at node 0.
	for i := 1; i <= cfg.L1Ways; i++ {
		s.Access(mem.Access{Node: 1, Addr: addrOf(3+16*i, 1), Kind: mem.Load})
	}
	if ent1.li[1].Kind != LocNode {
		t.Skipf("node 1 LI is %v, not a node pointer; replica RP differed", ent1.li[1])
	}
	// Now node 0 silently moves its clean master to the LLC.
	for i := 1; i <= cfg.L1Ways; i++ {
		s.Access(mem.Access{Node: 0, Addr: addrOf(40+16*i, 1), Kind: mem.Load})
	}
	// Node 1 re-reads through the stale pointer: node 0 redirects.
	redirects := s.Stats().Redirect
	s.Access(mem.Access{Node: 1, Addr: a, Kind: mem.Load})
	if s.Stats().Redirect == redirects {
		t.Skip("no redirect issued (master still local to node 0)")
	}
	mustCheck(t, s)
}

func TestMD3EvictionFlushesCoherently(t *testing.T) {
	cfg := testConfig(false)
	cfg.MD3Sets, cfg.MD3Ways = 2, 2 // 4 regions force constant flushes
	s := NewSystem(cfg)
	rng := mem.NewRNG(31)
	for i := 0; i < 8000; i++ {
		kind := mem.Load
		if rng.Bool(0.3) {
			kind = mem.Store
		}
		s.Access(mem.Access{Node: rng.Intn(cfg.Nodes), Addr: addrOf(rng.Intn(32), rng.Intn(16)), Kind: kind})
		if i%499 == 0 {
			mustCheck(t, s)
		}
	}
	if s.Stats().MD3Evicts == 0 {
		t.Error("tiny MD3 never evicted")
	}
	mustCheck(t, s)
}

func TestPlacementPressurePolicy(t *testing.T) {
	cfg := testConfig(true)
	s := NewSystem(cfg)
	// Equal (zero) pressure: allocation is local.
	for n := 0; n < cfg.Nodes; n++ {
		if got := s.chooseSlice(n); got != n {
			t.Errorf("chooseSlice(%d) = %d with equal pressure", n, got)
		}
	}
	// Make node 0's slice the most pressured: allocations move away
	// 20% of the time, toward the least-pressured slice.
	s.pressurePrev[0] = 1000
	s.pressurePrev[1] = 10
	s.pressurePrev[2] = 700
	s.pressurePrev[3] = 700
	local, remote := 0, 0
	for i := 0; i < 5000; i++ {
		switch got := s.chooseSlice(0); got {
		case 0:
			local++
		case 1:
			remote++ // must pick the least-pressured remote slice
		default:
			t.Fatalf("chooseSlice(0) = %d, want 0 or 1", got)
		}
	}
	if frac := float64(local) / 5000; frac < 0.75 || frac > 0.85 {
		t.Errorf("local allocation fraction = %.2f, want ~0.8 (the paper's 80%%)", frac)
	}
	// A low-pressure node always allocates locally.
	if got := s.chooseSlice(1); got != 1 {
		t.Errorf("chooseSlice(1) = %d for the least-pressured node", got)
	}
}

func TestPressureEpochRotation(t *testing.T) {
	cfg := testConfig(true)
	s := NewSystem(cfg)
	s.notePressure(2)
	s.notePressure(2)
	if s.pressureCur[2] != 2 {
		t.Fatalf("pressureCur = %d", s.pressureCur[2])
	}
	for i := 0; i < pressureEpoch; i++ {
		s.tickEpoch()
	}
	if s.pressurePrev[2] != 2 || s.pressureCur[2] != 0 {
		t.Errorf("after epoch: prev=%d cur=%d", s.pressurePrev[2], s.pressureCur[2])
	}
}

func TestFarSidePolicyIsInert(t *testing.T) {
	s := NewSystem(testConfig(false))
	if s.chooseSlice(3) != 0 {
		t.Error("far-side chooseSlice must return the monolith (0)")
	}
	s.tickEpoch()     // must not panic with nil pressure arrays
	s.notePressure(0) // likewise
}

// TestGetMDTransitionMovesKnowledge covers case D2's metadata export: the
// former owner's local locations must appear as its NodeID in MD3.
func TestGetMDTransitionMovesKnowledge(t *testing.T) {
	s := NewSystem(testConfig(false))
	// Node 2 owns several lines of region 5 privately.
	for i := 0; i < 4; i++ {
		s.Access(mem.Access{Node: 2, Addr: addrOf(5, i), Kind: mem.Store})
	}
	// Node 3's first touch triggers D2.
	s.Access(mem.Access{Node: 3, Addr: addrOf(5, 0), Kind: mem.Load})
	if s.Stats().EvD2 != 1 {
		t.Fatalf("EvD2 = %d", s.Stats().EvD2)
	}
	d := s.md3Probe(mem.RegionAddr(5))
	if d == nil || d.class() != Shared {
		t.Fatal("region not shared after D2")
	}
	// Lines 1..3 are still only in node 2: MD3 must say so.
	for i := 1; i < 4; i++ {
		if d.li[i] != InNode(2) {
			t.Errorf("MD3 LI[%d] = %v, want node2", i, d.li[i])
		}
	}
	// And node 3 can read them via the NodeID pointer, served by node 2
	// (no DRAM).
	dram := s.Stats().DRAMReads
	s.Access(mem.Access{Node: 3, Addr: addrOf(5, 2), Kind: mem.Load})
	if s.Stats().DRAMReads != dram {
		t.Error("read of an exported line went to DRAM")
	}
	mustCheck(t, s)
}

// TestExclDowngradeOnD2 pins the E->F downgrade: after a region turns
// shared, the former owner's masters must not be written silently.
func TestExclDowngradeOnD2(t *testing.T) {
	s := NewSystem(testConfig(false))
	a := addrOf(6, 0)
	s.Access(mem.Access{Node: 0, Addr: a, Kind: mem.Store})           // private E/M
	s.Access(mem.Access{Node: 1, Addr: addrOf(6, 5), Kind: mem.Load}) // D2
	// Node 0 writes the line again: the region is shared now, so this
	// must be a case C upgrade, not a silent write.
	evc := s.Stats().EvC
	s.Access(mem.Access{Node: 0, Addr: a, Kind: mem.Store})
	if s.Stats().EvC != evc+1 {
		t.Errorf("write after D2 was silent (EvC = %d, want %d)", s.Stats().EvC, evc+1)
	}
	mustCheck(t, s)
}

// TestPrefetchNextLine checks the metadata-guided prefetcher: sequential
// region walks must trigger useful prefetches, and everything stays
// coherent under the oracle.
func TestPrefetchNextLine(t *testing.T) {
	cfg := testConfig(false)
	cfg.Prefetch = true
	s := NewSystem(cfg)
	// Warm region 7 into the LLC: load all lines, evict by flooding L1.
	for i := 0; i < mem.LinesPerRegion; i++ {
		s.Access(mem.Access{Node: 0, Addr: addrOf(7, i), Kind: mem.Load})
	}
	for r := 100; r < 108; r++ {
		for i := 0; i < mem.LinesPerRegion; i++ {
			s.Access(mem.Access{Node: 0, Addr: addrOf(r, i), Kind: mem.Load})
		}
	}
	issued := s.Stats().PrefetchIssued
	if issued == 0 {
		t.Fatal("no prefetches issued on sequential walks")
	}
	// Sequential re-walk of region 7: each miss prefetches the next
	// line, which the following access hits.
	useful := s.Stats().PrefetchUseful
	for i := 0; i < mem.LinesPerRegion; i++ {
		s.Access(mem.Access{Node: 0, Addr: addrOf(7, i), Kind: mem.Load})
	}
	if s.Stats().PrefetchUseful <= useful {
		t.Error("sequential walk produced no useful prefetches")
	}
	mustCheck(t, s)
}

// TestPrefetchCoherentRandom runs the prefetcher under the full random
// mix with all optimizations, oracle on.
func TestPrefetchCoherentRandom(t *testing.T) {
	cfg := testConfig(true)
	cfg.Prefetch = true
	cfg.Replication = true
	cfg.MD2Pruning = true
	cfg.CacheBypass = true
	s := NewSystem(cfg)
	rng := mem.NewRNG(23)
	for i := 0; i < 25000; i++ {
		node := rng.Intn(cfg.Nodes)
		kind := mem.Load
		switch {
		case rng.Bool(0.3):
			kind = mem.IFetch
		case rng.Bool(0.3):
			kind = mem.Store
		}
		region := rng.Intn(48)
		if kind == mem.IFetch {
			region += 1 << 20
		}
		s.Access(mem.Access{Node: node, Addr: mem.RegionAddr(region).Line(rng.Intn(16)).Addr(), Kind: kind})
		if i%997 == 0 {
			if err := s.CheckInvariants(); err != nil {
				t.Fatalf("after %d: %v", i, err)
			}
		}
	}
	mustCheck(t, s)
}

// TestTraditionalL1Hybrid exercises the §III-A interoperability variant:
// a conventional tagged-L1 front-end over the D2M backend. Correctness
// must be identical (oracle + invariants); the energy profile shifts
// from MD1 lookups to TLB + tag searches.
func TestTraditionalL1Hybrid(t *testing.T) {
	cfg := testConfig(true)
	cfg.TraditionalL1 = true
	cfg.Replication = true
	cfg.MD2Pruning = true
	s := NewSystem(cfg)
	rng := mem.NewRNG(29)
	for i := 0; i < 25000; i++ {
		node := rng.Intn(cfg.Nodes)
		kind := mem.Load
		switch {
		case rng.Bool(0.3):
			kind = mem.IFetch
		case rng.Bool(0.3):
			kind = mem.Store
		}
		region := rng.Intn(48)
		if kind == mem.IFetch {
			region += 1 << 20
		}
		s.Access(mem.Access{Node: node, Addr: mem.RegionAddr(region).Line(rng.Intn(16)).Addr(), Kind: kind})
		if i%997 == 0 {
			if err := s.CheckInvariants(); err != nil {
				t.Fatalf("after %d: %v", i, err)
			}
		}
	}
	st := s.Stats()
	if st.MD1Hits != 0 {
		t.Errorf("hybrid recorded %d MD1 hits; the hybrid has no MD1", st.MD1Hits)
	}
	if s.Meter().Count(energy.OpTLB) == 0 || s.Meter().Count(energy.OpL1Tag) == 0 {
		t.Error("hybrid front-end charged no TLB/tag searches")
	}
	if s.Meter().Count(energy.OpMD1) != 0 {
		t.Error("hybrid charged MD1 lookups")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestHybridKeepsDirectAccess verifies the paper's claim that the hybrid
// retains "most of the reported D2M advantages": misses still resolve
// directly (no MD3) at the same rate as the full design.
func TestHybridKeepsDirectAccess(t *testing.T) {
	run := func(traditional bool) *Stats {
		cfg := testConfig(true)
		cfg.TraditionalL1 = traditional
		s := NewSystem(cfg)
		rng := mem.NewRNG(41)
		for i := 0; i < 20000; i++ {
			kind := mem.Load
			if rng.Bool(0.3) {
				kind = mem.Store
			}
			s.Access(mem.Access{Node: rng.Intn(cfg.Nodes), Addr: addrOf(rng.Intn(40), rng.Intn(16)), Kind: kind})
		}
		return s.Stats()
	}
	full := run(false)
	hybrid := run(true)
	fullDirect := full.DirectMissFraction()
	hybridDirect := hybrid.DirectMissFraction()
	if hybridDirect < fullDirect-0.05 {
		t.Errorf("hybrid direct-miss fraction %.2f fell well below full D2M's %.2f", hybridDirect, fullDirect)
	}
}
