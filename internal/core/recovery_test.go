package core

import (
	"testing"

	"d2m/internal/mem"
)

// These tests exercise the protocol's stale-pointer recovery machinery
// (redirects, NACKs, raced redirect targets) directly: the situations
// arise organically only from rare interleavings, so the tests invoke
// the recovery entry points with crafted-but-legal arguments and then
// run the full invariant audit on the outcome.

// sharedRegion builds a system where `region` is Shared between nodes 0
// and 1 (node 0 owns some lines, node 1 has joined), and returns node
// 1's region entry.
func sharedRegion(t *testing.T, s *System, region int) *nodeRegion {
	t.Helper()
	s.Access(mem.Access{Node: 0, Addr: addrOf(region, 2), Kind: mem.Load})
	s.Access(mem.Access{Node: 1, Addr: addrOf(region, 5), Kind: mem.Load})
	ent := s.nodes[1].entry(mem.RegionAddr(region))
	if ent == nil || ent.private {
		t.Fatalf("setup: region %d not shared at node 1", region)
	}
	mustCheck(t, s)
	return ent
}

// A redirect can point at an LLC slot that was reclaimed before the
// request arrived. The protocol must fall back to memory — legal
// because a line with no dirty master is always valid there.
func TestServeConcreteRacedSlotFallsBackToMemory(t *testing.T) {
	s := NewSystem(testConfig(false))
	ent := sharedRegion(t, s, 30)

	line := mem.RegionAddr(30).Line(9)
	before := s.Stats().DRAMReads
	s.serveConcrete(s.nodes[1], ent, 9, line, false, InLLC(1), &txn{}, 0)
	if s.Stats().DRAMReads != before+1 {
		t.Fatalf("raced LLC redirect did not fall back to memory (DRAM reads %d -> %d)",
			before, s.Stats().DRAMReads)
	}
	if ent.li[9].Kind != LocL1 {
		t.Fatalf("line not installed locally after fallback: LI = %v", ent.li[9])
	}
	mustCheck(t, s)
}

// A redirect can also land on a *replica* slot (another node's slice
// copy). Pointing metadata at it would dangle when its owner drops it,
// so the protocol must chase the replica's RP to the real master.
func TestServeConcreteChasesReplicaRP(t *testing.T) {
	cfg := testConfig(true)
	cfg.Replication = true
	s := NewSystem(cfg)

	// Node 0 masters an instruction line; node 1 fetching it creates a
	// replica in node 1's slice whose RP names node 0.
	line := mem.RegionAddr(31).Line(1)
	s.Access(mem.Access{Node: 0, Addr: line.Addr(), Kind: mem.IFetch})
	s.Access(mem.Access{Node: 1, Addr: line.Addr(), Kind: mem.IFetch})
	var loc Location
	s.slices[1].forEach(func(set, way int, sl *slot) {
		if sl.line == line && !sl.master {
			loc = InSlice(1, way)
		}
	})
	if loc.Kind != LocLLC {
		t.Skip("replication did not create a slice replica in this geometry")
	}
	if sl := s.slices[1].at(s.slices[1].setFor(line, s.md3Probe(mem.RegionAddr(31)).scramble), loc.Way); sl.rp.Kind != LocNode {
		t.Fatalf("setup: replica RP is %v, want a node referral", sl.rp)
	}

	// Node 2 joins the region, then a (stale) redirect hands it the
	// replica's location.
	s.Access(mem.Access{Node: 2, Addr: addrOf(31, 7), Kind: mem.Load})
	ent2 := s.nodes[2].entry(mem.RegionAddr(31))
	if ent2 == nil {
		t.Fatal("setup: node 2 has no entry")
	}
	mustCheck(t, s)

	s.serveConcrete(s.nodes[2], ent2, 1, line, false, loc, &txn{}, 0)
	if ent2.li[1].Kind != LocL1 {
		t.Fatalf("node 2 not served through the replica chase: LI = %v", ent2.li[1])
	}
	mustCheck(t, s)
}

// A referral that names the requester itself is stale by construction;
// the protocol resolves it at MD3 (here: no global knowledge either, so
// memory serves).
func TestReadFromNodeSelfPointerResolvesAtMD3(t *testing.T) {
	s := NewSystem(testConfig(false))
	ent := sharedRegion(t, s, 32)

	line := mem.RegionAddr(32).Line(6)
	lookups := s.Stats().MD3Lookups
	indirect := s.readFromNode(s.nodes[1], ent, 6, line, false, 1, &txn{}, 0)
	if !indirect {
		t.Error("self-pointer resolution not counted as indirect")
	}
	if s.Stats().MD3Lookups != lookups+1 {
		t.Error("self-pointer did not consult MD3")
	}
	if ent.li[6].Kind != LocL1 {
		t.Fatalf("line not installed after MD3 resolution: LI = %v", ent.li[6])
	}
	mustCheck(t, s)
}

// A referral to a node that has since dropped its tracking entry NACKs;
// the requester re-resolves at MD3.
func TestReadFromNodeNacksOnMissingEntry(t *testing.T) {
	s := NewSystem(testConfig(false))
	ent := sharedRegion(t, s, 33)

	// Node 3 never joined region 33: a referral there must NACK.
	line := mem.RegionAddr(33).Line(8)
	nacks := s.Stats().NackMD3
	s.readFromNode(s.nodes[1], ent, 8, line, false, 3, &txn{}, 0)
	if s.Stats().NackMD3 != nacks+1 {
		t.Fatalf("NackMD3 = %d, want %d", s.Stats().NackMD3, nacks+1)
	}
	if ent.li[8].Kind != LocL1 {
		t.Fatalf("line not installed after NACK recovery: LI = %v", ent.li[8])
	}
	mustCheck(t, s)
}

// md3Resolve treats a missing region, an invalid LI, and a stale
// self-pointer identically: memory has the data.
func TestMD3ResolveDegradedCases(t *testing.T) {
	s := NewSystem(testConfig(false))
	ent := sharedRegion(t, s, 34)
	_ = ent

	// Missing region: never accessed.
	if loc, ind := s.md3Resolve(s.nodes[1], mem.RegionAddr(999), 0, &txn{}); loc.Kind != LocMem || !ind {
		t.Errorf("missing region resolved to %v (indirect=%v), want MEM", loc, ind)
	}
	// Stale self-pointer in MD3.
	d := s.md3Probe(mem.RegionAddr(34))
	if d == nil {
		t.Fatal("setup: no MD3 entry")
	}
	saved := d.li[11]
	d.li[11] = InNode(1)
	if loc, _ := s.md3Resolve(s.nodes[1], mem.RegionAddr(34), 11, &txn{}); loc.Kind != LocMem {
		t.Errorf("self-pointer resolved to %v, want MEM", loc)
	}
	// An unresolved-way LLC pointer is also no knowledge.
	d.li[11] = Location{Kind: LocLLC, Way: WayUnresolved}
	if loc, _ := s.md3Resolve(s.nodes[1], mem.RegionAddr(34), 11, &txn{}); loc.Kind != LocMem {
		t.Errorf("unresolved LLC pointer resolved to %v, want MEM", loc)
	}
	d.li[11] = saved
	mustCheck(t, s)
}

// Stale clean-master referrals can form a CYCLE: node 1's LI names a
// replica in its own slice whose RP names node 1 again. Found by
// TestQuickProtocolInvariants as an unbounded recursion (stack
// overflow); the chase budget must break the cycle at memory, which is
// guaranteed current because any write would have reclaimed the replica
// and repointed every LI at the writer.
func TestReferralCycleBreaksAtMemory(t *testing.T) {
	cfg := testConfig(true)
	cfg.Replication = true
	s := NewSystem(cfg)

	// Node 0 masters an instruction line; node 1's fetch creates a
	// replica in slice 1 and an L1 copy pointing at it.
	line := mem.RegionAddr(36).Line(1)
	s.Access(mem.Access{Node: 0, Addr: line.Addr(), Kind: mem.IFetch})
	s.Access(mem.Access{Node: 1, Addr: line.Addr(), Kind: mem.IFetch})
	var loc Location
	var replica *slot
	s.slices[1].forEach(func(set, way int, sl *slot) {
		if sl.line == line && !sl.master {
			loc, replica = InSlice(1, way), sl
		}
	})
	if replica == nil {
		t.Skip("replication did not create a slice replica in this geometry")
	}

	// Age node 1's L1 copy out silently (the replica eviction path:
	// LI := RP) and let the replica's RP drift to name node 1 itself —
	// the self-referential stale state observed in the wild.
	ent1 := s.nodes[1].entry(mem.RegionAddr(36))
	oldLI := ent1.li[1] // the L1 location, carrying the way
	st, set, sl := s.nodes[1].localSlot(ent1, 1)
	rp := sl.rp
	st.drop(set, oldLI.Way)
	ent1.li[1] = rp
	if rp != loc {
		t.Fatalf("setup: L1 replica RP %v does not name the slice replica %v", rp, loc)
	}
	replica.rp = InNode(1)

	// A third node whose referral lands in the cycle must still be
	// served, with the break accounted.
	s.Access(mem.Access{Node: 2, Addr: addrOf(36, 7), Kind: mem.Load})
	ent2 := s.nodes[2].entry(mem.RegionAddr(36))
	if ent2 == nil {
		t.Fatal("setup: node 2 has no entry")
	}
	breaks := s.Stats().ChaseBreaks
	dram := s.Stats().DRAMReads
	s.readFromNode(s.nodes[2], ent2, 1, line, false, 1, &txn{}, 0)
	if s.Stats().ChaseBreaks != breaks+1 {
		t.Fatalf("ChaseBreaks = %d, want %d (cycle must be detected)", s.Stats().ChaseBreaks, breaks+1)
	}
	if s.Stats().DRAMReads != dram+1 {
		t.Fatal("cycle break did not serve from memory")
	}
	if ent2.li[1].Kind != LocL1 {
		t.Fatalf("node 2 not served: LI = %v", ent2.li[1])
	}
}

func TestServeConcretePanicsOnLocalLocation(t *testing.T) {
	s := NewSystem(testConfig(false))
	ent := sharedRegion(t, s, 35)
	defer func() {
		if recover() == nil {
			t.Error("serveConcrete accepted a local location")
		}
	}()
	s.serveConcrete(s.nodes[1], ent, 0, mem.RegionAddr(35).Line(0), false, InL1(0), &txn{}, 0)
}
