package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"d2m/internal/mem"
)

// accessScript is a quick-generatable program: a bounded random access
// sequence plus the optimization flags of the machine it runs on.
// quick.Check explores the joint space of (protocol configuration ×
// access interleaving); for every sample the machine must preserve all
// invariants and the coherence oracle.
type accessScript struct {
	NearSide    bool
	Replication bool
	Scramble    bool
	Pruning     bool
	Bypass      bool
	Prefetch    bool
	Hybrid      bool
	Adaptive    bool
	LevelPred   bool
	Steps       []accessStep
}

// scriptConfig maps a script's flag set onto a machine configuration.
// Adaptive scripts widen the L1/MD1 to hold the way budget (the tiny
// default geometry is narrower than AdaptiveMaxWays); level-predicting
// scripts get a small predictor so aliasing is constant.
func scriptConfig(sc accessScript) Config {
	cfg := testConfig(sc.NearSide)
	cfg.Replication = sc.Replication
	cfg.DynamicIndexing = sc.Scramble
	cfg.MD2Pruning = sc.Pruning
	cfg.CacheBypass = sc.Bypass
	cfg.Prefetch = sc.Prefetch
	cfg.TraditionalL1 = sc.Hybrid
	cfg.AdaptiveWays = sc.Adaptive
	if sc.Adaptive {
		cfg.L1Ways = AdaptiveMaxWays
		cfg.MD1Ways = AdaptiveMaxWays
	}
	cfg.LevelPred = sc.LevelPred
	if sc.LevelPred {
		cfg.PredEntries = 64
	}
	return cfg
}

type accessStep struct {
	Node   uint8
	Region uint8
	Line   uint8
	Kind   uint8
}

// Generate implements quick.Generator: scripts are 200-800 steps over a
// deliberately tiny region pool so evictions and reclassifications are
// constant.
func (accessScript) Generate(r *rand.Rand, size int) reflect.Value {
	sc := accessScript{
		NearSide: r.Intn(2) == 0,
		Scramble: r.Intn(2) == 0,
		Pruning:  r.Intn(2) == 0,
		Bypass:   r.Intn(4) == 0,
		Prefetch: r.Intn(4) == 0,
		Hybrid:   r.Intn(4) == 0,
	}
	sc.Replication = sc.NearSide && r.Intn(2) == 0
	sc.Adaptive = r.Intn(4) == 0
	sc.LevelPred = r.Intn(4) == 0
	n := 200 + r.Intn(600)
	sc.Steps = make([]accessStep, n)
	for i := range sc.Steps {
		sc.Steps[i] = accessStep{
			Node:   uint8(r.Intn(4)),
			Region: uint8(r.Intn(12)),
			Line:   uint8(r.Intn(mem.LinesPerRegion)),
			Kind:   uint8(r.Intn(8)),
		}
	}
	return reflect.ValueOf(sc)
}

// TestQuickProtocolInvariants is the property-based statement of the
// protocol's correctness: for ALL optimization combinations and ALL
// access interleavings, every read observes the latest write (oracle)
// and the machine-wide invariants hold at the end.
func TestQuickProtocolInvariants(t *testing.T) {
	prop := func(sc accessScript) bool {
		cfg := scriptConfig(sc)
		s := NewSystem(cfg)
		for i, st := range sc.Steps {
			kind := mem.Load
			region := int(st.Region)
			switch {
			case st.Kind < 2:
				kind = mem.IFetch
				region += 1 << 16 // code regions are disjoint from data
			case st.Kind < 5:
				kind = mem.Store
			}
			// The oracle inside Access panics on a stale read; the
			// deferred recover in quick.Check would hide the message, so
			// let it propagate — a panic fails the test loudly.
			s.Access(mem.Access{
				Node: int(st.Node) % cfg.Nodes,
				Addr: mem.RegionAddr(region).Line(int(st.Line)).Addr(),
				Kind: kind,
			})
			// Adaptive scripts fire the epoch hook on a short period so
			// the repartitioning drains run many times per script.
			if sc.Adaptive && i%64 == 63 {
				s.EpochTick()
			}
		}
		return s.CheckInvariants() == nil
	}
	// Multiple fixed seeds keep the run reproducible while still
	// exploring a wide slice of the space on every test run.
	for _, seed := range []int64{1, 2, 3, 4} {
		cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(seed))}
		if err := quick.Check(prop, cfg); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
