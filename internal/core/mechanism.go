package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"d2m/internal/mem"
	"d2m/internal/noc"
)

// The mechanism registry: every hierarchy kind the simulator can run —
// the D2M variants here, the tagged baselines registered by
// internal/baseline, and any future mechanism — is one Mechanism entry.
// Construction, stepping, the epoch hook, warm-state snapshot/restore
// and pool release are a single MechInstance interface, so the layers
// above (the root run paths, warm snapshots, vector lanes, the service
// capabilities document and the cluster prober) never switch on a
// closed enum: they ask the registry. Registering a mechanism makes it
// immediately runnable, snapshot-able, lane-groupable, sweepable and
// advertised fleet-wide.

// MechOptions is the mechanism-neutral slice of the run options: what a
// constructor needs to build its system. It deliberately mirrors the
// root Options fields that shape machine state, so mechanisms built
// from the same MechOptions share a warm identity.
type MechOptions struct {
	// Nodes is the core count.
	Nodes int
	// Seed drives stochastic policy decisions.
	Seed uint64
	// MDScale multiplies the MD1/MD2/MD3 set counts (baselines ignore
	// it).
	MDScale int
	// Bypass and Prefetch toggle the D2M-side optimizations (baselines
	// ignore them).
	Bypass   bool
	Prefetch bool
	// Placement selects the NS-LLC victim-slice policy.
	Placement PlacementPolicy
	// Topology selects the interconnect model (nil = crossbar).
	Topology noc.Topology
}

// MechSnapshot is a mechanism's frozen warm state. Concrete types are
// the core and baseline Snapshot types; the interface exists so the
// warm-snapshot layer can hold any mechanism's state without knowing
// its package.
type MechSnapshot interface {
	// SizeBytes returns the snapshot's approximate in-memory footprint.
	SizeBytes() int64
}

// MechInstance is one constructed, runnable hierarchy. It satisfies the
// sim engine's Machine (and, via EpochLen/EpochTick, its optional
// EpochMachine) contract directly, so the engine drives mechanisms
// without per-kind adapters.
type MechInstance interface {
	// Access performs one access, returning its critical-path latency
	// and whether it hit in the L1.
	Access(a mem.Access) (latency uint64, l1Hit bool)
	// ResetMeasurement starts the measurement window: statistics reset,
	// hierarchy state preserved.
	ResetMeasurement()
	// EpochLen returns the mechanism's epoch interval in accesses
	// (<= 0: no epoch hook).
	EpochLen() int
	// EpochTick fires at each epoch boundary.
	EpochTick()
	// Release returns the instance's pooled arrays; the instance must
	// not be used afterwards.
	Release()
	// Snapshot captures the instance's warm state; Restore overwrites a
	// freshly constructed same-config instance with a snapshot taken
	// from its twin. Restore panics on a snapshot of another mechanism
	// or configuration.
	Snapshot() MechSnapshot
	Restore(MechSnapshot)
	// Underlying exposes the concrete system (*core.System or
	// *baseline.System) for result extraction.
	Underlying() any
}

// Mechanism is one registered hierarchy kind.
type Mechanism struct {
	// Name is the canonical presentation name ("D2M-NS-R"). Matching is
	// case-insensitive with dashes optional.
	Name string
	// Aliases are additional accepted spellings (canonicalized the same
	// way).
	Aliases []string
	// Order fixes the presentation position and doubles as the root
	// package's stable Kind integer: the wire format and stored results
	// identify kinds by name, but in-process code indexes by this.
	Order int
	// Baseline marks the tagged comparison systems; D2M marks the
	// split-hierarchy family (a mechanism is one or the other).
	Baseline bool
	D2M      bool
	// ReportNearHit marks mechanisms whose results report the
	// near-side LLC hit ratios (the Table IV "near hits" columns).
	ReportNearHit bool
	// New constructs a fresh instance.
	New func(MechOptions) MechInstance
}

var (
	mechMu     sync.RWMutex
	mechByKey  = map[string]*Mechanism{}
	mechByOrd  = map[int]*Mechanism{}
	mechSorted []*Mechanism
)

func canonMechName(s string) string {
	return strings.ToLower(strings.ReplaceAll(s, "-", ""))
}

// RegisterMechanism adds a mechanism to the registry. It panics on a
// duplicate name, alias or order — registration happens at init time
// and a collision is a programming error.
func RegisterMechanism(m Mechanism) {
	if m.Name == "" || m.New == nil {
		panic("core: RegisterMechanism with empty name or nil constructor")
	}
	mechMu.Lock()
	defer mechMu.Unlock()
	cp := m
	for _, key := range append([]string{cp.Name}, cp.Aliases...) {
		k := canonMechName(key)
		if _, dup := mechByKey[k]; dup {
			panic(fmt.Sprintf("core: duplicate mechanism name %q", key))
		}
		mechByKey[k] = &cp
	}
	if _, dup := mechByOrd[cp.Order]; dup {
		panic(fmt.Sprintf("core: duplicate mechanism order %d (%s)", cp.Order, cp.Name))
	}
	mechByOrd[cp.Order] = &cp
	mechSorted = append(mechSorted, &cp)
	sort.Slice(mechSorted, func(a, b int) bool { return mechSorted[a].Order < mechSorted[b].Order })
}

// Mechanisms returns every registered mechanism in presentation order.
// The returned slice is a copy; the entries are shared and must not be
// mutated.
func Mechanisms() []*Mechanism {
	mechMu.RLock()
	defer mechMu.RUnlock()
	return append([]*Mechanism(nil), mechSorted...)
}

// MechanismByName resolves a kind name (case-insensitive, dashes
// optional, aliases included).
func MechanismByName(name string) (*Mechanism, bool) {
	mechMu.RLock()
	defer mechMu.RUnlock()
	m, ok := mechByKey[canonMechName(name)]
	return m, ok
}

// MechanismByOrder resolves a mechanism by its stable order integer.
func MechanismByOrder(order int) (*Mechanism, bool) {
	mechMu.RLock()
	defer mechMu.RUnlock()
	m, ok := mechByOrd[order]
	return m, ok
}

// coreInstance adapts a *System to MechInstance.
type coreInstance struct{ s *System }

func (ci coreInstance) Access(a mem.Access) (uint64, bool) {
	r := ci.s.Access(a)
	return r.Latency, r.L1Hit
}
func (ci coreInstance) ResetMeasurement()       { ci.s.ResetMeasurement() }
func (ci coreInstance) EpochLen() int           { return ci.s.EpochLen() }
func (ci coreInstance) EpochTick()              { ci.s.EpochTick() }
func (ci coreInstance) Release()                { ci.s.Release() }
func (ci coreInstance) Snapshot() MechSnapshot  { return ci.s.Snapshot() }
func (ci coreInstance) Restore(ms MechSnapshot) { ms.(*Snapshot).RestoreInto(ci.s) }
func (ci coreInstance) Underlying() any         { return ci.s }

// mechConfig builds the shared part of every D2M kind's configuration
// from the mechanism options, exactly as the root package's pre-registry
// coreConfig did (field-for-field, so the refactor is byte-identical).
func mechConfig(o MechOptions, tweak func(*Config)) Config {
	cfg := DefaultConfig()
	cfg.Nodes = o.Nodes
	cfg.Seed = o.Seed + 1
	cfg.MD2Pruning = true
	tweak(&cfg)
	cfg.CacheBypass = o.Bypass
	cfg.Prefetch = o.Prefetch
	cfg.Placement = o.Placement
	cfg.Topology = o.Topology
	cfg.MD1Sets *= o.MDScale
	cfg.MD2Sets *= o.MDScale
	cfg.MD3Sets *= o.MDScale
	return cfg
}

func registerD2M(name string, order int, nearHit bool, aliases []string, tweak func(*Config)) {
	RegisterMechanism(Mechanism{
		Name: name, Aliases: aliases, Order: order,
		D2M: true, ReportNearHit: nearHit,
		New: func(o MechOptions) MechInstance {
			return coreInstance{s: NewSystem(mechConfig(o, tweak))}
		},
	})
}

// The D2M family. Orders 0 and 1 belong to the baselines (registered by
// internal/baseline); the paper's three D2M variants, the hybrid, and
// the two adaptive mechanisms follow.
func init() {
	registerD2M("D2M-FS", 2, false, nil, func(c *Config) {})
	registerD2M("D2M-NS", 3, true, nil, func(c *Config) {
		c.NearSide = true
	})
	registerD2M("D2M-NS-R", 4, true, nil, func(c *Config) {
		c.NearSide = true
		c.Replication = true
		c.DynamicIndexing = true
	})
	registerD2M("D2M-Hybrid", 5, false, nil, func(c *Config) {
		c.NearSide = true
		c.Replication = true
		c.DynamicIndexing = true
		c.TraditionalL1 = true
	})
	registerD2M("D2M-Adaptive", 6, true, nil, func(c *Config) {
		c.NearSide = true
		c.Replication = true
		c.DynamicIndexing = true
		c.AdaptiveWays = true
		c.EpochLen = DefaultEpochLen
	})
	registerD2M("D2M-LevelPred", 7, true, nil, func(c *Config) {
		c.NearSide = true
		c.Replication = true
		c.DynamicIndexing = true
		c.LevelPred = true
		c.PredEntries = DefaultPredEntries
	})
}
