// Package core implements the paper's contribution: the Direct-to-Master
// (D2M) split cache hierarchy. A metadata hierarchy (per-node MD1 and MD2,
// global MD3) tracks per-region Location Information for every cacheline,
// while the data hierarchy is a set of tag-less arrays reachable only
// through that metadata.
package core

import "fmt"

// LocKind is the kind of place a Location can name.
type LocKind uint8

// Location kinds, mirroring the four cases of §III-A: a local cache level,
// the LLC, a remote node, or memory.
const (
	// LocMem means the master is (only) in memory.
	LocMem LocKind = iota
	// LocNode means the master is somewhere inside a remote node,
	// tracked only by its NodeID ("This allows nodes to move their
	// cachelines between their L1 and L2 without having to update
	// metadata in other nodes").
	LocNode
	// LocL1 is a way of the local L1 (I or D is implied by the region).
	LocL1
	// LocL2 is a way of the local L2.
	LocL2
	// LocLLC is a way of the LLC. For a far-side LLC, Way is the way in
	// the monolithic 32-way LLC. For a near-side LLC, Node is the slice
	// and Way the way within the 4-way slice (the 1NNNWW
	// reinterpretation of §IV-B).
	LocLLC
	// LocInvalid marks an LI that carries no information (e.g. MD3 LIs
	// of private regions). Encoded as one of the eight symbols of the
	// 011SSS group.
	LocInvalid
)

func (k LocKind) String() string {
	switch k {
	case LocMem:
		return "mem"
	case LocNode:
		return "node"
	case LocL1:
		return "l1"
	case LocL2:
		return "l2"
	case LocLLC:
		return "llc"
	case LocInvalid:
		return "invalid"
	default:
		return fmt.Sprintf("lockind(%d)", uint8(k))
	}
}

// Location is the decoded form of a 6-bit Location Information entry
// (Table I). The set index is not part of the encoding — it derives from
// the line address (and the region's scramble under dynamic indexing) —
// so Location carries only what the hardware stores.
type Location struct {
	Kind LocKind
	// Node is the remote node for LocNode, or the slice for LocLLC in a
	// near-side configuration.
	Node int
	// Way is the way within the level for LocL1, LocL2 and LocLLC. The
	// sentinel WayUnresolved marks a victim location whose slice has
	// been chosen but whose slot is resolved at eviction time.
	Way int
}

// WayUnresolved marks a Replacement Pointer whose target slice is chosen
// but whose exact slot will be picked when the eviction happens.
const WayUnresolved = -1

// Mem is the memory location.
func Mem() Location { return Location{Kind: LocMem} }

// Invalid is the invalid location.
func Invalid() Location { return Location{Kind: LocInvalid} }

// InNode returns a location naming a remote master node.
func InNode(n int) Location { return Location{Kind: LocNode, Node: n} }

// InL1 returns a local L1 location.
func InL1(way int) Location { return Location{Kind: LocL1, Way: way} }

// InL2 returns a local L2 location.
func InL2(way int) Location { return Location{Kind: LocL2, Way: way} }

// InLLC returns a far-side LLC location.
func InLLC(way int) Location { return Location{Kind: LocLLC, Node: 0, Way: way} }

// InSlice returns a near-side LLC location in the given node's slice.
func InSlice(node, way int) Location { return Location{Kind: LocLLC, Node: node, Way: way} }

func (l Location) String() string {
	switch l.Kind {
	case LocNode:
		return fmt.Sprintf("node%d", l.Node)
	case LocL1:
		return fmt.Sprintf("l1.w%d", l.Way)
	case LocL2:
		return fmt.Sprintf("l2.w%d", l.Way)
	case LocLLC:
		return fmt.Sprintf("llc.n%d.w%d", l.Node, l.Way)
	default:
		return l.Kind.String()
	}
}

// Local reports whether the location is inside the node holding the LI
// (its own L1 or L2).
func (l Location) Local() bool { return l.Kind == LocL1 || l.Kind == LocL2 }

// The 6-bit encodings of Table I:
//
//	000NNN  in NodeID NNN
//	001WWW  in L1, way WWW
//	010WWW  in L2, way WWW
//	011SSS  eight symbols; MEM and INVALID are two of them
//	1WWWWW  in LLC, way WWWWW (far-side)
//	1NNNWW  in the NS-LLC slice of node NNN, way WW (near-side, §IV-B)
const (
	symMem     = 0
	symInvalid = 1
)

// EncodeLI encodes a Location into its 6-bit representation. nearSide
// selects the NS-LLC reinterpretation of the 1xxxxx group. It panics on
// unencodable locations (out-of-range ways or nodes), which would be
// construction bugs.
func EncodeLI(l Location, nearSide bool) uint8 {
	check := func(v, max int, what string) {
		if v < 0 || v >= max {
			panic(fmt.Sprintf("core: %s %d out of range [0,%d)", what, v, max))
		}
	}
	switch l.Kind {
	case LocNode:
		check(l.Node, 8, "node")
		return uint8(l.Node)
	case LocL1:
		check(l.Way, 8, "l1 way")
		return 0b001000 | uint8(l.Way)
	case LocL2:
		check(l.Way, 8, "l2 way")
		return 0b010000 | uint8(l.Way)
	case LocMem:
		return 0b011000 | symMem
	case LocInvalid:
		return 0b011000 | symInvalid
	case LocLLC:
		if nearSide {
			check(l.Node, 8, "slice")
			check(l.Way, 4, "slice way")
			return 0b100000 | uint8(l.Node)<<2 | uint8(l.Way)
		}
		check(l.Way, 32, "llc way")
		return 0b100000 | uint8(l.Way)
	default:
		panic(fmt.Sprintf("core: unencodable location %v", l))
	}
}

// DecodeLI decodes a 6-bit LI produced by EncodeLI.
func DecodeLI(bits uint8, nearSide bool) Location {
	if bits >= 64 {
		panic(fmt.Sprintf("core: LI %#x wider than 6 bits", bits))
	}
	if bits&0b100000 != 0 {
		if nearSide {
			return InSlice(int(bits>>2)&0b111, int(bits)&0b11)
		}
		return InLLC(int(bits) & 0b11111)
	}
	switch bits >> 3 {
	case 0b000:
		return InNode(int(bits) & 0b111)
	case 0b001:
		return InL1(int(bits) & 0b111)
	case 0b010:
		return InL2(int(bits) & 0b111)
	default: // 0b011, symbols
		switch bits & 0b111 {
		case symMem:
			return Mem()
		default:
			return Invalid()
		}
	}
}
