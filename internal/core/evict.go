package core

import (
	"fmt"

	"d2m/internal/energy"
	"d2m/internal/mem"
	"d2m/internal/noc"
	"d2m/internal/timing"
)

// This file implements the Replacement-Pointer-driven eviction machinery
// of §III-B and the forced-eviction cascades that metadata inclusion
// demands (§II-A, §III): evicting an MD2 entry flushes the node's copies
// of the region; evicting an MD3 entry flushes the region everywhere.

// storeForLocal maps a local LI of ent onto the backing data store.
func (n *node) storeForLocal(li Location, ent *nodeRegion) *dataStore {
	switch li.Kind {
	case LocL1:
		if ent.instrStream {
			return n.l1i
		}
		return n.l1d
	case LocL2:
		if n.l2 == nil {
			panic("core: LocL2 LI in a node without an L2")
		}
		return n.l2
	default:
		panic(fmt.Sprintf("core: storeForLocal on %v", li))
	}
}

// localSlot resolves a local LI to its slot, enforcing determinism.
func (n *node) localSlot(ent *nodeRegion, idx int) (*dataStore, int, *slot) {
	li := ent.li[idx]
	st := n.storeForLocal(li, ent)
	line := ent.region.Line(idx)
	set := st.setFor(line, ent.scramble)
	return st, set, st.get(set, li.Way, line)
}

// localSlotI is localSlot returning the slot's flat table index instead
// of the set, so hit paths can touch the slot without recomputing the
// set*ways+way product a second time.
func (n *node) localSlotI(ent *nodeRegion, idx int) (*dataStore, int, *slot) {
	li := ent.li[idx]
	st := n.storeForLocal(li, ent)
	line := ent.region.Line(idx)
	set := st.setFor(line, ent.scramble)
	i := st.tbl.Index(set, li.Way)
	sl := &st.slots[i]
	if !sl.valid || sl.line != line {
		panic(fmt.Sprintf("core: determinism violation in %s: set %d way %d holds %v (valid=%v), metadata expected %v",
			st.name, set, li.Way, sl.line, sl.valid, line))
	}
	return st, i, sl
}

// evictNodeLine evicts the locally held line idx of ent from node n.
// Replicas are replaced silently (LI := RP, the master location). Masters
// move to the victim location named by their RP (case E for private
// regions; case F — with the metadata-coherent NewMaster update — for
// dirty masters of shared regions).
func (s *System) evictNodeLine(n *node, ent *nodeRegion, idx int, t *txn) {
	li := ent.li[idx]
	if !li.Local() {
		panic(fmt.Sprintf("core: evictNodeLine on non-local LI %v", li))
	}
	st, set, sl := n.localSlot(ent, idx)
	line := ent.region.Line(idx)
	s.meter.Do(st.op, 1)

	if !sl.master {
		// Replica: silent replacement. The RP (master location) is
		// validated first — replicas are clean, so memory is always a
		// coherent fallback if the recorded master moved.
		newLI := s.validateRP(line, ent.scramble, sl.rp)
		if ent.private && newLI.Kind == LocNode {
			// A stale remote referral must not survive into a private
			// region's metadata (privatization sanitizes chains, but a
			// replica RP could have drifted since): memory is coherent,
			// since no other node holds the line.
			newLI = Mem()
		}
		ent.li[idx] = newLI
		st.drop(set, li.Way)
		return
	}

	dirty := sl.dirty
	dest := sl.rp
	ver := sl.ver
	st.drop(set, li.Way)
	// The line is in transit: its LI must not dangle at the dropped slot
	// while the install cascade below runs — the cascade's victim can be
	// a stale clean duplicate of this very line, whose repoint walk
	// would follow the LI. Memory is the coherent interim location.
	ent.li[idx] = Mem()
	var newLoc Location
	switch dest.Kind {
	case LocLLC:
		newLoc = s.llcInstall(dest.Node, line, ent.region, ent.scramble, true, dirty, Mem(), n.id, ver, t)
	case LocMem:
		if dirty {
			s.writebackToMem(noc.NodeEP(n.id), line, ver, t)
		}
		newLoc = Mem()
	default:
		panic(fmt.Sprintf("core: master RP names %v", dest))
	}
	ent.li[idx] = newLoc

	if ent.private {
		s.st.EvE++
		return
	}
	if dirty {
		// Case F: shared dirty master moved; slaves and MD3 must learn
		// the new master location before the old one is reused.
		s.st.EvF++
		s.caseF(n, ent.region, idx, newLoc, t)
	}
	// Clean shared masters move silently; stale NodeID pointers at other
	// nodes are resolved by the redirect path.
}

// writebackToMem accounts a dirty-line writeback to memory from a node
// (fromNode=true) or from the far LLC/memory-side (fromNode=false).
func (s *System) writebackToMem(from noc.Endpoint, line mem.LineAddr, ver uint64, t *txn) {
	t.add(s.fab.SendEP(from, noc.Hub, noc.Data, noc.Base))
	s.meter.Do(energy.OpDRAM, 1)
	s.st.DRAMWrites++
	if s.verMem != nil {
		s.verMem[line] = ver
	}
}

// caseF is the shared-region dirty-master eviction transaction: block the
// region at MD3, send NewMaster to every PB slave, collect acks, update
// the MD3 LI, unblock.
func (s *System) caseF(n *node, r mem.RegionAddr, idx int, newLoc Location, t *txn) {
	s.acquireRegionLock(r)
	t.add(s.sendHub(n.id, noc.Ctrl, noc.D2MOnly)) // EvictReq
	s.meter.Do(energy.OpMD3, 1)
	t.add(timing.MD3)
	s.st.MD3Lookups++
	d := s.md3Probe(r)
	if d == nil {
		panic(fmt.Sprintf("core: caseF: no MD3 entry for %v", r))
	}
	d.li[idx] = newLoc
	old := InNode(n.id)
	for pb := d.pbSnapshot(); pb != 0; pb = pb.drop() {
		m := pb.node()
		if m == n.id {
			continue
		}
		s.fab.SendEP(noc.Hub, noc.NodeEP(m), noc.Ctrl, noc.D2MOnly) // NewMaster
		s.sendNodes(m, n.id, noc.Ctrl, noc.D2MOnly)                 // Ack
		s.meter.Do(energy.OpMD2, 1)
		node := s.nodes[m]
		if ent := node.entry(r); ent != nil {
			s.repointLine(node, ent, idx, old, newLoc)
		}
	}
	t.add(noc.TraversalCycles * 2)         // one NewMaster/Ack round trip overlaps
	s.sendHub(n.id, noc.Ctrl, noc.D2MOnly) // Done/unblock
}

// repointLine updates node m's view of line idx after its master moved
// from old to newLoc: an LI that named the old location is repointed, and
// a local replica whose RP named it has its RP fixed so a later silent
// replacement lands on the new master.
func (s *System) repointLine(m *node, ent *nodeRegion, idx int, old, newLoc Location) {
	if ent.private && newLoc.Kind == LocNode {
		// A private region's metadata must stay self-sufficient: no
		// remote referrals (the named node holds nothing — it is not in
		// the PB set). Memory is coherent for the clean copies that
		// silent replacement moves.
		newLoc = Mem()
	}
	if ent.li[idx] == old {
		ent.li[idx] = newLoc
		return
	}
	if ent.li[idx].Local() {
		_, _, sl := m.localSlot(ent, idx)
		if !sl.master && sl.rp == old {
			sl.rp = newLoc
		}
	}
}

// llcInstall places line into the LLC (slice `slice` for near-side
// configurations; the monolith otherwise), evicting the slot's occupant
// if needed, and returns the concrete location. The data transfer from
// the originating node is charged here.
func (s *System) llcInstall(slice int, line mem.LineAddr, r mem.RegionAddr, scramble uint64, master, dirty bool, rp Location, fromNode int, ver uint64, t *txn) Location {
	st := s.far
	if s.cfg.NearSide {
		st = s.slices[slice]
	}
	set := st.setFor(line, scramble)
	way := st.victimWay(set, func(v *slot) int {
		switch {
		case !v.master:
			return 3 // replicas are cheapest to displace
		case !v.dirty:
			return 2
		default:
			return 0
		}
	})
	if st.at(set, way).valid {
		s.llcEvictSlot(st, slice, set, way, t)
		s.notePressure(slice)
	}
	// Data moves into the LLC slot from the evicting node, or from the
	// memory controller at the hub (fromNode < 0, the bypass fill).
	from := noc.Hub
	if fromNode >= 0 {
		from = noc.NodeEP(fromNode)
	}
	t.add(s.fab.SendEP(from, s.sliceEP(slice), noc.Data, noc.Base))
	s.meter.Do(st.op, 1)
	st.install(set, way, line, master, dirty, false, rp).ver = ver
	if s.cfg.NearSide {
		return InSlice(slice, way)
	}
	return InLLC(way)
}

// llcEvictSlot removes the occupant of an LLC slot. Replicated lines
// (§IV-C) belong to the slice's node: that node's metadata is fixed up
// locally. Master lines fall back to memory, updating MD3 and — for
// tracked regions — every PB node whose LI named the slot ("untracked
// regions can be evicted from LLC to memory without any metadata
// coherence", §IV-A).
func (s *System) llcEvictSlot(st *dataStore, slice int, set, way int, t *txn) {
	sl := st.at(set, way)
	line := sl.line
	r := line.Region()
	idx := line.Index()
	loc := InLLC(way)
	if s.cfg.NearSide {
		loc = InSlice(slice, way)
	}

	if !sl.master {
		// A replica lives only in its owner's slice and is tracked by
		// the owner's MD2 (inclusion, §IV-C).
		owner := s.nodes[slice]
		ent := owner.entry(r)
		if ent == nil {
			panic(fmt.Sprintf("core: orphan replica %v in %s", line, st.name))
		}
		s.meter.Do(energy.OpMD2, 1)
		s.repointLine(owner, ent, idx, loc, s.validateRP(line, ent.scramble, sl.rp))
		st.drop(set, way)
		return
	}

	// Master: new master is memory.
	if sl.dirty {
		s.writebackToMem(s.sliceEP(slice), line, sl.ver, t)
	}
	wasDirty := sl.dirty
	st.drop(set, way)

	d := s.md3Probe(r)
	if d == nil {
		// A clean master can legally be orphaned (duplicate clean
		// forwarders arise from stale-Mem reads; an unreferenced clean
		// copy matches memory and is simply reclaimed). A dirty master
		// must always be tracked.
		if wasDirty {
			panic(fmt.Sprintf("core: dirty LLC master %v with no MD3 entry", line))
		}
		return
	}
	if d.li[idx] == loc {
		d.li[idx] = Mem()
	}
	// The slice tells MD3 (free when co-located, i.e. far-side).
	s.fab.SendEP(s.sliceEP(slice), noc.Hub, noc.Ctrl, noc.D2MOnly)
	for pb := d.pbSnapshot(); pb != 0; pb = pb.drop() {
		mid := pb.node()
		m := s.nodes[mid]
		ent := m.entry(r)
		if ent == nil {
			continue
		}
		// A node can reference the evicted slot directly (LI), through a
		// local replica's RP, or through a two-level chain ending at an
		// own-slice replica's RP; all three must be repointed at memory.
		switch {
		case ent.li[idx] == loc:
			ent.li[idx] = Mem()
			s.fab.SendEP(s.sliceEP(slice), noc.NodeEP(mid), noc.Ctrl, noc.D2MOnly)
			s.meter.Do(energy.OpMD2, 1)
		case ent.li[idx].Local():
			_, _, lsl := m.localSlot(ent, idx)
			if lsl.master {
				break
			}
			if lsl.rp == loc {
				lsl.rp = Mem()
				s.fab.SendEP(s.sliceEP(slice), noc.NodeEP(mid), noc.Ctrl, noc.D2MOnly)
				s.meter.Do(energy.OpMD2, 1)
			} else if rsl := s.ownSliceReplica(mid, ent, idx, lsl.rp); rsl != nil && rsl.rp == loc {
				rsl.rp = Mem()
				s.fab.SendEP(s.sliceEP(slice), noc.NodeEP(mid), noc.Ctrl, noc.D2MOnly)
				s.meter.Do(energy.OpMD2, 1)
			}
		case ent.li[idx].Kind == LocLLC && s.llcIsLocal(ent.li[idx], mid):
			if rsl := s.ownSliceReplica(mid, ent, idx, ent.li[idx]); rsl != nil && rsl.rp == loc {
				rsl.rp = Mem()
				s.fab.SendEP(s.sliceEP(slice), noc.NodeEP(mid), noc.Ctrl, noc.D2MOnly)
				s.meter.Do(energy.OpMD2, 1)
			}
		}
	}
}

// ownSliceReplica resolves loc to node mid's own-slice replica slot for
// line idx of ent, or nil when loc names anything else.
func (s *System) ownSliceReplica(mid int, ent *nodeRegion, idx int, loc Location) *slot {
	if loc.Kind != LocLLC || !s.llcIsLocal(loc, mid) || loc.Way == WayUnresolved {
		return nil
	}
	st := s.slices[mid]
	line := ent.region.Line(idx)
	sl := st.at(st.setFor(line, ent.scramble), loc.Way)
	if sl.valid && sl.line == line && !sl.master {
		return sl
	}
	return nil
}

// freeWay makes a way available in the given node-level store set,
// evicting (or demoting, for L1 masters with an L2 below) the occupant.
func (s *System) freeWay(n *node, st *dataStore, set int, t *txn) int {
	way := st.victimWay(set, nil)
	sl := st.at(set, way)
	if !sl.valid {
		return way
	}
	line := sl.line
	r := line.Region()
	idx := line.Index()
	ent := n.entry(r)
	if ent == nil {
		panic(fmt.Sprintf("core: line %v in %s untracked by node %d", line, st.name, n.id))
	}
	if (st == n.l1i || st == n.l1d) && n.l2 != nil && sl.master {
		// Demote the master into the L2 instead of leaving the node
		// ("L1 cachelines may have victim locations allocated for them
		// in L2", §III-B).
		cp := *sl
		l2set := n.l2.setFor(line, ent.scramble)
		l2way := s.freeWay(n, n.l2, l2set, t)
		s.meter.Do(energy.OpL2Data, 1)
		cp.rp = s.validateRP(line, ent.scramble, cp.rp)
		n.l2.install(l2set, l2way, line, cp.master, cp.dirty, cp.excl, cp.rp).ver = cp.ver
		ent.li[idx] = InL2(l2way)
		st.drop(set, way)
		return way
	}
	s.evictNodeLine(n, ent, idx, t)
	return way
}

// md2Spill evicts node n's metadata entry for a region: every locally
// held line is force-evicted first (metadata inclusion), then the entry
// leaves MD1/MD2 and the region's global metadata is updated — possibly
// reclassifying the region as private or untracked (§IV-A).
func (s *System) md2Spill(n *node, ent *nodeRegion, t *txn) {
	r := ent.region
	// 1. Force out every local line and every replica in the own slice.
	// Evicting an L1 replica can expose an own-slice replica behind it
	// (the §IV-C chain), so each line iterates until its LI no longer
	// names anything the dying entry is responsible for.
	for idx := range ent.li {
		for {
			li := ent.li[idx]
			if li.Local() {
				s.evictNodeLine(n, ent, idx, t)
				continue
			}
			if li.Kind == LocLLC && s.llcIsLocal(li, n.id) {
				st := s.slices[n.id]
				line := r.Line(idx)
				set := st.setFor(line, ent.scramble)
				sl := st.get(set, li.Way, line)
				if !sl.master {
					// Replicated line: dies with the tracking entry.
					ent.li[idx] = s.validateRP(line, ent.scramble, sl.rp)
					st.drop(set, li.Way)
					s.meter.Do(st.op, 1)
					continue
				}
			}
			break
		}
	}
	// 2. Remove the entry.
	n.md2Remove(ent)
	s.st.MD2Spills++

	// 3. Write the region metadata back to MD3.
	s.sendHub(n.id, noc.MD, noc.D2MOnly)
	s.meter.Do(energy.OpMD3, 1)
	d := s.md3Probe(r)
	if d == nil {
		panic(fmt.Sprintf("core: spill of %v with no MD3 entry", r))
	}
	wasPrivate := ent.private
	d.clearPB(n.id)
	if wasPrivate {
		d.li = ent.li
	} else {
		for idx := range d.li {
			if d.li[idx] == InNode(n.id) {
				d.li[idx] = ent.li[idx]
			}
		}
	}
	// A referral to a node outside the PB set is stale (departing nodes
	// externalize every local line, so a non-PB node holds nothing, and
	// a dirty master would have registered its own node in the LI): it
	// must not survive in MD3, where a later untracked->private adoption
	// (D1) would take it at face value. Memory is the coherent fallback.
	for idx := range d.li {
		if li := d.li[idx]; li.Kind == LocNode && !d.hasPB(li.Node) {
			d.li[idx] = Mem()
		}
	}
	// 4. Reclassify.
	if d.class() == Private {
		s.makePrivate(d, s.nodes[d.solePBNode()], t)
	}
}

// makePrivate handles the shared-to-private transition when the presence
// bits collapse to a single node: the survivor's entry absorbs the global
// master locations (so its metadata is self-sufficient), its P bit is
// set, and the MD3 LIs are invalidated (private regions keep no valid
// MD3 LIs).
func (s *System) makePrivate(d *dirRegion, m *node, t *txn) {
	ent := m.entry(d.region)
	if ent == nil {
		panic(fmt.Sprintf("core: makePrivate: node %d lacks entry for %v", m.id, d.region))
	}
	s.fab.SendEP(noc.Hub, noc.NodeEP(m.id), noc.MD, noc.D2MOnly) // NowPrivate with metadata
	s.meter.Do(energy.OpMD2, 1)
	for idx := range ent.li {
		dli := d.li[idx]
		concrete := dli.Kind == LocMem || (dli.Kind == LocLLC && dli.Way != WayUnresolved)
		// A remote NodeID anywhere in the owner's chain is dead after
		// privatization (the named node left the PB set, so it holds no
		// copies): re-chain to MD3's concrete knowledge, or to memory —
		// coherent because a clean replica implies no dirty master
		// outside the sole surviving node.
		fallback := Mem()
		if concrete {
			fallback = dli
		}
		switch {
		case concrete && (ent.li[idx].Kind == LocMem || ent.li[idx].Kind == LocNode):
			ent.li[idx] = dli
		case ent.li[idx].Local():
			_, _, sl := m.localSlot(ent, idx)
			if !sl.master {
				// The replica must chain to the true master: after the
				// MD3 LIs are invalidated, the owner's metadata is the
				// only reference that can keep an LLC master reachable.
				// A concrete LLC RP (direct or via an own-slice
				// replica) is already a valid chain and stays — but a
				// NodeID link anywhere in the chain must be replaced.
				switch {
				case sl.rp.Kind == LocNode || (concrete && sl.rp.Kind == LocMem):
					sl.rp = fallback
				default:
					if rsl := s.ownSliceReplica(m.id, ent, idx, sl.rp); rsl != nil && rsl.rp.Kind == LocNode {
						rsl.rp = fallback
					}
				}
			} else if concrete && dli.Kind == LocLLC {
				// The owner holds a (clean-duplicate) master locally;
				// the LLC copy would become unreachable — reclaim it.
				line := d.region.Line(idx)
				lst := s.llcStore(dli)
				lset := lst.setFor(line, d.scramble)
				if lsl := lst.at(lset, dli.Way); lsl.valid && lsl.line == line {
					s.llcEvictSlot(lst, dli.Node, lset, dli.Way, t)
				}
			}
		case ent.li[idx].Kind == LocNode:
			// A remaining NodeID pointer names a node with no copies
			// (a node holding one would still be in the PB set), so
			// memory has valid data; private regions must be locally
			// deterministic, with no remote pointers.
			ent.li[idx] = Mem()
		case ent.li[idx].Kind == LocLLC && ent.li[idx].Way != WayUnresolved:
			// A concrete LLC referral can hide a NodeID one hop away: a
			// replica (own-slice or remote) whose RP names a dead node.
			// The pointer itself stays (deterministic), but that RP must
			// be re-chained before a silent replacement copies it back
			// into this now-private region's LI.
			line := d.region.Line(idx)
			lst := s.llcStore(ent.li[idx])
			lset := lst.setFor(line, d.scramble)
			if lsl := lst.at(lset, ent.li[idx].Way); lsl.valid && lsl.line == line && !lsl.master && lsl.rp.Kind == LocNode {
				lsl.rp = fallback
			}
		}
		d.li[idx] = Invalid()
	}
	ent.private = true
}

// md3EvictEntry flushes a region from the entire machine: every tracking
// node drops its entry and copies, every LLC line of the region is
// written back, and the MD3 slot is freed.
func (s *System) md3EvictEntry(set, way int, t *txn) {
	d := s.md3Ent[s.md3.Index(set, way)]
	r := d.region
	s.st.MD3Evicts++

	type llcRef struct {
		st   *dataStore
		set  int
		way  int
		line mem.LineAddr
	}
	refs := make([]llcRef, 0, 64)
	note := func(li Location, line mem.LineAddr, scramble uint64) {
		if li.Kind != LocLLC || li.Way == WayUnresolved {
			return
		}
		st := s.llcStore(li)
		refs = append(refs, llcRef{st, st.setFor(line, scramble), li.Way, line})
	}

	for pb := d.pbSnapshot(); pb != 0; pb = pb.drop() {
		mid := pb.node()
		m := s.nodes[mid]
		ent := m.entry(r)
		if ent == nil {
			panic(fmt.Sprintf("core: PB set for node %d but no MD2 entry (%v)", mid, r))
		}
		s.fab.SendEP(noc.Hub, noc.NodeEP(mid), noc.Ctrl, noc.D2MOnly) // flush request
		s.meter.Do(energy.OpMD2, 1)
		for idx := range ent.li {
			li := ent.li[idx]
			line := r.Line(idx)
			switch {
			case li.Local():
				lst, lset, sl := m.localSlot(ent, idx)
				if sl.master && sl.dirty {
					s.writebackToMem(noc.NodeEP(mid), line, sl.ver, t)
				}
				if !sl.master {
					// An LLC master reachable only through this
					// replica's RP must be flushed too.
					note(sl.rp, line, ent.scramble)
				}
				lst.drop(lset, li.Way)
				s.meter.Do(lst.op, 1)
			case li.Kind == LocLLC:
				if s.llcIsLocal(li, mid) {
					// May be a replica owned by this node; flush below
					// handles masters, handle the replica here — and
					// chase its RP, which may be the only reference to
					// the true master.
					st := s.slices[mid]
					lset := st.setFor(line, ent.scramble)
					sl := st.at(lset, li.Way)
					if sl.valid && sl.line == line && !sl.master {
						note(sl.rp, line, ent.scramble)
						st.drop(lset, li.Way)
						s.meter.Do(st.op, 1)
						continue
					}
				}
				note(li, line, ent.scramble)
			}
			ent.li[idx] = Mem()
		}
		m.md2Remove(ent)
	}
	for idx := range d.li {
		note(d.li[idx], r.Line(idx), d.scramble)
	}
	// Indexed loop: dropping a replica appends its RP target (possibly
	// the only reference to a master) to the worklist.
	for i := 0; i < len(refs); i++ {
		ref := refs[i]
		sl := ref.st.at(ref.set, ref.way)
		if !sl.valid || sl.line != ref.line {
			continue
		}
		if !sl.master {
			note(sl.rp, ref.line, d.scramble)
		} else if sl.dirty {
			s.writebackToMem(s.refEP(ref.st), ref.line, sl.ver, t)
		}
		ref.st.drop(ref.set, ref.way)
		s.meter.Do(ref.st.op, 1)
	}
	s.md3Ent[s.md3.Index(set, way)] = nil
	s.md3.Invalidate(set, way)
}
