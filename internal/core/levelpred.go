package core

import (
	"d2m/internal/energy"
	"d2m/internal/mem"
)

// Region-level level prediction (the D2M-LevelPred mechanism): a small
// direct-mapped table per node remembers, per hashed region, the level
// that served the region's last access. When the predictor has an
// opinion and it is not "L1" (an L1 hit is already a single pipelined
// probe — nothing to hide), the node launches the predicted level's
// data probe in parallel with the metadata walk. A correct prediction
// overlaps the MD walk with the data access, hiding the shorter of the
// two from the critical path; a wrong one wastes the probed level's
// data-array energy but costs no extra latency (the metadata walk was
// proceeding anyway and remains authoritative). This trades the
// determinism of the LI — which always knows the level — for latency,
// and the EXPERIMENTS.md comparison against the deterministic LI walk
// quantifies whether the trade ever pays.

// predSlot returns the node's direct-mapped predictor index for region
// r. len(n.pred) is a power of two (Config.Validate enforces it).
func (n *node) predSlot(r mem.RegionAddr) int {
	return int(regionKey(r) & uint64(len(n.pred)-1))
}

// levelPredResolve settles the access's speculation once the serving
// level is known: li is the line's pre-access LI (the level that
// actually served), mdLat the latency of the metadata walk alone, and
// t the full transaction. It also trains the predictor.
func (s *System) levelPredResolve(n *node, slot int, predicted LocKind, predValid bool, li Location, mdLat uint64, t *txn) {
	actual := li.Kind
	if predValid && predicted != LocL1 {
		s.st.PredSpeculations++
		if predicted == actual {
			// The probe and the MD walk overlapped; the shorter of the
			// two disappears from the critical path.
			saved := mdLat
			if dataLat := t.lat - mdLat; dataLat < saved {
				saved = dataLat
			}
			t.lat -= saved
			s.st.PredHits++
			s.st.PredCyclesSaved += saved
		} else {
			// Wrong level probed: charge the wasted data-array access.
			s.st.PredMispredicts++
			switch predicted {
			case LocLLC:
				s.meter.Do(energy.OpLLCData, 1)
			case LocNode:
				s.meter.Do(energy.OpL1Data, 1)
			case LocL2:
				s.meter.Do(energy.OpL2Data, 1)
			case LocMem:
				s.meter.Do(energy.OpDRAM, 1)
			}
		}
	}
	n.pred[slot] = uint8(actual) + 1
}
