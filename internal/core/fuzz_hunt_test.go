package core

// A deeper fuzz pass than TestQuickProtocolInvariants: wider seed sweep,
// invariants audited after EVERY access (not just at the end), and a
// greedy shrinker that minimizes any failing script for the regression
// suite (see fuzz_regress_test.go for past finds).

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"d2m/internal/mem"
)

func runScript(sc accessScript) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	cfg := scriptConfig(sc)
	s := NewSystem(cfg)
	for i, st := range sc.Steps {
		kind := mem.Load
		region := int(st.Region)
		switch {
		case st.Kind < 2:
			kind = mem.IFetch
			region += 1 << 16
		case st.Kind < 5:
			kind = mem.Store
		}
		s.Access(mem.Access{
			Node: int(st.Node) % cfg.Nodes,
			Addr: mem.RegionAddr(region).Line(int(st.Line)).Addr(),
			Kind: kind,
		})
		if sc.Adaptive && i%64 == 63 {
			s.EpochTick()
		}
		if e := s.CheckInvariants(); e != nil {
			return fmt.Errorf("step %d: %v", i, e)
		}
	}
	return nil
}

func TestFuzzHunt(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	for seed := int64(0); seed < 500; seed++ {
		r := rand.New(rand.NewSource(seed))
		v := accessScript{}.Generate(r, 80)
		sc := v.Interface().(accessScript)
		if err := runScript(sc); err != nil {
			// Shrink: greedily drop steps while the failure persists.
			fail := func(c accessScript) bool { return runScript(c) != nil }
			for i := 0; i < len(sc.Steps); {
				c := sc
				c.Steps = append(append([]accessStep{}, sc.Steps[:i]...), sc.Steps[i+1:]...)
				if fail(c) {
					sc = c
				} else {
					i++
				}
			}
			t.Fatalf("seed %d: %v\nflags near=%v repl=%v scr=%v prune=%v byp=%v pref=%v hyb=%v adapt=%v lpred=%v\nsteps (%d): %+v",
				seed, runScript(sc), sc.NearSide, sc.Replication, sc.Scramble, sc.Pruning,
				sc.Bypass, sc.Prefetch, sc.Hybrid, sc.Adaptive, sc.LevelPred, len(sc.Steps), sc.Steps)
		}
	}
}

var _ = reflect.ValueOf
