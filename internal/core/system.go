package core

import (
	"fmt"

	"d2m/internal/cache"
	"d2m/internal/energy"
	"d2m/internal/mem"
	"d2m/internal/noc"
	"d2m/internal/timing"
)

// node is one core's private slice of the system: two first-level
// metadata stores (MD1-I virtually tagged for the instruction stream,
// MD1-D for data), a second-level metadata store (MD2, physically
// tagged), the tag-less L1 caches and the optional tag-less L2.
type node struct {
	id  int
	sys *System

	md1i, md1d *cache.Table
	md2        *cache.Table
	md1iEnt    []*nodeRegion
	md1dEnt    []*nodeRegion
	md2Ent     []*nodeRegion

	l1i, l1d *dataStore
	l2       *dataStore // nil when the config has no private L2

	// memoI and memoD cache the last MD1 hit per stream (the slot the
	// stream's previous access found its region in). Consecutive
	// accesses overwhelmingly stay within one region, so the memo lets
	// lookupMD skip the hash and associative probe; it is verified
	// against the live table before use (key match at the remembered
	// slot), so a stale memo — after an MD1 eviction, migration, or
	// snapshot restore — falls through to the full probe instead of
	// misresolving. Purely an access-path shortcut: timing, energy and
	// LRU updates are charged identically on both paths.
	memoI, memoD md1Memo

	// Adaptive way-repartitioning state (Config.AdaptiveWays): the
	// active-way split between the L1-D data store and the MD1-D
	// metadata store (l1dActive + md1dActive == AdaptiveWayBudget), and
	// the current interval's miss counters feeding the epoch policy.
	// The counters live here rather than in Stats so the measurement
	// boundary's statistics reset does not disturb the policy, and so
	// warm snapshots carry them.
	l1dActive, md1dActive int
	epochDataMisses       uint64
	epochMDMisses         uint64

	// pred is the node's direct-mapped region-level predictor
	// (Config.LevelPred): indexed by the hashed region key, each entry
	// holds the LocKind that served the region's last access, plus one
	// (zero = never seen).
	pred []uint8

	// streamInstr records, per region currently tracked, whether the
	// region's L1-resident lines live in the L1-I (true) or L1-D.
	// Keyed by the region entry itself to avoid a map.
}

// md1Memo remembers where a stream's last access found its region in
// the MD1 (slot is the flat table index).
type md1Memo struct {
	region mem.RegionAddr
	slot   int
	ok     bool
}

// System is a complete D2M machine: the nodes, the LLC (far-side
// monolith or near-side slices), the globally shared metadata MD3 with
// its presence bits, the interconnect, and the energy meter.
type System struct {
	cfg Config

	nodes  []*node
	far    *dataStore   // far-side LLC; nil when cfg.NearSide
	slices []*dataStore // near-side slices; nil when far-side

	md3    *cache.Table
	md3Ent []*dirRegion

	fab   *noc.Fabric
	meter *energy.Meter
	st    Stats
	rng   *mem.RNG

	// NS-LLC placement pressure (§IV-B): replacements per epoch per
	// slice; prev holds the last completed epoch, which is what the
	// policy consults ("periodically shared with the other NS-LLCs").
	pressureCur  []uint64
	pressurePrev []uint64
	epochMark    uint64

	// Coherence oracle (Config.CoherenceDebug): verMem is the version
	// memory holds per line, verSeq the global write sequence, and xfer
	// stages the version of data in flight toward an install.
	verMem    map[mem.LineAddr]uint64
	verLatest map[mem.LineAddr]uint64
	verSeq    uint64
	xfer      uint64

	// bypassServed marks that the current access was served by the
	// bypass path (no L1 allocation), for the oracle.
	bypassServed bool
	// inPrefetch suppresses recursive prefetching and bypassing while a
	// prefetch runs through the normal read machinery.
	inPrefetch bool

	// lockWindow holds the regions of the most recent blocking
	// transactions — a stand-in for the transactions that would be in
	// flight concurrently on real hardware (≈ one per node). A new
	// blocking transaction whose lock hash matches a different region
	// in the window would have stalled: a lock-bit collision.
	lockWindow []mem.RegionAddr
	lockPos    int

	// rpFallback stages the master location behind a replica RP in
	// flight toward an L1 install: if the install's eviction cascade
	// reclaims the RP target (e.g. a just-created slice replica), the
	// RP degrades to this master instead of to memory, which would be
	// stale while a dirty master lives.
	rpFallback Location
}

// pressureEpoch is the accounting epoch of the NS placement policy,
// "every 10k cycles" in the paper, approximated as 10k accesses.
const pressureEpoch = 10000

// NewSystem builds a D2M system from cfg. It panics on an invalid
// configuration (construction errors are programming errors in this
// simulator).
func NewSystem(cfg Config) *System {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	s := &System{
		cfg:   cfg,
		meter: energy.NewMeter(energy.Default22nm()),
		rng:   mem.NewRNG(cfg.Seed),
	}
	s.fab = noc.NewFabricTopology(s.meter, cfg.Topology)
	if cfg.LockBits == 0 {
		s.cfg.LockBits = 1024
	}
	s.lockWindow = make([]mem.RegionAddr, cfg.Nodes)
	for i := range s.lockWindow {
		s.lockWindow[i] = ^mem.RegionAddr(0)
	}
	if cfg.CoherenceDebug {
		s.verMem = make(map[mem.LineAddr]uint64)
		s.verLatest = make(map[mem.LineAddr]uint64)
	}

	s.md3 = cache.GetTable(cfg.MD3Sets, cfg.MD3Ways)
	s.md3Ent = dirRegArrays.Get(cfg.MD3Sets * cfg.MD3Ways)
	s.meter.AddLeakage(energy.LeakMD3)

	if cfg.NearSide {
		s.slices = make([]*dataStore, cfg.Nodes)
		for i := range s.slices {
			s.slices[i] = newDataStore(fmt.Sprintf("ns-llc[%d]", i), cfg.SliceSets, cfg.SliceWays, energy.OpLLCData, timing.LLCData)
			s.slices[i].scrambled = true
			s.meter.AddLeakage(energy.LeakLLCSlice)
		}
		s.pressureCur = make([]uint64, cfg.Nodes)
		s.pressurePrev = make([]uint64, cfg.Nodes)
	} else {
		s.far = newDataStore("llc", cfg.LLCSets, cfg.LLCWays, energy.OpLLCData, timing.LLCData)
		s.far.scrambled = true
		// The far-side monolith leaks like all its slices together.
		s.meter.AddLeakage(energy.LeakLLCSlice * 8)
	}

	for i := 0; i < cfg.Nodes; i++ {
		n := &node{
			id:      i,
			sys:     s,
			md1i:    cache.GetTable(cfg.MD1Sets, cfg.MD1Ways),
			md1d:    cache.GetTable(cfg.MD1Sets, cfg.MD1Ways),
			md2:     cache.GetTable(cfg.MD2Sets, cfg.MD2Ways),
			md1iEnt: nodeRegArrays.Get(cfg.MD1Sets * cfg.MD1Ways),
			md1dEnt: nodeRegArrays.Get(cfg.MD1Sets * cfg.MD1Ways),
			md2Ent:  nodeRegArrays.Get(cfg.MD2Sets * cfg.MD2Ways),
			l1i:     newDataStore(fmt.Sprintf("l1i[%d]", i), cfg.L1Sets, cfg.L1Ways, energy.OpL1Data, timing.L1),
			l1d:     newDataStore(fmt.Sprintf("l1d[%d]", i), cfg.L1Sets, cfg.L1Ways, energy.OpL1Data, timing.L1),
		}
		if cfg.L2Sets > 0 {
			n.l2 = newDataStore(fmt.Sprintf("l2[%d]", i), cfg.L2Sets, cfg.L2Ways, energy.OpL2Data, timing.L2)
			s.meter.AddLeakage(energy.LeakL2)
		}
		if cfg.AdaptiveWays {
			n.l1dActive = AdaptiveWayBudget / 2
			n.md1dActive = AdaptiveWayBudget - n.l1dActive
			n.l1d.activeWays = n.l1dActive
		}
		if cfg.LevelPred {
			pe := cfg.PredEntries
			if pe == 0 {
				pe = DefaultPredEntries
			}
			n.pred = make([]uint8, pe)
		}
		s.meter.AddLeakage(2*energy.LeakL1 + 2*energy.LeakMD1 + energy.LeakMD2)
		s.nodes = append(s.nodes, n)
	}
	return s
}

// Config returns the system's configuration.
func (s *System) Config() Config { return s.cfg }

// Stats returns the accumulated counters.
func (s *System) Stats() *Stats { return &s.st }

// ResetMeasurement zeroes every statistic, traffic and dynamic-energy
// counter while keeping all cache/metadata state — the warmup boundary.
func (s *System) ResetMeasurement() {
	s.st = Stats{}
	s.fab.Reset()
	s.meter.ResetCounts()
}

// Fabric returns the interconnect, for traffic reporting.
func (s *System) Fabric() *noc.Fabric { return s.fab }

// Meter returns the energy meter.
func (s *System) Meter() *energy.Meter { return s.meter }

// Endpoint helpers: nodes and their slices share an endpoint; the
// far-side LLC, MD3 and the memory controller live at the hub.

// llcEP returns the endpoint of the LLC store holding loc.
func (s *System) llcEP(loc Location) noc.Endpoint {
	if s.cfg.NearSide {
		return noc.NodeEP(loc.Node)
	}
	return noc.Hub
}

// refEP returns the endpoint of an LLC data store (a slice's node, or
// the hub for the far-side monolith).
func (s *System) refEP(st *dataStore) noc.Endpoint {
	if !s.cfg.NearSide {
		return noc.Hub
	}
	for i, sl := range s.slices {
		if sl == st {
			return noc.NodeEP(i)
		}
	}
	return noc.Hub
}

// sliceEP returns the endpoint of slice i (the hub for far-side).
func (s *System) sliceEP(i int) noc.Endpoint {
	if s.cfg.NearSide {
		return noc.NodeEP(i)
	}
	return noc.Hub
}

// sendHub sends between a node and the hub (MD3, far LLC, memory).
func (s *System) sendHub(nodeID int, class noc.Class, cat noc.Category) uint64 {
	return s.fab.SendEP(noc.NodeEP(nodeID), noc.Hub, class, cat)
}

// sendNodes sends between two nodes.
func (s *System) sendNodes(a, b int, class noc.Class, cat noc.Category) uint64 {
	return s.fab.SendEP(noc.NodeEP(a), noc.NodeEP(b), class, cat)
}

// sendLLC sends between a node and the LLC store holding loc (free when
// the store is the node's own slice).
func (s *System) sendLLC(nodeID int, loc Location, class noc.Class, cat noc.Category) uint64 {
	return s.fab.SendEP(noc.NodeEP(nodeID), s.llcEP(loc), class, cat)
}

// llcStore maps an LLC Location onto the data store backing it.
func (s *System) llcStore(loc Location) *dataStore {
	if loc.Kind != LocLLC {
		panic(fmt.Sprintf("core: llcStore on %v", loc))
	}
	if s.cfg.NearSide {
		return s.slices[loc.Node]
	}
	return s.far
}

// llcIsLocal reports whether the LLC location is in node's own slice
// (always false for a far-side LLC).
func (s *System) llcIsLocal(loc Location, nodeID int) bool {
	return s.cfg.NearSide && loc.Node == nodeID
}

// --- MD3 access -----------------------------------------------------------

// acquireRegionLock models the appendix's blocking mechanism: every
// transaction that may change a region's global metadata locks a hashed
// lock bit. Collisions (a different in-flight region hashing to the same
// bit) are counted; with the default 1024 bits they are negligible, as
// the paper reports.
func (s *System) acquireRegionLock(r mem.RegionAddr) {
	s.st.LockAcquires++
	bits := uint64(s.cfg.LockBits)
	h := regionKey(r) % bits
	for _, prev := range s.lockWindow {
		if prev != ^mem.RegionAddr(0) && prev != r && regionKey(prev)%bits == h {
			s.st.LockCollisions++
			break
		}
	}
	s.lockWindow[s.lockPos] = r
	// Wraparound compare instead of modulo (hot-path divide).
	s.lockPos++
	if s.lockPos == len(s.lockWindow) {
		s.lockPos = 0
	}
}

// md3Probe returns the MD3 entry for region r, without charging anything.
func (s *System) md3Probe(r mem.RegionAddr) *dirRegion {
	set := s.md3.SetFor(regionKey(r))
	if way, ok := s.md3.Lookup(set, uint64(r)); ok {
		return s.md3Ent[s.md3.Index(set, way)]
	}
	return nil
}

// md3Touch refreshes the LRU position of region r's MD3 entry.
func (s *System) md3Touch(r mem.RegionAddr) {
	set := s.md3.SetFor(regionKey(r))
	if way, ok := s.md3.Lookup(set, uint64(r)); ok {
		s.md3.Touch(set, way)
	}
}

// md3Alloc creates the MD3 entry for region r, evicting a victim region
// globally if necessary, and returns it. The caller charges the MD3
// access.
func (s *System) md3Alloc(r mem.RegionAddr, t *txn) *dirRegion {
	set := s.md3.SetFor(regionKey(r))
	way := s.md3.VictimWayScored(set, func(w int) int {
		d := s.md3Ent[s.md3.Index(set, w)]
		// Prefer evicting untracked regions (no forced node flushes),
		// then regions tracked by few nodes.
		if d.pb == 0 {
			return 100
		}
		return -popcount16(d.pb)
	})
	if s.md3.Valid(set, way) {
		s.md3EvictEntry(set, way, t)
	}
	scramble := uint64(0)
	if s.cfg.DynamicIndexing {
		scramble = s.rng.Uint64()
	}
	d := newDirRegion(r, scramble)
	s.md3Ent[s.md3.Index(set, way)] = d
	s.md3.Put(set, way, uint64(r))
	return d
}
