package core

import (
	"testing"

	"d2m/internal/mem"
)

// Regression tests for protocol bugs found by the property-based fuzz
// harness (TestQuickProtocolInvariants). Each script is the shrunken
// access sequence that first exposed the bug; the invariant audit runs
// after every access, so any regression pins the exact step.

func replayScript(t *testing.T, cfg Config, steps []accessStep) {
	t.Helper()
	cfg.CoherenceDebug = true
	s := NewSystem(cfg)
	for i, st := range steps {
		kind := mem.Load
		region := int(st.Region)
		switch {
		case st.Kind < 2:
			kind = mem.IFetch
			region += 1 << 16
		case st.Kind < 5:
			kind = mem.Store
		}
		a := mem.Access{Node: int(st.Node) % cfg.Nodes, Addr: mem.RegionAddr(region).Line(int(st.Line)).Addr(), Kind: kind}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("step %d (%v): panic: %v", i, a, r)
				}
			}()
			s.Access(a)
		}()
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("step %d (%v): %v", i, a, err)
		}
	}
}

// A master eviction whose LLC victim slot holds a stale clean duplicate
// of the very line being evicted: the duplicate's repoint walk used to
// dereference the evictor's dangling LI (the L1 slot was dropped before
// the cascade ran). Fixed by marking the line in transit (LI := MEM)
// across the cascade.
func TestFuzzRegressDuplicateVictimCollision(t *testing.T) {
	cfg := testConfig(false)
	cfg.CacheBypass = true
	cfg.Prefetch = true
	cfg.TraditionalL1 = true
	replayScript(t, cfg, []accessStep{
		{3, 9, 3, 3}, {2, 4, 10, 1}, {0, 4, 11, 0}, {0, 9, 4, 3}, {0, 9, 0, 2},
		{3, 2, 3, 5}, {3, 9, 15, 3}, {1, 2, 3, 4}, {1, 9, 8, 5}, {1, 9, 2, 2},
		{0, 9, 13, 4}, {1, 8, 12, 1}, {1, 9, 6, 4}, {1, 1, 5, 2}, {2, 8, 5, 0},
		{1, 10, 7, 7}, {0, 8, 3, 3}, {1, 9, 4, 5}, {1, 9, 8, 7}, {2, 11, 3, 3},
		{0, 9, 9, 7}, {0, 9, 11, 5}, {3, 2, 1, 0}, {2, 2, 1, 1}, {0, 9, 8, 4},
		{3, 8, 14, 0}, {0, 3, 3, 4}, {0, 3, 9, 6}, {3, 4, 8, 2}, {0, 4, 0, 7},
		{2, 3, 3, 3}, {1, 7, 6, 5}, {2, 4, 14, 4}, {2, 8, 0, 3}, {2, 1, 3, 7},
		{2, 0, 10, 2}, {2, 9, 2, 7}, {2, 8, 10, 7}, {0, 9, 3, 7}, {2, 10, 7, 4},
	})
}

// A region privatized while its owner's LI pointed directly at an
// own-slice replica whose RP still named the departed node: a later
// silent replacement copied the dead referral back into the private
// region's metadata. Fixed by sanitizing replica RPs reachable through
// concrete LLC LIs at privatization (and by the repointLine guard).
func TestFuzzRegressPrivateRegionStaleReplicaRP(t *testing.T) {
	cfg := testConfig(true)
	cfg.Replication = true
	cfg.DynamicIndexing = true
	cfg.CacheBypass = true
	cfg.Prefetch = true
	replayScript(t, cfg, []accessStep{
		{0, 0, 3, 1}, {2, 2, 1, 4}, {2, 7, 13, 5}, {3, 3, 6, 2}, {1, 10, 1, 2},
		{3, 6, 15, 7}, {0, 1, 8, 5}, {3, 3, 0, 0}, {2, 11, 6, 3}, {3, 6, 14, 1},
		{3, 9, 13, 7}, {3, 7, 1, 0}, {0, 3, 10, 0}, {3, 3, 9, 0}, {1, 5, 11, 3},
		{1, 4, 12, 6}, {0, 7, 5, 1}, {0, 1, 11, 0}, {0, 9, 0, 2}, {3, 0, 9, 0},
		{0, 0, 9, 0}, {3, 7, 10, 0}, {0, 4, 3, 0}, {3, 7, 2, 1}, {3, 5, 10, 0},
	})
}
