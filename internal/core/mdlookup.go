package core

import (
	"fmt"

	"d2m/internal/cache"
	"d2m/internal/energy"
	"d2m/internal/mem"
	"d2m/internal/timing"
)

// txn accumulates the critical-path latency of one access.
type txn struct {
	lat uint64
}

func (t *txn) add(cycles uint64) { t.lat += cycles }

// mdLevel says where an access found its region's active metadata.
type mdLevel uint8

const (
	mdMiss mdLevel = iota
	mdHitMD1
	mdHitMD2
)

// md2Probe finds the node's MD2 entry for region r without charging.
func (n *node) md2Probe(r mem.RegionAddr) (*nodeRegion, int, int, bool) {
	set := n.md2.SetFor(regionKey(r))
	if way, ok := n.md2.Lookup(set, uint64(r)); ok {
		return n.md2Ent[n.md2.Index(set, way)], set, way, true
	}
	return nil, set, -1, false
}

// entry returns the node's metadata entry for region r, or nil. This is
// the simulator's realization of the paper's Tracking Pointer chain: a
// tagged lookup here stands in for a constant-time pointer dereference.
func (n *node) entry(r mem.RegionAddr) *nodeRegion {
	ent, _, _, _ := n.md2Probe(r)
	return ent
}

// md1For returns the MD1 table (and payload) for the given stream.
func (n *node) md1For(instr bool) (*cache.Table, []*nodeRegion) {
	if instr {
		return n.md1i, n.md1iEnt
	}
	return n.md1d, n.md1dEnt
}

// lookupMD walks the node's metadata hierarchy for region r on behalf of
// a kind-typed access, charging latency and energy as it goes. On an MD1
// hit the LI is available after a single pipelined MD1 cycle (no TLB —
// MD1 is virtually tagged). On an MD1 miss the physically tagged MD2 is
// consulted (paying a TLB2 translation) and the entry is promoted into
// the appropriate MD1. It returns nil when the node has no metadata for
// the region (case D).
func (s *System) lookupMD(n *node, instr bool, r mem.RegionAddr, t *txn) (*nodeRegion, mdLevel) {
	if s.cfg.TraditionalL1 {
		return s.lookupMDTraditional(n, instr, r, t)
	}
	md1, pay := n.md1For(instr)
	s.meter.Do(energy.OpMD1, 1)
	t.add(timing.MD1)
	// Last-region memo: consecutive accesses overwhelmingly land in the
	// region the stream touched last, so check the remembered slot
	// before paying the hash + associative probe. The key comparison
	// against the live table makes the memo self-invalidating.
	memo := &n.memoD
	if instr {
		memo = &n.memoI
	}
	if memo.ok && memo.region == r {
		if key, valid := md1.SlotKey(memo.slot); valid && key == uint64(r) {
			md1.TouchSlot(memo.slot)
			s.st.MD1Hits++
			return pay[memo.slot], mdHitMD1
		}
		memo.ok = false
	}
	set := md1.SetFor(regionKey(r))
	if way, ok := md1.Lookup(set, uint64(r)); ok {
		i := md1.Index(set, way)
		md1.TouchSlot(i)
		s.st.MD1Hits++
		*memo = md1Memo{region: r, slot: i, ok: true}
		return pay[i], mdHitMD1
	}

	// MD1 miss: translate (TLB2) and search MD2.
	s.meter.Do(energy.OpTLB2, 1)
	s.meter.Do(energy.OpMD2, 1)
	t.add(timing.TLB2 + timing.MD2)
	ent, md2set, md2way, ok := n.md2Probe(r)
	if !ok {
		return nil, mdMiss
	}
	n.md2.Touch(md2set, md2way)
	// If the entry is active in the other MD1 (the MD2 field that says
	// "MD1-I or MD1-D", footnote 2), that MD1 must be consulted and the
	// entry migrates to the requesting stream's MD1.
	if (ent.active == activeMD1I) != instr && ent.active != activeMD2 {
		s.meter.Do(energy.OpMD1, 1)
		t.add(timing.MD1)
		n.md1Drop(ent)
	}
	n.md1Install(ent, instr)
	s.st.MD2Hits++
	return ent, mdHitMD2
}

// lookupMDTraditional is the §III-A hybrid front-end: the core carries a
// conventional TLB and tagged L1 (charged per access), there is no MD1,
// and the metadata hierarchy is consulted at MD2 on every L1 miss. The
// LI-vs-tag equivalence holds because the L1 contents are exactly the
// lines whose LI says LocL1 (metadata inclusion), so a tag hit and an
// LI hit coincide.
func (s *System) lookupMDTraditional(n *node, instr bool, r mem.RegionAddr, t *txn) (*nodeRegion, mdLevel) {
	// Conventional front-end: TLB + associative tag search on every
	// access, like the baselines (perfect way prediction: one data
	// way). A tag hit never consults the metadata; the MD2 access for
	// misses is charged by the Access path once the LI dispatch shows
	// the line is not L1-resident.
	s.meter.Do(energy.OpTLB, 1)
	s.meter.Do(energy.OpL1Tag, 1)
	ent, md2set, md2way, ok := n.md2Probe(r)
	if !ok {
		t.add(timing.TLB2 + timing.MD2)
		s.meter.Do(energy.OpTLB2, 1)
		s.meter.Do(energy.OpMD2, 1)
		return nil, mdMiss
	}
	n.md2.Touch(md2set, md2way)
	s.st.MD2Hits++
	return ent, mdHitMD2
}

// md1Install promotes ent into the stream-appropriate MD1, spilling the
// MD1 victim's LI back to MD2 (a local flag flip over the shared entry,
// charged as an MD2 write).
func (n *node) md1Install(ent *nodeRegion, instr bool) {
	md1, pay := n.md1For(instr)
	set := md1.SetFor(regionKey(ent.region))
	way := md1.VictimWayIn(set, n.md1ActiveWaysFor(instr))
	if md1.Valid(set, way) {
		victim := pay[md1.Index(set, way)]
		victim.active = activeMD2
		n.sys.meter.Do(energy.OpMD2, 1)
	}
	pay[md1.Index(set, way)] = ent
	md1.Put(set, way, uint64(ent.region))
	if instr {
		ent.active = activeMD1I
	} else {
		ent.active = activeMD1D
	}
	// Seed the stream's memo: the access that triggered this promote is
	// usually the first of a run within the region.
	memo := &n.memoD
	if instr {
		memo = &n.memoI
	}
	*memo = md1Memo{region: ent.region, slot: md1.Index(set, way), ok: true}
}

// md1Drop removes ent from whichever MD1 holds it and marks MD2 active.
func (n *node) md1Drop(ent *nodeRegion) {
	if ent.active == activeMD2 {
		return
	}
	md1, pay := n.md1For(ent.active == activeMD1I)
	set := md1.SetFor(regionKey(ent.region))
	if way, ok := md1.Lookup(set, uint64(ent.region)); ok {
		pay[md1.Index(set, way)] = nil
		md1.Invalidate(set, way)
	}
	ent.active = activeMD2
}

// md2Install places a freshly fetched region entry into the node's MD2
// (and the stream's MD1), evicting — with the full forced-eviction
// cascade — an MD2 victim if the set is full. The replacement policy
// favors regions with few locally present cachelines (§II-A).
func (s *System) md2Install(n *node, ent *nodeRegion, instr bool, t *txn) {
	set := n.md2.SetFor(regionKey(ent.region))
	way := n.md2.VictimWayScored(set, func(w int) int {
		v := n.md2Ent[n.md2.Index(set, w)]
		return -n.localLineCount(v)
	})
	if n.md2.Valid(set, way) {
		s.md2Spill(n, n.md2Ent[n.md2.Index(set, way)], t)
		// md2Spill removed the victim from the table; recompute the slot
		// in case the spill freed a different way (it frees exactly the
		// victim's way, so the lookup below is just a consistency check).
		if n.md2.Valid(set, way) {
			panic("core: MD2 victim way still valid after spill")
		}
	}
	n.md2Ent[n.md2.Index(set, way)] = ent
	n.md2.Put(set, way, uint64(ent.region))
	if !s.cfg.TraditionalL1 {
		n.md1Install(ent, instr)
	}
}

// localLineCount returns how many of the entry's lines are locally
// present (L1/L2 or replicas in the node's own NS slice).
func (n *node) localLineCount(ent *nodeRegion) int {
	count := 0
	for idx := range ent.li {
		li := ent.li[idx]
		if li.Local() {
			count++
			continue
		}
		if li.Kind == LocLLC && n.sys.llcIsLocal(li, n.id) && li.Way != WayUnresolved {
			if sl := n.sys.slices[n.id].at(n.sys.slices[n.id].setFor(ent.region.Line(idx), ent.scramble), li.Way); sl.valid && !sl.master && sl.line == ent.region.Line(idx) {
				count++
			}
		}
	}
	return count
}

// hasLocalCopies reports whether the entry tracks any locally cached
// line (the pruning precondition of §IV-A).
func (n *node) hasLocalCopies(ent *nodeRegion) bool { return n.localLineCount(ent) > 0 }

// md2Remove deletes the entry from the node's MD1/MD2 tables without any
// data movement; callers must have handled the tracked lines.
func (n *node) md2Remove(ent *nodeRegion) {
	n.md1Drop(ent)
	set := n.md2.SetFor(regionKey(ent.region))
	if way, ok := n.md2.Lookup(set, uint64(ent.region)); ok {
		n.md2Ent[n.md2.Index(set, way)] = nil
		n.md2.Invalidate(set, way)
	} else {
		panic(fmt.Sprintf("core: md2Remove: node %d has no entry for %v", n.id, ent.region))
	}
}
