package core

import (
	"fmt"

	"d2m/internal/cache"
	"d2m/internal/energy"
	"d2m/internal/mem"
)

// slot is the per-line back-metadata a tag-less data store keeps. There
// is no searchable address tag: the line identity is kept only so that
// evictions can find the line's active metadata entry (the paper's
// Tracking Pointer — constant-time in hardware, a region-keyed lookup in
// the simulator) and so that the determinism invariant can be audited.
type slot struct {
	line   mem.LineAddr
	valid  bool
	dirty  bool
	master bool
	// excl marks a master installed by a write (M/E-like): no other
	// valid copies exist, so further writes are silent. Serving a
	// remote read clears it.
	excl bool
	// rp is the Replacement Pointer: for a master line, the victim
	// location that becomes the new master on eviction (§III-B); for a
	// replica, the current master location, enabling silent replacement.
	rp Location
	// ver is the coherence-oracle version of the data the slot holds;
	// maintained only when Config.CoherenceDebug is set, and used by
	// tests to prove that every read observes the latest write.
	ver uint64
	// prefetched marks a line brought in by the prefetcher and not yet
	// touched by a demand access.
	prefetched bool
}

// dataStore is a tag-less set-associative data array (an L1, L2, or an
// LLC/NS-LLC slice in the split hierarchy). The replication heuristic's
// MRU test reads the table's own LRU stamps (every operation that would
// bump a recency stamp already bumps the table stamp at the same site,
// so a parallel recency array would be redundant bookkeeping on the
// hottest store path), and the store knows its own access cost so
// protocol code can charge uniformly.
type dataStore struct {
	name  string
	tbl   *cache.Table
	slots []slot

	op  energy.Op // dynamic energy per data-way access
	lat uint64    // access latency in cycles
	// scrambled enables dynamic indexing for this store. The paper
	// applies the per-region scramble where conflict misses hurt — the
	// LLC/NS slices; L1 indexing stays conventional.
	scrambled bool
	// activeWays masks the associativity under adaptive way
	// repartitioning: victim selection never offers a way at or above
	// this count, so ways [activeWays, ways) drain and stay empty. Zero
	// means all ways are active (every non-adaptive store).
	activeWays int
}

func newDataStore(name string, sets, ways int, op energy.Op, lat uint64) *dataStore {
	n := sets * ways
	return &dataStore{
		name:  name,
		tbl:   cache.GetTable(sets, ways),
		slots: slotArrays.Get(n),
		op:    op,
		lat:   lat,
	}
}

// release returns the store's backing arrays to the pools for reuse by
// a later newDataStore. The store must not be used afterwards.
func (s *dataStore) release() {
	cache.PutTable(s.tbl)
	slotArrays.Put(s.slots)
	s.tbl, s.slots = nil, nil
}

func (s *dataStore) ways() int { return s.tbl.Ways() }

// setFor returns the set index for line, applying the region's
// dynamic-indexing scramble (§IV-D): the scramble XORs into the index
// bits, dispersing regular (power-of-two-strided) access patterns.
func (s *dataStore) setFor(line mem.LineAddr, scramble uint64) int {
	if !s.scrambled {
		scramble = 0
	}
	return s.tbl.SetFor(uint64(line) ^ scramble)
}

// at returns the slot at (set, way).
func (s *dataStore) at(set, way int) *slot {
	return &s.slots[s.tbl.Index(set, way)]
}

// get returns the slot the metadata claims holds line, enforcing the
// determinism invariant: the metadata must never point at a slot that
// does not hold the line.
func (s *dataStore) get(set, way int, line mem.LineAddr) *slot {
	sl := s.at(set, way)
	if !sl.valid || sl.line != line {
		panic(fmt.Sprintf("core: determinism violation in %s: set %d way %d holds %v (valid=%v), metadata expected %v",
			s.name, set, way, sl.line, sl.valid, line))
	}
	return sl
}

// touch marks (set, way) most recently used.
func (s *dataStore) touch(set, way int) {
	s.tbl.Touch(set, way)
}

// isMRU reports whether (set, way) is the most recently used valid slot
// of its set — the trigger for the data-replication heuristic of §IV-C.
func (s *dataStore) isMRU(set, way int) bool {
	best, bestWay := uint64(0), -1
	for w := 0; w < s.ways(); w++ {
		i := s.tbl.Index(set, w)
		if !s.slots[i].valid {
			continue
		}
		if st := s.tbl.StampAt(i); bestWay == -1 || st > best {
			best, bestWay = st, w
		}
	}
	return bestWay == way
}

// install writes line into (set, way), which must have been freed by the
// caller.
func (s *dataStore) install(set, way int, line mem.LineAddr, master, dirty, excl bool, rp Location) *slot {
	sl := s.at(set, way)
	if sl.valid {
		panic(fmt.Sprintf("core: install into occupied slot %s set %d way %d (holds %v)", s.name, set, way, sl.line))
	}
	*sl = slot{line: line, valid: true, dirty: dirty, master: master, excl: excl, rp: rp}
	s.tbl.Put(set, way, uint64(line))
	return sl
}

// drop invalidates (set, way).
func (s *dataStore) drop(set, way int) {
	s.slots[s.tbl.Index(set, way)] = slot{}
	s.tbl.Invalidate(set, way)
}

// victimWay picks the way to free in set: invalid first, then the
// supplied preference score (higher = evict first), then LRU. Under
// adaptive way repartitioning only the active prefix of ways is
// offered.
func (s *dataStore) victimWay(set int, score func(sl *slot) int) int {
	if score == nil {
		return s.tbl.VictimWayScoredIn(set, s.activeWays, nil)
	}
	return s.tbl.VictimWayScoredIn(set, s.activeWays, func(w int) int {
		return score(s.at(set, w))
	})
}

// forEach visits every valid slot.
func (s *dataStore) forEach(fn func(set, way int, sl *slot)) {
	s.tbl.ForEach(func(set, way int, key uint64) {
		fn(set, way, s.at(set, way))
	})
}
