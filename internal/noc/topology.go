package noc

import "fmt"

// Endpoint identifies a network attachment point: node i (and its
// co-located NS-LLC slice) or the Hub, where the far-side LLC, MD3/
// directory and the memory controller live.
type Endpoint int

// Hub is the shared far-side attachment point.
const Hub Endpoint = -1

// DirEP is the baseline directory, a separate structure hanging one link
// off the hub (Figure 4 draws DIR as its own box on the interconnect).
const DirEP Endpoint = -2

// NodeEP returns the endpoint of node (or slice) i.
func NodeEP(i int) Endpoint { return Endpoint(i) }

// Topology maps endpoint pairs to hop counts. Implementations must be
// symmetric and return 0 for identical endpoints.
type Topology interface {
	// Hops returns the number of router-to-router links a message
	// crosses between the endpoints.
	Hops(a, b Endpoint) int
	// Name identifies the topology in reports.
	Name() string
}

// Crossbar is the single-hop-fabric model the paper's message counting
// corresponds to: any two distinct endpoints are two links apart
// (endpoint->switch->endpoint). This is the default topology and matches
// the calibrated energy/latency of the reproduction.
type Crossbar struct{}

// Hops implements Topology.
func (Crossbar) Hops(a, b Endpoint) int {
	if a == b {
		return 0
	}
	return 2
}

// Name implements Topology.
func (Crossbar) Name() string { return "crossbar" }

// Ring places the N nodes and the hub on a bidirectional ring:
// node 0, node 1, ..., node N-1, hub, back to node 0.
type Ring struct {
	// Nodes is the node count (the ring has Nodes+1 stops).
	Nodes int
}

// Hops implements Topology.
func (r Ring) Hops(a, b Endpoint) int {
	stops := r.Nodes + 1
	pos := func(e Endpoint) int {
		if e == Hub {
			return r.Nodes
		}
		return int(e)
	}
	d := pos(a) - pos(b)
	if d < 0 {
		d = -d
	}
	if stops-d < d {
		d = stops - d
	}
	return d
}

// Name implements Topology.
func (r Ring) Name() string { return fmt.Sprintf("ring-%d", r.Nodes) }

// Mesh arranges nodes in a W x H grid with XY routing; the hub hangs off
// the grid's right edge at row 0 (a common memory-controller placement).
type Mesh struct {
	// W and H are the grid dimensions; W*H must cover the node count.
	W, H int
}

// Hops implements Topology.
func (m Mesh) Hops(a, b Endpoint) int {
	ax, ay := m.coord(a)
	bx, by := m.coord(b)
	dx, dy := ax-bx, ay-by
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

func (m Mesh) coord(e Endpoint) (int, int) {
	if e == Hub {
		return m.W, 0
	}
	return int(e) % m.W, int(e) / m.W
}

// Name implements Topology.
func (m Mesh) Name() string { return fmt.Sprintf("mesh-%dx%d", m.W, m.H) }

// Torus is the Mesh with wrap-around links in both dimensions, halving
// worst-case distances; the hub keeps its off-grid attachment.
type Torus struct {
	// W and H are the grid dimensions; W*H must cover the node count.
	W, H int
}

// Hops implements Topology.
func (t Torus) Hops(a, b Endpoint) int {
	m := Mesh{W: t.W, H: t.H}
	// The hub hangs off the grid (no wrap links reach it): route to its
	// attachment column like the mesh does.
	if a == Hub || b == Hub {
		return m.Hops(a, b)
	}
	ax, ay := m.coord(a)
	bx, by := m.coord(b)
	dx := wrapDist(ax, bx, t.W)
	dy := wrapDist(ay, by, t.H)
	return dx + dy
}

func wrapDist(a, b, n int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if n-d < d {
		d = n - d
	}
	return d
}

// Name implements Topology.
func (t Torus) Name() string { return fmt.Sprintf("torus-%dx%d", t.W, t.H) }

// Link-level constants: a message pays routerCycles once plus
// cyclesPerHop per link, so a crossbar traversal (2 hops) costs the
// TraversalCycles the calibrated model was built with.
const (
	routerCycles = TraversalCycles - 2*cyclesPerHop
	cyclesPerHop = 4
)

// SendEP accounts one message between two endpoints under the fabric's
// topology and returns its latency. Messages between co-located
// endpoints (hops == 0) cost nothing and are not counted.
func (f *Fabric) SendEP(from, to Endpoint, class Class, cat Category) uint64 {
	hops := f.hopsBetween(from, to)
	if hops == 0 {
		return 0
	}
	f.msgs++
	if cat == D2MOnly {
		f.d2mMsgs++
	}
	f.bytes += class.Bytes()
	if class == Data {
		f.dataBytes += class.Bytes()
	}
	f.hops += uint64(hops)
	if f.meter != nil {
		f.meter.Do(energyOpFlit, class.Flits()*uint64(hops))
	}
	return uint64(routerCycles + hops*cyclesPerHop)
}

// hopsBetween resolves DirEP (one link off the hub) and delegates to the
// topology.
func (f *Fabric) hopsBetween(a, b Endpoint) int {
	if a == b {
		return 0
	}
	extra := 0
	if a == DirEP {
		a = Hub
		extra++
	}
	if b == DirEP {
		b = Hub
		extra++
	}
	return f.topo.Hops(a, b) + extra
}

// Hops returns the total link crossings accounted so far (the
// hop-weighted traffic the paper alludes to with "fewer network hops").
func (f *Fabric) Hops() uint64 { return f.hops }

// Topology returns the fabric's topology.
func (f *Fabric) Topology() Topology { return f.topo }
