package noc

import (
	"testing"

	"d2m/internal/energy"
)

func TestClassSizes(t *testing.T) {
	if Ctrl.Bytes() != 8 || Ctrl.Flits() != 1 {
		t.Errorf("Ctrl = %dB/%d flits", Ctrl.Bytes(), Ctrl.Flits())
	}
	if Data.Bytes() != 72 || Data.Flits() != 9 {
		t.Errorf("Data = %dB/%d flits", Data.Bytes(), Data.Flits())
	}
	if MD.Bytes() != 24 || MD.Flits() != 3 {
		t.Errorf("MD = %dB/%d flits", MD.Bytes(), MD.Flits())
	}
	if Class(99).Bytes() != 8 {
		t.Errorf("unknown class bytes = %d", Class(99).Bytes())
	}
}

func TestFabricAccounting(t *testing.T) {
	f := NewFabric(nil)
	lat := f.Send(Ctrl, Base)
	if lat != TraversalCycles {
		t.Errorf("latency = %d, want %d", lat, TraversalCycles)
	}
	f.Send(Data, Base)
	f.Send(MD, D2MOnly)
	if f.Messages() != 3 {
		t.Errorf("Messages = %d", f.Messages())
	}
	if f.D2MMessages() != 1 || f.BaseMessages() != 2 {
		t.Errorf("split = %d d2m / %d base", f.D2MMessages(), f.BaseMessages())
	}
	if f.Bytes() != 8+72+24 {
		t.Errorf("Bytes = %d", f.Bytes())
	}
	if f.DataBytes() != 72 {
		t.Errorf("DataBytes = %d", f.DataBytes())
	}
}

func TestFabricChargesEnergy(t *testing.T) {
	m := energy.NewMeter(energy.Default22nm())
	f := NewFabric(m)
	f.Send(Data, Base)
	// 9 flits x 2 hops.
	if got := m.Count(energy.OpNoCFlit); got != 18 {
		t.Errorf("flit energy ops = %d, want 18", got)
	}
}
