package noc

import (
	"testing"

	"d2m/internal/energy"
)

func TestCrossbarHops(t *testing.T) {
	x := Crossbar{}
	if x.Hops(NodeEP(0), NodeEP(0)) != 0 {
		t.Error("self hops != 0")
	}
	if x.Hops(NodeEP(0), NodeEP(7)) != 2 || x.Hops(NodeEP(3), Hub) != 2 {
		t.Error("crossbar distinct endpoints must be 2 hops")
	}
	if x.Name() != "crossbar" {
		t.Error("name")
	}
}

func TestRingHops(t *testing.T) {
	r := Ring{Nodes: 8} // stops: n0..n7, hub
	if r.Hops(NodeEP(0), NodeEP(0)) != 0 {
		t.Error("self")
	}
	if r.Hops(NodeEP(0), NodeEP(1)) != 1 {
		t.Error("neighbors")
	}
	if got := r.Hops(NodeEP(0), NodeEP(7)); got != 2 {
		t.Errorf("n0..n7 around the hub = %d, want 2", got)
	}
	if got := r.Hops(NodeEP(0), Hub); got != 1 {
		t.Errorf("n0-hub = %d, want 1 (hub adjacent)", got)
	}
	if got := r.Hops(NodeEP(4), Hub); got != 4 {
		t.Errorf("n4-hub = %d, want 4", got)
	}
	// Symmetry.
	for a := -1; a < 8; a++ {
		for b := -1; b < 8; b++ {
			if r.Hops(Endpoint(a), Endpoint(b)) != r.Hops(Endpoint(b), Endpoint(a)) {
				t.Fatalf("asymmetric ring hops %d-%d", a, b)
			}
		}
	}
}

func TestMeshHops(t *testing.T) {
	m := Mesh{W: 4, H: 2}
	if m.Hops(NodeEP(0), NodeEP(3)) != 3 {
		t.Error("row distance")
	}
	if m.Hops(NodeEP(0), NodeEP(4)) != 1 {
		t.Error("column distance")
	}
	if m.Hops(NodeEP(0), NodeEP(7)) != 4 {
		t.Error("diagonal distance")
	}
	if m.Hops(NodeEP(3), Hub) != 1 {
		t.Error("hub adjacency")
	}
	if m.Hops(NodeEP(4), Hub) != 5 {
		t.Error("far corner to hub")
	}
	if m.Name() != "mesh-4x2" {
		t.Error("name")
	}
}

func TestSendEP(t *testing.T) {
	meter := energy.NewMeter(energy.Default22nm())
	f := NewFabricTopology(meter, Mesh{W: 4, H: 2})
	// Local delivery: free, uncounted.
	if lat := f.SendEP(NodeEP(2), NodeEP(2), Data, Base); lat != 0 {
		t.Errorf("self send latency %d", lat)
	}
	if f.Messages() != 0 {
		t.Error("self send counted")
	}
	// One-hop neighbors are cheaper than crossing the mesh.
	near := f.SendEP(NodeEP(0), NodeEP(4), Ctrl, Base)
	far := f.SendEP(NodeEP(4), Hub, Ctrl, Base)
	if near >= far {
		t.Errorf("near (%d) not cheaper than far (%d)", near, far)
	}
	if f.Messages() != 2 {
		t.Errorf("messages = %d", f.Messages())
	}
	if f.Hops() != 1+5 {
		t.Errorf("hops = %d, want 6", f.Hops())
	}
	// Energy scales with flits x hops.
	if got := meter.Count(energy.OpNoCFlit); got != 1*1+1*5 {
		t.Errorf("flit-hops = %d, want 6", got)
	}
}

func TestLegacySendMatchesCrossbar(t *testing.T) {
	f := NewFabric(nil)
	if lat := f.Send(Ctrl, Base); lat != TraversalCycles {
		t.Errorf("legacy Send latency %d, want %d", lat, TraversalCycles)
	}
	if f.Hops() != 2 {
		t.Errorf("legacy Send hops = %d", f.Hops())
	}
	if NewFabricTopology(nil, nil).Topology().Name() != "crossbar" {
		t.Error("nil topology must default to crossbar")
	}
}

func TestDirEndpoint(t *testing.T) {
	f := NewFabric(nil)
	if lat := f.SendEP(Hub, DirEP, Ctrl, Base); lat != routerCycles+cyclesPerHop {
		t.Errorf("hub-dir latency %d", lat)
	}
	if f.Hops() != 1 {
		t.Errorf("hub-dir hops = %d", f.Hops())
	}
	f2 := NewFabricTopology(nil, Mesh{W: 4, H: 2})
	// node -> dir = node -> hub + 1.
	if got, want := f2.hopsBetween(NodeEP(4), DirEP), f2.hopsBetween(NodeEP(4), Hub)+1; got != want {
		t.Errorf("node-dir hops = %d, want %d", got, want)
	}
	if f2.hopsBetween(DirEP, DirEP) != 0 {
		t.Error("dir self not 0")
	}
}

func TestTorusHops(t *testing.T) {
	tor := Torus{W: 4, H: 2}
	mesh := Mesh{W: 4, H: 2}
	// Wrap-around: corner to corner is 1+1 on the torus, 3+1 on the mesh.
	if got := tor.Hops(NodeEP(0), NodeEP(7)); got != 2 {
		t.Errorf("torus corner-corner = %d, want 2", got)
	}
	if got := mesh.Hops(NodeEP(0), NodeEP(7)); got != 4 {
		t.Errorf("mesh corner-corner = %d, want 4", got)
	}
	// The torus never exceeds the mesh, and both are symmetric with
	// zero self-distance.
	eps := []Endpoint{Hub, NodeEP(0), NodeEP(1), NodeEP(2), NodeEP(3), NodeEP(4), NodeEP(5), NodeEP(6), NodeEP(7)}
	for _, a := range eps {
		for _, b := range eps {
			th, mh := tor.Hops(a, b), mesh.Hops(a, b)
			if th > mh {
				t.Errorf("torus(%v,%v)=%d > mesh=%d", a, b, th, mh)
			}
			if th != tor.Hops(b, a) {
				t.Errorf("torus not symmetric at (%v,%v)", a, b)
			}
			if a == b && th != 0 {
				t.Errorf("torus self-distance %d", th)
			}
		}
	}
	if (Torus{W: 4, H: 2}).Name() != "torus-4x2" {
		t.Error("torus name")
	}
}
