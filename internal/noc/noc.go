// Package noc models the on-chip interconnect that connects the nodes,
// the (far-side) LLC, the MD3/directory, and the memory controller.
//
// The model is a crossbar: every endpoint-to-endpoint transfer costs one
// traversal with a fixed latency and an energy proportional to the number
// of 8-byte flits moved across the fabric's hops. What the paper's
// Figure 5 plots — and what this package accounts — is the number of
// messages sent, split into basic coherence/data traffic and D2M-specific
// traffic (MD2 spill/fill, NewMaster updates, ...).
package noc

import "d2m/internal/energy"

// Class is the size class of a message.
type Class uint8

const (
	// Ctrl is a control message: request, invalidation, ack, metadata
	// update. One 8-byte flit.
	Ctrl Class = iota
	// Data is a cacheline-carrying message: 8-byte header plus 64 bytes
	// of data, nine flits.
	Data
	// MD is a region-metadata-carrying message (MD2 spill/fill, GetMD
	// reply): header plus a 16-line region entry, three flits.
	MD
)

// Bytes returns the size of the message class on the wire.
func (c Class) Bytes() uint64 {
	switch c {
	case Ctrl:
		return 8
	case Data:
		return 72
	case MD:
		return 24
	default:
		return 8
	}
}

// Flits returns the number of 8-byte flits the class occupies.
func (c Class) Flits() uint64 { return (c.Bytes() + 7) / 8 }

// Category distinguishes basic traffic from D2M-specific traffic for the
// dark/light split of Figure 5.
type Category uint8

const (
	// Base is ordinary data/coherence traffic that any protocol sends.
	Base Category = iota
	// D2MOnly is traffic that only the split hierarchy generates
	// (metadata spill/fill, NewMaster location updates, ...).
	D2MOnly
)

// TraversalCycles is the one-way latency of crossing the interconnect
// between any two endpoints.
const TraversalCycles = 12

// Fabric accounts interconnect traffic and charges its energy.
type Fabric struct {
	meter *energy.Meter
	topo  Topology

	msgs      uint64
	d2mMsgs   uint64
	bytes     uint64
	dataBytes uint64
	hops      uint64
}

// NewFabric returns a fabric charging energy against meter, using the
// crossbar topology. meter may be nil, in which case only traffic is
// counted.
func NewFabric(meter *energy.Meter) *Fabric {
	return &Fabric{meter: meter, topo: Crossbar{}}
}

// NewFabricTopology returns a fabric with an explicit topology.
func NewFabricTopology(meter *energy.Meter, topo Topology) *Fabric {
	if topo == nil {
		topo = Crossbar{}
	}
	return &Fabric{meter: meter, topo: topo}
}

// energyOpFlit aliases the meter operation used per flit-hop.
const energyOpFlit = energy.OpNoCFlit

// Send accounts one message between unspecified distinct endpoints —
// legacy crossbar semantics (two hops). Topology-aware call sites use
// SendEP instead.
func (f *Fabric) Send(class Class, cat Category) uint64 {
	return f.SendEP(NodeEP(0), Hub, class, cat)
}

// Messages returns the total number of messages sent.
func (f *Fabric) Messages() uint64 { return f.msgs }

// BaseMessages returns the number of non-D2M-specific messages.
func (f *Fabric) BaseMessages() uint64 { return f.msgs - f.d2mMsgs }

// D2MMessages returns the number of D2M-specific messages.
func (f *Fabric) D2MMessages() uint64 { return f.d2mMsgs }

// Bytes returns total bytes moved.
func (f *Fabric) Bytes() uint64 { return f.bytes }

// DataBytes returns bytes moved by cacheline-carrying messages only (the
// paper's "data-only traffic").
func (f *Fabric) DataBytes() uint64 { return f.dataBytes }

// Reset zeroes the traffic counters (used when a measurement window
// starts after warmup).
func (f *Fabric) Reset() {
	f.msgs, f.d2mMsgs, f.bytes, f.dataBytes, f.hops = 0, 0, 0, 0, 0
}
