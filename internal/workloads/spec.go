// Package workloads provides the synthetic statistical workload
// generators standing in for the paper's benchmark suites (§V-A):
// Parallel (Parsec), HPC (Splash2x), Mobile (Chrome/Telemetry), Server
// (SPEC CPU2006 mixes) and Database (TPC-C on MySQL/InnoDB).
//
// Each benchmark is a Spec: a set of statistical parameters calibrated
// so the generated streams reproduce the published workload
// characteristics that drive the paper's results — the L1 miss and
// late-hit ratios of Table IV, the private-region miss fraction of
// Table V, and the instruction-footprint pressure of the Mobile and
// Database suites.
//
// The data-side model is three-tier: a hot set that fits the L1, a warm
// set that fits the LLC, and a cold tail that reaches memory; shared
// data has its own hot/cold split. Line-level reuse bursts (RepeatFrac)
// produce the late hits of Table IV; the instruction side fetches
// cachelines sequentially within basic-block runs and jumps mostly into
// the hot loop body, with re-jumps modeling call/return reuse.
package workloads

import (
	"d2m/internal/mem"
	"d2m/internal/trace"
)

// Address-space layout shared by all generated programs. Code, private
// data, shared data and the migratory pool live in disjoint windows so
// region classification is driven by behaviour, not aliasing.
const (
	privateBase   = 0x0000_4000
	privateSpan   = 0x1000_0000 // 256MB per node
	codeBase      = 0x1_0000_0000
	codeNodeSpan  = 0x0100_0000 // per-node window for unshared binaries
	sharedBase    = 0x2_0000_0000
	migratoryBase = 0x3_0000_0000
	streamBase    = 0x4_0000_0000
	streamSpan    = 0x0400_0000
)

// Spec parameterizes one synthetic benchmark.
type Spec struct {
	Name  string
	Suite string
	Seed  uint64

	// --- Instruction stream ---
	// Fetches walk cachelines sequentially within a basic-block run; a
	// run ends with a jump into the hot loop body (HotJumpFrac), back
	// to a recent target (RejumpFrac — call/return reuse, the source of
	// instruction late hits), or to a random line of the full binary.
	CodeBytes    int
	HotCodeBytes int
	HotJumpFrac  float64
	RejumpFrac   float64
	JumpProb     float64
	SharedCode   bool

	// --- Data stream ---
	// Each fetch is followed by a data access with probability DataFrac.
	DataFrac  float64
	WriteFrac float64

	// RepeatFrac: probability the next data access reuses the previous
	// data line (spatial/temporal bursts; the source of data late hits).
	RepeatFrac float64

	// Private data tiers: hot (fits the L1), warm (fits the LLC), cold
	// (the full working set, reaching memory).
	HotDataBytes int
	HotDataFrac  float64
	WarmBytes    int
	WarmFrac     float64 // of the non-hot private accesses
	// WarmStrideLines spaces consecutive warm lines apart (default 1 =
	// contiguous). A large power of two recreates the conflict-miss
	// pathology of power-of-two leading dimensions (LU, §IV-D): the
	// whole reused pool aliases onto a handful of cache sets unless the
	// indexing is scrambled.
	WarmStrideLines int
	PrivateWS       int

	// Shared data: hot subset plus a cold pool.
	SharedFrac      float64 // of all data accesses
	SharedHotBytes  int
	SharedHotFrac   float64 // of shared accesses
	SharedWS        int
	SharedWriteFrac float64

	// Streaming: sequential walks, StreamReuse accesses per line, with
	// a line stride (power-of-two strides recreate §IV-D's conflict
	// pathology).
	StreamFrac  float64
	StreamBytes int
	StrideLines int
	StreamReuse int
	// VectorLines models vector/SIMD streaming kernels: each stream
	// step touches this many consecutive cachelines (the vector length,
	// in lines) before the walk advances by StrideLines. Together with
	// StrideLines it is the spatial-locality knob of the Vector suite —
	// unit-stride long vectors maximize line reuse, large strides with
	// short vectors defeat it. 0 and 1 both mean scalar streaming
	// (every step advances by the stride), the pre-Vector behaviour.
	VectorLines int

	// Migratory lines: read-modify-written by different nodes in turn.
	MigratoryLines int
	MigratoryFrac  float64
}

// stream generates one node's accesses for a Spec.
type stream struct {
	spec *Spec
	node int
	rng  *mem.RNG

	pc        mem.LineAddr
	runLeft   int
	targets   [2]mem.LineAddr // recent jump targets for re-jumps
	lastData  mem.Access
	lastWProb float64 // write probability of the last data line's pool
	hasLast   bool

	streamPtr  mem.LineAddr
	streamUses int
	burstLeft  int // consecutive lines left in the current vector burst

	// Region cursors give the cold pools the spatial locality real
	// programs have: several nearby lines are touched before moving to
	// another region. This is the property the paper's region-grained
	// metadata (and any TLB) relies on.
	coldCur, shColdCur regionCursor

	// The warm pool is a cyclic line walk (a loop over a medium-sized
	// structure): its reuse distance equals the pool size, which is
	// chosen between the L1 and L2 capacities — every revisit misses
	// the L1 and hits the next level (L2, NS slice, or LLC).
	warmPtr  mem.LineAddr
	warmUses int

	// pending holds the data access emitted after the current fetch. It
	// is a value plus flag rather than a pointer: a pointed-to access
	// escapes to the heap, which at one data access per fetch made the
	// generator the hot path's dominant allocation source.
	pending    mem.Access
	hasPending bool
}

// regionCursor walks a pool region-by-region: it stays within the
// current 1KB region for a geometrically distributed number of draws,
// and half of its region switches revisit one of the 64 most recently
// used regions. The 64kB revisit window sits between the L1 and L2
// capacities, producing the L2-scale temporal locality (loops over
// medium-sized structures) behind the paper's Base-3L L2 hit ratios.
type regionCursor struct {
	region  mem.RegionAddr
	valid   bool
	history [64]mem.RegionAddr
	hist    int
	histPos int
}

// regionSwitchProb makes a cursor touch ~16 draws per region visit.
const regionSwitchProb = 1.0 / 16

// regionRevisitProb is the chance a region switch returns to a recently
// visited region instead of a fresh one.
const regionRevisitProb = 0.5

func (c *regionCursor) pick(r *mem.RNG, base mem.Addr, bytes int) mem.Addr {
	if !c.valid || r.Bool(regionSwitchProb) {
		regions := bytes / mem.RegionBytes
		if regions < 1 {
			// Pools smaller than a region degrade to line picks.
			span := bytes / mem.LineBytes
			if span < 1 {
				span = 1
			}
			return base + mem.Addr(r.Intn(span))*mem.LineBytes
		}
		if c.hist > 0 && r.Bool(regionRevisitProb) {
			c.region = c.history[r.Intn(c.hist)]
		} else {
			c.region = (base + mem.Addr(r.Intn(regions))*mem.RegionBytes).Region()
			c.history[c.histPos] = c.region
			// Wraparound compare instead of modulo (hot-path divide).
			c.histPos++
			if c.histPos == len(c.history) {
				c.histPos = 0
			}
			if c.hist < len(c.history) {
				c.hist++
			}
		}
		c.valid = true
	}
	return c.region.Line(r.Intn(mem.LinesPerRegion)).Addr()
}

// Streams builds the per-node streams for a machine with the given node
// count.
func (sp *Spec) Streams(nodes int) []trace.Stream {
	base := mem.NewRNG(sp.Seed ^ hashName(sp.Name))
	out := make([]trace.Stream, nodes)
	for i := 0; i < nodes; i++ {
		st := &stream{
			spec: sp,
			node: i,
			rng:  base.Fork(uint64(i) + 1),
		}
		st.pc = st.jumpTarget(true)
		st.targets = [2]mem.LineAddr{st.pc, st.pc}
		st.streamPtr = st.streamStart()
		out[i] = st
	}
	return out
}

// Clone implements trace.Cloner: the returned stream continues the
// identical access sequence from the current position. Every cursor is
// a value field, so a struct copy suffices; the RNG is duplicated at
// its current position and spec is shared (immutable after Streams).
func (st *stream) Clone() trace.Stream {
	cp := *st
	cp.rng = st.rng.Clone()
	return &cp
}

// Fill implements trace.BlockStream: a batched Next. The block path
// exists so the interleaver and engine pay one dynamic dispatch per
// block instead of one per access; the generated sequence is exactly
// Next's — the loop below draws in the same order Next does (jump
// decision, fetch, data decision, data draw), stashing a data access
// that falls past the buffer into pending exactly as Next would leave
// it. Generator streams are infinite and node-independent, so Fill
// always fills the whole buffer and staging blocks per node is safe.
func (st *stream) Fill(buf []mem.Access) int {
	sp := st.spec
	r := st.rng
	node := st.node
	i := 0
	if st.hasPending && len(buf) > 0 {
		st.hasPending = false
		buf[i] = st.pending
		i++
	}
	pc, runLeft := st.pc, st.runLeft
	for i < len(buf) {
		if runLeft <= 0 || r.Bool(sp.JumpProb) {
			t := st.jumpTarget(false)
			st.targets[r.Intn(2)] = t
			pc = t
			runLeft = 2 + r.Intn(11)
		}
		buf[i] = mem.Access{Node: node, Addr: pc.Addr(), Kind: mem.IFetch}
		i++
		pc++
		runLeft--

		if r.Bool(sp.DataFrac) {
			a := st.dataAccess()
			if i < len(buf) {
				buf[i] = a
				i++
			} else {
				st.pending = a
				st.hasPending = true
			}
		}
	}
	st.pc, st.runLeft = pc, runLeft
	return len(buf)
}

func hashName(name string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

func (st *stream) codeWindow() mem.Addr {
	if st.spec.SharedCode {
		return codeBase
	}
	return codeBase + mem.Addr(st.node)*codeNodeSpan
}

// jumpTarget picks the next jump destination.
func (st *stream) jumpTarget(forceHot bool) mem.LineAddr {
	sp := st.spec
	if !forceHot && st.rng.Bool(sp.RejumpFrac) {
		return st.targets[st.rng.Intn(2)]
	}
	span := sp.CodeBytes
	if forceHot || st.rng.Bool(sp.HotJumpFrac) {
		span = sp.HotCodeBytes
	}
	if span < mem.LineBytes {
		span = mem.LineBytes
	}
	return (st.codeWindow() + mem.Addr(st.rng.Intn(span/mem.LineBytes)*mem.LineBytes)).Line()
}

func (st *stream) streamStart() mem.LineAddr {
	return (mem.Addr(streamBase) + mem.Addr(st.node)*streamSpan).Line()
}

// Next emits the node's next access.
func (st *stream) Next() mem.Access {
	if st.hasPending {
		st.hasPending = false
		return st.pending
	}
	sp := st.spec
	if st.runLeft <= 0 || st.rng.Bool(sp.JumpProb) {
		t := st.jumpTarget(false)
		st.targets[st.rng.Intn(2)] = t
		st.pc = t
		st.runLeft = 2 + st.rng.Intn(11)
	}
	fetch := mem.Access{Node: st.node, Addr: st.pc.Addr(), Kind: mem.IFetch}
	st.pc++
	st.runLeft--

	if st.rng.Bool(sp.DataFrac) {
		st.pending = st.dataAccess()
		st.hasPending = true
	}
	return fetch
}

// dataAccess draws one data reference from the Spec's mixture.
func (st *stream) dataAccess() mem.Access {
	sp := st.spec
	r := st.rng

	if st.hasLast && r.Bool(sp.RepeatFrac) {
		// Reuse burst on the previous data line, drawing the write
		// probability of the pool the line belongs to (a read-only
		// pool must not see stores on repeats).
		a := st.lastData
		if r.Bool(st.lastWProb) {
			a.Kind = mem.Store
		} else {
			a.Kind = mem.Load
		}
		return a
	}

	a := st.freshData()
	st.lastData = a
	st.hasLast = true
	return a
}

func (st *stream) freshData() mem.Access {
	sp := st.spec
	r := st.rng
	kind := mem.Load

	pick := func(base mem.Addr, bytes int) mem.Addr {
		span := bytes / mem.LineBytes
		if span < 1 {
			span = 1
		}
		return base + mem.Addr(r.Intn(span))*mem.LineBytes
	}

	switch {
	case sp.MigratoryFrac > 0 && r.Bool(sp.MigratoryFrac):
		if r.Bool(0.5) {
			kind = mem.Store
		}
		st.lastWProb = 0.5
		return mem.Access{Node: st.node, Addr: pick(migratoryBase, sp.MigratoryLines*mem.LineBytes), Kind: kind}

	case sp.SharedFrac > 0 && r.Bool(sp.SharedFrac):
		var addr mem.Addr
		if r.Bool(sp.SharedHotFrac) {
			addr = pick(sharedBase, sp.SharedHotBytes)
		} else {
			addr = st.shColdCur.pick(r, sharedBase+0x0100_0000, sp.SharedWS)
		}
		if r.Bool(sp.SharedWriteFrac) {
			kind = mem.Store
		}
		st.lastWProb = sp.SharedWriteFrac
		return mem.Access{Node: st.node, Addr: addr, Kind: kind}

	case sp.StreamFrac > 0 && r.Bool(sp.StreamFrac):
		reuse := sp.StreamReuse
		if reuse < 1 {
			reuse = 1
		}
		st.streamUses++
		if st.streamUses >= reuse {
			st.streamUses = 0
			stride := sp.StrideLines
			if stride < 1 {
				stride = 1
			}
			if st.burstLeft > 0 {
				// Continue the vector burst: the next consecutive line.
				st.burstLeft--
				st.streamPtr++
			} else {
				st.streamPtr += mem.LineAddr(stride)
				if sp.VectorLines > 1 {
					st.burstLeft = sp.VectorLines - 1
				}
			}
			limit := st.streamStart() + mem.LineAddr(maxInt(sp.StreamBytes/mem.LineBytes, 1))
			if st.streamPtr >= limit {
				st.streamPtr = st.streamStart() + mem.LineAddr(r.Intn(stride))
				st.burstLeft = 0
			}
		}
		if r.Bool(sp.WriteFrac) {
			kind = mem.Store
		}
		st.lastWProb = sp.WriteFrac
		return mem.Access{Node: st.node, Addr: st.streamPtr.Addr(), Kind: kind}

	default:
		base := mem.Addr(privateBase) + mem.Addr(st.node)*privateSpan
		var addr mem.Addr
		switch {
		case st.rng.Bool(sp.HotDataFrac):
			addr = pick(base, sp.HotDataBytes)
		case st.rng.Bool(sp.WarmFrac):
			off := mem.Addr(0x0100_0000)
			if sp.WarmStrideLines > 1 {
				off = 0x0800_0000 // strided pools span far more address space
			}
			addr = st.warmWalk(base + off)
		default:
			addr = st.coldCur.pick(r, base+0x0200_0000, sp.PrivateWS)
		}
		if r.Bool(sp.WriteFrac) {
			kind = mem.Store
		}
		st.lastWProb = sp.WriteFrac
		return mem.Access{Node: st.node, Addr: addr, Kind: kind}
	}
}

// warmWalk advances the cyclic warm-pool walk: warmReuse accesses per
// line, wrapping at the pool size, with an optional line stride.
func (st *stream) warmWalk(base mem.Addr) mem.Addr {
	lines := st.spec.WarmBytes / mem.LineBytes
	if lines < 1 {
		lines = 1
	}
	st.warmUses++
	if st.warmUses >= warmReuse {
		st.warmUses = 0
		st.warmPtr++
		if st.warmPtr >= mem.LineAddr(lines) {
			st.warmPtr = 0
		}
	}
	stride := mem.Addr(st.spec.WarmStrideLines)
	if stride < 1 {
		stride = 1
	}
	return base + mem.Addr(st.warmPtr)*stride*mem.LineBytes
}

// warmReuse is the number of consecutive accesses to each warm line
// (line-level reuse is supplied by the RepeatFrac burst mechanism).
const warmReuse = 1

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
