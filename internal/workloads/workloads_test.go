package workloads

import (
	"testing"

	"d2m/internal/mem"
	"d2m/internal/trace"
)

func TestCatalogShape(t *testing.T) {
	if got := len(All()); got != 45 {
		t.Errorf("catalog has %d benchmarks, want 45", got)
	}
	counts := map[string]int{}
	for _, sp := range All() {
		counts[sp.Suite]++
	}
	want := map[string]int{
		SuiteParallel: 13, SuiteHPC: 13, SuiteMobile: 14,
		SuiteServer: 4, SuiteDatabase: 1,
	}
	for suite, n := range want {
		if counts[suite] != n {
			t.Errorf("suite %s has %d benchmarks, want %d", suite, counts[suite], n)
		}
	}
	for _, suite := range Suites() {
		if len(BySuite(suite)) != want[suite] {
			t.Errorf("BySuite(%s) returned %d", suite, len(BySuite(suite)))
		}
	}
}

func TestByName(t *testing.T) {
	sp, ok := ByName("canneal")
	if !ok || sp.Name != "canneal" || sp.Suite != SuiteParallel {
		t.Fatalf("ByName(canneal) = %+v, %v", sp, ok)
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Error("ByName accepted a bogus name")
	}
	if len(Names()) != 45 {
		t.Errorf("Names() returned %d", len(Names()))
	}
}

func TestStreamsDeterministic(t *testing.T) {
	sp, _ := ByName("blackscholes")
	a := sp.Streams(4)
	b := sp.Streams(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 1000; j++ {
			if a[i].Next() != b[i].Next() {
				t.Fatalf("stream %d diverged at access %d", i, j)
			}
		}
	}
}

func TestStreamsDisjointPrivateData(t *testing.T) {
	sp, _ := ByName("mix1") // Server: no sharing at all
	streams := sp.Streams(4)
	owner := map[mem.LineAddr]int{}
	for i, st := range streams {
		for j := 0; j < 20000; j++ {
			a := st.Next()
			if a.Kind.IsInstr() {
				continue
			}
			line := a.Addr.Line()
			if prev, seen := owner[line]; seen && prev != i {
				t.Fatalf("data line %v touched by nodes %d and %d in a no-sharing mix", line, prev, i)
			}
			owner[line] = i
		}
	}
}

func TestSharedCodeIsShared(t *testing.T) {
	sp, _ := ByName("tpc-c")
	streams := sp.Streams(2)
	seen := [2]map[mem.LineAddr]bool{{}, {}}
	for i, st := range streams {
		for j := 0; j < 50000; j++ {
			a := st.Next()
			if a.Kind.IsInstr() {
				seen[i][a.Addr.Line()] = true
			}
		}
	}
	common := 0
	for l := range seen[0] {
		if seen[1][l] {
			common++
		}
	}
	if common == 0 {
		t.Error("shared-code benchmark produced no common instruction lines")
	}
}

func TestAccessMixRatios(t *testing.T) {
	sp, _ := ByName("barnes")
	st := sp.Streams(1)[0]
	var instr, data, writes int
	for i := 0; i < 100000; i++ {
		a := st.Next()
		if a.Kind.IsInstr() {
			instr++
		} else {
			data++
			if a.Kind.IsWrite() {
				writes++
			}
		}
	}
	if instr == 0 || data == 0 {
		t.Fatal("degenerate access mix")
	}
	ratio := float64(data) / float64(instr)
	if ratio < sp.DataFrac*0.8 || ratio > sp.DataFrac*1.2 {
		t.Errorf("data/instr ratio = %.2f, want ~%.2f", ratio, sp.DataFrac)
	}
	wf := float64(writes) / float64(data)
	if wf <= 0 || wf > 0.6 {
		t.Errorf("write fraction = %.2f out of plausible range", wf)
	}
}

func TestAddressWindows(t *testing.T) {
	sp, _ := ByName("facesim")
	st := sp.Streams(3)[2]
	for i := 0; i < 50000; i++ {
		a := st.Next()
		addr := uint64(a.Addr)
		switch {
		case a.Kind.IsInstr():
			if addr < codeBase || addr >= sharedBase {
				t.Fatalf("instruction fetch outside the code window: %#x", addr)
			}
		default:
			if addr >= codeBase && addr < sharedBase {
				t.Fatalf("data access inside the code window: %#x", addr)
			}
			if addr < codeBase && addr >= privateBase+8*privateSpan {
				t.Fatalf("private data outside every node window: %#x", addr)
			}
		}
	}
}

func TestInterleaver(t *testing.T) {
	sp, _ := ByName("fft")
	iv := trace.NewInterleaver(sp.Streams(4))
	if iv.Nodes() != 4 {
		t.Fatalf("Nodes() = %d", iv.Nodes())
	}
	for i := 0; i < 100; i++ {
		a := iv.Next()
		if a.Node != i%4 {
			t.Fatalf("access %d from node %d, want round-robin %d", i, a.Node, i%4)
		}
	}
}

func TestInterleaverPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for empty interleaver")
		}
	}()
	trace.NewInterleaver(nil)
}

func TestOutlierShapes(t *testing.T) {
	canneal, _ := ByName("canneal")
	blacks, _ := ByName("blackscholes")
	if canneal.PrivateWS <= 4*blacks.PrivateWS {
		t.Error("canneal working set not exceptionally large")
	}
	sc, _ := ByName("streamcluster")
	if sc.StreamFrac < 0.3 {
		t.Error("streamcluster not streaming-dominated")
	}
	lu, _ := ByName("lu_cb")
	if lu.WarmStrideLines&(lu.WarmStrideLines-1) != 0 || lu.WarmStrideLines < 1024 {
		t.Error("lu_cb warm stride is not a large power of two")
	}
	for _, name := range serverNames {
		sp, _ := ByName(name)
		if sp.SharedFrac != 0 || sp.SharedCode {
			t.Errorf("%s: server mixes must not share", name)
		}
	}
	db, _ := ByName("tpc-c")
	mob, _ := ByName("cnn")
	if db.CodeBytes <= mob.CodeBytes {
		t.Error("database instruction footprint should exceed mobile's")
	}
}
