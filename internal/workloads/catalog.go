package workloads

import (
	"fmt"
	"sort"
)

// Suite names, matching §V-A.
const (
	SuiteParallel = "Parallel"
	SuiteHPC      = "HPC"
	SuiteMobile   = "Mobile"
	SuiteServer   = "Server"
	SuiteDatabase = "Database"
	// SuiteVector is the strided/vector extras suite: synthetic SIMD
	// streaming kernels exercising the VectorLines spatial-locality knob.
	// It is NOT part of Suites() or Names() — the paper's catalog stays
	// at its five suites — but its members resolve through ByName and
	// BySuite like any benchmark.
	SuiteVector = "Vector"
)

// Suites returns the five suite names in the paper's presentation order.
func Suites() []string {
	return []string{SuiteParallel, SuiteHPC, SuiteMobile, SuiteServer, SuiteDatabase}
}

const kb, mb = 1 << 10, 1 << 20

// Suite templates. The fractions are derived analytically from the
// Base-2L targets of Table IV and then verified by the calibration test
// (TestCalibrationAgainstTableIV):
//
//	missI ≈ (1-RejumpFrac)·(1-HotJumpFrac)   [fresh cold-jump runs]
//	missD ≈ (1-RepeatFrac)·[ SharedFrac·(1-SharedHotFrac)
//	       + StreamFrac/StreamReuse + privFrac·(1-HotDataFrac) ]
func parallelTemplate() Spec {
	return Spec{
		Suite: SuiteParallel, SharedCode: true,
		CodeBytes: 96 * kb, HotCodeBytes: 12 * kb,
		HotJumpFrac: 0.997, RejumpFrac: 0.30, JumpProb: 0.04,
		DataFrac: 0.5, WriteFrac: 0.30, RepeatFrac: 0.34,
		HotDataBytes: 12 * kb, HotDataFrac: 0.9865,
		WarmBytes: 64 * kb, WarmFrac: 0.96, PrivateWS: 8 * mb,
		SharedFrac: 0.10, SharedHotBytes: 8 * kb, SharedHotFrac: 0.977,
		SharedWS: 8 * mb, SharedWriteFrac: 0.01,
		StreamFrac: 0.04, StreamBytes: 8 * mb, StrideLines: 1, StreamReuse: 16,
		MigratoryLines: 32, MigratoryFrac: 0.001,
	}
}

func hpcTemplate() Spec {
	return Spec{
		Suite: SuiteHPC, SharedCode: true,
		CodeBytes: 24 * kb, HotCodeBytes: 8 * kb,
		HotJumpFrac: 0.9997, RejumpFrac: 0.30, JumpProb: 0.02,
		DataFrac: 0.6, WriteFrac: 0.30, RepeatFrac: 0.42,
		HotDataBytes: 14 * kb, HotDataFrac: 0.985,
		WarmBytes: 64 * kb, WarmFrac: 0.94, PrivateWS: 12 * mb,
		SharedFrac: 0.12, SharedHotBytes: 8 * kb, SharedHotFrac: 0.979,
		SharedWS: 12 * mb, SharedWriteFrac: 0.02,
		StreamFrac: 0.08, StreamBytes: 12 * mb, StrideLines: 1, StreamReuse: 16,
		MigratoryLines: 16, MigratoryFrac: 0.001,
	}
}

func mobileTemplate() Spec {
	return Spec{
		// Chrome is multi-process: each node models its own renderer
		// process, so code pages are not shared across nodes.
		Suite: SuiteMobile, SharedCode: false,
		CodeBytes: 448 * kb, HotCodeBytes: 20 * kb,
		HotJumpFrac: 0.9655, RejumpFrac: 0.45, JumpProb: 0.06,
		DataFrac: 0.45, WriteFrac: 0.25, RepeatFrac: 0.68,
		HotDataBytes: 16 * kb, HotDataFrac: 0.979,
		WarmBytes: 64 * kb, WarmFrac: 0.96, PrivateWS: 6 * mb,
		SharedFrac: 0.05, SharedHotBytes: 8 * kb, SharedHotFrac: 0.973,
		SharedWS: 4 * mb, SharedWriteFrac: 0.01,
		MigratoryLines: 16, MigratoryFrac: 0.001,
	}
}

func serverTemplate() Spec {
	return Spec{
		Suite: SuiteServer, SharedCode: false, // independent programs
		CodeBytes: 256 * kb, HotCodeBytes: 16 * kb,
		HotJumpFrac: 0.9943, RejumpFrac: 0.30, JumpProb: 0.05,
		DataFrac: 0.55, WriteFrac: 0.30, RepeatFrac: 0.72,
		HotDataBytes: 14 * kb, HotDataFrac: 0.865,
		WarmBytes: 64 * kb, WarmFrac: 0.94, PrivateWS: 16 * mb,
		SharedFrac: 0, SharedWS: 0, // "the programs do not share any data"
	}
}

func databaseTemplate() Spec {
	return Spec{
		Suite: SuiteDatabase, SharedCode: true,
		CodeBytes: 640 * kb, HotCodeBytes: 24 * kb,
		HotJumpFrac: 0.907, RejumpFrac: 0.45, JumpProb: 0.08,
		DataFrac: 0.5, WriteFrac: 0.30, RepeatFrac: 0.56,
		HotDataBytes: 16 * kb, HotDataFrac: 0.980,
		WarmBytes: 72 * kb, WarmFrac: 0.94, PrivateWS: 24 * mb,
		SharedFrac: 0.20, SharedHotBytes: 16 * kb, SharedHotFrac: 0.988,
		SharedWS: 16 * mb, SharedWriteFrac: 0.04,
		MigratoryLines: 64, MigratoryFrac: 0.004,
	}
}

var parallelNames = []string{
	"blackscholes", "bodytrack", "canneal", "dedup", "facesim", "ferret",
	"fluidanimate", "freqmine", "raytrace", "streamcluster", "swaptions",
	"vips", "x264",
}

var hpcNames = []string{
	"barnes", "cholesky", "fft", "fmm", "lu_cb", "lu_ncb", "ocean_cp",
	"radiosity", "radix", "raytrace2", "volrend", "water_nsquared",
	"water_spatial",
}

var mobileNames = []string{
	"amazon", "answers.yahoo", "booking", "cnn", "ebay", "facebook",
	"google", "news.yahoo", "reddit", "sports.yahoo", "techcrunch",
	"twitter", "wikipedia", "youtube",
}

var serverNames = []string{"mix1", "mix2", "mix3", "mix4"}

var databaseNames = []string{"tpc-c"}

// vectorTemplate is the base spec of the Vector extras: a
// streaming-dominated kernel whose spatial pattern is set per member
// by vectorShape (VectorLines burst length × StrideLines walk stride).
func vectorTemplate() Spec {
	return Spec{
		Suite: SuiteVector, SharedCode: true,
		CodeBytes: 32 * kb, HotCodeBytes: 8 * kb,
		HotJumpFrac: 0.9995, RejumpFrac: 0.30, JumpProb: 0.02,
		DataFrac: 0.65, WriteFrac: 0.25, RepeatFrac: 0.30,
		HotDataBytes: 12 * kb, HotDataFrac: 0.98,
		WarmBytes: 64 * kb, WarmFrac: 0.94, PrivateWS: 8 * mb,
		SharedFrac: 0.06, SharedHotBytes: 8 * kb, SharedHotFrac: 0.975,
		SharedWS: 8 * mb, SharedWriteFrac: 0.01,
		StreamFrac: 0.45, StreamBytes: 32 * mb, StrideLines: 1, StreamReuse: 8,
	}
}

var vectorNames = []string{"vec-dense", "vec-tile4", "vec-stride16", "vec-scatter"}

// vectorShape sets each Vector member's spatial-locality point, from
// fully dense unit-stride bursts down to cache-hostile scatter.
func vectorShape(sp *Spec) {
	switch sp.Name {
	case "vec-dense":
		// Long unit-stride bursts: the friendliest possible layout.
		sp.VectorLines, sp.StrideLines = 16, 1
	case "vec-tile4":
		// 4-line tiles separated by a 4-line hop (blocked kernels).
		sp.VectorLines, sp.StrideLines = 4, 4
	case "vec-stride16":
		// Short 2-line touches 16 lines apart (column-major walks).
		sp.VectorLines, sp.StrideLines = 2, 16
	case "vec-scatter":
		// Single-line touches 128 lines apart: near-random spatially.
		sp.VectorLines, sp.StrideLines = 1, 128
	}
}

var catalog []*Spec
var vectorCatalog []*Spec
var byName map[string]*Spec

func init() {
	add := func(names []string, template func() Spec) {
		for _, name := range names {
			sp := template()
			sp.Name = name
			sp.Seed = hashName(name)
			jitter(&sp)
			shape(&sp)
			catalog = append(catalog, &sp)
		}
	}
	add(parallelNames, parallelTemplate)
	add(hpcNames, hpcTemplate)
	add(mobileNames, mobileTemplate)
	add(serverNames, serverTemplate)
	add(databaseNames, databaseTemplate)
	for _, name := range vectorNames {
		sp := vectorTemplate()
		sp.Name = name
		sp.Seed = hashName(name)
		jitter(&sp)
		vectorShape(&sp)
		vectorCatalog = append(vectorCatalog, &sp)
	}
	byName = make(map[string]*Spec, len(catalog)+len(vectorCatalog))
	for _, sp := range append(All(), vectorCatalog...) {
		if _, dup := byName[sp.Name]; dup {
			panic(fmt.Sprintf("workloads: duplicate benchmark %q", sp.Name))
		}
		byName[sp.Name] = sp
	}
}

// jitter perturbs footprints per benchmark so the per-benchmark bars of
// Figures 5-7 differ within a suite. The miss-driving fractions are left
// alone to preserve the Table IV calibration; the perturbation is a
// deterministic function of the name.
func jitter(sp *Spec) {
	h := hashName(sp.Name)
	scale := func(v int, bits uint) int {
		f := 0.8 + float64((h>>bits)&0xff)/256.0*0.5 // 0.8..1.3
		return int(float64(v) * f)
	}
	sp.CodeBytes = scale(sp.CodeBytes, 0)
	sp.PrivateWS = scale(sp.PrivateWS, 16)
	sp.WarmBytes = scale(sp.WarmBytes, 20)
	if sp.SharedWS > 0 {
		sp.SharedWS = scale(sp.SharedWS, 24)
	}
}

// shape applies the documented per-benchmark outliers the paper calls
// out explicitly.
func shape(sp *Spec) {
	switch sp.Name {
	case "canneal":
		// "Canneal is suffering from an exceptionally large number of
		// MD2 misses": an enormous, sparsely revisited footprint whose
		// cold accesses scatter over very many regions.
		sp.PrivateWS = 96 * mb
		sp.WarmFrac = 0.30
		sp.HotDataFrac = 0.978
		sp.SharedWS = 32 * mb
		sp.SharedFrac = 0.18
		sp.SharedHotFrac = 0.90
	case "streamcluster":
		// "dominated by L1 misses going to memory": streaming with
		// little reuse.
		sp.StreamFrac = 0.35
		sp.StreamBytes = 48 * mb
		sp.StrideLines = 1
		sp.StreamReuse = 12
		sp.SharedFrac = 0.04
	case "lu_cb", "lu_ncb":
		// Blocked LU with power-of-two leading dimensions: the
		// "malicious access pattern" motivating dynamic indexing
		// (§IV-D). The reused (warm) pool is strided so that without
		// index scrambling it aliases onto a single LLC set per slice.
		sp.HotDataFrac = 0.972 // the aliasing pool is re-swept regularly...
		sp.WriteFrac = 0.60    // ...and updated in place (factorization),
		// so the conflict cost is mostly energy/DRAM, not exposed stalls
		sp.WarmBytes = 16 * kb
		sp.WarmStrideLines = 4096
		sp.StreamFrac = 0.10
		sp.StreamBytes = 16 * mb
		sp.StrideLines = 64
		sp.StreamReuse = 16
	case "fft", "radix":
		sp.StreamFrac = 0.15
		sp.StreamBytes = 16 * mb
		sp.StrideLines = 64
		sp.StreamReuse = 16
	case "x264", "bodytrack":
		sp.StreamFrac = 0.10
		sp.StreamBytes = 8 * mb
		sp.StrideLines = 1
		sp.StreamReuse = 16
	case "tpc-c":
		// B-tree descents over a large buffer pool: nothing extra; the
		// template IS tpc-c.
	case "cnn":
		// The paper notes cnn trips the simple NS placement heuristic:
		// a large, low-locality data footprint relative to its slice.
		sp.WarmBytes = 3 * mb
		sp.WarmFrac = 0.92
		sp.HotDataFrac = 0.975
	}
}

// All returns every benchmark in catalog order (suite-major, as in the
// paper's figures).
func All() []*Spec {
	out := make([]*Spec, len(catalog))
	copy(out, catalog)
	return out
}

// BySuite returns the suite's benchmarks (including the Vector extras
// when asked for by name).
func BySuite(suite string) []*Spec {
	if suite == SuiteVector {
		out := make([]*Spec, len(vectorCatalog))
		copy(out, vectorCatalog)
		return out
	}
	var out []*Spec
	for _, sp := range catalog {
		if sp.Suite == suite {
			out = append(out, sp)
		}
	}
	return out
}

// VectorNames returns the Vector extras suite's benchmark names, in
// catalog order.
func VectorNames() []string {
	out := make([]string, len(vectorCatalog))
	for i, sp := range vectorCatalog {
		out[i] = sp.Name
	}
	return out
}

// ByName returns the named benchmark.
func ByName(name string) (*Spec, bool) {
	sp, ok := byName[name]
	return sp, ok
}

// Names returns all benchmark names, sorted.
func Names() []string {
	names := make([]string, 0, len(catalog))
	for _, sp := range catalog {
		names = append(names, sp.Name)
	}
	sort.Strings(names)
	return names
}
