package trace

import (
	"testing"

	"d2m/internal/mem"
)

func TestStreamFunc(t *testing.T) {
	n := 0
	s := StreamFunc(func() mem.Access {
		n++
		return mem.Access{Node: 2, Addr: mem.Addr(n * 64), Kind: mem.Load}
	})
	a := s.Next()
	b := s.Next()
	if a.Node != 2 || a.Addr != 64 || b.Addr != 128 {
		t.Errorf("StreamFunc produced %v then %v", a, b)
	}
}

func TestInterleaverRoundRobin(t *testing.T) {
	mk := func(node int) Stream {
		i := 0
		return StreamFunc(func() mem.Access {
			i++
			return mem.Access{Node: node, Addr: mem.Addr(i * 64)}
		})
	}
	iv := NewInterleaver([]Stream{mk(0), mk(1), mk(2)})
	if iv.Nodes() != 3 {
		t.Fatalf("Nodes() = %d", iv.Nodes())
	}
	for i := 0; i < 30; i++ {
		a := iv.Next()
		if a.Node != i%3 {
			t.Fatalf("access %d from node %d", i, a.Node)
		}
		// Each stream advances independently: the i-th turn of a node is
		// its (i/3+1)-th access.
		if a.Addr != mem.Addr((i/3+1)*64) {
			t.Fatalf("access %d addr %#x", i, uint64(a.Addr))
		}
	}
}

func TestInterleaverEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for empty stream list")
		}
	}()
	NewInterleaver(nil)
}
