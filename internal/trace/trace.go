// Package trace defines the access-stream abstractions connecting
// workload generators to the simulation engine: per-node streams, the
// round-robin interleaver that merges them into a single system-level
// stream (modeling cores progressing at the same rate), and the
// block-based refill interface the engine's tight loop consumes.
package trace

import "d2m/internal/mem"

// Stream produces one node's infinite access stream.
type Stream interface {
	// Next returns the stream's next access.
	Next() mem.Access
}

// StreamFunc adapts a function to the Stream interface.
type StreamFunc func() mem.Access

// Next calls the function.
func (f StreamFunc) Next() mem.Access { return f() }

// BlockStream is a Stream that can deliver accesses a block at a time:
// Fill writes the stream's next accesses into buf and returns how many
// it produced. The sequence is exactly the one Next would produce —
// Fill is a batched Next, not a different stream — so callers may mix
// the two freely. Infinite streams fill the whole buffer; finite,
// non-looping streams may return short counts and return 0 when
// exhausted. The engine prefers this interface: one dynamic dispatch
// per block instead of one per access is what turns the per-access
// interpreter loop into a tight loop over a buffer.
type BlockStream interface {
	Stream
	Fill(buf []mem.Access) int
}

// FillFrom is the generic adapter from per-access to block delivery: it
// fills buf by calling s.Next len(buf) times. Closure-driven streams
// that cannot implement Fill natively are still consumed through the
// block path via this helper.
func FillFrom(s Stream, buf []mem.Access) int {
	for i := range buf {
		buf[i] = s.Next()
	}
	return len(buf)
}

// Interleaver merges per-node streams round-robin, one access per node
// per turn.
type Interleaver struct {
	streams []Stream
	blocks  []BlockStream // blocks[i] non-nil when streams[i] supports Fill
	staged  bool          // every stream supports Fill: staging is safe
	next    int
	scratch []mem.Access // per-node staging for Fill, reused across calls
}

// NewInterleaver returns an interleaver over the given streams. It
// panics on an empty slice.
func NewInterleaver(streams []Stream) *Interleaver {
	if len(streams) == 0 {
		panic("trace: no streams")
	}
	iv := &Interleaver{streams: streams}
	iv.resolveBlocks()
	return iv
}

// resolveBlocks caches the per-stream BlockStream assertions so Fill
// does not repeat the type test on every refill.
func (iv *Interleaver) resolveBlocks() {
	iv.blocks = make([]BlockStream, len(iv.streams))
	iv.staged = true
	for i, s := range iv.streams {
		if bs, ok := s.(BlockStream); ok {
			iv.blocks[i] = bs
		} else {
			// Staging draws each stream a block at a time, which
			// reorders draws ACROSS streams relative to strict
			// round-robin. That is only safe when the streams are
			// independent; every native BlockStream (the catalog
			// generators, trace readers) is, but closure-driven streams
			// may share state with their siblings, so any non-block
			// stream forces the strict draw order.
			iv.staged = false
		}
	}
}

// Next returns the next access in round-robin order.
func (iv *Interleaver) Next() mem.Access {
	a := iv.streams[iv.next].Next()
	// Wraparound compare instead of modulo: the stream count is not a
	// compile-time constant, so % here is an integer divide on the
	// hottest path in the simulator.
	iv.next++
	if iv.next == len(iv.streams) {
		iv.next = 0
	}
	return a
}

// Fill implements BlockStream: it merges per-node blocks into out in
// exact round-robin order. Whole rounds are staged per node — one Fill
// call (or Next loop, for streams without block support) per stream per
// block — and transposed into the interleaved order, so the per-access
// interface dispatch of Next is paid once per node per block instead.
// Fill only produces whole accesses up to len(out) and never draws a
// stream past the last access it returns, so the underlying stream
// state after Fill(k accesses) is identical to k Next calls — the
// property warm-state snapshots rely on at the warmup boundary.
func (iv *Interleaver) Fill(out []mem.Access) int {
	n := len(iv.streams)
	if n == 1 {
		if bs := iv.blocks[0]; bs != nil {
			return bs.Fill(out)
		}
		return FillFrom(iv.streams[0], out)
	}
	if !iv.staged {
		// Mixed or closure-driven streams: preserve the strict
		// round-robin draw order.
		return FillFrom(iv, out)
	}
	filled := 0
	// Finish any partial round first so staging starts at node 0.
	for iv.next != 0 && filled < len(out) {
		out[filled] = iv.streams[iv.next].Next()
		filled++
		iv.next++
		if iv.next == n {
			iv.next = 0
		}
	}
	rounds := (len(out) - filled) / n
	if rounds == 0 {
		// The remainder is shorter than one round: emit it directly.
		for filled < len(out) {
			out[filled] = iv.streams[iv.next].Next()
			filled++
			iv.next++
			if iv.next == n {
				iv.next = 0
			}
		}
		return filled
	}
	want := rounds * n
	if cap(iv.scratch) < want {
		iv.scratch = make([]mem.Access, want)
	}
	scratch := iv.scratch[:want]
	for i := range iv.streams {
		lane := scratch[i*rounds : (i+1)*rounds]
		if bs := iv.blocks[i]; bs != nil {
			if got := bs.Fill(lane); got != rounds {
				panic("trace: interleaved stream ended mid-block")
			}
		} else {
			FillFrom(iv.streams[i], lane)
		}
	}
	// Transpose the per-node lanes into round-robin order. The
	// two-stream case (the most common topology) gets a pairwise copy
	// with no inner loop.
	if n == 2 {
		s0, s1 := scratch[:rounds], scratch[rounds:want]
		dst := out[filled : filled+want]
		for r := 0; r < rounds; r++ {
			dst[2*r] = s0[r]
			dst[2*r+1] = s1[r]
		}
		return filled + want
	}
	for r := 0; r < rounds; r++ {
		dst := out[filled+r*n : filled+(r+1)*n]
		for i := 0; i < n; i++ {
			dst[i] = scratch[i*rounds+r]
		}
	}
	return filled + want
}

// Nodes returns the number of merged streams.
func (iv *Interleaver) Nodes() int { return len(iv.streams) }

// Cloner is a Stream whose position can be duplicated: Clone returns
// an independent stream that continues the identical access sequence
// from the current position. Warm-state snapshots rely on this to
// freeze the workload mid-stream alongside the simulator state.
type Cloner interface {
	Stream
	Clone() Stream
}

// Clone returns an independent interleaver continuing the identical
// merged sequence, or false when any underlying stream does not
// implement Cloner (closure-driven generators cannot be duplicated;
// callers fall back to deterministic replay).
func (iv *Interleaver) Clone() (*Interleaver, bool) {
	cp := &Interleaver{streams: make([]Stream, len(iv.streams)), next: iv.next}
	for i, s := range iv.streams {
		c, ok := s.(Cloner)
		if !ok {
			return nil, false
		}
		cp.streams[i] = c.Clone()
	}
	cp.resolveBlocks()
	return cp, true
}
