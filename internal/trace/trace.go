// Package trace defines the access-stream abstractions connecting
// workload generators to the simulation engine: per-node streams and the
// round-robin interleaver that merges them into a single system-level
// stream, modeling cores progressing at the same rate.
package trace

import "d2m/internal/mem"

// Stream produces one node's infinite access stream.
type Stream interface {
	// Next returns the stream's next access.
	Next() mem.Access
}

// StreamFunc adapts a function to the Stream interface.
type StreamFunc func() mem.Access

// Next calls the function.
func (f StreamFunc) Next() mem.Access { return f() }

// Interleaver merges per-node streams round-robin, one access per node
// per turn.
type Interleaver struct {
	streams []Stream
	next    int
}

// NewInterleaver returns an interleaver over the given streams. It
// panics on an empty slice.
func NewInterleaver(streams []Stream) *Interleaver {
	if len(streams) == 0 {
		panic("trace: no streams")
	}
	return &Interleaver{streams: streams}
}

// Next returns the next access in round-robin order.
func (iv *Interleaver) Next() mem.Access {
	a := iv.streams[iv.next].Next()
	iv.next = (iv.next + 1) % len(iv.streams)
	return a
}

// Nodes returns the number of merged streams.
func (iv *Interleaver) Nodes() int { return len(iv.streams) }
