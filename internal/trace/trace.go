// Package trace defines the access-stream abstractions connecting
// workload generators to the simulation engine: per-node streams and the
// round-robin interleaver that merges them into a single system-level
// stream, modeling cores progressing at the same rate.
package trace

import "d2m/internal/mem"

// Stream produces one node's infinite access stream.
type Stream interface {
	// Next returns the stream's next access.
	Next() mem.Access
}

// StreamFunc adapts a function to the Stream interface.
type StreamFunc func() mem.Access

// Next calls the function.
func (f StreamFunc) Next() mem.Access { return f() }

// Interleaver merges per-node streams round-robin, one access per node
// per turn.
type Interleaver struct {
	streams []Stream
	next    int
}

// NewInterleaver returns an interleaver over the given streams. It
// panics on an empty slice.
func NewInterleaver(streams []Stream) *Interleaver {
	if len(streams) == 0 {
		panic("trace: no streams")
	}
	return &Interleaver{streams: streams}
}

// Next returns the next access in round-robin order.
func (iv *Interleaver) Next() mem.Access {
	a := iv.streams[iv.next].Next()
	iv.next = (iv.next + 1) % len(iv.streams)
	return a
}

// Nodes returns the number of merged streams.
func (iv *Interleaver) Nodes() int { return len(iv.streams) }

// Cloner is a Stream whose position can be duplicated: Clone returns
// an independent stream that continues the identical access sequence
// from the current position. Warm-state snapshots rely on this to
// freeze the workload mid-stream alongside the simulator state.
type Cloner interface {
	Stream
	Clone() Stream
}

// Clone returns an independent interleaver continuing the identical
// merged sequence, or false when any underlying stream does not
// implement Cloner (closure-driven generators cannot be duplicated;
// callers fall back to deterministic replay).
func (iv *Interleaver) Clone() (*Interleaver, bool) {
	cp := &Interleaver{streams: make([]Stream, len(iv.streams)), next: iv.next}
	for i, s := range iv.streams {
		c, ok := s.(Cloner)
		if !ok {
			return nil, false
		}
		cp.streams[i] = c.Clone()
	}
	return cp, true
}
