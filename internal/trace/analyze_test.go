package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"d2m/internal/mem"
)

func TestAnalyzerMixAndFootprint(t *testing.T) {
	z := NewAnalyzer(100)
	// 2 nodes, node 0: 4 loads over 2 lines; node 1: 2 stores + 2
	// ifetches over 2 other lines.
	l := func(n int, line mem.LineAddr, k mem.Kind) {
		z.Add(mem.Access{Node: n, Addr: line.Addr(), Kind: k})
	}
	l(0, 100, mem.Load)
	l(0, 101, mem.Load)
	l(0, 100, mem.Load)
	l(0, 101, mem.Load)
	l(1, 200, mem.Store)
	l(1, 200, mem.Store)
	l(1, 300, mem.IFetch)
	l(1, 300, mem.IFetch)
	an := z.Finish()
	if an.Accesses != 8 || an.Nodes != 2 || an.Lines != 4 {
		t.Fatalf("accesses/nodes/lines = %d/%d/%d", an.Accesses, an.Nodes, an.Lines)
	}
	if an.LoadFrac != 0.5 || an.StoreFrac != 0.25 || an.IFetchFrac != 0.25 {
		t.Fatalf("mix = %v/%v/%v", an.LoadFrac, an.StoreFrac, an.IFetchFrac)
	}
	if an.CodeLines != 1 {
		t.Fatalf("code lines = %d, want 1", an.CodeLines)
	}
	if an.SharedLines != 0 {
		t.Fatalf("no line is shared, got %v", an.SharedLines)
	}
	if an.NodeBalance != 1.0 {
		t.Fatalf("balance = %v, want 1 (4 accesses each)", an.NodeBalance)
	}
	if got := z.sortedNodes(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("nodes = %v", got)
	}
}

func TestAnalyzerSharingDegrees(t *testing.T) {
	z := NewAnalyzer(100)
	// Line 10: read by nodes 0 and 1 (read-shared). Line 11: written by
	// node 0, read by node 1 (write-shared). Line 12: private to 2.
	z.Add(mem.Access{Node: 0, Addr: mem.LineAddr(10).Addr(), Kind: mem.Load})
	z.Add(mem.Access{Node: 1, Addr: mem.LineAddr(10).Addr(), Kind: mem.Load})
	z.Add(mem.Access{Node: 0, Addr: mem.LineAddr(11).Addr(), Kind: mem.Store})
	z.Add(mem.Access{Node: 1, Addr: mem.LineAddr(11).Addr(), Kind: mem.Load})
	z.Add(mem.Access{Node: 2, Addr: mem.LineAddr(12).Addr(), Kind: mem.Load})
	an := z.Finish()
	if math.Abs(an.SharedLines-2.0/3) > 1e-9 {
		t.Errorf("SharedLines = %v, want 2/3", an.SharedLines)
	}
	if math.Abs(an.WSharedLines-1.0/3) > 1e-9 {
		t.Errorf("WSharedLines = %v, want 1/3", an.WSharedLines)
	}
}

// The reuse-distance histogram must be exact: a cyclic walk over K
// lines has every reuse at stack distance exactly K-1.
func TestAnalyzerReuseDistanceExact(t *testing.T) {
	const K = 100
	z := NewAnalyzer(10 * K)
	for i := 0; i < 10*K; i++ {
		z.Add(mem.Access{Node: 0, Addr: mem.LineAddr(i % K).Addr(), Kind: mem.Load})
	}
	an := z.Finish()
	// K-1 = 99: bits.Len(99) = 7, so CDF[6] (d < 64) must be 0 and
	// CDF[7] (d < 128) must be 1.
	if an.ReuseCDF[6] != 0 {
		t.Errorf("CDF[6] = %v, want 0 (all distances are 99)", an.ReuseCDF[6])
	}
	if an.ReuseCDF[7] != 1 {
		t.Errorf("CDF[7] = %v, want 1", an.ReuseCDF[7])
	}
	if math.Abs(an.ColdFrac-float64(K)/float64(10*K)) > 1e-9 {
		t.Errorf("ColdFrac = %v, want 0.1", an.ColdFrac)
	}
}

// An immediate re-access has stack distance zero; a two-line ping-pong
// has distance one.
func TestAnalyzerReuseDistanceSmall(t *testing.T) {
	z := NewAnalyzer(10)
	for _, line := range []mem.LineAddr{5, 5, 5, 6, 5, 6} {
		z.Add(mem.Access{Node: 0, Addr: line.Addr(), Kind: mem.Load})
	}
	an := z.Finish()
	// Reuses: 5→5 (d=0), 5→5 (d=0), 5 after 6 (d=1), 6 after 5 (d=1).
	if an.ReuseCDF[0] != 0.5 {
		t.Errorf("CDF[0] = %v, want 0.5 (two zero-distance reuses of four)", an.ReuseCDF[0])
	}
	if an.ReuseCDF[1] != 1 {
		t.Errorf("CDF[1] = %v, want 1", an.ReuseCDF[1])
	}
}

func TestAnalyzerSequentialFraction(t *testing.T) {
	z := NewAnalyzer(100)
	for i := 0; i < 64; i++ {
		z.Add(mem.Access{Node: 0, Addr: mem.LineAddr(1000 + i).Addr(), Kind: mem.Load})
	}
	an := z.Finish()
	if an.SeqFrac < 0.95 {
		t.Errorf("SeqFrac = %v for a pure stream", an.SeqFrac)
	}
}

func TestAnalyzeStreamAndReaderAgree(t *testing.T) {
	gen := func() Stream {
		i := 0
		return StreamFunc(func() mem.Access {
			i++
			return mem.Access{Node: i % 3, Addr: mem.LineAddr(i % 37).Addr(), Kind: mem.Kind(i % 3)}
		})
	}
	const n = 500
	fromStream := AnalyzeStream(gen(), n)

	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s := gen()
	for i := 0; i < n; i++ {
		if err := w.Append(s.Next()); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	fromReader := AnalyzeReader(r)
	if fromStream != fromReader {
		t.Fatalf("stream and reader analyses differ:\n%+v\n%+v", fromStream, fromReader)
	}
}

func TestAnalysisRender(t *testing.T) {
	z := NewAnalyzer(10)
	z.Add(mem.Access{Node: 0, Addr: mem.LineAddr(1).Addr(), Kind: mem.Load})
	z.Add(mem.Access{Node: 1, Addr: mem.LineAddr(1).Addr(), Kind: mem.Store})
	out := z.Finish().Render()
	for _, want := range []string{"accesses", "footprint", "sharing", "reuse distance"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q", want)
		}
	}
}

func TestAnalyzerEmpty(t *testing.T) {
	an := NewAnalyzer(0).Finish()
	if an.Accesses != 0 || an.Nodes != 0 {
		t.Fatalf("empty analysis non-zero: %+v", an)
	}
	_ = an.Render() // must not panic
}

// Past the recorded capacity, counting continues but distances stop.
func TestAnalyzerCapacity(t *testing.T) {
	z := NewAnalyzer(5)
	for i := 0; i < 20; i++ {
		z.Add(mem.Access{Node: 0, Addr: mem.LineAddr(i % 2).Addr(), Kind: mem.Load})
	}
	an := z.Finish()
	if an.Accesses != 20 {
		t.Fatalf("accesses = %d, want 20", an.Accesses)
	}
	if an.Lines != 2 {
		t.Fatalf("lines = %d, want 2", an.Lines)
	}
}
