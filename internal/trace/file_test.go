package trace

import (
	"bytes"
	"testing"
	"testing/quick"

	"d2m/internal/mem"
)

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := []mem.Access{
		{Node: 0, Addr: 0x40, Kind: mem.Load},
		{Node: 3, Addr: 0x1_0000_0040, Kind: mem.IFetch},
		{Node: 7, Addr: 0xdeadbeef00, Kind: mem.Store},
	}
	for _, a := range want {
		if err := w.Append(a); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 3 {
		t.Errorf("Count = %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 3 || r.MaxNode() != 7 {
		t.Errorf("Len=%d MaxNode=%d", r.Len(), r.MaxNode())
	}
	for i, a := range want {
		if got := r.Next(); got != a {
			t.Errorf("record %d: got %v, want %v", i, got, a)
		}
	}
}

func TestReaderLoop(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Append(mem.Access{Node: 1, Addr: 64})
	w.Flush()
	r, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	r.Loop = true
	for i := 0; i < 5; i++ {
		if a := r.Next(); a.Node != 1 {
			t.Fatal("loop replay wrong")
		}
	}
}

func TestReaderNoLoopPanics(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Append(mem.Access{Node: 1, Addr: 64})
	w.Flush()
	r, _ := ReadTrace(&buf)
	r.Next()
	defer func() {
		if recover() == nil {
			t.Error("no panic past end without Loop")
		}
	}()
	r.Next()
}

func TestReadTraceErrors(t *testing.T) {
	if _, err := ReadTrace(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ReadTrace(bytes.NewReader([]byte("NOTATRACE!"))); err == nil {
		t.Error("bad magic accepted")
	}
	// Header only, no records.
	if _, err := ReadTrace(bytes.NewReader(traceMagic[:])); err == nil {
		t.Error("empty trace accepted")
	}
	// Truncated record.
	trunc := append(append([]byte{}, traceMagic[:]...), 1, 2, 3)
	if _, err := ReadTrace(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated record accepted")
	}
	// Invalid kind.
	bad := append(append([]byte{}, traceMagic[:]...), 0, 9, 0, 0, 0, 0, 0, 0, 0, 0)
	if _, err := ReadTrace(bytes.NewReader(bad)); err == nil {
		t.Error("invalid kind accepted")
	}
}

func TestTee(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	i := 0
	src := StreamFunc(func() mem.Access {
		i++
		return mem.Access{Node: i % 4, Addr: mem.Addr(i * 64), Kind: mem.Load}
	})
	teed := Tee(src, w)
	for k := 0; k < 10; k++ {
		teed.Next()
	}
	w.Flush()
	r, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 10 {
		t.Errorf("tee recorded %d records", r.Len())
	}
	if a := r.Next(); a.Addr != 64 || a.Node != 1 {
		t.Errorf("first teed record %v", a)
	}
}

// Property: any sequence of valid accesses round-trips exactly.
func TestRoundTripProperty(t *testing.T) {
	f := func(raw []struct {
		Node uint8
		Kind uint8
		Addr uint64
	}) bool {
		if len(raw) == 0 {
			return true
		}
		var buf bytes.Buffer
		w, _ := NewWriter(&buf)
		var want []mem.Access
		for _, x := range raw {
			a := mem.Access{Node: int(x.Node), Kind: mem.Kind(x.Kind % 3), Addr: mem.Addr(x.Addr)}
			want = append(want, a)
			w.Append(a)
		}
		w.Flush()
		r, err := ReadTrace(&buf)
		if err != nil {
			return false
		}
		for _, a := range want {
			if r.Next() != a {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
