package trace

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"d2m/internal/mem"
)

// writeV2 builds a v2 trace in memory and returns the encoded bytes.
func writeV2(t *testing.T, accs []mem.Access) []byte {
	t.Helper()
	var buf bytes.Buffer
	fw, err := NewFileWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range accs {
		if err := fw.Append(a); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// randomAccesses produces a deterministic pseudo-random access mix over
// the given node count.
func randomAccesses(n, nodes int, seed int64) []mem.Access {
	rng := rand.New(rand.NewSource(seed))
	out := make([]mem.Access, n)
	for i := range out {
		out[i] = mem.Access{
			Node: rng.Intn(nodes),
			Kind: mem.Kind(rng.Intn(3)),
			Addr: mem.Addr(rng.Uint64()),
		}
	}
	return out
}

func TestV2WriteReadRoundTrip(t *testing.T) {
	want := []mem.Access{
		{Node: 0, Addr: 0x40, Kind: mem.Load},
		{Node: 3, Addr: 0x1_0000_0040, Kind: mem.IFetch},
		{Node: 7, Addr: 0xdeadbeef00, Kind: mem.Store},
		{Node: 3, Addr: 0x1_0000_0000, Kind: mem.Load}, // negative delta
		{Node: 0, Addr: 0, Kind: mem.Store},
	}
	enc := writeV2(t, want)
	r, err := ReadTrace(bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != len(want) || r.MaxNode() != 7 {
		t.Errorf("Len=%d MaxNode=%d", r.Len(), r.MaxNode())
	}
	for i, a := range want {
		if got := r.Next(); got != a {
			t.Errorf("record %d: got %v, want %v", i, got, a)
		}
	}
}

func TestV2SmallerThanV1(t *testing.T) {
	// A strided single-node stream is the format's best case: sequential
	// per-node deltas encode in 2 bytes.
	accs := make([]mem.Access, 10_000)
	for i := range accs {
		accs[i] = mem.Access{Node: 2, Kind: mem.Load, Addr: mem.Addr(i * 64)}
	}
	enc := writeV2(t, accs)
	v1Size := headerBytes + recordBytes*len(accs)
	if len(enc) >= v1Size/3 {
		t.Errorf("v2 encoded %d accesses in %d bytes; v1 would take %d — want at least 3x smaller", len(accs), len(enc), v1Size)
	}
}

func TestV2RoundTripProperty(t *testing.T) {
	f := func(raw []struct {
		Node uint8
		Kind uint8
		Addr uint64
	}) bool {
		if len(raw) == 0 {
			return true
		}
		var buf bytes.Buffer
		fw, _ := NewFileWriter(&buf)
		var want []mem.Access
		for _, x := range raw {
			a := mem.Access{
				Node: int(x.Node % MaxTraceNodes),
				Kind: mem.Kind(x.Kind % 3),
				Addr: mem.Addr(x.Addr),
			}
			want = append(want, a)
			if err := fw.Append(a); err != nil {
				return false
			}
		}
		if fw.Close() != nil {
			return false
		}
		r, err := ReadTrace(&buf)
		if err != nil {
			return false
		}
		for _, a := range want {
			if r.Next() != a {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFileWriterRejectsBadAccesses(t *testing.T) {
	fw, _ := NewFileWriter(&bytes.Buffer{})
	if err := fw.Append(mem.Access{Node: MaxTraceNodes}); err == nil {
		t.Error("node out of range accepted")
	}
	fw, _ = NewFileWriter(&bytes.Buffer{})
	if err := fw.Append(mem.Access{Kind: mem.Kind(7)}); err == nil {
		t.Error("invalid kind accepted")
	}
}

// TestFileReaderMatchesReader is the replay differential: the chunked
// FileReader must produce byte-identical access sequences to the
// in-memory Reader, across both Next and blocked Fill, for both format
// versions.
func TestFileReaderMatchesReader(t *testing.T) {
	want := randomAccesses(5000, 8, 1)

	encode := map[string][]byte{}
	encode["v2"] = writeV2(t, want)
	var v1 bytes.Buffer
	w, _ := NewWriter(&v1)
	for _, a := range want {
		w.Append(a)
	}
	w.Flush()
	encode["v1"] = v1.Bytes()

	for name, enc := range encode {
		t.Run(name, func(t *testing.T) {
			mr, err := ReadTrace(bytes.NewReader(enc))
			if err != nil {
				t.Fatal(err)
			}
			fr, err := NewFileReader(bytes.NewReader(enc), int64(len(enc)))
			if err != nil {
				t.Fatal(err)
			}
			if fr.Len() != uint64(len(want)) {
				t.Fatalf("Len = %d, want %d", fr.Len(), len(want))
			}
			// Mixed Next / Fill with odd block sizes exercises records
			// straddling chunk boundaries.
			buf := make([]mem.Access, 0, 97)
			i := 0
			for i < len(want) {
				if i%5 == 0 {
					if got := fr.Next(); got != mr.Next() || got != want[i] {
						t.Fatalf("record %d mismatch: %v want %v", i, got, want[i])
					}
					i++
					continue
				}
				n := 97
				if rem := len(want) - i; n > rem {
					n = rem
				}
				got := buf[:n]
				if fr.Fill(got) != n {
					t.Fatalf("short Fill at %d", i)
				}
				ref := make([]mem.Access, n)
				mr.Fill(ref)
				for k := 0; k < n; k++ {
					if got[k] != ref[k] || got[k] != want[i+k] {
						t.Fatalf("record %d mismatch: %v want %v", i+k, got[k], want[i+k])
					}
				}
				i += n
			}
			// Exhausted without Loop: Fill returns 0.
			if n := fr.Fill(buf[:1]); n != 0 {
				t.Errorf("Fill past end = %d, want 0", n)
			}
		})
	}
}

func TestFileReaderLoop(t *testing.T) {
	want := randomAccesses(333, 4, 2)
	enc := writeV2(t, want)
	fr, err := NewFileReader(bytes.NewReader(enc), int64(len(enc)))
	if err != nil {
		t.Fatal(err)
	}
	fr.Loop = true
	for i := 0; i < 3*len(want); i++ {
		if got := fr.Next(); got != want[i%len(want)] {
			t.Fatalf("looped record %d: got %v, want %v", i, got, want[i%len(want)])
		}
	}
}

func TestFileReaderNoLoopPanics(t *testing.T) {
	enc := writeV2(t, []mem.Access{{Node: 1, Addr: 64}})
	fr, _ := NewFileReader(bytes.NewReader(enc), int64(len(enc)))
	fr.Next()
	defer func() {
		if recover() == nil {
			t.Error("no panic past end without Loop")
		}
	}()
	fr.Next()
}

// TestFileReaderCloneMidReplay pins the warm-snapshot contract: a clone
// taken mid-replay continues the identical sequence, independently of
// the original, including across a Loop wrap.
func TestFileReaderCloneMidReplay(t *testing.T) {
	want := randomAccesses(2000, 8, 3)
	enc := writeV2(t, want)
	fr, err := NewFileReader(bytes.NewReader(enc), int64(len(enc)))
	if err != nil {
		t.Fatal(err)
	}
	fr.Loop = true
	// Advance into the middle (not on a block boundary).
	for i := 0; i < 1234; i++ {
		fr.Next()
	}
	c1 := fr.Clone().(*FileReader)
	c2 := fr.Clone().(*FileReader)
	// All three must agree for longer than the remaining trace (forces a
	// wrap) and the clones must not disturb each other.
	for i := 0; i < 3000; i++ {
		a, b, c := fr.Next(), c1.Next(), c2.Next()
		if a != b || a != c {
			t.Fatalf("clone diverged at %d: %v %v %v", i, a, b, c)
		}
		if want[(1234+i)%len(want)] != a {
			t.Fatalf("replay wrong at %d: %v", i, a)
		}
	}
}

func TestV2Rejections(t *testing.T) {
	good := writeV2(t, randomAccesses(100, 4, 4))

	check := func(name string, mangle func([]byte) []byte) {
		enc := mangle(append([]byte{}, good...))
		if _, err := ReadTrace(bytes.NewReader(enc)); err == nil {
			t.Errorf("%s: ReadTrace accepted", name)
		}
		if _, err := Validate(bytes.NewReader(enc), int64(len(enc))); err == nil {
			t.Errorf("%s: Validate accepted", name)
		}
	}

	// Torn: footer missing entirely (crash mid-write).
	check("missing footer", func(b []byte) []byte { return b[:len(b)-footerBytes] })
	// Truncated mid-body: footer bytes land where records should be.
	check("truncated body", func(b []byte) []byte { return b[:len(b)/2] })
	// Bit rot in the body flips the CRC.
	check("corrupt body", func(b []byte) []byte { b[headerBytes+3] ^= 0x40; return b })
	// Footer count lies.
	check("count mismatch", func(b []byte) []byte {
		binary.LittleEndian.PutUint64(b[len(b)-8:], 7)
		return b
	})
	// Zero-record file.
	var empty bytes.Buffer
	fw, _ := NewFileWriter(&empty)
	fw.Close()
	if _, err := ReadTrace(bytes.NewReader(empty.Bytes())); err == nil {
		t.Error("empty v2 trace accepted")
	}
	if _, err := NewFileReader(bytes.NewReader(empty.Bytes()), int64(empty.Len())); err == nil {
		t.Error("NewFileReader accepted empty trace")
	}

	// The unmangled file passes both paths.
	if _, err := ReadTrace(bytes.NewReader(good)); err != nil {
		t.Errorf("good file rejected: %v", err)
	}
	sum, err := Validate(bytes.NewReader(good), int64(len(good)))
	if err != nil {
		t.Errorf("good file failed Validate: %v", err)
	}
	if sum.Version != 2 || sum.Count != 100 {
		t.Errorf("Summary = %+v", sum)
	}
}

func TestValidateV1(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for _, a := range randomAccesses(50, 3, 5) {
		w.Append(a)
	}
	w.Flush()
	sum, err := Validate(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Version != 1 || sum.Count != 50 {
		t.Errorf("Summary = %+v", sum)
	}
	// Torn v1: trailing partial record.
	torn := append(buf.Bytes(), 0xaa)
	if _, err := Validate(bytes.NewReader(torn), int64(len(torn))); err == nil {
		t.Error("torn v1 accepted")
	}
}

func TestImportCSV(t *testing.T) {
	src := strings.Join([]string{
		"# trace of a toy kernel",
		"0, i, 0x1000",
		"0, load, 4096",
		"1, W, 0x2040",
		"",
		"3, read, 0x2080",
	}, "\n")
	var bin bytes.Buffer
	n, err := ImportCSV(strings.NewReader(src), &bin)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("imported %d records, want 4", n)
	}
	r, err := ReadTrace(&bin)
	if err != nil {
		t.Fatal(err)
	}
	want := []mem.Access{
		{Node: 0, Kind: mem.IFetch, Addr: 0x1000},
		{Node: 0, Kind: mem.Load, Addr: 4096},
		{Node: 1, Kind: mem.Store, Addr: 0x2040},
		{Node: 3, Kind: mem.Load, Addr: 0x2080},
	}
	for i, a := range want {
		if got := r.Next(); got != a {
			t.Errorf("record %d: got %v, want %v", i, got, a)
		}
	}

	for name, bad := range map[string]string{
		"missing field": "0, load",
		"bad node":      "x, load, 0x40",
		"node range":    "64, load, 0x40",
		"bad kind":      "0, jump, 0x40",
		"bad addr":      "0, load, banana",
		"empty":         "# only a comment\n",
	} {
		if _, err := ImportCSV(strings.NewReader(bad), &bytes.Buffer{}); err == nil {
			t.Errorf("%s: accepted %q", name, bad)
		}
	}
}
