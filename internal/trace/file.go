package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"strconv"
	"strings"

	"d2m/internal/mem"
)

// Binary trace formats.
//
// v1 (legacy, still readable): an 8-byte header ("D2MTRC" + 2-byte
// version) followed by fixed 10-byte records: node (uint8), kind
// (uint8), address (uint64 little-endian). Trivial, but 10 bytes per
// access and no way to tell a torn file from a complete one.
//
// v2 (current, what Writer-side APIs produce): the same 8-byte header
// with version 2, then one variable-length record per access — a
// control byte (kind in bits 0-1, node in bits 2-7) followed by the
// zigzag-varint delta of the address against the SAME NODE's previous
// address. Per-node deltas make both the instruction stream (mostly
// +1 line) and strided data streams encode in 2-3 bytes instead of 10.
// The file ends in a fixed 24-byte footer carrying the record count,
// the largest node id and a CRC-32 of the record bytes, so torn or
// truncated files are rejected (no footer) and bit rot is caught at
// ingest (CRC mismatch).
var (
	traceMagic   = [8]byte{'D', '2', 'M', 'T', 'R', 'C', 0, 1}
	traceMagicV2 = [8]byte{'D', '2', 'M', 'T', 'R', 'C', 0, 2}
	footerMagic  = [8]byte{'D', '2', 'M', 'E', 'N', 'D', 0, 2}
)

const (
	recordBytes = 10 // v1 fixed record size
	headerBytes = 8
	// footerBytes is the v2 trailer: magic (8), max node (1), zero pad
	// (3), CRC-32/IEEE of the record bytes (4), record count (8).
	footerBytes = 24
	// maxRecordBytes bounds one v2 record: control byte + 10-byte
	// varint.
	maxRecordBytes = 11
	// MaxTraceNodes bounds node ids representable in the v2 control
	// byte (6 bits). The simulator itself caps machines at 8 nodes.
	MaxTraceNodes = 64
)

// zigzag encodes a signed delta as an unsigned varint payload.
func zigzag(d int64) uint64 { return uint64(d<<1) ^ uint64(d>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Writer streams accesses to an io.Writer in the v1 binary format. It
// is kept for compatibility with externally produced v1 traces; new
// code writes v2 via FileWriter.
type Writer struct {
	w   *bufio.Writer
	n   uint64
	err error
}

// NewWriter writes the v1 header and returns a trace writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(traceMagic[:]); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	return &Writer{w: bw}, nil
}

// Append writes one access record.
func (tw *Writer) Append(a mem.Access) error {
	if tw.err != nil {
		return tw.err
	}
	var rec [recordBytes]byte
	rec[0] = byte(a.Node)
	rec[1] = byte(a.Kind)
	binary.LittleEndian.PutUint64(rec[2:], uint64(a.Addr))
	if _, err := tw.w.Write(rec[:]); err != nil {
		tw.err = fmt.Errorf("trace: writing record: %w", err)
		return tw.err
	}
	tw.n++
	return nil
}

// Count returns the number of records written.
func (tw *Writer) Count() uint64 { return tw.n }

// Flush flushes buffered records.
func (tw *Writer) Flush() error {
	if tw.err != nil {
		return tw.err
	}
	return tw.w.Flush()
}

// FileWriter streams accesses to an io.Writer in the v2 binary format.
// Close writes the footer; a file without one is rejected by every
// reader, which is what makes torn writes detectable.
type FileWriter struct {
	w       *bufio.Writer
	crc     uint32
	last    [MaxTraceNodes]uint64
	n       uint64
	maxNode int
	err     error
}

// NewFileWriter writes the v2 header and returns the writer.
func NewFileWriter(w io.Writer) (*FileWriter, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(traceMagicV2[:]); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	return &FileWriter{w: bw}, nil
}

// Append writes one access record.
func (fw *FileWriter) Append(a mem.Access) error {
	if fw.err != nil {
		return fw.err
	}
	if a.Node < 0 || a.Node >= MaxTraceNodes {
		fw.err = fmt.Errorf("trace: node %d out of range 0..%d", a.Node, MaxTraceNodes-1)
		return fw.err
	}
	if a.Kind > mem.Store {
		fw.err = fmt.Errorf("trace: invalid access kind %d", a.Kind)
		return fw.err
	}
	var rec [maxRecordBytes]byte
	rec[0] = byte(a.Kind) | byte(a.Node)<<2
	d := int64(uint64(a.Addr) - fw.last[a.Node])
	n := 1 + binary.PutUvarint(rec[1:], zigzag(d))
	fw.last[a.Node] = uint64(a.Addr)
	fw.crc = crc32.Update(fw.crc, crc32.IEEETable, rec[:n])
	if _, err := fw.w.Write(rec[:n]); err != nil {
		fw.err = fmt.Errorf("trace: writing record: %w", err)
		return fw.err
	}
	fw.n++
	if a.Node > fw.maxNode {
		fw.maxNode = a.Node
	}
	return nil
}

// Count returns the number of records written.
func (fw *FileWriter) Count() uint64 { return fw.n }

// Close writes the footer and flushes. The writer is unusable after.
func (fw *FileWriter) Close() error {
	if fw.err != nil {
		return fw.err
	}
	var ft [footerBytes]byte
	copy(ft[:8], footerMagic[:])
	ft[8] = byte(fw.maxNode)
	binary.LittleEndian.PutUint32(ft[12:16], fw.crc)
	binary.LittleEndian.PutUint64(ft[16:24], fw.n)
	if _, err := fw.w.Write(ft[:]); err != nil {
		return fmt.Errorf("trace: writing footer: %w", err)
	}
	return fw.w.Flush()
}

// decodeV2 decodes one v2 record from b, updating the per-node address
// state, and returns the access and the bytes consumed.
func decodeV2(b []byte, last *[MaxTraceNodes]uint64) (mem.Access, int, error) {
	ctrl := b[0]
	kind := mem.Kind(ctrl & 3)
	if kind > mem.Store {
		return mem.Access{}, 0, fmt.Errorf("trace: invalid kind %d in record", ctrl&3)
	}
	node := int(ctrl >> 2)
	u, n := binary.Uvarint(b[1:])
	if n <= 0 {
		return mem.Access{}, 0, fmt.Errorf("trace: truncated or oversized address varint")
	}
	addr := last[node] + uint64(unzigzag(u))
	last[node] = addr
	return mem.Access{Node: node, Kind: kind, Addr: mem.Addr(addr)}, 1 + n, nil
}

// parseFooter validates a v2 trailer and returns its fields.
func parseFooter(ft []byte) (count uint64, maxNode int, crc uint32, err error) {
	if len(ft) != footerBytes || string(ft[:8]) != string(footerMagic[:]) {
		return 0, 0, 0, fmt.Errorf("trace: missing footer (file is torn, truncated or not a trace)")
	}
	return binary.LittleEndian.Uint64(ft[16:24]), int(ft[8]),
		binary.LittleEndian.Uint32(ft[12:16]), nil
}

// Tee wraps a stream so that every produced access is also recorded.
func Tee(s Stream, tw *Writer) Stream {
	return StreamFunc(func() mem.Access {
		a := s.Next()
		// A write error is remembered by the writer; recording must not
		// perturb the simulation.
		_ = tw.Append(a)
		return a
	})
}

// Reader replays a fully in-memory trace.
type Reader struct {
	records []mem.Access
	pos     int
	// Loop makes Next wrap around at the end instead of panicking,
	// allowing warmup+measure windows longer than the trace.
	Loop bool
}

// ReadTrace loads an entire trace (either format version) into memory.
// v2 payloads are CRC-checked; a missing or malformed footer, a record
// count that does not match, or trailing bytes all reject the file —
// the torn-write guarantees the chunked FileReader gets from ingest
// validation hold here directly.
func ReadTrace(r io.Reader) (*Reader, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("trace: reading: %w", err)
	}
	if len(data) < headerBytes {
		return nil, fmt.Errorf("trace: short file (%d bytes)", len(data))
	}
	switch {
	case string(data[:headerBytes]) == string(traceMagic[:]):
		return readV1(data[headerBytes:])
	case string(data[:headerBytes]) == string(traceMagicV2[:]):
		return readV2(data[headerBytes:])
	default:
		return nil, fmt.Errorf("trace: bad magic %q", data[:headerBytes])
	}
}

func readV1(body []byte) (*Reader, error) {
	if len(body)%recordBytes != 0 {
		return nil, fmt.Errorf("trace: torn v1 file: %d trailing bytes after the last whole record", len(body)%recordBytes)
	}
	out := &Reader{records: make([]mem.Access, 0, len(body)/recordBytes)}
	for off := 0; off < len(body); off += recordBytes {
		rec := body[off : off+recordBytes]
		kind := mem.Kind(rec[1])
		if kind > mem.Store {
			return nil, fmt.Errorf("trace: record %d has invalid kind %d", len(out.records), rec[1])
		}
		out.records = append(out.records, mem.Access{
			Node: int(rec[0]),
			Kind: kind,
			Addr: mem.Addr(binary.LittleEndian.Uint64(rec[2:])),
		})
	}
	if len(out.records) == 0 {
		return nil, fmt.Errorf("trace: empty trace")
	}
	return out, nil
}

func readV2(rest []byte) (*Reader, error) {
	if len(rest) < footerBytes {
		return nil, fmt.Errorf("trace: missing footer (file is torn, truncated or not a trace)")
	}
	body := rest[:len(rest)-footerBytes]
	count, maxNode, crc, err := parseFooter(rest[len(rest)-footerBytes:])
	if err != nil {
		return nil, err
	}
	if count == 0 {
		return nil, fmt.Errorf("trace: empty trace")
	}
	if got := crc32.ChecksumIEEE(body); got != crc {
		return nil, fmt.Errorf("trace: body CRC mismatch (got %08x, footer says %08x)", got, crc)
	}
	out := &Reader{records: make([]mem.Access, 0, count)}
	var last [MaxTraceNodes]uint64
	for off := 0; off < len(body); {
		a, n, err := decodeV2(body[off:], &last)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", len(out.records), err)
		}
		if a.Node > maxNode {
			return nil, fmt.Errorf("trace: record %d uses node %d but footer says max %d", len(out.records), a.Node, maxNode)
		}
		out.records = append(out.records, a)
		off += n
	}
	if uint64(len(out.records)) != count {
		return nil, fmt.Errorf("trace: decoded %d records but footer says %d", len(out.records), count)
	}
	return out, nil
}

// Len returns the number of records.
func (r *Reader) Len() int { return len(r.records) }

// Next returns the next recorded access, wrapping if Loop is set.
func (r *Reader) Next() mem.Access {
	if r.pos >= len(r.records) {
		if !r.Loop {
			panic("trace: replay ran past the end of the trace (set Loop to wrap)")
		}
		r.pos = 0
	}
	a := r.records[r.pos]
	r.pos++
	return a
}

// Fill implements BlockStream: batched Next. Without Loop it returns
// short counts at the end of the trace and 0 once exhausted.
func (r *Reader) Fill(buf []mem.Access) int {
	i := 0
	for i < len(buf) {
		if r.pos >= len(r.records) {
			if !r.Loop {
				return i
			}
			r.pos = 0
		}
		n := copy(buf[i:], r.records[r.pos:])
		i += n
		r.pos += n
	}
	return i
}

// Clone returns an independent reader continuing the identical sequence
// from the current position (the records are shared, the cursor is not).
func (r *Reader) Clone() Stream {
	cp := *r
	return &cp
}

// MaxNode returns the largest node id appearing in the trace.
func (r *Reader) MaxNode() int {
	max := 0
	for _, a := range r.records {
		if a.Node > max {
			max = a.Node
		}
	}
	return max
}

// Summary describes a validated trace file.
type Summary struct {
	// Version is the format version (1 or 2).
	Version int
	// Count is the number of access records.
	Count uint64
	// MaxNode is the largest node id used.
	MaxNode int
}

// Validate fully checks a trace file through an io.ReaderAt without
// loading it into memory: header, every record, and (v2) the footer's
// count, max-node and CRC against the actual body. This is the ingest
// gate — once a file passes, FileReader can replay it without
// re-verifying.
func Validate(src io.ReaderAt, size int64) (Summary, error) {
	fr, err := NewFileReader(src, size)
	if err != nil {
		return Summary{}, err
	}
	var (
		crc     uint32
		maxNode int
		count   uint64
		last    [MaxTraceNodes]uint64
	)
	buf := make([]byte, fileChunkBytes)
	tail := 0 // undecoded bytes carried from the previous chunk
	for off := int64(0); off < fr.bodyLen; {
		want := int64(len(buf) - tail)
		if rem := fr.bodyLen - off; want > rem {
			want = rem
		}
		n, err := src.ReadAt(buf[tail:tail+int(want)], fr.bodyOff+off)
		if n != int(want) {
			return Summary{}, fmt.Errorf("trace: reading body at %d: %w", off, err)
		}
		if fr.version == 2 {
			crc = crc32.Update(crc, crc32.IEEETable, buf[tail:tail+n])
		}
		off += int64(n)
		avail := tail + n
		pos := 0
		for {
			if avail-pos < maxRecordBytes && off < fr.bodyLen {
				break // record may straddle the chunk boundary; refill
			}
			if pos == avail {
				break
			}
			var a mem.Access
			var rn int
			if fr.version == 1 {
				if avail-pos < recordBytes {
					return Summary{}, fmt.Errorf("trace: torn v1 file: partial trailing record")
				}
				rec := buf[pos : pos+recordBytes]
				kind := mem.Kind(rec[1])
				if kind > mem.Store {
					return Summary{}, fmt.Errorf("trace: record %d has invalid kind %d", count, rec[1])
				}
				a = mem.Access{Node: int(rec[0])}
				a.Kind = kind
				rn = recordBytes
			} else {
				var derr error
				a, rn, derr = decodeV2(buf[pos:avail], &last)
				if derr != nil {
					return Summary{}, fmt.Errorf("trace: record %d: %w", count, derr)
				}
			}
			pos += rn
			count++
			if a.Node > maxNode {
				maxNode = a.Node
			}
		}
		copy(buf, buf[pos:avail])
		tail = avail - pos
	}
	if tail != 0 {
		return Summary{}, fmt.Errorf("trace: %d trailing bytes after the last whole record", tail)
	}
	if count != fr.count {
		return Summary{}, fmt.Errorf("trace: decoded %d records but expected %d", count, fr.count)
	}
	if fr.version == 2 {
		if crc != fr.crc {
			return Summary{}, fmt.Errorf("trace: body CRC mismatch (got %08x, footer says %08x)", crc, fr.crc)
		}
		if maxNode != fr.maxNode {
			return Summary{}, fmt.Errorf("trace: max node %d does not match footer's %d", maxNode, fr.maxNode)
		}
	}
	return Summary{Version: fr.version, Count: count, MaxNode: maxNode}, nil
}

// fileChunkBytes is FileReader's read granularity. It bounds the
// reader's resident memory regardless of trace size: a multi-GiB trace
// replays through this one buffer.
const fileChunkBytes = 256 << 10

// FileReader replays a trace file through chunked positional reads —
// the whole file is never resident, so multi-GiB traces replay with a
// fixed memory footprint. It implements Stream, BlockStream and Cloner;
// clones share the underlying io.ReaderAt (concurrent use is safe when
// the source's ReadAt is, as os.File's is) but carry their own cursor
// and buffer, which is what lets warm-state snapshots freeze a replay
// mid-trace.
type FileReader struct {
	src     io.ReaderAt
	version int
	bodyOff int64
	bodyLen int64
	count   uint64
	maxNode int
	crc     uint32 // v2 footer CRC (checked by Validate, not per-replay)

	// Loop makes the reader wrap at the end instead of reporting
	// exhaustion, for warmup+measure windows longer than the trace.
	Loop bool

	pos  int64  // body offset of the next undecoded byte
	read uint64 // records decoded this pass
	last [MaxTraceNodes]uint64

	buf    []byte
	bufPos int // next undecoded byte within buf
	bufLen int // valid bytes in buf
}

// NewFileReader opens a trace file (either version) over a positional
// reader. The header and (v2) footer are validated here — torn or
// truncated files are rejected — but the body is only decoded as it is
// replayed; run Validate first on untrusted files.
func NewFileReader(src io.ReaderAt, size int64) (*FileReader, error) {
	var hdr [headerBytes]byte
	if size < headerBytes {
		return nil, fmt.Errorf("trace: short file (%d bytes)", size)
	}
	if n, err := src.ReadAt(hdr[:], 0); n != headerBytes {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	fr := &FileReader{src: src, bodyOff: headerBytes}
	switch {
	case hdr == traceMagic:
		fr.version = 1
		fr.bodyLen = size - headerBytes
		if fr.bodyLen%recordBytes != 0 {
			return nil, fmt.Errorf("trace: torn v1 file: %d trailing bytes after the last whole record", fr.bodyLen%recordBytes)
		}
		fr.count = uint64(fr.bodyLen / recordBytes)
		fr.maxNode = MaxTraceNodes - 1 // v1 carries no footer; unknown until read
	case hdr == traceMagicV2:
		fr.version = 2
		if size < headerBytes+footerBytes {
			return nil, fmt.Errorf("trace: missing footer (file is torn, truncated or not a trace)")
		}
		var ft [footerBytes]byte
		if n, err := src.ReadAt(ft[:], size-footerBytes); n != footerBytes {
			return nil, fmt.Errorf("trace: reading footer: %w", err)
		}
		count, maxNode, crc, err := parseFooter(ft[:])
		if err != nil {
			return nil, err
		}
		fr.bodyLen = size - headerBytes - footerBytes
		fr.count, fr.maxNode, fr.crc = count, maxNode, crc
	default:
		return nil, fmt.Errorf("trace: bad magic %q", hdr[:])
	}
	if fr.count == 0 {
		return nil, fmt.Errorf("trace: empty trace")
	}
	return fr, nil
}

// Len returns the number of records in the trace.
func (fr *FileReader) Len() uint64 { return fr.count }

// MaxNode returns the largest node id the trace uses (v2; for v1 files
// it is only an upper bound until the file has been validated).
func (fr *FileReader) MaxNode() int { return fr.maxNode }

// Version returns the trace format version.
func (fr *FileReader) Version() int { return fr.version }

// rewind restarts the replay from record zero.
func (fr *FileReader) rewind() {
	fr.pos, fr.read = 0, 0
	fr.last = [MaxTraceNodes]uint64{}
	fr.bufPos, fr.bufLen = 0, 0
}

// refill slides the undecoded tail to the buffer's front and reads the
// next chunk behind it.
func (fr *FileReader) refill() {
	if fr.buf == nil {
		fr.buf = make([]byte, fileChunkBytes)
	}
	copy(fr.buf, fr.buf[fr.bufPos:fr.bufLen])
	fr.bufLen -= fr.bufPos
	fr.bufPos = 0
	fileOff := fr.pos + int64(fr.bufLen)
	want := int64(len(fr.buf) - fr.bufLen)
	if rem := fr.bodyLen - fileOff; want > rem {
		want = rem
	}
	if want <= 0 {
		return
	}
	n, err := fr.src.ReadAt(fr.buf[fr.bufLen:fr.bufLen+int(want)], fr.bodyOff+fileOff)
	if int64(n) != want {
		panic(fmt.Sprintf("trace: reading body at %d: %v", fileOff, err))
	}
	fr.bufLen += n
}

// Fill implements BlockStream. Without Loop it returns short counts at
// the end of the trace and 0 once exhausted; decode errors panic (run
// Validate at ingest — replay assumes a structurally sound file).
func (fr *FileReader) Fill(out []mem.Access) int {
	i := 0
	for i < len(out) {
		if fr.read == fr.count {
			if !fr.Loop {
				return i
			}
			fr.rewind()
		}
		if avail := fr.bufLen - fr.bufPos; avail < maxRecordBytes && int64(avail) < fr.bodyLen-fr.pos {
			fr.refill()
		}
		var a mem.Access
		var n int
		if fr.version == 1 {
			rec := fr.buf[fr.bufPos : fr.bufPos+recordBytes]
			kind := mem.Kind(rec[1])
			if kind > mem.Store {
				panic(fmt.Sprintf("trace: record %d has invalid kind %d", fr.read, rec[1]))
			}
			a = mem.Access{
				Node: int(rec[0]),
				Kind: kind,
				Addr: mem.Addr(binary.LittleEndian.Uint64(rec[2:])),
			}
			n = recordBytes
		} else {
			var err error
			a, n, err = decodeV2(fr.buf[fr.bufPos:fr.bufLen], &fr.last)
			if err != nil {
				panic(fmt.Sprintf("trace: record %d: %v", fr.read, err))
			}
		}
		fr.bufPos += n
		fr.pos += int64(n)
		fr.read++
		out[i] = a
		i++
	}
	return i
}

// Next implements Stream, wrapping if Loop is set.
func (fr *FileReader) Next() mem.Access {
	var one [1]mem.Access
	if fr.Fill(one[:]) == 0 {
		panic("trace: replay ran past the end of the trace (set Loop to wrap)")
	}
	return one[0]
}

// Clone implements Cloner: an independent reader continuing the
// identical sequence from the current position. The clone shares the
// underlying source but owns its cursor and buffer.
func (fr *FileReader) Clone() Stream {
	cp := *fr
	cp.buf = nil
	// The clone's cursor is fr.pos with an empty buffer; its first Fill
	// re-reads from there.
	cp.bufPos, cp.bufLen = 0, 0
	return &cp
}

// ImportCSV converts a textual trace to the v2 binary format. Each line
// is "node,kind,address": node a small integer, kind one of
// i/ifetch (instruction fetch), l/load/r/read, or s/store/w/write
// (case-insensitive), and address decimal or 0x-hex. Blank lines and
// #-comments are skipped. Returns the number of records written.
func ImportCSV(r io.Reader, w io.Writer) (uint64, error) {
	fw, err := NewFileWriter(w)
	if err != nil {
		return 0, err
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) != 3 {
			return fw.n, fmt.Errorf("trace: csv line %d: want node,kind,address, got %q", lineNo, line)
		}
		node, err := strconv.Atoi(strings.TrimSpace(parts[0]))
		if err != nil || node < 0 || node >= MaxTraceNodes {
			return fw.n, fmt.Errorf("trace: csv line %d: bad node %q", lineNo, parts[0])
		}
		var kind mem.Kind
		switch strings.ToLower(strings.TrimSpace(parts[1])) {
		case "i", "ifetch", "f", "fetch":
			kind = mem.IFetch
		case "l", "load", "r", "read":
			kind = mem.Load
		case "s", "store", "w", "write":
			kind = mem.Store
		default:
			return fw.n, fmt.Errorf("trace: csv line %d: bad kind %q", lineNo, parts[1])
		}
		addr, err := strconv.ParseUint(strings.TrimSpace(parts[2]), 0, 64)
		if err != nil {
			return fw.n, fmt.Errorf("trace: csv line %d: bad address %q", lineNo, parts[2])
		}
		if err := fw.Append(mem.Access{Node: node, Kind: kind, Addr: mem.Addr(addr)}); err != nil {
			return fw.n, err
		}
	}
	if err := sc.Err(); err != nil {
		return fw.n, fmt.Errorf("trace: csv line %d: %w", lineNo, err)
	}
	if fw.n == 0 {
		return 0, fmt.Errorf("trace: empty trace")
	}
	return fw.n, fw.Close()
}
