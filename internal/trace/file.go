package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"d2m/internal/mem"
)

// Binary trace format: a 8-byte header ("D2MTRC" + 2-byte version),
// followed by fixed 10-byte records: node (uint8), kind (uint8), address
// (uint64 little-endian). The format is deliberately trivial so traces
// can be produced or consumed by other tools.
var traceMagic = [8]byte{'D', '2', 'M', 'T', 'R', 'C', 0, 1}

const recordBytes = 10

// Writer streams accesses to an io.Writer in the binary trace format.
type Writer struct {
	w   *bufio.Writer
	n   uint64
	err error
}

// NewWriter writes the header and returns a trace writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(traceMagic[:]); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	return &Writer{w: bw}, nil
}

// Append writes one access record.
func (tw *Writer) Append(a mem.Access) error {
	if tw.err != nil {
		return tw.err
	}
	var rec [recordBytes]byte
	rec[0] = byte(a.Node)
	rec[1] = byte(a.Kind)
	binary.LittleEndian.PutUint64(rec[2:], uint64(a.Addr))
	if _, err := tw.w.Write(rec[:]); err != nil {
		tw.err = fmt.Errorf("trace: writing record: %w", err)
		return tw.err
	}
	tw.n++
	return nil
}

// Count returns the number of records written.
func (tw *Writer) Count() uint64 { return tw.n }

// Flush flushes buffered records.
func (tw *Writer) Flush() error {
	if tw.err != nil {
		return tw.err
	}
	return tw.w.Flush()
}

// Tee wraps a stream so that every produced access is also recorded.
func Tee(s Stream, tw *Writer) Stream {
	return StreamFunc(func() mem.Access {
		a := s.Next()
		// A write error is remembered by the writer; recording must not
		// perturb the simulation.
		_ = tw.Append(a)
		return a
	})
}

// Reader replays a recorded trace.
type Reader struct {
	records []mem.Access
	pos     int
	// Loop makes Next wrap around at the end instead of panicking,
	// allowing warmup+measure windows longer than the trace.
	Loop bool
}

// ReadTrace loads an entire trace into memory.
func ReadTrace(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if hdr != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %q", hdr[:])
	}
	out := &Reader{}
	var rec [recordBytes]byte
	for {
		_, err := io.ReadFull(br, rec[:])
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: reading record %d: %w", len(out.records), err)
		}
		kind := mem.Kind(rec[1])
		if kind > mem.Store {
			return nil, fmt.Errorf("trace: record %d has invalid kind %d", len(out.records), rec[1])
		}
		out.records = append(out.records, mem.Access{
			Node: int(rec[0]),
			Kind: kind,
			Addr: mem.Addr(binary.LittleEndian.Uint64(rec[2:])),
		})
	}
	if len(out.records) == 0 {
		return nil, fmt.Errorf("trace: empty trace")
	}
	return out, nil
}

// Len returns the number of records.
func (r *Reader) Len() int { return len(r.records) }

// Next returns the next recorded access, wrapping if Loop is set.
func (r *Reader) Next() mem.Access {
	if r.pos >= len(r.records) {
		if !r.Loop {
			panic("trace: replay ran past the end of the trace (set Loop to wrap)")
		}
		r.pos = 0
	}
	a := r.records[r.pos]
	r.pos++
	return a
}

// MaxNode returns the largest node id appearing in the trace.
func (r *Reader) MaxNode() int {
	max := 0
	for _, a := range r.records {
		if a.Node > max {
			max = a.Node
		}
	}
	return max
}
