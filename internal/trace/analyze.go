package trace

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"d2m/internal/mem"
)

// Analyzer computes workload characteristics from an access stream:
// footprints, read/write/fetch mix, cross-node sharing degrees, spatial
// locality, and an exact LRU reuse-distance histogram (the number of
// distinct lines touched between consecutive uses of a line — the
// quantity cache hit ratios are a function of). Feed it accesses with
// Add and read the result with Finish.
type Analyzer struct {
	n        int
	kinds    [3]uint64
	perNode  map[int]uint64
	seqLines uint64

	lineNodes   map[mem.LineAddr]uint8 // bitmask of nodes that touched the line
	lineWriters map[mem.LineAddr]uint8
	regionNodes map[mem.RegionAddr]uint8
	codeLines   map[mem.LineAddr]bool

	lastLine map[int]mem.LineAddr // per node, for stride detection

	// Exact LRU stack distances via the classic Fenwick-tree algorithm:
	// lastPos records each line's previous access position; the tree
	// counts, for any window, how many lines have their LAST access
	// inside it — which is the number of distinct lines between two
	// uses.
	lastPos map[mem.LineAddr]int
	fenwick []int
	dist    [32]uint64 // log2 buckets; index 31 = cold (first touch)
	cap     int
}

// NewAnalyzer returns an analyzer sized for up to capacity accesses
// (further accesses are still counted, but reuse distances stop being
// recorded past the capacity).
func NewAnalyzer(capacity int) *Analyzer {
	return &Analyzer{
		perNode:     make(map[int]uint64),
		lineNodes:   make(map[mem.LineAddr]uint8),
		lineWriters: make(map[mem.LineAddr]uint8),
		regionNodes: make(map[mem.RegionAddr]uint8),
		codeLines:   make(map[mem.LineAddr]bool),
		lastLine:    make(map[int]mem.LineAddr),
		lastPos:     make(map[mem.LineAddr]int),
		fenwick:     make([]int, capacity+2),
		cap:         capacity,
	}
}

func (z *Analyzer) fenwickAdd(i, v int) {
	for i++; i < len(z.fenwick); i += i & (-i) {
		z.fenwick[i] += v
	}
}

func (z *Analyzer) fenwickSum(i int) int {
	s := 0
	for i++; i > 0; i -= i & (-i) {
		s += z.fenwick[i]
	}
	return s
}

// Add feeds one access.
func (z *Analyzer) Add(a mem.Access) {
	line := a.Addr.Line()
	z.kinds[a.Kind]++
	z.perNode[a.Node]++

	// Sharing masks track up to 8 nodes (the machine's maximum); larger
	// node ids alias, which only over-reports sharing.
	nbit := uint8(1) << uint(a.Node&7)
	z.lineNodes[line] |= nbit
	z.regionNodes[a.Addr.Region()] |= nbit
	if a.Kind == mem.Store {
		z.lineWriters[line] |= nbit
	}
	if a.Kind == mem.IFetch {
		z.codeLines[line] = true
	}
	if last, ok := z.lastLine[a.Node]; ok && line == last+1 {
		z.seqLines++
	}
	z.lastLine[a.Node] = line

	// Reuse distance.
	if z.n < z.cap {
		if prev, ok := z.lastPos[line]; ok {
			d := z.fenwickSum(z.n) - z.fenwickSum(prev)
			b := bits.Len(uint(d))
			if b > 30 {
				b = 30
			}
			z.dist[b]++
			z.fenwickAdd(prev, -1)
		} else {
			z.dist[31]++ // cold
		}
		z.fenwickAdd(z.n, 1)
		z.lastPos[line] = z.n
	}
	z.n++
}

// Analysis is the finished characterization.
type Analysis struct {
	Accesses     uint64
	IFetchFrac   float64
	LoadFrac     float64
	StoreFrac    float64
	Nodes        int
	NodeBalance  float64 // min/max accesses across nodes
	Lines        uint64  // distinct 64B lines
	Regions      uint64  // distinct 1kB regions
	CodeLines    uint64
	SharedLines  float64 // fraction of lines touched by >1 node
	WSharedLines float64 // fraction of lines written by ≥1 and touched by >1 node
	SharedRgns   float64 // fraction of regions touched by >1 node
	SeqFrac      float64 // fraction of accesses to the line after the node's previous
	// ReuseCDF[k] is the fraction of non-cold accesses with LRU stack
	// distance < 2^k (so ReuseCDF[9] ≈ the hit ratio of a 512-line
	// fully associative cache).
	ReuseCDF [31]float64
	ColdFrac float64
}

// Finish computes the analysis.
func (z *Analyzer) Finish() Analysis {
	an := Analysis{
		Accesses:  uint64(z.n),
		Nodes:     len(z.perNode),
		Lines:     uint64(len(z.lineNodes)),
		Regions:   uint64(len(z.regionNodes)),
		CodeLines: uint64(len(z.codeLines)),
	}
	if z.n == 0 {
		return an
	}
	tot := float64(z.n)
	an.IFetchFrac = float64(z.kinds[mem.IFetch]) / tot
	an.LoadFrac = float64(z.kinds[mem.Load]) / tot
	an.StoreFrac = float64(z.kinds[mem.Store]) / tot
	an.SeqFrac = float64(z.seqLines) / tot

	var mn, mx uint64
	for _, c := range z.perNode {
		if mn == 0 || c < mn {
			mn = c
		}
		if c > mx {
			mx = c
		}
	}
	if mx > 0 {
		an.NodeBalance = float64(mn) / float64(mx)
	}

	var shared, wshared uint64
	for line, nodes := range z.lineNodes {
		if bits.OnesCount8(nodes) > 1 {
			shared++
			if z.lineWriters[line] != 0 {
				wshared++
			}
		}
	}
	an.SharedLines = float64(shared) / float64(len(z.lineNodes))
	an.WSharedLines = float64(wshared) / float64(len(z.lineNodes))
	var sharedR uint64
	for _, nodes := range z.regionNodes {
		if bits.OnesCount8(nodes) > 1 {
			sharedR++
		}
	}
	an.SharedRgns = float64(sharedR) / float64(len(z.regionNodes))

	var warm uint64
	for b := 0; b <= 30; b++ {
		warm += z.dist[b]
	}
	recorded := warm + z.dist[31]
	if recorded > 0 {
		an.ColdFrac = float64(z.dist[31]) / float64(recorded)
	}
	if warm > 0 {
		cum := uint64(0)
		for b := 0; b <= 30; b++ {
			cum += z.dist[b]
			an.ReuseCDF[b] = float64(cum) / float64(warm)
		}
	}
	return an
}

// Render formats the analysis as a human-readable report.
func (an Analysis) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "accesses        %d (%.1f%% ifetch, %.1f%% load, %.1f%% store)\n",
		an.Accesses, an.IFetchFrac*100, an.LoadFrac*100, an.StoreFrac*100)
	fmt.Fprintf(&b, "nodes           %d (balance min/max = %.2f)\n", an.Nodes, an.NodeBalance)
	fmt.Fprintf(&b, "footprint       %d lines (%.1f kB), %d regions, %d code lines\n",
		an.Lines, float64(an.Lines)/16, an.Regions, an.CodeLines)
	fmt.Fprintf(&b, "sharing         %.1f%% of lines, %.1f%% write-shared; %.1f%% of regions\n",
		an.SharedLines*100, an.WSharedLines*100, an.SharedRgns*100)
	fmt.Fprintf(&b, "spatial         %.1f%% of accesses sequential (next line)\n", an.SeqFrac*100)
	fmt.Fprintf(&b, "cold accesses   %.1f%%\n", an.ColdFrac*100)
	b.WriteString("reuse distance  (fraction of reuses within N distinct lines)\n")
	for _, k := range []int{6, 9, 12, 15, 18} {
		fmt.Fprintf(&b, "    < %-8d %5.1f%%\n", 1<<k, an.ReuseCDF[k]*100)
	}
	return b.String()
}

// AnalyzeStream pulls n accesses from a stream and characterizes them.
func AnalyzeStream(s Stream, n int) Analysis {
	z := NewAnalyzer(n)
	for i := 0; i < n; i++ {
		z.Add(s.Next())
	}
	return z.Finish()
}

// AnalyzeReader characterizes an entire recorded trace.
func AnalyzeReader(r *Reader) Analysis {
	z := NewAnalyzer(r.Len())
	for i := 0; i < r.Len(); i++ {
		z.Add(r.records[i])
	}
	return z.Finish()
}

// sortedNodes is used by tests to inspect per-node counts.
func (z *Analyzer) sortedNodes() []int {
	var out []int
	for n := range z.perNode {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}
