package trace

import (
	"bufio"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"d2m/internal/mem"
)

// TestBigTraceReplay writes a >=1 GiB v2 trace file and replays it
// through FileReader, asserting the reader's memory footprint stays
// bounded (the file must never become resident). The file is large, so
// the test only runs when D2M_BIG_TRACE=1 (CI sets it on the gate job).
func TestBigTraceReplay(t *testing.T) {
	if os.Getenv("D2M_BIG_TRACE") != "1" {
		t.Skip("set D2M_BIG_TRACE=1 to run the 1 GiB replay test")
	}
	path := filepath.Join(t.TempDir(), "big.trc")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	fw, err := NewFileWriter(bw)
	if err != nil {
		t.Fatal(err)
	}
	// A pseudo-random walk defeats delta compression (~6-11 bytes per
	// record), so ~128M records comfortably clear 1 GiB.
	const records = 128 << 20
	x := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < records; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		a := mem.Access{Node: int(x % 8), Kind: mem.Kind(x >> 8 % 3), Addr: mem.Addr(x &^ 63)}
		if err := fw.Append(a); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() < 1<<30 {
		t.Fatalf("trace file is %d bytes, want >= 1 GiB", st.Size())
	}
	t.Logf("trace file: %.2f GiB, %d records", float64(st.Size())/(1<<30), records)

	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	fr, err := NewFileReader(rf, st.Size())
	if err != nil {
		t.Fatal(err)
	}
	if fr.Len() != records {
		t.Fatalf("Len = %d, want %d", fr.Len(), records)
	}

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	var total uint64
	buf := make([]mem.Access, 4096)
	for {
		n := fr.Fill(buf)
		if n == 0 {
			break
		}
		total += uint64(n)
	}
	if total != records {
		t.Fatalf("replayed %d records, want %d", total, records)
	}

	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	grew := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	t.Logf("heap growth across replay: %d bytes", grew)
	// The reader holds one 256 KiB chunk; allow generous slack for the
	// runtime, but far less than the 1 GiB file.
	if grew > 64<<20 {
		t.Fatalf("heap grew %d bytes replaying a %d-byte file; replay must stay chunk-resident", grew, st.Size())
	}
}
