// Package mem defines the address arithmetic, access types, and geometry
// shared by every component of the simulated memory system.
//
// The geometry follows the paper: 64-byte cachelines grouped into 1KB
// regions of 16 lines each. Regions are the granularity of the metadata
// hierarchy (MD1/MD2/MD3); lines are the granularity of the data hierarchy.
package mem

import "fmt"

// Geometry constants for the simulated memory system.
const (
	// LineBytes is the cacheline size in bytes.
	LineBytes = 64
	// LineShift is log2(LineBytes).
	LineShift = 6
	// LinesPerRegion is the number of cachelines tracked by one region
	// metadata entry ("For tracking 16 cachelines in a region...", §III-A).
	LinesPerRegion = 16
	// RegionBytes is the region size in bytes (1KB).
	RegionBytes = LineBytes * LinesPerRegion
	// RegionShift is log2(RegionBytes).
	RegionShift = 10
	// PageBytes is the (base) virtual-memory page size used by the
	// baseline TLBs.
	PageBytes = 4096
	// PageShift is log2(PageBytes).
	PageShift = 12
)

// Addr is a byte address in the simulated physical address space. The
// simulator does not model virtual-to-physical aliasing: virtual and
// physical addresses are numerically identical, but components that would
// perform a translation (TLBs, the physically tagged MD2) still charge the
// latency and energy a translation would cost.
type Addr uint64

// Line returns the address of the cacheline containing a.
func (a Addr) Line() LineAddr { return LineAddr(a >> LineShift) }

// Region returns the address of the region containing a.
func (a Addr) Region() RegionAddr { return RegionAddr(a >> RegionShift) }

// Page returns the page number containing a.
func (a Addr) Page() uint64 { return uint64(a) >> PageShift }

// LineAddr identifies a cacheline (the address with the offset bits
// stripped).
type LineAddr uint64

// Addr returns the byte address of the first byte of the line.
func (l LineAddr) Addr() Addr { return Addr(l) << LineShift }

// Region returns the region containing the line.
func (l LineAddr) Region() RegionAddr { return RegionAddr(l >> (RegionShift - LineShift)) }

// Index returns the position of the line within its region, in
// [0, LinesPerRegion).
func (l LineAddr) Index() int { return int(l & (LinesPerRegion - 1)) }

func (l LineAddr) String() string { return fmt.Sprintf("line:%#x", uint64(l)) }

// RegionAddr identifies a 1KB region (the address with the region offset
// bits stripped).
type RegionAddr uint64

// Line returns the idx-th line of the region. idx must be in
// [0, LinesPerRegion).
func (r RegionAddr) Line(idx int) LineAddr {
	if idx < 0 || idx >= LinesPerRegion {
		panic(fmt.Sprintf("mem: line index %d out of range", idx))
	}
	return LineAddr(uint64(r)<<(RegionShift-LineShift) | uint64(idx))
}

// Addr returns the byte address of the first byte of the region.
func (r RegionAddr) Addr() Addr { return Addr(r) << RegionShift }

// Page returns the page number containing the region.
func (r RegionAddr) Page() uint64 { return uint64(r.Addr()) >> PageShift }

func (r RegionAddr) String() string { return fmt.Sprintf("region:%#x", uint64(r)) }

// Kind classifies a memory access.
type Kind uint8

// Access kinds.
const (
	// IFetch is an instruction fetch (goes to L1-I / MD1-I).
	IFetch Kind = iota
	// Load is a data read.
	Load
	// Store is a data write.
	Store
)

// IsWrite reports whether the access kind modifies the line.
func (k Kind) IsWrite() bool { return k == Store }

// IsInstr reports whether the access fetches instructions.
func (k Kind) IsInstr() bool { return k == IFetch }

func (k Kind) String() string {
	switch k {
	case IFetch:
		return "ifetch"
	case Load:
		return "load"
	case Store:
		return "store"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Access is a single memory reference issued by a node's core.
type Access struct {
	// Node is the issuing node id.
	Node int
	// Addr is the referenced byte address.
	Addr Addr
	// Kind is the access type.
	Kind Kind
}

func (a Access) String() string {
	return fmt.Sprintf("n%d %s %#x", a.Node, a.Kind, uint64(a.Addr))
}
