package mem

import (
	"testing"
	"testing/quick"
)

func TestGeometryConstants(t *testing.T) {
	if 1<<LineShift != LineBytes {
		t.Errorf("LineShift %d inconsistent with LineBytes %d", LineShift, LineBytes)
	}
	if 1<<RegionShift != RegionBytes {
		t.Errorf("RegionShift %d inconsistent with RegionBytes %d", RegionShift, RegionBytes)
	}
	if LinesPerRegion*LineBytes != RegionBytes {
		t.Errorf("LinesPerRegion*LineBytes = %d, want %d", LinesPerRegion*LineBytes, RegionBytes)
	}
	if 1<<PageShift != PageBytes {
		t.Errorf("PageShift %d inconsistent with PageBytes %d", PageShift, PageBytes)
	}
}

func TestAddrDecomposition(t *testing.T) {
	a := Addr(0x12345)
	if got := a.Line(); got != LineAddr(0x12345>>6) {
		t.Errorf("Line() = %v", got)
	}
	if got := a.Region(); got != RegionAddr(0x12345>>10) {
		t.Errorf("Region() = %v", got)
	}
	if got := a.Page(); got != 0x12 {
		t.Errorf("Page() = %#x, want 0x12", got)
	}
}

func TestLineRegionRoundTrip(t *testing.T) {
	f := func(raw uint64) bool {
		a := Addr(raw)
		l := a.Line()
		r := a.Region()
		if l.Region() != r {
			return false
		}
		if r.Line(l.Index()) != l {
			return false
		}
		// The line's byte address must fall inside the region.
		return l.Addr().Region() == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRegionLineEnumeration(t *testing.T) {
	r := RegionAddr(7)
	seen := map[LineAddr]bool{}
	for i := 0; i < LinesPerRegion; i++ {
		l := r.Line(i)
		if l.Region() != r {
			t.Fatalf("line %d of %v is in region %v", i, r, l.Region())
		}
		if l.Index() != i {
			t.Fatalf("line %d reports index %d", i, l.Index())
		}
		if seen[l] {
			t.Fatalf("duplicate line %v", l)
		}
		seen[l] = true
	}
}

func TestRegionLinePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Line(LinesPerRegion) did not panic")
		}
	}()
	RegionAddr(0).Line(LinesPerRegion)
}

func TestKindPredicates(t *testing.T) {
	cases := []struct {
		k       Kind
		write   bool
		instr   bool
		wantStr string
	}{
		{IFetch, false, true, "ifetch"},
		{Load, false, false, "load"},
		{Store, true, false, "store"},
	}
	for _, c := range cases {
		if c.k.IsWrite() != c.write {
			t.Errorf("%v.IsWrite() = %v", c.k, c.k.IsWrite())
		}
		if c.k.IsInstr() != c.instr {
			t.Errorf("%v.IsInstr() = %v", c.k, c.k.IsInstr())
		}
		if c.k.String() != c.wantStr {
			t.Errorf("%v.String() = %q", c.k, c.k.String())
		}
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/1000 identical values", same)
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Error("zero seed produced a stuck generator")
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(1)
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 500 || c > 1500 {
			t.Errorf("Intn(10) value %d appeared %d/10000 times; badly skewed", v, c)
		}
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(2)
	sum := 0.0
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v", f)
		}
		sum += f
	}
	if mean := sum / 10000; mean < 0.45 || mean > 0.55 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestRNGBoolProbability(t *testing.T) {
	r := NewRNG(3)
	hits := 0
	for i := 0; i < 10000; i++ {
		if r.Bool(0.2) {
			hits++
		}
	}
	if hits < 1500 || hits > 2500 {
		t.Errorf("Bool(0.2) hit %d/10000 times", hits)
	}
}

func TestRNGForkIndependence(t *testing.T) {
	r := NewRNG(7)
	f1 := r.Fork(1)
	r2 := NewRNG(7)
	f2 := r2.Fork(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if f1.Uint64() == f2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("forks with different labels matched %d/1000 draws", same)
	}
}

func TestAccessString(t *testing.T) {
	a := Access{Node: 3, Addr: 0x40, Kind: Store}
	if got := a.String(); got != "n3 store 0x40" {
		t.Errorf("String() = %q", got)
	}
}
