package mem

// RNG is a small, fast, deterministic pseudo-random number generator
// (xorshift64*). Every stochastic decision in the simulator and the
// workload generators draws from a seeded RNG so that runs are exactly
// reproducible; math/rand is avoided to keep the sequence stable across
// Go releases.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. A zero seed is remapped to
// a fixed non-zero constant because xorshift has a zero fixed point.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("mem: RNG.Intn with non-positive n")
	}
	if n&(n-1) == 0 {
		// Power-of-two n: masking selects exactly the same value as the
		// modulo below (x % 2^k == x & (2^k-1)) without the hardware
		// divide. Intn(2) and Intn(LinesPerRegion) dominate the
		// generator hot paths, so this branch is the common case.
		return int(r.Uint64() & uint64(n-1))
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Fork derives an independent generator whose stream is decorrelated from
// the parent by mixing in the label.
func (r *RNG) Fork(label uint64) *RNG {
	return NewRNG(r.Uint64() ^ (label * 0xbf58476d1ce4e5b9) ^ 0x94d049bb133111eb)
}

// State exports the generator's position in its sequence. Together with
// SetState it lets warm-state snapshots capture and resume the exact
// random sequence, which snapshot exactness depends on.
func (r *RNG) State() uint64 { return r.state }

// SetState rewinds (or fast-forwards) the generator to a position
// previously exported by State.
func (r *RNG) SetState(s uint64) { r.state = s }

// Clone returns an independent generator that continues the identical
// sequence from the current position.
func (r *RNG) Clone() *RNG { return &RNG{state: r.state} }
