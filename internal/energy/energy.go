// Package energy models the dynamic and static energy of the cache
// hierarchy, in the spirit of the paper's CACTI 6.0 + McPAT @22nm
// methodology (§V-A).
//
// Only relative magnitudes matter for reproducing the paper's EDP shape:
// associative tag searches cost more than direct single-way data accesses,
// interconnect transfers cost more than SRAM accesses, and DRAM dwarfs
// everything. The default model encodes per-operation dynamic energies in
// picojoules and per-structure leakage in picojoules per cycle, with values
// representative of published 22nm numbers.
package energy

import "fmt"

// Op identifies one class of energy-consuming operation in the hierarchy.
type Op uint8

// Energy operations. The split between tag and data operations is what
// lets the model capture D2M's central saving: tag-less caches perform
// only the data-way operation, never the parallel tag search.
const (
	// OpL1Tag is a parallel 8-way L1 tag search.
	OpL1Tag Op = iota
	// OpL1Data is a single-way L1 data array access.
	OpL1Data
	// OpL2Tag is a parallel 8-way L2 tag search.
	OpL2Tag
	// OpL2Data is a single-way L2 data array access.
	OpL2Data
	// OpLLCTag is a parallel LLC tag search (32-way in the baselines).
	OpLLCTag
	// OpLLCData is a single-way LLC data array access.
	OpLLCData
	// OpTLB is a first-level TLB lookup.
	OpTLB
	// OpTLB2 is a second-level TLB lookup.
	OpTLB2
	// OpMD1 is an associative MD1 metadata lookup.
	OpMD1
	// OpMD2 is an associative MD2 metadata lookup.
	OpMD2
	// OpMD3 is an MD3 (shared metadata) lookup.
	OpMD3
	// OpDir is a baseline directory lookup.
	OpDir
	// OpNoCFlit is the transfer of one 8-byte flit across one
	// interconnect hop.
	OpNoCFlit
	// OpDRAM is a DRAM access for one cacheline.
	OpDRAM

	opCount
)

var opNames = [opCount]string{
	"l1-tag", "l1-data", "l2-tag", "l2-data", "llc-tag", "llc-data",
	"tlb", "tlb2", "md1", "md2", "md3", "dir", "noc-flit", "dram",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Model holds per-operation dynamic energies (picojoules per operation).
type Model struct {
	Dynamic [opCount]float64
}

// Default22nm returns the default model, loosely calibrated to 22nm CACTI
// numbers for the paper's structure sizes (Table III): 32kB 8-way L1,
// 256kB 8-way L2, 8MB LLC, 128/4k/16k-entry MD1/MD2/MD3.
func Default22nm() *Model {
	m := &Model{}
	m.Dynamic = [opCount]float64{
		OpL1Tag:   12, // 8 tags compared in parallel
		OpL1Data:  10, // one 64B way
		OpL2Tag:   16,
		OpL2Data:  26,
		OpLLCTag:  60, // 32-way search
		OpLLCData: 45,
		OpTLB:     8,
		OpTLB2:    15,
		OpMD1:     10, // 128 entries, on par with the TLB it replaces (§II-A)
		OpMD2:     18,
		OpMD3:     26,
		OpDir:     30,    // 16k-entry full-map directory
		OpNoCFlit: 6,     // one 8B flit, one hop
		OpDRAM:    15000, // one 64B line
	}
	return m
}

// Cost returns the dynamic energy of performing op once, in pJ.
func (m *Model) Cost(op Op) float64 { return m.Dynamic[op] }

// Meter accumulates the energy of one simulated hierarchy.
type Meter struct {
	model        *Model
	counts       [opCount]uint64
	leakPerCycle float64 // pJ per cycle, sum over registered structures
}

// NewMeter returns a meter that charges operations against model.
func NewMeter(model *Model) *Meter {
	return &Meter{model: model}
}

// Do charges n occurrences of op.
func (m *Meter) Do(op Op, n uint64) { m.counts[op] += n }

// Count returns how many times op has been charged.
func (m *Meter) Count(op Op) uint64 { return m.counts[op] }

// AddLeakage registers a structure's static power, in pJ per cycle.
// Hierarchies call this once per structure at construction time.
func (m *Meter) AddLeakage(pJPerCycle float64) { m.leakPerCycle += pJPerCycle }

// LeakPerCycle returns the registered static power in pJ/cycle.
func (m *Meter) LeakPerCycle() float64 { return m.leakPerCycle }

// DynamicPJ returns the accumulated dynamic energy in pJ.
func (m *Meter) DynamicPJ() float64 {
	total := 0.0
	for op, n := range m.counts {
		total += float64(n) * m.model.Dynamic[op]
	}
	return total
}

// StaticPJ returns the leakage energy over the given number of cycles.
func (m *Meter) StaticPJ(cycles uint64) float64 {
	return m.leakPerCycle * float64(cycles)
}

// TotalPJ returns dynamic plus static energy over the run.
func (m *Meter) TotalPJ(cycles uint64) float64 {
	return m.DynamicPJ() + m.StaticPJ(cycles)
}

// EDP returns the energy-delay product (pJ × cycles) of the run, the
// metric of Figure 6.
func (m *Meter) EDP(cycles uint64) float64 {
	return m.TotalPJ(cycles) * float64(cycles)
}

// ResetCounts zeroes the dynamic operation counts while preserving the
// registered leakage (the structures don't change at a measurement
// boundary).
func (m *Meter) ResetCounts() {
	m.counts = [opCount]uint64{}
}

// BreakdownPJ returns the dynamic energy per operation class, keyed by
// the operation name, omitting zero entries.
func (m *Meter) BreakdownPJ() map[string]float64 {
	out := make(map[string]float64)
	for op, n := range m.counts {
		if n > 0 {
			out[Op(op).String()] = float64(n) * m.model.Dynamic[op]
		}
	}
	return out
}

// Leakage rates (pJ/cycle) for the structures of Table III. Exposed so
// each hierarchy registers exactly the structures it instantiates.
const (
	LeakL1       = 0.6  // one 32kB L1 (I or D)
	LeakL2       = 3.0  // one 256kB L2
	LeakLLCSlice = 11.0 // one 1MB LLC slice (8 slices = 8MB LLC)
	LeakTLB      = 0.2
	LeakDir      = 1.5
	LeakMD1      = 0.15
	LeakMD2      = 0.8
	LeakMD3      = 1.8
)
