package energy

import (
	"testing"
	"testing/quick"
)

func TestDefaultModelOrdering(t *testing.T) {
	m := Default22nm()
	// The relative ordering of costs is what produces the paper's EDP
	// shape; pin it down.
	if !(m.Cost(OpDRAM) > m.Cost(OpLLCTag)) {
		t.Error("DRAM must dominate LLC access")
	}
	if !(m.Cost(OpLLCTag) > m.Cost(OpL1Tag)) {
		t.Error("LLC tag search must cost more than L1 tag search")
	}
	if !(m.Cost(OpL1Tag) > m.Cost(OpMD1)) {
		t.Error("MD1 must be cheaper than an L1 tag search (it replaces TLB+tags)")
	}
	if !(m.Cost(OpLLCData) < m.Cost(OpLLCTag)) {
		t.Error("a direct LLC data-way access must beat a 32-way tag search")
	}
	for op := Op(0); op < opCount; op++ {
		if m.Cost(op) <= 0 {
			t.Errorf("op %v has non-positive cost", op)
		}
	}
}

func TestMeterDynamic(t *testing.T) {
	m := NewMeter(Default22nm())
	m.Do(OpL1Data, 3)
	m.Do(OpDRAM, 1)
	want := 3*Default22nm().Cost(OpL1Data) + Default22nm().Cost(OpDRAM)
	if got := m.DynamicPJ(); got != want {
		t.Errorf("DynamicPJ = %v, want %v", got, want)
	}
	if m.Count(OpL1Data) != 3 {
		t.Errorf("Count = %d, want 3", m.Count(OpL1Data))
	}
}

func TestMeterStaticAndEDP(t *testing.T) {
	m := NewMeter(Default22nm())
	m.AddLeakage(2.5)
	m.AddLeakage(0.5)
	if m.LeakPerCycle() != 3.0 {
		t.Errorf("LeakPerCycle = %v", m.LeakPerCycle())
	}
	if got := m.StaticPJ(100); got != 300 {
		t.Errorf("StaticPJ(100) = %v, want 300", got)
	}
	m.Do(OpTLB, 10)
	total := m.TotalPJ(100)
	if total != m.DynamicPJ()+300 {
		t.Errorf("TotalPJ = %v", total)
	}
	if got := m.EDP(100); got != total*100 {
		t.Errorf("EDP = %v, want %v", got, total*100)
	}
}

func TestMeterMonotone(t *testing.T) {
	f := func(ops []uint8, cycles uint16) bool {
		m := NewMeter(Default22nm())
		prev := 0.0
		for _, o := range ops {
			m.Do(Op(o%uint8(opCount)), 1)
			cur := m.DynamicPJ()
			if cur < prev {
				return false
			}
			prev = cur
		}
		return m.TotalPJ(uint64(cycles)) >= m.DynamicPJ()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOpString(t *testing.T) {
	if OpL1Tag.String() != "l1-tag" {
		t.Errorf("OpL1Tag.String() = %q", OpL1Tag.String())
	}
	if OpDRAM.String() != "dram" {
		t.Errorf("OpDRAM.String() = %q", OpDRAM.String())
	}
	if Op(200).String() != "op(200)" {
		t.Errorf("unknown op String() = %q", Op(200).String())
	}
}

func TestBreakdownPJ(t *testing.T) {
	m := NewMeter(Default22nm())
	if len(m.BreakdownPJ()) != 0 {
		t.Error("fresh meter has a non-empty breakdown")
	}
	m.Do(OpL1Data, 10)
	m.Do(OpDRAM, 2)
	bd := m.BreakdownPJ()
	if len(bd) != 2 {
		t.Fatalf("breakdown has %d entries", len(bd))
	}
	if bd["l1-data"] != 10*Default22nm().Cost(OpL1Data) {
		t.Errorf("l1-data = %v", bd["l1-data"])
	}
	if bd["dram"] != 2*Default22nm().Cost(OpDRAM) {
		t.Errorf("dram = %v", bd["dram"])
	}
}

func TestResetCounts(t *testing.T) {
	m := NewMeter(Default22nm())
	m.AddLeakage(5)
	m.Do(OpTLB, 100)
	m.ResetCounts()
	if m.DynamicPJ() != 0 {
		t.Error("counts survived reset")
	}
	if m.LeakPerCycle() != 5 {
		t.Error("leakage lost on reset")
	}
}

func TestLeakageConstantsSane(t *testing.T) {
	// Bigger structures must leak more.
	if !(LeakL1 < LeakL2 && LeakL2 < LeakLLCSlice) {
		t.Error("cache leakage not monotone in size")
	}
	if !(LeakMD1 < LeakMD2 && LeakMD2 < LeakMD3) {
		t.Error("metadata leakage not monotone in size")
	}
	// The whole metadata hierarchy must leak less than the LLC it
	// manages (the paper's overhead argument).
	if LeakMD1*2+LeakMD2+LeakMD3 > LeakLLCSlice {
		t.Error("metadata leakage exceeds an LLC slice")
	}
}
