package baseline

import (
	"fmt"

	"d2m/internal/mem"
)

// CheckInvariants audits the baseline machine:
//
//  1. Inclusion: every line in an L1 (and L2) has an LLC entry, and —
//     within a Base-3L node — every L1 line is also in the node's L2.
//  2. Directory soundness: a node holding a line appears in its sharer
//     mask; a line in M or E anywhere is registered as the owner, and at
//     most one node holds a line in M/E.
//  3. MESI: an M/E copy excludes copies in other nodes; at most one
//     dirty copy exists per line per node stack, and a dirty copy is M.
func (s *System) CheckInvariants() error {
	type holder struct {
		node  int
		state state
	}
	holders := make(map[mem.LineAddr][]holder)

	for _, n := range s.nodes {
		caches := []*nodeCache{n.l1i, n.l1d}
		if n.l2 != nil {
			caches = append(caches, n.l2)
		}
		perLine := map[mem.LineAddr]state{}
		var failure error
		for _, c := range caches {
			c.tbl.ForEach(func(set, way int, key uint64) {
				if failure != nil {
					return
				}
				line := mem.LineAddr(key)
				st := *c.stateAt(set, way)
				if st == stInvalid {
					failure = fmt.Errorf("%s: valid slot with invalid state for %v", c.name, line)
					return
				}
				if *c.dirtyAt(set, way) && st != stModified {
					failure = fmt.Errorf("%s: dirty %v in state %v", c.name, line, st)
					return
				}
				// L1 lines must also be in the L2 (node-internal
				// inclusion, Base-3L).
				if n.l2 != nil && c != n.l2 {
					if _, _, ok := n.l2.lookup(line); !ok {
						failure = fmt.Errorf("%s: %v not in the node's L2", c.name, line)
						return
					}
				}
				// Inclusion in the LLC.
				llcSet := s.llc.SetFor(key)
				llcWay, ok := s.llc.Lookup(llcSet, key)
				if !ok {
					failure = fmt.Errorf("%s: %v not in the LLC (inclusion)", c.name, line)
					return
				}
				d := s.dirAt(llcSet, llcWay)
				if d.sharers&(1<<uint(n.id)) == 0 {
					failure = fmt.Errorf("%s: %v held but sharer bit clear", c.name, line)
					return
				}
				if (st == stModified || st == stExclusive) && d.owner != int8(n.id) {
					failure = fmt.Errorf("%s: %v in %v but directory owner is %d", c.name, line, st, d.owner)
					return
				}
				if prev, seen := perLine[line]; !seen || st > prev {
					perLine[line] = st
				}
			})
			if failure != nil {
				return failure
			}
		}
		for line, st := range perLine {
			holders[line] = append(holders[line], holder{n.id, st})
		}
	}

	for line, hs := range holders {
		exclusive := 0
		for _, h := range hs {
			if h.state == stModified || h.state == stExclusive {
				exclusive++
			}
		}
		if exclusive > 1 || (exclusive == 1 && len(hs) > 1) {
			return fmt.Errorf("line %v: E/M copy coexists with other holders (%v)", line, hs)
		}
	}

	// Directory: an owner must actually hold the line.
	var failure error
	s.llc.ForEach(func(set, way int, key uint64) {
		if failure != nil {
			return
		}
		d := s.dirAt(set, way)
		if d.owner >= 0 {
			if int(d.owner) >= s.cfg.Nodes {
				failure = fmt.Errorf("line %v: owner %d out of range", mem.LineAddr(key), d.owner)
				return
			}
			n := s.nodes[d.owner]
			found := false
			for _, c := range []*nodeCache{n.l1i, n.l1d, n.l2} {
				if c == nil {
					continue
				}
				if _, _, ok := c.lookup(mem.LineAddr(key)); ok {
					found = true
				}
			}
			if !found {
				failure = fmt.Errorf("line %v: directory owner %d holds no copy", mem.LineAddr(key), d.owner)
			}
		}
	})
	return failure
}
