package baseline

import (
	"fmt"
	"testing"

	"d2m/internal/mem"
)

func testConfig(threeLevel bool) Config {
	c := Config{
		Nodes:  4,
		L1Sets: 4, L1Ways: 2,
		LLCSets: 16, LLCWays: 4,
		TLBSets: 2, TLBWays: 2,
		TLB2Sets: 4, TLB2Ways: 2,
	}
	if threeLevel {
		c.L2Sets, c.L2Ways = 8, 4
	}
	return c
}

func addrOf(region, lineIdx int) mem.Addr {
	return mem.RegionAddr(region).Line(lineIdx).Addr()
}

func mustCheck(t *testing.T, s *System) {
	t.Helper()
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("invariant violation: %v", err)
	}
}

func TestConfigs(t *testing.T) {
	if err := Base2L().Validate(); err != nil {
		t.Errorf("Base2L invalid: %v", err)
	}
	if err := Base3L().Validate(); err != nil {
		t.Errorf("Base3L invalid: %v", err)
	}
	if Base2L().L2Sets != 0 {
		t.Error("Base2L has an L2")
	}
	if Base3L().L2Sets*Base3L().L2Ways*mem.LineBytes != 256<<10 {
		t.Errorf("Base3L L2 is %d bytes, want 256kB", Base3L().L2Sets*Base3L().L2Ways*mem.LineBytes)
	}
	bad := Base2L()
	bad.Nodes = 0
	if bad.Validate() == nil {
		t.Error("invalid config accepted")
	}
}

func TestColdMissThenHit(t *testing.T) {
	s := NewSystem(testConfig(false), true)
	a := addrOf(1, 0)
	res := s.Access(mem.Access{Node: 0, Addr: a, Kind: mem.Load})
	if res.L1Hit {
		t.Fatal("cold access hit")
	}
	if s.Stats().LLCMisses != 1 || s.Stats().DRAMReads != 1 {
		t.Errorf("LLCMisses=%d DRAMReads=%d", s.Stats().LLCMisses, s.Stats().DRAMReads)
	}
	res = s.Access(mem.Access{Node: 0, Addr: a, Kind: mem.Load})
	if !res.L1Hit {
		t.Fatal("second access missed")
	}
	mustCheck(t, s)
}

func TestWriteInvalidatesSharer(t *testing.T) {
	s := NewSystem(testConfig(false), true)
	a := addrOf(2, 3)
	s.Access(mem.Access{Node: 0, Addr: a, Kind: mem.Load})
	s.Access(mem.Access{Node: 1, Addr: a, Kind: mem.Load})
	mustCheck(t, s)
	s.Access(mem.Access{Node: 1, Addr: a, Kind: mem.Store})
	if s.Stats().InvRecv == 0 {
		t.Error("no invalidation for the old sharer")
	}
	mustCheck(t, s)
	// Node 0 re-reads; must see the new version (oracle enforces).
	s.Access(mem.Access{Node: 0, Addr: a, Kind: mem.Load})
	mustCheck(t, s)
}

func TestDirtyForward(t *testing.T) {
	s := NewSystem(testConfig(false), true)
	a := addrOf(3, 1)
	s.Access(mem.Access{Node: 2, Addr: a, Kind: mem.Store})
	fwd := s.Stats().Fwd
	s.Access(mem.Access{Node: 0, Addr: a, Kind: mem.Load})
	if s.Stats().Fwd != fwd+1 {
		t.Errorf("Fwd = %d, want %d (dirty line served through owner)", s.Stats().Fwd, fwd+1)
	}
	mustCheck(t, s)
}

func TestLLCEvictionBackInvalidates(t *testing.T) {
	c := testConfig(false)
	s := NewSystem(c, true)
	// Conflict one LLC set: LLCSets*RegionBytes... lines mapping to the
	// same LLC set are 16*64B apart in line space.
	stride := mem.Addr(c.LLCSets * mem.LineBytes)
	at := func(i int) mem.Addr { return mem.Addr(i) * stride }
	// Fill the LLC set (A..D); the L1 holds the two most recent (C, D).
	for i := 0; i < c.LLCWays; i++ {
		s.Access(mem.Access{Node: 0, Addr: at(i), Kind: mem.Load})
	}
	// Re-fetch A (reordering the LLC LRU), then alternate fresh fills
	// with L1 hits on D so D stays L1-resident while the LLC LRU walks
	// toward it; reclaiming D's LLC slot must back-invalidate the L1.
	s.Access(mem.Access{Node: 0, Addr: at(0), Kind: mem.Load})
	for i := c.LLCWays; i < 2*c.LLCWays; i++ {
		s.Access(mem.Access{Node: 0, Addr: at(c.LLCWays - 1), Kind: mem.Load})
		s.Access(mem.Access{Node: 0, Addr: at(i), Kind: mem.Load})
	}
	if s.Stats().BackInv == 0 {
		t.Error("LLC victim eviction did not back-invalidate the holder")
	}
	mustCheck(t, s)
}

func TestBase3LInclusionAndL2Hits(t *testing.T) {
	c := testConfig(true)
	s := NewSystem(c, true)
	a := addrOf(5, 2)
	s.Access(mem.Access{Node: 0, Addr: a, Kind: mem.Load})
	// Push the line out of the tiny L1 but keep it in the larger L2.
	for i := 1; i <= c.L1Ways; i++ {
		s.Access(mem.Access{Node: 0, Addr: a + mem.Addr(i*c.L1Sets*mem.LineBytes), Kind: mem.Load})
	}
	l2 := s.Stats().L2Hits
	s.Access(mem.Access{Node: 0, Addr: a, Kind: mem.Load})
	if s.Stats().L2Hits != l2+1 {
		t.Errorf("L2Hits = %d, want %d", s.Stats().L2Hits, l2+1)
	}
	mustCheck(t, s)
}

func TestTLBMiss(t *testing.T) {
	s := NewSystem(testConfig(false), true)
	// Touch more pages than the 4-entry TLB holds.
	for i := 0; i < 16; i++ {
		s.Access(mem.Access{Node: 0, Addr: mem.Addr(i * mem.PageBytes), Kind: mem.Load})
	}
	for i := 0; i < 16; i++ {
		s.Access(mem.Access{Node: 0, Addr: mem.Addr(i * mem.PageBytes), Kind: mem.Load})
	}
	if s.Stats().TLBMisses == 0 {
		t.Error("no TLB misses despite page thrashing")
	}
	mustCheck(t, s)
}

func randomRun(t *testing.T, cfg Config, seed uint64, accesses, regions int) {
	t.Helper()
	s := NewSystem(cfg, true)
	rng := mem.NewRNG(seed)
	for i := 0; i < accesses; i++ {
		node := rng.Intn(cfg.Nodes)
		region := rng.Intn(regions)
		kind := mem.Load
		switch {
		case rng.Bool(0.3):
			kind = mem.IFetch
			region += 1 << 20
		case rng.Bool(0.3):
			kind = mem.Store
		}
		s.Access(mem.Access{Node: node, Addr: mem.RegionAddr(region).Line(rng.Intn(16)).Addr(), Kind: kind})
		if i%997 == 0 {
			if err := s.CheckInvariants(); err != nil {
				t.Fatalf("seed %d after %d: %v", seed, i, err)
			}
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.L1IHits+st.L1IMisses+st.L1DHits+st.L1DMisses != uint64(accesses) {
		t.Error("hit/miss counters do not add up")
	}
}

func TestRandomBase2L(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		t.Run(fmt.Sprint(seed), func(t *testing.T) { randomRun(t, testConfig(false), seed, 20000, 40) })
	}
}

func TestRandomBase3L(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		t.Run(fmt.Sprint(seed), func(t *testing.T) { randomRun(t, testConfig(true), seed, 20000, 40) })
	}
}

func TestRandomMigratory(t *testing.T) {
	cfg := testConfig(true)
	s := NewSystem(cfg, true)
	rng := mem.NewRNG(9)
	for i := 0; i < 15000; i++ {
		node := (i / 7) % cfg.Nodes
		kind := mem.Load
		if rng.Bool(0.5) {
			kind = mem.Store
		}
		s.Access(mem.Access{Node: node, Addr: mem.RegionAddr(rng.Intn(3)).Line(rng.Intn(16)).Addr(), Kind: kind})
		if i%991 == 0 {
			if err := s.CheckInvariants(); err != nil {
				t.Fatalf("after %d: %v", i, err)
			}
		}
	}
	if s.Stats().Upgrades == 0 && s.Stats().Fwd == 0 {
		t.Error("migratory pattern exercised no coherence")
	}
	mustCheck(t, s)
}

func TestStatsAccessors(t *testing.T) {
	st := Stats{
		L1IHits: 90, L1IMisses: 10,
		L1DHits: 60, L1DMisses: 40,
		L2Hits: 30, LLCHits: 50, LLCMisses: 20,
		MissLatencySum: 500, MissCount: 25,
	}
	if st.MissRatioI() != 0.1 || st.MissRatioD() != 0.4 {
		t.Error("miss ratios wrong")
	}
	if st.L2HitRatio() != 0.3 {
		t.Errorf("L2HitRatio = %v", st.L2HitRatio())
	}
	if st.AvgMissLatency() != 20 {
		t.Error("avg miss latency wrong")
	}
	var zero Stats
	if zero.MissRatioI() != 0 || zero.L2HitRatio() != 0 || zero.AvgMissLatency() != 0 {
		t.Error("zero stats not zero")
	}
}

func TestValidateCases(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Nodes = 17 },
		func(c *Config) { c.L1Sets = 0 },
		func(c *Config) { c.L2Sets = -1 },
		func(c *Config) { c.L2Sets = 8; c.L2Ways = 0 },
		func(c *Config) { c.LLCSets = 0 },
		func(c *Config) { c.TLBSets = 0 },
	}
	for i, mutate := range bad {
		c := Base2L()
		mutate(&c)
		if c.Validate() == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestSystemAccessors(t *testing.T) {
	cfg := testConfig(true)
	s := NewSystem(cfg, false)
	if s.Config().Nodes != cfg.Nodes {
		t.Error("Config accessor wrong")
	}
	if s.Fabric() == nil || s.Meter() == nil {
		t.Error("nil accessors")
	}
	a := addrOf(1, 0)
	s.Access(mem.Access{Node: 0, Addr: a, Kind: mem.Load})
	s.ResetMeasurement()
	if s.Stats().Accesses != 0 || s.Fabric().Messages() != 0 {
		t.Error("reset did not clear counters")
	}
	res := s.Access(mem.Access{Node: 0, Addr: a, Kind: mem.Load})
	if !res.L1Hit {
		t.Error("cache contents lost on reset")
	}
	for st, name := range map[state]string{stInvalid: "I", stShared: "S", stExclusive: "E", stModified: "M"} {
		if st.String() != name {
			t.Errorf("state %d String = %q", st, st.String())
		}
	}
}
