package baseline

import (
	"fmt"
	"unsafe"

	"d2m/internal/cache"
)

// Warm-state snapshots, mirroring the core package's: a deep copy of
// everything that survives ResetMeasurement — the TLBs, the tagged
// cache levels with their MESI state and dirty bits, and the LLC with
// its directory. Statistics and energy counters are zeroed at the
// warmup boundary on both the fresh and the restored path, so they are
// not captured. The coherence oracle's version maps are debug-only and
// unsupported (Snapshot panics when the oracle is on).

// cacheSnap is the frozen state of one tagged node-cache level.
type cacheSnap struct {
	tbl   *cache.Table
	state []state
	dirty []bool
}

// nodeSnap is the frozen state of one node's private hierarchy.
type nodeSnap struct {
	tlb, tlb2    *cache.Table
	l1i, l1d, l2 *cacheSnap
}

// Snapshot is a complete warm-state capture of a baseline System,
// immutable after capture and safe for concurrent RestoreInto calls.
type Snapshot struct {
	cfg   Config
	nodes []nodeSnap
	llc   *cache.Table
	dir   []dirEntry
	bytes int64
}

const dirEntrySize = int64(unsafe.Sizeof(dirEntry{}))

func (c *nodeCache) snapshot() *cacheSnap {
	cs := &cacheSnap{
		tbl:   c.tbl.Clone(),
		state: make([]state, len(c.state)),
		dirty: make([]bool, len(c.dirty)),
	}
	copy(cs.state, c.state)
	copy(cs.dirty, c.dirty)
	return cs
}

func (c *nodeCache) restore(cs *cacheSnap) {
	c.tbl.CopyFrom(cs.tbl)
	copy(c.state, cs.state)
	copy(c.dirty, cs.dirty)
}

func (cs *cacheSnap) sizeBytes() int64 {
	return cs.tbl.SizeBytes() + int64(len(cs.state)) + int64(len(cs.dirty))
}

// Snapshot captures the system's complete warm state. The system must
// be quiescent and must not have the coherence oracle enabled.
func (s *System) Snapshot() *Snapshot {
	if s.debug {
		panic("baseline: Snapshot with coherence oracle enabled")
	}
	sn := &Snapshot{
		cfg:   s.cfg,
		nodes: make([]nodeSnap, len(s.nodes)),
		llc:   s.llc.Clone(),
		dir:   make([]dirEntry, len(s.dir)),
	}
	copy(sn.dir, s.dir)
	for i, n := range s.nodes {
		ns := &sn.nodes[i]
		ns.tlb = n.tlb.Clone()
		ns.tlb2 = n.tlb2.Clone()
		ns.l1i = n.l1i.snapshot()
		ns.l1d = n.l1d.snapshot()
		if n.l2 != nil {
			ns.l2 = n.l2.snapshot()
		}
	}
	sn.bytes = sn.computeSize()
	return sn
}

// RestoreInto overwrites dst (a freshly constructed System of the same
// configuration) with the snapshot's state. Multiple goroutines may
// restore from one snapshot concurrently.
func (sn *Snapshot) RestoreInto(dst *System) {
	if dst.cfg != sn.cfg {
		panic(fmt.Sprintf("baseline: snapshot restore config mismatch: %+v vs %+v", dst.cfg, sn.cfg))
	}
	dst.llc.CopyFrom(sn.llc)
	copy(dst.dir, sn.dir)
	for i, n := range dst.nodes {
		ns := &sn.nodes[i]
		n.tlb.CopyFrom(ns.tlb)
		n.tlb2.CopyFrom(ns.tlb2)
		n.l1i.restore(ns.l1i)
		n.l1d.restore(ns.l1d)
		if n.l2 != nil {
			n.l2.restore(ns.l2)
		}
	}
}

// SizeBytes returns the snapshot's approximate in-memory footprint.
func (sn *Snapshot) SizeBytes() int64 { return sn.bytes }

func (sn *Snapshot) computeSize() int64 {
	b := sn.llc.SizeBytes() + int64(len(sn.dir))*dirEntrySize
	for i := range sn.nodes {
		ns := &sn.nodes[i]
		b += ns.tlb.SizeBytes() + ns.tlb2.SizeBytes()
		b += ns.l1i.sizeBytes() + ns.l1d.sizeBytes()
		if ns.l2 != nil {
			b += ns.l2.sizeBytes()
		}
	}
	return b
}
