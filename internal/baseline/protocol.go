package baseline

import (
	"fmt"

	"d2m/internal/cache"
	"d2m/internal/energy"
	"d2m/internal/mem"
	"d2m/internal/noc"
	"d2m/internal/timing"
)

// Result describes one access's outcome.
type Result struct {
	Latency uint64
	L1Hit   bool
}

// pageWalkCycles is the fixed cost of a page-table walk after a TLB2
// miss (both designs walk identically; D2M's MD2 pays TLB2 the same way).
const pageWalkCycles = 60

// l2TagCycles is the L2 tag-compare time: an L2 miss is detected this
// early and the request forwarded; the full timing.L2 applies to hits.
const l2TagCycles = 4

// Access performs one memory access against the baseline hierarchy.
func (s *System) Access(a mem.Access) Result {
	if a.Node < 0 || a.Node >= s.cfg.Nodes {
		panic(fmt.Sprintf("baseline: access from node %d of %d", a.Node, s.cfg.Nodes))
	}
	n := s.nodes[a.Node]
	line := a.Addr.Line()

	s.st.Accesses++
	switch a.Kind {
	case mem.IFetch:
		s.st.Instr++
	case mem.Load:
		s.st.Reads++
	default:
		s.st.Writes++
	}

	lat := s.translate(n, a.Addr)
	l1 := n.l1d
	if a.Kind.IsInstr() {
		l1 = n.l1i
	}

	// L1 lookup: tag search plus one way-predicted data access.
	s.meter.Do(energy.OpL1Tag, 1)
	s.meter.Do(energy.OpL1Data, 1)
	lat += timing.L1
	set, way, ok := l1.lookup(line)
	if ok {
		l1.tbl.Touch(set, way)
		st := l1.stateAt(set, way)
		if a.Kind.IsWrite() && *st == stShared {
			lat += s.upgrade(n, line)
			*st = stModified
			*l1.dirtyAt(set, way) = true
		} else if a.Kind.IsWrite() {
			*st = stModified
			*l1.dirtyAt(set, way) = true
		}
		s.hitMiss(a, true)
		s.oracle(a, line)
		return Result{Latency: lat, L1Hit: true}
	}

	// L1 miss: search the L2 (Base-3L), then the LLC. A miss is known
	// after the tag compare; the full L2 latency applies only to hits.
	if n.l2 != nil {
		s.meter.Do(energy.OpL2Tag, 1)
		lat += l2TagCycles
		if set2, way2, ok2 := n.l2.lookup(line); ok2 {
			lat += timing.L2 - l2TagCycles
			s.meter.Do(energy.OpL2Data, 1)
			n.l2.tbl.Touch(set2, way2)
			st2 := *n.l2.stateAt(set2, way2)
			if a.Kind.IsWrite() && st2 == stShared {
				lat += s.upgrade(n, line)
				st2 = stModified
				*n.l2.stateAt(set2, way2) = stModified
			}
			s.st.L2Hits++
			s.fillL1(n, l1, line, st2, a.Kind.IsWrite(), &lat)
			s.hitMiss(a, false)
			s.st.MissCount++
			s.st.MissLatencySum += lat
			s.oracle(a, line)
			return Result{Latency: lat, L1Hit: false}
		}
	}

	lat += s.llcAccess(n, l1, line, a.Kind.IsWrite())
	s.hitMiss(a, false)
	s.st.MissCount++
	s.st.MissLatencySum += lat
	s.oracle(a, line)
	return Result{Latency: lat, L1Hit: false}
}

// translate charges the TLB hierarchy for the access's page.
func (s *System) translate(n *node, addr mem.Addr) (lat uint64) {
	page := addr.Page()
	s.meter.Do(energy.OpTLB, 1)
	set, way, ok := lookupTable(n.tlb, page)
	if ok {
		n.tlb.Touch(set, way)
		return 0 // overlapped with the L1 access
	}
	s.st.TLBMisses++
	s.meter.Do(energy.OpTLB2, 1)
	lat = timing.TLB2
	set2, way2, ok2 := lookupTable(n.tlb2, page)
	if ok2 {
		n.tlb2.Touch(set2, way2)
	} else {
		s.st.TLB2Misses++
		lat += pageWalkCycles
		s.meter.Do(energy.OpDRAM, 1) // page-table fetch
		v2 := n.tlb2.VictimWay(set2)
		n.tlb2.Put(set2, v2, page)
	}
	v := n.tlb.VictimWay(set)
	n.tlb.Put(set, v, page)
	return lat
}

func lookupTable(t *cache.Table, key uint64) (set, way int, ok bool) {
	set = t.SetFor(key)
	way, ok = t.Lookup(set, key)
	return set, way, ok
}

// hitMiss updates the L1 hit/miss demographics.
func (s *System) hitMiss(a mem.Access, hit bool) {
	switch {
	case a.Kind.IsInstr() && hit:
		s.st.L1IHits++
	case a.Kind.IsInstr():
		s.st.L1IMisses++
	case hit:
		s.st.L1DHits++
	default:
		s.st.L1DMisses++
	}
}

// upgrade performs an S->M upgrade through the directory: invalidate
// every other sharer.
func (s *System) upgrade(n *node, line mem.LineAddr) (lat uint64) {
	s.st.Upgrades++
	lat += s.fab.SendEP(noc.NodeEP(n.id), noc.DirEP, noc.Ctrl, noc.Base) // UpgradeReq
	s.fab.SendEP(noc.DirEP, noc.Hub, noc.Ctrl, noc.Base)                 // directory/LLC exchange
	s.meter.Do(energy.OpDir, 1)
	s.st.DirLookups++
	lat += timing.Dir
	set := s.llc.SetFor(uint64(line))
	way, ok := s.llc.Lookup(set, uint64(line))
	if !ok {
		// Inclusion guarantees an LLC entry for any cached line.
		panic(fmt.Sprintf("baseline: upgrade for uncached line %v", line))
	}
	d := s.dirAt(set, way)
	s.invalidateSharers(d, line, n.id)
	d.sharers = 1 << uint(n.id)
	d.owner = int8(n.id)
	lat += noc.TraversalCycles * 2 // Inv/Ack round trip
	return lat
}

// invalidateSharers sends invalidations to every sharer except keep and
// drops their copies. Stale sharer bits (left by silent clean evictions)
// still cost an invalidation message, as in real full-map directories.
func (s *System) invalidateSharers(d *dirEntry, line mem.LineAddr, keep int) {
	for id := 0; id < s.cfg.Nodes; id++ {
		if id == keep || d.sharers&(1<<uint(id)) == 0 {
			continue
		}
		s.fab.SendEP(noc.DirEP, noc.NodeEP(id), noc.Ctrl, noc.Base)        // Inv
		s.fab.SendEP(noc.NodeEP(id), noc.NodeEP(keep), noc.Ctrl, noc.Base) // Ack
		s.st.InvRecv++
		s.dropNodeCopies(s.nodes[id], line)
	}
	d.sharers &= 1 << uint(keep)
	if d.owner != int8(keep) {
		d.owner = -1
	}
}

// dropNodeCopies removes the line from every level of a node.
func (s *System) dropNodeCopies(n *node, line mem.LineAddr) {
	for _, c := range []*nodeCache{n.l1i, n.l1d, n.l2} {
		if c == nil {
			continue
		}
		if set, way, ok := c.lookup(line); ok {
			c.drop(set, way)
			s.meter.Do(energy.OpL1Tag, 1)
		}
	}
}

// llcAccess handles an access that missed the node's private levels.
func (s *System) llcAccess(n *node, l1 *nodeCache, line mem.LineAddr, write bool) (lat uint64) {
	lat += s.fab.SendEP(noc.NodeEP(n.id), noc.Hub, noc.Ctrl, noc.Base) // request
	s.meter.Do(energy.OpLLCTag, 1)
	s.meter.Do(energy.OpDir, 1)
	s.st.DirLookups++
	lat += timing.LLCTag + timing.Dir
	// The directory is a separate structure on the interconnect
	// (Figure 4): the LLC controller exchanges a lookup/response pair
	// with it for every shared-level access.
	s.fab.SendEP(noc.Hub, noc.DirEP, noc.Ctrl, noc.Base)
	s.fab.SendEP(noc.DirEP, noc.Hub, noc.Ctrl, noc.Base)

	set := s.llc.SetFor(uint64(line))
	way, ok := s.llc.Lookup(set, uint64(line))
	if !ok {
		// LLC miss: fetch from memory, allocate (inclusive), install.
		s.st.LLCMisses++
		s.meter.Do(energy.OpDRAM, 1)
		lat += timing.DRAM
		s.st.DRAMReads++
		way = s.evictLLCVictim(set)
		s.llc.Put(set, way, uint64(line))
		d := s.dirAt(set, way)
		*d = dirEntry{sharers: 1 << uint(n.id), owner: int8(n.id)}
		if s.debug {
			s.verLine[line] = s.verMem[line]
		}
		st := stExclusive
		if write {
			st = stModified
			d.dirty = true
		}
		lat += s.fab.SendEP(noc.Hub, noc.NodeEP(n.id), noc.Data, noc.Base)
		s.fillL2(n, line, st, &lat)
		s.fillL1(n, l1, line, st, write, &lat)
		return lat
	}

	// LLC hit.
	s.llc.Touch(set, way)
	s.st.LLCHits++
	d := s.dirAt(set, way)

	if d.owner >= 0 && int(d.owner) != n.id {
		// The line is E/M in another node: forward through it.
		s.st.Fwd++
		lat += s.fab.SendEP(noc.DirEP, noc.NodeEP(int(d.owner)), noc.Ctrl, noc.Base) // Fwd
		owner := s.nodes[d.owner]
		s.meter.Do(energy.OpL1Tag, 1)
		lat += timing.L1
		ownerDirty := s.ownerHasDirty(owner, line)
		if ownerDirty {
			d.dirty = true // dirty data folded back into the LLC
			s.meter.Do(energy.OpLLCData, 1)
		}
		if write {
			s.dropNodeCopies(owner, line)
			d.sharers &^= 1 << uint(d.owner)
		} else {
			s.downgradeOwner(owner, line)
		}
		lat += s.fab.SendEP(noc.NodeEP(int(d.owner)), noc.NodeEP(n.id), noc.Data, noc.Base) // owner -> requester
		d.owner = -1
	} else {
		s.meter.Do(energy.OpLLCData, 1)
		lat += timing.LLCData
		lat += s.fab.SendEP(noc.Hub, noc.NodeEP(n.id), noc.Data, noc.Base)
	}

	var st state
	if write {
		s.invalidateSharers(d, line, n.id)
		d.sharers = 1 << uint(n.id)
		d.owner = int8(n.id)
		d.dirty = true
		st = stModified
	} else {
		d.sharers |= 1 << uint(n.id)
		if d.sharers == 1<<uint(n.id) && d.owner < 0 {
			d.owner = int8(n.id)
			st = stExclusive
		} else {
			st = stShared
		}
	}
	s.fillL2(n, line, st, &lat)
	s.fillL1(n, l1, line, st, write, &lat)
	return lat
}

// ownerHasDirty reports whether the owner holds the line modified.
func (s *System) ownerHasDirty(owner *node, line mem.LineAddr) bool {
	for _, c := range []*nodeCache{owner.l1i, owner.l1d, owner.l2} {
		if c == nil {
			continue
		}
		if set, way, ok := c.lookup(line); ok && *c.stateAt(set, way) == stModified {
			return true
		}
	}
	return false
}

// downgradeOwner moves the owner's copy to Shared.
func (s *System) downgradeOwner(owner *node, line mem.LineAddr) {
	for _, c := range []*nodeCache{owner.l1i, owner.l1d, owner.l2} {
		if c == nil {
			continue
		}
		if set, way, ok := c.lookup(line); ok {
			*c.stateAt(set, way) = stShared
			*c.dirtyAt(set, way) = false
		}
	}
}

// fillL2 installs the line into the node's L2 (Base-3L), evicting a
// victim with inclusion back-invalidation of the L1s.
func (s *System) fillL2(n *node, line mem.LineAddr, st state, lat *uint64) {
	if n.l2 == nil {
		return
	}
	set := n.l2.tbl.SetFor(uint64(line))
	if _, ok := n.l2.tbl.Lookup(set, uint64(line)); ok {
		return
	}
	way := n.l2.tbl.VictimWay(set)
	if n.l2.tbl.Valid(set, way) {
		s.evictNodeLine(n, n.l2, set, way, true, lat)
	}
	s.meter.Do(energy.OpL2Data, 1)
	n.l2.tbl.Put(set, way, uint64(line))
	*n.l2.stateAt(set, way) = st
	*n.l2.dirtyAt(set, way) = st == stModified
}

// fillL1 installs the line into the L1.
func (s *System) fillL1(n *node, l1 *nodeCache, line mem.LineAddr, st state, write bool, lat *uint64) {
	set := l1.tbl.SetFor(uint64(line))
	way, ok := l1.tbl.Lookup(set, uint64(line))
	if !ok {
		way = l1.tbl.VictimWay(set)
		if l1.tbl.Valid(set, way) {
			s.evictNodeLine(n, l1, set, way, false, lat)
		}
	}
	s.meter.Do(energy.OpL1Data, 1)
	l1.tbl.Put(set, way, uint64(line))
	if write {
		st = stModified
	}
	*l1.stateAt(set, way) = st
	*l1.dirtyAt(set, way) = st == stModified && write
	if st == stModified {
		*l1.dirtyAt(set, way) = true
	}
}

// evictNodeLine evicts a line from a node cache level. Dirty data is
// written back into the (inclusive) LLC; an L2 eviction back-invalidates
// the L1 copies first.
func (s *System) evictNodeLine(n *node, c *nodeCache, set, way int, isL2 bool, lat *uint64) {
	key, _ := c.tbl.KeyAt(set, way)
	line := mem.LineAddr(key)
	dirty := *c.dirtyAt(set, way)
	st := *c.stateAt(set, way)
	if isL2 {
		// Inclusion: the L1s may hold the line too.
		for _, l1 := range []*nodeCache{n.l1i, n.l1d} {
			if s1, w1, ok := l1.lookup(line); ok {
				dirty = dirty || *l1.dirtyAt(s1, w1)
				s.st.BackInv++
				l1.drop(s1, w1)
				s.meter.Do(energy.OpL1Tag, 1)
			}
		}
	}
	c.drop(set, way)

	llcSet := s.llc.SetFor(uint64(line))
	llcWay, ok := s.llc.Lookup(llcSet, uint64(line))
	if !ok {
		panic(fmt.Sprintf("baseline: inclusion violated, %v not in LLC on eviction", line))
	}
	d := s.dirAt(llcSet, llcWay)
	if dirty {
		*lat += s.fab.SendEP(noc.NodeEP(n.id), noc.Hub, noc.Data, noc.Base) // writeback
		s.meter.Do(energy.OpLLCData, 1)
		d.dirty = true
	}
	if !isL2 && n.l2 != nil {
		// The L2 still holds the line (inclusive within the node); the
		// directory state is unchanged.
		if s2, w2, ok2 := n.l2.lookup(line); ok2 {
			if dirty {
				*n.l2.dirtyAt(s2, w2) = true
				*n.l2.stateAt(s2, w2) = stModified
			}
			return
		}
	}
	// The node no longer holds the line anywhere.
	d.sharers &^= 1 << uint(n.id)
	if d.owner == int8(n.id) {
		d.owner = -1
		if st == stExclusive || st == stModified {
			s.fab.SendEP(noc.NodeEP(n.id), noc.DirEP, noc.Ctrl, noc.Base) // ownership release notice
		}
	}
	_ = st
}

// evictLLCVictim frees a way in an LLC set, back-invalidating every
// holder (inclusive LLC) and writing dirty data to memory.
func (s *System) evictLLCVictim(set int) int {
	way := s.llc.VictimWay(set)
	if !s.llc.Valid(set, way) {
		return way
	}
	key, _ := s.llc.KeyAt(set, way)
	line := mem.LineAddr(key)
	d := s.dirAt(set, way)
	dirty := d.dirty
	for id := 0; id < s.cfg.Nodes; id++ {
		if d.sharers&(1<<uint(id)) == 0 {
			continue
		}
		n := s.nodes[id]
		// Recall dirty data before the back-invalidation.
		if s.ownerHasDirty(n, line) {
			dirty = true
			s.fab.SendEP(noc.NodeEP(id), noc.Hub, noc.Data, noc.Base)
		}
		s.fab.SendEP(noc.Hub, noc.NodeEP(id), noc.Ctrl, noc.Base) // back-invalidation
		s.st.BackInv++
		s.st.InvRecv++
		s.dropNodeCopies(n, line)
	}
	if dirty {
		s.meter.Do(energy.OpDRAM, 1)
		s.st.DRAMWrites++
		if s.debug {
			s.verMem[line] = s.verLine[line]
		}
	}
	*d = dirEntry{owner: -1}
	s.llc.Invalidate(set, way)
	if s.debug {
		delete(s.verLine, line)
	}
	return way
}

// oracle verifies (under the coherence debug mode) that the access
// observed the latest write. The inclusive LLC funnels all cached data,
// so one version per line suffices: it lives in verLine while the line
// is cached and in verMem otherwise.
func (s *System) oracle(a mem.Access, line mem.LineAddr) {
	if !s.debug {
		return
	}
	if a.Kind.IsWrite() {
		s.verSeq++
		s.verLine[line] = s.verSeq
		s.verLatest[line] = s.verSeq
		return
	}
	got, cached := s.verLine[line]
	if !cached {
		got = s.verMem[line]
	}
	if want := s.verLatest[line]; got != want {
		panic(fmt.Sprintf("baseline: coherence violation: %v read version %d of %v, latest write is %d",
			a, got, line, want))
	}
}
