package baseline

import (
	"fmt"

	"d2m/internal/cache"
	"d2m/internal/energy"
	"d2m/internal/mem"
	"d2m/internal/noc"
)

// MESI states for node-cache lines.
type state uint8

const (
	stInvalid state = iota
	stShared
	stExclusive
	stModified
)

func (st state) String() string {
	switch st {
	case stShared:
		return "S"
	case stExclusive:
		return "E"
	case stModified:
		return "M"
	default:
		return "I"
	}
}

// nodeCache is a conventional tagged cache level inside a node.
type nodeCache struct {
	name  string
	tbl   *cache.Table
	state []state
	dirty []bool
}

func newNodeCache(name string, sets, ways int) *nodeCache {
	n := sets * ways
	return &nodeCache{
		name:  name,
		tbl:   cache.GetTable(sets, ways),
		state: stateArrays.Get(n),
		dirty: boolArrays.Get(n),
	}
}

// release returns the cache's backing arrays to the pools for reuse by
// a later newNodeCache. The cache must not be used afterwards.
func (c *nodeCache) release() {
	cache.PutTable(c.tbl)
	stateArrays.Put(c.state)
	boolArrays.Put(c.dirty)
	c.tbl, c.state, c.dirty = nil, nil, nil
}

func (c *nodeCache) lookup(line mem.LineAddr) (set, way int, ok bool) {
	set = c.tbl.SetFor(uint64(line))
	way, ok = c.tbl.Lookup(set, uint64(line))
	return set, way, ok
}

func (c *nodeCache) stateAt(set, way int) *state { return &c.state[c.tbl.Index(set, way)] }
func (c *nodeCache) dirtyAt(set, way int) *bool  { return &c.dirty[c.tbl.Index(set, way)] }

func (c *nodeCache) drop(set, way int) {
	i := c.tbl.Index(set, way)
	c.state[i] = stInvalid
	c.dirty[i] = false
	c.tbl.Invalidate(set, way)
}

// dirEntry is the full-map directory state attached to each (inclusive)
// LLC line.
type dirEntry struct {
	sharers uint16 // may contain stale bits after silent S evictions
	owner   int8   // node holding the line in E/M, or -1
	dirty   bool   // LLC copy newer than memory
}

// node is one core's private hierarchy.
type node struct {
	id   int
	tlb  *cache.Table
	tlb2 *cache.Table
	l1i  *nodeCache
	l1d  *nodeCache
	l2   *nodeCache // nil for Base-2L
}

// System is a complete baseline machine.
type System struct {
	cfg   Config
	nodes []*node
	llc   *cache.Table
	dir   []dirEntry
	llcD  []bool // LLC line dirty (separate from dir for clarity)

	fab   *noc.Fabric
	meter *energy.Meter
	st    Stats

	// Coherence oracle, mirroring the core package's.
	verMem    map[mem.LineAddr]uint64
	verLatest map[mem.LineAddr]uint64
	verLine   map[mem.LineAddr]uint64 // version of the current cached instance
	verSeq    uint64
	debug     bool
}

// NewSystem builds a baseline system. Set coherenceDebug in tests to
// enable the read-sees-latest-write oracle.
func NewSystem(cfg Config, coherenceDebug bool) *System {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	s := &System{
		cfg:   cfg,
		meter: energy.NewMeter(energy.Default22nm()),
		debug: coherenceDebug,
	}
	s.fab = noc.NewFabricTopology(s.meter, cfg.Topology)
	s.llc = cache.GetTable(cfg.LLCSets, cfg.LLCWays)
	s.dir = dirArrays.Get(cfg.LLCSets * cfg.LLCWays)
	s.meter.AddLeakage(energy.LeakLLCSlice*8 + energy.LeakDir)
	for i := 0; i < cfg.Nodes; i++ {
		n := &node{
			id:   i,
			tlb:  cache.GetTable(cfg.TLBSets, cfg.TLBWays),
			tlb2: cache.GetTable(cfg.TLB2Sets, cfg.TLB2Ways),
			l1i:  newNodeCache(fmt.Sprintf("l1i[%d]", i), cfg.L1Sets, cfg.L1Ways),
			l1d:  newNodeCache(fmt.Sprintf("l1d[%d]", i), cfg.L1Sets, cfg.L1Ways),
		}
		if cfg.L2Sets > 0 {
			n.l2 = newNodeCache(fmt.Sprintf("l2[%d]", i), cfg.L2Sets, cfg.L2Ways)
			s.meter.AddLeakage(energy.LeakL2)
		}
		s.meter.AddLeakage(2*energy.LeakL1 + 2*energy.LeakTLB)
		s.nodes = append(s.nodes, n)
	}
	if coherenceDebug {
		s.verMem = make(map[mem.LineAddr]uint64)
		s.verLatest = make(map[mem.LineAddr]uint64)
		s.verLine = make(map[mem.LineAddr]uint64)
	}
	return s
}

// Config returns the system's configuration.
func (s *System) Config() Config { return s.cfg }

// Stats returns the accumulated counters.
func (s *System) Stats() *Stats { return &s.st }

// ResetMeasurement zeroes every statistic, traffic and dynamic-energy
// counter while keeping all cache state — the warmup boundary.
func (s *System) ResetMeasurement() {
	s.st = Stats{}
	s.fab.Reset()
	s.meter.ResetCounts()
}

// Fabric returns the interconnect.
func (s *System) Fabric() *noc.Fabric { return s.fab }

// Meter returns the energy meter.
func (s *System) Meter() *energy.Meter { return s.meter }

func (s *System) dirAt(set, way int) *dirEntry { return &s.dir[s.llc.Index(set, way)] }
