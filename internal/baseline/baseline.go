// Package baseline implements the paper's comparison systems (§V-A,
// Figure 4): Base-2L, a two-level hierarchy with per-node L1s and an
// inclusive shared LLC, and Base-3L, which adds a 256kB private L2 per
// node. Both use conventional tagged caches with perfect L1 way
// prediction, TLBs, and a full-map MESI directory co-located with the
// LLC.
//
// The protocol is resolved as atomic transactions, exactly like the D2M
// implementation it is compared against, so that traffic, latency and
// energy accounting are apples-to-apples.
package baseline

import (
	"fmt"

	"d2m/internal/noc"
)

// Config describes a baseline system.
type Config struct {
	// Nodes is the number of cores.
	Nodes int
	// L1Sets and L1Ways give each L1-I/L1-D geometry.
	L1Sets, L1Ways int
	// L2Sets and L2Ways give the per-node L2; zero sets means Base-2L.
	L2Sets, L2Ways int
	// LLCSets and LLCWays give the inclusive shared LLC.
	LLCSets, LLCWays int
	// TLBSets/TLBWays and TLB2Sets/TLB2Ways give the two TLB levels.
	TLBSets, TLBWays   int
	TLB2Sets, TLB2Ways int
	// Topology selects the interconnect model (nil = crossbar).
	Topology noc.Topology
}

// Base2L returns the paper's Base-2L configuration: 32kB 8-way L1s and
// an 8MB 32-way shared LLC.
func Base2L() Config {
	return Config{
		Nodes:  8,
		L1Sets: 64, L1Ways: 8,
		LLCSets: 4096, LLCWays: 32,
		TLBSets: 8, TLBWays: 8, // 64-entry L1 TLB
		TLB2Sets: 128, TLB2Ways: 8, // 1k-entry L2 TLB
	}
}

// Base3L returns the paper's Base-3L configuration: Base-2L plus a 256kB
// 8-way private L2 per core.
func Base3L() Config {
	c := Base2L()
	c.L2Sets, c.L2Ways = 512, 8
	return c
}

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	switch {
	case c.Nodes < 1 || c.Nodes > 16:
		return fmt.Errorf("baseline: Nodes = %d, want 1..16", c.Nodes)
	case c.L1Sets <= 0 || c.L1Ways <= 0:
		return fmt.Errorf("baseline: L1 geometry %dx%d invalid", c.L1Sets, c.L1Ways)
	case c.L2Sets < 0 || (c.L2Sets > 0 && c.L2Ways <= 0):
		return fmt.Errorf("baseline: L2 geometry %dx%d invalid", c.L2Sets, c.L2Ways)
	case c.LLCSets <= 0 || c.LLCWays <= 0:
		return fmt.Errorf("baseline: LLC geometry %dx%d invalid", c.LLCSets, c.LLCWays)
	case c.TLBSets <= 0 || c.TLBWays <= 0 || c.TLB2Sets <= 0 || c.TLB2Ways <= 0:
		return fmt.Errorf("baseline: TLB geometry invalid")
	}
	return nil
}

// Stats are the counters a baseline system accumulates; field meanings
// mirror the core package's Stats where the concepts overlap.
type Stats struct {
	Accesses uint64
	Instr    uint64
	Reads    uint64
	Writes   uint64

	L1IHits   uint64
	L1IMisses uint64
	L1DHits   uint64
	L1DMisses uint64
	L2Hits    uint64

	TLBMisses  uint64
	TLB2Misses uint64

	LLCHits    uint64
	LLCMisses  uint64
	DirLookups uint64
	InvRecv    uint64 // invalidations received by nodes (incl. stale-sharer ones)
	BackInv    uint64 // inclusion-victim back-invalidations
	Upgrades   uint64
	Fwd        uint64 // dirty/exclusive forwards from an owner node

	DRAMReads  uint64
	DRAMWrites uint64

	MissLatencySum uint64
	MissCount      uint64
}

// MissRatioI returns the L1-I miss ratio.
func (s *Stats) MissRatioI() float64 {
	return ratio(s.L1IMisses, s.L1IHits+s.L1IMisses)
}

// MissRatioD returns the L1-D miss ratio.
func (s *Stats) MissRatioD() float64 {
	return ratio(s.L1DMisses, s.L1DHits+s.L1DMisses)
}

// L2HitRatio returns hits in the private L2 over all L2 lookups (the
// "(L2 hits)" column of Table IV for Base-3L).
func (s *Stats) L2HitRatio() float64 {
	return ratio(s.L2Hits, s.L2Hits+s.LLCHits+s.LLCMisses)
}

// AvgMissLatency returns the average L1 miss latency in cycles.
func (s *Stats) AvgMissLatency() float64 {
	return ratio(s.MissLatencySum, s.MissCount)
}

func ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}
