package baseline

import "d2m/internal/cache"

// Array pools behind NewSystem/Release, mirroring the core package:
// the per-cache state arrays and the LLC directory are nearly all of a
// cold job's allocated bytes, so recycling them keeps GC load flat.
var (
	stateArrays cache.ArrayPool[state]
	boolArrays  cache.ArrayPool[bool]
	dirArrays   cache.ArrayPool[dirEntry]
)

// PoolBalance returns outstanding pooled arrays (Gets minus Puts)
// across the package's construction pools, for the leak tests.
func PoolBalance() int64 {
	return stateArrays.Balance() + boolArrays.Balance() + dirArrays.Balance()
}

// Release returns the system's large backing arrays (every cache table
// and the directory) to internal pools for reuse by a later NewSystem.
// The system must not be used afterwards.
func (s *System) Release() {
	for _, n := range s.nodes {
		cache.PutTable(n.tlb)
		cache.PutTable(n.tlb2)
		n.l1i.release()
		n.l1d.release()
		if n.l2 != nil {
			n.l2.release()
		}
		n.tlb, n.tlb2 = nil, nil
	}
	cache.PutTable(s.llc)
	dirArrays.Put(s.dir)
	s.nodes, s.llc, s.dir = nil, nil, nil
}
