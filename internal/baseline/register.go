package baseline

import (
	"d2m/internal/core"
	"d2m/internal/mem"
)

// Registration of the tagged baseline systems with the core package's
// mechanism registry: Base-2L and Base-3L become ordinary mechanisms
// next to the D2M family, so the layers above construct, snapshot and
// release them through the same MechInstance interface. The baseline
// package may import core (core never imports baseline), which is what
// lets one registry span both families.

// mechInstance adapts a *System to core.MechInstance.
type mechInstance struct{ s *System }

func (bi mechInstance) Access(a mem.Access) (uint64, bool) {
	r := bi.s.Access(a)
	return r.Latency, r.L1Hit
}
func (bi mechInstance) ResetMeasurement()            { bi.s.ResetMeasurement() }
func (bi mechInstance) EpochLen() int                { return 0 }
func (bi mechInstance) EpochTick()                   {}
func (bi mechInstance) Release()                     { bi.s.Release() }
func (bi mechInstance) Snapshot() core.MechSnapshot  { return bi.s.Snapshot() }
func (bi mechInstance) Restore(ms core.MechSnapshot) { ms.(*Snapshot).RestoreInto(bi.s) }
func (bi mechInstance) Underlying() any              { return bi.s }

func registerBaseline(name string, order int, base func() Config) {
	core.RegisterMechanism(core.Mechanism{
		Name: name, Order: order, Baseline: true,
		New: func(o core.MechOptions) core.MechInstance {
			cfg := base()
			cfg.Nodes = o.Nodes
			cfg.Topology = o.Topology
			return mechInstance{s: NewSystem(cfg, false)}
		},
	})
}

func init() {
	registerBaseline("Base-2L", 0, Base2L)
	registerBaseline("Base-3L", 1, Base3L)
}
