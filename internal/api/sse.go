package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
)

// Server-sent events (API v1.6): GET /v1/jobs/{id} and
// GET /v1/sweeps/{id} stream state transitions when the client asks
// for text/event-stream, instead of being polled. Event ids are dense
// and deterministic per resource, so a reconnect with Last-Event-ID
// resumes exactly where the previous stream broke — the shard and the
// gateway share this framing, which is why it lives in the wire
// package.

// AcceptsSSE reports whether the request negotiated an event stream:
// an Accept header listing text/event-stream.
func AcceptsSSE(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "text/event-stream")
}

// LastEventID parses the reconnect cursor: the numeric Last-Event-ID
// header a browser EventSource (or any resuming client) replays. Zero
// — start from the beginning — when absent or malformed.
func LastEventID(r *http.Request) int {
	n, err := strconv.Atoi(r.Header.Get("Last-Event-ID"))
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// SSEWriter frames events onto one text/event-stream response,
// flushing after each so the client sees every transition as it
// happens.
type SSEWriter struct {
	w  http.ResponseWriter
	fl http.Flusher
}

// NewSSEWriter starts the event stream: headers are set and the
// status line is written. It returns false when the ResponseWriter
// cannot flush (no streaming transport), in which case nothing was
// written and the caller should fall back to a plain response.
func NewSSEWriter(w http.ResponseWriter) (*SSEWriter, bool) {
	fl, ok := w.(http.Flusher)
	if !ok {
		return nil, false
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // defeat proxy buffering
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	return &SSEWriter{w: w, fl: fl}, true
}

// Event writes one event — id, event name, and data as one line of
// JSON — and flushes it. The data line is exactly json.Marshal of v,
// so two servers emitting the same value emit the same bytes.
func (s *SSEWriter) Event(id int, event string, v interface{}) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return s.Raw(id, event, data)
}

// Raw writes one event whose data bytes are already framed as a
// single line (no newlines). The gateway's job-stream proxy uses this
// to relay shard events after rewriting ids.
func (s *SSEWriter) Raw(id int, event string, data []byte) error {
	if _, err := fmt.Fprintf(s.w, "id: %d\nevent: %s\ndata: %s\n\n", id, event, data); err != nil {
		return err
	}
	s.fl.Flush()
	return nil
}
