// Package api holds the v1 wire contract of the d2m service: request
// and response shapes, the structured error envelope, the capabilities
// document, and the API revision string. It is the single definition
// that both the scheduler shards (internal/service) and the cluster
// gateway (internal/cluster) serve, so the two can never drift apart —
// before this package the gateway imported the server's types, coupling
// the transports. The package depends only on the root d2m types; it
// knows nothing about scheduling or HTTP routing beyond status mapping.
package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"d2m"
)

// Revision is the wire API revision served by shards and gateway alike,
// reported by GET /v1/capabilities. Gateways refuse to route to shards
// whose revision differs.
const Revision = "v1.8"

// KindNames is the single source of truth for the kind list every
// transport advertises: the capabilities document, the gateway's peer
// prober and the CLI help text all read this. It is derived from the
// root package's registry-backed list, so registering a mechanism is
// the only step needed to advertise it fleet-wide.
func KindNames() []string { return d2m.KindNames() }

// Engine names accepted by the "engine" request hint. EngineAuto (or
// an empty string) lets the scheduler choose; the scalar and vector
// engines are byte-identical by contract, so the hint trades scheduling
// behaviour, never results.
const (
	EngineAuto   = "auto"
	EngineScalar = d2m.EngineScalar
	EngineVector = d2m.EngineVector
)

// NormalizeEngine canonicalizes an engine hint: "" and "auto" become
// "" (scheduler's choice); "scalar" and "vector" pass through; anything
// else is an invalid_request error.
func NormalizeEngine(s string) (string, error) {
	switch s {
	case "", EngineAuto:
		return "", nil
	case EngineScalar, EngineVector:
		return s, nil
	default:
		return "", Errorf(ErrInvalidRequest,
			"unknown engine %q (want auto, scalar or vector)", s)
	}
}

// RunRequest is the body of POST /v1/run and each element of a batch.
// The simulation fields mirror d2m.Options; zero values take the
// paper's defaults. TimeoutMS, Async and Engine control job handling
// and do not affect the cache identity.
type RunRequest struct {
	Kind      string `json:"kind"`
	Benchmark string `json:"benchmark"`
	Nodes     int    `json:"nodes,omitempty"`
	Warmup    int    `json:"warmup,omitempty"`
	Measure   int    `json:"measure,omitempty"`
	Seed      uint64 `json:"seed,omitempty"`
	// MDScale is the canonical "md_scale" field. LegacyMDScale catches
	// the retired "mdscale" spelling: its compat window (one release,
	// API v1.0) has ended, and any use is rejected with a targeted
	// error pointing at md_scale rather than a generic unknown-field
	// decode failure.
	MDScale       int     `json:"md_scale,omitempty"`
	LegacyMDScale int     `json:"mdscale,omitempty"`
	Bypass        bool    `json:"bypass,omitempty"`
	Prefetch      bool    `json:"prefetch,omitempty"`
	Topology      string  `json:"topology,omitempty"`
	Placement     string  `json:"placement,omitempty"`
	LinkBandwidth float64 `json:"link_bandwidth,omitempty"`
	// Replicates, when >= 2, runs the simulation that many times with
	// decorrelated seeds (seed+1 .. seed+n) and returns the mean/std
	// aggregate next to a mean-projected Result. Capped at
	// MaxReplicates; 0 and 1 both mean a single run.
	Replicates int `json:"replicates,omitempty"`

	// TimeoutMS caps this job's total lifetime (queue wait + run) in
	// milliseconds. Zero takes the server's default deadline.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Async makes POST /v1/run return 202 with the job id immediately;
	// the result is collected via GET /v1/jobs/{id}.
	Async bool `json:"async,omitempty"`
	// Engine hints the execution path ("auto" default, "scalar",
	// "vector"); see GET /v1/capabilities for what the server supports.
	// API v1.5.
	Engine string `json:"engine,omitempty"`
}

// MaxReplicates bounds replicates per request: above this, error bars
// have long converged and the job is a denial-of-service risk.
const MaxReplicates = 64

// Normalize validates the request through the root package's shared
// parse helpers and returns the canonical simulation identity: kind,
// benchmark, defaulted options, the canonical replicate count (0 for a
// single run, 2..MaxReplicates for a replicated one), and the
// canonical engine hint ("" for auto). Errors carry wire codes, so
// handlers map them straight onto the envelope. The cluster gateway
// normalizes each request the same way to derive its warm-identity
// shard key without re-implementing validation.
func (r RunRequest) Normalize() (d2m.Kind, string, d2m.Options, int, string, error) {
	fail := func(err error) (d2m.Kind, string, d2m.Options, int, string, error) {
		return 0, "", d2m.Options{}, 0, "", err
	}
	kind, err := d2m.ParseKind(r.Kind)
	if err != nil {
		return fail(Errorf(ErrInvalidRequest, "%v", err))
	}
	if _, ok := d2m.SuiteOf(r.Benchmark); !ok {
		return fail(Errorf(ErrUnknownBenchmark,
			"d2m: unknown benchmark %q (see GET /v1/capabilities)", r.Benchmark))
	}
	if r.LegacyMDScale != 0 {
		return fail(Errorf(ErrInvalidRequest,
			`the "mdscale" field was removed in API v1.1; use "md_scale"`))
	}
	reps, err := NormalizeReplicates(r.Replicates)
	if err != nil {
		return fail(err)
	}
	engine, err := NormalizeEngine(r.Engine)
	if err != nil {
		return fail(err)
	}
	opt := d2m.Options{
		Nodes:         r.Nodes,
		Warmup:        r.Warmup,
		Measure:       r.Measure,
		Seed:          r.Seed,
		MDScale:       r.MDScale,
		Bypass:        r.Bypass,
		Prefetch:      r.Prefetch,
		Topology:      r.Topology,
		Placement:     r.Placement,
		LinkBandwidth: r.LinkBandwidth,
	}.WithDefaults()
	if err := opt.Validate(); err != nil {
		return fail(Errorf(ErrInvalidRequest, "%v", err))
	}
	return kind, r.Benchmark, opt, reps, engine, nil
}

// NormalizeReplicates canonicalizes a requested replicate count: 0 and
// 1 both mean a single run (0), anything above MaxReplicates or below
// zero is rejected.
func NormalizeReplicates(n int) (int, error) {
	switch {
	case n < 0:
		return 0, Errorf(ErrInvalidRequest, "replicates = %d is negative", n)
	case n > MaxReplicates:
		return 0, Errorf(ErrInvalidRequest,
			"replicates = %d exceeds the limit of %d", n, MaxReplicates)
	case n < 2:
		return 0, nil
	default:
		return n, nil
	}
}

// BatchRequest is the body of POST /v1/batch: an ordered list of runs
// admitted all-or-nothing.
type BatchRequest struct {
	Runs []RunRequest `json:"runs"`
}

// JobState is a job's position in its lifecycle. The spellings match
// the scheduler's internal states one-to-one.
type JobState string

const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// JobStatus is the JSON view of a job (GET /v1/jobs/{id} and the
// synchronous POST /v1/run response).
type JobStatus struct {
	ID        string   `json:"id"`
	State     JobState `json:"state"`
	Kind      string   `json:"kind"`
	Benchmark string   `json:"benchmark"`
	// Cached is set on POST responses served from the result cache
	// without touching the queue.
	Cached bool `json:"cached,omitempty"`
	// Priority is the job's scheduling class: "interactive" for runs
	// and batches, "bulk" for sweep cells.
	Priority string `json:"priority,omitempty"`
	// Engine names the execution path that produced the result
	// ("scalar" or "vector"); set once the job is done, omitted for
	// cache hits (the engine that originally computed a cached result
	// is not recorded). API v1.5.
	Engine string `json:"engine,omitempty"`
	// QueuePosition is the job's 1-based place in its class queue while
	// it is queued; omitted once it starts.
	QueuePosition int         `json:"queue_position,omitempty"`
	QueueWaitMS   float64     `json:"queue_wait_ms,omitempty"`
	RunMS         float64     `json:"run_ms,omitempty"`
	Error         string      `json:"error,omitempty"`
	Result        *d2m.Result `json:"result,omitempty"`
	// Replicated carries the mean/std aggregate of a job submitted
	// with replicates >= 2; Result then holds the mean projection of
	// the aggregated metrics.
	Replicated *d2m.Replicated `json:"replicated,omitempty"`
}

// KernelCap describes one algorithmic kernel in the capabilities
// document.
type KernelCap struct {
	Name        string `json:"name"`
	Description string `json:"description"`
}

// Capabilities is the body of GET /v1/capabilities: the server's
// catalog and limits, keyed by the API revision.
type Capabilities struct {
	APIRevision string `json:"api_revision"`
	// Engines lists the execution paths the server can use ("scalar"
	// always; "vector" when lane grouping is enabled). API v1.5.
	Engines []string `json:"engines"`
	// MaxLanes is the largest lane group the vector engine will form;
	// 1 means vector execution is disabled. API v1.5.
	MaxLanes      int                 `json:"max_lanes"`
	Suites        map[string][]string `json:"suites"`
	Kinds         []string            `json:"kinds"`
	Topologies    []string            `json:"topologies"`
	Placements    []string            `json:"placements"`
	Kernels       []KernelCap         `json:"kernels"`
	MaxReplicates int                 `json:"max_replicates"`
	// SSE reports that GET /v1/jobs/{id} and GET /v1/sweeps/{id} stream
	// live state over text/event-stream when the request asks for it
	// (Accept header), with Last-Event-ID resume. API v1.6.
	SSE bool `json:"sse"`
	// SweepsList reports the GET /v1/sweeps listing endpoint
	// (state/limit/cursor pagination, same contract as GET /v1/jobs).
	// API v1.6.
	SweepsList bool `json:"sweeps_list"`
	// Tenancy describes multi-tenant admission; omitted when the server
	// runs open (no -tenants file). API v1.6.
	Tenancy *TenancyCaps `json:"tenancy,omitempty"`
	// Traces reports the trace-ingestion endpoints (POST/GET /v1/traces):
	// uploaded access traces become "trace:<id>" benchmarks. API v1.7.
	Traces bool `json:"traces"`
}

// TenancyCaps advertises a multi-tenant server's admission contract
// and, when the capabilities request carried a valid X-API-Key, the
// caller's own limits.
type TenancyCaps struct {
	Enabled bool `json:"enabled"`
	// Tenant is the caller's resolved tenant name; empty when the
	// request carried no (or an unknown) key.
	Tenant string `json:"tenant,omitempty"`
	// Rate is the caller's sustained admission rate in jobs per second
	// (0 = unlimited), Burst its token-bucket capacity, and Share its
	// fair-queueing weight within each priority class.
	Rate  float64 `json:"rate,omitempty"`
	Burst int     `json:"burst,omitempty"`
	Share int     `json:"share,omitempty"`
}

// ErrCode is a machine-readable error category.
type ErrCode string

const (
	ErrInvalidRequest   ErrCode = "invalid_request"   // 400: malformed body or parameters
	ErrUnknownBenchmark ErrCode = "unknown_benchmark" // 400: benchmark not in the catalog
	ErrUnauthorized     ErrCode = "unauthorized"      // 401: missing or unknown API key
	ErrNotFound         ErrCode = "not_found"         // 404: unknown job or sweep id
	ErrConflict         ErrCode = "conflict"          // 409: job already settled
	ErrOverloaded       ErrCode = "overloaded"        // 429: job queue full, retry later
	ErrRateLimited      ErrCode = "rate_limited"      // 429: tenant budget exhausted
	ErrDraining         ErrCode = "draining"          // 503: server shutting down
	ErrInternal         ErrCode = "internal"          // 500: unexpected failure
)

// HTTPStatus maps a code to its status line.
func (c ErrCode) HTTPStatus() int {
	switch c {
	case ErrInvalidRequest, ErrUnknownBenchmark:
		return http.StatusBadRequest
	case ErrUnauthorized:
		return http.StatusUnauthorized
	case ErrNotFound:
		return http.StatusNotFound
	case ErrConflict:
		return http.StatusConflict
	case ErrOverloaded, ErrRateLimited:
		return http.StatusTooManyRequests
	case ErrDraining:
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// Error is an error with a wire code; handlers surface any other error
// type as ErrInternal. The optional fields below Message enrich 429
// envelopes (API v1.6): RetryAfterMS is the machine-readable backoff
// hint (the Retry-After header, kept for compat, is derived from it),
// and Tenant/Limit identify the exhausted budget on rate_limited
// rejections.
type Error struct {
	Code         ErrCode
	Message      string
	RetryAfterMS int64
	Tenant       string
	Limit        float64
}

func (e *Error) Error() string { return e.Message }

// Errorf builds a coded error from a format string.
func Errorf(code ErrCode, format string, args ...interface{}) *Error {
	return &Error{Code: code, Message: fmt.Sprintf(format, args...)}
}

// ErrorInfo is the structured half of the envelope. RetryAfterMS,
// Tenant and Limit appear on 429s (API v1.6): rate_limited carries all
// three (whose budget ran out and at what sustained rate), overloaded
// carries the backoff hint and, on multi-tenant servers, the tenant
// whose class queue filled.
type ErrorInfo struct {
	Code         ErrCode `json:"code"`
	Message      string  `json:"message"`
	RetryAfterMS int64   `json:"retry_after_ms,omitempty"`
	Tenant       string  `json:"tenant,omitempty"`
	Limit        float64 `json:"limit,omitempty"`
}

// ErrorBody is the JSON error envelope:
//
//	{"error": {"code": "...", "message": "..."}}
type ErrorBody struct {
	Error ErrorInfo `json:"error"`
}

// ErrorCode extracts the wire code from an error produced by this
// package's validation helpers; any other error reads as ErrInternal.
func ErrorCode(err error) ErrCode {
	if ae, ok := err.(*Error); ok {
		return ae.Code
	}
	return ErrInternal
}

// WriteErr renders err through the envelope at its mapped status. An
// Error carrying RetryAfterMS also sets the Retry-After header (whole
// seconds, rounded up) so pre-v1.6 clients keep their backoff hint.
func WriteErr(w http.ResponseWriter, err error) {
	ae, ok := err.(*Error)
	if !ok {
		ae = &Error{Code: ErrInternal, Message: err.Error()}
	}
	if ae.RetryAfterMS > 0 {
		w.Header().Set("Retry-After", strconv.FormatInt((ae.RetryAfterMS+999)/1000, 10))
	}
	WriteJSON(w, ae.Code.HTTPStatus(), ErrorBody{
		Error: ErrorInfo{
			Code: ae.Code, Message: ae.Message,
			RetryAfterMS: ae.RetryAfterMS, Tenant: ae.Tenant, Limit: ae.Limit,
		},
	})
}

// WriteError renders an error envelope with the given code at its
// mapped HTTP status.
func WriteError(w http.ResponseWriter, code ErrCode, format string, args ...interface{}) {
	WriteErr(w, Errorf(code, format, args...))
}

// WriteJSON renders v as indented JSON at the given status.
func WriteJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
