package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"d2m"
	"d2m/internal/api"
	"d2m/internal/service"
	"d2m/internal/service/sched"
)

// Fleet sweeps: POST /v1/sweeps at the gateway expands the grid ONCE
// (the same validation path a shard runs), then partitions the cells
// by warm-identity ring owner and submits each shard one sub-sweep
// through the explicit-Cells form of the same endpoint. Every cell of
// a warm identity lands on one shard, so snapshot reuse and
// single-flight coalescing work exactly as in a single process — the
// fleet never splits a warm chain. The orchestrator polls sub-sweeps
// (?cells=1), merges per-cell outcomes, and when a shard drains or
// dies mid-sweep, resubmits its unfinished cells to the remapped ring
// owners — the sweep survives losing a shard as long as one remains.

// gatewaySweep is the gateway's record of one fleet sweep.
type gatewaySweep struct {
	id        string
	apiKey    string // caller credential, forwarded on every sub-sweep hop
	baseline  d2m.Kind
	reps      int
	engine    string // normalized engine hint, forwarded to sub-sweeps
	timeoutMS int64
	cells     []d2m.SweepCell
	keys      []string // canonical cache key per cell
	warm      []string // warm-identity shard key per cell

	ctx    context.Context
	cancel context.CancelFunc
	doneCh chan struct{}

	mu       sync.Mutex
	state    service.SweepState
	outcome  []service.SweepCellStatus // State=="" means unresolved
	done     int
	cached   int
	failed   int
	canceled int
	created  time.Time
	finished time.Time
	summary  *service.SweepSummary
	// events mirrors the shard-side SSE event log: cell indexes in
	// settle order, with eventsCh closed and replaced on every append
	// so streamers wake without being tracked. The gateway settles
	// whole sub-sweep slices at once, so its settle order differs from
	// any one shard's — but the framing and payloads are identical.
	events   []int
	eventsCh chan struct{}
}

// settle records one cell's terminal outcome exactly once.
func (sw *gatewaySweep) settle(i int, cs service.SweepCellStatus) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	sw.settleLocked(i, cs)
}

func (sw *gatewaySweep) settleLocked(i int, cs service.SweepCellStatus) {
	if sw.outcome[i].State != "" {
		return
	}
	sw.outcome[i] = cs
	switch cs.State {
	case api.JobDone:
		sw.done++
		if cs.Cached {
			sw.cached++
		}
	case api.JobCanceled:
		sw.canceled++
	default:
		sw.failed++
	}
	sw.events = append(sw.events, i)
	close(sw.eventsCh)
	sw.eventsCh = make(chan struct{})
}

// pending lists the unresolved cell indexes.
func (sw *gatewaySweep) pending() []int {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	var out []int
	for i := range sw.outcome {
		if sw.outcome[i].State == "" {
			out = append(out, i)
		}
	}
	return out
}

// status snapshots the sweep's JSON view in the same shape a shard
// renders (no ETA: cell latencies live on the shards).
func (sw *gatewaySweep) status() service.SweepStatus {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	st := service.SweepStatus{
		ID: sw.id, State: sw.state, Total: len(sw.cells),
		Done: sw.done, Cached: sw.cached, Failed: sw.failed, Canceled: sw.canceled,
		Summary: sw.summary,
	}
	end := time.Now()
	if !sw.finished.IsZero() {
		end = sw.finished
	}
	st.ElapsedMS = float64(end.Sub(sw.created)) / float64(time.Millisecond)
	return st
}

// cellStatuses snapshots the ?cells=1 view; unresolved cells read as
// queued, mirroring the shard's rendering.
func (sw *gatewaySweep) cellStatuses() []service.SweepCellStatus {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	out := make([]service.SweepCellStatus, len(sw.outcome))
	copy(out, sw.outcome)
	for i := range out {
		if out[i].State == "" {
			out[i].State = api.JobQueued
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// HTTP handlers.

func (g *Gateway) handleSweepCreate(w http.ResponseWriter, r *http.Request) {
	var req service.SweepRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		api.WriteError(w, api.ErrInvalidRequest, "bad request body: %v", err)
		return
	}
	cells, baseline, reps, engine, err := service.ExpandSweep(req)
	if err != nil {
		api.WriteError(w, api.ErrorCode(err), "%v", err)
		return
	}

	sw := &gatewaySweep{
		id:        fmt.Sprintf("gs%08d", g.nextSweepID.Add(1)),
		apiKey:    r.Header.Get("X-API-Key"),
		baseline:  baseline,
		reps:      reps,
		engine:    engine,
		timeoutMS: req.TimeoutMS,
		cells:     cells,
		keys:      make([]string, len(cells)),
		warm:      make([]string, len(cells)),
		outcome:   make([]service.SweepCellStatus, len(cells)),
		doneCh:    make(chan struct{}),
		eventsCh:  make(chan struct{}),
		state:     service.SweepRunning,
		created:   time.Now(),
	}
	sw.ctx, sw.cancel = context.WithCancel(g.ctx)
	for i, c := range cells {
		sw.keys[i] = sched.CacheKey(c.Kind, c.Benchmark, c.Options, reps)
		sw.warm[i] = d2m.WarmKey(c.Kind, c.Benchmark, c.Options)
		// Cells the gateway has already seen (this run or a merged
		// journal) settle without touching any shard.
		if rec, ok := g.cache.get(sw.keys[i]); ok {
			g.metrics.CacheHits.Add(1)
			res := rec.Result
			sw.settle(i, service.SweepCellStatus{
				State: api.JobDone, Cached: true, Result: &res,
			})
		}
	}

	g.mu.Lock()
	g.sweeps[sw.id] = sw
	g.mu.Unlock()
	g.metrics.SweepsAccepted.Add(1)
	g.wg.Add(1)
	go g.runSweep(sw)
	api.WriteJSON(w, http.StatusAccepted, sw.status())
}

func (g *Gateway) lookupSweep(w http.ResponseWriter, r *http.Request) *gatewaySweep {
	g.mu.Lock()
	sw, ok := g.sweeps[r.PathValue("id")]
	g.mu.Unlock()
	if !ok {
		api.WriteError(w, api.ErrNotFound, "unknown sweep id %q", r.PathValue("id"))
		return nil
	}
	return sw
}

func (g *Gateway) handleSweepGet(w http.ResponseWriter, r *http.Request) {
	sw := g.lookupSweep(w, r)
	if sw == nil {
		return
	}
	if api.AcceptsSSE(r) {
		g.streamSweep(w, r, sw)
		return
	}
	st := sw.status()
	if r.URL.Query().Get("cells") == "1" {
		st.Cells = sw.cellStatuses()
	}
	api.WriteJSON(w, http.StatusOK, st)
}

// handleSweepDelete cancels a fleet sweep: the orchestrator cancels
// its active sub-sweeps on the shards and settles the remainder as
// canceled. Deleting a settled sweep is a no-op returning its status.
func (g *Gateway) handleSweepDelete(w http.ResponseWriter, r *http.Request) {
	sw := g.lookupSweep(w, r)
	if sw == nil {
		return
	}
	sw.cancel()
	api.WriteJSON(w, http.StatusOK, sw.status())
}

// ---------------------------------------------------------------------------
// Orchestration.

// runSweep drives a fleet sweep to completion: rounds of
// partition-by-owner, sub-sweep submission, and polling, until every
// cell settles or no shard remains. Cells stranded by a shard that
// drained or died rejoin the pending set and remap to the ring's new
// owners next round — bounded by one round per fleet member plus one,
// which covers shards failing one after another.
func (g *Gateway) runSweep(sw *gatewaySweep) {
	defer g.wg.Done()
	maxRounds := len(g.peers.peers) + 1
	for round := 0; round < maxRounds && sw.ctx.Err() == nil; round++ {
		pending := sw.pending()
		if len(pending) == 0 {
			break
		}
		groups := map[string][]int{}
		for _, i := range pending {
			owners := g.peers.owners(sw.warm[i], 1)
			if len(owners) == 0 {
				continue // no live shard right now
			}
			groups[owners[0].Name] = append(groups[owners[0].Name], i)
		}
		if len(groups) == 0 {
			break // fleet is gone; remaining cells settle as canceled
		}
		if round > 0 {
			g.metrics.CellsRemapped.Add(uint64(len(pending)))
			g.logf("sweep %s: remapping %d cells (round %d)", sw.id, len(pending), round)
		}
		var wg sync.WaitGroup
		for name, idxs := range groups {
			p, _ := g.peers.byName(name)
			wg.Add(1)
			go func(p Peer, idxs []int) {
				defer wg.Done()
				g.runSubSweep(sw, p, idxs)
			}(p, idxs)
		}
		wg.Wait()
	}
	g.finalizeSweep(sw)
}

// runSubSweep submits one shard-local slice of the sweep and polls it
// to settlement. Any shard loss returns with the slice's unsettled
// cells still pending; the next round remaps them.
func (g *Gateway) runSubSweep(sw *gatewaySweep, p Peer, idxs []int) {
	sub := service.SweepRequest{
		Cells:      make([]d2m.SweepCell, len(idxs)),
		TimeoutMS:  sw.timeoutMS,
		Replicates: sw.reps,
		Engine:     sw.engine,
	}
	for k, i := range idxs {
		sub.Cells[k] = sw.cells[i]
	}
	body, err := json.Marshal(sub)
	if err != nil {
		return
	}
	fr, err := g.do(sw.ctx, p, http.MethodPost, "/v1/sweeps", body, sw.apiKey)
	if err != nil {
		if sw.ctx.Err() == nil {
			g.peers.setState(p.Name, PeerDown)
			g.logf("peer %s is down (%v)", p.Name, err)
		}
		return
	}
	if isDrainingResponse(fr) {
		g.peers.setState(p.Name, PeerDraining)
		g.logf("peer %s is draining", p.Name)
		return
	}
	if fr.status != http.StatusAccepted {
		// A validation rejection cannot heal by remapping: settle the
		// slice as failed so the sweep terminates with the shard's error.
		var eb api.ErrorBody
		msg := fmt.Sprintf("shard %s rejected sub-sweep (HTTP %d)", p.Name, fr.status)
		if json.Unmarshal(fr.body, &eb) == nil && eb.Error.Message != "" {
			msg = eb.Error.Message
		}
		for _, i := range idxs {
			sw.settle(i, service.SweepCellStatus{State: api.JobFailed, Error: msg})
		}
		return
	}
	var st service.SweepStatus
	if err := json.Unmarshal(fr.body, &st); err != nil || st.ID == "" {
		return
	}
	subID := st.ID

	t := time.NewTicker(g.sweepPoll)
	defer t.Stop()
	for {
		select {
		case <-sw.ctx.Done():
			// Gateway-side cancel: release the shard's cells too.
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			g.do(ctx, p, http.MethodDelete, "/v1/sweeps/"+subID, nil, sw.apiKey)
			cancel()
			return
		case <-t.C:
		}
		fr, err := g.do(sw.ctx, p, http.MethodGet, "/v1/sweeps/"+subID+"?cells=1", nil, sw.apiKey)
		if err != nil {
			if sw.ctx.Err() == nil {
				g.peers.setState(p.Name, PeerDown)
				g.logf("peer %s is down (%v)", p.Name, err)
			}
			return
		}
		if fr.status != http.StatusOK {
			return // sub-sweep vanished (shard restarted); remap
		}
		var cur service.SweepStatus
		if err := json.Unmarshal(fr.body, &cur); err != nil {
			return
		}
		if cur.State == service.SweepRunning {
			continue
		}
		// Settled: merge the per-cell outcomes. Done and failed cells
		// are terminal; canceled cells (the shard started draining
		// mid-sweep) stay pending and remap next round.
		if len(cur.Cells) != len(idxs) {
			return
		}
		for k, i := range idxs {
			cs := cur.Cells[k]
			switch cs.State {
			case api.JobDone:
				if cs.Result != nil {
					c := sw.cells[i]
					g.cache.learn(sw.keys[i], c.Kind, c.Benchmark, *cs.Result, nil)
				}
				sw.settle(i, cs)
			case api.JobFailed:
				sw.settle(i, cs)
			}
		}
		return
	}
}

// finalizeSweep aggregates the settled cells into the same summary a
// single shard computes — d2m.SummarizeSweep over the full grid — so
// a fleet sweep's summary is byte-identical to the single-process one.
func (g *Gateway) finalizeSweep(sw *gatewaySweep) {
	sw.mu.Lock()
	for i := range sw.outcome {
		if sw.outcome[i].State == "" {
			sw.settleLocked(i, service.SweepCellStatus{
				State: api.JobCanceled, Error: "no scheduler shard available",
			})
		}
	}
	results := make([]*d2m.Result, len(sw.cells))
	for i := range sw.outcome {
		if sw.outcome[i].State == api.JobDone {
			results[i] = sw.outcome[i].Result
		}
	}
	interrupted := sw.canceled > 0 || sw.ctx.Err() != nil
	sw.mu.Unlock()

	summary := &service.SweepSummary{
		Baseline: sw.baseline.String(),
		Kinds:    d2m.SummarizeSweep(sw.baseline, sw.cells, results),
	}
	sw.mu.Lock()
	sw.summary = summary
	sw.finished = time.Now()
	if interrupted {
		sw.state = service.SweepCanceled
	} else {
		sw.state = service.SweepDone
	}
	sw.mu.Unlock()
	sw.cancel()
	close(sw.doneCh)
}
