package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"d2m"
	"d2m/internal/api"
	"d2m/internal/service"
	"d2m/internal/service/sched"
)

// Config sizes the gateway. Peers is mandatory; everything else has a
// production-sane default.
type Config struct {
	// Peers is the fixed fleet membership: each entry names one
	// scheduler shard and its base URL. Names key the hash ring, the
	// job-id routing suffix, and log/metric attribution — keep them
	// stable across restarts or warm identities remap away from their
	// accumulated snapshot state.
	Peers []Peer
	// ProbeInterval is the readiness-probe period. Zero means 2s.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one /readyz probe. Zero means 2s.
	ProbeTimeout time.Duration
	// MaxAttempts bounds how many distinct shards one submission may be
	// offered (the ring owner plus failover successors). Zero means 3.
	MaxAttempts int
	// CacheEntries is the gateway result-cache LRU capacity. Zero
	// means 4096.
	CacheEntries int
	// MergeStores lists shard journal paths to replay into the gateway
	// cache at startup (one JSONL journal per shard): a fleet restart
	// then resumes from the union of what any shard completed, even for
	// keys the ring now assigns to a different shard.
	MergeStores []string
	// SweepPoll is the sub-sweep polling period. Zero means 25ms.
	SweepPoll time.Duration
	// Logf, when non-nil, receives gateway lifecycle log lines (peer
	// state changes, sweep remaps).
	Logf func(format string, args ...interface{})
	// Client is the HTTP client used for forwarding and probing. Nil
	// means a default client with no overall timeout (synchronous runs
	// are legitimately long; cancellation flows through request
	// contexts).
	Client *http.Client
}

// Gateway fronts a fleet of scheduler shards behind the single-server
// v1 API: submissions are consistent-hashed by warm-identity key onto
// shards, responses stream back with job ids rewritten to the routable
// <localid>@<shard> form, and sweeps are expanded once at the gateway
// and fanned out shard-local so snapshot reuse and coalescing never
// split across processes.
type Gateway struct {
	peers         *peerSet
	cache         *resultCache
	client        *http.Client
	mux           *http.ServeMux
	maxAttempts   int
	probeInterval time.Duration
	probeTimeout  time.Duration
	sweepPoll     time.Duration
	logf          func(string, ...interface{})

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	metrics gatewayMetrics

	mu          sync.Mutex
	sweeps      map[string]*gatewaySweep
	nextSweepID atomic.Uint64

	// compatMu guards compatOK: the per-peer verdict of the one-time
	// API-revision check the prober runs against /v1/capabilities.
	compatMu sync.Mutex
	compatOK map[string]bool
}

// gatewayMetrics are the gateway's own counters, rendered on
// GET /metrics next to the per-shard peer-state gauges.
type gatewayMetrics struct {
	RunsForwarded    atomic.Uint64 // POST /v1/run forwarded to a shard
	BatchesForwarded atomic.Uint64 // sub-batches forwarded to shards
	SweepsAccepted   atomic.Uint64 // fleet sweeps accepted
	CacheHits        atomic.Uint64 // requests served from the gateway cache
	Failovers        atomic.Uint64 // forwards that left the ring owner for a successor
	StoreLoaded      atomic.Uint64 // journal records merged at startup
	CellsRemapped    atomic.Uint64 // sweep cells remapped off a lost or draining shard
	TracesForwarded  atomic.Uint64 // trace uploads fanned out to the fleet
}

// New builds the gateway, merges the configured shard journals into
// its result cache, runs one synchronous probe round (so the first
// request after startup sees real ring membership), and starts the
// background prober.
func New(cfg Config) (*Gateway, error) {
	if len(cfg.Peers) == 0 {
		return nil, fmt.Errorf("cluster: gateway needs at least one peer")
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 2 * time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.CacheEntries <= 0 {
		cfg.CacheEntries = 4096
	}
	if cfg.SweepPoll <= 0 {
		cfg.SweepPoll = 25 * time.Millisecond
	}
	g := &Gateway{
		peers:         newPeerSet(cfg.Peers),
		cache:         newResultCache(cfg.CacheEntries),
		client:        cfg.Client,
		maxAttempts:   cfg.MaxAttempts,
		probeInterval: cfg.ProbeInterval,
		probeTimeout:  cfg.ProbeTimeout,
		sweepPoll:     cfg.SweepPoll,
		logf:          cfg.Logf,
		sweeps:        make(map[string]*gatewaySweep),
		compatOK:      make(map[string]bool),
	}
	if g.client == nil {
		g.client = &http.Client{}
	}
	if g.logf == nil {
		g.logf = func(string, ...interface{}) {}
	}
	for _, path := range cfg.MergeStores {
		recs, err := service.ReplayJournal(path)
		if err != nil {
			return nil, fmt.Errorf("cluster: merge store %s: %w", path, err)
		}
		for _, rec := range recs {
			g.cache.put(rec.Key, rec)
		}
		g.metrics.StoreLoaded.Add(uint64(len(recs)))
	}
	g.ctx, g.cancel = context.WithCancel(context.Background())
	g.probeAll(g.ctx)
	g.wg.Add(1)
	go g.prober()

	g.mux = http.NewServeMux()
	g.mux.HandleFunc("POST /v1/run", g.handleRun)
	g.mux.HandleFunc("POST /v1/batch", g.handleBatch)
	g.mux.HandleFunc("GET /v1/jobs", g.handleJobs)
	g.mux.HandleFunc("GET /v1/jobs/{id}", g.handleJob)
	g.mux.HandleFunc("DELETE /v1/jobs/{id}", g.handleJobCancel)
	g.mux.HandleFunc("POST /v1/sweeps", g.handleSweepCreate)
	g.mux.HandleFunc("GET /v1/sweeps", g.handleSweeps)
	g.mux.HandleFunc("GET /v1/sweeps/{id}", g.handleSweepGet)
	g.mux.HandleFunc("DELETE /v1/sweeps/{id}", g.handleSweepDelete)
	g.mux.HandleFunc("POST /v1/traces", g.handleTraceUpload)
	g.mux.HandleFunc("GET /v1/traces", g.handleTraceList)
	g.mux.HandleFunc("GET /v1/traces/{id}", g.handleTraceGet)
	g.mux.HandleFunc("GET /v1/traces/{id}/raw", g.handleTraceRaw)
	g.mux.HandleFunc("GET /v1/capabilities", g.handleCapabilities)
	g.mux.HandleFunc("GET /healthz", g.handleHealthz)
	g.mux.HandleFunc("GET /readyz", g.handleReadyz)
	g.mux.HandleFunc("GET /metrics", g.handleMetrics)
	return g, nil
}

// Handler returns the gateway's HTTP handler (the same v1 surface the
// shards serve).
func (g *Gateway) Handler() http.Handler { return g.mux }

// Shutdown stops the prober and abandons outstanding sweep
// orchestration. The shards are not touched: their queued and running
// jobs finish and land in their journals.
func (g *Gateway) Shutdown(ctx context.Context) error {
	g.cancel()
	done := make(chan struct{})
	go func() { g.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ---------------------------------------------------------------------------
// Forwarding.

// forwardResult is one relayed shard response, buffered so the gateway
// can rewrite job ids before answering the client.
type forwardResult struct {
	status int
	header http.Header
	body   []byte
	peer   Peer
}

// errNoShard is returned when no live shard could take the request.
var errNoShard = fmt.Errorf("cluster: no shard available")

// do issues one forwarded request to a specific peer. apiKey, when
// non-empty, rides along as X-API-Key: with a tenant-configured fleet
// the shard is the authority on admission, so the gateway forwards the
// caller's credential on every hop instead of holding its own registry.
func (g *Gateway) do(ctx context.Context, p Peer, method, path string, body []byte, apiKey string) (forwardResult, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, p.URL+path, rd)
	if err != nil {
		return forwardResult{}, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if apiKey != "" {
		req.Header.Set("X-API-Key", apiKey)
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return forwardResult{}, err
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return forwardResult{}, err
	}
	return forwardResult{status: resp.StatusCode, header: resp.Header, body: buf, peer: p}, nil
}

// isDrainingResponse reports whether a shard response is the 503
// draining envelope (as opposed to some other 503).
func isDrainingResponse(fr forwardResult) bool {
	if fr.status != http.StatusServiceUnavailable {
		return false
	}
	var eb api.ErrorBody
	if json.Unmarshal(fr.body, &eb) != nil {
		return false
	}
	return eb.Error.Code == api.ErrDraining
}

// forwardKey routes one request by warm-identity key: the ring owner
// first, then failover successors, at most maxAttempts distinct
// shards. A transport error marks the shard Down; a draining rejection
// marks it Draining; both advance to the next candidate (safe to
// retry: submissions are content-addressed and idempotent). Every
// other response — including 429 with its Retry-After — is relayed
// as-is.
func (g *Gateway) forwardKey(ctx context.Context, key, method, path string, body []byte, apiKey string) (forwardResult, error) {
	for attempt := 0; attempt < g.maxAttempts; attempt++ {
		owners := g.peers.owners(key, g.maxAttempts)
		if len(owners) == 0 {
			return forwardResult{}, errNoShard
		}
		idx := attempt
		if idx >= len(owners) {
			idx = len(owners) - 1
		}
		p := owners[idx]
		if attempt > 0 {
			g.metrics.Failovers.Add(1)
		}
		fr, err := g.do(ctx, p, method, path, body, apiKey)
		if err != nil {
			if ctx.Err() != nil {
				return forwardResult{}, ctx.Err()
			}
			g.peers.setState(p.Name, PeerDown)
			g.logf("peer %s is down (%v)", p.Name, err)
			continue
		}
		if isDrainingResponse(fr) {
			g.peers.setState(p.Name, PeerDraining)
			g.logf("peer %s is draining", p.Name)
			continue
		}
		return fr, nil
	}
	return forwardResult{}, errNoShard
}

// relay writes a buffered shard response through to the client,
// preserving the status and the Retry-After header.
func relay(w http.ResponseWriter, fr forwardResult) {
	if ra := fr.header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	ct := fr.header.Get("Content-Type")
	if ct == "" {
		ct = "application/json"
	}
	w.Header().Set("Content-Type", ct)
	w.WriteHeader(fr.status)
	w.Write(fr.body)
}

// ---------------------------------------------------------------------------
// Job-id routing.

// routedID renders a shard-local job id in the gateway's routable
// form, and splitRouted parses it back.
func routedID(local string, p Peer) string { return local + "@" + p.Name }

func splitRouted(id string) (local, peer string, ok bool) {
	i := strings.LastIndexByte(id, '@')
	if i <= 0 || i == len(id)-1 {
		return "", "", false
	}
	return id[:i], id[i+1:], true
}

// ---------------------------------------------------------------------------
// HTTP handlers.

const maxBodyBytes = 4 << 20

func (g *Gateway) handleRun(w http.ResponseWriter, r *http.Request) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		api.WriteError(w, api.ErrInvalidRequest, "bad request body: %v", err)
		return
	}
	var req api.RunRequest
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		api.WriteError(w, api.ErrInvalidRequest, "bad request body: %v", err)
		return
	}
	kind, bench, opt, reps, _, err := req.Normalize()
	if err != nil {
		api.WriteError(w, api.ErrorCode(err), "%v", err)
		return
	}

	key := sched.CacheKey(kind, bench, opt, reps)
	if rec, ok := g.cache.get(key); ok {
		g.metrics.CacheHits.Add(1)
		res := rec.Result
		api.WriteJSON(w, http.StatusOK, api.JobStatus{
			State: api.JobDone, Kind: rec.Kind, Benchmark: rec.Benchmark,
			Cached: true, Result: &res, Replicated: rec.Replicated,
		})
		return
	}

	fr, err := g.forwardKey(r.Context(), d2m.WarmKey(kind, bench, opt), http.MethodPost, "/v1/run", raw, r.Header.Get("X-API-Key"))
	if err != nil {
		api.WriteError(w, api.ErrDraining, "no scheduler shard available")
		return
	}
	g.metrics.RunsForwarded.Add(1)
	if fr.status != http.StatusOK && fr.status != http.StatusAccepted {
		relay(w, fr)
		return
	}
	var st api.JobStatus
	if err := json.Unmarshal(fr.body, &st); err != nil {
		api.WriteError(w, api.ErrInternal, "bad shard response: %v", err)
		return
	}
	if st.ID != "" {
		st.ID = routedID(st.ID, fr.peer)
	}
	if st.State == api.JobDone && st.Result != nil {
		g.cache.learn(key, kind, bench, *st.Result, st.Replicated)
	}
	api.WriteJSON(w, fr.status, st)
}

func (g *Gateway) handleJob(w http.ResponseWriter, r *http.Request) {
	g.routeJob(w, r, http.MethodGet)
}

func (g *Gateway) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	g.routeJob(w, r, http.MethodDelete)
}

// routeJob forwards a job status or cancel request to the shard named
// in the routed id. Draining and down shards are still tried: status
// for in-flight jobs on a draining shard must keep working, and a
// down shard simply yields a 404-equivalent transport error.
func (g *Gateway) routeJob(w http.ResponseWriter, r *http.Request, method string) {
	id := r.PathValue("id")
	local, peerName, ok := splitRouted(id)
	if !ok {
		api.WriteError(w, api.ErrNotFound, "unknown job id %q", id)
		return
	}
	p, ok := g.peers.byName(peerName)
	if !ok {
		api.WriteError(w, api.ErrNotFound, "unknown shard %q in job id %q", peerName, id)
		return
	}
	if method == http.MethodGet && api.AcceptsSSE(r) {
		g.streamJobProxy(w, r, p, local)
		return
	}
	fr, err := g.do(r.Context(), p, method, "/v1/jobs/"+local, nil, r.Header.Get("X-API-Key"))
	if err != nil {
		api.WriteError(w, api.ErrInternal, "shard %s unreachable: %v", p.Name, err)
		return
	}
	var st api.JobStatus
	if json.Unmarshal(fr.body, &st) == nil && st.ID != "" {
		st.ID = routedID(st.ID, p)
		api.WriteJSON(w, fr.status, st)
		return
	}
	relay(w, fr)
}

// jobListBody mirrors the shard's GET /v1/jobs page shape.
type jobListBody struct {
	Jobs       []api.JobStatus `json:"jobs"`
	NextCursor string          `json:"next_cursor,omitempty"`
}

// handleJobs merges the fleet's job listings: every Up or Draining
// shard is asked for its newest jobs, ids are rewritten to routable
// form, and the merged list is sorted newest-first per shard order.
// Cursors do not span shards; the merged listing caps at the requested
// limit without one.
func (g *Gateway) handleJobs(w http.ResponseWriter, r *http.Request) {
	limit := 50
	if v := r.URL.Query().Get("limit"); v != "" {
		fmt.Sscanf(v, "%d", &limit)
		if limit < 1 || limit > 500 {
			limit = 50
		}
	}
	merged := jobListBody{Jobs: []api.JobStatus{}}
	for _, entry := range g.peers.snapshot() {
		if entry.State == PeerDown {
			continue
		}
		fr, err := g.do(r.Context(), entry.Peer, http.MethodGet, "/v1/jobs?"+r.URL.RawQuery, nil, r.Header.Get("X-API-Key"))
		if err != nil || fr.status != http.StatusOK {
			continue
		}
		var page jobListBody
		if json.Unmarshal(fr.body, &page) != nil {
			continue
		}
		for i := range page.Jobs {
			page.Jobs[i].ID = routedID(page.Jobs[i].ID, entry.Peer)
		}
		merged.Jobs = append(merged.Jobs, page.Jobs...)
	}
	sort.SliceStable(merged.Jobs, func(a, b int) bool { return merged.Jobs[a].ID > merged.Jobs[b].ID })
	if len(merged.Jobs) > limit {
		merged.Jobs = merged.Jobs[:limit]
	}
	api.WriteJSON(w, http.StatusOK, merged)
}

// handleCapabilities relays the capability catalog from the first
// reachable shard (the catalog is identical across a homogeneous
// fleet).
func (g *Gateway) handleCapabilities(w http.ResponseWriter, r *http.Request) {
	for _, entry := range g.peers.snapshot() {
		if entry.State == PeerDown {
			continue
		}
		fr, err := g.do(r.Context(), entry.Peer, http.MethodGet, "/v1/capabilities", nil, r.Header.Get("X-API-Key"))
		if err == nil && fr.status == http.StatusOK {
			relay(w, fr)
			return
		}
	}
	api.WriteError(w, api.ErrDraining, "no scheduler shard available")
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	up, draining, down := g.peers.counts()
	api.WriteJSON(w, http.StatusOK, map[string]interface{}{
		"status": "ok",
		"mode":   "gateway",
		"peers":  map[string]int{"up": up, "draining": draining, "down": down},
		"cached": g.cache.len(),
	})
}

// handleReadyz: the gateway is ready when at least one shard can take
// work.
func (g *Gateway) handleReadyz(w http.ResponseWriter, r *http.Request) {
	up, _, _ := g.peers.counts()
	if up == 0 {
		api.WriteJSON(w, http.StatusServiceUnavailable,
			map[string]interface{}{"status": "no shards"})
		return
	}
	api.WriteJSON(w, http.StatusOK, map[string]interface{}{"status": "ok"})
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("d2m_gateway_runs_forwarded_total", "Runs forwarded to a shard.", g.metrics.RunsForwarded.Load())
	counter("d2m_gateway_batches_forwarded_total", "Sub-batches forwarded to shards.", g.metrics.BatchesForwarded.Load())
	counter("d2m_gateway_sweeps_accepted_total", "Fleet sweeps accepted.", g.metrics.SweepsAccepted.Load())
	counter("d2m_gateway_cache_hits_total", "Requests served from the gateway result cache.", g.metrics.CacheHits.Load())
	counter("d2m_gateway_failovers_total", "Forwards that left the ring owner for a successor.", g.metrics.Failovers.Load())
	counter("d2m_gateway_store_loaded_total", "Journal records merged at startup.", g.metrics.StoreLoaded.Load())
	counter("d2m_gateway_cells_remapped_total", "Sweep cells remapped off a lost or draining shard.", g.metrics.CellsRemapped.Load())
	counter("d2m_gateway_traces_forwarded_total", "Trace uploads fanned out to the fleet.", g.metrics.TracesForwarded.Load())
	fmt.Fprintf(w, "# HELP d2m_gateway_peer_up Peer readiness by shard (1 up, 0 not).\n# TYPE d2m_gateway_peer_up gauge\n")
	for _, entry := range g.peers.snapshot() {
		v := 0
		if entry.State == PeerUp {
			v = 1
		}
		fmt.Fprintf(w, "d2m_gateway_peer_up{peer=%q} %d\n", entry.Name, v)
	}
}
