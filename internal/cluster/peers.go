package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"d2m/internal/api"
)

// PeerState is a shard's health as seen by the gateway's prober.
type PeerState int32

const (
	// PeerUp: /readyz answered 200; the peer is in the hash ring.
	PeerUp PeerState = iota
	// PeerDraining: the peer answers HTTP but refuses new admissions
	// (/readyz 503). It is out of the ring — its hash range is remapped
	// to ring successors — but still serves status and cancel for jobs
	// it already holds, so in-flight work finishes where it started.
	PeerDraining
	// PeerDown: the peer is unreachable (or has not been probed yet).
	PeerDown
)

func (s PeerState) String() string {
	switch s {
	case PeerUp:
		return "up"
	case PeerDraining:
		return "draining"
	default:
		return "down"
	}
}

// Peer is one scheduler shard: a name (stable across restarts — it
// keys the hash ring and labels the shard's metrics) and the base URL
// of its v1 API.
type Peer struct {
	Name string
	URL  string // http://host:port, no trailing slash
}

// ParsePeers parses the -peers flag format: comma-separated
// "name=url" entries, or bare URLs that are assigned the names
// shard0, shard1, ... in order.
func ParsePeers(spec string) ([]Peer, error) {
	var peers []Peer
	seen := map[string]bool{}
	for i, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		var p Peer
		if name, url, ok := strings.Cut(entry, "="); ok && !strings.Contains(name, "/") {
			p = Peer{Name: strings.TrimSpace(name), URL: strings.TrimSpace(url)}
		} else {
			p = Peer{Name: fmt.Sprintf("shard%d", i), URL: entry}
		}
		p.URL = strings.TrimRight(p.URL, "/")
		if !strings.HasPrefix(p.URL, "http://") && !strings.HasPrefix(p.URL, "https://") {
			return nil, fmt.Errorf("cluster: peer %q: URL %q must be http(s)", p.Name, p.URL)
		}
		if seen[p.Name] {
			return nil, fmt.Errorf("cluster: duplicate peer name %q", p.Name)
		}
		seen[p.Name] = true
		peers = append(peers, p)
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("cluster: no peers in %q", spec)
	}
	return peers, nil
}

// peerSet tracks the fleet's membership and health and derives the
// hash ring from the peers that are currently Up. The ring is rebuilt
// on every state change and read through an atomic-ish snapshot under
// the same mutex (membership changes are rare; lookups cheap).
type peerSet struct {
	peers []Peer // fixed at construction, ring order irrelevant

	mu    sync.Mutex
	state map[string]PeerState
	ring  *Ring // over Up peers only
}

func newPeerSet(peers []Peer) *peerSet {
	ps := &peerSet{peers: peers, state: make(map[string]PeerState, len(peers))}
	for _, p := range peers {
		ps.state[p.Name] = PeerDown // unknown until probed
	}
	ps.rebuildLocked()
	return ps
}

// rebuildLocked recomputes the ring from the Up peers. Callers hold mu.
func (ps *peerSet) rebuildLocked() {
	var up []string
	for _, p := range ps.peers {
		if ps.state[p.Name] == PeerUp {
			up = append(up, p.Name)
		}
	}
	ps.ring = NewRing(up)
}

// setState records a peer's probed (or observed) state, rebuilding the
// ring when it changed. Returns true when the state changed.
func (ps *peerSet) setState(name string, st PeerState) bool {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if ps.state[name] == st {
		return false
	}
	ps.state[name] = st
	ps.rebuildLocked()
	return true
}

// stateOf returns a peer's current state.
func (ps *peerSet) stateOf(name string) PeerState {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.state[name]
}

// owners resolves key to up to n live candidate peers: the ring owner
// first, then its failover successors.
func (ps *peerSet) owners(key string, n int) []Peer {
	ps.mu.Lock()
	names := ps.ring.Owners(key, n)
	ps.mu.Unlock()
	out := make([]Peer, 0, len(names))
	for _, name := range names {
		if p, ok := ps.byName(name); ok {
			out = append(out, p)
		}
	}
	return out
}

// byName finds a peer by name regardless of state (status and cancel
// for already-routed jobs must reach draining peers too).
func (ps *peerSet) byName(name string) (Peer, bool) {
	for _, p := range ps.peers {
		if p.Name == name {
			return p, true
		}
	}
	return Peer{}, false
}

// counts returns how many peers are in each state.
func (ps *peerSet) counts() (up, draining, down int) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	for _, st := range ps.state {
		switch st {
		case PeerUp:
			up++
		case PeerDraining:
			draining++
		default:
			down++
		}
	}
	return
}

// snapshot lists every peer with its state, in configuration order.
func (ps *peerSet) snapshot() []struct {
	Peer
	State PeerState
} {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	out := make([]struct {
		Peer
		State PeerState
	}, len(ps.peers))
	for i, p := range ps.peers {
		out[i].Peer = p
		out[i].State = ps.state[p.Name]
	}
	return out
}

// probe checks one peer's /readyz: 200 is Up, any other HTTP answer is
// Draining (the shard is alive but not admitting — draining or still
// replaying its journal), and a transport error is Down.
func probe(ctx context.Context, client *http.Client, p Peer) PeerState {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.URL+"/readyz", nil)
	if err != nil {
		return PeerDown
	}
	resp, err := client.Do(req)
	if err != nil {
		return PeerDown
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		return PeerUp
	}
	return PeerDraining
}

// verifyPeer checks an Up peer's compatibility once: the gateway
// fetches its /v1/capabilities and compares api_revision against its
// own, and checks the peer advertises every kind the gateway routes
// (a shard built against an older mechanism registry would 400 any
// request for a kind it does not know, after the gateway already
// admitted it). A mismatched shard is kept out of the ring (Down) —
// routing to it would relay responses in a shape the gateway does not
// speak — and the mismatch is logged. The verdict is cached per peer,
// so the fleet pays one capabilities fetch per shard, not one per
// probe round; a fetch that fails outright reads as Down and is
// retried on the next round.
func (g *Gateway) verifyPeer(ctx context.Context, p Peer) PeerState {
	g.compatMu.Lock()
	ok, seen := g.compatOK[p.Name]
	g.compatMu.Unlock()
	if seen {
		if ok {
			return PeerUp
		}
		return PeerDown
	}
	fr, err := g.do(ctx, p, http.MethodGet, "/v1/capabilities", nil, "")
	if err != nil || fr.status != http.StatusOK {
		return PeerDown
	}
	var caps api.Capabilities
	if err := json.Unmarshal(fr.body, &caps); err != nil {
		return PeerDown
	}
	compatible := caps.APIRevision == api.Revision
	if !compatible {
		g.logf("peer %s is incompatible: api_revision %q != gateway %q; marking down",
			p.Name, caps.APIRevision, api.Revision)
	} else if missing := missingKinds(caps.Kinds); len(missing) > 0 {
		compatible = false
		g.logf("peer %s is incompatible: kinds %v not advertised; marking down",
			p.Name, missing)
	}
	g.compatMu.Lock()
	g.compatOK[p.Name] = compatible
	g.compatMu.Unlock()
	if !compatible {
		return PeerDown
	}
	return PeerUp
}

// missingKinds returns the gateway's kinds that a peer's advertised
// list lacks (empty when the peer covers all of them; extra peer-side
// kinds are fine — the gateway simply never routes them).
func missingKinds(peerKinds []string) []string {
	have := make(map[string]bool, len(peerKinds))
	for _, k := range peerKinds {
		have[k] = true
	}
	var missing []string
	for _, k := range api.KindNames() {
		if !have[k] {
			missing = append(missing, k)
		}
	}
	return missing
}

// probeAll probes every peer once, concurrently, and applies the
// results. Returns true when any state changed.
func (g *Gateway) probeAll(ctx context.Context) bool {
	type res struct {
		name string
		st   PeerState
	}
	ch := make(chan res, len(g.peers.peers))
	for _, p := range g.peers.peers {
		go func(p Peer) {
			pctx, cancel := context.WithTimeout(ctx, g.probeTimeout)
			defer cancel()
			st := probe(pctx, g.client, p)
			if st == PeerUp {
				st = g.verifyPeer(pctx, p)
			}
			ch <- res{p.Name, st}
		}(p)
	}
	changed := false
	for range g.peers.peers {
		r := <-ch
		if g.peers.setState(r.name, r.st) {
			changed = true
			g.logf("peer %s is %s", r.name, r.st)
		}
	}
	return changed
}

// prober re-probes the fleet at the configured interval until the
// gateway shuts down.
func (g *Gateway) prober() {
	defer g.wg.Done()
	t := time.NewTicker(g.probeInterval)
	defer t.Stop()
	for {
		select {
		case <-g.ctx.Done():
			return
		case <-t.C:
			g.probeAll(g.ctx)
		}
	}
}
