package cluster

import (
	"fmt"
	"testing"
)

// TestClusterRingDeterminism: the same membership always yields the
// same placement — the property that keeps warm identities pinned to
// their snapshot state across gateway restarts.
func TestClusterRingDeterminism(t *testing.T) {
	a := NewRing([]string{"a", "b", "c"})
	b := NewRing([]string{"c", "a", "b"}) // order must not matter
	for _, key := range []string{"w1", "w2", "tpc-c|8", "graph500|4", ""} {
		if got, want := a.Owner(key), b.Owner(key); got != want {
			t.Errorf("Owner(%q) differs across construction order: %q vs %q", key, got, want)
		}
	}
}

// TestClusterRingSpread: 128 vnodes per peer should split a large key
// population roughly evenly — no shard under half or over double its
// fair share.
func TestClusterRingSpread(t *testing.T) {
	peers := []string{"a", "b", "c", "d"}
	r := NewRing(peers)
	counts := map[string]int{}
	const keys = 4000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("d2m-ns-r|bench-%d|8|5000", i))]++
	}
	fair := keys / len(peers)
	for _, p := range peers {
		if counts[p] < fair/2 || counts[p] > fair*2 {
			t.Errorf("peer %s owns %d keys, fair share %d", p, counts[p], fair)
		}
	}
}

// TestClusterRingStability: removing one peer only remaps the keys it
// owned; everything else stays put (the consistent-hashing point).
func TestClusterRingStability(t *testing.T) {
	full := NewRing([]string{"a", "b", "c"})
	without := NewRing([]string{"a", "b"})
	moved := 0
	const keys = 1000
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("warm-key-%d", i)
		before, after := full.Owner(key), without.Owner(key)
		if before == "c" {
			continue // had to move
		}
		if before != after {
			moved++
		}
	}
	if moved != 0 {
		t.Errorf("%d keys not owned by the removed peer moved anyway", moved)
	}
}

// TestClusterRingOwners: the failover sequence is distinct, starts at
// the owner, and caps at the fleet size.
func TestClusterRingOwners(t *testing.T) {
	r := NewRing([]string{"a", "b", "c"})
	owners := r.Owners("some-key", 5)
	if len(owners) != 3 {
		t.Fatalf("Owners(...,5) over 3 peers = %v, want 3 distinct", owners)
	}
	seen := map[string]bool{}
	for _, p := range owners {
		if seen[p] {
			t.Fatalf("duplicate peer %q in %v", p, owners)
		}
		seen[p] = true
	}
	if owners[0] != r.Owner("some-key") {
		t.Errorf("Owners[0] = %q, Owner = %q", owners[0], r.Owner("some-key"))
	}
	if empty := NewRing(nil); empty.Owner("k") != "" || len(empty.Owners("k", 2)) != 0 {
		t.Error("empty ring should own nothing")
	}
}

func TestClusterParsePeers(t *testing.T) {
	peers, err := ParsePeers("a=http://h1:1,b=http://h2:2")
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 2 || peers[0].Name != "a" || peers[1].URL != "http://h2:2" {
		t.Fatalf("ParsePeers = %+v", peers)
	}
	peers, err = ParsePeers("http://h1:1/, http://h2:2")
	if err != nil {
		t.Fatal(err)
	}
	if peers[0].Name != "shard0" || peers[0].URL != "http://h1:1" || peers[1].Name != "shard1" {
		t.Fatalf("bare-URL ParsePeers = %+v", peers)
	}
	for _, bad := range []string{"", "a=ftp://x", "a=http://h,a=http://h2"} {
		if _, err := ParsePeers(bad); err == nil {
			t.Errorf("ParsePeers(%q) should fail", bad)
		}
	}
}
