package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"d2m/internal/api"
	"d2m/internal/service"
)

// Gateway-side v1.6 tests: tenant-header forwarding, the job SSE
// proxy's id rewrite, and the gateway sweep stream's identity with the
// gateway polling view.

// doKey issues a request with an optional X-API-Key.
func doKey(t *testing.T, method, url, key, body string) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	if key != "" {
		req.Header.Set("X-API-Key", key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, raw
}

// sseEvent / openSSE / readEvents mirror the service-side SSE test
// helpers (test packages cannot share them).
type sseEvent struct {
	id    int
	event string
	data  []byte
}

func openSSE(t *testing.T, url string, lastID int) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	if lastID >= 1 {
		req.Header.Set("Last-Event-ID", strconv.Itoa(lastID))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("SSE GET %s = %d (%s)", url, resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE Content-Type = %q", ct)
	}
	return resp
}

func readEvents(t *testing.T, body io.Reader, max int, terminal string) []sseEvent {
	t.Helper()
	var (
		out []sseEvent
		ev  sseEvent
	)
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if ev.event != "" || len(ev.data) > 0 {
				out = append(out, ev)
				if len(out) >= max || ev.event == terminal {
					return out
				}
			}
			ev = sseEvent{}
		case strings.HasPrefix(line, "id: "):
			n, err := strconv.Atoi(line[len("id: "):])
			if err != nil {
				t.Fatalf("bad SSE id line %q", line)
			}
			ev.id = n
		case strings.HasPrefix(line, "event: "):
			ev.event = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			ev.data = []byte(line[len("data: "):])
		default:
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
	return out
}

const clusterTinyRun = `{"kind":"d2m-ns-r","benchmark":"tpc-c","nodes":2,"warmup":200,"measure":500}`

// TestGatewayForwardsTenantKey runs a tenant-enforcing shard behind
// the gateway: the shard's 401/429 decisions must pass through every
// submission path unchanged, and a valid key must reach the shard on
// run, batch, and sweep hops.
func TestGatewayForwardsTenantKey(t *testing.T) {
	share := func(n int) *int { return &n }
	pa, _, _ := newShard(t, "a", service.Config{
		Workers: 1,
		Tenants: []service.TenantSpec{
			{Name: "alice", Key: "ka", Rate: 1000, Share: share(2)},
		},
	})
	_, gts := newGatewayServer(t, Config{Peers: []Peer{pa}})

	relayed401 := func(code int, raw []byte) {
		t.Helper()
		if code != http.StatusUnauthorized {
			t.Fatalf("status = %d (%s), want 401", code, raw)
		}
		var eb api.ErrorBody
		if err := json.Unmarshal(raw, &eb); err != nil || eb.Error.Code != api.ErrUnauthorized {
			t.Fatalf("relayed envelope = %s (err %v)", raw, err)
		}
	}

	// Keyless submissions are rejected by the shard and relayed as-is.
	code, raw := doKey(t, "POST", gts.URL+"/v1/run", "", clusterTinyRun)
	relayed401(code, raw)
	code, raw = doKey(t, "POST", gts.URL+"/v1/batch", "",
		`{"runs":[`+clusterTinyRun+`]}`)
	relayed401(code, raw)

	// With the key every submission path reaches the shard.
	code, raw = doKey(t, "POST", gts.URL+"/v1/run", "ka", clusterTinyRun)
	if code != http.StatusOK {
		t.Fatalf("keyed run via gateway = %d (%s)", code, raw)
	}
	code, raw = doKey(t, "POST", gts.URL+"/v1/batch", "ka",
		`{"runs":[`+clusterTinyRun+`]}`)
	if code != http.StatusOK {
		t.Fatalf("keyed batch via gateway = %d (%s)", code, raw)
	}
	code, raw = doKey(t, "POST", gts.URL+"/v1/sweeps", "ka",
		`{"kinds":["d2m-ns-r"],"benchmarks":["tpc-c"],"nodes":2,"warmup":200,"measure":500,"seeds":[1,2]}`)
	if code != http.StatusAccepted {
		t.Fatalf("keyed sweep via gateway = %d (%s)", code, raw)
	}
	var st service.SweepStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	// The sub-sweep hops carry the key too — the sweep completes
	// instead of dying on shard-side 401s.
	resp := openSSE(t, gts.URL+"/v1/sweeps/"+st.ID, 0)
	defer resp.Body.Close()
	events := readEvents(t, resp.Body, st.Total+2, "sweep")
	if len(events) == 0 || events[len(events)-1].event != "sweep" {
		t.Fatalf("gateway sweep with tenant key never settled: %+v", events)
	}
	var final service.SweepStatus
	if err := json.Unmarshal(events[len(events)-1].data, &final); err != nil {
		t.Fatal(err)
	}
	if final.State != service.SweepDone || final.Done != st.Total {
		t.Fatalf("keyed sweep final = %s done=%d/%d", final.State, final.Done, st.Total)
	}

	// A routed job read is proxied with the key; without it the shard
	// refuses.
	code, raw = doKey(t, "POST", gts.URL+"/v1/run", "ka",
		strings.TrimSuffix(clusterTinyRun, "}")+`,"seed":9,"async":true}`)
	if code != http.StatusAccepted {
		t.Fatalf("async keyed run = %d (%s)", code, raw)
	}
	var js api.JobStatus
	if err := json.Unmarshal(raw, &js); err != nil {
		t.Fatal(err)
	}
	if code, raw = doKey(t, "GET", gts.URL+"/v1/jobs/"+js.ID, "", ""); code != http.StatusUnauthorized {
		t.Fatalf("keyless routed read = %d (%s), want 401", code, raw)
	}
	if code, raw = doKey(t, "GET", gts.URL+"/v1/jobs/"+js.ID, "ka", ""); code != http.StatusOK {
		t.Fatalf("keyed routed read = %d (%s)", code, raw)
	}
}

// TestGatewayJobSSEProxy streams a routed job through the gateway: the
// frames are the shard's, with the job id rewritten to its routed
// form.
func TestGatewayJobSSEProxy(t *testing.T) {
	pa, _, _ := newShard(t, "a", service.Config{Workers: 1})
	_, gts := newGatewayServer(t, Config{Peers: []Peer{pa}})

	code, raw, _ := postJSON(t, gts.URL+"/v1/run",
		strings.TrimSuffix(clusterTinyRun, "}")+`,"async":true}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d (%s)", code, raw)
	}
	var js api.JobStatus
	if err := json.Unmarshal(raw, &js); err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(js.ID, "@a") {
		t.Fatalf("routed id = %q", js.ID)
	}

	resp := openSSE(t, gts.URL+"/v1/jobs/"+js.ID, 0)
	defer resp.Body.Close()
	events := readEvents(t, resp.Body, 4, "")
	if len(events) == 0 {
		t.Fatal("no proxied events")
	}
	last := events[len(events)-1]
	if last.id != 3 || last.event != "state" {
		t.Fatalf("terminal frame = id %d event %q", last.id, last.event)
	}
	var st api.JobStatus
	if err := json.Unmarshal(last.data, &st); err != nil {
		t.Fatal(err)
	}
	if st.ID != js.ID {
		t.Errorf("streamed id = %q, want routed %q", st.ID, js.ID)
	}
	if st.State != api.JobDone || st.Result == nil {
		t.Errorf("terminal state = %s result?=%v", st.State, st.Result != nil)
	}

	// The proxied terminal frame agrees with the gateway polling view.
	code, raw = doKey(t, "GET", gts.URL+"/v1/jobs/"+js.ID, "", "")
	if code != http.StatusOK {
		t.Fatalf("poll = %d", code)
	}
	var polled api.JobStatus
	if err := json.Unmarshal(raw, &polled); err != nil {
		t.Fatal(err)
	}
	streamed, _ := json.Marshal(st)
	repolled, _ := json.Marshal(polled)
	if !bytes.Equal(streamed, repolled) {
		t.Errorf("proxied stream diverges from polling:\n%s\n%s", streamed, repolled)
	}
}

// TestGatewaySweepSSE streams a fanned-out sweep from the gateway's
// own event log, with a mid-stream Last-Event-ID reconnect, and checks
// the streamed cells against the gateway's ?cells=1 polling view
// byte for byte.
func TestGatewaySweepSSE(t *testing.T) {
	pa, _, _ := newShard(t, "a", service.Config{Workers: 1})
	pb, _, _ := newShard(t, "b", service.Config{Workers: 1})
	_, gts := newGatewayServer(t, Config{Peers: []Peer{pa, pb}})

	code, raw, _ := postJSON(t, gts.URL+"/v1/sweeps",
		`{"kinds":["d2m-ns-r"],"benchmarks":["tpc-c"],"nodes":2,"warmup":200,"measure":500,
		  "seeds":[1,2,3],"link_bandwidths":[0.001,0.002]}`)
	if code != http.StatusAccepted {
		t.Fatalf("sweep = %d (%s)", code, raw)
	}
	var st service.SweepStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	total := st.Total

	type cellEvent struct {
		Index int             `json:"index"`
		Cell  json.RawMessage `json:"cell"`
	}
	cells := map[int]json.RawMessage{}
	record := func(ev sseEvent) {
		var ce cellEvent
		if err := json.Unmarshal(ev.data, &ce); err != nil {
			t.Fatalf("bad cell event %s: %v", ev.data, err)
		}
		if _, dup := cells[ce.Index]; dup {
			t.Fatalf("cell %d streamed twice", ce.Index)
		}
		cells[ce.Index] = ce.Cell
	}

	// Take one event, drop the stream, resume.
	resp := openSSE(t, gts.URL+"/v1/sweeps/"+st.ID, 0)
	first := readEvents(t, resp.Body, 1, "sweep")
	resp.Body.Close()
	lastID := 0
	for _, ev := range first {
		if ev.event != "cell" {
			t.Fatalf("early terminal %q", ev.event)
		}
		record(ev)
		lastID = ev.id
	}

	resp = openSSE(t, gts.URL+"/v1/sweeps/"+st.ID, lastID)
	defer resp.Body.Close()
	for _, ev := range readEvents(t, resp.Body, total+2, "sweep") {
		if ev.id <= lastID {
			t.Errorf("resumed event id %d <= Last-Event-ID %d", ev.id, lastID)
		}
		lastID = ev.id
		if ev.event == "cell" {
			record(ev)
			continue
		}
		if ev.event != "sweep" || ev.id != total+1 {
			t.Fatalf("terminal = %q id %d, want sweep id %d", ev.event, ev.id, total+1)
		}
		var final service.SweepStatus
		if err := json.Unmarshal(ev.data, &final); err != nil {
			t.Fatal(err)
		}
		if final.State != service.SweepDone || final.Done != total || final.Summary == nil {
			t.Errorf("terminal sweep = %s done=%d summary?=%v",
				final.State, final.Done, final.Summary != nil)
		}
	}
	if len(cells) != total {
		t.Fatalf("streamed %d distinct cells, want %d", len(cells), total)
	}

	code, raw = doKey(t, "GET", gts.URL+"/v1/sweeps/"+st.ID+"?cells=1", "", "")
	if code != http.StatusOK {
		t.Fatalf("poll = %d", code)
	}
	var polled service.SweepStatus
	if err := json.Unmarshal(raw, &polled); err != nil {
		t.Fatal(err)
	}
	if len(polled.Cells) != total {
		t.Fatalf("polled %d cells", len(polled.Cells))
	}
	for i, cell := range polled.Cells {
		want, _ := json.Marshal(cell)
		if !bytes.Equal(cells[i], want) {
			t.Errorf("cell %d streamed %s, polled %s", i, cells[i], want)
		}
	}
}
