package cluster

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sync"

	"d2m"
	"d2m/internal/api"
	"d2m/internal/service"
	"d2m/internal/service/sched"
)

// POST /v1/batch at the gateway: the batch is validated whole (any bad
// run rejects it, nothing is forwarded), cached slots are served from
// the gateway's result cache, and the remaining runs are partitioned
// by warm-identity ring owner into per-shard sub-batches that forward
// concurrently. Each shard's admission keeps its all-or-nothing
// guarantee; across shards the gateway composes them conservatively:
// if ANY sub-batch is rejected 429, the whole batch answers 429 (with
// the largest Retry-After any shard asked for) and no partial results
// are returned. Sub-batches that were admitted run to completion on
// their shards and land in the content-addressed caches, so the
// client's retry re-serves those runs without recomputation and
// converges on the full batch.

// batchSlot is one run's routing state while the batch is in flight.
type batchSlot struct {
	raw  json.RawMessage // original wire form, forwarded verbatim
	key  string          // canonical cache key
	warm string          // warm-identity shard key
	kind d2m.Kind
	st   api.JobStatus
	done bool
}

// rawBatch decodes the batch envelope but keeps each run's original
// bytes, so sub-batches forward exactly what the client sent (the
// shard re-validates; the gateway never re-encodes a request).
type rawBatch struct {
	Runs []json.RawMessage `json:"runs"`
}

func (g *Gateway) handleBatch(w http.ResponseWriter, r *http.Request) {
	var raw rawBatch
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&raw); err != nil {
		api.WriteError(w, api.ErrInvalidRequest, "bad request body: %v", err)
		return
	}
	if len(raw.Runs) == 0 {
		api.WriteError(w, api.ErrInvalidRequest, "batch has no runs")
		return
	}
	if len(raw.Runs) > service.MaxBatchRuns {
		api.WriteError(w, api.ErrInvalidRequest,
			"batch has %d runs, limit is %d", len(raw.Runs), service.MaxBatchRuns)
		return
	}

	// Validate every run gateway-side before forwarding any, mirroring
	// the shard's all-or-nothing admission check.
	slots := make([]batchSlot, len(raw.Runs))
	for i, rr := range raw.Runs {
		var req api.RunRequest
		d := json.NewDecoder(bytes.NewReader(rr))
		d.DisallowUnknownFields()
		if err := d.Decode(&req); err != nil {
			api.WriteError(w, api.ErrInvalidRequest, "runs[%d]: bad run: %v", i, err)
			return
		}
		if req.Async {
			api.WriteError(w, api.ErrInvalidRequest,
				"runs[%d]: async is not supported in batches; use POST /v1/run", i)
			return
		}
		kind, bench, opt, reps, _, err := req.Normalize()
		if err != nil {
			api.WriteError(w, api.ErrorCode(err), "runs[%d]: %v", i, err)
			return
		}
		slots[i] = batchSlot{
			raw:  rr,
			key:  sched.CacheKey(kind, bench, opt, reps),
			warm: d2m.WarmKey(kind, bench, opt),
			kind: kind,
		}
	}

	// Serve what the gateway already knows.
	for i := range slots {
		if rec, ok := g.cache.get(slots[i].key); ok {
			g.metrics.CacheHits.Add(1)
			res := rec.Result
			slots[i].st = api.JobStatus{
				State: api.JobDone, Kind: rec.Kind, Benchmark: rec.Benchmark,
				Cached: true, Result: &res, Replicated: rec.Replicated,
			}
			slots[i].done = true
		}
	}

	// Forward the rest, re-partitioning by live ring owner each round so
	// a shard lost mid-batch fails over instead of failing the batch.
	// The caller's API key rides along on every sub-batch: the shards
	// hold the tenant registry and their admission answers (401, 429
	// rate_limited) relay back unchanged.
	apiKey := r.Header.Get("X-API-Key")
	type subResult struct {
		idxs    []int
		fr      forwardResult
		deliver bool // fr holds a terminal response for these slots
	}
	for attempt := 0; attempt < g.maxAttempts; attempt++ {
		groups := map[string][]int{}
		for i := range slots {
			if slots[i].done {
				continue
			}
			owners := g.peers.owners(slots[i].warm, 1)
			if len(owners) == 0 {
				api.WriteError(w, api.ErrDraining, "no scheduler shard available")
				return
			}
			groups[owners[0].Name] = append(groups[owners[0].Name], i)
		}
		if len(groups) == 0 {
			break
		}

		results := make(chan subResult, len(groups))
		var wg sync.WaitGroup
		for name, idxs := range groups {
			p, _ := g.peers.byName(name)
			wg.Add(1)
			go func(p Peer, idxs []int) {
				defer wg.Done()
				body := encodeSubBatch(slots, idxs)
				fr, err := g.do(r.Context(), p, http.MethodPost, "/v1/batch", body, apiKey)
				if err != nil {
					g.peers.setState(p.Name, PeerDown)
					g.logf("peer %s is down (%v)", p.Name, err)
					results <- subResult{idxs: idxs}
					return
				}
				if isDrainingResponse(fr) {
					g.peers.setState(p.Name, PeerDraining)
					g.logf("peer %s is draining", p.Name)
					results <- subResult{idxs: idxs}
					return
				}
				results <- subResult{idxs: idxs, fr: fr, deliver: true}
			}(p, idxs)
		}
		wg.Wait()
		close(results)
		g.metrics.BatchesForwarded.Add(uint64(len(groups)))

		for sub := range results {
			if !sub.deliver {
				continue // shard lost; these slots retry next attempt
			}
			if sub.fr.status == http.StatusTooManyRequests {
				// One overloaded shard rejects the whole batch: relay the
				// 429 (keeping its Retry-After) so the client's view stays
				// all-or-nothing.
				relay(w, sub.fr)
				return
			}
			if sub.fr.status != http.StatusOK {
				relay(w, sub.fr)
				return
			}
			var body struct {
				Results []api.JobStatus `json:"results"`
			}
			if err := json.Unmarshal(sub.fr.body, &body); err != nil || len(body.Results) != len(sub.idxs) {
				api.WriteError(w, api.ErrInternal,
					"shard %s returned a malformed batch response", sub.fr.peer.Name)
				return
			}
			for k, i := range sub.idxs {
				st := body.Results[k]
				if st.ID != "" {
					st.ID = routedID(st.ID, sub.fr.peer)
				}
				if st.State == api.JobDone && st.Result != nil {
					g.cache.learn(slots[i].key, slots[i].kind, st.Benchmark, *st.Result, st.Replicated)
				}
				slots[i].st = st
				slots[i].done = true
			}
		}
	}

	out := struct {
		Results []api.JobStatus `json:"results"`
	}{Results: make([]api.JobStatus, len(slots))}
	for i := range slots {
		if !slots[i].done {
			api.WriteError(w, api.ErrDraining, "no scheduler shard available")
			return
		}
		out.Results[i] = slots[i].st
	}
	api.WriteJSON(w, http.StatusOK, out)
}

// encodeSubBatch renders a per-shard batch body from the original run
// bytes of the chosen slots.
func encodeSubBatch(slots []batchSlot, idxs []int) []byte {
	var b bytes.Buffer
	b.WriteString(`{"runs":[`)
	for k, i := range idxs {
		if k > 0 {
			b.WriteByte(',')
		}
		b.Write(slots[i].raw)
	}
	b.WriteString(`]}`)
	return b.Bytes()
}
