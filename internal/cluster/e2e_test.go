package cluster_test

// Multi-process end-to-end test: real d2mserver binaries — two
// scheduler shards and a gateway — wired over loopback TCP, driven
// with mixed run/batch/sweep traffic, compared byte-for-byte against
// a single-process server, and drained mid-sweep. This is the one
// test that exercises the actual process boundary (flag parsing,
// JSON logging, journal files on disk, OS sockets) rather than
// in-process handlers.

import (
	"bufio"
	"bytes"
	"context"
	"d2m/internal/api"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"d2m/internal/service"
)

// buildServer compiles cmd/d2mserver once per test binary.
var buildServer = sync.OnceValues(func() (string, error) {
	dir, err := os.MkdirTemp("", "d2mserver-e2e")
	if err != nil {
		return "", err
	}
	bin := filepath.Join(dir, "d2mserver")
	out, err := exec.Command("go", "build", "-o", bin, "d2m/cmd/d2mserver").CombinedOutput()
	if err != nil {
		return "", fmt.Errorf("go build d2mserver: %v\n%s", err, out)
	}
	return bin, nil
})

// startServer spawns one d2mserver process on a kernel-assigned port
// and scrapes its bound address from the JSON startup log.
func startServer(t *testing.T, bin string, args ...string) (url string) {
	t.Helper()
	args = append([]string{"-addr", "127.0.0.1:0", "-log-format", "json"}, args...)
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Signal(os.Interrupt)
		done := make(chan struct{})
		go func() { cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			cmd.Process.Kill()
			<-done
		}
	})

	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			var line struct {
				Msg  string `json:"msg"`
				Addr string `json:"addr"`
			}
			if json.Unmarshal(sc.Bytes(), &line) == nil && line.Msg == "listening" {
				select {
				case addrCh <- line.Addr:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return "http://" + addr
	case <-time.After(15 * time.Second):
		t.Fatalf("d2mserver %v never logged its address", args)
		return ""
	}
}

func waitReady(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(url + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never became ready", url)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func post(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, raw
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, raw
}

// resultBytes strips the envelope down to the simulation result for
// byte-identity comparison (job ids and timings legitimately differ
// across topologies).
func resultBytes(t *testing.T, raw []byte) []byte {
	t.Helper()
	var st api.JobStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("decode %s: %v", raw, err)
	}
	if st.State != api.JobDone || st.Result == nil {
		t.Fatalf("job not done: %s", raw)
	}
	out, _ := json.Marshal(st.Result)
	return out
}

// TestClusterE2EProcesses drives a real 2-shard fleet: mixed
// run/batch/sweep traffic byte-identical to a single-process server,
// then a mid-sweep drain of one shard that the sweep must survive.
func TestClusterE2EProcesses(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("POSIX process management")
	}
	bin, err := buildServer()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	shardA := startServer(t, bin, "-shard", "a", "-store", filepath.Join(dir, "a.jsonl"), "-workers", "1")
	shardB := startServer(t, bin, "-shard", "b", "-store", filepath.Join(dir, "b.jsonl"), "-workers", "1")
	single := startServer(t, bin, "-shard", "single", "-workers", "1")
	waitReady(t, shardA)
	waitReady(t, shardB)
	waitReady(t, single)

	gateway := startServer(t, bin, "-gateway",
		"-peers", fmt.Sprintf("a=%s,b=%s", shardA, shardB),
		"-merge-stores", filepath.Join(dir, "a.jsonl")+","+filepath.Join(dir, "b.jsonl"),
		"-probe-interval", "100ms")
	waitReady(t, gateway)

	// --- Mixed traffic, byte-identical to the single process. ---

	runs := []string{
		`{"kind":"d2m-ns-r","benchmark":"tpc-c","nodes":2,"warmup":2000,"measure":8000,"seed":7}`,
		`{"kind":"base-2l","benchmark":"canneal","nodes":2,"warmup":2000,"measure":6000,"seed":3}`,
		`{"kind":"d2m-fs","benchmark":"tpc-c","nodes":2,"warmup":2000,"measure":6000,"seed":5}`,
	}
	for i, body := range runs {
		codeG, rawG := post(t, gateway+"/v1/run", body)
		codeS, rawS := post(t, single+"/v1/run", body)
		if codeG != http.StatusOK || codeS != http.StatusOK {
			t.Fatalf("run %d: gateway=%d single=%d (%s)", i, codeG, codeS, rawG)
		}
		if g, s := resultBytes(t, rawG), resultBytes(t, rawS); !bytes.Equal(g, s) {
			t.Errorf("run %d result differs:\n gateway %s\n single  %s", i, g, s)
		}
	}

	batch := `{"runs":[` + strings.Join(runs, ",") + `]}`
	codeG, rawG := post(t, gateway+"/v1/batch", batch)
	codeS, rawS := post(t, single+"/v1/batch", batch)
	if codeG != http.StatusOK || codeS != http.StatusOK {
		t.Fatalf("batch: gateway=%d single=%d", codeG, codeS)
	}
	var bg, bs struct {
		Results []api.JobStatus `json:"results"`
	}
	json.Unmarshal(rawG, &bg)
	json.Unmarshal(rawS, &bs)
	if len(bg.Results) != len(runs) || len(bs.Results) != len(runs) {
		t.Fatalf("batch lengths: gateway=%d single=%d", len(bg.Results), len(bs.Results))
	}
	for i := range bg.Results {
		g, _ := json.Marshal(bg.Results[i].Result)
		s, _ := json.Marshal(bs.Results[i].Result)
		if !bytes.Equal(g, s) {
			t.Errorf("batch slot %d differs:\n gateway %s\n single  %s", i, g, s)
		}
	}

	sweepBody := `{"kinds":["base-2l","d2m-ns-r"],"benchmarks":["tpc-c","canneal"],"nodes":2,"warmup":2000,"measure":4000}`
	sumG := runSweepTo(t, gateway, sweepBody, "")
	sumS := runSweepTo(t, single, sweepBody, "")
	if !bytes.Equal(sumG, sumS) {
		t.Errorf("sweep summary differs:\n gateway %s\n single  %s", sumG, sumS)
	}

	// --- Drain shard A mid-sweep; the sweep must still complete. ---

	drainSweep := `{"kinds":["base-2l","d2m-ns-r"],"benchmarks":["tpc-c","canneal","streamcluster"],"seeds":[11,12],"nodes":2,"warmup":4000,"measure":4000}`
	sum := runSweepTo(t, gateway, drainSweep, shardA)
	if sum == nil {
		t.Fatal("drained sweep returned no summary")
	}

	// The drained shard reports draining on /readyz but stays alive on
	// /healthz.
	code, _ := get(t, shardA+"/readyz")
	if code != http.StatusServiceUnavailable {
		t.Errorf("drained shard /readyz = %d, want 503", code)
	}
	code, _ = get(t, shardA+"/healthz")
	if code != http.StatusOK {
		t.Errorf("drained shard /healthz = %d, want 200", code)
	}
}

// runSweepTo posts a sweep and polls it to completion, optionally
// draining drainURL once the sweep is in flight. Returns the summary
// JSON.
func runSweepTo(t *testing.T, base, body, drainURL string) []byte {
	t.Helper()
	code, raw := post(t, base+"/v1/sweeps", body)
	if code != http.StatusAccepted {
		t.Fatalf("sweep POST = %d (%s)", code, raw)
	}
	var st service.SweepStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if drainURL != "" {
		time.Sleep(100 * time.Millisecond)
		if code, raw := post(t, drainURL+"/admin/drain", ""); code != http.StatusOK {
			t.Fatalf("drain POST = %d (%s)", code, raw)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	for {
		code, raw = get(t, base+"/v1/sweeps/"+st.ID)
		if code != http.StatusOK {
			t.Fatalf("sweep GET = %d (%s)", code, raw)
		}
		var cur service.SweepStatus
		if err := json.Unmarshal(raw, &cur); err != nil {
			t.Fatal(err)
		}
		if cur.State == service.SweepDone {
			if cur.Done != cur.Total || cur.Failed != 0 || cur.Canceled != 0 {
				t.Fatalf("sweep finished ragged: %s", raw)
			}
			out, _ := json.Marshal(cur.Summary)
			return out
		}
		if cur.State == service.SweepCanceled {
			t.Fatalf("sweep canceled: %s", raw)
		}
		select {
		case <-ctx.Done():
			t.Fatalf("sweep never settled: %s", raw)
		case <-time.After(25 * time.Millisecond):
		}
	}
}

// TestClusterThroughputScaling measures cold-job throughput through
// the gateway with one shard vs two. Needs real parallel hardware:
// on fewer than 4 CPUs the two single-worker shards would just share
// a core and show nothing.
func TestClusterThroughputScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput measurement; skipped in -short")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("need >= 4 CPUs for a meaningful scaling ratio, have %d", runtime.NumCPU())
	}
	bin, err := buildServer()
	if err != nil {
		t.Fatal(err)
	}

	shardA := startServer(t, bin, "-shard", "a", "-workers", "1")
	shardB := startServer(t, bin, "-shard", "b", "-workers", "1")
	waitReady(t, shardA)
	waitReady(t, shardB)
	gw1 := startServer(t, bin, "-gateway", "-peers", "a="+shardA)
	gw2 := startServer(t, bin, "-gateway", "-peers", fmt.Sprintf("a=%s,b=%s", shardA, shardB))
	waitReady(t, gw1)
	waitReady(t, gw2)

	const jobs = 24
	measure := func(base string, seedBase int) float64 {
		var wg sync.WaitGroup
		start := time.Now()
		errs := make(chan error, jobs)
		for i := 0; i < jobs; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				body := fmt.Sprintf(
					`{"kind":"d2m-ns-r","benchmark":"tpc-c","nodes":2,"warmup":2000,"measure":8000,"seed":%d}`,
					seedBase+i)
				resp, err := http.Post(base+"/v1/run", "application/json", strings.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("POST = %d", resp.StatusCode)
				}
			}(i)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		return float64(jobs) / time.Since(start).Seconds()
	}

	one := measure(gw1, 1000)
	two := measure(gw2, 2000)
	ratio := two / one
	t.Logf("cold throughput: 1 shard %.1f jobs/s, 2 shards %.1f jobs/s (%.2fx)", one, two, ratio)
	if ratio < 1.7 {
		t.Errorf("2-shard scaling = %.2fx, want >= 1.7x", ratio)
	}
}
