package cluster

import (
	"container/list"
	"sync"

	"d2m"
	"d2m/internal/service"
)

// resultCache is the gateway's own content-addressed LRU, keyed by the
// same canonical cache key the shards use (sched.CacheKey). It is
// seeded from the shards' merged journals at startup and learns every
// result that flows back through the gateway, so repeat submissions
// are served without a forwarding hop — and, after a fleet restart,
// without recomputation even when the hash ring assigns a key to a
// different shard than the one that originally ran it.
type resultCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recent
	m     map[string]*list.Element
}

type cacheEntry struct {
	key string
	rec service.StoreRecord
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{cap: capacity, order: list.New(), m: make(map[string]*list.Element)}
}

func (c *resultCache) get(key string) (service.StoreRecord, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return service.StoreRecord{}, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).rec, true
}

func (c *resultCache) put(key string, rec service.StoreRecord) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		el.Value.(*cacheEntry).rec = rec
		c.order.MoveToFront(el)
		return
	}
	c.m[key] = c.order.PushFront(&cacheEntry{key: key, rec: rec})
	for c.order.Len() > c.cap {
		last := c.order.Back()
		delete(c.m, last.Value.(*cacheEntry).key)
		c.order.Remove(last)
	}
}

func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// learn records a settled job's result under its content address.
func (c *resultCache) learn(key string, kind d2m.Kind, bench string, res d2m.Result, rep *d2m.Replicated) {
	c.put(key, service.StoreRecord{
		Key: key, Kind: kind.String(), Benchmark: bench, Result: res, Replicated: rep,
	})
}
