package cluster

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"d2m/internal/api"
	"d2m/internal/service"
)

// Gateway-side live streaming (API v1.6). Jobs live on exactly one
// shard, so GET /v1/jobs/{id} with Accept: text/event-stream is a
// streaming proxy: the gateway opens the shard's stream and relays
// each frame, rewriting the data line's job id to the routable
// <localid>@<shard> form and keeping the shard's event ids — a client
// that reconnects through the gateway replays the same Last-Event-ID
// it would give the shard directly. Fleet sweeps are
// gateway-orchestrated, so GET /v1/sweeps/{id} streams from the
// gateway's own merged event log with the same framing and payload
// shapes a shard emits.

// streamJobProxy relays one shard's job event stream.
func (g *Gateway) streamJobProxy(w http.ResponseWriter, r *http.Request, p Peer, local string) {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, p.URL+"/v1/jobs/"+local, nil)
	if err != nil {
		api.WriteError(w, api.ErrInternal, "%v", err)
		return
	}
	req.Header.Set("Accept", "text/event-stream")
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		req.Header.Set("Last-Event-ID", v)
	}
	if k := r.Header.Get("X-API-Key"); k != "" {
		req.Header.Set("X-API-Key", k)
	}
	resp, err := g.client.Do(req)
	if err != nil {
		api.WriteError(w, api.ErrInternal, "shard %s unreachable: %v", p.Name, err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK ||
		!strings.Contains(resp.Header.Get("Content-Type"), "text/event-stream") {
		// Not a stream (404, 401, ...): relay the envelope as-is.
		buf, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
		relay(w, forwardResult{status: resp.StatusCode, header: resp.Header, body: buf, peer: p})
		return
	}
	out, ok := api.NewSSEWriter(w)
	if !ok {
		api.WriteError(w, api.ErrInternal, "response writer cannot stream")
		return
	}

	// Relay frame by frame. Only the data line changes, and only its id
	// field: the shard and the gateway marshal the same JobStatus type,
	// so the re-encoded line is byte-identical apart from the routed id.
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var id int
	var event string
	var data []byte
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if data != nil {
				if event == "state" {
					var st api.JobStatus
					if json.Unmarshal(data, &st) == nil && st.ID != "" {
						st.ID = routedID(st.ID, p)
						if b, err := json.Marshal(st); err == nil {
							data = b
						}
					}
				}
				if out.Raw(id, event, data) != nil {
					return
				}
			}
			id, event, data = 0, "", nil
		case strings.HasPrefix(line, "id: "):
			id, _ = strconv.Atoi(strings.TrimPrefix(line, "id: "))
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = []byte(strings.TrimPrefix(line, "data: "))
		}
	}
}

// cellStatus renders one cell for an SSE "cell" event, unresolved
// cells reading as queued exactly like the ?cells=1 view.
func (sw *gatewaySweep) cellStatus(i int) service.SweepCellStatus {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	cs := sw.outcome[i]
	if cs.State == "" {
		cs.State = api.JobQueued
	}
	return cs
}

// streamSweep replays the fleet sweep's merged event log from the
// client's cursor and follows the live tail — the same loop the shard
// runs, over the gateway's own log.
func (g *Gateway) streamSweep(w http.ResponseWriter, r *http.Request, sw *gatewaySweep) {
	out, ok := api.NewSSEWriter(w)
	if !ok {
		api.WriteJSON(w, http.StatusOK, sw.status())
		return
	}
	last := api.LastEventID(r)
	for {
		sw.mu.Lock()
		n := len(sw.events)
		settled := sw.state != service.SweepRunning
		ch := sw.eventsCh
		if last > n {
			last = n
		}
		pending := append([]int(nil), sw.events[last:n]...)
		sw.mu.Unlock()

		for _, i := range pending {
			last++
			ev := service.SweepCellEvent{Index: i, Cell: sw.cellStatus(i)}
			if err := out.Event(last, "cell", ev); err != nil {
				return
			}
		}
		if settled {
			out.Event(n+1, "sweep", sw.status())
			return
		}
		select {
		case <-ch:
		case <-sw.doneCh:
		case <-r.Context().Done():
			return
		}
	}
}

// handleSweeps lists the gateway's fleet sweeps newest first with the
// same state filter and cursor pagination a shard serves. The listing
// is gateway-local: fleet sweeps exist only here (the shards see
// anonymous sub-sweeps), so nothing is fanned out.
func (g *Gateway) handleSweeps(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var filter service.SweepState
	switch st := q.Get("state"); st {
	case "":
	case string(service.SweepRunning), string(service.SweepDone), string(service.SweepCanceled):
		filter = service.SweepState(st)
	default:
		api.WriteError(w, api.ErrInvalidRequest,
			"unknown state %q: want running, done, or canceled", st)
		return
	}
	limit := 50
	if raw := q.Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 {
			api.WriteError(w, api.ErrInvalidRequest, "bad limit %q", raw)
			return
		}
		limit = n
		if limit > 500 {
			limit = 500
		}
	}
	cursor := q.Get("cursor")

	g.mu.Lock()
	sweeps := make([]*gatewaySweep, 0, len(g.sweeps))
	for _, sw := range g.sweeps {
		sweeps = append(sweeps, sw)
	}
	g.mu.Unlock()
	sort.Slice(sweeps, func(a, b int) bool { return sweeps[a].id > sweeps[b].id })

	list := service.SweepList{Sweeps: []service.SweepStatus{}}
	for _, sw := range sweeps {
		if cursor != "" && sw.id >= cursor {
			continue
		}
		st := sw.status()
		if filter != "" && st.State != filter {
			continue
		}
		st.Summary = nil
		if len(list.Sweeps) == limit {
			list.NextCursor = list.Sweeps[limit-1].ID
			break
		}
		list.Sweeps = append(list.Sweeps, st)
	}
	api.WriteJSON(w, http.StatusOK, list)
}
