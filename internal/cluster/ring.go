// Package cluster turns a set of d2mserver scheduler processes into
// one service: a gateway consistent-hashes each submission's
// warm-identity key (d2m.WarmKey) onto N shards and forwards it over
// the existing v1 HTTP/JSON wire format. Sharding by warm identity is
// the distributed form of the simulator's data-oriented premise — work
// lands next to the warm-snapshot state it reuses, so snapshot
// restores and single-flight coalescing keep working even though no
// state is shared between processes. The gateway owns peer lifecycle
// (readiness probing, draining, failover) and merges the shards'
// append-only result journals on replay so a fleet restart resumes
// from the union of what any shard completed.
package cluster

import (
	"fmt"
	"sort"
)

// ringHash is the placement hash: 64-bit FNV-1a through a
// splitmix64-style finalizer. FNV alone avalanches poorly on the short
// strings vnode labels and warm keys tend to be — without the mixer,
// 128 vnodes per peer still carve the ring into a handful of lopsided
// arcs. Both halves are inlined so placement is self-contained and
// stable across releases (the ring's layout is part of the fleet's
// behavior: changing it remaps warm identities away from their
// accumulated snapshot state).
func ringHash(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// ringVnodes is the number of virtual nodes per peer: enough that a
// handful of shards split the key space within a few percent of evenly,
// cheap enough that rebuilding the ring on a membership change is
// negligible.
const ringVnodes = 128

// Ring is an immutable consistent-hash ring over peer names. Build a
// new one on every membership change (peers are few and vnodes cheap);
// lookups are lock-free.
type Ring struct {
	points []ringPoint // sorted by hash
	peers  int
}

type ringPoint struct {
	hash uint64
	peer string
}

// NewRing builds a ring over the given peer names. An empty peer list
// yields an empty ring whose lookups return nothing.
func NewRing(peers []string) *Ring {
	r := &Ring{peers: len(peers)}
	for _, p := range peers {
		for v := 0; v < ringVnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash: ringHash(fmt.Sprintf("%s#%d", p, v)),
				peer: p,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		pa, pb := r.points[a], r.points[b]
		if pa.hash != pb.hash {
			return pa.hash < pb.hash
		}
		return pa.peer < pb.peer // deterministic on (vanishingly rare) collisions
	})
	return r
}

// Owner returns the peer owning key, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	owners := r.Owners(key, 1)
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}

// Owners returns up to n distinct peers in ring order starting at
// key's successor point: the owner first, then the failover sequence a
// forwarder walks when the owner is unreachable. Every caller walking
// the same key sees the same sequence, so retries from different
// requests converge on the same fallback shard (keeping the coalescing
// and snapshot-reuse story intact even during failover).
func (r *Ring) Owners(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > r.peers {
		n = r.peers
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[string]bool, n)
	owners := make([]string, 0, n)
	for i := 0; i < len(r.points) && len(owners) < n; i++ {
		p := r.points[(start+i)%len(r.points)].peer
		if !seen[p] {
			seen[p] = true
			owners = append(owners, p)
		}
	}
	return owners
}
