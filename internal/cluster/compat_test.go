package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"d2m/internal/api"
	"d2m/internal/service"
)

// fakeShard serves /readyz 200 and /v1/capabilities at an arbitrary
// API revision and kind list — a stand-in for a shard running a
// different build.
func fakeShard(t *testing.T, revision string, kinds []string) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var runs atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"status":"ok"}`)
	})
	mux.HandleFunc("GET /v1/capabilities", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(api.Capabilities{APIRevision: revision, Kinds: kinds})
	})
	mux.HandleFunc("POST /v1/run", func(w http.ResponseWriter, r *http.Request) {
		runs.Add(1)
		fmt.Fprint(w, `{"id":"j00000001","state":"done"}`)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts, &runs
}

// TestGatewayRejectsRevisionMismatch: the prober fetches each shard's
// /v1/capabilities once; a shard speaking a different API revision is
// marked Down and never routed to, even though its /readyz says 200.
func TestGatewayRejectsRevisionMismatch(t *testing.T) {
	old, oldRuns := fakeShard(t, "v1.4", api.KindNames())
	pGood, _, _ := newShard(t, "good", service.Config{Workers: 1})

	var (
		logMu sync.Mutex
		logs  []string
	)
	g, gts := newGatewayServer(t, Config{
		Peers: []Peer{{Name: "old", URL: old.URL}, pGood},
		Logf: func(format string, args ...interface{}) {
			logMu.Lock()
			logs = append(logs, fmt.Sprintf(format, args...))
			logMu.Unlock()
		},
	})

	if st := g.peers.stateOf("old"); st != PeerDown {
		t.Fatalf("mismatched peer state = %s, want down", st)
	}
	if st := g.peers.stateOf("good"); st != PeerUp {
		t.Fatalf("matching peer state = %s, want up", st)
	}
	want := fmt.Sprintf("peer old is incompatible: api_revision %q != gateway %q; marking down",
		"v1.4", api.Revision)
	logMu.Lock()
	found := false
	for _, line := range logs {
		if line == want {
			found = true
		}
	}
	if !found {
		t.Errorf("no incompatibility log line; got %q", logs)
	}
	logMu.Unlock()

	// Everything routes to the compatible shard: the mismatched one
	// never sees a run, whatever the warm key hashes to.
	for seed := 0; seed < 4; seed++ {
		body := fmt.Sprintf(
			`{"kind":"d2m-ns-r","benchmark":"tpc-c","nodes":2,"warmup":2000,"measure":4000,"seed":%d}`, seed)
		code, raw, _ := postJSON(t, gts.URL+"/v1/run", body)
		if code != http.StatusOK {
			t.Fatalf("POST /v1/run = %d (%s)", code, raw)
		}
	}
	if n := oldRuns.Load(); n != 0 {
		t.Errorf("mismatched shard received %d runs, want 0", n)
	}

	// The verdict is cached: later probe rounds keep the shard Down
	// without flapping it back Up off its healthy /readyz.
	time.Sleep(250 * time.Millisecond)
	if st := g.peers.stateOf("old"); st != PeerDown {
		t.Errorf("mismatched peer state after re-probe = %s, want down", st)
	}
}

// TestGatewayRejectsStaleKindList: a shard speaking the right API
// revision but advertising an older mechanism registry (missing
// kinds) is marked Down — the gateway would otherwise route adaptive
// jobs to a shard that 400s them.
func TestGatewayRejectsStaleKindList(t *testing.T) {
	stale := api.KindNames()[:4] // pre-registry build: first four kinds only
	old, _ := fakeShard(t, api.Revision, stale)
	pGood, _, _ := newShard(t, "good", service.Config{Workers: 1})

	g, _ := newGatewayServer(t, Config{
		Peers: []Peer{{Name: "old", URL: old.URL}, pGood},
	})
	if st := g.peers.stateOf("old"); st != PeerDown {
		t.Errorf("stale-kind peer state = %s, want down", st)
	}
	if st := g.peers.stateOf("good"); st != PeerUp {
		t.Errorf("full-registry peer state = %s, want up", st)
	}
}

// TestGatewayCapabilitiesRevision: the gateway relays a v1.5
// capabilities payload from a live shard.
func TestGatewayCapabilitiesRevision(t *testing.T) {
	p, _, _ := newShard(t, "a", service.Config{Workers: 1})
	_, gts := newGatewayServer(t, Config{Peers: []Peer{p}})

	code, raw := getJSON(t, gts.URL+"/v1/capabilities")
	if code != http.StatusOK {
		t.Fatalf("GET /v1/capabilities = %d", code)
	}
	var caps api.Capabilities
	if err := json.Unmarshal(raw, &caps); err != nil {
		t.Fatal(err)
	}
	if caps.APIRevision != api.Revision {
		t.Errorf("api_revision = %q, want %q", caps.APIRevision, api.Revision)
	}
	if len(caps.Engines) == 0 || caps.MaxLanes < 1 {
		t.Errorf("engines/max_lanes = %v/%d, want populated", caps.Engines, caps.MaxLanes)
	}
}
